// Design-choice ablations called out in DESIGN.md §5 (beyond the paper's
// Fig. 13 module ablation): each of STOF's kernel/tuner mechanisms is
// switched off individually and the resulting slowdown reported.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/mha/unified.hpp"
#include "stof/models/e2e.hpp"

using namespace stof;

namespace {

double blockwise_time(const mha::MhaDims& dims, const sparse::BsrMask& bsr,
                      mha::BlockwiseParams params,
                      const gpusim::DeviceSpec& dev) {
  return gpusim::estimate_time_us(mha::blockwise_cost(dims, bsr, params, dev),
                                  dev);
}

}  // namespace

int main() {
  bench::banner("Design ablations (DESIGN.md §5)",
                "slowdown from disabling each STOF mechanism",
                "every mechanism should cost >= 1.0x when disabled");

  const auto dev = gpusim::a100();
  const mha::MhaDims dims{16, 12, 2048, 64};
  const auto mask =
      masks::MaskSpec{.kind = masks::PatternKind::kBigBird, .seq_len = 2048}
          .build();

  bench::section("block-wise kernel mechanisms — bigbird (16,2048), A100");
  {
    const auto bsr = sparse::BsrMask::build(mask, 64, 64);
    const mha::BlockwiseParams base{64, 64, 4};
    const double t_base = blockwise_time(dims, bsr, base, dev);

    auto no_split = base;
    no_split.treat_full_as_part = true;
    auto no_async = base;
    no_async.async_copy = false;

    std::printf("%-38s %10s\n", "mechanism disabled", "slowdown");
    std::printf("%-38s %9.2fx\n", "full/part split (all blocks masked)",
                blockwise_time(dims, bsr, no_split, dev) / t_base);
    std::printf("%-38s %9.2fx\n", "async-copy pipelining",
                blockwise_time(dims, bsr, no_async, dev) / t_base);

    // Padding matters when shared memory is the bottleneck: small tiles
    // maximize SMEM traffic per FLOP, so ablate it at (16, 16).
    const auto bsr16 = sparse::BsrMask::build(mask, 16, 16);
    mha::BlockwiseParams small{16, 16, 4};
    auto small_no_pad = small;
    small_no_pad.padding = 0;
    std::printf("%-38s %9.2fx   (at 16x16 tiles)\n",
                "SMEM padding (bank conflicts back)",
                blockwise_time(dims, bsr16, small_no_pad, dev) /
                    blockwise_time(dims, bsr16, small, dev));
  }

  bench::section("Eq. 1 kernel selection — sliding window (1,128), A100");
  {
    const mha::MhaDims small{1, 12, 128, 64};
    const auto small_mask = masks::MaskSpec{
        .kind = masks::PatternKind::kSlidingWindow, .seq_len = 128}
                                .build();
    gpusim::Stream s1(dev), s2(dev);
    mha::UnifiedMha selected(small, small_mask, dev);
    mha::MhaOptions force;
    force.force_kernel = mha::KernelKind::kBlockwise;
    mha::UnifiedMha forced(small, small_mask, dev, force);
    const double t_sel = selected.simulate(s1);
    const double t_forced = forced.simulate(s2);
    std::printf("selected kernel: %s  %.2fus;  forced block-wise  %.2fus  "
                "(%.2fx)\n",
                selected.plan().choice.kind == mha::KernelKind::kRowwise
                    ? "row-wise"
                    : "block-wise",
                t_sel, t_forced, t_forced / t_sel);
  }

  bench::section("tuner mechanisms — BERT-Small (8,512), A100");
  {
    const auto model = models::bert_small();
    tuner::TuningOptions base;
    base.stage1_max_evals = 150;
    const auto with_all = models::simulate_e2e(
        baselines::Method::kStof, model, 8, 512,
        masks::PatternKind::kBigBird, dev, base);

    auto no_reward = base;
    no_reward.reward_bonus = 0;
    const auto without_reward = models::simulate_e2e(
        baselines::Method::kStof, model, 8, 512,
        masks::PatternKind::kBigBird, dev, no_reward);

    auto no_cache = base;
    no_cache.use_cache = false;
    const auto without_cache = models::simulate_e2e(
        baselines::Method::kStof, model, 8, 512,
        masks::PatternKind::kBigBird, dev, no_cache);

    std::printf("%-38s %12s %12s\n", "configuration", "best (us)",
                "tuning (s)");
    std::printf("%-38s %12.1f %12.1f\n", "full STOF tuner",
                with_all.time_us, with_all.tuning->tuning_cost_s);
    std::printf("%-38s %12.1f %12.1f\n", "no reward (uniform sampling)",
                without_reward.time_us, without_reward.tuning->tuning_cost_s);
    std::printf("%-38s %12.1f %12.1f\n", "no result cache",
                without_cache.time_us, without_cache.tuning->tuning_cost_s);
  }
  return 0;
}
