// Tier-1 perf-regression harness: times the packed-FP32 execution engine
// against the scalar reference on fixed functional shapes and writes a
// machine-readable trajectory file (BENCH_tier1.json) for future PRs to
// compare against.
//
// Shapes (full mode):
//   * GEMM  (batch 8, m 512, hidden 1024): the paper's (8, 512) config at
//     hidden size 1024, bias epilogue — the FFN projection shape.
//   * MHA   BERT-Base (12 heads, head size 64) at seq 512, batch 8, on the
//     BigBird and sliding-window masks via the block-wise kernel.
//   * SERVE 64-session seeded trace through stof::serve, comparing the
//     continuous-batching schedule against the batch-1 serial baseline in
//     simulated GPU time (scalar_ms = serial, packed_ms = continuous).
//   * SERVE_DECODE_LONG few-session long-generation trace, wall-clock
//     scalar vs packed engine — tracks the KV float-panel sidecar's
//     incremental-conversion win on decode-dominated workloads.
//   * SERVE_E2E_LAYER decode-heavy GPT-decoder trace executed through the
//     engine's fused transformer-layer graph vs launch-per-op eager
//     execution, plus the warm-vs-cold tuning-DB load gate.
//
// Usage: bench_tier1 [--quick] [--out PATH] [--trace PATH]
//                    [--baseline PATH] [--tunedb PATH]
//                    [--regress-threshold PCT]
//   --quick     small shapes for CI smoke runs (not a trajectory record)
//   --out       output JSON path (default: BENCH_tier1.json in the cwd)
//   --trace     also write a Chrome trace of the simulated kernel launches
//               with the telemetry registry attached as trace metadata
//   --tunedb    persistent tuning-DB directory for the e2e layer entry
//               (default: <tmp>/stof_bench_tunedb); run the bench twice
//               against the same path to exercise the warm-load path
//   --baseline  compare against a committed BENCH_tier1.json: prints a
//               per-entry delta table and exits 3 if any entry's packed_ms
//               regresses more than the threshold (default 20%) after
//               calibrating for machine speed (the baseline packed time is
//               scaled by current_scalar_ms / baseline_scalar_ms, so a
//               slower CI machine does not read as a regression)
//   --regress-threshold  regression tolerance in percent (default 20)
//
// Timing runs keep telemetry disabled so the measured packed/scalar times
// are unperturbed; a separate instrumented pass per entry (telemetry on,
// registry reset) replays the workload once and embeds the deterministic
// counter snapshot as the entry's "counters" object.
//
// Exit status is non-zero if any packed result is not bit-identical to the
// scalar reference — the harness doubles as an end-to-end regression gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "stof/core/packed.hpp"
#include "stof/core/rng.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/gpusim/timeline.hpp"
#include "stof/gpusim/trace.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/sparse/bsr_cache.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/telemetry/telemetry.hpp"

#include "bench_serve_common.hpp"

namespace {

using stof::Shape;
using stof::TensorH;

struct Entry {
  std::string name;
  std::string shape;
  double scalar_ms = 0;
  double packed_ms = 0;
  bool bit_identical = false;
  /// INT8-tier entries are gated on a calibrated relative-error bound
  /// instead of bit_identical: quantized execution is deterministic but not
  /// bit-identical to FP32, so the harness checks max |got - ref| over the
  /// FP32 reference's absmax against a bound measured at calibration time.
  bool error_gated = false;
  double rel_err = -1.0;
  double rel_err_bound = 0.0;
  /// Extra entry-specific invariants (INT8 determinism across replays,
  /// conversion-traffic halving); folded into pass().
  bool aux_ok = true;
  /// Deterministic counter snapshot from the instrumented pass.
  std::map<std::string, std::int64_t> counters;
  /// Simulated kernel launches of this entry, replayed for --trace.
  std::vector<std::pair<std::string, stof::gpusim::KernelCost>> sim_launches;
  [[nodiscard]] double speedup() const { return scalar_ms / packed_ms; }
  [[nodiscard]] bool pass() const {
    return (error_gated ? rel_err >= 0 && rel_err <= rel_err_bound
                        : bit_identical) &&
           aux_ok;
  }
};

double time_ms(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

bool bits_equal(const TensorH& a, const TensorH& b) {
  if (a.shape() != b.shape()) return false;
  const auto sa = a.data();
  const auto sb = b.data();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].bits() != sb[i].bits()) return false;
  }
  return true;
}

TensorH random_tensor(Shape shape, std::uint64_t seed) {
  TensorH t(shape);
  stof::Rng rng(seed);
  t.fill_random(rng);
  return t;
}

Entry bench_gemm(std::int64_t batch, std::int64_t m, std::int64_t k,
                 std::int64_t n, int packed_reps) {
  const TensorH a = random_tensor(Shape{batch, m, k}, 1);
  const TensorH b = random_tensor(Shape{k, n}, 2);
  const TensorH bias = random_tensor(Shape{n}, 3);
  TensorH c_scalar(Shape{batch, m, n});
  TensorH c_packed(Shape{batch, m, n});

  Entry e;
  e.name = "gemm_b" + std::to_string(batch) + "_m" + std::to_string(m) +
           "_h" + std::to_string(n);
  e.shape = "(" + std::to_string(batch) + ", " + std::to_string(m) + ", " +
            std::to_string(k) + ") x (" + std::to_string(k) + ", " +
            std::to_string(n) + "), bias epilogue";
  e.scalar_ms = time_ms(
      [&] {
        stof::ops::gemm_scalar(a, b, c_scalar, stof::ops::Epilogue::kBias,
                               &bias);
      },
      1);
  e.packed_ms = time_ms(
      [&] {
        stof::ops::gemm_packed(a, b, c_packed, stof::ops::Epilogue::kBias,
                               &bias);
      },
      packed_reps);
  e.bit_identical = bits_equal(c_scalar, c_packed);

  // Instrumented pass: replay the workload once with telemetry enabled and
  // snapshot the deterministic counters (simulated cycles / gmem bytes come
  // from launching the entry's cost model on a simulated stream).
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    stof::ops::gemm(a, b, c_packed, stof::ops::Epilogue::kBias, &bias);
    const auto dev = stof::gpusim::rtx4090();
    const auto cost = stof::ops::gemm_cost(
        stof::ops::GemmDims{batch, m, n, k}, stof::ops::GemmParams{}, dev);
    stof::gpusim::Stream stream(dev);
    stream.launch(e.name, cost);
    e.sim_launches.emplace_back(e.name, cost);
    e.counters = stof::telemetry::global_registry().counters();
  }
  return e;
}

/// max |got - ref| normalized by absmax(ref), both read back to float.
double max_rel_err(const TensorH& ref, const TensorH& got) {
  const auto sr = ref.data();
  const auto sg = got.data();
  double abs_max = 0, diff_max = 0;
  for (std::size_t i = 0; i < sr.size(); ++i) {
    abs_max = std::max(abs_max, std::abs(double(float(sr[i]))));
    diff_max =
        std::max(diff_max, std::abs(double(float(sg[i]) - float(sr[i]))));
  }
  return abs_max == 0 ? diff_max : diff_max / abs_max;
}

/// Calibrated INT8 error bounds (see docs/PERF.md for the methodology):
/// measured max relative error on the fixed seeds, then tripled so noise in
/// future recalibrations (new seeds, reordered reductions) cannot trip the
/// gate while a real quantizer regression — errors scale with the number of
/// wrongly-coded elements — still lands far outside it.
constexpr double kGemmInt8RelErrBound = 1.8e-2;   // measured 6.0e-3 (full)
constexpr double kServeInt8RelErrBound = 2.2e-2;  // measured 7.3e-3 (full)

/// INT8-weight GEMM entry: same tensors and scalar reference as bench_gemm,
/// but the packed run reads the B panel through the INT8 quantized tier.
/// Gated on the calibrated output-error bound instead of bit-identity.
Entry bench_gemm_int8(std::int64_t batch, std::int64_t m, std::int64_t k,
                      std::int64_t n, int packed_reps) {
  const TensorH a = random_tensor(Shape{batch, m, k}, 1);
  const TensorH b = random_tensor(Shape{k, n}, 2);
  const TensorH bias = random_tensor(Shape{n}, 3);
  TensorH c_scalar(Shape{batch, m, n});
  TensorH c_int8(Shape{batch, m, n});

  Entry e;
  e.name = "gemm_b" + std::to_string(batch) + "_m" + std::to_string(m) +
           "_h" + std::to_string(n) + "_int8";
  e.shape = "(" + std::to_string(batch) + ", " + std::to_string(m) + ", " +
            std::to_string(k) + ") x (" + std::to_string(k) + ", " +
            std::to_string(n) + "), bias epilogue, int8 weight panels";
  e.error_gated = true;
  e.rel_err_bound = kGemmInt8RelErrBound;
  e.scalar_ms = time_ms(
      [&] {
        stof::ops::gemm_scalar(a, b, c_scalar, stof::ops::Epilogue::kBias,
                               &bias);
      },
      1);
  e.packed_ms = time_ms(
      [&] {
        stof::ops::gemm_packed(a, b, c_int8, stof::ops::Epilogue::kBias,
                               &bias, stof::core::PanelPrecision::kInt8);
      },
      packed_reps);
  e.rel_err = max_rel_err(c_scalar, c_int8);

  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    stof::ops::gemm(a, b, c_int8, stof::ops::Epilogue::kBias, &bias,
                    stof::core::PanelPrecision::kInt8);
    const auto dev = stof::gpusim::rtx4090();
    const auto cost = stof::ops::gemm_cost(
        stof::ops::GemmDims{batch, m, n, k}, stof::ops::GemmParams{}, dev);
    stof::gpusim::Stream stream(dev);
    stream.launch(e.name, cost);
    e.sim_launches.emplace_back(e.name, cost);
    e.counters = stof::telemetry::global_registry().counters();
  }
  return e;
}

Entry bench_mha(const stof::mha::MhaDims& dims, stof::masks::PatternKind kind,
                const std::string& mask_name, int block, int packed_reps) {
  const TensorH q = random_tensor(dims.qkv_shape(), 4);
  const TensorH k = random_tensor(dims.kv_shape(), 5);
  const TensorH v = random_tensor(dims.kv_shape(), 6);
  const stof::masks::Mask mask =
      stof::masks::MaskSpec{.kind = kind, .seq_len = dims.seq_len}.build();
  const auto bsr = stof::sparse::BsrMask::build(mask, block, block);
  const stof::mha::BlockwiseParams params{block, block};

  Entry e;
  e.name = "mha_h" + std::to_string(dims.heads) + "d" +
           std::to_string(dims.head_size) + "_b" + std::to_string(dims.batch) +
           "_s" + std::to_string(dims.seq_len) + "_" + mask_name;
  e.shape = "batch " + std::to_string(dims.batch) + ", heads " +
            std::to_string(dims.heads) + ", seq " +
            std::to_string(dims.seq_len) + ", head_size " +
            std::to_string(dims.head_size) + ", " + mask_name +
            " mask, block " + std::to_string(block);

  TensorH out_scalar, out_packed;
  e.scalar_ms = time_ms(
      [&] {
        stof::ScopedPackedExecution scalar_mode(false);
        out_scalar = stof::mha::blockwise_attention(dims, q, k, v, bsr, params);
      },
      1);
  e.packed_ms = time_ms(
      [&] {
        out_packed = stof::mha::blockwise_attention(dims, q, k, v, bsr, params);
      },
      packed_reps);
  e.bit_identical = bits_equal(out_scalar, out_packed);

  // Instrumented pass: BSR cache hit/miss accounting, block-skip counters
  // from one functional run, and the simulated block-wise kernel launch.
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    stof::sparse::BsrCache cache(
        stof::masks::MaskSpec{.kind = kind, .seq_len = dims.seq_len}.build());
    const auto& cached = cache.at(block, block);  // miss: builds the BSR
    (void)cache.at(block, block);                 // hit
    out_packed = stof::mha::blockwise_attention(dims, q, k, v, cached, params);
    const auto dev = stof::gpusim::rtx4090();
    const auto cost = stof::mha::blockwise_cost(dims, cached, params, dev);
    stof::gpusim::Stream stream(dev);
    stream.launch(e.name, cost);
    e.sim_launches.emplace_back(e.name, cost);
    e.counters = stof::telemetry::global_registry().counters();
  }
  return e;
}

/// Serving-throughput entry: continuous batching vs the batch-1 serial
/// baseline on one seeded trace.  Both "times" are *simulated* GPU
/// milliseconds (scalar_ms = serial schedule, packed_ms = continuous), so
/// the baseline gate's machine calibration resolves to exactly 1.0 and the
/// tracked quantity is the scheduling speedup itself.  bit_identical means
/// the per-session output digests agreed across the two schedules.
Entry bench_serve_entry(bool quick) {
  namespace sb = stof::serve::bench;
  sb::TraceConfig tc;
  if (quick) tc.sessions = 8;
  const auto trace = sb::make_trace(tc);
  const auto serial = sb::run_trace(
      sb::serve_config(stof::serve::SchedulerMode::kSerial), trace);
  const auto continuous = sb::run_trace(
      sb::serve_config(stof::serve::SchedulerMode::kContinuous), trace);

  Entry e;
  e.name = "serve_continuous_batching";
  e.shape = std::to_string(tc.sessions) +
            " sessions, heads 4, head_size 64, max_seq 128, kv_blocks 192, "
            "simulated ms (serial vs continuous schedule)";
  e.scalar_ms = serial.sim_us / 1000.0;
  e.packed_ms = continuous.sim_us / 1000.0;
  e.bit_identical = sb::digests_match(serial, continuous);

  // Instrumented pass: serve.* counters from one continuous replay, plus
  // the derived serving stats folded in as integer counters.
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    const auto r = sb::run_trace(
        sb::serve_config(stof::serve::SchedulerMode::kContinuous), trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] =
        std::llround(r.tokens_per_s);
    e.counters["serve.derived.p50_latency_us"] =
        std::llround(r.p50_latency_us);
    e.counters["serve.derived.p99_latency_us"] =
        std::llround(r.p99_latency_us);
    e.counters["serve.derived.mean_decode_batch_x100"] =
        std::llround(100.0 * r.mean_decode_batch);
    e.counters["serve.derived.kv_peak_util_pct"] =
        std::llround(100.0 * r.kv_peak_utilization);
  }
  return e;
}

/// Burst-SLO serving entry: a bursty two-tenant trace (steady high-priority
/// interactive decodes + clustered low-priority near-max-context prompts)
/// replayed under two schedules:
///   scalar_ms = p99 decode inter-token gap under FIFO whole-prefill
///               continuous batching (the pre-SLO scheduler), in sim ms;
///   packed_ms = the same p99 under the SLO schedule — chunked prefill
///               (bounded per-step prefill budget), priorities, and WDRR
///               fairness.
/// speedup() is therefore the tail-latency improvement itself.  Gates:
///   * bit_identical — per-session digests agree across the two schedules
///     (chunking/priorities must not change a single output byte);
///   * aux_ok — p99 improves >= 2x AND generated-token throughput stays
///     within 10% of the FIFO schedule (chunking must not buy latency with
///     makespan).
Entry bench_serve_burst_p99(bool quick) {
  namespace sb = stof::serve::bench;
  sb::BurstTraceConfig tc;
  if (quick) {
    tc.interactive_sessions = 8;
    tc.bursts = 1;
    tc.burst_size = 6;
    tc.burst_prompt_min = 280;
    tc.burst_prompt_max = 320;
  }
  const auto trace = sb::make_burst_trace(tc);

  // Shape notes (simulated a100).  The FIFO burst step admits every burst
  // prompt at once, and its cost is DRAM-bound: ~24 causal prompts of ~580
  // tokens read ~1.1 GB of KV in one step (~720 us) while every interactive
  // decode waits.  Chunking conserves those DRAM bytes (each row's prefix
  // is read exactly once either way), so a bounded per-step chunk budget
  // caps the decode gap without giving back throughput — as long as the
  // chunk grids stay wave-saturated (heads 16 keeps the per-step grid in
  // the thousands of blocks) and the per-launch overhead stays amortized
  // (chunk_tokens is the *aggregate* per-step budget, so one step carries
  // a couple of whole prompts, not one sliver each).
  auto fifo_cfg = sb::serve_config(stof::serve::SchedulerMode::kContinuous);
  fifo_cfg.heads = 16;
  fifo_cfg.max_seq_len = 640;
  fifo_cfg.kv_blocks = 1280;
  // FIFO deliberately swallows a whole burst per step — that head-of-line
  // blocking is the baseline the SLO schedule is gated against.
  fifo_cfg.scheduler.prefill_token_budget = 16384;
  fifo_cfg.scheduler.max_prefills_per_step = 32;
  // A modest decode batch spreads the post-burst decode DRAM mass across
  // steps instead of folding it into one monster gap sample.
  fifo_cfg.scheduler.max_decode_batch = 8;
  auto slo_cfg = fifo_cfg;
  slo_cfg.scheduler.chunk_tokens = quick ? 384 : 1152;
  slo_cfg.scheduler.fairness_quantum_tokens = 16384;
  slo_cfg.scheduler.tenant_weights = {{0, 3}, {1, 1}};

  const auto fifo = sb::run_trace(fifo_cfg, trace);
  const auto slo = sb::run_trace(slo_cfg, trace);

  Entry e;
  e.name = "serve_burst_p99";
  e.shape = std::to_string(tc.interactive_sessions) + " interactive + " +
            std::to_string(tc.bursts) + "x" + std::to_string(tc.burst_size) +
            " burst prompts, heads 16, max_seq 640, p99 decode gap in "
            "simulated ms (FIFO whole-prefill vs chunked+priority+WDRR)";
  e.scalar_ms = fifo.p99_decode_gap_us / 1000.0;
  e.packed_ms = slo.p99_decode_gap_us / 1000.0;
  e.bit_identical = sb::digests_match(fifo, slo);
  if (e.speedup() < 2.0) {
    std::cerr << e.name << ": p99 decode gap improved only " << e.speedup()
              << "x (gate: >= 2x)\n";
    e.aux_ok = false;
  }
  if (slo.tokens_per_s < 0.9 * fifo.tokens_per_s) {
    std::cerr << e.name << ": SLO schedule throughput " << slo.tokens_per_s
              << " tok/s vs FIFO " << fifo.tokens_per_s
              << " (gate: within 10%)\n";
    e.aux_ok = false;
  }

  // Instrumented pass: serve.* counters of one SLO replay (chunk emission,
  // per-priority preemptions, tenant deficit gauges, deadline misses), plus
  // both schedules' derived SLO numbers for the trajectory record.
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    const auto r = sb::run_trace(slo_cfg, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] = std::llround(r.tokens_per_s);
    e.counters["serve.derived.p99_decode_gap_us"] =
        std::llround(r.p99_decode_gap_us);
    e.counters["serve.derived.p50_decode_gap_us"] =
        std::llround(r.p50_decode_gap_us);
    e.counters["serve.derived.fifo_p99_decode_gap_us"] =
        std::llround(fifo.p99_decode_gap_us);
    e.counters["serve.derived.fifo_tokens_per_s"] =
        std::llround(fifo.tokens_per_s);
  }
  return e;
}

/// Decode-dominated serving entry: few sessions, long generations — the
/// shape where the KV float-panel sidecar matters.  Unlike the
/// serve_continuous_batching entry this one measures *wall-clock* ms of the
/// whole trace replay: scalar_ms runs the engine in scalar mode, packed_ms
/// in packed mode (per-step KV conversion served incrementally from the
/// cross-call panel registry, O(new tokens) instead of O(prefix) per step).
/// bit_identical checks the per-session digests agree across the two modes
/// — the decode path's bit-identity contract, end to end.
Entry bench_serve_decode_long(bool quick) {
  namespace sb = stof::serve::bench;
  sb::TraceConfig tc;
  tc.sessions = quick ? 2 : 4;
  tc.min_prompt = 16;
  tc.max_prompt = 32;
  tc.min_gen = quick ? 48 : 160;
  tc.max_gen = quick ? 48 : 160;
  const auto trace = sb::make_trace(tc);
  auto cfg = sb::serve_config(stof::serve::SchedulerMode::kContinuous);
  cfg.max_seq_len = 256;
  cfg.kv_blocks = 96;

  Entry e;
  e.name = "serve_decode_long";
  e.shape = std::to_string(tc.sessions) + " sessions, " +
            std::to_string(tc.min_gen) +
            " generated tokens each, heads 4, head_size 64, max_seq 256, "
            "wall-clock ms (scalar vs packed+panel-cache engine)";

  sb::RunResult scalar_run, packed_run;
  e.scalar_ms = time_ms(
      [&] {
        stof::ScopedPackedExecution scalar_mode(false);
        scalar_run = sb::run_trace(cfg, trace);
      },
      1);
  e.packed_ms = time_ms([&] { packed_run = sb::run_trace(cfg, trace); },
                        quick ? 2 : 3);
  e.bit_identical = sb::digests_match(scalar_run, packed_run);

  // Instrumented pass: serve.* counters plus the panel-cache accounting of
  // one packed replay (a fresh engine, so the registry keys are fresh and
  // the hit/miss/bytes_converted snapshot is deterministic).
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    const auto r = sb::run_trace(cfg, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] = std::llround(r.tokens_per_s);
  }
  return e;
}

/// INT8-KV twin of bench_serve_decode_long: the decode path reads the KV
/// pool through the quantized sidecar (per-token-row scales).  Gates:
///   * output error vs an FP32 packed replay of the same trace, within the
///     calibrated bound;
///   * determinism — two INT8 replays must produce identical digests
///     (quantize-once codes are a pure function of the session tokens);
///   * conversion traffic — the INT8 sidecar must write well under the FP32
///     sidecar's exec.panelcache.bytes_converted (1 byte/elem vs 2).
Entry bench_serve_decode_long_int8(bool quick) {
  namespace sb = stof::serve::bench;
  sb::TraceConfig tc;
  tc.sessions = quick ? 2 : 4;
  tc.min_prompt = 16;
  tc.max_prompt = 32;
  tc.min_gen = quick ? 48 : 160;
  tc.max_gen = quick ? 48 : 160;
  const auto trace = sb::make_trace(tc);
  auto cfg = sb::serve_config(stof::serve::SchedulerMode::kContinuous);
  cfg.max_seq_len = 256;
  cfg.kv_blocks = 96;
  auto cfg_int8 = cfg;
  cfg_int8.kv_precision = stof::core::PanelPrecision::kInt8;

  Entry e;
  e.name = "serve_decode_long_int8";
  e.shape = std::to_string(tc.sessions) + " sessions, " +
            std::to_string(tc.min_gen) +
            " generated tokens each, heads 4, head_size 64, max_seq 256, "
            "wall-clock ms (scalar vs packed engine, int8 KV sidecar)";
  e.error_gated = true;
  e.rel_err_bound = kServeInt8RelErrBound;

  // FP32 reference decode outputs, keyed (session, position).  The packed
  // FP32 engine is bit-identical to scalar, so one replay is the reference.
  std::map<std::pair<stof::serve::SessionId, std::int64_t>,
           std::vector<float>>
      ref;
  (void)sb::run_trace(cfg, trace,
                      [&ref](stof::serve::SessionId id, std::int64_t pos,
                             std::span<const stof::half> out) {
                        auto& dst = ref[{id, pos}];
                        dst.reserve(out.size());
                        for (const auto h : out) dst.push_back(float(h));
                      });

  sb::RunResult scalar_run;
  e.scalar_ms = time_ms(
      [&] {
        stof::ScopedPackedExecution scalar_mode(false);
        scalar_run = sb::run_trace(cfg, trace);
      },
      1);
  sb::RunResult int8_run;
  e.packed_ms = time_ms(
      [&] { int8_run = sb::run_trace(cfg_int8, trace); }, quick ? 2 : 3);

  // Error pass: replay once more with the hook and fold the max relative
  // error (per-token absmax-normalized, worst token) into the entry.
  double rel_err = 0;
  const auto repeat = sb::run_trace(
      cfg_int8, trace,
      [&](stof::serve::SessionId id, std::int64_t pos,
          std::span<const stof::half> out) {
        const auto& want = ref.at({id, pos});
        double abs_max = 0, diff_max = 0;
        for (std::size_t i = 0; i < out.size(); ++i) {
          abs_max = std::max(abs_max, std::abs(double(want[i])));
          diff_max =
              std::max(diff_max, std::abs(double(float(out[i]) - want[i])));
        }
        if (abs_max > 0) rel_err = std::max(rel_err, diff_max / abs_max);
      });
  e.rel_err = rel_err;
  if (!sb::digests_match(int8_run, repeat)) {
    std::cerr << e.name << ": INT8 replays diverged (nondeterministic)\n";
    e.aux_ok = false;
  }

  // Instrumented passes: FP32 then INT8, comparing the decode sidecar's
  // conversion traffic (serve.kv.sidecar_bytes_converted counts only the
  // KV-pool sidecar, excluding the FP32 prefill panels common to both
  // modes).  INT8 codes are 1 byte/elem vs the float sidecar's 2, so the
  // counter must land at about half — gated at 55%.
  std::int64_t fp32_bytes = 0;
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    (void)sb::run_trace(cfg, trace);
    fp32_bytes = stof::telemetry::global_registry().counter(
        "serve.kv.sidecar_bytes_converted");
  }
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    const auto r = sb::run_trace(cfg_int8, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] = std::llround(r.tokens_per_s);
    e.counters["serve.kv.fp32_ref_sidecar_bytes_converted"] = fp32_bytes;
  }
  const std::int64_t int8_bytes =
      e.counters["serve.kv.sidecar_bytes_converted"];
  if (fp32_bytes <= 0 || int8_bytes * 100 > fp32_bytes * 55) {
    std::cerr << e.name << ": int8 sidecar converted " << int8_bytes
              << " bytes vs fp32 sidecar " << fp32_bytes
              << " (expected about half)\n";
    e.aux_ok = false;
  }
  return e;
}

/// Prefix-sharing serving entry: a Zipf templated-prompt burst (~83% of
/// every prompt is one of three hot 512-token templates) replayed twice
/// on the continuous scheduler:
///   scalar_ms = prefix sharing OFF — every session prefills its whole
///               prompt from scratch, in simulated ms;
///   packed_ms = prefix sharing ON — template pages are computed once,
///               published to the radix tree, and adopted (refcounted,
///               CoW-protected) by every later arrival, which prefills
///               only its private suffix.
/// speedup() is the serving-throughput gain from sharing.  Gates:
///   * bit_identical — per-session digests agree across the two runs
///     (adopted pages must reproduce the exact bytes a from-scratch
///     prefill would);
///   * aux_ok — >= 2x speedup, the tree actually hit (serve.prefix.hits),
///     computed prefill tokens land at the theoretical cold-start floor
///     (sum of private suffixes + each template computed ONCE — i.e. the
///     saving amortises per template, better than the per-session share
///     fraction alone predicts), and INT8 sidecar conversion bytes drop
///     below half (shared pages share one sidecar panel across sessions).
Entry bench_serve_prefix_shared(bool quick) {
  namespace sb = stof::serve::bench;
  sb::PrefixTraceConfig tc;
  tc.sessions = quick ? 32 : 80;
  tc.templates = 3;
  tc.template_len = 512;
  tc.zipf_s = 1.4;
  tc.min_suffix = quick ? 64 : 80;
  tc.max_suffix = quick ? 112 : 128;
  tc.min_gen = 1;
  tc.max_gen = 1;
  const auto trace = sb::make_prefix_trace(tc);
  auto off_cfg = sb::serve_config(stof::serve::SchedulerMode::kContinuous);
  off_cfg.heads = 16;
  off_cfg.max_seq_len = 768;
  off_cfg.kv_blocks = 1280;
  off_cfg.scheduler.prefill_token_budget = 8192;
  off_cfg.scheduler.max_prefills_per_step = 16;
  off_cfg.scheduler.prefix_sharing = false;
  auto on_cfg = off_cfg;
  on_cfg.scheduler.prefix_sharing = true;

  // Cold-start floor: every private suffix once, every distinct template
  // once.  A sharing-off run computes sum(prompt_len) instead.
  std::int64_t floor_tokens = 0;
  std::set<std::uint64_t> seen_templates;
  for (const auto& r : trace) {
    floor_tokens += r.prompt_len - r.template_len;
    if (seen_templates.insert(r.template_seed).second) {
      floor_tokens += r.template_len;
    }
  }

  // Two instrumented replays (telemetry perturbs neither simulated time
  // nor outputs): sharing off for the reference traffic, sharing on for
  // the entry's counters.
  Entry e;
  e.name = "serve_prefix_shared";
  e.shape = std::to_string(tc.sessions) + " sessions, " +
            std::to_string(tc.templates) + " Zipf templates x " +
            std::to_string(tc.template_len) +
            " shared tokens, heads 16, max_seq 768, simulated ms "
            "(prefix sharing off vs on)";
  std::int64_t off_prefill_tokens = 0, off_converted = 0, off_sidecar = 0;
  {
    stof::telemetry::ScopedTelemetry on_t(true);
    stof::telemetry::global_registry().reset();
    const auto off = sb::run_trace(off_cfg, trace);
    off_prefill_tokens =
        stof::telemetry::global_registry().counter("serve.prefill.tokens");
    off_converted = stof::telemetry::global_registry().counter(
        "exec.panelcache.bytes_converted");
    off_sidecar = stof::telemetry::global_registry().counter(
        "serve.kv.sidecar_bytes_converted");

    stof::telemetry::global_registry().reset();
    const auto on = sb::run_trace(on_cfg, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] = std::llround(on.tokens_per_s);
    e.counters["serve.derived.nosharing_tokens_per_s"] =
        std::llround(off.tokens_per_s);
    e.counters["serve.derived.nosharing_prefill_tokens"] = off_prefill_tokens;
    e.counters["serve.derived.nosharing_panel_bytes_converted"] =
        off_converted;
    e.counters["serve.derived.nosharing_sidecar_bytes_converted"] =
        off_sidecar;
    e.counters["serve.derived.prefill_floor_tokens"] = floor_tokens;

    e.scalar_ms = off.sim_us / 1000.0;
    e.packed_ms = on.sim_us / 1000.0;
    e.bit_identical = sb::digests_match(off, on);
  }
  if (e.speedup() < 2.0) {
    std::cerr << e.name << ": sharing sped serving up only " << e.speedup()
              << "x (gate: >= 2x)\n";
    e.aux_ok = false;
  }
  if (e.counters["serve.prefix.hits"] <= 0) {
    std::cerr << e.name << ": prefix tree never hit\n";
    e.aux_ok = false;
  }
  // Superlinear traffic drop.  Linear share-skipping would still recompute
  // every template per miss; landing at the floor means each template was
  // computed once for the whole trace.  10% slack over the floor.
  const std::int64_t on_prefill_tokens = e.counters["serve.prefill.tokens"];
  if (on_prefill_tokens * 10 > floor_tokens * 11) {
    std::cerr << e.name << ": sharing computed " << on_prefill_tokens
              << " prefill tokens vs cold-start floor " << floor_tokens
              << " (reference " << off_prefill_tokens
              << "; gate: within 10% of the floor)\n";
    e.aux_ok = false;
  }
  // Shared pages share one INT8 sidecar panel, so conversion bytes fall
  // with unique pages, not with sessions.
  const std::int64_t on_sidecar =
      e.counters["serve.kv.sidecar_bytes_converted"];
  const std::int64_t on_converted =
      e.counters["exec.panelcache.bytes_converted"];
  if (on_sidecar * 2 > off_sidecar || on_converted >= off_converted) {
    std::cerr << e.name << ": sharing saved too little conversion traffic "
              << "(sidecar " << on_sidecar << "/" << off_sidecar
              << " bytes, gate: under half; total converted " << on_converted
              << "/" << off_converted << " bytes, gate: lower)\n";
    e.aux_ok = false;
  }
  return e;
}

/// Speculative-decoding serving entry: a decode-dominated trace replayed
/// with plain one-token-per-step decoding (scalar_ms, simulated) and with
/// draft-and-verify speculative decoding (packed_ms) — k drafts proposed
/// per round by a 1-head windowed draft pass and verified together with
/// the true token in ONE batched paged-decode launch; rejected KV slots
/// roll back exactly.  Gates:
///   * bit_identical — per-session digests agree (accepted rows must be
///     byte-identical to the sequential decode, rejections fully undone);
///   * aux_ok — >= 1.5x decode throughput and >= 70% measured draft
///     acceptance (serve.spec.accepted / serve.spec.drafted).
Entry bench_serve_speculative(bool quick) {
  namespace sb = stof::serve::bench;
  sb::TraceConfig tc;
  tc.sessions = quick ? 2 : 4;
  tc.min_prompt = 16;
  tc.max_prompt = 32;
  tc.min_gen = quick ? 48 : 160;
  tc.max_gen = quick ? 48 : 160;
  const auto trace = sb::make_trace(tc);
  auto cfg = sb::serve_config(stof::serve::SchedulerMode::kContinuous);
  cfg.max_seq_len = 256;
  cfg.kv_blocks = 96;
  auto spec_cfg = cfg;
  spec_cfg.spec_draft_tokens = 4;
  spec_cfg.spec_accept_pct = 92;

  // Two instrumented replays (telemetry perturbs neither simulated time
  // nor outputs): plain decode, then draft-and-verify with the entry's
  // serve.spec.* draft / accept / rollback balance.
  Entry e;
  e.name = "serve_speculative";
  e.shape = std::to_string(tc.sessions) + " sessions, " +
            std::to_string(tc.min_gen) +
            " generated tokens each, heads 4, max_seq 256, simulated ms "
            "(plain decode vs draft-and-verify, k=4)";
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    const auto plain = sb::run_trace(cfg, trace);
    stof::telemetry::global_registry().reset();
    const auto spec = sb::run_trace(spec_cfg, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] = std::llround(spec.tokens_per_s);
    e.counters["serve.derived.plain_tokens_per_s"] =
        std::llround(plain.tokens_per_s);
    e.scalar_ms = plain.sim_us / 1000.0;
    e.packed_ms = spec.sim_us / 1000.0;
    e.bit_identical = sb::digests_match(plain, spec);
  }
  if (e.speedup() < 1.5) {
    std::cerr << e.name << ": speculation sped decoding up only "
              << e.speedup() << "x (gate: >= 1.5x)\n";
    e.aux_ok = false;
  }
  const std::int64_t drafted = e.counters["serve.spec.drafted"];
  const std::int64_t accepted = e.counters["serve.spec.accepted"];
  if (drafted <= 0 || accepted * 100 < drafted * 70) {
    std::cerr << e.name << ": draft acceptance " << accepted << "/" << drafted
              << " (gate: >= 70%)\n";
    e.aux_ok = false;
  }
  return e;
}

/// End-to-end tuned-layer serving entry: a decode-heavy GPT-decoder trace
/// (2 pre-LN layers over a heads 4 x head_size 32 hidden width) replayed
/// with the engine's fused, tuned layer-graph execution (packed_ms,
/// simulated) and with launch-per-op eager execution (scalar_ms) — both
/// run the identical attention launches and the identical numeric layer
/// head, so the headline speedup isolates the fusion dimension.  Gates:
///   * bit_identical — per-session digests agree across the two timelines;
///   * aux_ok — >= 1.5x fused speedup, AND the persistent tuning DB makes
///     warm model loads cheap: a cold engine (fresh DB subdir) pays
///     wall.tunedb.tune_us of search while a warm reload of the same DB
///     pays only wall.tunedb.load_us, gated under 5% of the cold cost.
/// The instrumented pass replays the fused trace against `tunedb_dir`
/// FIRST, so its tunedb.{hits,misses,store_writes} counters reflect the
/// database state this process started with — CI runs the entry twice
/// against a cached DB path and asserts cold misses then warm hits.
Entry bench_serve_e2e_layer(bool quick, const std::string& tunedb_dir) {
  namespace sb = stof::serve::bench;
  namespace fs = std::filesystem;
  sb::TraceConfig tc;
  tc.sessions = quick ? 8 : 24;
  tc.min_prompt = 12;
  tc.max_prompt = 24;
  tc.min_gen = quick ? 24 : 64;
  tc.max_gen = quick ? 24 : 64;
  const auto trace = sb::make_trace(tc);

  auto fused_cfg = sb::serve_config(stof::serve::SchedulerMode::kContinuous);
  fused_cfg.head_size = 32;  // hidden 128: keeps the layer head's wall cost small
  fused_cfg.model.kind = stof::serve::ModelKind::kGptDecoder;
  fused_cfg.model.layers = 2;
  fused_cfg.model.fused = true;
  fused_cfg.model.tune_db_dir = tunedb_dir;
  auto unfused_cfg = fused_cfg;
  unfused_cfg.model.fused = false;
  unfused_cfg.model.tune_db_dir.clear();  // eager mode never tunes

  Entry e;
  e.name = "serve_e2e_layer";
  e.shape = std::to_string(tc.sessions) + " sessions, " +
            std::to_string(tc.min_gen) +
            " generated tokens each, gpt_decoder x2 layers, heads 4, "
            "head_size 32, simulated ms (launch-per-op vs tuned fused "
            "layer graph)";

  // Instrumented fused replay FIRST: the tunedb counters must reflect the
  // DB state at process start (cold run: misses + store_writes; rerun
  // against the same DB: pure hits).
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    const auto r = sb::run_trace(fused_cfg, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["serve.derived.tokens_per_s"] = std::llround(r.tokens_per_s);
  }

  // Timing replays (telemetry off; the DB is warm now, so engine
  // construction inside run_trace loads instead of re-tuning).
  const auto fused = sb::run_trace(fused_cfg, trace);
  const auto unfused = sb::run_trace(unfused_cfg, trace);
  e.scalar_ms = unfused.sim_us / 1000.0;
  e.packed_ms = fused.sim_us / 1000.0;
  e.bit_identical = sb::digests_match(fused, unfused);
  if (e.speedup() < 1.5) {
    std::cerr << e.name << ": fused layer execution sped serving up only "
              << e.speedup() << "x (gate: >= 1.5x)\n";
    e.aux_ok = false;
  }

  // Warm-vs-cold tuning cost, isolated in a fresh DB subdirectory so this
  // probe is cold regardless of the entry DB's state.  Engine construction
  // prewarms the decode and prefill shape buckets: the cold engine pays
  // the two-stage search (wall.tunedb.tune_us), the warm reload pays only
  // plan-file loads (wall.tunedb.load_us).
  const std::string probe_dir =
      (fs::path(tunedb_dir) / "cold_probe").string();
  fs::remove_all(probe_dir);
  auto probe_cfg = fused_cfg;
  probe_cfg.model.tune_db_dir = probe_dir;
  double cold_tune_us = 0, warm_load_us = 0;
  std::int64_t warm_misses = 0;
  {
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    stof::serve::Engine cold(probe_cfg);
    cold_tune_us =
        stof::telemetry::global_registry().timer("wall.tunedb.tune_us")
            .total_us;
    stof::telemetry::global_registry().reset();
    stof::serve::Engine warm(probe_cfg);
    warm_load_us =
        stof::telemetry::global_registry().timer("wall.tunedb.load_us")
            .total_us;
    warm_misses = stof::telemetry::global_registry().counter("tunedb.misses");
  }
  e.counters["serve.derived.cold_tune_us"] = std::llround(cold_tune_us);
  e.counters["serve.derived.warm_load_us"] = std::llround(warm_load_us);
  if (cold_tune_us <= 0 || warm_misses != 0 ||
      warm_load_us >= 0.05 * cold_tune_us) {
    std::cerr << e.name << ": warm model load cost " << warm_load_us
              << " us vs cold tuning " << cold_tune_us
              << " us with " << warm_misses
              << " warm misses (gate: all hits, under 5% of cold)\n";
    e.aux_ok = false;
  }
  return e;
}

// Tensor-parallel cluster scaling: one decode-heavy trace replayed through
// stof::cluster at N = 1/2/4/8 devices plus a plain single-engine reference.
// Gates: cluster digests byte-identical to the reference at EVERY width, and
// >= 3x aggregate tokens/s at N=8 vs N=1 despite the per-step all-reduce tax
// priced by the alpha-beta model.  scalar_ms/packed_ms are the N=1 and N=8
// simulated makespans, so the headline speedup column IS the scaling factor.
Entry bench_serve_cluster_scaling(bool quick) {
  namespace sb = stof::serve::bench;
  // The trace is built to be decode-dominated, because that is where tensor
  // parallelism earns its keep here and where the entry's gate is honest:
  //   - deep decode batch: the N=8 shard's per-step kernel time is
  //     ~batch/8 DRAM microseconds and must dominate the per-step fixed
  //     costs that do NOT shard (kernel launch overhead plus the
  //     2(N-1)·alpha latency terms of two all-reduces);
  //   - dense causal attention: sharded per-row KV traffic is proportional
  //     to attended context, so sparse masks (~40 attended columns) would
  //     leave the full-width activation all-reduce dominating every step —
  //     a real TP pathology, but the cluster tests already cover every
  //     sparse mask's bit-identity; this entry measures scaling;
  //   - Zipf-shared template prompts: prefix sharing prefills each template
  //     once and adopters skip those rows, so the prefill phase (whose
  //     activation all-reduces are pure tax — its compute shards to ~1/N
  //     but its collective bytes do not shrink) nearly vanishes, while
  //     decode still attends the full adopted context.
  sb::PrefixTraceConfig tc;
  tc.sessions = quick ? 112 : 176;
  tc.seed = 20260809;
  tc.templates = 2;
  tc.zipf_s = 1.1;
  tc.template_len = 192;
  tc.min_suffix = 8;
  tc.max_suffix = 24;
  tc.min_gen = 32;
  tc.max_gen = 48;
  tc.mean_interarrival_us = 2.0;
  auto trace = sb::make_prefix_trace(tc);
  for (auto& r : trace) r.mask_kind = stof::masks::PatternKind::kCausal;

  // Wide attention (32 heads) so an 8-way shard still owns 4 heads of
  // DRAM-bound decode work; the pool holds the whole trace so scaling, not
  // paging pressure, is what the entry measures.
  stof::serve::EngineConfig cfg;
  cfg.heads = 32;
  cfg.head_size = 64;
  cfg.max_seq_len = 272;
  cfg.kv_blocks = 17 * tc.sessions;
  cfg.block_tokens = 16;
  cfg.prefill_params = stof::mha::BlockwiseParams{16, 16};
  cfg.scheduler.mode = stof::serve::SchedulerMode::kContinuous;
  cfg.scheduler.max_prefills_per_step = 16;
  cfg.scheduler.prefill_token_budget = 4096;
  cfg.scheduler.max_decode_batch = 256;

  const auto reference = sb::run_trace(cfg, trace);

  const int widths[] = {1, 2, 4, 8};
  std::map<int, sb::ClusterRunResult> runs;
  bool identical = true;
  for (const int n : widths) {
    stof::cluster::ClusterConfig ccfg;
    ccfg.devices = n;
    ccfg.engine = cfg;
    ccfg.link = stof::cluster::nvlink_like();
    ccfg.model_layers = 1;
    runs[n] = sb::run_cluster_trace(ccfg, trace);
    if (runs[n].digests != reference.digests) {
      std::cerr << "serve_cluster_scaling: N=" << n
                << " cluster digests diverged from the single-engine "
                   "reference\n";
      identical = false;
    }
  }

  Entry e;
  e.name = "serve_cluster_scaling";
  e.shape = std::to_string(tc.sessions) +
            " sessions, heads 32, head_size 64, 2 Zipf templates x 192 "
            "shared tokens, causal, nvlink-like link, simulated ms "
            "(N=1 vs N=8 tensor-parallel)";
  e.scalar_ms = runs[1].sim_us / 1000.0;
  e.packed_ms = runs[8].sim_us / 1000.0;
  e.bit_identical = identical;
  {
    // Instrumented N=8 replay for the cluster.* counters (telemetry changes
    // neither simulated time nor outputs).
    stof::telemetry::ScopedTelemetry on(true);
    stof::telemetry::global_registry().reset();
    stof::cluster::ClusterConfig ccfg;
    ccfg.devices = 8;
    ccfg.engine = cfg;
    ccfg.model_layers = 1;
    const auto instrumented = sb::run_cluster_trace(ccfg, trace);
    e.counters = stof::telemetry::global_registry().counters();
    e.counters["cluster.collective.us"] =
        std::llround(instrumented.collective_us);
    for (const int n : widths) {
      const std::string suffix = "_n" + std::to_string(n);
      e.counters["cluster.derived.tokens_per_s" + suffix] =
          std::llround(runs[n].tokens_per_s);
      // Scaling factor and parallel efficiency vs N=1, in percent.
      e.counters["cluster.derived.scaling_pct" + suffix] =
          std::llround(runs[1].sim_us / runs[n].sim_us * 100.0);
      e.counters["cluster.derived.efficiency_pct" + suffix] =
          std::llround(runs[1].sim_us / runs[n].sim_us / n * 100.0);
    }
  }
  const double scaling = runs[1].sim_us / runs[8].sim_us;
  if (scaling < 3.0) {
    std::cerr << "serve_cluster_scaling: N=8 scaled only " << scaling
              << "x over N=1 (gate: >= 3x)\n";
    e.aux_ok = false;
  }
  if (!(runs[8].collective_us > 0) ||
      e.counters["cluster.collective.us"] <= 0) {
    std::cerr << "serve_cluster_scaling: no collective time was charged at "
                 "N=8\n";
    e.aux_ok = false;
  }
  return e;
}

bool write_json(const std::string& path, const std::vector<Entry>& entries,
                bool quick) {
  std::ofstream os(path);
  os << "{\n";
  os << "  \"schema\": \"stof-bench-tier1-v1\",\n";
  os << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  os << "  \"unit\": \"ms\",\n";
  os << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    os << "    {\"name\": \"" << e.name << "\", \"shape\": \"" << e.shape
       << "\", \"scalar_ms\": " << e.scalar_ms
       << ", \"packed_ms\": " << e.packed_ms
       << ", \"speedup\": " << e.speedup();
    if (e.error_gated) {
      os << ", \"rel_err\": " << e.rel_err
         << ", \"rel_err_bound\": " << e.rel_err_bound;
    } else {
      os << ", \"bit_identical\": " << (e.bit_identical ? "true" : "false");
    }
    os << ",\n     \"counters\": {";
    std::size_t ci = 0;
    for (const auto& [name, value] : e.counters) {
      os << (ci++ ? ", " : "") << "\"" << name << "\": " << value;
    }
    os << "}}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.good();
}

// Replay every entry's simulated kernel launches on one stream with
// telemetry enabled, then write a Chrome trace carrying the registry
// snapshot as trace metadata.
bool write_trace(const std::string& path, const std::vector<Entry>& entries) {
  stof::telemetry::ScopedTelemetry on(true);
  stof::telemetry::global_registry().reset();
  stof::gpusim::Stream stream(stof::gpusim::rtx4090());
  for (const auto& e : entries) {
    for (const auto& [name, cost] : e.sim_launches) stream.launch(name, cost);
  }
  std::ofstream os(path);
  stof::gpusim::write_chrome_trace(stream, os, "bench_tier1",
                                   /*attach_telemetry=*/true);
  return os.good();
}

// ---- Baseline regression gate ----------------------------------------------

struct BaselineEntry {
  double scalar_ms = 0;
  double packed_ms = 0;
};

/// Minimal scanner for the flat JSON write_json emits: pulls each entry's
/// "name", "scalar_ms", and "packed_ms".  Not a general JSON parser — it
/// only needs to read files this harness wrote (and committed baselines).
std::map<std::string, BaselineEntry> read_baseline(const std::string& path,
                                                   bool& ok) {
  std::map<std::string, BaselineEntry> out;
  std::ifstream is(path);
  if (!is) {
    ok = false;
    return out;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const auto number_after = [&text](std::size_t from, const std::string& key,
                                    std::size_t limit) -> double {
    const auto at = text.find(key, from);
    if (at == std::string::npos || at >= limit) return -1.0;
    return std::strtod(text.c_str() + at + key.size(), nullptr);
  };
  std::size_t pos = 0;
  while ((pos = text.find("{\"name\": \"", pos)) != std::string::npos) {
    const std::size_t name_lo = pos + 10;
    const std::size_t name_hi = text.find('"', name_lo);
    if (name_hi == std::string::npos) break;
    const std::size_t next = text.find("{\"name\": \"", name_hi);
    const std::size_t limit = next == std::string::npos ? text.size() : next;
    BaselineEntry b;
    b.scalar_ms = number_after(name_hi, "\"scalar_ms\": ", limit);
    b.packed_ms = number_after(name_hi, "\"packed_ms\": ", limit);
    if (b.scalar_ms > 0 && b.packed_ms > 0) {
      out.emplace(text.substr(name_lo, name_hi - name_lo), b);
    }
    pos = name_hi;
  }
  ok = !out.empty();
  return out;
}

/// Compare against the committed baseline; returns false on regression.
/// Machines differ, so the gate is calibrated: the baseline packed time is
/// rescaled by this run's scalar/baseline-scalar ratio before comparing.
bool check_baseline(const std::vector<Entry>& entries,
                    const std::map<std::string, BaselineEntry>& baseline,
                    double threshold_pct) {
  bool pass = true;
  std::cout << "\nbaseline comparison (threshold " << threshold_pct
            << "% on calibrated packed_ms):\n";
  std::cout << "  entry                          packed_ms   baseline"
               "   calibrated      delta\n";
  for (const auto& e : entries) {
    const auto it = baseline.find(e.name);
    std::cout << "  " << e.name;
    for (std::size_t pad = e.name.size(); pad < 31; ++pad) std::cout << ' ';
    if (it == baseline.end()) {
      std::cout << "(new entry, no baseline)\n";
      continue;
    }
    const BaselineEntry& b = it->second;
    const double machine_scale = e.scalar_ms / b.scalar_ms;
    const double calibrated = b.packed_ms * machine_scale;
    const double delta_pct = 100.0 * (e.packed_ms - calibrated) / calibrated;
    const bool regressed = delta_pct > threshold_pct;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%9.2f  %9.2f  %11.2f  %+8.1f%%",
                  e.packed_ms, b.packed_ms, calibrated, delta_pct);
    std::cout << buf << (regressed ? "  REGRESSION" : "") << "\n";
    pass = pass && !regressed;
  }
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_tier1.json";
  std::string trace_path;
  std::string baseline_path;
  std::string tunedb_path =
      (std::filesystem::temp_directory_path() / "stof_bench_tunedb").string();
  double threshold_pct = 20.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tunedb") == 0 && i + 1 < argc) {
      tunedb_path = argv[++i];
    } else if (std::strcmp(argv[i], "--regress-threshold") == 0 &&
               i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "usage: bench_tier1 [--quick] [--out PATH] [--trace PATH]"
                   " [--baseline PATH] [--tunedb PATH]"
                   " [--regress-threshold PCT]\n";
      return 2;
    }
  }

  std::vector<Entry> entries;
  if (quick) {
    entries.push_back(bench_gemm(1, 64, 128, 128, 3));
    entries.push_back(bench_gemm_int8(1, 64, 128, 128, 3));
    entries.push_back(bench_mha({1, 4, 128, 64},
                                stof::masks::PatternKind::kBigBird, "bigbird",
                                32, 3));
    entries.push_back(bench_serve_entry(/*quick=*/true));
    entries.push_back(bench_serve_burst_p99(/*quick=*/true));
    entries.push_back(bench_serve_decode_long(/*quick=*/true));
    entries.push_back(bench_serve_decode_long_int8(/*quick=*/true));
    entries.push_back(bench_serve_prefix_shared(/*quick=*/true));
    entries.push_back(bench_serve_speculative(/*quick=*/true));
    entries.push_back(bench_serve_e2e_layer(/*quick=*/true, tunedb_path));
    entries.push_back(bench_serve_cluster_scaling(/*quick=*/true));
  } else {
    entries.push_back(bench_gemm(8, 512, 1024, 1024, 3));
    entries.push_back(bench_gemm_int8(8, 512, 1024, 1024, 3));
    const stof::mha::MhaDims bert_base{8, 12, 512, 64};
    entries.push_back(bench_mha(bert_base, stof::masks::PatternKind::kBigBird,
                                "bigbird", 64, 3));
    entries.push_back(bench_mha(bert_base,
                                stof::masks::PatternKind::kSlidingWindow,
                                "sliding_window", 64, 3));
    entries.push_back(bench_serve_entry(/*quick=*/false));
    entries.push_back(bench_serve_burst_p99(/*quick=*/false));
    entries.push_back(bench_serve_decode_long(/*quick=*/false));
    entries.push_back(bench_serve_decode_long_int8(/*quick=*/false));
    entries.push_back(bench_serve_prefix_shared(/*quick=*/false));
    entries.push_back(bench_serve_speculative(/*quick=*/false));
    entries.push_back(bench_serve_e2e_layer(/*quick=*/false, tunedb_path));
    entries.push_back(bench_serve_cluster_scaling(/*quick=*/false));
  }

  bool all_identical = true;
  for (const auto& e : entries) {
    std::cout << e.name << ": scalar " << e.scalar_ms << " ms, packed "
              << e.packed_ms << " ms, speedup " << e.speedup() << "x";
    if (e.error_gated) {
      std::cout << ", rel_err " << e.rel_err << " (bound " << e.rel_err_bound
                << ")";
    }
    std::cout << (e.pass() ? ""
                           : e.error_gated ? "  [ERROR GATE FAILED]"
                                           : "  [BIT MISMATCH]")
              << "\n";
    all_identical = all_identical && e.pass();
  }
  if (!write_json(out_path, entries, quick)) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << "\n";
  if (!trace_path.empty()) {
    if (!write_trace(trace_path, entries)) {
      std::cerr << "error: could not write " << trace_path << "\n";
      return 2;
    }
    std::cout << "wrote " << trace_path << "\n";
  }
  if (!all_identical) {
    std::cerr << "FAIL: packed path diverged from the scalar reference\n";
    return 1;
  }
  if (!baseline_path.empty()) {
    bool read_ok = true;
    const auto baseline = read_baseline(baseline_path, read_ok);
    if (!read_ok) {
      std::cerr << "error: could not read baseline " << baseline_path << "\n";
      return 2;
    }
    if (!check_baseline(entries, baseline, threshold_pct)) {
      std::cerr << "FAIL: packed_ms regressed more than " << threshold_pct
                << "% vs " << baseline_path << "\n";
      return 3;
    }
  }
  return 0;
}
