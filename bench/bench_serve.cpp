// Serving-throughput bench: continuous batching vs batch-1 serial FIFO.
//
// Replays one seeded open-loop trace through the serve::Engine twice —
// once with the continuous-batching scheduler, once with the serial
// baseline (same engine, same kernels, one session at a time) — and
// reports tokens/s, p50/p99 request and first-token latency, decode batch
// occupancy, and KV-pool utilization, all in simulated GPU time.
//
// The run is self-asserting; non-zero exit means a broken invariant:
//   * per-session output digests must be byte-identical across modes;
//   * continuous batching must clear the throughput gate (>= 2x tokens/s
//     over serial in full mode, >= 1.3x in --smoke);
//   * the serve.* telemetry counters must be populated and their JSON dump
//     byte-stable across repeated runs.
//
// Usage: bench_serve [--smoke] [--out PATH]
//   --smoke   8-session trace for CI (same assertions, smaller gate)
//   --out     write a JSON report (default: BENCH_serve.json in the cwd)
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_serve_common.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace {

using stof::serve::SchedulerMode;
using stof::serve::bench::RunResult;

void print_mode(const char* name, const RunResult& r) {
  std::cout << name << ":\n"
            << "  sim time          " << r.sim_us / 1000.0 << " ms\n"
            << "  tokens/s (sim)    " << r.tokens_per_s << "\n"
            << "  latency p50/p99   " << r.p50_latency_us / 1000.0 << " / "
            << r.p99_latency_us / 1000.0 << " ms\n"
            << "  first token p50   " << r.p50_first_token_us / 1000.0
            << " ms\n"
            << "  steps             " << r.stats.steps << "\n"
            << "  decode batch avg  " << r.mean_decode_batch << "\n"
            << "  kv peak util      " << 100.0 * r.kv_peak_utilization
            << "%\n"
            << "  preemptions       " << r.stats.preemptions << "\n"
            << "  sim launches      " << r.sim_kernel_launches << "\n";
}

void write_mode_json(std::ofstream& os, const char* name,
                     const RunResult& r) {
  os << "    \"" << name << "\": {"
     << "\"sim_ms\": " << r.sim_us / 1000.0
     << ", \"tokens_per_s\": " << r.tokens_per_s
     << ", \"p50_latency_us\": " << r.p50_latency_us
     << ", \"p99_latency_us\": " << r.p99_latency_us
     << ", \"p50_first_token_us\": " << r.p50_first_token_us
     << ", \"p99_first_token_us\": " << r.p99_first_token_us
     << ", \"mean_decode_batch\": " << r.mean_decode_batch
     << ", \"kv_peak_utilization\": " << r.kv_peak_utilization
     << ", \"steps\": " << r.stats.steps
     << ", \"preemptions\": " << r.stats.preemptions
     << ", \"decode_tokens\": " << r.stats.decode_tokens
     << ", \"prefill_tokens\": " << r.stats.prefill_tokens << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--smoke] [--out PATH]\n";
      return 2;
    }
  }

  stof::serve::bench::TraceConfig tc;
  if (smoke) tc.sessions = 8;
  const auto trace = stof::serve::bench::make_trace(tc);
  const double gate = smoke ? 1.3 : 2.0;

  const auto serial = stof::serve::bench::run_trace(
      stof::serve::bench::serve_config(SchedulerMode::kSerial), trace);
  const auto continuous = stof::serve::bench::run_trace(
      stof::serve::bench::serve_config(SchedulerMode::kContinuous), trace);

  print_mode("serial (batch-1 FIFO baseline)", serial);
  print_mode("continuous batching", continuous);
  const double speedup = continuous.tokens_per_s / serial.tokens_per_s;
  std::cout << "throughput speedup: " << speedup << "x (gate " << gate
            << "x)\n";

  // Instrumented replays: the serve.* counter dump must be populated and
  // byte-stable across repeated runs of the same trace.
  const auto counter_dump = [&] {
    stof::telemetry::global_registry().reset();
    stof::telemetry::ScopedTelemetry on(true);
    (void)stof::serve::bench::run_trace(
        stof::serve::bench::serve_config(SchedulerMode::kContinuous), trace);
    auto dump = stof::telemetry::dump_json({.include_timers = false});
    stof::telemetry::global_registry().reset();
    return dump;
  };
  const std::string dump_a = counter_dump();
  const std::string dump_b = counter_dump();

  bool ok = true;
  if (!stof::serve::bench::digests_match(serial, continuous)) {
    std::cerr << "FAIL: per-session outputs differ between serial and "
                 "continuous scheduling\n";
    ok = false;
  }
  if (!(speedup >= gate)) {
    std::cerr << "FAIL: continuous batching speedup " << speedup
              << "x is below the " << gate << "x gate\n";
    ok = false;
  }
  if (dump_a != dump_b) {
    std::cerr << "FAIL: telemetry dump is not deterministic across runs\n";
    ok = false;
  }
  for (const char* key :
       {"serve.steps", "serve.decode.tokens", "serve.prefill.tokens",
        "serve.requests.submitted", "serve.requests.finished"}) {
    if (dump_a.find(std::string{"\""} + key + "\"") == std::string::npos) {
      std::cerr << "FAIL: counter " << key << " missing from dump\n";
      ok = false;
      continue;
    }
    // Counters render as "name": <integer>; a literal 0 value means the
    // engine never exercised that path.
    if (dump_a.find(std::string{"\""} + key + "\": 0") !=
        std::string::npos) {
      std::cerr << "FAIL: counter " << key << " is zero\n";
      ok = false;
    }
  }

  std::ofstream os(out_path);
  os << "{\n  \"schema\": \"stof-bench-serve-v1\",\n"
     << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
     << "  \"sessions\": " << tc.sessions << ",\n"
     << "  \"digests_match\": "
     << (stof::serve::bench::digests_match(serial, continuous) ? "true"
                                                               : "false")
     << ",\n  \"speedup_tokens_per_s\": " << speedup << ",\n";
  write_mode_json(os, "serial", serial);
  os << ",\n";
  write_mode_json(os, "continuous", continuous);
  os << "\n}\n";
  if (!os.good()) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
