// Reproduces Table 2: features of typical masking patterns at seq_len 1024
// (band width = global width = sqrt(seq_len) = 32, filling rate 10%).
// Also reports the storage formats each mask admits — the representability
// limitation of FlashMask's column-wise format motivating STOF's BSR.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/masks/mask.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/sparse/flashmask_format.hpp"

using namespace stof;

int main() {
  bench::banner("Table 2", "features of typical masking patterns (seq 1024)",
                "sliding/dilated 93.8%, longformer ~88.8%, bigbird ~80.8% "
                "sparsity; sliding is the only Continuous/Continuous pattern");

  struct Row {
    masks::PatternKind kind;
    const char* params;
  };
  const Row rows[] = {
      {masks::PatternKind::kSlidingWindow, "band=32"},
      {masks::PatternKind::kDilated, "band=32 rate=1"},
      {masks::PatternKind::kLongformer, "global=32 band=32"},
      {masks::PatternKind::kBigBird, "global=32 band=32 fill=10%"},
  };

  std::printf("%-15s %-26s %-11s %-11s %-13s %-9s\n", "Pattern", "Parameters",
              "Row dist.", "Col dist.", "Sparsity type", "Ratio");
  for (const auto& row : rows) {
    const masks::MaskSpec spec{.kind = row.kind, .seq_len = 1024};
    const masks::Mask m = spec.build();
    const masks::MaskStats s = masks::analyze(m);
    std::printf("%-15s %-26s %-11s %-11s %-13s %6.1f%%\n",
                to_string(row.kind).c_str(), row.params,
                to_string(s.row_distribution).c_str(),
                to_string(s.col_distribution).c_str(),
                spec.structured() ? "Structured" : "Unstructured",
                100.0 * s.sparsity);
  }

  bench::section("storage format support (motivation, paper §3.1)");
  std::printf("%-15s %-22s %-22s\n", "Pattern", "FlashMask column-wise",
              "STOF BSR (32x32)");
  for (const auto& row : rows) {
    const masks::Mask m =
        masks::MaskSpec{.kind = row.kind, .seq_len = 1024}.build();
    const bool fm = sparse::FlashmaskFormat::representable(m);
    const auto bsr = sparse::BsrMask::build(m, 32, 32);
    std::printf("%-15s %-22s full=%lld part=%lld unique_bitmaps=%lld\n",
                to_string(row.kind).c_str(),
                fm ? "representable" : "NOT representable",
                static_cast<long long>(bsr.full_count()),
                static_cast<long long>(bsr.part_count()),
                static_cast<long long>(bsr.unique_part_masks()));
  }
  return 0;
}
