// Shared harness for the serving benches: seeded open-loop trace
// generation and a mode runner that replays one trace through a serve
// Engine and reduces it to throughput/latency/occupancy statistics.
//
// All times are *simulated* microseconds (the engine clock advances by the
// gpusim Stream's estimate of each step), so every number here — including
// the continuous-vs-serial speedup the tier-1 gate tracks — is a
// deterministic function of (trace seed, engine config, device model).
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "stof/cluster/cluster.hpp"
#include "stof/serve/engine.hpp"

namespace stof::serve::bench {

struct TraceConfig {
  std::int64_t sessions = 64;
  std::uint64_t seed = 20260806;
  std::int64_t min_prompt = 16;
  std::int64_t max_prompt = 96;
  std::int64_t min_gen = 8;
  std::int64_t max_gen = 32;
  /// Small relative to the per-step kernel time on purpose: throughput is
  /// measured at saturation (requests queue faster than a batch-1 serial
  /// schedule can drain them).  An underloaded open-loop trace is arrival-
  /// bound and every scheduler trivially ties on makespan.
  double mean_interarrival_us = 10.0;
};

/// Seeded open-loop arrival trace over the four serving mask kinds.
inline std::vector<Request> make_trace(const TraceConfig& t) {
  Rng rng(t.seed);
  const masks::PatternKind kinds[] = {
      masks::PatternKind::kCausal, masks::PatternKind::kSlidingWindow,
      masks::PatternKind::kStrided, masks::PatternKind::kBigBird};
  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(t.sessions));
  double clock = 0;
  for (std::int64_t i = 0; i < t.sessions; ++i) {
    Request r;
    r.id = i;
    r.prompt_len =
        t.min_prompt + static_cast<std::int64_t>(rng.next_below(
                           static_cast<std::uint64_t>(t.max_prompt -
                                                      t.min_prompt + 1)));
    r.max_new_tokens =
        t.min_gen + static_cast<std::int64_t>(rng.next_below(
                        static_cast<std::uint64_t>(t.max_gen - t.min_gen +
                                                   1)));
    r.seed = rng.next_u64();
    r.mask_kind = kinds[rng.next_below(std::size(kinds))];
    clock += rng.next_double() * 2.0 * t.mean_interarrival_us;
    r.arrival_us = clock;
    trace.push_back(r);
  }
  return trace;
}

/// Bursty two-tenant trace for the SLO benches: tenant 0 submits a steady
/// stream of short-prompt, decode-heavy "interactive" requests at high
/// priority, while tenant 1 drops clustered bursts of near-max-context
/// "batch" prompts at low priority.  Under a FIFO whole-prefill schedule
/// each burst stalls every in-flight decode for several full prefills —
/// the head-of-line blocking that chunked prefill + priorities exist to
/// bound.  Returned sorted by arrival time (run_trace submits in order).
struct BurstTraceConfig {
  std::uint64_t seed = 20260807;
  std::int64_t interactive_sessions = 16;
  std::int64_t bursts = 2;
  std::int64_t burst_size = 24;
  double interactive_gap_us = 12.0;  ///< mean interactive inter-arrival
  double burst_period_us = 300.0;    ///< gap between burst clusters
  std::int64_t interactive_prompt_min = 8;
  std::int64_t interactive_prompt_max = 16;
  std::int64_t interactive_gen_min = 24;
  std::int64_t interactive_gen_max = 32;
  /// Long and numerous enough that the FIFO whole-prefill burst step is
  /// compute-dominated at full simulated-GPU utilization (the per-launch
  /// overhead is a few us — short prompts hide the head-of-line blocking
  /// the bench exists to expose).
  std::int64_t burst_prompt_min = 560;
  std::int64_t burst_prompt_max = 600;
  /// One token: the burst sessions' own decode traffic stays off the
  /// inter-token-gap distribution (a gap needs two tokens).
  std::int64_t burst_gen_min = 1;
  std::int64_t burst_gen_max = 1;
};

inline std::vector<Request> make_burst_trace(const BurstTraceConfig& t) {
  Rng rng(t.seed);
  std::vector<Request> trace;
  std::int64_t id = 0;
  double clock = 0;
  const auto draw = [&rng](std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  };
  for (std::int64_t i = 0; i < t.interactive_sessions; ++i) {
    Request r;
    r.id = id++;
    r.prompt_len = draw(t.interactive_prompt_min, t.interactive_prompt_max);
    r.max_new_tokens = draw(t.interactive_gen_min, t.interactive_gen_max);
    r.seed = rng.next_u64();
    r.mask_kind = masks::PatternKind::kCausal;
    clock += rng.next_double() * 2.0 * t.interactive_gap_us;
    r.arrival_us = clock;
    r.tenant = 0;
    r.priority = 2;
    r.deadline_us = clock + 2000.0;
    trace.push_back(r);
  }
  for (std::int64_t b = 0; b < t.bursts; ++b) {
    const double at = 40.0 + static_cast<double>(b) * t.burst_period_us;
    for (std::int64_t i = 0; i < t.burst_size; ++i) {
      Request r;
      r.id = id++;
      r.prompt_len = draw(t.burst_prompt_min, t.burst_prompt_max);
      r.max_new_tokens = draw(t.burst_gen_min, t.burst_gen_max);
      r.seed = rng.next_u64();
      r.mask_kind = masks::PatternKind::kCausal;
      r.arrival_us = at;  // the whole cluster lands on the same instant
      r.tenant = 1;
      r.priority = 0;
      trace.push_back(r);
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  return trace;
}

/// Templated-prompt trace for the prefix-sharing benches: every request
/// instantiates one of `templates` prompt templates (a shared system /
/// few-shot preamble, modeled as `template_len` tokens drawn from the
/// template's seed) followed by a short private suffix.  Template
/// popularity is Zipf-distributed — a few templates dominate, the tail is
/// cold — which is the regime where a radix-tree prefix cache pays: the
/// hot templates' KV pages are computed once and adopted by every later
/// arrival.  The trace itself is identical whether sharing is on or off
/// (the toggle lives in SchedulerConfig::prefix_sharing), so per-session
/// digests are directly comparable across the two runs.
struct PrefixTraceConfig {
  std::int64_t sessions = 64;
  std::uint64_t seed = 20260808;
  std::int64_t templates = 8;
  double zipf_s = 1.1;  ///< popularity exponent (higher = more skew)
  /// Shared tokens per template.  With the default suffix range the mean
  /// prompt is template_len + 16, i.e. ~80% of prompt tokens are shared.
  std::int64_t template_len = 64;
  std::int64_t min_suffix = 8;
  std::int64_t max_suffix = 24;
  std::int64_t min_gen = 8;
  std::int64_t max_gen = 32;
  double mean_interarrival_us = 10.0;
};

inline std::vector<Request> make_prefix_trace(const PrefixTraceConfig& t) {
  Rng rng(t.seed);
  const masks::PatternKind kinds[] = {
      masks::PatternKind::kCausal, masks::PatternKind::kSlidingWindow,
      masks::PatternKind::kStrided, masks::PatternKind::kBigBird};
  // Per-template identity: a stable seed (the token function for positions
  // below template_len) and a mask kind (prefix pages are only shareable
  // within a kind — the tree roots branch on it).
  std::vector<std::uint64_t> template_seeds;
  std::vector<masks::PatternKind> template_kinds;
  for (std::int64_t p = 0; p < t.templates; ++p) {
    template_seeds.push_back(rng.next_u64());
    template_kinds.push_back(kinds[static_cast<std::size_t>(p) %
                                   std::size(kinds)]);
  }
  // Zipf CDF over template ranks: weight(rank i) = 1 / (i + 1)^s.
  std::vector<double> cdf;
  double total = 0;
  for (std::int64_t p = 0; p < t.templates; ++p) {
    total += 1.0 / std::pow(static_cast<double>(p + 1), t.zipf_s);
    cdf.push_back(total);
  }
  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(t.sessions));
  double clock = 0;
  for (std::int64_t i = 0; i < t.sessions; ++i) {
    const double u = rng.next_double() * total;
    std::size_t p = 0;
    while (p + 1 < cdf.size() && cdf[p] < u) ++p;
    Request r;
    r.id = i;
    r.template_seed = template_seeds[p];
    r.template_len = t.template_len;
    r.mask_kind = template_kinds[p];
    const std::int64_t suffix =
        t.min_suffix + static_cast<std::int64_t>(rng.next_below(
                           static_cast<std::uint64_t>(t.max_suffix -
                                                      t.min_suffix + 1)));
    r.prompt_len = t.template_len + suffix;
    r.max_new_tokens =
        t.min_gen + static_cast<std::int64_t>(rng.next_below(
                        static_cast<std::uint64_t>(t.max_gen - t.min_gen +
                                                   1)));
    r.seed = rng.next_u64();
    clock += rng.next_double() * 2.0 * t.mean_interarrival_us;
    r.arrival_us = clock;
    trace.push_back(r);
  }
  return trace;
}

/// Engine sized for make_trace() workloads (max context 128 tokens).
inline EngineConfig serve_config(SchedulerMode mode) {
  EngineConfig cfg;
  cfg.heads = 4;
  cfg.head_size = 64;
  cfg.max_seq_len = 128;
  cfg.kv_blocks = 192;
  cfg.block_tokens = 16;
  cfg.prefill_params = mha::BlockwiseParams{16, 16};
  cfg.scheduler.mode = mode;
  cfg.scheduler.max_prefills_per_step = 8;
  cfg.scheduler.prefill_token_budget = 1024;
  cfg.scheduler.max_decode_batch = 64;
  return cfg;
}

/// Nearest-rank percentile of an unsorted sample (p in [0, 100]).
inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::llround(p / 100.0 * static_cast<double>(v.size() - 1)));
  return v[idx];
}

struct RunResult {
  double sim_us = 0;
  double tokens_per_s = 0;  ///< generated tokens per simulated second
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  double p50_first_token_us = 0;
  double p99_first_token_us = 0;
  /// Decode inter-token gap: simulated time between a session's consecutive
  /// generated tokens.  The p99 is the SLO the burst bench gates — a FIFO
  /// whole-prefill schedule blows it up whenever a long prompt stalls every
  /// in-flight decode (and preemption gaps land here too).
  double p50_decode_gap_us = 0;
  double p99_decode_gap_us = 0;
  double mean_decode_batch = 0;  ///< decode instances per decoding step
  double kv_peak_utilization = 0;
  EngineStats stats;
  std::size_t sim_kernel_launches = 0;
  std::map<SessionId, std::uint64_t> digests;
};

/// Replay `trace` open-loop through an engine with `cfg` and reduce.
/// `on_decode` (optional) receives every decoded token's attention output —
/// the INT8-tier benches use it to measure output error against an FP32
/// reference replay of the same trace.
inline RunResult run_trace(
    const EngineConfig& cfg, const std::vector<Request>& trace,
    const std::function<void(SessionId, std::int64_t, std::span<const half>)>&
        on_decode = {}) {
  Engine engine(cfg);
  if (on_decode) engine.on_decode_output = on_decode;
  std::int64_t decode_steps = 0;
  std::map<SessionId, double> last_token_at;
  std::vector<double> decode_gaps;
  engine.on_step = [&](const StepEvent& ev) {
    if (!ev.decodes.empty()) ++decode_steps;
    // Tokens land at the end of the step; the gap between a session's
    // consecutive tokens includes everything that delayed it — co-scheduled
    // prefill work in the same step, steps it sat out, preemption exile.
    const double token_at = ev.start_us + ev.duration_us;
    for (const auto id : ev.decodes) {
      const auto it = last_token_at.find(id);
      if (it != last_token_at.end()) decode_gaps.push_back(token_at - it->second);
      last_token_at[id] = token_at;
    }
  };
  std::size_t next = 0;
  while (next < trace.size() || !engine.idle()) {
    while (next < trace.size() &&
           trace[next].arrival_us <= engine.sim_time_us()) {
      engine.submit(trace[next++]);
    }
    if (engine.idle()) {
      engine.advance_to(trace[next].arrival_us);
      continue;
    }
    engine.step();
  }

  RunResult r;
  r.sim_us = engine.sim_time_us();
  r.stats = engine.stats();
  r.sim_kernel_launches = engine.stream().launch_count();
  std::vector<double> latency, first_token;
  for (const auto& [id, s] : engine.sessions()) {
    latency.push_back(s.finish_us - s.request.arrival_us);
    first_token.push_back(s.first_token_us - s.request.arrival_us);
    r.digests.emplace(id, s.digest);
  }
  r.p50_latency_us = percentile(latency, 50);
  r.p99_latency_us = percentile(latency, 99);
  r.p50_first_token_us = percentile(first_token, 50);
  r.p99_first_token_us = percentile(first_token, 99);
  r.p50_decode_gap_us = percentile(decode_gaps, 50);
  r.p99_decode_gap_us = percentile(decode_gaps, 99);
  r.tokens_per_s = static_cast<double>(r.stats.decode_tokens) /
                   (r.sim_us * 1e-6);
  r.mean_decode_batch =
      decode_steps == 0 ? 0
                        : static_cast<double>(r.stats.decode_tokens) /
                              static_cast<double>(decode_steps);
  r.kv_peak_utilization =
      static_cast<double>(engine.pool().peak_used_blocks()) /
      static_cast<double>(engine.pool().total_blocks());
  return r;
}

/// True when both runs produced byte-identical per-session outputs.
inline bool digests_match(const RunResult& a, const RunResult& b) {
  return a.digests == b.digests;
}

/// One tensor-parallel cluster replay, reduced for the scaling bench.
struct ClusterRunResult {
  int devices = 1;
  double sim_us = 0;
  double tokens_per_s = 0;   ///< generated tokens per simulated second
  double collective_us = 0;  ///< per-device collective time charged
  EngineStats stats;         ///< shard 0 (lock-step: identical across shards)
  std::map<SessionId, std::uint64_t> digests;  ///< cluster digests
};

/// Replay `trace` open-loop through an N-device tensor-parallel cluster.
/// Same arrival handling as run_trace(), so single-engine and cluster
/// replays of one trace are directly comparable.
inline ClusterRunResult run_cluster_trace(
    const stof::cluster::ClusterConfig& ccfg,
    const std::vector<Request>& trace) {
  stof::cluster::Cluster cluster(ccfg);
  std::size_t next = 0;
  while (next < trace.size() || !cluster.idle()) {
    while (next < trace.size() &&
           trace[next].arrival_us <= cluster.sim_time_us()) {
      cluster.submit(trace[next++]);
    }
    if (cluster.idle()) {
      cluster.advance_to(trace[next].arrival_us);
      continue;
    }
    cluster.step();
  }
  ClusterRunResult r;
  r.devices = cluster.devices();
  r.sim_us = cluster.sim_time_us();
  r.collective_us = cluster.collective_us();
  r.stats = cluster.stats();
  r.digests = cluster.digests();
  r.tokens_per_s =
      static_cast<double>(r.stats.decode_tokens) / (r.sim_us * 1e-6);
  return r;
}

}  // namespace stof::serve::bench
