// Reproduces Fig. 13: speedup over PyTorch Native on A100 of STOF with only
// the unified MHA module, only the operator-fusion module, and both.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/models/e2e.hpp"

using namespace stof;

int main() {
  bench::banner(
      "Figure 13",
      "STOF module ablation: speedup over PyTorch Native on A100",
      "fusion module contributes more at small inputs, MHA module more at "
      "large inputs; both together always highest");

  const std::pair<std::int64_t, std::int64_t> settings[] = {
      {1, 128}, {8, 512}, {16, 2048}};
  const auto dev = gpusim::a100();
  tuner::TuningOptions opt;

  std::printf("%-11s %-10s %14s %14s %14s\n", "Model", "(bs,seq)",
              "only MHA", "only fusion", "both");
  for (const auto& model : models::all_models()) {
    for (const auto& [bs, seq] : settings) {
      const double native =
          models::simulate_e2e(baselines::Method::kPytorchNative, model, bs,
                               seq, masks::PatternKind::kBigBird, dev)
              .time_us;
      const double mha_only =
          models::simulate_stof_variant(models::StofVariant::kMhaOnly, model,
                                        bs, seq, masks::PatternKind::kBigBird,
                                        dev, opt)
              .time_us;
      const double fusion_only =
          models::simulate_stof_variant(models::StofVariant::kFusionOnly,
                                        model, bs, seq,
                                        masks::PatternKind::kBigBird, dev, opt)
              .time_us;
      const double both =
          models::simulate_stof_variant(models::StofVariant::kFull, model, bs,
                                        seq, masks::PatternKind::kBigBird, dev,
                                        opt)
              .time_us;
      std::printf("%-11s %-10s %13.2fx %13.2fx %13.2fx\n", model.name.c_str(),
                  bench::cfg_label(bs, seq).c_str(), native / mha_only,
                  native / fusion_only, native / both);
    }
  }
  return 0;
}
