// Shared driver for the MHA comparisons of Fig. 10 (RTX 4090) and Fig. 11
// (A100): every method's simulated MHA time, normalized to PyTorch Native,
// over 4 mask patterns x batch sizes x sequence lengths (BERT-Base heads).
#pragma once

#include <cstdio>

#include "bench_util.hpp"
#include "stof/baselines/mha_methods.hpp"

namespace stof::bench {

inline void run_mha_figure(const gpusim::DeviceSpec& dev,
                           const char* artifact) {
  banner(artifact,
         ("MHA performance normalized to PyTorch Native on " + dev.name)
             .c_str(),
         "STOF highest everywhere; row-wise kernel at (1,128); largest wins "
         "on long sequences; ByteTransformer missing beyond seq 1024; "
         "MCFuser missing (OOM) at the largest scales");

  const masks::PatternKind kinds[] = {
      masks::PatternKind::kSlidingWindow, masks::PatternKind::kDilated,
      masks::PatternKind::kLongformer, masks::PatternKind::kBigBird};
  const std::int64_t batches[] = {1, 8, 16};
  const std::int64_t seqs[] = {128, 512, 1024, 2048, 4096};

  for (const auto kind : kinds) {
    section(to_string(kind) + " — speedup over PyTorch Native (x)");
    std::printf("%-10s", "(bs,seq)");
    for (const auto m : baselines::mha_methods()) {
      std::printf(" %15s", to_string(m).c_str());
    }
    std::printf("\n");

    for (const auto seq : seqs) {
      // Heavy artifacts (mask + BSR variants) shared across batch sizes.
      sparse::BsrCache cache(
          masks::MaskSpec{.kind = kind, .seq_len = seq}.build());
      for (const auto bs : batches) {
        const mha::MhaDims dims{bs, 12, seq, 64};  // BERT-Base MHA
        gpusim::Stream native_stream(dev);
        const double native =
            baselines::simulate_mha(baselines::Method::kPytorchNative, dims,
                                    kind, cache, native_stream)
                .time_us;
        std::printf("%-10s", cfg_label(bs, seq).c_str());
        for (const auto m : baselines::mha_methods()) {
          gpusim::Stream s(dev);
          const auto r = baselines::simulate_mha(m, dims, kind, cache, s);
          if (!r.supported) {
            std::printf(" %15s", "--");
          } else {
            std::printf(" %14.2fx", native / r.time_us);
          }
        }
        std::printf("\n");
      }
    }
  }
}

}  // namespace stof::bench
