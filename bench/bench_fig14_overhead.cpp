// Reproduces Fig. 14: time breakdown of the STOF overhead (analytical
// model, scheme conversion, reward algorithm) normalized to the tuning
// process, on A100.  Overheads are measured host wall time; the tuning
// process is the simulated tuning cost of Table 4.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/models/e2e.hpp"

using namespace stof;

int main() {
  bench::banner(
      "Figure 14",
      "STOF overhead breakdown normalized to the tuning process (A100)",
      "scheme conversion / reward dominate the (tiny) overhead at small "
      "inputs, the analytical model grows with input scale; total overhead "
      "under ~2.8% of tuning time");

  const std::pair<std::int64_t, std::int64_t> settings[] = {
      {1, 128}, {8, 512}, {16, 2048}};
  const auto dev = gpusim::a100();
  tuner::TuningOptions opt;

  std::printf("%-11s %-10s %12s %12s %12s %12s\n", "Model", "(bs,seq)",
              "analysis", "conversion", "reward", "total ovh");
  for (const auto& model : models::all_models()) {
    for (const auto& [bs, seq] : settings) {
      const auto r =
          models::simulate_e2e(baselines::Method::kStof, model, bs, seq,
                               masks::PatternKind::kBigBird, dev, opt);
      if (!r.tuning.has_value()) continue;
      const auto& b = r.tuning->breakdown;
      const double tuning_s = r.tuning->tuning_cost_s;
      const double analysis = b.analysis_us * 1e-6 / tuning_s * 100.0;
      const double conversion = b.conversion_us * 1e-6 / tuning_s * 100.0;
      const double reward = b.reward_us * 1e-6 / tuning_s * 100.0;
      std::printf("%-11s %-10s %11.4f%% %11.4f%% %11.4f%% %11.4f%%\n",
                  model.name.c_str(), bench::cfg_label(bs, seq).c_str(),
                  analysis, conversion, reward,
                  analysis + conversion + reward);
    }
  }
  return 0;
}
