// Reproduces Fig. 14: time breakdown of the STOF overhead (analytical
// model, scheme conversion, reward algorithm) normalized to the tuning
// process, on A100.  Overheads are measured host wall time; the tuning
// process is the simulated tuning cost of Table 4.
//
// The phase breakdown is read from the telemetry registry: the tuner
// records its phases as `wall.tuner.*` scoped timers and merges them into
// the global registry when telemetry is enabled, so this bench takes timer
// deltas around each tuning run instead of consuming ad-hoc report fields.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/models/e2e.hpp"
#include "stof/telemetry/telemetry.hpp"

using namespace stof;

namespace {

struct Phases {
  double analysis_us = 0;
  double conversion_us = 0;
  double reward_us = 0;
};

Phases snapshot() {
  const auto& reg = telemetry::global_registry();
  return {reg.timer("wall.tuner.analysis_us").total_us,
          reg.timer("wall.tuner.conversion_us").total_us,
          reg.timer("wall.tuner.reward_us").total_us};
}

}  // namespace

int main() {
  bench::banner(
      "Figure 14",
      "STOF overhead breakdown normalized to the tuning process (A100)",
      "scheme conversion / reward dominate the (tiny) overhead at small "
      "inputs, the analytical model grows with input scale; total overhead "
      "under ~2.8% of tuning time");

  const std::pair<std::int64_t, std::int64_t> settings[] = {
      {1, 128}, {8, 512}, {16, 2048}};
  const auto dev = gpusim::a100();
  tuner::TuningOptions opt;

  // The tuner merges its per-run phase timers into the global registry only
  // while telemetry is enabled; timers accumulate, so each row is a delta.
  telemetry::ScopedTelemetry telemetry_on(true);

  std::printf("%-11s %-10s %12s %12s %12s %12s\n", "Model", "(bs,seq)",
              "analysis", "conversion", "reward", "total ovh");
  for (const auto& model : models::all_models()) {
    for (const auto& [bs, seq] : settings) {
      const Phases before = snapshot();
      const auto r =
          models::simulate_e2e(baselines::Method::kStof, model, bs, seq,
                               masks::PatternKind::kBigBird, dev, opt);
      if (!r.tuning.has_value()) continue;
      const Phases after = snapshot();
      const double tuning_s = r.tuning->tuning_cost_s;
      const double analysis =
          (after.analysis_us - before.analysis_us) * 1e-6 / tuning_s * 100.0;
      const double conversion = (after.conversion_us - before.conversion_us) *
                                1e-6 / tuning_s * 100.0;
      const double reward =
          (after.reward_us - before.reward_us) * 1e-6 / tuning_s * 100.0;
      std::printf("%-11s %-10s %11.4f%% %11.4f%% %11.4f%% %11.4f%%\n",
                  model.name.c_str(), bench::cfg_label(bs, seq).c_str(),
                  analysis, conversion, reward,
                  analysis + conversion + reward);
    }
  }
  return 0;
}
