// Reproduces Fig. 3: speedup of fused over detached operators for the three
// operator mixes (Bias+LayerNorm = MI+MI, GEMM+LayerNorm = CI+MI,
// GEMM+GEMM = CI+CI) across (batch, seq, hidden) configurations on both
// simulated GPUs.  Each side is evaluated at its best parameter setting.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/ops/fused.hpp"

using namespace stof;

namespace {

double best_time(const std::vector<gpusim::KernelCost>& costs,
                 const gpusim::DeviceSpec& dev) {
  return ops::sequence_time_us(costs, dev);
}

struct Config {
  std::int64_t bs, seq, hidden;
};

const Config kConfigs[] = {
    {1, 128, 512},  {1, 128, 1024},  {8, 512, 512},
    {8, 512, 1024}, {16, 2048, 512}, {16, 2048, 1024},
};

double best_fused_bias_ln(std::int64_t rows, std::int64_t n,
                          const gpusim::DeviceSpec& dev) {
  double best = 1e300;
  for (const auto& p : ops::norm_param_space()) {
    best = std::min(best, gpusim::estimate_time_us(
                              ops::fused_bias_layernorm_cost(rows, n, p, dev),
                              dev));
  }
  return best;
}

double best_detached_bias_ln(std::int64_t rows, std::int64_t n,
                             const gpusim::DeviceSpec& dev) {
  double best = 1e300;
  for (const auto& ep : ops::elementwise_param_space()) {
    for (const auto& np : ops::norm_param_space()) {
      best = std::min(best,
                      best_time(ops::detached_bias_layernorm_cost(rows, n, ep,
                                                                  np, dev),
                                dev));
    }
  }
  return best;
}

double best_fused_gemm_ln(const ops::GemmDims& d,
                          const gpusim::DeviceSpec& dev) {
  double best = 1e300;
  for (const auto& p : ops::gemm_param_space()) {
    const auto c = ops::fused_gemm_layernorm_cost(d, p, dev);
    if (c.occupancy <= 0) continue;
    best = std::min(best, gpusim::estimate_time_us(c, dev));
  }
  return best;
}

double best_detached_gemm_ln(const ops::GemmDims& d,
                             const gpusim::DeviceSpec& dev) {
  double best = 1e300;
  for (const auto& p : ops::gemm_param_space()) {
    best = std::min(
        best, best_time(ops::detached_gemm_layernorm_cost(d, p, {}, dev), dev));
  }
  return best;
}

double best_fused_chain(const ops::GemmChainDims& d,
                        const gpusim::DeviceSpec& dev) {
  double best = 1e300;
  for (const auto& p : ops::gemm_param_space()) {
    const auto c = ops::fused_gemm_gemm_cost(d, p, dev);
    if (c.occupancy <= 0) continue;
    best = std::min(best, gpusim::estimate_time_us(c, dev));
  }
  return best;
}

double best_detached_chain(const ops::GemmChainDims& d,
                           const gpusim::DeviceSpec& dev) {
  double best = 1e300;
  for (const auto& p : ops::gemm_param_space()) {
    best =
        std::min(best, best_time(ops::detached_gemm_gemm_cost(d, p, dev), dev));
  }
  return best;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 3", "fused vs detached operators under different configurations",
      "Bias+LN fusion always wins; GEMM+LN wins big at hidden 512 and slows "
      "down at hidden 1024; GEMM+GEMM only ever helps at small scales");

  for (const auto& dev : bench::devices()) {
    bench::section(dev.name + " — speedup of fused over detached (>1 wins)");
    std::printf("%-16s %12s %12s %12s\n", "(bs,seq,hidden)", "Bias+LN",
                "GEMM+LN", "GEMM+GEMM");
    for (const auto& c : kConfigs) {
      const std::int64_t rows = c.bs * c.seq;
      const double mi = best_detached_bias_ln(rows, c.hidden, dev) /
                        best_fused_bias_ln(rows, c.hidden, dev);
      const ops::GemmDims gd{1, rows, c.hidden, c.hidden};
      const double cimi =
          best_detached_gemm_ln(gd, dev) / best_fused_gemm_ln(gd, dev);
      const ops::GemmChainDims cd{1, rows, c.hidden, c.hidden, c.hidden};
      const double cici =
          best_detached_chain(cd, dev) / best_fused_chain(cd, dev);
      std::printf("(%2lld,%5lld,%5lld) %11.2fx %11.2fx %11.2fx\n",
                  static_cast<long long>(c.bs), static_cast<long long>(c.seq),
                  static_cast<long long>(c.hidden), mi, cimi, cici);
    }
  }
  return 0;
}
