// Reproduces Fig. 11: MHA performance of all methods normalized to PyTorch
// Native on the (simulated) NVIDIA A100 PCIe.
#include "bench_mha_common.hpp"

int main() {
  stof::bench::run_mha_figure(stof::gpusim::a100(), "Figure 11");
  return 0;
}
