// google-benchmark microbenchmarks of the *functional* kernels on the host
// CPU.  These measure the reproduction's own execution speed (useful when
// hacking on the kernels); the paper's figures use the simulated device
// times from the other bench binaries.
#include <benchmark/benchmark.h>

#include "stof/core/rng.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/rowwise_kernel.hpp"
#include "stof/ops/fused.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/sparse/rowwise_mask.hpp"

namespace stof {
namespace {

struct MhaFixture {
  mha::MhaDims dims;
  TensorH q, k, v;
  masks::Mask mask;

  explicit MhaFixture(std::int64_t seq)
      : dims{1, 4, seq, 32},
        q(dims.qkv_shape()),
        k(dims.qkv_shape()),
        v(dims.qkv_shape()),
        mask(masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                             .seq_len = seq}
                 .build()) {
    Rng rng(7);
    q.fill_random(rng);
    k.fill_random(rng);
    v.fill_random(rng);
  }
};

void BM_ReferenceAttention(benchmark::State& state) {
  MhaFixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mha::reference_attention(f.dims, f.q, f.k, f.v, f.mask));
  }
}
BENCHMARK(BM_ReferenceAttention)->Arg(64)->Arg(128)->Arg(256);

void BM_RowwiseAttention(benchmark::State& state) {
  MhaFixture f(state.range(0));
  const auto rw = sparse::RowwiseMask::build(f.mask);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mha::rowwise_attention(f.dims, f.q, f.k, f.v, rw));
  }
}
BENCHMARK(BM_RowwiseAttention)->Arg(64)->Arg(128)->Arg(256);

void BM_BlockwiseAttention(benchmark::State& state) {
  MhaFixture f(state.range(0));
  const auto bsr = sparse::BsrMask::build(f.mask, 16, 16);
  const mha::BlockwiseParams params{16, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mha::blockwise_attention(f.dims, f.q, f.k, f.v, bsr, params));
  }
}
BENCHMARK(BM_BlockwiseAttention)->Arg(64)->Arg(128)->Arg(256);

void BM_BsrBuild(benchmark::State& state) {
  const auto mask = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                    .seq_len = state.range(0)}
                        .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::BsrMask::build(mask, 64, 64));
  }
}
BENCHMARK(BM_BsrBuild)->Arg(256)->Arg(1024)->Arg(2048);

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(9);
  TensorH a(Shape{1, n, n}), b(Shape{n, n}), c(Shape{1, n, n});
  a.fill_random(rng);
  b.fill_random(rng);
  for (auto _ : state) {
    ops::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_FusedBiasLayernorm(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(11);
  TensorH x(Shape{rows, 256}), bias(Shape{256}), gamma(Shape{256}),
      beta(Shape{256}), y(Shape{rows, 256});
  x.fill_random(rng);
  bias.fill_random(rng);
  gamma.fill_random(rng);
  beta.fill_random(rng);
  for (auto _ : state) {
    ops::fused_bias_layernorm(x, bias, gamma, beta, y);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_FusedBiasLayernorm)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace stof

BENCHMARK_MAIN();
