// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "stof/gpusim/device.hpp"

namespace stof::bench {

/// Header block naming the paper artifact this binary regenerates.
inline void banner(const char* artifact, const char* what,
                   const char* expected_shape) {
  std::printf("==============================================================================\n");
  std::printf("%s — %s\n", artifact, what);
  std::printf("Expected shape (paper): %s\n", expected_shape);
  std::printf("Times are simulated on the gpusim device model (see DESIGN.md);\n");
  std::printf("compare shapes and ratios, not absolute values.\n");
  std::printf("==============================================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Both simulated devices of the paper's Table 3.
inline std::vector<gpusim::DeviceSpec> devices() {
  return {gpusim::rtx4090(), gpusim::a100()};
}

/// Pretty "(bs, seq)" label.
inline std::string cfg_label(std::int64_t bs, std::int64_t seq) {
  return "(" + std::to_string(bs) + "," + std::to_string(seq) + ")";
}

}  // namespace stof::bench
