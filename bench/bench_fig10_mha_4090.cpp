// Reproduces Fig. 10: MHA performance of all methods normalized to PyTorch
// Native on the (simulated) NVIDIA RTX 4090.
#include "bench_mha_common.hpp"

int main() {
  stof::bench::run_mha_figure(stof::gpusim::rtx4090(), "Figure 10");
  return 0;
}
