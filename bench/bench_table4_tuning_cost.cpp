// Reproduces Table 4: tuning time of STOF, MCFuser, and Bolt for
// end-to-end inference on the (simulated) A100, in seconds.
//
// Tuning cost follows the model documented in stof/tuner/search_engine.hpp:
// one simulated compilation per previously-unseen template configuration
// plus repeated timed inference per executed candidate; STOF's caches and
// reward-based sampling keep its executed-candidate count low.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/models/e2e.hpp"

using namespace stof;

int main() {
  bench::banner("Table 4",
                "tuning time for end-to-end inference on A100 (seconds)",
                "STOF lowest in all cases; advantage grows with input scale "
                "(paper: 5.7x/5.8x vs MCFuser/Bolt at (16,2048))");

  const std::pair<std::int64_t, std::int64_t> settings[] = {
      {1, 128}, {8, 512}, {16, 2048}};
  const auto dev = gpusim::a100();
  tuner::TuningOptions opt;

  for (const auto& [bs, seq] : settings) {
    bench::section("input size " + bench::cfg_label(bs, seq));
    std::printf("%-10s %-12s %-12s %-12s %-14s %-12s\n", "Name", "BERT-Small",
                "BERT-Base", "BERT-Large", "GPT", "T5");
    struct TunerRow {
      const char* name;
      baselines::Method method;
    };
    const TunerRow tuners[] = {
        {"MCFuser", baselines::Method::kMcfuser},
        {"Bolt", baselines::Method::kBolt},
        {"STOF", baselines::Method::kStof},
    };
    for (const auto& t : tuners) {
      std::printf("%-10s", t.name);
      for (const auto& model : models::all_models()) {
        const auto r = models::simulate_e2e(t.method, model, bs, seq,
                                            masks::PatternKind::kBigBird, dev,
                                            opt);
        if (!r.supported || !r.tuning.has_value()) {
          std::printf(" %-12s", "--");
        } else {
          std::printf(" %-12.1f", r.tuning->tuning_cost_s);
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
