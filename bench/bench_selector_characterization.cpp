// Characterization of the analytical kernel selector (beyond the paper's
// figures): Eq. 1 threshold values and the resulting kernel choice across
// patterns and sequence lengths, plus the Eq. 2-driven block-size choice.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/mha/unified.hpp"

using namespace stof;

int main() {
  bench::banner("Selector characterization (extra)",
                "Eq. 1 thresholds and chosen kernels per pattern and seq_len",
                "row-wise for short concentrated masks; block-wise with "
                "scale-adapted tiles elsewhere");

  const masks::PatternKind kinds[] = {
      masks::PatternKind::kSlidingWindow, masks::PatternKind::kDilated,
      masks::PatternKind::kLongformer, masks::PatternKind::kBigBird,
      masks::PatternKind::kStrided};
  const std::int64_t seqs[] = {128, 256, 512, 1024, 2048, 4096};

  for (const auto& dev : bench::devices()) {
    bench::section(dev.name + " — Eq.1 threshold / chosen kernel / params");
    std::printf("%-15s", "pattern\\seq");
    for (const auto seq : seqs) std::printf(" %13lld", (long long)seq);
    std::printf("\n");
    for (const auto kind : kinds) {
      std::printf("%-15s", to_string(kind).c_str());
      for (const auto seq : seqs) {
        const mha::MhaDims dims{1, 12, seq, 64};
        mha::UnifiedMha attention(
            dims, masks::MaskSpec{.kind = kind, .seq_len = seq}.build(), dev);
        const auto& choice = attention.plan().choice;
        char cell[32];
        if (choice.kind == mha::KernelKind::kRowwise) {
          std::snprintf(cell, sizeof cell, "row(%+.2f)", choice.threshold);
        } else {
          std::snprintf(cell, sizeof cell, "%dx%d w%d",
                        choice.blockwise.block_m, choice.blockwise.block_n,
                        choice.blockwise.num_warps);
        }
        std::printf(" %13s", cell);
      }
      std::printf("\n");
    }
  }

  bench::section("analysis cost (mask analysis + planning wall time, ms)");
  std::printf("%-15s", "pattern\\seq");
  for (const auto seq : seqs) std::printf(" %9lld", (long long)seq);
  std::printf("\n");
  for (const auto kind : kinds) {
    std::printf("%-15s", to_string(kind).c_str());
    for (const auto seq : seqs) {
      const mha::MhaDims dims{1, 12, seq, 64};
      mha::UnifiedMha attention(
          dims, masks::MaskSpec{.kind = kind, .seq_len = seq}.build(),
          gpusim::a100());
      std::printf(" %9.1f", attention.plan().analysis_us / 1000.0);
    }
    std::printf("\n");
  }
  return 0;
}
