// Reproduces Fig. 4: speedup of fused operators using parameter settings
// from post-fusion tuning over settings inherited from individual (per
// detached operator) tuning.  The paper's point: the optimal setting of the
// detached operators is not the optimal setting of their fusion, so
// operator-by-operator sequential tuning is not viable.
#include <cstdio>

#include "bench_util.hpp"
#include "stof/ops/fused.hpp"

using namespace stof;

namespace {

struct Config {
  std::int64_t bs, seq, hidden;
};

const Config kConfigs[] = {
    {1, 128, 512},  {1, 128, 1024},  {8, 512, 512},
    {8, 512, 1024}, {16, 2048, 512}, {16, 2048, 1024},
};

// GEMM+LayerNorm: individual tuning picks the best *plain GEMM* setting,
// post-fusion tuning searches the fused kernel's own space.
double gemm_ln_gap(const ops::GemmDims& d, const gpusim::DeviceSpec& dev) {
  // Inherit the best individual-GEMM setting among those the fused kernel
  // can actually launch (an infeasible inherited setting fails to compile).
  double best_individual_gemm = 1e300;
  ops::GemmParams individual;
  for (const auto& p : ops::gemm_param_space()) {
    if (ops::fused_gemm_layernorm_cost(d, p, dev).occupancy <= 0) continue;
    const double t = gpusim::estimate_time_us(ops::gemm_cost(d, p, dev), dev);
    if (t < best_individual_gemm) {
      best_individual_gemm = t;
      individual = p;
    }
  }
  const auto inherited = ops::fused_gemm_layernorm_cost(d, individual, dev);
  const double inherited_us =
      inherited.occupancy > 0 ? gpusim::estimate_time_us(inherited, dev) : 1e300;

  double tuned_us = 1e300;
  for (const auto& p : ops::gemm_param_space()) {
    const auto c = ops::fused_gemm_layernorm_cost(d, p, dev);
    if (c.occupancy <= 0) continue;
    tuned_us = std::min(tuned_us, gpusim::estimate_time_us(c, dev));
  }
  return inherited_us / tuned_us;
}

// GEMM+GEMM: same comparison on the chain template.
double chain_gap(const ops::GemmChainDims& d, const gpusim::DeviceSpec& dev) {
  const ops::GemmDims first{d.batch, d.m, d.n1, d.k};
  double best_individual = 1e300;
  ops::GemmParams individual;
  for (const auto& p : ops::gemm_param_space()) {
    if (ops::fused_gemm_gemm_cost(d, p, dev).occupancy <= 0) continue;
    const double t =
        gpusim::estimate_time_us(ops::gemm_cost(first, p, dev), dev);
    if (t < best_individual) {
      best_individual = t;
      individual = p;
    }
  }
  const auto inherited = ops::fused_gemm_gemm_cost(d, individual, dev);
  const double inherited_us =
      inherited.occupancy > 0 ? gpusim::estimate_time_us(inherited, dev) : 1e300;
  double tuned_us = 1e300;
  for (const auto& p : ops::gemm_param_space()) {
    const auto c = ops::fused_gemm_gemm_cost(d, p, dev);
    if (c.occupancy <= 0) continue;
    tuned_us = std::min(tuned_us, gpusim::estimate_time_us(c, dev));
  }
  return inherited_us / tuned_us;
}

// Bias+LayerNorm: individual tuning picks the best elementwise setting for
// the bias kernel and inherits its block size into the fused reduction.
double bias_ln_gap(std::int64_t rows, std::int64_t n,
                   const gpusim::DeviceSpec& dev) {
  const double bytes = static_cast<double>(rows * n) * 2.0;
  double best_bias = 1e300;
  ops::EwParams individual;
  for (const auto& p : ops::elementwise_param_space()) {
    const double t = gpusim::estimate_time_us(
        ops::elementwise_cost(rows * n, 1.0, bytes, bytes, p, dev), dev);
    if (t < best_bias) {
      best_bias = t;
      individual = p;
    }
  }
  const ops::NormParams inherited{individual.block_size, 1};
  const double inherited_us = gpusim::estimate_time_us(
      ops::fused_bias_layernorm_cost(rows, n, inherited, dev), dev);
  double tuned_us = 1e300;
  for (const auto& p : ops::norm_param_space()) {
    tuned_us = std::min(tuned_us,
                        gpusim::estimate_time_us(
                            ops::fused_bias_layernorm_cost(rows, n, p, dev),
                            dev));
  }
  return inherited_us / tuned_us;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 4",
      "post-fusion tuning vs parameter settings inherited from individual "
      "tuning",
      "inherited settings are suboptimal: gaps >= 1x everywhere, largest for "
      "GEMM+LayerNorm (paper: avg 10.8x on A100)");

  for (const auto& dev : bench::devices()) {
    bench::section(dev.name +
                   " — speedup of post-fusion-tuned over inherited settings");
    std::printf("%-16s %12s %12s %12s\n", "(bs,seq,hidden)", "Bias+LN",
                "GEMM+LN", "GEMM+GEMM");
    for (const auto& c : kConfigs) {
      const std::int64_t rows = c.bs * c.seq;
      std::printf("(%2lld,%5lld,%5lld) %11.2fx %11.2fx %11.2fx\n",
                  static_cast<long long>(c.bs), static_cast<long long>(c.seq),
                  static_cast<long long>(c.hidden),
                  bias_ln_gap(rows, c.hidden, dev),
                  gemm_ln_gap({1, rows, c.hidden, c.hidden}, dev),
                  chain_gap({1, rows, c.hidden, c.hidden, c.hidden}, dev));
    }
  }
  return 0;
}
