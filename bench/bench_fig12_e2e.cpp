// Reproduces Fig. 12: end-to-end inference performance of all methods
// normalized to PyTorch Native, for BERT-Small/Base/Large, GPT, and T5
// under the BigBird mask at (1,128), (8,512), (16,2048), on both simulated
// GPUs.  STOF / MCFuser / Bolt run their tuners first (as in the paper).
#include <cstdio>

#include "bench_util.hpp"
#include "stof/models/e2e.hpp"

using namespace stof;

int main() {
  bench::banner(
      "Figure 12",
      "end-to-end inference normalized to PyTorch Native (BigBird mask)",
      "STOF highest across models and settings; ~1.4-1.7x over PyTorch "
      "Compile on average; advantage grows with input scale");

  const baselines::Method methods[] = {
      baselines::Method::kPytorchNative, baselines::Method::kPytorchCompile,
      baselines::Method::kByteTransformer, baselines::Method::kMcfuser,
      baselines::Method::kBolt, baselines::Method::kStof};
  const std::pair<std::int64_t, std::int64_t> settings[] = {
      {1, 128}, {8, 512}, {16, 2048}};

  tuner::TuningOptions opt;  // full defaults: the real tuning procedure

  for (const auto& dev : bench::devices()) {
    bench::section(dev.name + " — speedup over PyTorch Native (x)");
    std::printf("%-11s %-10s", "Model", "(bs,seq)");
    for (const auto m : methods) {
      std::printf(" %15s", to_string(m).c_str());
    }
    std::printf("\n");
    for (const auto& model : models::all_models()) {
      for (const auto& [bs, seq] : settings) {
        const double native =
            models::simulate_e2e(baselines::Method::kPytorchNative, model, bs,
                                 seq, masks::PatternKind::kBigBird, dev)
                .time_us;
        std::printf("%-11s %-10s", model.name.c_str(),
                    bench::cfg_label(bs, seq).c_str());
        for (const auto m : methods) {
          const auto r = models::simulate_e2e(
              m, model, bs, seq, masks::PatternKind::kBigBird, dev, opt);
          if (!r.supported) {
            std::printf(" %15s", "--");
          } else {
            std::printf(" %14.2fx", native / r.time_us);
          }
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
