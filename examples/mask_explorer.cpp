// Mask explorer — a small CLI over the mask / sparse-format / selector
// machinery.
//
//   $ ./example_mask_explorer [pattern] [seq_len]
//   $ ./example_mask_explorer bigbird 1024
//
// Prints the pattern's Table-2 statistics, its BSR structure at several
// granularities, which formats can represent it, and the kernel the
// analytical selector would choose on both simulated GPUs — everything the
// paper's §3 motivation discusses, interactively.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "stof/masks/mask.hpp"
#include "stof/mha/unified.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/sparse/flashmask_format.hpp"
#include "stof/sparse/rowwise_mask.hpp"

using namespace stof;

namespace {

masks::PatternKind parse_pattern(const std::string& name) {
  using masks::PatternKind;
  for (const auto kind :
       {PatternKind::kDense, PatternKind::kCausal, PatternKind::kSlidingWindow,
        PatternKind::kDilated, PatternKind::kGlobal, PatternKind::kRandom,
        PatternKind::kLongformer, PatternKind::kBigBird,
        PatternKind::kStrided}) {
    if (to_string(kind) == name) return kind;
  }
  std::fprintf(stderr,
               "unknown pattern '%s' (try: dense causal sliding_window "
               "dilated global random longformer bigbird strided)\n",
               name.c_str());
  std::exit(1);
}

void print_thumbnail(const masks::Mask& m) {
  // 32x32 downsampled view: '#' = mostly valid, '.' = mostly masked.
  const std::int64_t cells = std::min<std::int64_t>(32, m.seq_len());
  const std::int64_t step = m.seq_len() / cells;
  for (std::int64_t ci = 0; ci < cells; ++ci) {
    for (std::int64_t cj = 0; cj < cells; ++cj) {
      std::int64_t valid = 0;
      for (std::int64_t i = ci * step; i < (ci + 1) * step; ++i) {
        for (std::int64_t j = cj * step; j < (cj + 1) * step; ++j) {
          valid += m.at(i, j) ? 1 : 0;
        }
      }
      const double frac = static_cast<double>(valid) / (step * step);
      std::putchar(frac > 0.5 ? '#' : frac > 0.0 ? '+' : '.');
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "bigbird";
  const std::int64_t seq = argc > 2 ? std::atoll(argv[2]) : 1024;
  if (seq < 16 || seq > 16384) {
    std::fprintf(stderr, "seq_len must be in [16, 16384]\n");
    return 1;
  }

  const masks::MaskSpec spec{.kind = parse_pattern(name), .seq_len = seq};
  const masks::Mask mask = spec.build();
  const masks::MaskStats stats = masks::analyze(mask);

  std::printf("pattern %s, seq_len %lld\n", name.c_str(),
              static_cast<long long>(seq));
  print_thumbnail(mask);

  std::printf("\nTable-2 features:\n");
  std::printf("  sparsity        %.1f%%\n", 100.0 * stats.sparsity);
  std::printf("  row dist.       %s\n",
              to_string(stats.row_distribution).c_str());
  std::printf("  column dist.    %s\n",
              to_string(stats.col_distribution).c_str());
  std::printf("  sparsity type   %s\n",
              spec.structured() ? "Structured" : "Unstructured");

  std::printf("\nBSR structure:\n");
  std::printf("  %8s %8s %8s %8s %10s %12s\n", "blocks", "full", "part",
              "unique", "valid %", "bytes");
  for (const int b : {16, 32, 64, 128}) {
    const auto bsr = sparse::BsrMask::build(mask, b, b);
    std::printf("  %5dx%-3d %8lld %8lld %8lld %9.1f%% %12zu\n", b, b,
                static_cast<long long>(bsr.full_count()),
                static_cast<long long>(bsr.part_count()),
                static_cast<long long>(bsr.unique_part_masks()),
                100.0 * bsr.valid_ratio(), bsr.storage_bytes());
  }

  const auto rw = sparse::RowwiseMask::build(mask);
  std::printf("\nrow-wise format: %lld valid elements, %.2f segments/row, "
              "%zu bytes\n",
              static_cast<long long>(rw.valid_count()),
              rw.mean_segments_per_row(), rw.storage_bytes());
  std::printf("FlashMask column-wise format: %s\n",
              sparse::FlashmaskFormat::representable(mask)
                  ? "representable"
                  : "NOT representable (discrete column runs)");

  std::printf("\nkernel selection (BERT-Base heads, batch 1):\n");
  for (const auto& dev : {gpusim::rtx4090(), gpusim::a100()}) {
    mha::UnifiedMha attention({1, 12, seq, 64}, mask, dev);
    const auto& choice = attention.plan().choice;
    gpusim::Stream stream(dev);
    const double t = attention.simulate(stream);
    if (choice.kind == mha::KernelKind::kRowwise) {
      std::printf("  %-8s row-wise   (%d warps/block)          %10.2f us\n",
                  dev.name.c_str(), choice.rowwise.warps_per_block, t);
    } else {
      std::printf("  %-8s block-wise (%dx%d, %d warps)          %8.2f us\n",
                  dev.name.c_str(), choice.blockwise.block_m,
                  choice.blockwise.block_n, choice.blockwise.num_warps, t);
    }
  }
  return 0;
}
