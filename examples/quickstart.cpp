// Quickstart: run STOF's unified sparse MHA on a BigBird mask and compare
// against the dense masked reference.
//
//   $ ./example_quickstart
//
// Walks through the library's core workflow:
//   1. describe the attention problem (MhaDims) and the mask (MaskSpec),
//   2. plan: UnifiedMha analyzes the mask (Eq. 1/2) and picks a kernel,
//   3. run: functional execution + simulated kernel cost on a Stream,
//   4. verify against the reference and inspect the plan.
#include <cstdio>

#include "stof/core/rng.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/unified.hpp"

using namespace stof;

int main() {
  // 1. An attention problem: batch 2, 12 heads, 256 tokens, head size 64
  //    (BERT-Base geometry), masked with BigBird sparsity.
  const mha::MhaDims dims{/*batch=*/2, /*heads=*/12, /*seq_len=*/256,
                          /*head_size=*/64};
  const masks::MaskSpec spec{.kind = masks::PatternKind::kBigBird,
                             .seq_len = dims.seq_len};
  const masks::Mask mask = spec.build();
  std::printf("mask: %s, %lldx%lld, %.1f%% sparse\n",
              to_string(spec.kind).c_str(),
              static_cast<long long>(mask.seq_len()),
              static_cast<long long>(mask.seq_len()),
              100.0 * mask.sparsity());

  // 2. Plan on the simulated A100: the analytical model selects the
  //    row-wise or block-wise kernel and its launch parameters.
  const auto device = gpusim::a100();
  mha::UnifiedMha attention(dims, mask, device);
  const auto& plan = attention.plan();
  if (plan.choice.kind == mha::KernelKind::kRowwise) {
    std::printf("plan: row-wise kernel, %d warps/block (Eq.1 threshold %.3f)\n",
                plan.choice.rowwise.warps_per_block, plan.choice.threshold);
  } else {
    std::printf(
        "plan: block-wise kernel, BLOCK_M=%d BLOCK_N=%d num_warps=%d "
        "(Eq.1 threshold %.3f)\n",
        plan.choice.blockwise.block_m, plan.choice.blockwise.block_n,
        plan.choice.blockwise.num_warps, plan.choice.threshold);
  }

  // 3. Random FP16 inputs, one fused kernel launch.
  Rng rng(42);
  TensorH q(dims.qkv_shape()), k(dims.qkv_shape()), v(dims.qkv_shape());
  q.fill_random(rng);
  k.fill_random(rng);
  v.fill_random(rng);

  gpusim::Stream stream(device);
  const TensorH out = attention.run(q, k, v, stream);
  std::printf("ran %zu fused kernel launch(es): %.2f us simulated on %s\n",
              stream.records().size(), stream.total_us(),
              device.name.c_str());

  // 4. Verify against the dense masked reference.
  const TensorH ref = mha::reference_attention(dims, q, k, v, mask);
  std::printf("max |out - reference| = %.2e (FP16 rounding)\n",
              max_abs_diff(out, ref));

  // Bonus: what would dense attention have cost?
  mha::UnifiedMha dense_attention(dims, masks::dense(dims.seq_len), device);
  gpusim::Stream dense_stream(device);
  dense_attention.simulate(dense_stream);
  std::printf("dense attention would cost %.2f us -> sparsity saves %.1f%%\n",
              dense_stream.total_us(),
              100.0 * (1.0 - stream.total_us() / dense_stream.total_us()));
  return 0;
}
