// Variable-length batching: serving real traffic without paying for
// padding (the scenario ByteTransformer is built around, handled here by
// STOF's block-sparse machinery).
//
//   $ ./example_varlen_batching
//
// Builds a batch of mixed-length sequences, compares padded-dense cost
// against the variable-length sparse kernel, and verifies the numerics on
// a small slice.
#include <cstdio>

#include "stof/core/rng.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/varlen.hpp"

using namespace stof;

int main() {
  // A serving batch: one long document, mostly short queries.
  const mha::VarlenBatch batch{2048, {2048, 384, 256, 256, 192, 128, 96, 64}};
  const mha::MhaDims dims{batch.batch(), 12, batch.seq_len, 64};
  const auto device = gpusim::a100();
  const auto base = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                    .seq_len = batch.seq_len}
                        .build();

  std::printf("batch of %lld sequences, padded length %lld\n",
              static_cast<long long>(batch.batch()),
              static_cast<long long>(batch.seq_len));
  std::printf("lengths:");
  for (const auto l : batch.lengths) {
    std::printf(" %lld", static_cast<long long>(l));
  }
  std::printf("\npadding waste under dense batching: %.1f%% of tokens\n\n",
              100.0 * batch.padding_ratio());

  const mha::BlockwiseParams params{64, 64, 4};
  const mha::VarlenBatch padded{
      batch.seq_len,
      std::vector<std::int64_t>(static_cast<std::size_t>(batch.batch()),
                                batch.seq_len)};

  const double t_padded = gpusim::estimate_time_us(
      mha::varlen_cost(dims, base, padded, params, device), device);
  const double t_varlen = gpusim::estimate_time_us(
      mha::varlen_cost(dims, base, batch, params, device), device);
  std::printf("MHA cost, padded to %lld everywhere : %10.1f us\n",
              static_cast<long long>(batch.seq_len), t_padded);
  std::printf("MHA cost, variable-length kernel    : %10.1f us  (%.2fx)\n\n",
              t_varlen, t_padded / t_varlen);

  // Numerics check on a small instance of the same shape of batch.
  const mha::VarlenBatch small_batch{64, {64, 24, 10}};
  const mha::MhaDims small_dims{3, 2, 64, 16};
  const auto small_base = masks::MaskSpec{
      .kind = masks::PatternKind::kBigBird, .seq_len = 64};
  Rng rng(17);
  TensorH q(small_dims.qkv_shape()), k(small_dims.qkv_shape()),
      v(small_dims.qkv_shape());
  q.fill_random(rng);
  k.fill_random(rng);
  v.fill_random(rng);
  const TensorH out = mha::varlen_attention(small_dims, q, k, v,
                                            small_base.build(), small_batch);

  // The shortest element's padded rows must be exactly zero.
  bool all_zero = true;
  for (std::int64_t s = 10; s < 64; ++s) {
    for (std::int64_t e = 0; e < 16; ++e) {
      all_zero = all_zero && float(out.at(2 * 2, s, e)) == 0.0f;
    }
  }
  std::printf("numerics: padded rows of the shortest sequence are %s\n",
              all_zero ? "exactly zero (as required)" : "NON-ZERO (bug!)");
  return all_zero ? 0 : 1;
}
