// Tune-and-deploy: run STOF's two-stage search engine on BERT-Base,
// inspect the discovered fusion scheme, and compare against the untuned
// initial plan and the baselines' plans.
//
//   $ ./example_tune_and_deploy
//
// Shows the operator-fusion module end to end: graph capture, rule-based
// initialization, fusion expansion with rollback, reward-based parameter
// sampling, and the final scheme in the paper's binary/hex encoding.
#include <cstdio>

#include "stof/models/e2e.hpp"
#include "stof/models/plan_io.hpp"

using namespace stof;

namespace {

void describe_scheme(const graph::Graph& g, const fusion::FusionScheme& s,
                     int max_segments) {
  const auto segs = s.segments();
  std::printf("  %zu segments, hex code %s\n", segs.size(),
              s.to_hex().c_str());
  int shown = 0;
  for (const auto& seg : segs) {
    if (seg.size() < 2) continue;  // only show actual fusions
    if (++shown > max_segments) {
      std::printf("    ...\n");
      break;
    }
    std::printf("    [%lld-%lld] %s:", static_cast<long long>(seg.begin),
                static_cast<long long>(seg.end - 1),
                to_string(fusion::classify_segment(g, seg)).c_str());
    for (std::int64_t i = seg.begin; i < seg.end; ++i) {
      std::printf(" %s", g.node(i).label.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const auto model = models::bert_base();
  const std::int64_t batch = 8;
  const std::int64_t seq_len = 512;
  const auto device = gpusim::a100();
  const auto pattern = masks::PatternKind::kBigBird;

  std::printf("tuning %s at (%lld, %lld), %s mask, on %s\n\n",
              model.name.c_str(), static_cast<long long>(batch),
              static_cast<long long>(seq_len), to_string(pattern).c_str(),
              device.name.c_str());

  models::Executor exec(model.build_graph(batch, seq_len),
                        {batch, model.heads, seq_len, model.head_size()},
                        {.kind = pattern, .seq_len = seq_len}, device,
                        baselines::Method::kStof);

  // The rule-based initial scheme (analysis-model driven).
  const auto initial = baselines::stof_initial_plan(exec.graph(), &device);
  const double initial_us = exec.simulate(initial).time_us;
  std::printf("initial scheme (rule-based):\n");
  describe_scheme(exec.graph(), initial.scheme, 4);
  std::printf("  simulated inference: %.0f us\n\n", initial_us);

  // Two-stage tuning.
  tuner::TuningOptions opt;
  const auto report = tuner::SearchEngine(exec, opt).tune();
  std::printf("tuned scheme (after expansion + reward sampling):\n");
  describe_scheme(exec.graph(), report.best_plan.scheme, 6);
  std::printf("  simulated inference: %.0f us (%.2fx over initial)\n",
              report.best_time_us, initial_us / report.best_time_us);
  std::printf("  search: %d schemes explored, %d evaluations, %d cache "
              "hits, %.1f s simulated tuning cost\n\n",
              report.schemes_explored, report.evaluations, report.cache_hits,
              report.tuning_cost_s);

  // Deploy: compare against the baseline methods' plans on this executor.
  std::printf("comparison on the same executor:\n");
  struct Row {
    const char* label;
    baselines::Method method;
  };
  for (const auto& row :
       {Row{"PyTorch-Native", baselines::Method::kPytorchNative},
        Row{"PyTorch-Compile", baselines::Method::kPytorchCompile}}) {
    const auto r = models::simulate_e2e(row.method, model, batch, seq_len,
                                        pattern, device);
    std::printf("  %-16s %8.0f us (%5.2fx vs tuned STOF)\n", row.label,
                r.time_us, r.time_us / report.best_time_us);
  }
  std::printf("  %-16s %8.0f us\n", "STOF (tuned)", report.best_time_us);

  // Deploy-later: persist the tuned plan next to the (serializable) mask.
  const std::string plan_path = "/tmp/bert_base_bigbird_a100.stofplan";
  models::save_plan_file(report.best_plan, plan_path);
  const auto deployed = models::load_plan_file(plan_path);
  std::printf("\nplan saved to %s and reloaded: %.0f us (identical)\n",
              plan_path.c_str(), exec.simulate(deployed).time_us);
  return 0;
}
