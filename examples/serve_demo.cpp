// Continuous-batching serving demo: three sessions with mixed mask kinds
// arrive on a short open-loop trace and are served by stof::serve, printing
// the batch composition of every engine step — watch prefills get admitted
// while earlier sessions keep decoding, all in one ragged batch per step.
//
//   $ ./example_serve_demo
//
// Everything is deterministic: the sim clock advances by the gpusim cost of
// each step's kernels, and session outputs are a pure function of each
// request's seed (the same digests would come out of a serial schedule).
#include <cstdio>
#include <string>

#include "stof/serve/engine.hpp"

using namespace stof;

namespace {

const char* kind_name(masks::PatternKind kind) {
  switch (kind) {
    case masks::PatternKind::kCausal: return "causal";
    case masks::PatternKind::kSlidingWindow: return "sliding-window";
    case masks::PatternKind::kStrided: return "strided";
    case masks::PatternKind::kBigBird: return "bigbird";
    default: return "other";
  }
}

std::string id_list(const std::vector<serve::SessionId>& ids) {
  if (ids.empty()) return "-";
  std::string out;
  for (const auto id : ids) {
    if (!out.empty()) out += ',';
    out += 's';
    out += std::to_string(id);
  }
  return out;
}

}  // namespace

int main() {
  serve::EngineConfig cfg;
  cfg.heads = 2;
  cfg.head_size = 32;
  cfg.max_seq_len = 64;
  cfg.kv_blocks = 12;
  cfg.block_tokens = 16;
  cfg.prefill_params = mha::BlockwiseParams{16, 16};
  cfg.scheduler.mode = serve::SchedulerMode::kContinuous;
  cfg.scheduler.prefill_token_budget = 64;

  const serve::Request trace[] = {
      {0, 24, 6, 7001, masks::PatternKind::kCausal, 0.0},
      {1, 12, 8, 7002, masks::PatternKind::kSlidingWindow, 0.0},
      {2, 18, 5, 7003, masks::PatternKind::kBigBird, 40.0},
  };

  serve::Engine engine(cfg);
  engine.on_step = [&](const serve::StepEvent& ev) {
    std::printf(
        "step %3lld  t=%8.1fus  +%6.1fus  prefill[%-8s] decode[%-11s]"
        "  kv %2lld/%lld%s\n",
        static_cast<long long>(ev.step), ev.start_us, ev.duration_us,
        id_list(ev.prefills).c_str(), id_list(ev.decodes).c_str(),
        static_cast<long long>(ev.kv_used_blocks),
        static_cast<long long>(cfg.kv_blocks),
        ev.evicted.empty()
            ? ""
            : ("  evicted " + id_list(ev.evicted)).c_str());
  };

  std::printf("serving 3 sessions on a %lld-block paged KV pool:\n",
              static_cast<long long>(cfg.kv_blocks));
  for (const auto& r : trace) {
    std::printf("  s%lld: prompt %lld, generate %lld, %s mask, arrives "
                "t=%.0fus\n",
                static_cast<long long>(r.id),
                static_cast<long long>(r.prompt_len),
                static_cast<long long>(r.max_new_tokens),
                kind_name(r.mask_kind), r.arrival_us);
  }
  std::printf("\n");

  std::size_t next = 0;
  const std::size_t n = std::size(trace);
  while (next < n || !engine.idle()) {
    while (next < n && trace[next].arrival_us <= engine.sim_time_us()) {
      engine.submit(trace[next++]);
    }
    if (engine.idle()) {
      engine.advance_to(trace[next].arrival_us);
      continue;
    }
    engine.step();
  }

  std::printf("\nall sessions finished at t=%.1fus (simulated):\n",
              engine.sim_time_us());
  for (const auto& r : trace) {
    const serve::Session& s = engine.session(r.id);
    std::printf("  s%lld: %lld tokens generated, first token %.1fus, "
                "finished %.1fus, digest %016llx\n",
                static_cast<long long>(r.id),
                static_cast<long long>(s.generated), s.first_token_us,
                s.finish_us,
                static_cast<unsigned long long>(s.digest));
  }
  const auto& st = engine.stats();
  std::printf("engine: %lld steps, %lld prefill + %lld decode tokens, "
              "%lld preemptions\n",
              static_cast<long long>(st.steps),
              static_cast<long long>(st.prefill_tokens),
              static_cast<long long>(st.decode_tokens),
              static_cast<long long>(st.preemptions));
  return 0;
}
