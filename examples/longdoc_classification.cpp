// Long-document classification with a Longformer-masked BERT encoder —
// the workload the paper's introduction motivates (long text sequences
// need sparse attention to stay affordable).
//
//   $ ./example_longdoc_classification
//
// Compares end-to-end simulated inference of a BERT-Base encoder over a
// 4096-token document under dense vs Longformer attention across methods,
// showing where the sparse unified MHA kernel pays off.
#include <cstdio>

#include "stof/models/e2e.hpp"

using namespace stof;

int main() {
  const auto model = models::bert_base();
  const std::int64_t batch = 2;
  const std::int64_t seq_len = 4096;  // long document
  const auto device = gpusim::a100();

  std::printf("workload: %s, batch %lld, %lld-token documents on %s\n\n",
              model.name.c_str(), static_cast<long long>(batch),
              static_cast<long long>(seq_len), device.name.c_str());

  tuner::TuningOptions opt;
  opt.stage1_max_evals = 80;  // quick tuning pass for the example
  opt.stage2_iterations = 2;

  // Dense attention: the quadratic baseline.
  const auto dense_native =
      models::simulate_e2e(baselines::Method::kPytorchNative, model, batch,
                           seq_len, masks::PatternKind::kDense, device);
  std::printf("dense attention, PyTorch-Native : %10.0f us\n",
              dense_native.time_us);

  // Longformer (global + sliding window) restores linear-ish cost.
  const auto spec = masks::MaskSpec{.kind = masks::PatternKind::kLongformer,
                                    .seq_len = seq_len};
  std::printf("longformer mask sparsity        : %10.1f %%\n\n",
              100.0 * spec.build().sparsity());

  struct Row {
    const char* label;
    baselines::Method method;
  };
  const Row rows[] = {
      {"PyTorch-Native", baselines::Method::kPytorchNative},
      {"PyTorch-Compile", baselines::Method::kPytorchCompile},
      {"STOF (tuned)", baselines::Method::kStof},
  };
  double best_native = 0;
  for (const auto& row : rows) {
    const auto r = models::simulate_e2e(row.method, model, batch, seq_len,
                                        masks::PatternKind::kLongformer,
                                        device, opt);
    if (row.method == baselines::Method::kPytorchNative) {
      best_native = r.time_us;
    }
    std::printf("longformer, %-18s : %10.0f us  (%.2fx vs native, %.2fx vs "
                "dense)\n",
                row.label, r.time_us, best_native / r.time_us,
                dense_native.time_us / r.time_us);
    if (r.tuning.has_value()) {
      std::printf("    tuning: %d candidate evaluations, %d cache hits, "
                  "%.1f s simulated tuning time\n",
                  r.tuning->evaluations, r.tuning->cache_hits,
                  r.tuning->tuning_cost_s);
    }
  }
  return 0;
}
