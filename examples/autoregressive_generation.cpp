// Autoregressive generation with a GPT decoder under sliding-window
// attention — the decoder-side workload of the paper's evaluation.
//
//   $ ./example_autoregressive_generation
//
// Simulates a prefill pass followed by a short decode loop.  At every step
// the causal sliding-window mask grows by one row; STOF replans when the
// sequence length crosses a power of two (the kernel-selection boundary of
// Eq. 1), demonstrating the row-wise -> block-wise transition live.
#include <cstdio>

#include "stof/core/rng.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/decode.hpp"
#include "stof/mha/unified.hpp"
#include "stof/models/e2e.hpp"

using namespace stof;

namespace {

// Causal sliding-window mask with the paper's sqrt(seq_len) window: token i
// attends to the most recent sqrt(seq_len) tokens.
masks::Mask causal_window(std::int64_t seq_len) {
  const auto band = masks::MaskSpec{
      .kind = masks::PatternKind::kSlidingWindow, .seq_len = seq_len};
  return masks::causal(seq_len) & band.build();
}

}  // namespace

int main() {
  const auto model = models::gpt();
  const auto device = gpusim::rtx4090();

  // --- Prefill: the full prompt in one pass -------------------------------
  const std::int64_t prompt_len = 512;
  std::printf(
      "prefill: %s, %lld-token prompt, causal sqrt-window mask on %s\n",
      model.name.c_str(), static_cast<long long>(prompt_len),
      device.name.c_str());

  tuner::TuningOptions opt;
  opt.stage1_max_evals = 60;
  opt.stage2_iterations = 2;
  const auto prefill =
      models::simulate_e2e(baselines::Method::kStof, model, 1, prompt_len,
                           masks::PatternKind::kSlidingWindow, device, opt);
  const auto prefill_native =
      models::simulate_e2e(baselines::Method::kPytorchNative, model, 1,
                           prompt_len, masks::PatternKind::kSlidingWindow,
                           device);
  std::printf("  STOF %.0f us vs PyTorch-Native %.0f us (%.2fx)\n\n",
              prefill.time_us, prefill_native.time_us,
              prefill_native.time_us / prefill.time_us);

  // --- Decode: per-token attention over the growing context ----------------
  std::printf("decode steps (MHA only, batch 1, %lld heads):\n",
              static_cast<long long>(model.heads));
  std::printf("%8s %12s %14s %12s\n", "context", "kernel", "params",
              "time (us)");
  for (const std::int64_t ctx : {128, 256, 512, 1024, 2048}) {
    const mha::MhaDims dims{1, model.heads, ctx, model.head_size()};
    mha::UnifiedMha attention(dims, causal_window(ctx), device);
    gpusim::Stream stream(device);
    const double t = attention.simulate(stream);
    const auto& choice = attention.plan().choice;
    char params[64];
    if (choice.kind == mha::KernelKind::kRowwise) {
      std::snprintf(params, sizeof params, "%d warps",
                    choice.rowwise.warps_per_block);
    } else {
      std::snprintf(params, sizeof params, "%dx%d w%d",
                    choice.blockwise.block_m, choice.blockwise.block_n,
                    choice.blockwise.num_warps);
    }
    std::printf("%8lld %12s %14s %12.2f\n", static_cast<long long>(ctx),
                choice.kind == mha::KernelKind::kRowwise ? "row-wise"
                                                         : "block-wise",
                params, t);
  }
  // Contrast: the denser bidirectional prefill mask at the same length.
  {
    const mha::MhaDims dims{1, model.heads, 2048, model.head_size()};
    const auto bidi = masks::MaskSpec{
        .kind = masks::PatternKind::kSlidingWindow, .seq_len = 2048};
    mha::UnifiedMha attention(dims, bidi.build(), device);
    gpusim::Stream stream(device);
    const double t = attention.simulate(stream);
    std::printf("%8s %12s %14s %12.2f   (bidirectional prefill mask)\n",
                "2048",
                attention.plan().choice.kind == mha::KernelKind::kRowwise
                    ? "row-wise"
                    : "block-wise",
                "", t);
  }

  std::printf(
      "\nEq. 1 keeps the row-wise kernel for the concentrated causal decode\n"
      "masks (few valid blocks per row, high locality) and switches to the\n"
      "block-wise kernel for the denser bidirectional prefill mask.\n");

  // --- KV-cache decode kernel: one token against the cached context --------
  std::printf("\nsingle-token KV-cache decode kernel (mha::decode_attention):\n");
  std::printf("%8s %10s %12s\n", "context", "attended", "time (us)");
  for (const std::int64_t ctx : {512, 1024, 2048, 4096}) {
    const mha::DecodeDims ddims{1, model.heads, ctx, model.head_size()};
    const auto mask = causal_window(ctx);
    const auto cols = mha::decode_columns(mask, ctx - 1, ctx);
    const double t = gpusim::estimate_time_us(
        mha::decode_cost(ddims, static_cast<std::int64_t>(cols.size()),
                         device),
        device);
    std::printf("%8lld %10zu %12.2f\n", static_cast<long long>(ctx),
                cols.size(), t);
  }
  std::printf("Per-step decode stays launch-bound: the sparse mask keeps the\n"
              "attended set near-constant while the cache grows.\n");
  return 0;
}
