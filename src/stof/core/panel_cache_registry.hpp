// Persistent cross-call float-panel cache.
//
// The packed-FP32 engine reads every half operand through an exact
// half->float conversion.  PR 1/2 made that conversion a per-*call* cost
// (KvPanelCache, GEMM operand packs); this registry makes it a per-*write*
// cost: a converted panel is kept across calls, keyed on the identity of
// the half storage it was converted from, and is reused until that storage
// changes.  Three properties make the reuse safe:
//
//   * Keying on storage identity, not content: every Tensor allocation (and
//     every synthetic key a holder mints via next_storage_id()) is
//     process-unique, so a key can never alias two different buffers.
//   * Version tags: the caller passes the storage's current mutation stamp;
//     a cached panel whose tag differs is discarded and reconverted —
//     validity is checked, never assumed.
//   * Pinning: get_or_convert() hands out shared ownership of the float
//     buffer.  Capacity eviction or invalidation removes the registry
//     entry but cannot free a panel a kernel still holds, and a buffer
//     never reallocates after creation (incremental extension fills more
//     of the same allocation), so panel pointers stay stable for as long
//     as the handle lives.
//
// Incremental extension serves append-only storages (the serving KV pool's
// pages): a hit whose valid prefix is shorter than requested converts only
// the new suffix, which is what turns per-decode-step conversion from
// O(context) into O(newly appended rows).
//
// The registry also caches INT8-quantized panels (get_or_convert_int8):
// symmetric per-group codes plus scales, keyed with the kPanelInt8 variant
// flag so a storage's float and int8 panels coexist.  Quantize-once: codes
// are derived from the half source exactly once per storage version, so
// INT8 execution sees identical codes however often or incrementally a
// panel is fetched.
//
// Counters (emitted when telemetry is enabled, mirrored in local stats):
//   exec.panelcache.hits            lookups served from a cached panel
//   exec.panelcache.misses          lookups that created a new panel
//   exec.panelcache.bytes_converted destination bytes written: 2/elem for
//                                   float panels (source half reconverts),
//                                   1/elem for int8 panels — the INT8
//                                   tier's conversion traffic is half
//   exec.panelcache.invalidations   stale-version discards + invalidate()
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "stof/core/check.hpp"

namespace stof::core {

/// Identity of one cached panel: the half storage it converts plus a
/// layout variant (the same storage may be cached row-major and
/// transposed at once).
struct PanelKey {
  std::uint64_t storage = 0;
  std::uint64_t variant = 0;
  friend auto operator<=>(const PanelKey&, const PanelKey&) = default;
};

inline constexpr std::uint64_t kPanelRowMajor = 0;
inline constexpr std::uint64_t kPanelTransposed = 1;
/// Variant flag (OR'd with the layout) marking an INT8-quantized panel —
/// the same storage may be cached float and int8 at once without aliasing.
inline constexpr std::uint64_t kPanelInt8 = 2;

/// Shared handle to a cached float panel.  Keeps the buffer alive (and its
/// data pointer stable) independently of registry eviction.
struct PanelRef {
  std::shared_ptr<const std::vector<float>> buffer;
  /// Elements this call converted (0 on a pure hit).
  std::int64_t converted_elems = 0;
  [[nodiscard]] const float* data() const { return buffer->data(); }
  explicit operator bool() const { return buffer != nullptr; }
};

/// Shared handle to a cached INT8 panel: symmetric per-group codes plus
/// one scale per `scale_group` elements (see core::quant_params).
struct Int8PanelRef {
  std::shared_ptr<const std::vector<std::int8_t>> codes;
  std::shared_ptr<const std::vector<float>> scales;
  /// Elements this call quantized (0 on a pure hit).
  std::int64_t converted_elems = 0;
  [[nodiscard]] const std::int8_t* data() const { return codes->data(); }
  [[nodiscard]] const float* scale_data() const { return scales->data(); }
  explicit operator bool() const { return codes != nullptr; }
};

struct PanelCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t invalidations = 0;  ///< stale versions + explicit invalidate()
  std::int64_t evictions = 0;      ///< capacity (LRU) removals
  std::int64_t bytes_converted = 0;  ///< source half bytes (2 per element)
};

/// Generation/version-tagged float-panel cache with LRU capacity bounding.
/// All methods are thread-safe; conversion callbacks run under the
/// registry lock (they may dispatch to the parallel_for pool — workers
/// never re-enter the registry).
class PanelCacheRegistry {
 public:
  static constexpr std::size_t kDefaultCapacityBytes =
      std::size_t{128} << 20;  // float bytes resident

  /// Converts destination elements [lo, hi) of a panel.  `dst` is the base
  /// of the full panel buffer (so row-major converters write dst+lo from
  /// source elements [lo, hi); layout-changing converters may address the
  /// whole buffer — they are only ever asked for the full [0, total) range
  /// because non-append storages reconvert wholesale on any change).
  using Converter =
      std::function<void(std::int64_t lo, std::int64_t hi, float* dst)>;

  /// Quantizes destination elements [lo, hi) of an INT8 panel; lo and hi
  /// are always multiples of the entry's scale_group, and the converter
  /// writes codes[lo, hi) plus scales[lo/group, hi/group).
  using Int8Converter = std::function<void(
      std::int64_t lo, std::int64_t hi, std::int8_t* codes, float* scales)>;

  explicit PanelCacheRegistry(
      std::size_t capacity_bytes = kDefaultCapacityBytes);

  /// Fetch the panel for `key`, converting as little as possible:
  ///   * no entry                      -> allocate, convert [0, valid)
  ///   * version match, valid covered  -> pure hit, no conversion
  ///   * version match, valid grew     -> convert only [cached, valid)
  ///   * version mismatch              -> invalidate + full reconvert
  /// `total_elems` fixes the buffer capacity for the key's lifetime;
  /// `valid_elems` is the prefix that must be converted on return.
  PanelRef get_or_convert(PanelKey key, std::uint64_t version,
                          std::int64_t total_elems, std::int64_t valid_elems,
                          const Converter& convert);

  /// INT8 twin of get_or_convert with the same hit/extend/reconvert
  /// semantics.  `key.variant` must carry the kPanelInt8 flag (int8 and
  /// float panels of one storage coexist under distinct keys);
  /// `scale_group` fixes the quantization granularity for the key's
  /// lifetime, and total/valid element counts must be multiples of it.
  /// Quantization is quantize-once: a hit never re-derives codes, so the
  /// same storage version always yields byte-identical codes and scales.
  Int8PanelRef get_or_convert_int8(PanelKey key, std::uint64_t version,
                                   std::int64_t total_elems,
                                   std::int64_t valid_elems,
                                   std::int64_t scale_group,
                                   const Int8Converter& convert);

  /// Remove `key` (counted as an invalidation).  Returns whether an entry
  /// existed.  Use when the underlying storage is recycled (KV page reuse).
  bool invalidate(PanelKey key);

  /// Remove every variant of `storage` without counting invalidations —
  /// lifecycle cleanup (a pool being destroyed), not staleness.  Returns
  /// the number of entries dropped.
  std::size_t drop_storage(std::uint64_t storage);

  /// Drop every entry (uncounted) — test isolation.
  void clear();
  void reset_stats();

  [[nodiscard]] PanelCacheStats stats() const;
  [[nodiscard]] std::size_t resident_bytes() const;
  [[nodiscard]] std::size_t entry_count() const;
  void set_capacity_bytes(std::size_t bytes);

 private:
  /// One cached panel: float (buffer set) or int8 (codes + scales set).
  struct Entry {
    std::shared_ptr<std::vector<float>> buffer;
    std::shared_ptr<std::vector<std::int8_t>> codes;
    std::shared_ptr<std::vector<float>> scales;
    std::int64_t scale_group = 0;  ///< int8 entries only
    std::uint64_t version = 0;
    std::int64_t valid = 0;  ///< converted prefix, elements
    std::uint64_t lru = 0;   ///< last-touch tick
  };

  [[nodiscard]] static std::size_t entry_bytes(const Entry& e);

  void convert_range_locked(Entry& entry, std::int64_t lo, std::int64_t hi,
                            const Converter& convert, PanelRef& ref);
  void convert_range_i8_locked(Entry& entry, std::int64_t lo, std::int64_t hi,
                               const Int8Converter& convert,
                               Int8PanelRef& ref);
  void evict_over_capacity_locked(PanelKey keep);

  mutable std::mutex mu_;
  std::map<PanelKey, Entry> entries_;
  std::size_t capacity_bytes_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  PanelCacheStats stats_;
};

/// The process-wide registry every packed execution path shares.
PanelCacheRegistry& global_panel_cache();

}  // namespace stof::core
