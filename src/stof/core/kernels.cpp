// Kernel-table dispatch: ISA detection, table registry, telemetry.
#include "stof/core/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "stof/core/check.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::core {

namespace detail {
#if defined(__x86_64__) || defined(_M_X64)
void fill_avx2(KernelTable& table);    // kernels_avx2.cpp
void fill_avx512(KernelTable& table);  // kernels_avx512.cpp
#endif
#if defined(__aarch64__)
void fill_neon(KernelTable& table);  // kernels_neon.cpp
#endif
}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kNeon:
      return "neon";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool isa_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kAvx2:
      // F16C ships on every AVX2 part; require it explicitly because the
      // conversion kernels use cvtph/cvtps_ph.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
    case Isa::kAvx512:
      return isa_available(Isa::kAvx2) &&
             __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return true;  // NEON is baseline on AArch64
#endif
    default:
      return false;
  }
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (const Isa isa :
       {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512}) {
    if (isa_available(isa)) out.push_back(isa);
  }
  return out;
}

const KernelTable& kernel_table_for(Isa isa) {
  STOF_EXPECTS(isa_available(isa), "requested kernel ISA not supported");
  switch (isa) {
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kAvx2: {
      static const KernelTable table = [] {
        KernelTable t = scalar_kernel_table();
        t.isa = Isa::kAvx2;
        detail::fill_avx2(t);
        return t;
      }();
      return table;
    }
    case Isa::kAvx512: {
      static const KernelTable table = [] {
        KernelTable t = scalar_kernel_table();
        t.isa = Isa::kAvx512;
        detail::fill_avx2(t);    // AVX-512 inherits the AVX2 entries...
        detail::fill_avx512(t);  // ...and overrides the GEMM tiles
        return t;
      }();
      return table;
    }
#endif
#if defined(__aarch64__)
    case Isa::kNeon: {
      static const KernelTable table = [] {
        KernelTable t = scalar_kernel_table();
        t.isa = Isa::kNeon;
        detail::fill_neon(t);
        return t;
      }();
      return table;
    }
#endif
    default:
      return scalar_kernel_table();
  }
}

Isa best_supported_isa() {
  static const Isa best = [] {
    if (const char* force = std::getenv("STOF_FORCE_SCALAR");
        force != nullptr && force[0] != '\0' && !(force[0] == '0' && force[1] == '\0')) {
      return Isa::kScalar;
    }
    Isa pick = Isa::kScalar;
    for (const Isa isa : available_isas()) pick = isa;  // best last
    return pick;
  }();
  return best;
}

namespace {

std::atomic<const KernelTable*>& active_table() {
  static std::atomic<const KernelTable*> table{
      &kernel_table_for(best_supported_isa())};
  return table;
}

}  // namespace

const KernelTable& kernels() {
  return *active_table().load(std::memory_order_relaxed);
}

Isa active_isa() { return kernels().isa; }

void set_kernel_isa(Isa isa) {
  active_table().store(&kernel_table_for(isa), std::memory_order_relaxed);
}

ScopedKernelIsa::ScopedKernelIsa(Isa isa) : previous_(active_isa()) {
  set_kernel_isa(isa);
}

ScopedKernelIsa::~ScopedKernelIsa() { set_kernel_isa(previous_); }

void note_kernel_dispatch(const char* entry, std::int64_t calls) {
  if (!telemetry::enabled()) return;
  telemetry::gauge("exec.dispatch.isa",
                   static_cast<double>(static_cast<int>(active_isa())));
  std::string name = "exec.dispatch.";
  name += entry;
  name += ".calls";
  telemetry::count(name, calls);
}

}  // namespace stof::core
