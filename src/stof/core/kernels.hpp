// Runtime-dispatched CPU micro-kernel table.
//
// The packed execution layer's hot inner loops — half<->float panel
// conversion, the saxpy-tile GEMM accumulators, and the decode-attention
// dot/axpy primitives — live behind a `KernelTable` of function pointers.
// At startup the best instruction set the host supports is detected
// (AVX-512F/BW > AVX2+F16C > NEON > scalar) and the matching table is
// installed; `STOF_FORCE_SCALAR=1` in the environment pins the scalar
// reference table regardless of hardware.
//
// Bit-identity contract: every SIMD implementation must produce outputs
// byte-identical to the scalar table.  The scalar loops are the reference
// semantics; SIMD variants vectorize only across *independent* outputs
// (columns of C, separate dot products) and keep each output's reduction
// strictly serial in ascending depth order with separate multiply and add
// steps (SIMD translation units are compiled with -ffp-contract=off so the
// compiler cannot fuse them).  kernel_dispatch_test diffs every table
// entry byte-wise against the scalar table for every ISA the host can run.
//
// The INT8 tier quantizes panels to symmetric per-group int8 codes
// (scale = absmax/127, round-to-nearest-even, clamp to +/-127) and runs
// dot-product GEMMs in exact int32 accumulation with a float epilogue —
// int32 sums are associative, so INT8 results are identical across ISAs
// and across any blocking schedule, just not bit-identical to FP32.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/half.hpp"

namespace stof::core {

/// Instruction sets the dispatcher can select, in preference order.
enum class Isa : int { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

[[nodiscard]] const char* isa_name(Isa isa);

/// Storage precision of a cached panel (FP32 sidecar vs quantized INT8).
enum class PanelPrecision : int { kFloat32 = 0, kInt8 = 1 };

/// One table of micro-kernel entry points.  All pointers are always
/// non-null (ISA-specific tables inherit the scalar entry for anything
/// they do not override).
struct KernelTable {
  Isa isa = Isa::kScalar;

  // ---- Panel conversion ----------------------------------------------------
  /// dst[i] = float(src[i]) — exact (matches the 65536-entry h2f table).
  void (*half_to_float)(const half* src, float* dst, std::int64_t n);
  /// dst[i] = half(src[i]) — round-to-nearest-even, NaNs canonicalized
  /// exactly like half::from_float.
  void (*float_to_half)(const float* src, half* dst, std::int64_t n);

  // ---- FP32 GEMM accumulation ---------------------------------------------
  /// C += A x B, contiguous row-major panels (see packed::sgemm_accumulate).
  void (*sgemm_accumulate)(const float* a, const float* b, float* c,
                           std::int64_t rows, std::int64_t k, std::int64_t n);
  /// C += A x B with explicit leading dimensions (packed::sgemm_accumulate_ld).
  void (*sgemm_accumulate_ld)(const float* a, std::int64_t lda, const float* b,
                              std::int64_t ldb, float* c, std::int64_t ldc,
                              std::int64_t rows, std::int64_t depth,
                              std::int64_t cols);

  // ---- Decode / softmax primitives ----------------------------------------
  /// out[i] = dot(q, row_i) where row_i = base + (idx ? idx[i] : i) * stride.
  /// idx entries are small non-negative integers stored exactly in floats
  /// (the decode scratch arenas are float-typed).  Each dot is one serial
  /// FP32 chain in ascending element order (the scalar decode semantics);
  /// implementations may only parallelize across the independent output
  /// rows.
  void (*dot_rows)(const float* q, const float* base, std::int64_t stride,
                   const float* idx, float* out, std::int64_t count,
                   std::int64_t d);
  /// y[i] += a * x[i] (one multiply, one add per element).
  void (*axpy)(float* y, const float* x, float a, std::int64_t n);
  /// y[i] = y[i] * beta + alpha * x[i] — the streaming-softmax merge.
  /// alpha == 1.0f makes the alpha*x product exact, matching a plain
  /// `y = y*beta + x` merge bit for bit.
  void (*axpby)(float* y, const float* x, float beta, float alpha,
                std::int64_t n);
  /// x[i] *= s.
  void (*scale_inplace)(float* x, float s, std::int64_t n);
  /// max(x[0..n)) — exact, so any reduction order is bit-safe; n >= 1.
  float (*reduce_max)(const float* x, std::int64_t n);
  /// max(|x[0..n)|) over finite inputs; returns 0 for n == 0.
  float (*abs_max)(const float* x, std::int64_t n);

  // ---- INT8 quantized tier -------------------------------------------------
  /// dst[i] = clamp(nearbyint(src[i] * inv_scale), -127, 127); inputs must
  /// be finite with |src*inv_scale| well below 2^31.
  void (*quantize_i8)(const float* src, std::int8_t* dst, std::int64_t n,
                      float inv_scale);
  /// dst[i] = scale * float(src[i]).
  void (*dequantize_i8)(const std::int8_t* src, float* dst, std::int64_t n,
                        float scale);
  /// Exact int32 dot product.
  std::int32_t (*dot_i8)(const std::int8_t* a, const std::int8_t* b,
                         std::int64_t n);
  /// y[i] += a * float(x[i]) (int8 -> float conversion is exact).
  void (*axpy_i8)(float* y, const std::int8_t* x, float a, std::int64_t n);
  /// C[r,j] += (a_row_scales[r] * b_scale) * float(sum_e A8[r,e] * B8[e,j])
  /// with exact int32 accumulation; the two-float scale product and the
  /// int32 -> float conversion are computed identically by every ISA, so
  /// results are deterministic (though not FP32-bit-identical).
  void (*sgemm_i8_accumulate_ld)(const std::int8_t* a, std::int64_t lda,
                                 const std::int8_t* b, std::int64_t ldb,
                                 float* c, std::int64_t ldc, std::int64_t rows,
                                 std::int64_t depth, std::int64_t cols,
                                 const float* a_row_scales, float b_scale);
};

/// The scalar reference table (always available).
[[nodiscard]] const KernelTable& scalar_kernel_table();

/// True when `isa`'s table can run on this host.
[[nodiscard]] bool isa_available(Isa isa);

/// Every ISA the host can run, scalar first, best last.
[[nodiscard]] std::vector<Isa> available_isas();

/// The table for `isa`; requires isa_available(isa).
[[nodiscard]] const KernelTable& kernel_table_for(Isa isa);

/// Best hardware-supported ISA, honoring the STOF_FORCE_SCALAR=1 override
/// (read once at first use).
[[nodiscard]] Isa best_supported_isa();

/// The active dispatch table (defaults to best_supported_isa()).
[[nodiscard]] const KernelTable& kernels();

/// ISA of the active table.
[[nodiscard]] Isa active_isa();

/// Re-point the active table (tests / cross-ISA harnesses only).
/// Requires isa_available(isa).
void set_kernel_isa(Isa isa);

/// RAII guard restoring the previous active table on scope exit.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(Isa isa);
  ~ScopedKernelIsa();
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  Isa previous_;
};

/// Telemetry hook for dispatched call sites: records the active ISA under
/// the `exec.dispatch.isa` gauge and bumps `exec.dispatch.<entry>.calls`.
/// `entry` must be a string literal (no per-call formatting).
void note_kernel_dispatch(const char* entry, std::int64_t calls = 1);

// ---- INT8 quantization parameters -----------------------------------------

/// Smallest group absmax quantized with real codes; below it every code is
/// zero and the scale is set to 2*absmax so the round-trip error still
/// satisfies |x - dequant(x)| <= scale/2 (avoids inf/NaN from 127/absmax).
inline constexpr float kQuantTinyAbsMax = 1e-30f;

struct QuantParams {
  float scale = 1.0f;      ///< dequantization multiplier
  float inv_scale = 0.0f;  ///< quantization multiplier (0 => all-zero codes)
};

/// Symmetric per-group parameters from the group's |max|.
[[nodiscard]] inline QuantParams quant_params(float abs_max) {
  if (!(abs_max >= kQuantTinyAbsMax)) {
    return {2.0f * abs_max + 1e-38f, 0.0f};
  }
  return {abs_max / 127.0f, 127.0f / abs_max};
}

}  // namespace stof::core
