// IEEE 754 binary16 ("half") emulation.
//
// The paper runs every method in FP16 ("All methods are implemented in
// half-precision floating-point format"), so the simulated kernels store
// tensors as binary16 and accumulate in binary32, exactly like wmma
// HMMA.F32 tiles do on the real hardware.  This header provides a
// bit-accurate storage type with round-to-nearest-even float conversion.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace stof {

/// Bit-accurate IEEE 754 binary16 value with float-mediated arithmetic.
///
/// Conversions implement round-to-nearest-even including subnormals and
/// infinity/NaN propagation, matching the behaviour of `__half` <-> `float`
/// conversions on NVIDIA GPUs.
class half {
 public:
  constexpr half() = default;
  half(float f) : bits_(from_float(f)) {}  // NOLINT: implicit by design
  half(double d) : half(static_cast<float>(d)) {}
  half(int i) : half(static_cast<float>(i)) {}

  /// Reinterpret a raw bit pattern as a half (no conversion).
  static constexpr half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  operator float() const { return to_float(bits_); }  // NOLINT: implicit

  half& operator+=(half o) { return *this = half(float(*this) + float(o)); }
  half& operator-=(half o) { return *this = half(float(*this) - float(o)); }
  half& operator*=(half o) { return *this = half(float(*this) * float(o)); }
  half& operator/=(half o) { return *this = half(float(*this) / float(o)); }

  friend bool operator==(half a, half b) { return float(a) == float(b); }
  friend bool operator!=(half a, half b) { return float(a) != float(b); }
  friend bool operator<(half a, half b) { return float(a) < float(b); }
  friend bool operator<=(half a, half b) { return float(a) <= float(b); }
  friend bool operator>(half a, half b) { return float(a) > float(b); }
  friend bool operator>=(half a, half b) { return float(a) >= float(b); }

  /// Convert binary32 -> binary16 with round-to-nearest-even.
  static std::uint16_t from_float(float f) {
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::uint32_t abs = x & 0x7fffffffu;

    if (abs >= 0x7f800000u) {  // inf or NaN
      const std::uint32_t mant = abs > 0x7f800000u ? 0x0200u : 0u;
      return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
    }
    if (abs >= 0x477ff000u) {  // rounds to at least 2^16: overflow to inf
      return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (abs < 0x33000001u) {  // rounds to zero (below half of min subnormal)
      return static_cast<std::uint16_t>(sign);
    }
    if (abs < 0x38800000u) {  // subnormal half range
      // A subnormal half has LSB weight 2^-24, so the result is
      // round(x / 2^-24) = mant24 >> (126 - E) with round-to-nearest-even.
      const std::int32_t shift = 126 - static_cast<std::int32_t>(abs >> 23);
      const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
      std::uint32_t result = mant >> shift;
      const std::uint32_t rem = mant & ((1u << shift) - 1);
      const std::uint32_t halfway = 1u << (shift - 1);
      if (rem > halfway || (rem == halfway && (result & 1u))) ++result;
      return static_cast<std::uint16_t>(sign | result);
    }
    // Normal range.
    std::uint32_t mant = abs & 0x007fffffu;
    const std::uint32_t exp = (abs >> 23) - 112;  // rebias 127 -> 15
    std::uint32_t result = (exp << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (result & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }

  /// Convert binary16 -> binary32 (exact).
  static float to_float(std::uint16_t h) {
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    const std::uint32_t mant = h & 0x3ffu;
    std::uint32_t out;
    if (exp == 0) {
      if (mant == 0) {
        out = sign;  // +/- 0
      } else {
        // Subnormal: normalize into binary32.
        std::uint32_t m = mant;
        std::int32_t e = -1;
        while (!(m & 0x400u)) {
          m <<= 1;
          ++e;
        }
        m &= 0x3ffu;
        out = sign | (static_cast<std::uint32_t>(113 - e - 1) << 23) | (m << 13);
      }
    } else if (exp == 0x1f) {
      // Inf / NaN.  IEEE 754 format conversion quiets a signaling NaN; the
      // quiet bit is also what hardware converters (F16C, AVX-512 FP16,
      // NEON) set, keeping the scalar reference bit-identical to SIMD
      // half_to_float for every one of the 65536 input patterns.
      const std::uint32_t quiet = mant != 0 ? 0x00400000u : 0u;
      out = sign | 0x7f800000u | (mant << 13) | quiet;
    } else {
      out = sign | ((exp + 112) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(out);
  }

 private:
  std::uint16_t bits_ = 0;
};

inline half operator+(half a, half b) { return half(float(a) + float(b)); }
inline half operator-(half a, half b) { return half(float(a) - float(b)); }
inline half operator*(half a, half b) { return half(float(a) * float(b)); }
inline half operator/(half a, half b) { return half(float(a) / float(b)); }
inline half operator-(half a) { return half(-float(a)); }

}  // namespace stof

template <>
class std::numeric_limits<stof::half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr int digits = 11;
  static stof::half min() { return stof::half::from_bits(0x0400); }
  static stof::half max() { return stof::half::from_bits(0x7bff); }
  static stof::half lowest() { return stof::half::from_bits(0xfbff); }
  static stof::half epsilon() { return stof::half::from_bits(0x1400); }
  static stof::half infinity() { return stof::half::from_bits(0x7c00); }
  static stof::half quiet_NaN() { return stof::half::from_bits(0x7e00); }
  static stof::half denorm_min() { return stof::half::from_bits(0x0001); }
};
