#include "stof/core/panel_cache_registry.hpp"

#include <algorithm>

#include "stof/telemetry/telemetry.hpp"

namespace stof::core {

PanelCacheRegistry::PanelCacheRegistry(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::size_t PanelCacheRegistry::entry_bytes(const Entry& e) {
  std::size_t bytes = 0;
  if (e.buffer) bytes += e.buffer->size() * sizeof(float);
  if (e.codes) bytes += e.codes->size();
  if (e.scales) bytes += e.scales->size() * sizeof(float);
  return bytes;
}

void PanelCacheRegistry::convert_range_locked(Entry& entry, std::int64_t lo,
                                              std::int64_t hi,
                                              const Converter& convert,
                                              PanelRef& ref) {
  if (lo >= hi) return;
  convert(lo, hi, entry.buffer->data());
  entry.valid = std::max(entry.valid, hi);
  ref.converted_elems += hi - lo;
  const std::int64_t bytes = (hi - lo) * 2;  // source halfs
  stats_.bytes_converted += bytes;
  telemetry::count("exec.panelcache.bytes_converted", bytes);
}

void PanelCacheRegistry::convert_range_i8_locked(Entry& entry, std::int64_t lo,
                                                 std::int64_t hi,
                                                 const Int8Converter& convert,
                                                 Int8PanelRef& ref) {
  if (lo >= hi) return;
  convert(lo, hi, entry.codes->data(), entry.scales->data());
  entry.valid = std::max(entry.valid, hi);
  ref.converted_elems += hi - lo;
  const std::int64_t bytes = hi - lo;  // destination int8 codes, 1/elem
  stats_.bytes_converted += bytes;
  telemetry::count("exec.panelcache.bytes_converted", bytes);
}

PanelRef PanelCacheRegistry::get_or_convert(PanelKey key,
                                            std::uint64_t version,
                                            std::int64_t total_elems,
                                            std::int64_t valid_elems,
                                            const Converter& convert) {
  STOF_EXPECTS(key.storage != 0, "panel key needs a real storage id");
  STOF_EXPECTS(total_elems > 0 && valid_elems >= 0 &&
                   valid_elems <= total_elems,
               "valid prefix must fit the panel");
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  PanelRef ref;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& e = it->second;
    STOF_CHECK(static_cast<std::int64_t>(e.buffer->size()) == total_elems,
               "panel size changed under a live storage key");
    if (e.version == version) {
      // Hit; extend the converted prefix if the storage appended rows.
      e.lru = tick_;
      stats_.hits += 1;
      telemetry::count("exec.panelcache.hits");
      convert_range_locked(e, e.valid, valid_elems, convert, ref);
      ref.buffer = e.buffer;
      return ref;
    }
    // Stale generation: the storage was mutated or recycled since this
    // panel was converted.  Discard and fall through to a fresh miss.
    stats_.invalidations += 1;
    telemetry::count("exec.panelcache.invalidations");
    resident_bytes_ -= entry_bytes(e);
    entries_.erase(it);
  }

  stats_.misses += 1;
  telemetry::count("exec.panelcache.misses");
  Entry e;
  e.buffer = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(total_elems));
  e.version = version;
  e.lru = tick_;
  convert_range_locked(e, 0, valid_elems, convert, ref);
  ref.buffer = e.buffer;
  resident_bytes_ += entry_bytes(e);
  entries_.emplace(key, std::move(e));
  evict_over_capacity_locked(key);
  return ref;
}

Int8PanelRef PanelCacheRegistry::get_or_convert_int8(
    PanelKey key, std::uint64_t version, std::int64_t total_elems,
    std::int64_t valid_elems, std::int64_t scale_group,
    const Int8Converter& convert) {
  STOF_EXPECTS(key.storage != 0, "panel key needs a real storage id");
  STOF_EXPECTS((key.variant & kPanelInt8) != 0,
               "int8 panel keys must carry the kPanelInt8 variant flag");
  STOF_EXPECTS(total_elems > 0 && valid_elems >= 0 &&
                   valid_elems <= total_elems,
               "valid prefix must fit the panel");
  STOF_EXPECTS(scale_group > 0 && total_elems % scale_group == 0 &&
                   valid_elems % scale_group == 0,
               "element counts must be scale_group multiples");
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  Int8PanelRef ref;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& e = it->second;
    STOF_CHECK(e.codes != nullptr &&
                   static_cast<std::int64_t>(e.codes->size()) == total_elems &&
                   e.scale_group == scale_group,
               "int8 panel geometry changed under a live storage key");
    if (e.version == version) {
      e.lru = tick_;
      stats_.hits += 1;
      telemetry::count("exec.panelcache.hits");
      convert_range_i8_locked(e, e.valid, valid_elems, convert, ref);
      ref.codes = e.codes;
      ref.scales = e.scales;
      return ref;
    }
    stats_.invalidations += 1;
    telemetry::count("exec.panelcache.invalidations");
    resident_bytes_ -= entry_bytes(e);
    entries_.erase(it);
  }

  stats_.misses += 1;
  telemetry::count("exec.panelcache.misses");
  Entry e;
  e.codes = std::make_shared<std::vector<std::int8_t>>(
      static_cast<std::size_t>(total_elems));
  e.scales = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(total_elems / scale_group));
  e.scale_group = scale_group;
  e.version = version;
  e.lru = tick_;
  convert_range_i8_locked(e, 0, valid_elems, convert, ref);
  ref.codes = e.codes;
  ref.scales = e.scales;
  resident_bytes_ += entry_bytes(e);
  entries_.emplace(key, std::move(e));
  evict_over_capacity_locked(key);
  return ref;
}

void PanelCacheRegistry::evict_over_capacity_locked(PanelKey keep) {
  while (resident_bytes_ > capacity_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() || it->second.lru < victim->second.lru) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    resident_bytes_ -= entry_bytes(victim->second);
    entries_.erase(victim);
    stats_.evictions += 1;
  }
}

bool PanelCacheRegistry::invalidate(PanelKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  resident_bytes_ -= entry_bytes(it->second);
  entries_.erase(it);
  stats_.invalidations += 1;
  telemetry::count("exec.panelcache.invalidations");
  return true;
}

std::size_t PanelCacheRegistry::drop_storage(std::uint64_t storage) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  for (auto it = entries_.lower_bound(PanelKey{storage, 0});
       it != entries_.end() && it->first.storage == storage;) {
    resident_bytes_ -= entry_bytes(it->second);
    it = entries_.erase(it);
    ++dropped;
  }
  return dropped;
}

void PanelCacheRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  resident_bytes_ = 0;
}

void PanelCacheRegistry::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PanelCacheStats{};
}

PanelCacheStats PanelCacheRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PanelCacheRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t PanelCacheRegistry::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PanelCacheRegistry::set_capacity_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = bytes;
  evict_over_capacity_locked(PanelKey{});
}

PanelCacheRegistry& global_panel_cache() {
  static PanelCacheRegistry registry;
  return registry;
}

}  // namespace stof::core
