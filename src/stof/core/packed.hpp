// Packed-FP32 functional execution layer.
//
// Every functional kernel in STOF stores tensors as bit-accurate binary16
// and accumulates in binary32 — but the original kernels round-tripped
// FP16<->FP32 *per element* through `Tensor::at()`, which dominates the
// runtime of the bit-accurate execution path.  This module provides the
// bulk primitives the packed kernels are built from:
//
//   * panel conversion — whole half panels to contiguous FP32 buffers (a
//     65536-entry exact lookup table) and back (round-to-nearest-even),
//   * a cache-blocked FP32 GEMM accumulation microkernel that preserves the
//     scalar kernels' per-element accumulation order, so packed results are
//     bit-identical to the scalar reference.
//
// A process-wide switch selects the execution path; kernels with both a
// packed and a scalar implementation (GEMM, block-wise MHA) consult it.
// The packed path is the default; tests and the perf-regression harness
// flip it to compare the two implementations.
#pragma once

#include <cstdint>
#include <span>

#include "stof/core/half.hpp"

namespace stof {

/// True when kernels should take the packed-FP32 path (the default).
[[nodiscard]] bool packed_execution_enabled();

/// Select the execution path globally (tests / benchmarks only).
void set_packed_execution(bool enabled);

/// RAII guard restoring the previous execution path on scope exit.
class ScopedPackedExecution {
 public:
  explicit ScopedPackedExecution(bool enabled);
  ~ScopedPackedExecution();
  ScopedPackedExecution(const ScopedPackedExecution&) = delete;
  ScopedPackedExecution& operator=(const ScopedPackedExecution&) = delete;

 private:
  bool previous_;
};

namespace packed {

/// 65536-entry binary16 -> binary32 table; entry i == half::to_float(i).
[[nodiscard]] const float* h2f_table();

/// Table-based scalar conversion (exact, identical to half::to_float).
[[nodiscard]] inline float to_float(half h) { return h2f_table()[h.bits()]; }

/// Convert a whole half panel into a contiguous FP32 buffer.
void half_to_float(std::span<const half> src, std::span<float> dst);

/// Convert an FP32 panel back to half with round-to-nearest-even — the
/// same rounding as the scalar kernels' final `half(acc)` stores.
void float_to_half(std::span<const float> src, std::span<half> dst);

/// Cache-blocked accumulation C += A x B over raw row-major FP32 panels:
/// A is (rows x k), B is (k x n), C is (rows x n) and must be initialized
/// by the caller.  For every output element the k-index ascends strictly,
/// so the FP32 accumulation order — and therefore every intermediate
/// rounding — matches the scalar `for ki: acc += a*b` loop bit for bit.
/// Internally register-tiled over 4 output rows (one B row load feeds four
/// accumulation streams) on top of the n/k cache blocking.
void sgemm_accumulate(const float* a, const float* b, float* c,
                      std::int64_t rows, std::int64_t k, std::int64_t n);

/// Strided-panel variant of sgemm_accumulate, the micro-kernel of the
/// block-wise MHA tile GEMMs: C += A x B with explicit leading dimensions,
/// C[r*ldc + j] += sum_e A[r*lda + e] * B[e*ldb + j].  Callers zero (or
/// seed) C themselves — a dot product that starts from 0.0f and adds its
/// terms in ascending e order rounds identically.
///
///   * QK^T:  A = Q tile (rows x d), B = transposed K panel (d x seq,
///            ldb = seq), a `cols`-wide column window starting at the
///            block's first key;
///   * PV:    A = softmax weights (rows x block_n, lda = block_n),
///            B = row-major V panel rows (cols x d, ldb = d).
///
/// The kernel runs a 2x2 register block (kMR = 2 output rows, kKU = 2
/// depth steps): each pair of B-row loads feeds two output rows, and C is
/// loaded/stored once per two reduction steps instead of once per step.
/// The inner saxpy runs over *independent* output columns, so the compiler
/// may vectorize it freely: each output element still sums its `depth`
/// terms strictly ascending (the chained (c + t0) + t1 add is the same
/// left-to-right association as two sequential `c += t` steps).  Only the
/// reduction dimension must stay serial per output; reordering across
/// outputs cannot break the bit-identity contract.
void sgemm_accumulate_ld(const float* a, std::int64_t lda, const float* b,
                         std::int64_t ldb, float* c, std::int64_t ldc,
                         std::int64_t rows, std::int64_t depth,
                         std::int64_t cols);

// ---- INT8 quantized panel tier ---------------------------------------------
//
// Symmetric per-group quantization: scale = absmax/127 (with a degenerate
// all-zero fallback for vanishing groups, see core::quant_params), codes
// rounded to nearest-even and clamped to +/-127.  Codes and scales are a
// pure function of the source values — identical across ISAs, schedules,
// and re-conversions — so INT8 execution stays deterministic even though
// it is not bit-identical to FP32.

/// Quantize a float panel with one scale per `group` elements; `count`
/// must be a multiple of `group`.  dst has count codes, scales has
/// count/group entries.
void quantize_floats(const float* src, std::int64_t count, std::int64_t group,
                     std::int8_t* dst, float* scales);

/// Same, sourcing from a half panel (converted through the exact table).
void quantize_halfs(std::span<const half> src, std::int64_t group,
                    std::int8_t* dst, float* scales);

}  // namespace packed
}  // namespace stof
