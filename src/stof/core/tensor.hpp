// Dense row-major tensors.
//
// STOF's simulated kernels operate on host memory standing in for GPU
// global memory.  Tensor<T> owns a contiguous row-major buffer with up to
// four dimensions (batch, head, row, col) — the shapes that appear in
// multi-head attention.  Views are intentionally *not* provided: kernels
// address sub-blocks with explicit index arithmetic, mirroring how the CUDA
// kernels compute global-memory offsets.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/core/half.hpp"
#include "stof/core/rng.hpp"

namespace stof {

/// Process-unique id for a freshly allocated storage buffer.  Tensor mints
/// one per allocation; holders of non-Tensor storage (e.g. the serving KV
/// pool's pages) mint their own so every cacheable buffer shares one id
/// space.  Never returns 0, which marks "no storage".
inline std::uint64_t next_storage_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Shape of a tensor: up to four dimensions, row-major.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) {
    STOF_EXPECTS(dims.size() >= 1 && dims.size() <= 4,
                 "tensors are rank 1..4");
    rank_ = dims.size();
    std::size_t i = 0;
    for (auto d : dims) {
      STOF_EXPECTS(d > 0, "dimensions must be positive");
      dims_[i++] = d;
    }
  }

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::int64_t dim(std::size_t i) const {
    STOF_EXPECTS(i < rank_);
    return dims_[i];
  }
  [[nodiscard]] std::int64_t operator[](std::size_t i) const { return dim(i); }

  [[nodiscard]] std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

  friend std::ostream& operator<<(std::ostream& os, const Shape& s) {
    os << '(';
    for (std::size_t i = 0; i < s.rank_; ++i) {
      if (i) os << ", ";
      os << s.dims_[i];
    }
    return os << ')';
  }

 private:
  std::array<std::int64_t, 4> dims_ = {1, 1, 1, 1};
  std::size_t rank_ = 0;
};

/// Owning dense row-major tensor of element type T (float or half).
template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(shape),
        data_(static_cast<std::size_t>(shape.numel())),
        storage_id_(next_storage_id()) {}

  Tensor(Shape shape, T fill_value) : Tensor(shape) { fill(fill_value); }

  // Copies allocate fresh storage, so they get a fresh identity (version
  // restarts at 0); moves transfer the buffer and carry identity and
  // version along, leaving the source storage-less.
  Tensor(const Tensor& o)
      : shape_(o.shape_),
        data_(o.data_),
        storage_id_(o.data_.empty() ? 0 : next_storage_id()) {}
  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      shape_ = o.shape_;
      data_ = o.data_;
      storage_id_ = data_.empty() ? 0 : next_storage_id();
      version_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }
  Tensor(Tensor&& o) noexcept
      : shape_(o.shape_),
        data_(std::move(o.data_)),
        storage_id_(std::exchange(o.storage_id_, 0)),
        version_(o.version_.load(std::memory_order_relaxed)) {
    o.version_.store(0, std::memory_order_relaxed);
  }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      shape_ = o.shape_;
      data_ = std::move(o.data_);
      storage_id_ = std::exchange(o.storage_id_, 0);
      version_.store(o.version_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      o.version_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t numel() const { return shape_.numel(); }
  [[nodiscard]] std::size_t size_bytes() const {
    return data_.size() * sizeof(T);
  }

  /// Identity of this tensor's storage buffer (0 when empty).  Stable
  /// across the buffer's lifetime; a copy gets a new id, a move keeps it.
  [[nodiscard]] std::uint64_t storage_id() const { return storage_id_; }
  /// Monotonic mutation stamp: bumped by every mutable accessor, so a
  /// cache can verify a converted panel still reflects this storage.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::span<T> data() {
    bump_version();
    return data_;
  }
  [[nodiscard]] std::span<const T> data() const { return data_; }

  // Element access with explicit rank; bounds enforced on the leading index
  // arithmetic only in the rank-checked accessors below.  The mutable
  // overloads stamp the version — access through them counts as a write.
  T& at(std::int64_t i) {
    bump_version();
    return data_[idx({i})];
  }
  T& at(std::int64_t i, std::int64_t j) {
    bump_version();
    return data_[idx({i, j})];
  }
  T& at(std::int64_t i, std::int64_t j, std::int64_t k) {
    bump_version();
    return data_[idx({i, j, k})];
  }
  T& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    bump_version();
    return data_[idx({i, j, k, l})];
  }
  const T& at(std::int64_t i) const { return data_[idx({i})]; }
  const T& at(std::int64_t i, std::int64_t j) const {
    return data_[idx({i, j})];
  }
  const T& at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[idx({i, j, k})];
  }
  const T& at(std::int64_t i, std::int64_t j, std::int64_t k,
              std::int64_t l) const {
    return data_[idx({i, j, k, l})];
  }

  void fill(T value) {
    bump_version();
    for (auto& v : data_) v = value;
  }

  /// Fill with uniform values in [lo, hi) from a seeded generator.
  void fill_random(Rng& rng, float lo = -1.0f, float hi = 1.0f) {
    bump_version();
    for (auto& v : data_) v = T(rng.uniform(lo, hi));
  }

  /// Elementwise conversion to float (useful for comparisons in tests).
  [[nodiscard]] Tensor<float> to_float() const {
    Tensor<float> out(shape_);
    for (std::int64_t i = 0; i < numel(); ++i)
      out.data()[static_cast<std::size_t>(i)] =
          static_cast<float>(data_[static_cast<std::size_t>(i)]);
    return out;
  }

 private:
  // Relaxed atomic: parallel kernels write disjoint elements of one tensor
  // through mutable at(), so the stamp must tolerate concurrent bumps.
  void bump_version() { version_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t idx(
      std::initializer_list<std::int64_t> indices) const {
    STOF_EXPECTS(indices.size() == shape_.rank(), "rank mismatch in at()");
    std::size_t flat = 0;
    std::size_t d = 0;
    for (auto i : indices) {
      STOF_EXPECTS(i >= 0 && i < shape_.dim(d), "index out of range");
      flat = flat * static_cast<std::size_t>(shape_.dim(d)) +
             static_cast<std::size_t>(i);
      ++d;
    }
    return flat;
  }

  Shape shape_;
  std::vector<T> data_;
  std::uint64_t storage_id_ = 0;
  std::atomic<std::uint64_t> version_{0};
};

using TensorF = Tensor<float>;
using TensorH = Tensor<half>;

/// Maximum absolute elementwise difference between two same-shaped tensors.
template <typename T, typename U>
double max_abs_diff(const Tensor<T>& a, const Tensor<U>& b) {
  STOF_EXPECTS(a.shape() == b.shape(), "shape mismatch in max_abs_diff");
  double m = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d =
        std::abs(static_cast<double>(static_cast<float>(
                     a.data()[static_cast<std::size_t>(i)])) -
                 static_cast<double>(static_cast<float>(
                     b.data()[static_cast<std::size_t>(i)])));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace stof
