#include "stof/core/packed.hpp"

#include <atomic>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/core/kernels.hpp"

namespace stof {

namespace {

std::atomic<bool>& packed_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

bool packed_execution_enabled() {
  return packed_flag().load(std::memory_order_relaxed);
}

void set_packed_execution(bool enabled) {
  packed_flag().store(enabled, std::memory_order_relaxed);
}

ScopedPackedExecution::ScopedPackedExecution(bool enabled)
    : previous_(packed_execution_enabled()) {
  set_packed_execution(enabled);
}

ScopedPackedExecution::~ScopedPackedExecution() {
  set_packed_execution(previous_);
}

namespace packed {

const float* h2f_table() {
  // Function-local static: built once, thread-safe under C++11 init rules.
  static const std::vector<float> table = [] {
    std::vector<float> t(65536);
    for (std::uint32_t bits = 0; bits < 65536; ++bits) {
      t[bits] = half::to_float(static_cast<std::uint16_t>(bits));
    }
    return t;
  }();
  return table.data();
}

// The loop bodies live in the runtime-dispatched kernel table
// (core/kernels.hpp): the scalar entries are the original reference loops,
// the SIMD entries are byte-identical rewrites selected by CPU feature
// detection at startup.

void half_to_float(std::span<const half> src, std::span<float> dst) {
  STOF_EXPECTS(src.size() == dst.size(), "panel size mismatch");
  core::note_kernel_dispatch("half_to_float");
  core::kernels().half_to_float(src.data(), dst.data(),
                                static_cast<std::int64_t>(src.size()));
}

void float_to_half(std::span<const float> src, std::span<half> dst) {
  STOF_EXPECTS(src.size() == dst.size(), "panel size mismatch");
  core::note_kernel_dispatch("float_to_half");
  core::kernels().float_to_half(src.data(), dst.data(),
                                static_cast<std::int64_t>(src.size()));
}

void sgemm_accumulate(const float* a, const float* b, float* c,
                      std::int64_t rows, std::int64_t k, std::int64_t n) {
  core::note_kernel_dispatch("sgemm_accumulate");
  core::kernels().sgemm_accumulate(a, b, c, rows, k, n);
}

void sgemm_accumulate_ld(const float* a, std::int64_t lda, const float* b,
                         std::int64_t ldb, float* c, std::int64_t ldc,
                         std::int64_t rows, std::int64_t depth,
                         std::int64_t cols) {
  core::note_kernel_dispatch("sgemm_accumulate_ld");
  core::kernels().sgemm_accumulate_ld(a, lda, b, ldb, c, ldc, rows, depth,
                                      cols);
}

void quantize_floats(const float* src, std::int64_t count, std::int64_t group,
                     std::int8_t* dst, float* scales) {
  STOF_EXPECTS(group > 0 && count % group == 0,
               "quantization group must divide the element count");
  const core::KernelTable& kt = core::kernels();
  core::note_kernel_dispatch("quantize_i8", count / group);
  for (std::int64_t g = 0; g < count / group; ++g) {
    const float* s = src + g * group;
    const auto params = core::quant_params(kt.abs_max(s, group));
    scales[g] = params.scale;
    kt.quantize_i8(s, dst + g * group, group, params.inv_scale);
  }
}

void quantize_halfs(std::span<const half> src, std::int64_t group,
                    std::int8_t* dst, float* scales) {
  const auto count = static_cast<std::int64_t>(src.size());
  STOF_EXPECTS(group > 0 && count % group == 0,
               "quantization group must divide the element count");
  const core::KernelTable& kt = core::kernels();
  std::vector<float> tmp(static_cast<std::size_t>(group));
  core::note_kernel_dispatch("quantize_i8", count / group);
  for (std::int64_t g = 0; g < count / group; ++g) {
    kt.half_to_float(src.data() + g * group, tmp.data(), group);
    const auto params = core::quant_params(kt.abs_max(tmp.data(), group));
    scales[g] = params.scale;
    kt.quantize_i8(tmp.data(), dst + g * group, group, params.inv_scale);
  }
}

}  // namespace packed
}  // namespace stof
