#include "stof/core/packed.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "stof/core/check.hpp"

namespace stof {

namespace {

std::atomic<bool>& packed_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

bool packed_execution_enabled() {
  return packed_flag().load(std::memory_order_relaxed);
}

void set_packed_execution(bool enabled) {
  packed_flag().store(enabled, std::memory_order_relaxed);
}

ScopedPackedExecution::ScopedPackedExecution(bool enabled)
    : previous_(packed_execution_enabled()) {
  set_packed_execution(enabled);
}

ScopedPackedExecution::~ScopedPackedExecution() {
  set_packed_execution(previous_);
}

namespace packed {

const float* h2f_table() {
  // Function-local static: built once, thread-safe under C++11 init rules.
  static const std::vector<float> table = [] {
    std::vector<float> t(65536);
    for (std::uint32_t bits = 0; bits < 65536; ++bits) {
      t[bits] = half::to_float(static_cast<std::uint16_t>(bits));
    }
    return t;
  }();
  return table.data();
}

void half_to_float(std::span<const half> src, std::span<float> dst) {
  STOF_EXPECTS(src.size() == dst.size(), "panel size mismatch");
  const float* table = h2f_table();
  const half* s = src.data();
  float* d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = table[s[i].bits()];
}

void float_to_half(std::span<const float> src, std::span<half> dst) {
  STOF_EXPECTS(src.size() == dst.size(), "panel size mismatch");
  const float* s = src.data();
  half* d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = half::from_bits(half::from_float(s[i]));
  }
}

void sgemm_accumulate(const float* a, const float* b, float* c,
                      std::int64_t rows, std::int64_t k, std::int64_t n) {
  // Block N so the active C slice and B column panel stay cache-resident,
  // and block K so the B sub-panel fits L2.  The k0/ki split keeps the
  // k-index strictly ascending per output element (bit-identity contract).
  // Within a cache block, four output rows are register-tiled together:
  // each B row load feeds four independent accumulation streams, which
  // permutes only across output elements, never within one element's
  // k-ascending term sequence.
  constexpr std::int64_t kNB = 256;
  constexpr std::int64_t kKB = 128;
  constexpr std::int64_t kMR = 4;
  for (std::int64_t n0 = 0; n0 < n; n0 += kNB) {
    const std::int64_t nw = std::min(kNB, n - n0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKB) {
      const std::int64_t kw = std::min(kKB, k - k0);
      std::int64_t r = 0;
      for (; r + kMR <= rows; r += kMR) {
        float* c0 = c + (r + 0) * n + n0;
        float* c1 = c + (r + 1) * n + n0;
        float* c2 = c + (r + 2) * n + n0;
        float* c3 = c + (r + 3) * n + n0;
        const float* a0 = a + (r + 0) * k + k0;
        const float* a1 = a + (r + 1) * k + k0;
        const float* a2 = a + (r + 2) * k + k0;
        const float* a3 = a + (r + 3) * k + k0;
        for (std::int64_t ki = 0; ki < kw; ++ki) {
          const float av0 = a0[ki];
          const float av1 = a1[ki];
          const float av2 = a2[ki];
          const float av3 = a3[ki];
          const float* br = b + (k0 + ki) * n + n0;
          for (std::int64_t j = 0; j < nw; ++j) {
            const float bv = br[j];
            c0[j] += av0 * bv;
            c1[j] += av1 * bv;
            c2[j] += av2 * bv;
            c3[j] += av3 * bv;
          }
        }
      }
      for (; r < rows; ++r) {
        float* cr = c + r * n + n0;
        const float* ar = a + r * k + k0;
        for (std::int64_t ki = 0; ki < kw; ++ki) {
          const float av = ar[ki];
          const float* br = b + (k0 + ki) * n + n0;
          for (std::int64_t j = 0; j < nw; ++j) cr[j] += av * br[j];
        }
      }
    }
  }
}

void sgemm_accumulate_ld(const float* a, std::int64_t lda, const float* b,
                         std::int64_t ldb, float* c, std::int64_t ldc,
                         std::int64_t rows, std::int64_t depth,
                         std::int64_t cols) {
  // 2x2 register block: two output rows share each pair of B-row loads,
  // and C is loaded/stored once per two reduction steps.  The chained
  // (c + t0) + t1 sum is the same left-to-right association as two
  // sequential `c += t` steps, so the rounding sequence per output element
  // is unchanged.  Larger blocks (4 rows and/or 4-deep unrolls) were
  // measured slower here: they spill the FP32 accumulator registers.
  constexpr std::int64_t kMR = 2;
  constexpr std::int64_t kKU = 2;
  std::int64_t r = 0;
  for (; r + kMR <= rows; r += kMR) {
    const float* a0 = a + r * lda;
    const float* a1 = a0 + lda;
    float* c0 = c + r * ldc;
    float* c1 = c0 + ldc;
    std::int64_t e = 0;
    for (; e + kKU <= depth; e += kKU) {
      const float* b0 = b + e * ldb;
      const float* b1 = b0 + ldb;
      const float av00 = a0[e], av01 = a0[e + 1];
      const float av10 = a1[e], av11 = a1[e + 1];
      for (std::int64_t j = 0; j < cols; ++j) {
        const float b0j = b0[j], b1j = b1[j];
        c0[j] = (c0[j] + av00 * b0j) + av01 * b1j;
        c1[j] = (c1[j] + av10 * b0j) + av11 * b1j;
      }
    }
    for (; e < depth; ++e) {
      const float* bv = b + e * ldb;
      const float av0 = a0[e], av1 = a1[e];
      for (std::int64_t j = 0; j < cols; ++j) {
        const float bj = bv[j];
        c0[j] += av0 * bj;
        c1[j] += av1 * bj;
      }
    }
  }
  for (; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t e = 0;
    for (; e + kKU <= depth; e += kKU) {
      const float* b0 = b + e * ldb;
      const float* b1 = b0 + ldb;
      const float av0 = ar[e], av1 = ar[e + 1];
      for (std::int64_t j = 0; j < cols; ++j) {
        cr[j] = (cr[j] + av0 * b0[j]) + av1 * b1[j];
      }
    }
    for (; e < depth; ++e) {
      const float* bv = b + e * ldb;
      const float av = ar[e];
      for (std::int64_t j = 0; j < cols; ++j) cr[j] += av * bv[j];
    }
  }
}

}  // namespace packed
}  // namespace stof
