// NEON micro-kernels for AArch64 (compiled with -ffp-contract=off).
//
// Same bit-identity rules as the x86 tables: separate vmul/vadd per
// ascending depth step (never vmla/fmla — those fuse), lanes only across
// independent output columns.  Conversions stay on the scalar table paths
// (the h2f table and half::from_float) so NaN canonicalization and
// round-to-nearest-even semantics are exactly the reference's.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cstdint>

#include "stof/core/kernels.hpp"

namespace stof::core::detail {
namespace {

inline void tile_2x8_neon(const float* a0, const float* a1, const float* b,
                          std::int64_t ldb, float* c0, float* c1,
                          std::int64_t depth) {
  float32x4_t acc00 = vld1q_f32(c0), acc01 = vld1q_f32(c0 + 4);
  float32x4_t acc10 = vld1q_f32(c1), acc11 = vld1q_f32(c1 + 4);
  for (std::int64_t e = 0; e < depth; ++e) {
    const float* br = b + e * ldb;
    const float32x4_t b0 = vld1q_f32(br);
    const float32x4_t b1 = vld1q_f32(br + 4);
    float32x4_t av = vdupq_n_f32(a0[e]);
    acc00 = vaddq_f32(acc00, vmulq_f32(av, b0));
    acc01 = vaddq_f32(acc01, vmulq_f32(av, b1));
    av = vdupq_n_f32(a1[e]);
    acc10 = vaddq_f32(acc10, vmulq_f32(av, b0));
    acc11 = vaddq_f32(acc11, vmulq_f32(av, b1));
  }
  vst1q_f32(c0, acc00);
  vst1q_f32(c0 + 4, acc01);
  vst1q_f32(c1, acc10);
  vst1q_f32(c1 + 4, acc11);
}

inline void tile_1x4_neon(const float* ar, const float* b, std::int64_t ldb,
                          float* cr, std::int64_t depth) {
  float32x4_t acc = vld1q_f32(cr);
  for (std::int64_t e = 0; e < depth; ++e) {
    acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(ar[e]), vld1q_f32(b + e * ldb)));
  }
  vst1q_f32(cr, acc);
}

inline void tile_cols_scalar(const float* a, std::int64_t lda, const float* b,
                             std::int64_t ldb, float* c, std::int64_t ldc,
                             std::int64_t rows, std::int64_t depth,
                             std::int64_t j_lo, std::int64_t j_hi) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    for (std::int64_t j = j_lo; j < j_hi; ++j) {
      float s = cr[j];
      for (std::int64_t e = 0; e < depth; ++e) s += ar[e] * b[e * ldb + j];
      cr[j] = s;
    }
  }
}

void sgemm_accumulate_ld_neon(const float* a, std::int64_t lda, const float* b,
                              std::int64_t ldb, float* c, std::int64_t ldc,
                              std::int64_t rows, std::int64_t depth,
                              std::int64_t cols) {
  std::int64_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const float* a0 = a + (r + 0) * lda;
    const float* a1 = a + (r + 1) * lda;
    float* c0 = c + (r + 0) * ldc;
    float* c1 = c + (r + 1) * ldc;
    std::int64_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      tile_2x8_neon(a0, a1, b + j, ldb, c0 + j, c1 + j, depth);
    }
    for (; j + 4 <= cols; j += 4) {
      tile_1x4_neon(a0, b + j, ldb, c0 + j, depth);
      tile_1x4_neon(a1, b + j, ldb, c1 + j, depth);
    }
    if (j < cols) {
      tile_cols_scalar(a + r * lda, lda, b, ldb, c + r * ldc, ldc, 2, depth, j,
                       cols);
    }
  }
  for (; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t j = 0;
    for (; j + 4 <= cols; j += 4) tile_1x4_neon(ar, b + j, ldb, cr + j, depth);
    if (j < cols) {
      tile_cols_scalar(ar, lda, b, ldb, cr, ldc, 1, depth, j, cols);
    }
  }
}

void sgemm_accumulate_neon(const float* a, const float* b, float* c,
                           std::int64_t rows, std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kNB = 256;
  constexpr std::int64_t kKB = 128;
  for (std::int64_t n0 = 0; n0 < n; n0 += kNB) {
    const std::int64_t nw = std::min(kNB, n - n0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKB) {
      const std::int64_t kw = std::min(kKB, k - k0);
      sgemm_accumulate_ld_neon(a + k0, k, b + k0 * n + n0, n, c + n0, n, rows,
                               kw, nw);
    }
  }
}

void axpy_neon(float* y, const float* x, float a, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t t = vmulq_f32(va, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), t));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void axpby_neon(float* y, const float* x, float beta, float alpha,
                std::int64_t n) {
  const float32x4_t vb = vdupq_n_f32(beta);
  const float32x4_t va = vdupq_n_f32(alpha);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t t = vmulq_f32(vld1q_f32(y + i), vb);
    const float32x4_t u = vmulq_f32(va, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(t, u));
  }
  for (; i < n; ++i) y[i] = y[i] * beta + alpha * x[i];
}

void scale_inplace_neon(float* x, float s, std::int64_t n) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

float reduce_max_neon(const float* x, std::int64_t n) {
  std::int64_t i = 0;
  float m;
  if (n >= 4) {
    float32x4_t acc = vld1q_f32(x);
    for (i = 4; i + 4 <= n; i += 4) acc = vmaxq_f32(acc, vld1q_f32(x + i));
    m = vmaxvq_f32(acc);
  } else {
    m = x[0];
    i = 1;
  }
  for (; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

float abs_max_neon(const float* x, std::int64_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) acc = vmaxq_f32(acc, vabsq_f32(vld1q_f32(x + i)));
  float m = vmaxvq_f32(acc);
  for (; i < n; ++i) m = std::max(m, x[i] < 0 ? -x[i] : x[i]);
  return m;
}

}  // namespace

void fill_neon(KernelTable& table) {
  table.sgemm_accumulate = sgemm_accumulate_neon;
  table.sgemm_accumulate_ld = sgemm_accumulate_ld_neon;
  table.axpy = axpy_neon;
  table.axpby = axpby_neon;
  table.scale_inplace = scale_inplace_neon;
  table.reduce_max = reduce_max_neon;
  table.abs_max = abs_max_neon;
}

}  // namespace stof::core::detail

#endif  // __aarch64__
