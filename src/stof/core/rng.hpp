// Deterministic random number generation.
//
// Every stochastic component in STOF (random attention masks, tensor
// initialization, the reward-based parameter sampler) draws from an
// explicitly seeded Rng so that tests, benches, and the tuner are
// reproducible run-to-run.  The engine is xoshiro256**, which is fast,
// tiny, and has no global state.
#pragma once

#include <cstdint>

#include "stof/core/check.hpp"

namespace stof {

/// Seeded xoshiro256** engine with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
      s = t ^ (t >> 31);
    }
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) {
    STOF_EXPECTS(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t x = next_u64();
    while (x >= limit) x = next_u64();
    return x % n;
  }

  /// Bernoulli draw with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace stof
