// AVX2 + F16C micro-kernels (compiled with -mavx2 -mf16c -ffp-contract=off).
//
// Bit-identity: every FP32 kernel keeps each output element's reduction
// strictly serial in ascending depth order, with one multiply and one add
// per step (no FMA — this TU disables contraction).  SIMD lanes span only
// independent output columns, which the scalar reference explicitly
// licenses.  Accumulator tiles live in registers across the whole depth
// loop; a register add sequence rounds identically to the scalar
// load/add/store sequence, so outputs stay byte-equal to the scalar table.
//
// F16C notes: vcvtph2ps is exact (bit-equal to the h2f table, including
// NaN payloads and subnormals).  vcvtps2ph rounds to nearest-even like
// half::from_float for every non-NaN input, but preserves NaN payloads
// where from_float canonicalizes them — the conversion loop detects NaN
// lanes (rare) and re-converts those through half::from_float.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stof/core/kernels.hpp"
#include "stof/core/packed.hpp"

namespace stof::core::detail {
namespace {

void half_to_float_avx2(const half* src, float* dst, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  const float* table = packed::h2f_table();
  for (; i < n; ++i) dst[i] = table[src[i].bits()];
}

void float_to_half_avx2(const float* src, half* dst, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT |
                                       _MM_FROUND_NO_EXC);
    const __m256 unord = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(unord) != 0) {
      alignas(16) std::uint16_t lanes[8];
      _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), h);
      for (int l = 0; l < 8; ++l) {
        const float f = src[i + l];
        if (f != f) lanes[l] = half::from_float(f);
      }
      h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = half::from_bits(half::from_float(src[i]));
}

// 4-row x 16-column FP32 register tile: accumulators stay in ymm across
// the whole depth loop, one B-row pair of loads feeds four rows.
inline void tile_4x16(const float* a0, const float* a1, const float* a2,
                      const float* a3, const float* b, std::int64_t ldb,
                      float* c0, float* c1, float* c2, float* c3,
                      std::int64_t depth) {
  __m256 acc00 = _mm256_loadu_ps(c0), acc01 = _mm256_loadu_ps(c0 + 8);
  __m256 acc10 = _mm256_loadu_ps(c1), acc11 = _mm256_loadu_ps(c1 + 8);
  __m256 acc20 = _mm256_loadu_ps(c2), acc21 = _mm256_loadu_ps(c2 + 8);
  __m256 acc30 = _mm256_loadu_ps(c3), acc31 = _mm256_loadu_ps(c3 + 8);
  for (std::int64_t e = 0; e < depth; ++e) {
    const float* br = b + e * ldb;
    const __m256 b0 = _mm256_loadu_ps(br);
    const __m256 b1 = _mm256_loadu_ps(br + 8);
    __m256 av = _mm256_set1_ps(a0[e]);
    acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av, b0));
    acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av, b1));
    av = _mm256_set1_ps(a1[e]);
    acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av, b0));
    acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av, b1));
    av = _mm256_set1_ps(a2[e]);
    acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(av, b0));
    acc21 = _mm256_add_ps(acc21, _mm256_mul_ps(av, b1));
    av = _mm256_set1_ps(a3[e]);
    acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(av, b0));
    acc31 = _mm256_add_ps(acc31, _mm256_mul_ps(av, b1));
  }
  _mm256_storeu_ps(c0, acc00);
  _mm256_storeu_ps(c0 + 8, acc01);
  _mm256_storeu_ps(c1, acc10);
  _mm256_storeu_ps(c1 + 8, acc11);
  _mm256_storeu_ps(c2, acc20);
  _mm256_storeu_ps(c2 + 8, acc21);
  _mm256_storeu_ps(c3, acc30);
  _mm256_storeu_ps(c3 + 8, acc31);
}

inline void tile_4x8(const float* a0, const float* a1, const float* a2,
                     const float* a3, const float* b, std::int64_t ldb,
                     float* c0, float* c1, float* c2, float* c3,
                     std::int64_t depth) {
  __m256 acc0 = _mm256_loadu_ps(c0);
  __m256 acc1 = _mm256_loadu_ps(c1);
  __m256 acc2 = _mm256_loadu_ps(c2);
  __m256 acc3 = _mm256_loadu_ps(c3);
  for (std::int64_t e = 0; e < depth; ++e) {
    const __m256 bv = _mm256_loadu_ps(b + e * ldb);
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0[e]), bv));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1[e]), bv));
    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2[e]), bv));
    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3[e]), bv));
  }
  _mm256_storeu_ps(c0, acc0);
  _mm256_storeu_ps(c1, acc1);
  _mm256_storeu_ps(c2, acc2);
  _mm256_storeu_ps(c3, acc3);
}

inline void tile_1x16(const float* ar, const float* b, std::int64_t ldb,
                      float* cr, std::int64_t depth) {
  __m256 acc0 = _mm256_loadu_ps(cr);
  __m256 acc1 = _mm256_loadu_ps(cr + 8);
  for (std::int64_t e = 0; e < depth; ++e) {
    const float* br = b + e * ldb;
    const __m256 av = _mm256_set1_ps(ar[e]);
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(br)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(br + 8)));
  }
  _mm256_storeu_ps(cr, acc0);
  _mm256_storeu_ps(cr + 8, acc1);
}

inline void tile_1x8(const float* ar, const float* b, std::int64_t ldb,
                     float* cr, std::int64_t depth) {
  __m256 acc = _mm256_loadu_ps(cr);
  for (std::int64_t e = 0; e < depth; ++e) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_set1_ps(ar[e]), _mm256_loadu_ps(b + e * ldb)));
  }
  _mm256_storeu_ps(cr, acc);
}

/// Scalar column tail: per element, one serial ascending-depth chain.
inline void tile_cols_scalar(const float* a, std::int64_t lda, const float* b,
                             std::int64_t ldb, float* c, std::int64_t ldc,
                             std::int64_t rows, std::int64_t depth,
                             std::int64_t j_lo, std::int64_t j_hi) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    for (std::int64_t j = j_lo; j < j_hi; ++j) {
      float s = cr[j];
      for (std::int64_t e = 0; e < depth; ++e) s += ar[e] * b[e * ldb + j];
      cr[j] = s;
    }
  }
}

void sgemm_accumulate_ld_avx2(const float* a, std::int64_t lda, const float* b,
                              std::int64_t ldb, float* c, std::int64_t ldc,
                              std::int64_t rows, std::int64_t depth,
                              std::int64_t cols) {
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* a0 = a + (r + 0) * lda;
    const float* a1 = a + (r + 1) * lda;
    const float* a2 = a + (r + 2) * lda;
    const float* a3 = a + (r + 3) * lda;
    float* c0 = c + (r + 0) * ldc;
    float* c1 = c + (r + 1) * ldc;
    float* c2 = c + (r + 2) * ldc;
    float* c3 = c + (r + 3) * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      tile_4x16(a0, a1, a2, a3, b + j, ldb, c0 + j, c1 + j, c2 + j, c3 + j,
                depth);
    }
    for (; j + 8 <= cols; j += 8) {
      tile_4x8(a0, a1, a2, a3, b + j, ldb, c0 + j, c1 + j, c2 + j, c3 + j,
               depth);
    }
    if (j < cols) {
      tile_cols_scalar(a + r * lda, lda, b, ldb, c + r * ldc, ldc, 4, depth, j,
                       cols);
    }
  }
  for (; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= cols; j += 16) tile_1x16(ar, b + j, ldb, cr + j, depth);
    for (; j + 8 <= cols; j += 8) tile_1x8(ar, b + j, ldb, cr + j, depth);
    if (j < cols) {
      tile_cols_scalar(ar, lda, b, ldb, cr, ldc, 1, depth, j, cols);
    }
  }
}

void sgemm_accumulate_avx2(const float* a, const float* b, float* c,
                           std::int64_t rows, std::int64_t k, std::int64_t n) {
  // Same kNB/kKB cache blocking as the scalar reference (the k0/ki split
  // keeps k strictly ascending per output element); within a block the
  // register tiles accumulate across the whole kw without touching C.
  constexpr std::int64_t kNB = 256;
  constexpr std::int64_t kKB = 128;
  for (std::int64_t n0 = 0; n0 < n; n0 += kNB) {
    const std::int64_t nw = std::min(kNB, n - n0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKB) {
      const std::int64_t kw = std::min(kKB, k - k0);
      sgemm_accumulate_ld_avx2(a + k0, k, b + k0 * n + n0, n, c + n0, n, rows,
                               kw, nw);
    }
  }
}

void dot_rows_avx2(const float* q, const float* base, std::int64_t stride,
                   const float* idx, float* out, std::int64_t count,
                   std::int64_t d) {
  // Four interleaved serial chains: each output keeps its strictly serial
  // ascending-e accumulation (bit-identical to the scalar reference); the
  // independent chains hide the FP add latency.
  const auto row_at = [&](std::int64_t i) {
    const std::int64_t r =
        idx != nullptr ? static_cast<std::int64_t>(idx[i]) : i;
    return base + r * stride;
  };
  std::int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = row_at(i + 0);
    const float* r1 = row_at(i + 1);
    const float* r2 = row_at(i + 2);
    const float* r3 = row_at(i + 3);
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    for (std::int64_t e = 0; e < d; ++e) {
      const float qe = q[e];
      s0 += qe * r0[e];
      s1 += qe * r1[e];
      s2 += qe * r2[e];
      s3 += qe * r3[e];
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < count; ++i) {
    const float* row = row_at(i);
    float acc = 0.0f;
    for (std::int64_t e = 0; e < d; ++e) acc += q[e] * row[e];
    out[i] = acc;
  }
}

void axpy_avx2(float* y, const float* x, float a, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), t));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void axpby_avx2(float* y, const float* x, float beta, float alpha,
                std::int64_t n) {
  const __m256 vb = _mm256_set1_ps(beta);
  const __m256 va = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(_mm256_loadu_ps(y + i), vb);
    const __m256 u = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(t, u));
  }
  for (; i < n; ++i) y[i] = y[i] * beta + alpha * x[i];
}

void scale_inplace_avx2(float* x, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

float reduce_max_avx2(const float* x, std::int64_t n) {
  // max is exact, so the tree reduction matches any serial order.
  std::int64_t i = 0;
  float m;
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
    }
    __m128 q = _mm_max_ps(_mm256_castps256_ps128(acc),
                          _mm256_extractf128_ps(acc, 1));
    q = _mm_max_ps(q, _mm_movehl_ps(q, q));
    q = _mm_max_ss(q, _mm_movehdup_ps(q));
    m = _mm_cvtss_f32(q);
  } else {
    m = x[0];
    i = 1;
  }
  for (; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

float abs_max_avx2(const float* x, std::int64_t n) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_ps(acc, _mm256_and_ps(_mm256_loadu_ps(x + i), mask));
  }
  __m128 q = _mm_max_ps(_mm256_castps256_ps128(acc),
                        _mm256_extractf128_ps(acc, 1));
  q = _mm_max_ps(q, _mm_movehl_ps(q, q));
  q = _mm_max_ss(q, _mm_movehdup_ps(q));
  float m = _mm_cvtss_f32(q);
  for (; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void quantize_i8_avx2(const float* src, std::int8_t* dst, std::int64_t n,
                      float inv_scale) {
  // cvtps2dq rounds per MXCSR (nearest-even by default) — identical codes
  // to the scalar lrintf path.
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256i lo_clamp = _mm256_set1_epi32(-127);
  const __m256i hi_clamp = _mm256_set1_epi32(127);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i q =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i), inv));
    q = _mm256_min_epi32(_mm256_max_epi32(q, lo_clamp), hi_clamp);
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), p8);
  }
  for (; i < n; ++i) {
    long r = std::lrintf(src[i] * inv_scale);
    r = std::clamp(r, -127L, 127L);
    dst[i] = static_cast<std::int8_t>(r);
  }
}

void dequantize_i8_avx2(const std::int8_t* src, float* dst, std::int64_t n,
                        float scale) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(vs, f));
  }
  for (; i < n; ++i) dst[i] = scale * static_cast<float>(src[i]);
}

std::int32_t dot_i8_avx2(const std::int8_t* a, const std::int8_t* b,
                         std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  __m128i q = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  q = _mm_add_epi32(q, _mm_unpackhi_epi64(q, q));
  q = _mm_add_epi32(q, _mm_shuffle_epi32(q, 0x55));
  std::int32_t sum = _mm_cvtsi128_si32(q);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

void axpy_i8_avx2(float* y, const std::int8_t* x, float a, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256 xf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
    const __m256 t = _mm256_mul_ps(va, xf);
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), t));
  }
  for (; i < n; ++i) y[i] += a * static_cast<float>(x[i]);
}

/// Sign-extended (a_lo, a_hi) int16 pair replicated across a ymm, for
/// vpmaddwd against interleaved B rows.
inline __m256i a_pair_epi32(std::int8_t lo, std::int8_t hi) {
  const std::uint32_t pair =
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
           static_cast<std::int16_t>(hi)))
       << 16) |
      static_cast<std::uint16_t>(static_cast<std::int16_t>(lo));
  return _mm256_set1_epi32(static_cast<int>(pair));
}

void sgemm_i8_accumulate_ld_avx2(const std::int8_t* a, std::int64_t lda,
                                 const std::int8_t* b, std::int64_t ldb,
                                 float* c, std::int64_t ldc, std::int64_t rows,
                                 std::int64_t depth, std::int64_t cols,
                                 const float* a_row_scales, float b_scale) {
  // Depth pairs feed vpmaddwd: B rows e and e+1 are sign-extended to int16
  // and interleaved per column, so each madd lane accumulates
  // a[e]*b[e][j] + a[e+1]*b[e+1][j] exactly in int32.  The interleave
  // shuffles column lanes into [j0-3, j8-11] / [j4-7, j12-15] order; a
  // final 128-bit permute restores them.  int32 sums are exact, so lane
  // order never affects results.
  for (std::int64_t r = 0; r < rows; ++r) {
    const float s = a_row_scales[r] * b_scale;
    const std::int8_t* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      std::int64_t e = 0;
      for (; e + 2 <= depth; e += 2) {
        const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + e * ldb + j)));
        const __m256i b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + (e + 1) * ldb + j)));
        const __m256i ap = a_pair_epi32(ar[e], ar[e + 1]);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_unpacklo_epi16(b0, b1), ap));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_unpackhi_epi16(b0, b1), ap));
      }
      if (e < depth) {
        const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + e * ldb + j)));
        const __m256i zero = _mm256_setzero_si256();
        const __m256i ap = a_pair_epi32(ar[e], 0);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_unpacklo_epi16(b0, zero), ap));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_unpackhi_epi16(b0, zero), ap));
      }
      const __m256i q0 = _mm256_permute2x128_si256(acc0, acc1, 0x20);
      const __m256i q1 = _mm256_permute2x128_si256(acc0, acc1, 0x31);
      const __m256 vs = _mm256_set1_ps(s);
      _mm256_storeu_ps(
          cr + j, _mm256_add_ps(_mm256_loadu_ps(cr + j),
                                _mm256_mul_ps(vs, _mm256_cvtepi32_ps(q0))));
      _mm256_storeu_ps(
          cr + j + 8,
          _mm256_add_ps(_mm256_loadu_ps(cr + j + 8),
                        _mm256_mul_ps(vs, _mm256_cvtepi32_ps(q1))));
    }
    for (; j < cols; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t e = 0; e < depth; ++e) {
        acc += static_cast<std::int32_t>(ar[e]) *
               static_cast<std::int32_t>(b[e * ldb + j]);
      }
      cr[j] += s * static_cast<float>(acc);
    }
  }
}

}  // namespace

void fill_avx2(KernelTable& table) {
  table.half_to_float = half_to_float_avx2;
  table.float_to_half = float_to_half_avx2;
  table.sgemm_accumulate = sgemm_accumulate_avx2;
  table.sgemm_accumulate_ld = sgemm_accumulate_ld_avx2;
  table.dot_rows = dot_rows_avx2;
  table.axpy = axpy_avx2;
  table.axpby = axpby_avx2;
  table.scale_inplace = scale_inplace_avx2;
  table.reduce_max = reduce_max_avx2;
  table.abs_max = abs_max_avx2;
  table.quantize_i8 = quantize_i8_avx2;
  table.dequantize_i8 = dequantize_i8_avx2;
  table.dot_i8 = dot_i8_avx2;
  table.axpy_i8 = axpy_i8_avx2;
  table.sgemm_i8_accumulate_ld = sgemm_i8_accumulate_ld_avx2;
}

}  // namespace stof::core::detail

#endif  // x86_64
