// FNV-1a 64-bit checksum.
//
// Used by the serialization formats (masks/serialize, models/plan_io) to
// detect bit flips and truncation: a corrupted payload must error on load,
// never silently deserialize.  FNV-1a is not cryptographic — it guards
// against accidental corruption, which is all an on-disk artifact cache
// needs — but it is deterministic across platforms, byte-order independent
// (we feed it explicit byte sequences), and one multiply per byte.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stof {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// FNV-1a over `len` bytes, continuing from `h` (chain calls to hash a
/// logical record spread over several buffers).
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                                           std::uint64_t h = kFnv1aOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace stof
