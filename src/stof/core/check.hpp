// Error-handling primitives for the STOF library.
//
// STOF follows the C++ Core Guidelines contract style: preconditions and
// invariants are checked with STOF_CHECK / STOF_EXPECTS and violations throw
// stof::Error carrying the failing expression and location.  Checks are kept
// in release builds; every check here guards a programmer-visible API
// contract, not an inner loop.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stof {

/// Exception thrown on any contract violation inside the STOF library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace stof

/// Check an API contract; throws stof::Error when `cond` is false.
#define STOF_CHECK(cond, ...)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::stof::detail::fail("check", #cond, __FILE__, __LINE__,        \
                           ::std::string{__VA_ARGS__});               \
    }                                                                 \
  } while (0)

/// Precondition on function entry (Core Guidelines I.6 "Expects").
#define STOF_EXPECTS(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::stof::detail::fail("precondition", #cond, __FILE__, __LINE__, \
                           ::std::string{__VA_ARGS__});               \
    }                                                                 \
  } while (0)

/// Postcondition before function exit (Core Guidelines I.8 "Ensures").
#define STOF_ENSURES(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::stof::detail::fail("postcondition", #cond, __FILE__, __LINE__, \
                           ::std::string{__VA_ARGS__});                \
    }                                                                  \
  } while (0)
