// Scalar reference implementations of every KernelTable entry.
//
// These are the bit-exactness ground truth: the GEMM bodies are the
// register-blocked loops the packed layer has always run (moved here
// verbatim from packed.cpp), the conversions go through the exact h2f
// table / half::from_float, and the decode primitives spell out the
// serial per-output accumulation order the SIMD tables must reproduce.
#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stof/core/kernels.hpp"
#include "stof/core/packed.hpp"

namespace stof::core {
namespace {

void half_to_float_scalar(const half* src, float* dst, std::int64_t n) {
  const float* table = packed::h2f_table();
  for (std::int64_t i = 0; i < n; ++i) dst[i] = table[src[i].bits()];
}

void float_to_half_scalar(const float* src, half* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = half::from_bits(half::from_float(src[i]));
  }
}

void sgemm_accumulate_scalar(const float* a, const float* b, float* c,
                             std::int64_t rows, std::int64_t k,
                             std::int64_t n) {
  // Block N so the active C slice and B column panel stay cache-resident,
  // and block K so the B sub-panel fits L2.  The k0/ki split keeps the
  // k-index strictly ascending per output element (bit-identity contract).
  // Within a cache block, four output rows are register-tiled together:
  // each B row load feeds four independent accumulation streams, which
  // permutes only across output elements, never within one element's
  // k-ascending term sequence.
  constexpr std::int64_t kNB = 256;
  constexpr std::int64_t kKB = 128;
  constexpr std::int64_t kMR = 4;
  for (std::int64_t n0 = 0; n0 < n; n0 += kNB) {
    const std::int64_t nw = std::min(kNB, n - n0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKB) {
      const std::int64_t kw = std::min(kKB, k - k0);
      std::int64_t r = 0;
      for (; r + kMR <= rows; r += kMR) {
        float* c0 = c + (r + 0) * n + n0;
        float* c1 = c + (r + 1) * n + n0;
        float* c2 = c + (r + 2) * n + n0;
        float* c3 = c + (r + 3) * n + n0;
        const float* a0 = a + (r + 0) * k + k0;
        const float* a1 = a + (r + 1) * k + k0;
        const float* a2 = a + (r + 2) * k + k0;
        const float* a3 = a + (r + 3) * k + k0;
        for (std::int64_t ki = 0; ki < kw; ++ki) {
          const float av0 = a0[ki];
          const float av1 = a1[ki];
          const float av2 = a2[ki];
          const float av3 = a3[ki];
          const float* br = b + (k0 + ki) * n + n0;
          for (std::int64_t j = 0; j < nw; ++j) {
            const float bv = br[j];
            c0[j] += av0 * bv;
            c1[j] += av1 * bv;
            c2[j] += av2 * bv;
            c3[j] += av3 * bv;
          }
        }
      }
      for (; r < rows; ++r) {
        float* cr = c + r * n + n0;
        const float* ar = a + r * k + k0;
        for (std::int64_t ki = 0; ki < kw; ++ki) {
          const float av = ar[ki];
          const float* br = b + (k0 + ki) * n + n0;
          for (std::int64_t j = 0; j < nw; ++j) cr[j] += av * br[j];
        }
      }
    }
  }
}

void sgemm_accumulate_ld_scalar(const float* a, std::int64_t lda,
                                const float* b, std::int64_t ldb, float* c,
                                std::int64_t ldc, std::int64_t rows,
                                std::int64_t depth, std::int64_t cols) {
  // 2x2 register block: two output rows share each pair of B-row loads,
  // and C is loaded/stored once per two reduction steps.  The chained
  // (c + t0) + t1 sum is the same left-to-right association as two
  // sequential `c += t` steps, so the rounding sequence per output element
  // is unchanged.
  constexpr std::int64_t kMR = 2;
  constexpr std::int64_t kKU = 2;
  std::int64_t r = 0;
  for (; r + kMR <= rows; r += kMR) {
    const float* a0 = a + r * lda;
    const float* a1 = a0 + lda;
    float* c0 = c + r * ldc;
    float* c1 = c0 + ldc;
    std::int64_t e = 0;
    for (; e + kKU <= depth; e += kKU) {
      const float* b0 = b + e * ldb;
      const float* b1 = b0 + ldb;
      const float av00 = a0[e], av01 = a0[e + 1];
      const float av10 = a1[e], av11 = a1[e + 1];
      for (std::int64_t j = 0; j < cols; ++j) {
        const float b0j = b0[j], b1j = b1[j];
        c0[j] = (c0[j] + av00 * b0j) + av01 * b1j;
        c1[j] = (c1[j] + av10 * b0j) + av11 * b1j;
      }
    }
    for (; e < depth; ++e) {
      const float* bv = b + e * ldb;
      const float av0 = a0[e], av1 = a1[e];
      for (std::int64_t j = 0; j < cols; ++j) {
        const float bj = bv[j];
        c0[j] += av0 * bj;
        c1[j] += av1 * bj;
      }
    }
  }
  for (; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t e = 0;
    for (; e + kKU <= depth; e += kKU) {
      const float* b0 = b + e * ldb;
      const float* b1 = b0 + ldb;
      const float av0 = ar[e], av1 = ar[e + 1];
      for (std::int64_t j = 0; j < cols; ++j) {
        cr[j] = (cr[j] + av0 * b0[j]) + av1 * b1[j];
      }
    }
    for (; e < depth; ++e) {
      const float* bv = b + e * ldb;
      const float av = ar[e];
      for (std::int64_t j = 0; j < cols; ++j) cr[j] += av * bv[j];
    }
  }
}

void dot_rows_scalar(const float* q, const float* base, std::int64_t stride,
                     const float* idx, float* out, std::int64_t count,
                     std::int64_t d) {
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t r =
        idx != nullptr ? static_cast<std::int64_t>(idx[i]) : i;
    const float* row = base + r * stride;
    float acc = 0.0f;
    for (std::int64_t e = 0; e < d; ++e) acc += q[e] * row[e];
    out[i] = acc;
  }
}

void axpy_scalar(float* y, const float* x, float a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void axpby_scalar(float* y, const float* x, float beta, float alpha,
                  std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = y[i] * beta + alpha * x[i];
}

void scale_inplace_scalar(float* x, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] *= s;
}

float reduce_max_scalar(const float* x, std::int64_t n) {
  float m = x[0];
  for (std::int64_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

float abs_max_scalar(const float* x, std::int64_t n) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void quantize_i8_scalar(const float* src, std::int8_t* dst, std::int64_t n,
                        float inv_scale) {
  for (std::int64_t i = 0; i < n; ++i) {
    // lrintf under the default rounding mode is round-to-nearest-even —
    // the same rounding cvtps2dq applies, so codes match across ISAs.
    long r = std::lrintf(src[i] * inv_scale);
    r = std::clamp(r, -127L, 127L);
    dst[i] = static_cast<std::int8_t>(r);
  }
}

void dequantize_i8_scalar(const std::int8_t* src, float* dst, std::int64_t n,
                          float scale) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = scale * static_cast<float>(src[i]);
  }
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::int64_t n) {
  std::int32_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

void axpy_i8_scalar(float* y, const std::int8_t* x, float a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] += a * static_cast<float>(x[i]);
  }
}

void sgemm_i8_accumulate_ld_scalar(const std::int8_t* a, std::int64_t lda,
                                   const std::int8_t* b, std::int64_t ldb,
                                   float* c, std::int64_t ldc,
                                   std::int64_t rows, std::int64_t depth,
                                   std::int64_t cols,
                                   const float* a_row_scales, float b_scale) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float s = a_row_scales[r] * b_scale;
    const std::int8_t* ar = a + r * lda;
    float* cr = c + r * ldc;
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t e = 0; e < depth; ++e) {
        acc += static_cast<std::int32_t>(ar[e]) *
               static_cast<std::int32_t>(b[e * ldb + j]);
      }
      cr[j] += s * static_cast<float>(acc);
    }
  }
}

}  // namespace

const KernelTable& scalar_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.isa = Isa::kScalar;
    t.half_to_float = half_to_float_scalar;
    t.float_to_half = float_to_half_scalar;
    t.sgemm_accumulate = sgemm_accumulate_scalar;
    t.sgemm_accumulate_ld = sgemm_accumulate_ld_scalar;
    t.dot_rows = dot_rows_scalar;
    t.axpy = axpy_scalar;
    t.axpby = axpby_scalar;
    t.scale_inplace = scale_inplace_scalar;
    t.reduce_max = reduce_max_scalar;
    t.abs_max = abs_max_scalar;
    t.quantize_i8 = quantize_i8_scalar;
    t.dequantize_i8 = dequantize_i8_scalar;
    t.dot_i8 = dot_i8_scalar;
    t.axpy_i8 = axpy_i8_scalar;
    t.sgemm_i8_accumulate_ld = sgemm_i8_accumulate_ld_scalar;
    return t;
  }();
  return table;
}

}  // namespace stof::core
