// AVX-512 GEMM tiles (compiled with -mavx512f -mavx512bw -ffp-contract=off).
//
// Only the GEMM accumulators are overridden here — conversions and the
// element-wise primitives stay on the AVX2 entries, which already saturate
// memory for those shapes.  The same bit-identity rules apply: separate
// multiply and add per ascending depth step, vector lanes only across
// independent output columns, accumulators resident in zmm registers for
// the whole depth loop.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "stof/core/kernels.hpp"

namespace stof::core::detail {
namespace {

inline void tile512_4x32(const float* a0, const float* a1, const float* a2,
                         const float* a3, const float* b, std::int64_t ldb,
                         float* c0, float* c1, float* c2, float* c3,
                         std::int64_t depth) {
  __m512 acc00 = _mm512_loadu_ps(c0), acc01 = _mm512_loadu_ps(c0 + 16);
  __m512 acc10 = _mm512_loadu_ps(c1), acc11 = _mm512_loadu_ps(c1 + 16);
  __m512 acc20 = _mm512_loadu_ps(c2), acc21 = _mm512_loadu_ps(c2 + 16);
  __m512 acc30 = _mm512_loadu_ps(c3), acc31 = _mm512_loadu_ps(c3 + 16);
  for (std::int64_t e = 0; e < depth; ++e) {
    const float* br = b + e * ldb;
    const __m512 b0 = _mm512_loadu_ps(br);
    const __m512 b1 = _mm512_loadu_ps(br + 16);
    __m512 av = _mm512_set1_ps(a0[e]);
    acc00 = _mm512_add_ps(acc00, _mm512_mul_ps(av, b0));
    acc01 = _mm512_add_ps(acc01, _mm512_mul_ps(av, b1));
    av = _mm512_set1_ps(a1[e]);
    acc10 = _mm512_add_ps(acc10, _mm512_mul_ps(av, b0));
    acc11 = _mm512_add_ps(acc11, _mm512_mul_ps(av, b1));
    av = _mm512_set1_ps(a2[e]);
    acc20 = _mm512_add_ps(acc20, _mm512_mul_ps(av, b0));
    acc21 = _mm512_add_ps(acc21, _mm512_mul_ps(av, b1));
    av = _mm512_set1_ps(a3[e]);
    acc30 = _mm512_add_ps(acc30, _mm512_mul_ps(av, b0));
    acc31 = _mm512_add_ps(acc31, _mm512_mul_ps(av, b1));
  }
  _mm512_storeu_ps(c0, acc00);
  _mm512_storeu_ps(c0 + 16, acc01);
  _mm512_storeu_ps(c1, acc10);
  _mm512_storeu_ps(c1 + 16, acc11);
  _mm512_storeu_ps(c2, acc20);
  _mm512_storeu_ps(c2 + 16, acc21);
  _mm512_storeu_ps(c3, acc30);
  _mm512_storeu_ps(c3 + 16, acc31);
}

inline void tile512_4x16(const float* a0, const float* a1, const float* a2,
                         const float* a3, const float* b, std::int64_t ldb,
                         float* c0, float* c1, float* c2, float* c3,
                         std::int64_t depth) {
  __m512 acc0 = _mm512_loadu_ps(c0);
  __m512 acc1 = _mm512_loadu_ps(c1);
  __m512 acc2 = _mm512_loadu_ps(c2);
  __m512 acc3 = _mm512_loadu_ps(c3);
  for (std::int64_t e = 0; e < depth; ++e) {
    const __m512 bv = _mm512_loadu_ps(b + e * ldb);
    acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(_mm512_set1_ps(a0[e]), bv));
    acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(_mm512_set1_ps(a1[e]), bv));
    acc2 = _mm512_add_ps(acc2, _mm512_mul_ps(_mm512_set1_ps(a2[e]), bv));
    acc3 = _mm512_add_ps(acc3, _mm512_mul_ps(_mm512_set1_ps(a3[e]), bv));
  }
  _mm512_storeu_ps(c0, acc0);
  _mm512_storeu_ps(c1, acc1);
  _mm512_storeu_ps(c2, acc2);
  _mm512_storeu_ps(c3, acc3);
}

inline void tile256_4x8(const float* a0, const float* a1, const float* a2,
                        const float* a3, const float* b, std::int64_t ldb,
                        float* c0, float* c1, float* c2, float* c3,
                        std::int64_t depth) {
  __m256 acc0 = _mm256_loadu_ps(c0);
  __m256 acc1 = _mm256_loadu_ps(c1);
  __m256 acc2 = _mm256_loadu_ps(c2);
  __m256 acc3 = _mm256_loadu_ps(c3);
  for (std::int64_t e = 0; e < depth; ++e) {
    const __m256 bv = _mm256_loadu_ps(b + e * ldb);
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0[e]), bv));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1[e]), bv));
    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2[e]), bv));
    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3[e]), bv));
  }
  _mm256_storeu_ps(c0, acc0);
  _mm256_storeu_ps(c1, acc1);
  _mm256_storeu_ps(c2, acc2);
  _mm256_storeu_ps(c3, acc3);
}

inline void tile512_1xw(const float* ar, const float* b, std::int64_t ldb,
                        float* cr, std::int64_t depth, int vecs) {
  __m512 acc0 = _mm512_loadu_ps(cr);
  __m512 acc1 = vecs > 1 ? _mm512_loadu_ps(cr + 16) : _mm512_setzero_ps();
  for (std::int64_t e = 0; e < depth; ++e) {
    const float* br = b + e * ldb;
    const __m512 av = _mm512_set1_ps(ar[e]);
    acc0 = _mm512_add_ps(acc0, _mm512_mul_ps(av, _mm512_loadu_ps(br)));
    if (vecs > 1) {
      acc1 = _mm512_add_ps(acc1, _mm512_mul_ps(av, _mm512_loadu_ps(br + 16)));
    }
  }
  _mm512_storeu_ps(cr, acc0);
  if (vecs > 1) _mm512_storeu_ps(cr + 16, acc1);
}

inline void tile_cols_scalar(const float* a, std::int64_t lda, const float* b,
                             std::int64_t ldb, float* c, std::int64_t ldc,
                             std::int64_t rows, std::int64_t depth,
                             std::int64_t j_lo, std::int64_t j_hi) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    for (std::int64_t j = j_lo; j < j_hi; ++j) {
      float s = cr[j];
      for (std::int64_t e = 0; e < depth; ++e) s += ar[e] * b[e * ldb + j];
      cr[j] = s;
    }
  }
}

void sgemm_accumulate_ld_avx512(const float* a, std::int64_t lda,
                                const float* b, std::int64_t ldb, float* c,
                                std::int64_t ldc, std::int64_t rows,
                                std::int64_t depth, std::int64_t cols) {
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* a0 = a + (r + 0) * lda;
    const float* a1 = a + (r + 1) * lda;
    const float* a2 = a + (r + 2) * lda;
    const float* a3 = a + (r + 3) * lda;
    float* c0 = c + (r + 0) * ldc;
    float* c1 = c + (r + 1) * ldc;
    float* c2 = c + (r + 2) * ldc;
    float* c3 = c + (r + 3) * ldc;
    std::int64_t j = 0;
    for (; j + 32 <= cols; j += 32) {
      tile512_4x32(a0, a1, a2, a3, b + j, ldb, c0 + j, c1 + j, c2 + j, c3 + j,
                   depth);
    }
    for (; j + 16 <= cols; j += 16) {
      tile512_4x16(a0, a1, a2, a3, b + j, ldb, c0 + j, c1 + j, c2 + j, c3 + j,
                   depth);
    }
    for (; j + 8 <= cols; j += 8) {
      tile256_4x8(a0, a1, a2, a3, b + j, ldb, c0 + j, c1 + j, c2 + j, c3 + j,
                  depth);
    }
    if (j < cols) {
      tile_cols_scalar(a + r * lda, lda, b, ldb, c + r * ldc, ldc, 4, depth, j,
                       cols);
    }
  }
  for (; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t j = 0;
    for (; j + 32 <= cols; j += 32) {
      tile512_1xw(ar, b + j, ldb, cr + j, depth, 2);
    }
    for (; j + 16 <= cols; j += 16) {
      tile512_1xw(ar, b + j, ldb, cr + j, depth, 1);
    }
    if (j < cols) {
      tile_cols_scalar(ar, lda, b, ldb, cr, ldc, 1, depth, j, cols);
    }
  }
}

void sgemm_accumulate_avx512(const float* a, const float* b, float* c,
                             std::int64_t rows, std::int64_t k,
                             std::int64_t n) {
  // Same cache blocking as the scalar reference (k0 then ki ascending per
  // output element).
  constexpr std::int64_t kNB = 256;
  constexpr std::int64_t kKB = 128;
  for (std::int64_t n0 = 0; n0 < n; n0 += kNB) {
    const std::int64_t nw = std::min(kNB, n - n0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKB) {
      const std::int64_t kw = std::min(kKB, k - k0);
      sgemm_accumulate_ld_avx512(a + k0, k, b + k0 * n + n0, n, c + n0, n,
                                 rows, kw, nw);
    }
  }
}

inline __m512i a_pair512(std::int8_t lo, std::int8_t hi) {
  const std::uint32_t pair =
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
           static_cast<std::int16_t>(hi)))
       << 16) |
      static_cast<std::uint16_t>(static_cast<std::int16_t>(lo));
  return _mm512_set1_epi32(static_cast<int>(pair));
}

inline __m256i a_pair256(std::int8_t lo, std::int8_t hi) {
  const std::uint32_t pair =
      (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
           static_cast<std::int16_t>(hi)))
       << 16) |
      static_cast<std::uint16_t>(static_cast<std::int16_t>(lo));
  return _mm256_set1_epi32(static_cast<int>(pair));
}

void sgemm_i8_accumulate_ld_avx512(const std::int8_t* a, std::int64_t lda,
                                   const std::int8_t* b, std::int64_t ldb,
                                   float* c, std::int64_t ldc,
                                   std::int64_t rows, std::int64_t depth,
                                   std::int64_t cols,
                                   const float* a_row_scales, float b_scale) {
  // 32-column strips via vpmaddwd on interleaved int16 B-row pairs; the
  // per-128-bit-lane interleave scrambles column lanes, restored by two
  // vpermt2d shuffles after the exact int32 accumulation.
  const __m512i idx_q0 = _mm512_set_epi32(23, 22, 21, 20, 7, 6, 5, 4, 19, 18,
                                          17, 16, 3, 2, 1, 0);
  const __m512i idx_q1 = _mm512_set_epi32(31, 30, 29, 28, 15, 14, 13, 12, 27,
                                          26, 25, 24, 11, 10, 9, 8);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float s = a_row_scales[r] * b_scale;
    const std::int8_t* ar = a + r * lda;
    float* cr = c + r * ldc;
    std::int64_t j = 0;
    for (; j + 32 <= cols; j += 32) {
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      std::int64_t e = 0;
      for (; e + 2 <= depth; e += 2) {
        const __m512i b0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + e * ldb + j)));
        const __m512i b1 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + (e + 1) * ldb + j)));
        const __m512i ap = a_pair512(ar[e], ar[e + 1]);
        acc0 = _mm512_add_epi32(
            acc0, _mm512_madd_epi16(_mm512_unpacklo_epi16(b0, b1), ap));
        acc1 = _mm512_add_epi32(
            acc1, _mm512_madd_epi16(_mm512_unpackhi_epi16(b0, b1), ap));
      }
      if (e < depth) {
        const __m512i b0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + e * ldb + j)));
        const __m512i zero = _mm512_setzero_si512();
        const __m512i ap = a_pair512(ar[e], 0);
        acc0 = _mm512_add_epi32(
            acc0, _mm512_madd_epi16(_mm512_unpacklo_epi16(b0, zero), ap));
        acc1 = _mm512_add_epi32(
            acc1, _mm512_madd_epi16(_mm512_unpackhi_epi16(b0, zero), ap));
      }
      const __m512i q0 = _mm512_permutex2var_epi32(acc0, idx_q0, acc1);
      const __m512i q1 = _mm512_permutex2var_epi32(acc0, idx_q1, acc1);
      const __m512 vs = _mm512_set1_ps(s);
      _mm512_storeu_ps(
          cr + j, _mm512_add_ps(_mm512_loadu_ps(cr + j),
                                _mm512_mul_ps(vs, _mm512_cvtepi32_ps(q0))));
      _mm512_storeu_ps(
          cr + j + 16,
          _mm512_add_ps(_mm512_loadu_ps(cr + j + 16),
                        _mm512_mul_ps(vs, _mm512_cvtepi32_ps(q1))));
    }
    for (; j + 16 <= cols; j += 16) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      std::int64_t e = 0;
      for (; e + 2 <= depth; e += 2) {
        const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + e * ldb + j)));
        const __m256i b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + (e + 1) * ldb + j)));
        const __m256i ap = a_pair256(ar[e], ar[e + 1]);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_unpacklo_epi16(b0, b1), ap));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_unpackhi_epi16(b0, b1), ap));
      }
      if (e < depth) {
        const __m256i b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + e * ldb + j)));
        const __m256i zero = _mm256_setzero_si256();
        const __m256i ap = a_pair256(ar[e], 0);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_unpacklo_epi16(b0, zero), ap));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_unpackhi_epi16(b0, zero), ap));
      }
      const __m256i q0 = _mm256_permute2x128_si256(acc0, acc1, 0x20);
      const __m256i q1 = _mm256_permute2x128_si256(acc0, acc1, 0x31);
      const __m256 vs = _mm256_set1_ps(s);
      _mm256_storeu_ps(
          cr + j, _mm256_add_ps(_mm256_loadu_ps(cr + j),
                                _mm256_mul_ps(vs, _mm256_cvtepi32_ps(q0))));
      _mm256_storeu_ps(
          cr + j + 8,
          _mm256_add_ps(_mm256_loadu_ps(cr + j + 8),
                        _mm256_mul_ps(vs, _mm256_cvtepi32_ps(q1))));
    }
    for (; j < cols; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t e = 0; e < depth; ++e) {
        acc += static_cast<std::int32_t>(ar[e]) *
               static_cast<std::int32_t>(b[e * ldb + j]);
      }
      cr[j] += s * static_cast<float>(acc);
    }
  }
}

}  // namespace

void fill_avx512(KernelTable& table) {
  table.sgemm_accumulate = sgemm_accumulate_avx512;
  table.sgemm_accumulate_ld = sgemm_accumulate_ld_avx512;
  table.sgemm_i8_accumulate_ld = sgemm_i8_accumulate_ld_avx512;
}

}  // namespace stof::core::detail

#endif  // x86_64
