// Thread-local-style scratch arena for per-task kernel temporaries.
//
// The functional MHA kernels need a handful of small FP32 buffers per
// parallel_for task (softmax state, score tiles, converted panels).
// Allocating them as std::vectors inside the task body puts several heap
// round trips on the hot path of every task.  A ScratchArena is a bump
// allocator over a small set of heap blocks: the first task on a worker
// grows the blocks, every later task re-bumps over the same memory
// (reset() is two integer stores, no deallocation), so steady-state tasks
// perform zero heap allocations.
//
// Spans returned by alloc() stay valid until the next reset(): growth
// appends new blocks and never moves existing ones.  Arenas are not
// thread-safe; parallel_for_scratch (parallel_for.hpp) gives each worker
// chunk its own arena, which keeps the reuse accounting deterministic —
// the chunk partition is a pure function of (range, pool size), unlike
// the task-to-thread assignment.
//
// Every span alloc() returns starts on a 64-byte (cache-line) boundary:
// blocks are allocated with 64-byte-aligned operator new and the bump
// offset rounds up to a 16-float multiple between allocations.  The SIMD
// micro-kernels use unaligned loads, so this is a performance property
// (no panel straddles a cache line needlessly, no split-load penalty on
// the hot score/accumulator tiles), not a correctness requirement.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "stof/core/check.hpp"

namespace stof {

/// Bump allocator over stable heap blocks, reused across tasks via reset().
class ScratchArena {
 public:
  /// Alignment of every returned span (one x86 cache line, 16 floats).
  static constexpr std::size_t kAlignBytes = 64;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialized span of `n` floats, valid until the next reset(),
  /// starting on a kAlignBytes boundary.
  std::span<float> alloc(std::int64_t n) {
    STOF_EXPECTS(n >= 0, "scratch allocation size must be non-negative");
    const auto count = static_cast<std::size_t>(n);
    // Serve from the first block (at or after the active one) with room —
    // blocks never move, so previously returned spans stay valid.  The
    // offset only ever holds kAlignFloats multiples, so block starts being
    // kAlignBytes-aligned makes every returned pointer aligned too.
    while (active_ < blocks_.size()) {
      Block& blk = blocks_[active_];
      if (blk.capacity - offset_ >= count) {
        float* p = blk.data.get() + offset_;
        offset_ = align_up(offset_ + count);
        ++reuse_hits_;
        return {p, count};
      }
      ++active_;
      offset_ = 0;
    }
    // Grow: new blocks at least double the last so steady state is one
    // or two blocks regardless of the allocation sequence.
    const std::size_t last = blocks_.empty() ? 0 : blocks_.back().capacity;
    const std::size_t cap =
        align_up(std::max({count, 2 * last, kMinBlockFloats}));
    blocks_.push_back(make_block(cap));
    active_ = blocks_.size() - 1;
    offset_ = align_up(count);
    return {blocks_.back().data.get(), count};
  }

  /// Zero-filled span (alloc() memory may hold a previous task's data).
  std::span<float> alloc_zeroed(std::int64_t n) {
    auto s = alloc(n);
    std::fill(s.begin(), s.end(), 0.0f);
    return s;
  }

  /// Span filled with `value` (e.g. -inf for running softmax maxima).
  std::span<float> alloc_filled(std::int64_t n, float value) {
    auto s = alloc(n);
    std::fill(s.begin(), s.end(), value);
    return s;
  }

  /// Release every allocation (memory is retained for the next task).
  void reset() {
    active_ = 0;
    offset_ = 0;
  }

  /// Allocations served from already-owned memory (no heap growth).
  [[nodiscard]] std::int64_t reuse_hits() const { return reuse_hits_; }
  /// Total floats of backing capacity currently owned.
  [[nodiscard]] std::int64_t capacity() const {
    std::int64_t total = 0;
    for (const auto& b : blocks_) total += static_cast<std::int64_t>(b.capacity);
    return total;
  }

 private:
  static constexpr std::size_t kMinBlockFloats = 1024;
  static constexpr std::size_t kAlignFloats = kAlignBytes / sizeof(float);

  [[nodiscard]] static constexpr std::size_t align_up(std::size_t floats) {
    return (floats + kAlignFloats - 1) & ~(kAlignFloats - 1);
  }

  struct AlignedDelete {
    void operator()(float* p) const {
      ::operator delete[](p, std::align_val_t{kAlignBytes});
    }
  };

  struct Block {
    std::unique_ptr<float[], AlignedDelete> data;
    std::size_t capacity = 0;
  };

  [[nodiscard]] static Block make_block(std::size_t cap) {
    auto* p = static_cast<float*>(
        ::operator new[](cap * sizeof(float), std::align_val_t{kAlignBytes}));
    return Block{std::unique_ptr<float[], AlignedDelete>(p), cap};
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t offset_ = 0;
  std::int64_t reuse_hits_ = 0;
};

}  // namespace stof
