// OpenMP-style structured parallel loops over index ranges.
//
// parallel_for statically partitions [begin, end) into one contiguous chunk
// per worker — the deterministic schedule keeps simulated-kernel execution
// reproducible regardless of thread timing, because each index is always
// processed exactly once and results are written to disjoint locations.
#pragma once

#include <cstdint>
#include <exception>
#include <mutex>

#include "stof/parallel/scratch.hpp"
#include "stof/parallel/thread_pool.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof {

/// Apply `body(i)` for every i in [begin, end) using `pool`.
///
/// The body must write only to locations owned by index i (no reductions);
/// use parallel_reduce for combining.  Exceptions thrown by any body are
/// captured and the first one is rethrown on the calling thread.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, Body&& body,
                  ThreadPool& pool = ThreadPool::global()) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const std::int64_t workers =
      static_cast<std::int64_t>(pool.thread_count());
  if (workers <= 1 || n == 1) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::int64_t chunks = std::min(n, workers);
  const std::int64_t per = (n + chunks - 1) / chunks;

  std::mutex err_mutex;
  std::exception_ptr first_error;

  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    pool.submit([lo, hi, &body, &err_mutex, &first_error] {
      try {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::scoped_lock lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

/// parallel_for variant whose body receives a per-chunk ScratchArena:
/// `body(i, ScratchArena&)`.  The arena is reset before every body call and
/// its blocks are reused across all tasks of the chunk, so steady-state
/// tasks allocate nothing on the heap.  One arena per *chunk* (not per
/// thread) keeps the `exec.parallel.scratch_reuse_hits` telemetry counter
/// deterministic: the chunk partition depends only on (range, pool size),
/// never on which worker thread picks up which chunk.
template <typename Body>
void parallel_for_scratch(std::int64_t begin, std::int64_t end, Body&& body,
                          ThreadPool& pool = ThreadPool::global()) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const std::int64_t workers =
      static_cast<std::int64_t>(pool.thread_count());
  if (workers <= 1 || n == 1) {
    ScratchArena arena;
    for (std::int64_t i = begin; i < end; ++i) {
      arena.reset();
      body(i, arena);
    }
    telemetry::count("exec.parallel.scratch_reuse_hits", arena.reuse_hits());
    return;
  }

  const std::int64_t chunks = std::min(n, workers);
  const std::int64_t per = (n + chunks - 1) / chunks;

  std::mutex err_mutex;
  std::exception_ptr first_error;

  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    pool.submit([lo, hi, &body, &err_mutex, &first_error] {
      ScratchArena arena;
      try {
        for (std::int64_t i = lo; i < hi; ++i) {
          arena.reset();
          body(i, arena);
        }
      } catch (...) {
        std::scoped_lock lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      telemetry::count("exec.parallel.scratch_reuse_hits",
                       arena.reuse_hits());
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

/// Parallel reduction: combine per-chunk partials with `combine`.
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, T init, Body&& body,
                  Combine&& combine, ThreadPool& pool = ThreadPool::global()) {
  if (begin >= end) return init;
  const std::int64_t n = end - begin;
  const std::int64_t workers =
      static_cast<std::int64_t>(pool.thread_count());
  if (workers <= 1 || n == 1) {
    T acc = init;
    for (std::int64_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }

  const std::int64_t chunks = std::min(n, workers);
  const std::int64_t per = (n + chunks - 1) / chunks;
  std::vector<T> partials(static_cast<std::size_t>(chunks), init);

  std::mutex err_mutex;
  std::exception_ptr first_error;

  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    pool.submit([c, lo, hi, &body, &combine, &partials, init, &err_mutex,
                 &first_error] {
      try {
        T acc = init;
        for (std::int64_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
        partials[static_cast<std::size_t>(c)] = acc;
      } catch (...) {
        std::scoped_lock lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);

  T acc = init;
  for (const auto& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace stof
