// A small fixed-size thread pool.
//
// The simulated GPU executes thread blocks of a kernel launch on this pool
// (one task per block range), mirroring the way CUDA distributes blocks
// over SMs.  The pool follows structured-parallelism discipline: work is
// submitted as a batch and joined before the submitting call returns, so no
// kernel ever leaks tasks past its launch scope.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "stof/core/check.hpp"

namespace stof {

/// Fixed-size worker pool executing void() tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task.  Pair with wait_idle() to join the batch.
  void submit(std::function<void()> task) {
    {
      std::scoped_lock lock(mutex_);
      STOF_CHECK(!stopping_, "submit after shutdown");
      tasks_.push(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has completed.
  void wait_idle() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Process-wide pool shared by kernels that do not get an explicit one.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::scoped_lock lock(mutex_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
};

}  // namespace stof
