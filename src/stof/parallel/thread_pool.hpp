// A small fixed-size thread pool.
//
// The simulated GPU executes thread blocks of a kernel launch on this pool
// (one task per block range), mirroring the way CUDA distributes blocks
// over SMs.  The pool follows structured-parallelism discipline: work is
// submitted as a batch and joined before the submitting call returns, so no
// kernel ever leaks tasks past its launch scope.
//
// The serving runtime (stof::serve) keeps the global pool alive for the
// whole process, which makes the shutdown and exception paths load-bearing:
//   * a task that throws no longer terminates the process — the first
//     exception is captured and rethrown from the next wait_idle() (the
//     structured join point), and the outstanding-task accounting still
//     runs so wait_idle() can never hang on a failed task;
//   * shutdown() is an explicit, idempotent join usable before destruction;
//     queued tasks are drained first, and submit() after shutdown fails
//     with a checked error instead of racing the worker teardown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "stof/core/check.hpp"

namespace stof {

/// Fixed-size worker pool executing void() tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { shutdown(); }

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task.  Pair with wait_idle() to join the batch.
  void submit(std::function<void()> task) {
    {
      std::scoped_lock lock(mutex_);
      STOF_CHECK(!stopping_, "submit after shutdown");
      tasks_.push(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has completed.  If any task threw
  /// since the last join, the first captured exception is rethrown here.
  void wait_idle() {
    std::exception_ptr error;
    {
      std::unique_lock lock(mutex_);
      idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
      error = std::exchange(first_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }

  /// Drain queued tasks and join every worker.  Idempotent and safe to
  /// race with submit(): late submitters fail the stopping check instead
  /// of enqueueing into a dead pool.  Exceptions captured from tasks that
  /// were never joined via wait_idle() are dropped (the batch owner is
  /// gone).  The destructor calls this.
  void shutdown() {
    std::scoped_lock join_lock(join_mutex_);
    {
      std::scoped_lock lock(mutex_);
      if (stopping_ && joined_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    std::scoped_lock lock(mutex_);
    joined_ = true;
  }

  /// Process-wide pool shared by kernels that do not get an explicit one.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      try {
        task();
      } catch (...) {
        std::scoped_lock lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::scoped_lock lock(mutex_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::mutex join_mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t outstanding_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
  bool joined_ = false;
};

}  // namespace stof
