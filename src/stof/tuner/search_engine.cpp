#include "stof/tuner/search_engine.hpp"

#include <algorithm>
#include <vector>

#include "stof/fusion/templates.hpp"
#include "stof/parallel/parallel_for.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::tuner {
namespace {

using fusion::FusionScheme;
using fusion::Segment;
using fusion::TemplateKind;
using fusion::TemplateParams;
using models::ExecutionPlan;

// Phase timer names (Fig. 14 overhead breakdown).  Phases are accounted
// through a tuner-local telemetry::Registry that is *always* recording —
// the breakdown must exist regardless of the global toggle — and is merged
// into the global registry when telemetry is enabled, so exporters see the
// same numbers the TuningReport carries.
constexpr const char* kPhaseAnalysis = "wall.tuner.analysis_us";
constexpr const char* kPhaseConversion = "wall.tuner.conversion_us";
constexpr const char* kPhaseReward = "wall.tuner.reward_us";
constexpr const char* kPhaseTotal = "wall.tuner.total_us";

/// Fill report.breakdown from the phase registry's timers and publish the
/// run's phases + counters to the global registry when telemetry is on.
void finalize_report(TuningReport& report, const telemetry::Registry& phases) {
  report.breakdown.analysis_us = phases.timer(kPhaseAnalysis).total_us;
  report.breakdown.conversion_us = phases.timer(kPhaseConversion).total_us;
  report.breakdown.reward_us = phases.timer(kPhaseReward).total_us;
  report.breakdown.total_wall_us = phases.timer(kPhaseTotal).total_us;
  if (telemetry::enabled()) {
    phases.merge_into(telemetry::global_registry());
  }
}

/// Shared evaluation harness: simulates plans, caches results by scheme
/// hash + parameter keys, and accounts simulated tuning cost.
class Evaluator {
 public:
  Evaluator(const models::Executor& executor, const TuningOptions& options,
            TuningReport& report, telemetry::Registry& phases)
      : executor_(executor),
        options_(options),
        report_(report),
        phases_(phases) {}

  /// Simulated e2e time of `plan`; +inf for unsupported configurations.
  /// `changed_segment` >= 0 means this evaluation re-measures only that
  /// segment's kernel (the paper's tuners compare operator performance,
  /// not end-to-end inference, per candidate) — the measurement part of
  /// the tuning cost then covers just the affected kernel.
  double evaluate(const ExecutionPlan& plan,
                  std::int64_t changed_segment = -1) {
    const std::string key = plan_key(plan);
    if (options_.use_cache) {
      if (const auto it = cache_.find(key); it != cache_.end()) {
        ++report_.cache_hits;
        telemetry::count("sim.tuner.cache_hits");
        return it->second;
      }
    }
    return account(key, plan, changed_segment, executor_.simulate(plan));
  }

  /// Evaluate a batch of independent candidate plans.  The simulations of
  /// uncached plans run concurrently on the stof::parallel thread pool;
  /// cache lookups and cost accounting then replay serially in submission
  /// order, so results, cache state, and the tuning-cost ledger are
  /// bit-identical to calling evaluate() on each plan in sequence.
  std::vector<double> evaluate_batch(const std::vector<ExecutionPlan>& plans,
                                     std::int64_t changed_segment = -1) {
    std::vector<std::string> keys;
    keys.reserve(plans.size());
    for (const auto& plan : plans) keys.push_back(plan_key(plan));

    // Simulate each plan whose key is not yet cached, once per unique key.
    std::unordered_map<std::string, std::size_t> to_run;  // key -> plan idx
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (options_.use_cache && cache_.contains(keys[i])) continue;
      to_run.try_emplace(keys[i], i);
    }
    std::vector<std::size_t> run_idx;
    run_idx.reserve(to_run.size());
    for (const auto& [key, idx] : to_run) run_idx.push_back(idx);
    std::vector<models::ExecResult> results(run_idx.size());
    parallel_for(0, static_cast<std::int64_t>(run_idx.size()),
                 [&](std::int64_t i) {
                   results[static_cast<std::size_t>(i)] = executor_.simulate(
                       plans[run_idx[static_cast<std::size_t>(i)]]);
                 });
    std::unordered_map<std::string, models::ExecResult> simulated;
    for (std::size_t i = 0; i < run_idx.size(); ++i) {
      simulated.emplace(keys[run_idx[i]], results[i]);
    }

    std::vector<double> times;
    times.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (options_.use_cache) {
        if (const auto it = cache_.find(keys[i]); it != cache_.end()) {
          ++report_.cache_hits;
          telemetry::count("sim.tuner.cache_hits");
          times.push_back(it->second);
          continue;
        }
      }
      times.push_back(
          account(keys[i], plans[i], changed_segment, simulated.at(keys[i])));
    }
    return times;
  }

 private:
  /// Cache key of a plan: scheme hash + per-segment parameter keys.
  std::string plan_key(const ExecutionPlan& plan) {
    telemetry::ScopedTimer conv(&phases_, kPhaseConversion);
    std::string key = plan.scheme.to_hex();
    for (const auto& p : plan.segment_params) {
      key += '|';
      key += p.key();
    }
    return key;
  }

  /// Record one executed (uncached) evaluation: cache the result and charge
  /// the Table 4 tuning cost (compiles for unseen configurations plus
  /// `runs_per_eval` timed runs of the measured kernel).
  double account(const std::string& key, const ExecutionPlan& plan,
                 std::int64_t changed_segment, const models::ExecResult& r) {
    const double time_us = r.supported ? r.time_us : 1e300;
    cache_.emplace(key, time_us);
    ++report_.evaluations;
    telemetry::count("sim.tuner.evaluations");

    // Table 4 cost model: compile each unseen configuration, then run it.
    // An infeasible configuration fails compilation fast and is charged a
    // fraction of a successful compile.
    if (!r.supported) {
      report_.tuning_cost_s +=
          options_.failed_compile_fraction * options_.compile_seconds;
      return time_us;
    }
    const auto segs = plan.scheme.segments();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const auto kind = fusion::classify_segment(executor_.graph(), segs[i]);
      std::string cfg = fusion::to_string(kind) + ':';
      if (!plan.segment_params.empty()) cfg += plan.segment_params[i].key();
      if (compiled_.insert(std::move(cfg)).second) {
        report_.tuning_cost_s += options_.compile_seconds;
      }
    }
    double measured_us = time_us;
    if (changed_segment >= 0) {
      const auto seg = segs[static_cast<std::size_t>(changed_segment)];
      const auto kind = fusion::classify_segment(executor_.graph(), seg);
      if (kind != fusion::TemplateKind::kUnifiedMha) {
        const auto& p = plan.segment_params.empty()
                            ? TemplateParams{}
                            : plan.segment_params[static_cast<std::size_t>(
                                  changed_segment)];
        measured_us = measured_kernel_us(seg, kind, p);
      }
    }
    report_.tuning_cost_s += options_.runs_per_eval * measured_us * 1e-6;
    return time_us;
  }

  /// Memoized cost-model evaluation of one segment kernel.  The estimate is
  /// a pure function of (segment, kind, params) for a fixed graph/device,
  /// so repeated parameter samples hit the memo instead of re-walking the
  /// analytical cost model.
  double measured_kernel_us(const Segment& seg, TemplateKind kind,
                            const TemplateParams& p) {
    std::string key = std::to_string(seg.begin) + '-' +
                      std::to_string(seg.end) + ':' + p.key();
    if (const auto it = cost_memo_.find(key); it != cost_memo_.end()) {
      ++report_.cost_memo_hits;
      telemetry::count("sim.tuner.cost_memo_hits");
      return it->second;
    }
    const double us = gpusim::estimate_time_us(
        fusion::segment_cost(executor_.graph(), seg, kind, p,
                             executor_.device()),
        executor_.device());
    cost_memo_.emplace(std::move(key), us);
    return us;
  }

  const models::Executor& executor_;
  const TuningOptions& options_;
  TuningReport& report_;
  telemetry::Registry& phases_;
  std::unordered_map<std::string, double> cache_;
  std::unordered_map<std::string, double> cost_memo_;
  std::unordered_set<std::string> compiled_;
};

/// Materialize per-segment params from a begin-index keyed map.
std::vector<TemplateParams> materialize(
    const FusionScheme& scheme,
    const std::map<std::int64_t, TemplateParams>& by_begin) {
  std::vector<TemplateParams> out;
  for (const auto& seg : scheme.segments()) {
    const auto it = by_begin.find(seg.begin);
    out.push_back(it == by_begin.end() ? TemplateParams{} : it->second);
  }
  return out;
}

struct Move {
  FusionScheme scheme;
  std::int64_t changed_begin = 0;  ///< begin index of the affected segment
  int priority = 1;  ///< compete rule: lower value moves first
};

bool segment_is_mi_only(const graph::Graph& g, const Segment& seg) {
  for (std::int64_t i = seg.begin; i < seg.end; ++i) {
    const auto& n = g.node(i);
    if (graph::is_compute_intensive(n.kind) || graph::is_mha_op(n.kind) ||
        n.kind == graph::OpKind::kInput) {
      return false;
    }
  }
  return true;
}

std::int64_t segment_ci_count(const graph::Graph& g, const Segment& seg) {
  std::int64_t ci = 0;
  for (std::int64_t i = seg.begin; i < seg.end; ++i) {
    ci += graph::is_compute_intensive(g.node(i).kind) ? 1 : 0;
  }
  return ci;
}

/// Generate the expand/seize moves available at boundary `i` (between
/// segments[i] and segments[i+1]) of `scheme`, compete-ordered.
std::vector<Move> moves_at_boundary(const graph::Graph& g,
                                    const FusionScheme& scheme,
                                    std::size_t i) {
  std::vector<Move> moves;
  const auto segs = scheme.segments();
  STOF_EXPECTS(i + 1 < segs.size());
  const std::int64_t n = scheme.n_ops();
  const Segment& a = segs[i];
  const Segment& b = segs[i + 1];

  const auto try_add = [&](const Segment& left, const Segment& right,
                           std::int64_t changed_begin, int priority) {
    std::vector<Segment> cand;
    for (std::size_t k = 0; k < segs.size(); ++k) {
      if (k == i) {
        cand.push_back(left);
        if (right.size() > 0) cand.push_back(right);
      } else if (k != i + 1) {
        cand.push_back(segs[k]);
      }
    }
    FusionScheme s = FusionScheme::from_segments(cand, n);
    if (!s.valid_for(g)) return;
    moves.push_back({std::move(s), changed_begin, priority});
  };

  // expand: merge the two segments wholesale.
  try_add({a.begin, b.end}, {0, 0}, a.begin, 1);

  // seize: a CI-bearing segment takes one op from an MI-only neighbour;
  // compete: the segment with exactly one CI operator extends first.
  const std::int64_t ci_a = segment_ci_count(g, a);
  const std::int64_t ci_b = segment_ci_count(g, b);
  if (ci_a >= 1 && segment_is_mi_only(g, b) && b.size() > 1) {
    try_add({a.begin, a.end + 1}, {b.begin + 1, b.end}, a.begin,
            ci_a == 1 ? 0 : 1);
  }
  if (ci_b >= 1 && segment_is_mi_only(g, a) && a.size() > 1) {
    try_add({a.begin, a.end - 1}, {a.end - 1, b.end}, a.end - 1,
            ci_b == 1 ? 0 : 1);
  }

  std::stable_sort(moves.begin(), moves.end(),
                   [](const Move& x, const Move& y) {
                     return x.priority < y.priority;
                   });
  return moves;
}

}  // namespace

SearchEngine::SearchEngine(const models::Executor& executor,
                           TuningOptions options)
    : executor_(executor), options_(options) {}

TuningReport SearchEngine::tune(std::optional<models::ExecutionPlan> initial) {
  TuningReport report;
  telemetry::Registry phases;
  {
  telemetry::ScopedTimer total_timer(&phases, kPhaseTotal);
  Evaluator eval(executor_, options_, report, phases);
  Rng rng(options_.seed);
  const auto& g = executor_.graph();

  // ---- Initialization (analysis model) -------------------------------------
  // The rule-based scheme is the primary start; when the engine chooses its
  // own starts it additionally probes the conservative MHA-fused detached
  // layout — the grow-only expansion cannot undo a bad seed, so a second
  // start point guards against rule-seeded local optima.  Both runs share
  // the evaluation cache, so the extra cost is small.
  std::vector<ExecutionPlan> starts;
  {
    telemetry::ScopedTimer analysis(&phases, kPhaseAnalysis);
    if (initial.has_value()) {
      starts.push_back(*initial);
    } else {
      starts.push_back(baselines::stof_initial_plan(g, &executor_.device()));
      starts.push_back(baselines::mha_fused_detached_plan(g));
    }
  }

  ExecutionPlan best_plan;
  double best_time = 1e300;
  for (auto& start : starts) {
  ExecutionPlan current = start;
  current.segment_params.clear();
  std::map<std::int64_t, TemplateParams> params_by_begin;

  current.segment_params = materialize(current.scheme, params_by_begin);
  double current_time = eval.evaluate(current);
  ++report.schemes_explored;
  telemetry::count("sim.tuner.schemes_explored");

  // ---- Stage 1: fusion expansion with feedback and rollback ----------------
  // Greedy depth-first boundary sweep: at each segment boundary the engine
  // tries the compete-ordered expand/seize moves; an improving move is
  // adopted and the same boundary is revisited (deeper expansion), a
  // non-improving move rolls back.  Sweeps repeat until a fixed point.
  constexpr int kMaxSweeps = 4;
  const int stage1_eval_cap = report.evaluations + options_.stage1_max_evals;
  for (int sweep = 0;
       sweep < kMaxSweeps && report.evaluations < stage1_eval_cap; ++sweep) {
    bool improved = false;
    std::size_t boundary = 0;
    while (boundary + 1 < current.scheme.segments().size() &&
           report.evaluations < stage1_eval_cap) {
      bool adopted = false;
      for (auto& move : moves_at_boundary(g, current.scheme, boundary)) {
        ++report.schemes_explored;
        telemetry::count("sim.tuner.schemes_explored");
        // Sample a few parameter settings for the changed segment; keep
        // the best (the paper samples a fixed number pre/post fusion).
        // The per-scheme RNG seed makes revisits reproduce the same
        // samples, so the evaluation cache absorbs them.
        Rng move_rng(options_.seed ^
                     std::hash<std::string>{}(move.scheme.to_hex()));
        const auto segs = move.scheme.segments();
        std::size_t changed = 0;
        for (std::size_t k = 0; k < segs.size(); ++k) {
          if (segs[k].begin == move.changed_begin) changed = k;
        }
        const auto kind = fusion::classify_segment(g, segs[changed]);
        const auto space = fusion::template_param_space(kind);

        // Draw the sample set first (same RNG sequence as sequential
        // sampling), then score all candidates as one parallel batch.
        std::vector<TemplateParams> sampled;
        std::vector<ExecutionPlan> cands;
        for (int t = 0; t <= options_.samples_per_candidate; ++t) {
          TemplateParams p;  // t == 0 probes the default setting
          if (t > 0) p = space[move_rng.next_below(space.size())];
          ExecutionPlan cand;
          cand.scheme = move.scheme;
          auto by_begin = params_by_begin;
          by_begin[move.changed_begin] = p;
          cand.segment_params = materialize(cand.scheme, by_begin);
          sampled.push_back(p);
          cands.push_back(std::move(cand));
        }
        const auto times =
            eval.evaluate_batch(cands, static_cast<std::int64_t>(changed));

        double best_time = 1e300;
        TemplateParams best_params;
        for (std::size_t t = 0; t < times.size(); ++t) {
          if (times[t] < best_time) {
            best_time = times[t];
            best_params = sampled[t];
          }
        }

        if (best_time < current_time) {
          current.scheme = move.scheme;
          params_by_begin[move.changed_begin] = best_params;
          current.segment_params =
              materialize(current.scheme, params_by_begin);
          current_time = best_time;
          improved = true;
          adopted = true;
          break;  // depth-first: revisit the same boundary after adoption
        }
        // else: roll back (nothing was committed).
      }
      if (!adopted) ++boundary;
    }
    if (!improved) break;
  }

  // ---- Stage 2: reward-based parameter sampling -----------------------------
  const auto segs = current.scheme.segments();
  std::vector<int> allocation(segs.size(), 0);
  std::int64_t rewarded = -1;
  for (int iter = 0; iter < options_.stage2_iterations; ++iter) {
    {
      telemetry::ScopedTimer reward(&phases, kPhaseReward);
      const int base =
          std::max(1, options_.stage2_budget / static_cast<int>(segs.size()));
      for (std::size_t k = 0; k < segs.size(); ++k) {
        allocation[k] = base;
        if (static_cast<std::int64_t>(k) == rewarded) {
          allocation[k] += options_.reward_bonus;
        }
      }
    }

    double best_gain = 0;
    std::int64_t best_segment = -1;
    for (std::size_t k = 0; k < segs.size(); ++k) {
      const auto kind = fusion::classify_segment(g, segs[k]);
      if (kind == TemplateKind::kUnifiedMha) continue;  // analytical model
      const auto space = fusion::template_param_space(kind);
      // Candidates within a segment differ from the incumbent plan only in
      // slot k, so they are mutually independent: draw the whole budget,
      // evaluate as one parallel batch, then adopt serially in draw order
      // (identical results to sampling one at a time).
      std::vector<TemplateParams> drawn;
      std::vector<ExecutionPlan> cands;
      for (int t = 0; t < allocation[k]; ++t) {
        const TemplateParams p = space[rng.next_below(space.size())];
        ExecutionPlan cand = current;
        cand.segment_params[k] = p;
        drawn.push_back(p);
        cands.push_back(std::move(cand));
      }
      const auto times =
          eval.evaluate_batch(cands, static_cast<std::int64_t>(k));
      for (std::size_t t = 0; t < times.size(); ++t) {
        if (times[t] < current_time) {
          const double gain = current_time - times[t];
          current = cands[t];
          params_by_begin[segs[k].begin] = drawn[t];
          current_time = times[t];
          if (gain > best_gain) {
            best_gain = gain;
            best_segment = static_cast<std::int64_t>(k);
          }
        }
      }
    }
    {
      telemetry::ScopedTimer reward(&phases, kPhaseReward);
      rewarded = best_segment;
    }
  }

  if (current_time < best_time) {
    best_time = current_time;
    best_plan = current;
  }
  }  // for each start

  report.best_plan = best_plan;
  report.best_time_us = best_time;
  }  // total_timer scope
  finalize_report(report, phases);
  return report;
}

namespace {

/// Shared scaffolding of the per-segment enumeration tuners.
TuningReport enumerate_tuner(const models::Executor& executor,
                             const TuningOptions& options,
                             baselines::Method method,
                             bool prune_rules) {
  TuningReport report;
  telemetry::Registry phases;
  {
  telemetry::ScopedTimer total_timer(&phases, kPhaseTotal);
  Evaluator eval(executor, options, report, phases);
  const auto& g = executor.graph();

  ExecutionPlan current = baselines::e2e_plan(method, g);

  // Seed every segment with a feasible setting: the default tiling may not
  // launch (e.g. a LayerNorm-epilogue row buffer exceeding SMEM), and the
  // per-segment enumeration below could never repair several broken
  // segments at once.  A segment with *no* feasible instantiation falls
  // back to unfused single operators, as the real backends do.
  const auto seg_feasible = [&](const Segment& seg, TemplateKind kind,
                                const TemplateParams& p) {
    const auto c = fusion::segment_cost(g, seg, kind, p, executor.device());
    return c.occupancy > 0 || c.launches == 0;
  };
  {
    telemetry::ScopedTimer analysis(&phases, kPhaseAnalysis);
    std::vector<Segment> reworked;
    std::vector<TemplateParams> seeded;
    for (const auto& seg : current.scheme.segments()) {
      const auto kind = fusion::classify_segment(g, seg);
      if (kind == TemplateKind::kUnifiedMha) {
        reworked.push_back(seg);
        seeded.emplace_back();
        continue;
      }
      TemplateParams chosen;
      bool found = seg_feasible(seg, kind, chosen);
      if (!found) {
        for (const auto& p : fusion::template_param_space(kind)) {
          if (seg_feasible(seg, kind, p)) {
            chosen = p;
            found = true;
            break;
          }
        }
      }
      if (found) {
        reworked.push_back(seg);
        seeded.push_back(chosen);
        continue;
      }
      // No instantiation fits: split into unfused single operators.
      for (std::int64_t i = seg.begin; i < seg.end; ++i) {
        reworked.push_back({i, i + 1});
        seeded.emplace_back();
      }
    }
    current.scheme = FusionScheme::from_segments(
        reworked, static_cast<std::int64_t>(g.size()));
    current.segment_params = std::move(seeded);
  }
  const auto segs = current.scheme.segments();

  double current_time = eval.evaluate(current);
  ++report.schemes_explored;
  telemetry::count("sim.tuner.schemes_explored");

  // Transformer layers repeat, so both tuners enumerate one representative
  // per unique segment shape and broadcast its best setting to the clones.
  std::unordered_map<std::string, TemplateParams> best_by_shape;
  const auto shape_of = [&g](const Segment& seg, TemplateKind kind) {
    std::string sig = fusion::to_string(kind);
    for (std::int64_t i = seg.begin; i < seg.end; ++i) {
      const auto& n = g.node(i);
      sig += ';' + std::to_string(static_cast<int>(n.kind)) + ',' +
             std::to_string(n.rows) + ',' + std::to_string(n.cols) + ',' +
             std::to_string(n.inner);
    }
    return sig;
  };

  for (std::size_t k = 0; k < segs.size(); ++k) {
    const auto kind = fusion::classify_segment(g, segs[k]);
    if (kind == TemplateKind::kUnifiedMha) continue;
    const std::string sig = shape_of(segs[k], kind);
    if (const auto it = best_by_shape.find(sig); it != best_by_shape.end()) {
      ExecutionPlan cand = current;
      cand.segment_params[k] = it->second;
      const double t_us = eval.evaluate(cand, static_cast<std::int64_t>(k));
      if (t_us < current_time) {
        current = cand;
        current_time = t_us;
      }
      continue;
    }
    auto space = fusion::template_param_space(kind);
    if (prune_rules) {
      // MCFuser's rule pruning: drop deep pipelines and tiny K tiles.
      std::erase_if(space, [](const TemplateParams& p) {
        return p.gemm.num_stages > 3 || p.gemm.block_k < 32;
      });
    }
    // The enumeration only ever rewrites slot k, so the whole space scores
    // as one parallel batch; adoption replays serially in space order.
    std::vector<ExecutionPlan> cands;
    cands.reserve(space.size());
    for (const auto& p : space) {
      ExecutionPlan cand = current;
      cand.segment_params[k] = p;
      cands.push_back(std::move(cand));
    }
    const auto times = eval.evaluate_batch(cands, static_cast<std::int64_t>(k));
    TemplateParams best_params;
    for (std::size_t t = 0; t < times.size(); ++t) {
      if (times[t] < current_time) {
        current = cands[t];
        current_time = times[t];
        best_params = space[t];
      }
    }
    best_by_shape.emplace(sig, best_params);
  }

  report.best_plan = current;
  report.best_time_us = current_time;
  }  // total_timer scope
  finalize_report(report, phases);
  return report;
}

}  // namespace

TuningReport tune_mcfuser(const models::Executor& executor,
                          TuningOptions options) {
  return enumerate_tuner(executor, options, baselines::Method::kMcfuser,
                         /*prune_rules=*/true);
}

TuningReport tune_bolt(const models::Executor& executor,
                       TuningOptions options) {
  options.failed_compile_fraction = 1.0;  // CUTLASS fails at launch time
  return enumerate_tuner(executor, options, baselines::Method::kBolt,
                         /*prune_rules=*/false);
}

}  // namespace stof::tuner
