// Two-stage hierarchical search engine (paper §4.4, Fig. 9).
//
// Stage 1 — fusion expansion.  Starting from the rule-based initial scheme,
// the engine generates boundary moves:
//   * expand  — merge two adjacent segments,
//   * seize   — a segment containing a CI operator takes one operator from
//               an adjacent MI-only segment,
//   * compete — when two segments could take the same operator, the one
//               with exactly one CI operator moves first (move ordering).
// Each candidate is scored by simulated end-to-end time over a few sampled
// parameter settings; improving moves are kept, others rolled back, and
// every (scheme, parameters) evaluation is cached by its hash code so the
// same attempt never executes twice.
//
// Stage 2 — reward-based parameter sampling.  On the frozen scheme, every
// iteration spends a fixed budget of parameter samples across segments; the
// segment that produced the largest gain is rewarded with extra samples in
// the next iteration.
//
// Tuning cost (Table 4) is accounted per *executed* evaluation: one
// simulated Triton compilation for each previously unseen template
// configuration plus `runs_per_eval` timed inferences.  Cache hits cost
// nothing — the mechanism the paper credits for STOF's tuning speed.
//
// Execution: independent candidate batches (stage-1 samples per move,
// stage-2 samples per segment, baseline-tuner enumerations) simulate
// concurrently on the stof::parallel thread pool, with cache lookups and
// cost accounting replayed serially in draw order — results are
// bit-identical to fully sequential evaluation.  Per-segment analytical
// kernel-cost estimates are additionally memoized (`cost_memo_hits`).
#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "stof/baselines/e2e_plans.hpp"
#include "stof/core/rng.hpp"
#include "stof/models/executor.hpp"

namespace stof::tuner {

struct TuningOptions {
  int samples_per_candidate = 3;  ///< stage-1 params sampled per move
  int stage2_iterations = 4;
  int stage2_budget = 16;         ///< parameter samples per iteration
  int reward_bonus = 2;           ///< extra samples for the winning segment
  std::uint64_t seed = 42;

  int stage1_max_evals = 120;     ///< fixed stage-1 search budget
  bool use_cache = true;          ///< ablation: disable the result cache

  // Tuning-cost model (Table 4).
  double compile_seconds = 0.4;   ///< per previously-unseen configuration
  int runs_per_eval = 100;        ///< the paper measures 100 runs
  /// Cost fraction of a failed (infeasible) configuration: Triton rejects
  /// over-allocated kernels fast (0.25); CUTLASS instantiations compile
  /// fully and only fail at launch (1.0, used by the Bolt tuner).
  double failed_compile_fraction = 0.25;
};

/// Host-side overhead breakdown (Fig. 14), all wall-clock.  Sourced from
/// the telemetry phase timers (`wall.tuner.*`): the tuner records phases
/// into a run-local telemetry::Registry and copies the totals here, so the
/// same numbers are available from the global registry / JSON export when
/// telemetry is enabled.
struct PhaseBreakdown {
  double analysis_us = 0;    ///< rule-based init + analytical modeling
  double conversion_us = 0;  ///< scheme hash encoding/decoding + mapping
  double reward_us = 0;      ///< reward-allocation bookkeeping
  double total_wall_us = 0;  ///< entire tuning run
};

struct TuningReport {
  models::ExecutionPlan best_plan;
  double best_time_us = 0;
  int schemes_explored = 0;
  int evaluations = 0;  ///< executed (uncached) evaluations
  int cache_hits = 0;
  int cost_memo_hits = 0;  ///< memoized kernel cost-model evaluations
  double tuning_cost_s = 0;  ///< simulated tuning time (Table 4)
  PhaseBreakdown breakdown;
};

/// STOF's search engine over one executor (model x config x device).
class SearchEngine {
 public:
  explicit SearchEngine(const models::Executor& executor,
                        TuningOptions options = {});

  /// Run both stages and return the tuned plan with cost accounting.
  /// `initial` overrides the rule-based initial scheme (used by the
  /// fusion-only ablation, which starts from the detached-MHA layout).
  TuningReport tune(std::optional<models::ExecutionPlan> initial = {});

 private:
  const models::Executor& executor_;
  TuningOptions options_;
};

/// MCFuser-style tuner: loop-space enumeration with rule pruning per CI
/// segment, analytical ranking, no cross-candidate cache (Table 1 row).
TuningReport tune_mcfuser(const models::Executor& executor,
                          TuningOptions options = {});

/// Bolt-style tuner: exhaustive template-parameter enumeration per
/// segment, no cache (Table 1 row).
TuningReport tune_bolt(const models::Executor& executor,
                       TuningOptions options = {});

}  // namespace stof::tuner
