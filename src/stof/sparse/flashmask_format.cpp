#include "stof/sparse/flashmask_format.hpp"

namespace stof::sparse {
namespace {

// Masked-out rows of column j restricted to [range_lo, range_hi) must form
// one contiguous run; returns {start, end} of that run ({0,0} if none) or
// nullopt-like {-1,-1} when the column is not representable.
struct Run {
  std::int32_t start = 0;
  std::int32_t end = 0;
  bool ok = true;
};

Run masked_run(const masks::Mask& m, std::int64_t j, std::int64_t lo,
               std::int64_t hi) {
  Run run;
  std::int64_t first = -1, last = -1;
  std::int64_t count = 0;
  for (std::int64_t i = lo; i < hi; ++i) {
    if (!m.at(i, j)) {
      if (first < 0) first = i;
      last = i;
      ++count;
    }
  }
  if (count == 0) return run;
  if (last - first + 1 != count) {
    run.ok = false;
    return run;
  }
  run.start = static_cast<std::int32_t>(first);
  run.end = static_cast<std::int32_t>(last + 1);
  return run;
}

}  // namespace

bool FlashmaskFormat::representable(const masks::Mask& mask) {
  const std::int64_t n = mask.seq_len();
  for (std::int64_t j = 0; j < n; ++j) {
    if (!masked_run(mask, j, j, n).ok) return false;      // lower triangle
    if (!masked_run(mask, j, 0, j).ok) return false;      // upper triangle
  }
  return true;
}

FlashmaskFormat FlashmaskFormat::build(const masks::Mask& mask) {
  STOF_EXPECTS(representable(mask),
               "mask has discrete column runs; FlashMask cannot express it");
  FlashmaskFormat out;
  const std::int64_t n = mask.seq_len();
  out.seq_len_ = n;
  out.lt_start_.resize(static_cast<std::size_t>(n));
  out.lt_end_.resize(static_cast<std::size_t>(n));
  out.ut_start_.resize(static_cast<std::size_t>(n));
  out.ut_end_.resize(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    const Run lt = masked_run(mask, j, j, n);
    const Run ut = masked_run(mask, j, 0, j);
    out.lt_start_[static_cast<std::size_t>(j)] = lt.start;
    out.lt_end_[static_cast<std::size_t>(j)] = lt.end;
    out.ut_start_[static_cast<std::size_t>(j)] = ut.start;
    out.ut_end_[static_cast<std::size_t>(j)] = ut.end;
  }
  return out;
}

masks::Mask FlashmaskFormat::to_dense() const {
  masks::Mask m(seq_len_);
  for (std::int64_t j = 0; j < seq_len_; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    for (std::int64_t i = 0; i < seq_len_; ++i) {
      const bool in_lt = i >= lt_start_[sj] && i < lt_end_[sj];
      const bool in_ut = i >= ut_start_[sj] && i < ut_end_[sj];
      if (!in_lt && !in_ut) m.set(i, j);
    }
  }
  return m;
}

}  // namespace stof::sparse
