#include "stof/sparse/bsr_mask.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace stof::sparse {

BsrMask BsrMask::build(const masks::Mask& mask, std::int64_t block_m,
                       std::int64_t block_n) {
  STOF_EXPECTS(block_m > 0 && block_n > 0);
  BsrMask out;
  out.seq_len_ = mask.seq_len();
  out.block_m_ = block_m;
  out.block_n_ = block_n;

  const std::int64_t brows = out.rows();
  const std::int64_t bcols = out.cols();
  out.full_row_ptr_.assign(static_cast<std::size_t>(brows) + 1, 0);
  out.part_row_ptr_.assign(static_cast<std::size_t>(brows) + 1, 0);
  out.load_row_ptr_.assign(static_cast<std::size_t>(brows) + 1, 0);

  // Dedup map: block bitmap bytes -> id in part_masks_.
  std::unordered_map<std::string, std::int32_t> bitmap_ids;

  std::vector<std::uint8_t> bitmap(
      static_cast<std::size_t>(block_m * block_n));

  for (std::int64_t bi = 0; bi < brows; ++bi) {
    for (std::int64_t bj = 0; bj < bcols; ++bj) {
      // Extract the block; out-of-range elements are invalid (edge blocks).
      std::int64_t valid = 0;
      std::int64_t in_range = 0;
      for (std::int64_t r = 0; r < block_m; ++r) {
        for (std::int64_t c = 0; c < block_n; ++c) {
          const std::int64_t i = bi * block_m + r;
          const std::int64_t j = bj * block_n + c;
          std::uint8_t v = 0;
          if (i < out.seq_len_ && j < out.seq_len_) {
            ++in_range;
            v = mask.at(i, j) ? 1 : 0;
          }
          bitmap[static_cast<std::size_t>(r * block_n + c)] = v;
          valid += v;
        }
      }
      if (valid == 0) continue;  // empty block: skipped entirely

      out.load_col_idx_.push_back(static_cast<std::int32_t>(bj));
      ++out.load_row_ptr_[static_cast<std::size_t>(bi) + 1];

      if (valid == in_range) {  // full block: dense compute, no mask load
        out.full_col_idx_.push_back(static_cast<std::int32_t>(bj));
        ++out.full_row_ptr_[static_cast<std::size_t>(bi) + 1];
        continue;
      }

      // Part block: deduplicate the bitmap and record its id.
      const std::string key(reinterpret_cast<const char*>(bitmap.data()),
                            bitmap.size());
      auto [it, inserted] = bitmap_ids.try_emplace(
          key, static_cast<std::int32_t>(out.part_masks_.size()));
      if (inserted) out.part_masks_.push_back(bitmap);
      out.part_col_idx_.push_back(static_cast<std::int32_t>(bj));
      out.part_mask_id_.push_back(it->second);
      ++out.part_row_ptr_[static_cast<std::size_t>(bi) + 1];
    }
  }

  // Prefix-sum the per-row counts into CSR row pointers.
  for (std::size_t i = 1; i < out.full_row_ptr_.size(); ++i) {
    out.full_row_ptr_[i] += out.full_row_ptr_[i - 1];
    out.part_row_ptr_[i] += out.part_row_ptr_[i - 1];
    out.load_row_ptr_[i] += out.load_row_ptr_[i - 1];
  }

  STOF_ENSURES(out.load_row_ptr_.back() ==
               static_cast<std::int64_t>(out.load_col_idx_.size()));
  return out;
}

BlockKind BsrMask::block_kind(std::int64_t bi, std::int64_t bj) const {
  STOF_EXPECTS(bi >= 0 && bi < rows() && bj >= 0 && bj < cols());
  const auto in_row = [bj](const std::vector<std::int64_t>& ptr,
                           const std::vector<std::int32_t>& idx,
                           std::int64_t row) {
    const auto first = idx.begin() + ptr[static_cast<std::size_t>(row)];
    const auto last = idx.begin() + ptr[static_cast<std::size_t>(row) + 1];
    return std::binary_search(first, last, static_cast<std::int32_t>(bj));
  };
  if (in_row(full_row_ptr_, full_col_idx_, bi)) return BlockKind::kFull;
  if (in_row(part_row_ptr_, part_col_idx_, bi)) return BlockKind::kPart;
  return BlockKind::kEmpty;
}

const std::vector<std::uint8_t>& BsrMask::part_bitmap(std::int64_t bi,
                                                      std::int64_t bj) const {
  STOF_EXPECTS(bi >= 0 && bi < rows());
  const auto first =
      part_col_idx_.begin() + part_row_ptr_[static_cast<std::size_t>(bi)];
  const auto last =
      part_col_idx_.begin() + part_row_ptr_[static_cast<std::size_t>(bi) + 1];
  const auto it = std::lower_bound(first, last, static_cast<std::int32_t>(bj));
  STOF_EXPECTS(it != last && *it == bj, "block is not a part block");
  const auto pos = static_cast<std::size_t>(it - part_col_idx_.begin());
  return part_masks_[static_cast<std::size_t>(part_mask_id_[pos])];
}

std::size_t BsrMask::storage_bytes() const {
  std::size_t bytes = 0;
  bytes += (full_row_ptr_.size() + part_row_ptr_.size() +
            load_row_ptr_.size()) *
           sizeof(std::int64_t);
  bytes += (full_col_idx_.size() + part_col_idx_.size() +
            part_mask_id_.size() + load_col_idx_.size()) *
           sizeof(std::int32_t);
  for (const auto& m : part_masks_) bytes += m.size();
  return bytes;
}

masks::Mask BsrMask::to_dense() const {
  masks::Mask m(seq_len_);
  for (std::int64_t bi = 0; bi < rows(); ++bi) {
    // Full blocks.
    for (std::int64_t k = full_row_ptr_[static_cast<std::size_t>(bi)];
         k < full_row_ptr_[static_cast<std::size_t>(bi) + 1]; ++k) {
      const std::int64_t bj = full_col_idx_[static_cast<std::size_t>(k)];
      for (std::int64_t r = 0; r < block_m_; ++r) {
        for (std::int64_t c = 0; c < block_n_; ++c) {
          const std::int64_t i = bi * block_m_ + r;
          const std::int64_t j = bj * block_n_ + c;
          if (i < seq_len_ && j < seq_len_) m.set(i, j);
        }
      }
    }
    // Part blocks.
    for (std::int64_t k = part_row_ptr_[static_cast<std::size_t>(bi)];
         k < part_row_ptr_[static_cast<std::size_t>(bi) + 1]; ++k) {
      const std::int64_t bj = part_col_idx_[static_cast<std::size_t>(k)];
      const auto& bm =
          part_masks_[static_cast<std::size_t>(
              part_mask_id_[static_cast<std::size_t>(k)])];
      for (std::int64_t r = 0; r < block_m_; ++r) {
        for (std::int64_t c = 0; c < block_n_; ++c) {
          const std::int64_t i = bi * block_m_ + r;
          const std::int64_t j = bj * block_n_ + c;
          if (i < seq_len_ && j < seq_len_ &&
              bm[static_cast<std::size_t>(r * block_n_ + c)]) {
            m.set(i, j);
          }
        }
      }
    }
  }
  return m;
}

}  // namespace stof::sparse
