// Build-on-demand cache of BSR representations of one mask.
//
// Benches and baselines evaluate many methods against the same mask, each
// at its own block granularity; building a 4096^2 BSR is the dominant cost
// of planning, so it is shared through this cache.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "stof/masks/mask.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::sparse {

class BsrCache {
 public:
  explicit BsrCache(masks::Mask mask) : mask_(std::move(mask)) {}

  [[nodiscard]] const masks::Mask& mask() const { return mask_; }

  /// BSR of the mask at (block_m x block_n); built on first request.
  const BsrMask& at(int block_m, int block_n) {
    const auto key = std::make_pair(block_m, block_n);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      telemetry::count("sim.sparse.bsr_cache_misses");
      it = cache_
               .emplace(key, std::make_unique<BsrMask>(
                                 BsrMask::build(mask_, block_m, block_n)))
               .first;
    } else {
      telemetry::count("sim.sparse.bsr_cache_hits");
    }
    return *it->second;
  }

  [[nodiscard]] std::size_t built_count() const { return cache_.size(); }

 private:
  masks::Mask mask_;
  std::map<std::pair<int, int>, std::unique_ptr<BsrMask>> cache_;
};

}  // namespace stof::sparse
