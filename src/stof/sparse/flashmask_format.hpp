// FlashMask's column-wise mask representation (baseline, paper §3.1).
//
// FlashMask [56] describes a mask by four per-column arrays — the start and
// end rows of a skipped region below the diagonal (LTStart/LTEnd) and above
// it (UTStart/UTEnd).  This is compact and kernel-friendly, but it can only
// express masks whose *masked-out* rows form at most one contiguous run in
// each triangle of every column.  Discrete distributions (dilated holes,
// BigBird's random blocks) are NOT representable — exactly the limitation
// the paper's motivation section exercises, so `representable()` is part of
// the public API and is tested against every pattern family.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/masks/mask.hpp"

namespace stof::sparse {

/// Column-wise two-span mask representation, as in FlashMask.
class FlashmaskFormat {
 public:
  /// True when every column's masked-out rows form at most one contiguous
  /// run at or below the diagonal and one strictly above it.
  static bool representable(const masks::Mask& mask);

  /// Build the representation. Precondition: representable(mask).
  static FlashmaskFormat build(const masks::Mask& mask);

  [[nodiscard]] std::int64_t seq_len() const { return seq_len_; }

  // Per-column skipped regions, [start, end) row ranges.
  [[nodiscard]] const std::vector<std::int32_t>& lt_start() const {
    return lt_start_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& lt_end() const {
    return lt_end_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& ut_start() const {
    return ut_start_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& ut_end() const {
    return ut_end_;
  }

  [[nodiscard]] std::size_t storage_bytes() const {
    return 4 * static_cast<std::size_t>(seq_len_) * sizeof(std::int32_t);
  }

  [[nodiscard]] masks::Mask to_dense() const;

 private:
  std::int64_t seq_len_ = 0;
  std::vector<std::int32_t> lt_start_, lt_end_;  // skipped rows, r >= col
  std::vector<std::int32_t> ut_start_, ut_end_;  // skipped rows, r <  col
};

}  // namespace stof::sparse
