// Block compressed sparse row (BSR) mask storage — the paper's Fig. 6.
//
// The dense mask is tiled into (BLOCK_M x BLOCK_N) blocks and each block is
// classified:
//   * full  — every element valid: the kernel computes the block densely and
//             never touches mask data;
//   * part  — mixed: the kernel loads a block bitmap and applies it after
//             the score GEMM;
//   * empty — skipped entirely: neither K/V sub-blocks nor scores are
//             loaded or computed.
//
// Full and part blocks are stored in two CSR-like structures
// (full_row_ptr/full_col_idx and part_row_ptr/part_col_idx).  Identical
// part bitmaps are deduplicated: part_mask_id points every part entry at
// one of the unique bitmaps in part_masks, which the kernel broadcasts —
// sliding-window masks, for example, repeat two or three distinct edge
// bitmaps thousands of times.  load_row_ptr/load_col_idx merge both kinds
// per row so the kernel's inner loop walks a single sorted index list.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/masks/mask.hpp"

namespace stof::sparse {

enum class BlockKind { kEmpty, kPart, kFull };

/// Block-sparse representation of an attention mask.
class BsrMask {
 public:
  /// Tile `mask` into (block_m x block_n) blocks and classify.
  /// seq_len does not need to divide the block sizes; edge blocks are
  /// classified over their in-range elements only.
  static BsrMask build(const masks::Mask& mask, std::int64_t block_m,
                       std::int64_t block_n);

  [[nodiscard]] std::int64_t seq_len() const { return seq_len_; }
  [[nodiscard]] std::int64_t block_m() const { return block_m_; }
  [[nodiscard]] std::int64_t block_n() const { return block_n_; }
  /// Number of block rows: ceil(seq_len / BLOCK_M).
  [[nodiscard]] std::int64_t rows() const {
    return (seq_len_ + block_m_ - 1) / block_m_;
  }
  /// Number of block columns: ceil(seq_len / BLOCK_N).
  [[nodiscard]] std::int64_t cols() const {
    return (seq_len_ + block_n_ - 1) / block_n_;
  }

  // CSR arrays exactly as named in the paper.
  [[nodiscard]] const std::vector<std::int64_t>& full_row_ptr() const {
    return full_row_ptr_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& full_col_idx() const {
    return full_col_idx_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& part_row_ptr() const {
    return part_row_ptr_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& part_col_idx() const {
    return part_col_idx_;
  }
  /// For each part entry, the index of its (deduplicated) bitmap.
  [[nodiscard]] const std::vector<std::int32_t>& part_mask_id() const {
    return part_mask_id_;
  }
  /// Unique block bitmaps, each block_m*block_n bytes, row-major.
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& part_masks()
      const {
    return part_masks_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& load_row_ptr() const {
    return load_row_ptr_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& load_col_idx() const {
    return load_col_idx_;
  }

  /// Classification of block (bi, bj); O(log n) search in the row.
  [[nodiscard]] BlockKind block_kind(std::int64_t bi, std::int64_t bj) const;

  /// Bitmap for a part block (bi, bj). Precondition: kind is kPart.
  [[nodiscard]] const std::vector<std::uint8_t>& part_bitmap(
      std::int64_t bi, std::int64_t bj) const;

  [[nodiscard]] std::int64_t full_count() const {
    return static_cast<std::int64_t>(full_col_idx_.size());
  }
  [[nodiscard]] std::int64_t part_count() const {
    return static_cast<std::int64_t>(part_col_idx_.size());
  }
  /// Valid (full + part) blocks — the kernel's actual work set.
  [[nodiscard]] std::int64_t valid_count() const {
    return full_count() + part_count();
  }
  /// Ratio of valid blocks to total blocks (input to the paper's Eq. 1).
  [[nodiscard]] double valid_ratio() const {
    return static_cast<double>(valid_count()) /
           static_cast<double>(rows() * cols());
  }
  [[nodiscard]] std::int64_t unique_part_masks() const {
    return static_cast<std::int64_t>(part_masks_.size());
  }

  /// Bytes this representation occupies (what the kernel streams from
  /// global memory for mask metadata).
  [[nodiscard]] std::size_t storage_bytes() const;

  /// Reconstruct the dense mask (for round-trip validation).
  [[nodiscard]] masks::Mask to_dense() const;

 private:
  std::int64_t seq_len_ = 0;
  std::int64_t block_m_ = 0;
  std::int64_t block_n_ = 0;
  std::vector<std::int64_t> full_row_ptr_;
  std::vector<std::int32_t> full_col_idx_;
  std::vector<std::int64_t> part_row_ptr_;
  std::vector<std::int32_t> part_col_idx_;
  std::vector<std::int32_t> part_mask_id_;
  std::vector<std::vector<std::uint8_t>> part_masks_;
  std::vector<std::int64_t> load_row_ptr_;
  std::vector<std::int32_t> load_col_idx_;
};

}  // namespace stof::sparse
