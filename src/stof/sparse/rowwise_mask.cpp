#include "stof/sparse/rowwise_mask.hpp"

namespace stof::sparse {

RowwiseMask RowwiseMask::build(const masks::Mask& mask) {
  RowwiseMask out;
  out.seq_len_ = mask.seq_len();
  const std::int64_t n = out.seq_len_;
  out.row_ptr_.reserve(static_cast<std::size_t>(n) + 1);
  out.seg_row_ptr_.reserve(static_cast<std::size_t>(n) + 1);
  out.row_ptr_.push_back(0);
  out.seg_row_ptr_.push_back(0);

  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t seg_begin = -1;
    for (std::int64_t j = 0; j < n; ++j) {
      if (mask.at(i, j)) {
        out.col_idx_.push_back(static_cast<std::int32_t>(j));
        if (seg_begin < 0) seg_begin = j;
      } else if (seg_begin >= 0) {
        out.segments_.push_back({static_cast<std::int32_t>(seg_begin),
                                 static_cast<std::int32_t>(j)});
        seg_begin = -1;
      }
    }
    if (seg_begin >= 0) {
      out.segments_.push_back(
          {static_cast<std::int32_t>(seg_begin), static_cast<std::int32_t>(n)});
    }
    out.row_ptr_.push_back(static_cast<std::int64_t>(out.col_idx_.size()));
    out.seg_row_ptr_.push_back(static_cast<std::int64_t>(out.segments_.size()));
  }
  return out;
}

std::int64_t RowwiseMask::max_row_nnz() const {
  std::int64_t best = 0;
  for (std::int64_t i = 0; i < seq_len_; ++i) best = std::max(best, row_nnz(i));
  return best;
}

double RowwiseMask::mean_segments_per_row() const {
  std::int64_t nonempty = 0;
  for (std::int64_t i = 0; i < seq_len_; ++i) {
    if (row_nnz(i) > 0) ++nonempty;
  }
  if (nonempty == 0) return 0.0;
  return static_cast<double>(segments_.size()) /
         static_cast<double>(nonempty);
}

masks::Mask RowwiseMask::to_dense() const {
  masks::Mask m(seq_len_);
  for (std::int64_t i = 0; i < seq_len_; ++i) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      m.set(i, col_idx_[static_cast<std::size_t>(k)]);
    }
  }
  return m;
}

}  // namespace stof::sparse
