// Row-wise sparse mask storage.
//
// The row-wise MHA kernel slices Q into single rows; each row needs the
// list of key columns it attends to.  Two views of the same data are kept:
// a CSR column-index list (what the kernel's gather loop walks) and a
// per-row segment list (runs of contiguous columns, which the kernel uses
// to issue coalesced loads and which quantifies the locality that makes
// the row-wise kernel profitable on concentrated masks).
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/masks/mask.hpp"

namespace stof::sparse {

/// A run of contiguous valid columns [begin, end) within one row.
struct ColumnSegment {
  std::int32_t begin = 0;
  std::int32_t end = 0;

  friend bool operator==(const ColumnSegment&, const ColumnSegment&) = default;
};

/// CSR + segment representation of a mask for the row-wise kernel.
class RowwiseMask {
 public:
  static RowwiseMask build(const masks::Mask& mask);

  [[nodiscard]] std::int64_t seq_len() const { return seq_len_; }

  [[nodiscard]] const std::vector<std::int64_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::int32_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& seg_row_ptr() const {
    return seg_row_ptr_;
  }
  [[nodiscard]] const std::vector<ColumnSegment>& segments() const {
    return segments_;
  }

  [[nodiscard]] std::int64_t valid_count() const {
    return static_cast<std::int64_t>(col_idx_.size());
  }
  [[nodiscard]] std::int64_t row_nnz(std::int64_t i) const {
    STOF_EXPECTS(i >= 0 && i < seq_len_);
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::int64_t max_row_nnz() const;

  /// Mean segments per non-empty row: 1.0 means perfectly contiguous rows.
  [[nodiscard]] double mean_segments_per_row() const;

  [[nodiscard]] std::size_t storage_bytes() const {
    return row_ptr_.size() * sizeof(std::int64_t) +
           col_idx_.size() * sizeof(std::int32_t) +
           seg_row_ptr_.size() * sizeof(std::int64_t) +
           segments_.size() * sizeof(ColumnSegment);
  }

  [[nodiscard]] masks::Mask to_dense() const;

 private:
  std::int64_t seq_len_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<std::int64_t> seg_row_ptr_;
  std::vector<ColumnSegment> segments_;
};

}  // namespace stof::sparse
