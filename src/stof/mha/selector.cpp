#include "stof/mha/selector.hpp"

#include <cmath>
#include <functional>

#include "stof/gpusim/occupancy.hpp"
#include "stof/sparse/rowwise_mask.hpp"

namespace stof::mha {

double eq1_threshold(const sparse::BsrMask& mask16, double tau) {
  STOF_EXPECTS(mask16.block_m() == 16 && mask16.block_n() == 16,
               "Eq. 1 is evaluated at the hard-coded (16,16) granularity");
  const double nb = static_cast<double>(mask16.rows());
  if (nb < 4) return -1.0;  // degenerate tiny sequence: row-wise
  const double ratio =
      static_cast<double>(mask16.load_row_ptr().back()) / (nb * nb);
  // The paper's penalty is tau / log(nb)^2 with tau = 1.2.  Under our mask
  // width conventions (band = global = sqrt(seq_len)) the squared-log decay
  // cannot reproduce the paper's reported decisions (row-wise at seq 128,
  // block-wise at 512+) for any tau, so the exponent is calibrated to 3 and
  // tau to 12 — preserving the formula's structure and both monotonicities
  // (denser => block-wise, longer => block-wise).
  const double log_nb = std::log2(nb);
  return ratio - tau / (log_nb * log_nb * log_nb);
}

double eq2_score(const gpusim::DeviceSpec& dev, const BlockwiseParams& p,
                 const MhaDims& dims) {
  p.validate();
  const auto occ = gpusim::occupancy(
      dev, blockwise_req_smem_bytes(p, dims.head_size), p.num_warps);
  // score = OCC * sqrt(SM_NUM/BLOCK_M * seq_len*h*bs/BLOCK_M)   (Eq. 2)
  const double parallel_work = static_cast<double>(dims.seq_len) *
                               static_cast<double>(dims.heads) *
                               static_cast<double>(dims.batch);
  return occ.fraction *
         std::sqrt(static_cast<double>(dev.sm_count) / p.block_m *
                   parallel_work / p.block_m);
}

std::vector<BlockwiseParams> blockwise_param_space() {
  std::vector<BlockwiseParams> space;
  for (int bm : {16, 32, 64, 128}) {
    for (int bn : {16, 32, 64, 128}) {
      for (int warps : {2, 4, 8}) {
        space.push_back({bm, bn, warps, /*padding=*/16, /*async_copy=*/true});
      }
    }
  }
  return space;
}

KernelChoice select_kernel(
    const MhaDims& dims, const masks::Mask& mask,
    const sparse::BsrMask& mask16, const gpusim::DeviceSpec& dev,
    const std::function<const sparse::BsrMask&(int, int)>& bsr_at,
    double tau) {
  dims.validate();
  KernelChoice choice;
  choice.threshold = eq1_threshold(mask16, tau);

  if (choice.threshold < 0) {
    choice.kind = KernelKind::kRowwise;
    const sparse::RowwiseMask rw = sparse::RowwiseMask::build(mask);
    double best = 1e300;
    for (int warps : {2, 4, 8}) {
      const RowwiseParams p{warps};
      const double t =
          gpusim::estimate_time_us(rowwise_cost(dims, rw, p, dev), dev);
      if (t < best) {
        best = t;
        choice.rowwise = p;
      }
    }
    choice.predicted_us = best;
    return choice;
  }

  choice.kind = KernelKind::kBlockwise;
  double best = 1e300;
  for (const auto& p : blockwise_param_space()) {
    const auto occ = gpusim::occupancy(
        dev, blockwise_req_smem_bytes(p, dims.head_size), p.num_warps);
    if (occ.blocks_per_sm == 0) continue;  // infeasible launch
    const sparse::BsrMask& bsr = bsr_at(p.block_m, p.block_n);
    const double t =
        gpusim::estimate_time_us(blockwise_cost(dims, bsr, p, dev), dev);
    if (t < best) {
      best = t;
      choice.blockwise = p;
    }
  }
  STOF_ENSURES(best < 1e300, "no feasible block-wise setting");
  choice.predicted_us = best;
  return choice;
}

}  // namespace stof::mha
