// Block-wise sparse MHA kernel (paper §4.2, Fig. 6 / Fig. 7).
//
// Q is cut into (BLOCK_M x head_size) sub-blocks, each owning one thread
// block; K^T and V are cut into (BLOCK_N x head_size) sub-blocks iterated
// along seq_len.  The BSR mask's load_row_ptr/load_col_idx drive the inner
// loop: only valid sub-blocks are loaded into shared memory and computed —
// empty blocks cost nothing, which is where the long-sequence speedups
// come from.  After the score GEMM, "part" blocks fetch their (deduped,
// broadcast) bitmap via part_col_idx and mask invalid lanes to -inf;
// "full" blocks skip the mask entirely and compute densely.
//
// The wmma scheduling of Fig. 7 appears in the cost model as:
//   * tensor-core FLOPs for both tile GEMMs (QK^T and PV),
//   * a single shared K/V buffer used alternately (req_SMEM of Eq. 2),
//   * cp.async pipelining of V loads behind the score math (overlap),
//   * SMEM padding that removes the bank-conflict multiplier.
#pragma once

#include <functional>

#include "stof/core/kernels.hpp"
#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/sparse/bsr_mask.hpp"

namespace stof::mha {

/// Tunable launch parameters of the block-wise kernel (paper Eq. 2).
/// BLOCK_M and BLOCK_N must be multiples of 16 and powers of two.
struct BlockwiseParams {
  int block_m = 64;
  int block_n = 64;
  int num_warps = 4;
  int padding = 16;        ///< SMEM padding elements; 0 re-enables conflicts
  bool async_copy = true;  ///< pipeline V loads behind the score GEMM
  /// Ablation: ignore the full/part classification and load + apply a
  /// bitmap for every valid block (as a coarse block-mask kernel would).
  bool treat_full_as_part = false;
  /// Storage tier of the cached K/V panels (packed mode only).  kInt8 runs
  /// both tile GEMMs over quantized panels with exact int32 accumulation —
  /// deterministic, roughly half the panel-conversion traffic, but not
  /// bit-identical to FP32, so call sites opt in explicitly.  Scalar
  /// execution ignores the field (it is the FP32 reference).
  core::PanelPrecision kv_precision = core::PanelPrecision::kFloat32;

  void validate() const;

  friend bool operator==(const BlockwiseParams&,
                         const BlockwiseParams&) = default;
};

/// Shared-memory bytes required by one thread block (paper Eq. 2, first
/// line, in FP16 elements): (2*BM + BN)*(w + padding) + BM*(BN + padding).
std::int64_t blockwise_req_smem_bytes(const BlockwiseParams& params,
                                      std::int64_t head_size);

/// Optional score modification applied after scaling and before masking
/// (relative position biases, ALiBi slopes, soft capping, ...).  Arguments:
/// (batch*head instance, query row, key column, scaled score) -> new score.
/// This is the expression-based flexibility FlexAttention offers; STOF
/// composes it with the block-sparse skip machinery.
using ScoreMod = std::function<float(std::int64_t, std::int64_t, std::int64_t,
                                     float)>;

class KvPanelCache;

/// Functional execution over the BSR mask: streaming softmax across valid
/// blocks, full/part paths as in the paper.  The BSR block sizes must match
/// `params`.
///
/// `shared_panels` (packed mode only) supplies pre-converted transposed-K /
/// row-major-V float panels covering this problem's K/V instances starting
/// at `shared_kv_offset` — the varlen wrapper passes one whole-batch panel
/// cache so its per-element sub-calls stop duplicating conversions.  When
/// null, the kernel fetches panels from the global cross-call registry.
///
/// `q_block_begin`/`q_block_end` restrict execution to the query block-rows
/// in [q_block_begin, q_block_end) (`q_block_end < 0` means every row).
/// Each Q block-row owns an independent streaming-softmax chain, so a
/// windowed call computes exactly the bytes a full call would write for
/// those rows — the mechanism chunked prefill uses to resume a prompt
/// mid-sequence bit-identically.  Output rows outside the window are left
/// zero-initialised (never written).
TensorH blockwise_attention(const MhaDims& dims, const TensorH& q,
                            const TensorH& k, const TensorH& v,
                            const sparse::BsrMask& mask,
                            const BlockwiseParams& params,
                            const ScoreMod& score_mod = nullptr,
                            const KvPanelCache* shared_panels = nullptr,
                            std::int64_t shared_kv_offset = 0,
                            std::int64_t q_block_begin = 0,
                            std::int64_t q_block_end = -1);

/// Simulated cost of one block-wise kernel launch, optionally restricted to
/// the query block-row window [q_block_begin, q_block_end) — the cost twin
/// of a windowed blockwise_attention call.  The default window covers the
/// whole mask and reproduces the unwindowed cost exactly.
gpusim::KernelCost blockwise_cost(const MhaDims& dims,
                                  const sparse::BsrMask& mask,
                                  const BlockwiseParams& params,
                                  const gpusim::DeviceSpec& dev,
                                  std::int64_t q_block_begin = 0,
                                  std::int64_t q_block_end = -1);

}  // namespace stof::mha
