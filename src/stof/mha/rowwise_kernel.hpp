// Row-wise sparse MHA kernel (paper §4.2, first kernel family).
//
// One warp owns one query row.  The warp walks the row's valid-column
// segments (RowwiseMask), accumulating the streaming softmax with
// warp-shuffle reductions — there is no shared memory and no inter-warp
// synchronization, which is what makes the kernel cheap at small inputs:
// parallelism is per-row (batch*heads*seq_len warps) instead of per-block,
// so even a (1, 128) problem fills the device, and the launch does no
// smem staging the tail would have to amortize.
//
// The trade-off is that all math runs on CUDA cores (a warp holding one
// row cannot feed wmma fragments), so at large valid-element counts the
// block-wise kernel's tensor cores win — exactly the crossover the
// selector's Eq. 1 threshold encodes.
#pragma once

#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/gpusim/timeline.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/sparse/rowwise_mask.hpp"

namespace stof::mha {

/// Tunable launch parameters of the row-wise kernel.
struct RowwiseParams {
  int warps_per_block = 4;  ///< rows processed per thread block

  friend bool operator==(const RowwiseParams&, const RowwiseParams&) = default;
};

/// Functional execution: exact streaming-softmax gather over valid columns.
TensorH rowwise_attention(const MhaDims& dims, const TensorH& q,
                          const TensorH& k, const TensorH& v,
                          const sparse::RowwiseMask& mask);

/// Simulated cost of one row-wise kernel launch.
gpusim::KernelCost rowwise_cost(const MhaDims& dims,
                                const sparse::RowwiseMask& mask,
                                const RowwiseParams& params,
                                const gpusim::DeviceSpec& dev);

}  // namespace stof::mha
