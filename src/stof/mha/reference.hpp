// Reference masked attention (functional oracle for every MHA kernel).
//
// Computes O = softmax(mask(Q K^T / sqrt(d))) V with dense FP32 score
// materialization.  Masked positions receive exactly zero probability and a
// fully masked query row produces a zero output row — the semantics every
// sparse kernel must match bit-for-bit up to FP16 rounding.
#pragma once

#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"

namespace stof::mha {

/// Dense reference attention. Q, K, V: (batch*heads, seq, head_size).
TensorH reference_attention(const MhaDims& dims, const TensorH& q,
                            const TensorH& k, const TensorH& v,
                            const masks::Mask& mask);

}  // namespace stof::mha
