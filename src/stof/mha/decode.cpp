#include "stof/mha/decode.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stof/core/kernels.hpp"
#include "stof/core/packed.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/parallel/parallel_for.hpp"

namespace stof::mha {

std::vector<std::int32_t> decode_columns(const masks::Mask& mask,
                                         std::int64_t row,
                                         std::int64_t context_len) {
  STOF_EXPECTS(row >= 0 && row < mask.seq_len());
  STOF_EXPECTS(context_len > 0 && context_len <= mask.seq_len());
  std::vector<std::int32_t> cols;
  for (std::int64_t j = 0; j < context_len; ++j) {
    if (mask.at(row, j)) cols.push_back(static_cast<std::int32_t>(j));
  }
  return cols;
}

TensorH decode_attention(const DecodeDims& dims, const TensorH& q,
                         const TensorH& k_cache, const TensorH& v_cache,
                         const std::vector<std::int32_t>& cols) {
  dims.validate();
  const Shape q_shape{dims.instances(), 1, dims.head_size};
  const Shape kv_shape{dims.instances(), dims.context_len, dims.head_size};
  STOF_EXPECTS(q.shape() == q_shape, "q must be (b*h, 1, d)");
  STOF_EXPECTS(k_cache.shape() == kv_shape, "k_cache must be (b*h, ctx, d)");
  STOF_EXPECTS(v_cache.shape() == kv_shape, "v_cache must be (b*h, ctx, d)");
  for (const auto c : cols) {
    STOF_EXPECTS(c >= 0 && c < dims.context_len, "column out of context");
  }

  TensorH out(q_shape);
  const std::int64_t d = dims.head_size;
  const float scale = dims.scale();

  // Packed path: bulk-convert the query row and the *gathered* K/V cache
  // rows into scratch FP32 panels.  Decode touches each cache row at most
  // once per call (one query row per instance), so the whole-instance
  // KvPanelCache would convert context rows the sparse column list never
  // reads — gathering exactly the attended rows converts the same element
  // set the scalar loop reads, with table lookups instead of per-element
  // `at()` round trips.  The streaming-softmax order is unchanged, so both
  // paths are bit-identical.
  const bool use_packed = packed_execution_enabled();
  const std::int64_t gathered = static_cast<std::int64_t>(cols.size());
  const std::int64_t ctx = dims.context_len;

  parallel_for_scratch(0, dims.instances(), [&](std::int64_t bh,
                                                ScratchArena& arena) {
    const core::KernelTable& kt = core::kernels();
    float m = -std::numeric_limits<float>::infinity();
    float l = 0;
    auto acc = arena.alloc_zeroed(d);

    std::span<float> q_row, k_rows, v_rows, dots;
    if (use_packed) {
      q_row = arena.alloc(d);
      packed::half_to_float(
          q.data().subspan(static_cast<std::size_t>(bh * d), q_row.size()),
          q_row);
      k_rows = arena.alloc(gathered * d);
      v_rows = arena.alloc(gathered * d);
      dots = arena.alloc(gathered);
      for (std::int64_t g = 0; g < gathered; ++g) {
        const auto src =
            static_cast<std::size_t>((bh * ctx + cols[static_cast<std::size_t>(
                                                     g)]) *
                                     d);
        const auto dst = static_cast<std::size_t>(g * d);
        packed::half_to_float(
            k_cache.data().subspan(src, static_cast<std::size_t>(d)),
            k_rows.subspan(dst, static_cast<std::size_t>(d)));
        packed::half_to_float(
            v_cache.data().subspan(src, static_cast<std::size_t>(d)),
            v_rows.subspan(dst, static_cast<std::size_t>(d)));
      }
      // All gathered rows are contiguous in scratch, so the dot batch runs
      // with idx == nullptr; each dot keeps the serial ascending-e chain of
      // the scalar loop below.
      core::note_kernel_dispatch("dot_rows");
      kt.dot_rows(q_row.data(), k_rows.data(), d, nullptr, dots.data(),
                  gathered, d);
      core::note_kernel_dispatch("axpby", gathered);
    }

    for (std::int64_t g = 0; g < gathered; ++g) {
      const std::int64_t j = cols[static_cast<std::size_t>(g)];
      float dot = 0;
      if (use_packed) {
        dot = dots[static_cast<std::size_t>(g)];
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          dot += float(q.at(bh, 0, e)) * float(k_cache.at(bh, j, e));
        }
      }
      const float s = dot * scale;
      const float m_new = std::max(m, s);
      const float correction = (l == 0.0f) ? 0.0f : std::exp(m - m_new);
      const float w = std::exp(s - m_new);
      l = l * correction + w;
      if (use_packed) {
        // acc = acc*correction + w*v_row — exactly the scalar merge below,
        // one multiply and one add per element.
        kt.axpby(acc.data(), v_rows.data() + g * d, correction, w, d);
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          acc[static_cast<std::size_t>(e)] =
              acc[static_cast<std::size_t>(e)] * correction +
              w * float(v_cache.at(bh, j, e));
        }
      }
      m = m_new;
    }
    const float inv = l == 0.0f ? 0.0f : 1.0f / l;
    if (use_packed) {
      kt.scale_inplace(acc.data(), inv, d);
      packed::float_to_half(
          acc, out.data().subspan(static_cast<std::size_t>(bh * d),
                                  static_cast<std::size_t>(d)));
    } else {
      for (std::int64_t e = 0; e < d; ++e) {
        out.at(bh, 0, e) = half(acc[static_cast<std::size_t>(e)] * inv);
      }
    }
  });
  return out;
}

void PagedSeq::validate(std::int64_t heads, std::int64_t head_size) const {
  STOF_EXPECTS(heads > 0 && head_size > 0);
  STOF_EXPECTS(context_len >= 0, "context_len must be non-negative");
  STOF_EXPECTS(block_tokens >= 1 &&
                   (block_tokens & (block_tokens - 1)) == 0,
               "block_tokens must be a power of two");
  const std::int64_t need =
      (context_len + block_tokens - 1) / block_tokens;
  STOF_EXPECTS(static_cast<std::int64_t>(k_blocks.size()) >= need &&
                   static_cast<std::int64_t>(v_blocks.size()) >= need,
               "not enough KV blocks for context_len");
  STOF_EXPECTS(kf_blocks.empty() == vf_blocks.empty(),
               "float sidecar views come in K/V pairs");
  if (!kf_blocks.empty()) {
    STOF_EXPECTS(static_cast<std::int64_t>(kf_blocks.size()) >= need &&
                     static_cast<std::int64_t>(vf_blocks.size()) >= need,
                 "not enough float KV blocks for context_len");
  }
  STOF_EXPECTS(k8_blocks.empty() == v8_blocks.empty() &&
                   k8_blocks.empty() == k8_scales.empty() &&
                   k8_blocks.empty() == v8_scales.empty(),
               "int8 sidecar views come as k/v blocks plus scales");
  if (!k8_blocks.empty()) {
    STOF_EXPECTS(static_cast<std::int64_t>(k8_blocks.size()) >= need &&
                     static_cast<std::int64_t>(v8_blocks.size()) >= need &&
                     static_cast<std::int64_t>(k8_scales.size()) >= need &&
                     static_cast<std::int64_t>(v8_scales.size()) >= need,
                 "not enough int8 KV blocks for context_len");
  }
  std::int32_t prev = -1;
  for (const auto c : cols) {
    STOF_EXPECTS(c > prev, "cols must be strictly ascending");
    STOF_EXPECTS(c < context_len, "column out of context");
    prev = c;
  }
}

TensorH decode_attention_paged(std::int64_t heads, std::int64_t head_size,
                               std::span<const PagedSeq> seqs,
                               const TensorH& q) {
  const std::int64_t num_seqs = static_cast<std::int64_t>(seqs.size());
  STOF_EXPECTS(num_seqs > 0, "empty decode batch");
  for (const auto& s : seqs) s.validate(heads, head_size);
  const Shape q_shape{num_seqs * heads, 1, head_size};
  STOF_EXPECTS(q.shape() == q_shape, "q must be (seqs*heads, 1, d)");

  TensorH out(q_shape);
  const std::int64_t d = head_size;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const bool use_packed = packed_execution_enabled();

  // One task per (sequence, head) instance — each is fully independent, so
  // per-sequence outputs cannot depend on what else is in the batch.
  parallel_for_scratch(0, num_seqs * heads, [&](std::int64_t inst,
                                                ScratchArena& arena) {
    const core::KernelTable& kt = core::kernels();
    const std::int64_t s = inst / heads;
    const std::int64_t h = inst % heads;
    const PagedSeq& seq = seqs[static_cast<std::size_t>(s)];
    const std::int64_t bt = seq.block_tokens;
    // The KV pool's sidecars hold these pages pre-converted (each page
    // converted once when its rows were appended); reading one skips the
    // per-step O(context) half->float work.  The float sidecar is exact,
    // so every score and PV term below is the same float either way; the
    // INT8 sidecar trades a quantization error bound for halved panel
    // bytes and is gated by the serving engine's kv-precision policy.
    const bool int8_tier = use_packed && !seq.k8_blocks.empty();
    const bool sidecar = !int8_tier && use_packed && !seq.kf_blocks.empty();

    float m = -std::numeric_limits<float>::infinity();
    float l = 0;
    auto acc = arena.alloc_zeroed(d);
    auto w_buf = arena.alloc(bt);
    auto col_buf = arena.alloc(bt);  // local offsets of attended cols

    std::span<float> q_row, pv, kv_scratch;
    std::int8_t* q8 = nullptr;
    float q_scale = 0.0f;
    if (use_packed) {
      // half->float conversion is exact, so reading through a converted
      // FP32 panel rounds identically to per-element float(half) loads.
      q_row = arena.alloc(d);
      packed::half_to_float(
          q.data().subspan(static_cast<std::size_t>(inst * d), q_row.size()),
          q_row);
      pv = arena.alloc(d);
      if (int8_tier) {
        // Quantize the query row once per instance; int8 codes live in the
        // float arena (signed-char stores may alias any storage).
        auto q8_words = arena.alloc((d + 3) / 4);
        q8 = reinterpret_cast<std::int8_t*>(q8_words.data());
        const auto params = core::quant_params(kt.abs_max(q_row.data(), d));
        q_scale = params.scale;
        kt.quantize_i8(q_row.data(), q8, d, params.inv_scale);
      } else if (!sidecar) {
        kv_scratch = arena.alloc(bt * d);
      }
    }

    // Stream the attended columns one KV page at a time with the exact
    // per-block update order of the block-wise kernel's scalar path:
    // block row-max, max-merge, correction, ascending-column weight sum,
    // then the PV accumulate over ascending columns.  Masked columns
    // inside a visited page contribute w == 0 there, which is an exact
    // no-op on every reduction, so the chain of decode steps reproduces a
    // full block-wise pass bit-for-bit (block_tokens must equal the
    // kernel's BLOCK_N).
    std::size_t g = 0;
    const std::size_t n_cols = seq.cols.size();
    while (g < n_cols) {
      const std::int64_t bj = seq.cols[g] / bt;
      const half* k_blk = seq.k_blocks[static_cast<std::size_t>(bj)];
      const half* v_blk = seq.v_blocks[static_cast<std::size_t>(bj)];
      const std::int64_t col_lo = bj * bt;

      // Collect this page's attended locals (exact small integers, stored
      // in the float scratch arena).
      std::int64_t nb = 0;
      for (; g < n_cols && seq.cols[g] < col_lo + bt; ++g, ++nb) {
        col_buf[static_cast<std::size_t>(nb)] =
            static_cast<float>(seq.cols[g] - col_lo);
      }

      // Scores for this page's attended columns: w_buf[c] = dot_c * scale,
      // row_max = max over them (exact, so the batched reduction matches
      // the scalar running max bit-for-bit).
      float row_max = -std::numeric_limits<float>::infinity();
      if (int8_tier) {
        const std::int8_t* k8_blk =
            seq.k8_blocks[static_cast<std::size_t>(bj)];
        const float* k8s = seq.k8_scales[static_cast<std::size_t>(bj)];
        for (std::int64_t c = 0; c < nb; ++c) {
          const auto local =
              static_cast<std::int64_t>(col_buf[static_cast<std::size_t>(c)]);
          const std::int32_t di =
              kt.dot_i8(q8, k8_blk + (local * heads + h) * d, d);
          // Fixed dequantization expression order keeps the INT8 result
          // deterministic across ISAs and batch schedules.
          const float dot = (q_scale * k8s[local]) * static_cast<float>(di);
          w_buf[static_cast<std::size_t>(c)] = dot * scale;
        }
        row_max = kt.reduce_max(w_buf.data(), nb);
      } else if (sidecar) {
        const float* kf_blk = seq.kf_blocks[static_cast<std::size_t>(bj)];
        kt.dot_rows(q_row.data(), kf_blk + h * d, heads * d, col_buf.data(),
                    w_buf.data(), nb, d);
        kt.scale_inplace(w_buf.data(), scale, nb);
        row_max = kt.reduce_max(w_buf.data(), nb);
      } else if (use_packed) {
        for (std::int64_t c = 0; c < nb; ++c) {
          const auto local =
              static_cast<std::int64_t>(col_buf[static_cast<std::size_t>(c)]);
          kt.half_to_float(k_blk + (local * heads + h) * d,
                           kv_scratch.data() + c * d, d);
        }
        kt.dot_rows(q_row.data(), kv_scratch.data(), d, nullptr, w_buf.data(),
                    nb, d);
        kt.scale_inplace(w_buf.data(), scale, nb);
        row_max = kt.reduce_max(w_buf.data(), nb);
      } else {
        for (std::int64_t c = 0; c < nb; ++c) {
          const auto local =
              static_cast<std::int64_t>(col_buf[static_cast<std::size_t>(c)]);
          const half* k_row = k_blk + (local * heads + h) * d;
          float dot = 0;
          for (std::int64_t e = 0; e < d; ++e) {
            dot += float(q.at(inst, 0, e)) * float(k_row[e]);
          }
          w_buf[static_cast<std::size_t>(c)] = dot * scale;
          row_max = std::max(row_max, dot * scale);
        }
      }

      // Online-softmax merge, ascending-column weight sum (block-wise op
      // order; a page with no attended columns is never visited, matching
      // the kernel's row_max == -inf `continue`).
      const float m_new = std::max(m, row_max);
      const float correction = (l == 0.0f) ? 0.0f : std::exp(m - m_new);
      float block_sum = 0;
      for (std::int64_t c = 0; c < nb; ++c) {
        const float w = std::exp(w_buf[static_cast<std::size_t>(c)] - m_new);
        w_buf[static_cast<std::size_t>(c)] = w;
        block_sum += w;
      }
      l = l * correction + block_sum;

      // PV accumulate.  Packed paths build the page's PV vector with one
      // axpy per ascending column — per element that is the same
      // `pv += w_c * v[e]` mul/add chain as the scalar e-outer loop — then
      // merge with acc = acc*correction + 1.0*pv (alpha == 1 is exact).
      if (use_packed) {
        std::fill(pv.begin(), pv.end(), 0.0f);
        if (int8_tier) {
          const std::int8_t* v8_blk =
              seq.v8_blocks[static_cast<std::size_t>(bj)];
          const float* v8s = seq.v8_scales[static_cast<std::size_t>(bj)];
          for (std::int64_t c = 0; c < nb; ++c) {
            const auto local = static_cast<std::int64_t>(
                col_buf[static_cast<std::size_t>(c)]);
            kt.axpy_i8(pv.data(), v8_blk + (local * heads + h) * d,
                       w_buf[static_cast<std::size_t>(c)] * v8s[local], d);
          }
        } else if (sidecar) {
          const float* vf_blk = seq.vf_blocks[static_cast<std::size_t>(bj)];
          for (std::int64_t c = 0; c < nb; ++c) {
            const auto local = static_cast<std::int64_t>(
                col_buf[static_cast<std::size_t>(c)]);
            kt.axpy(pv.data(), vf_blk + (local * heads + h) * d,
                    w_buf[static_cast<std::size_t>(c)], d);
          }
        } else {
          for (std::int64_t c = 0; c < nb; ++c) {
            const auto local = static_cast<std::int64_t>(
                col_buf[static_cast<std::size_t>(c)]);
            kt.half_to_float(v_blk + (local * heads + h) * d,
                             kv_scratch.data() + c * d, d);
            kt.axpy(pv.data(), kv_scratch.data() + c * d,
                    w_buf[static_cast<std::size_t>(c)], d);
          }
        }
        kt.axpby(acc.data(), pv.data(), correction, 1.0f, d);
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          float pvs = 0;
          for (std::int64_t c = 0; c < nb; ++c) {
            const auto local = static_cast<std::int64_t>(
                col_buf[static_cast<std::size_t>(c)]);
            pvs += w_buf[static_cast<std::size_t>(c)] *
                   float(v_blk[(local * heads + h) * d + e]);
          }
          acc[static_cast<std::size_t>(e)] =
              acc[static_cast<std::size_t>(e)] * correction + pvs;
        }
      }
      m = m_new;
    }

    const float inv = l == 0.0f ? 0.0f : 1.0f / l;
    if (use_packed) {
      kt.scale_inplace(acc.data(), inv, d);
      packed::float_to_half(
          acc, out.data().subspan(static_cast<std::size_t>(inst * d),
                                  static_cast<std::size_t>(d)));
    } else {
      for (std::int64_t e = 0; e < d; ++e) {
        out.at(inst, 0, e) = half(acc[static_cast<std::size_t>(e)] * inv);
      }
    }
  });
  return out;
}

gpusim::KernelCost decode_batched_cost(std::int64_t heads,
                                       std::int64_t head_size,
                                       std::span<const std::int64_t> valid_cols,
                                       const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(heads > 0 && head_size > 0 && !valid_cols.empty());
  const double d = static_cast<double>(head_size);
  const double h = static_cast<double>(heads);
  constexpr double kElem = 2.0;
  const std::int64_t instances =
      static_cast<std::int64_t>(valid_cols.size()) * heads;

  gpusim::KernelCost c;
  // Same per-instance model as decode_cost, summed over the ragged batch:
  // one warp per (sequence, head), packed half2 CUDA-core math.
  for (const auto valid_i : valid_cols) {
    STOF_EXPECTS(valid_i >= 0);
    const double valid = static_cast<double>(valid_i);
    c.cuda_flops += 0.5 * h * valid * (4.0 * d + 6.0);
    c.gmem_read_bytes += h * (d * kElem + 2.0 * valid * d * kElem) +
                         valid * sizeof(std::int32_t);
    c.gmem_write_bytes += h * d * kElem;
  }
  const auto occ = gpusim::occupancy(dev, 0, /*num_warps=*/4);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = (instances + 3) / 4;
  c.overlap = 0.85;  // pure streaming
  return c;
}

gpusim::KernelCost decode_verify_cost(std::int64_t heads,
                                      std::int64_t head_size,
                                      std::span<const std::int64_t> valid_cols,
                                      std::span<const std::int64_t> seq_rows,
                                      const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(heads > 0 && head_size > 0 && !seq_rows.empty());
  const double d = static_cast<double>(head_size);
  const double h = static_cast<double>(heads);
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  std::size_t row = 0;
  std::int64_t instances = 0;
  for (const auto rows : seq_rows) {
    STOF_EXPECTS(rows >= 1);
    std::int64_t max_valid = 0;
    for (std::int64_t j = 0; j < rows; ++j) {
      STOF_EXPECTS(row < valid_cols.size());
      const std::int64_t valid_i = valid_cols[row++];
      STOF_EXPECTS(valid_i >= 0);
      const double valid = static_cast<double>(valid_i);
      // Per-row math and q/output/column-list traffic: identical to the
      // plain batched decode model.
      c.cuda_flops += 0.5 * h * valid * (4.0 * d + 6.0);
      c.gmem_read_bytes += h * d * kElem + valid * sizeof(std::int32_t);
      c.gmem_write_bytes += h * d * kElem;
      max_valid = std::max(max_valid, valid_i);
    }
    // KV pages stream from DRAM once per sequence (row maximum); the other
    // rows of the same sequence re-read them out of L2/SMEM.
    c.gmem_read_bytes +=
        h * 2.0 * static_cast<double>(max_valid) * d * kElem;
    instances += rows * heads;
  }
  STOF_EXPECTS(row == valid_cols.size(),
               "seq_rows must partition valid_cols");
  const auto occ = gpusim::occupancy(dev, 0, /*num_warps=*/4);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = (instances + 3) / 4;
  c.overlap = 0.85;  // pure streaming
  return c;
}

gpusim::KernelCost decode_cost(const DecodeDims& dims,
                               std::int64_t valid_cols,
                               const gpusim::DeviceSpec& dev) {
  dims.validate();
  STOF_EXPECTS(valid_cols >= 0 && valid_cols <= dims.context_len);
  const double instances = static_cast<double>(dims.instances());
  const double d = static_cast<double>(dims.head_size);
  const double valid = static_cast<double>(valid_cols);
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  // One warp per (batch, head): packed half2 CUDA-core math, like the
  // row-wise kernel.
  c.cuda_flops = 0.5 * instances * valid * (4.0 * d + 6.0);
  // Streams the attended K/V cache rows plus the tiny q and output.
  c.gmem_read_bytes = instances * (d * kElem + 2.0 * valid * d * kElem) +
                      valid * sizeof(std::int32_t);
  c.gmem_write_bytes = instances * d * kElem;
  const auto occ = gpusim::occupancy(dev, 0, /*num_warps=*/4);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = (dims.instances() + 3) / 4;
  c.overlap = 0.85;  // pure streaming
  return c;
}

}  // namespace stof::mha
