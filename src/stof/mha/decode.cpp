#include "stof/mha/decode.hpp"

#include <cmath>
#include <limits>

#include "stof/core/packed.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/parallel/parallel_for.hpp"

namespace stof::mha {

std::vector<std::int32_t> decode_columns(const masks::Mask& mask,
                                         std::int64_t row,
                                         std::int64_t context_len) {
  STOF_EXPECTS(row >= 0 && row < mask.seq_len());
  STOF_EXPECTS(context_len > 0 && context_len <= mask.seq_len());
  std::vector<std::int32_t> cols;
  for (std::int64_t j = 0; j < context_len; ++j) {
    if (mask.at(row, j)) cols.push_back(static_cast<std::int32_t>(j));
  }
  return cols;
}

TensorH decode_attention(const DecodeDims& dims, const TensorH& q,
                         const TensorH& k_cache, const TensorH& v_cache,
                         const std::vector<std::int32_t>& cols) {
  dims.validate();
  const Shape q_shape{dims.instances(), 1, dims.head_size};
  const Shape kv_shape{dims.instances(), dims.context_len, dims.head_size};
  STOF_EXPECTS(q.shape() == q_shape, "q must be (b*h, 1, d)");
  STOF_EXPECTS(k_cache.shape() == kv_shape, "k_cache must be (b*h, ctx, d)");
  STOF_EXPECTS(v_cache.shape() == kv_shape, "v_cache must be (b*h, ctx, d)");
  for (const auto c : cols) {
    STOF_EXPECTS(c >= 0 && c < dims.context_len, "column out of context");
  }

  TensorH out(q_shape);
  const std::int64_t d = dims.head_size;
  const float scale = dims.scale();

  // Packed path: bulk-convert the query row and the *gathered* K/V cache
  // rows into scratch FP32 panels.  Decode touches each cache row at most
  // once per call (one query row per instance), so the whole-instance
  // KvPanelCache would convert context rows the sparse column list never
  // reads — gathering exactly the attended rows converts the same element
  // set the scalar loop reads, with table lookups instead of per-element
  // `at()` round trips.  The streaming-softmax order is unchanged, so both
  // paths are bit-identical.
  const bool use_packed = packed_execution_enabled();
  const std::int64_t gathered = static_cast<std::int64_t>(cols.size());
  const std::int64_t ctx = dims.context_len;

  parallel_for_scratch(0, dims.instances(), [&](std::int64_t bh,
                                                ScratchArena& arena) {
    float m = -std::numeric_limits<float>::infinity();
    float l = 0;
    auto acc = arena.alloc_zeroed(d);

    std::span<float> q_row, k_rows, v_rows;
    if (use_packed) {
      q_row = arena.alloc(d);
      packed::half_to_float(
          q.data().subspan(static_cast<std::size_t>(bh * d), q_row.size()),
          q_row);
      k_rows = arena.alloc(gathered * d);
      v_rows = arena.alloc(gathered * d);
      for (std::int64_t g = 0; g < gathered; ++g) {
        const auto src =
            static_cast<std::size_t>((bh * ctx + cols[static_cast<std::size_t>(
                                                     g)]) *
                                     d);
        const auto dst = static_cast<std::size_t>(g * d);
        packed::half_to_float(
            k_cache.data().subspan(src, static_cast<std::size_t>(d)),
            k_rows.subspan(dst, static_cast<std::size_t>(d)));
        packed::half_to_float(
            v_cache.data().subspan(src, static_cast<std::size_t>(d)),
            v_rows.subspan(dst, static_cast<std::size_t>(d)));
      }
    }

    for (std::int64_t g = 0; g < gathered; ++g) {
      const std::int64_t j = cols[static_cast<std::size_t>(g)];
      float dot = 0;
      if (use_packed) {
        const float* k_row = k_rows.data() + g * d;
        for (std::int64_t e = 0; e < d; ++e) dot += q_row[e] * k_row[e];
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          dot += float(q.at(bh, 0, e)) * float(k_cache.at(bh, j, e));
        }
      }
      const float s = dot * scale;
      const float m_new = std::max(m, s);
      const float correction = (l == 0.0f) ? 0.0f : std::exp(m - m_new);
      const float w = std::exp(s - m_new);
      l = l * correction + w;
      if (use_packed) {
        const float* v_row = v_rows.data() + g * d;
        for (std::int64_t e = 0; e < d; ++e) {
          acc[static_cast<std::size_t>(e)] =
              acc[static_cast<std::size_t>(e)] * correction + w * v_row[e];
        }
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          acc[static_cast<std::size_t>(e)] =
              acc[static_cast<std::size_t>(e)] * correction +
              w * float(v_cache.at(bh, j, e));
        }
      }
      m = m_new;
    }
    const float inv = l == 0.0f ? 0.0f : 1.0f / l;
    for (std::int64_t e = 0; e < d; ++e) {
      out.at(bh, 0, e) = half(acc[static_cast<std::size_t>(e)] * inv);
    }
  });
  return out;
}

gpusim::KernelCost decode_cost(const DecodeDims& dims,
                               std::int64_t valid_cols,
                               const gpusim::DeviceSpec& dev) {
  dims.validate();
  STOF_EXPECTS(valid_cols >= 0 && valid_cols <= dims.context_len);
  const double instances = static_cast<double>(dims.instances());
  const double d = static_cast<double>(dims.head_size);
  const double valid = static_cast<double>(valid_cols);
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  // One warp per (batch, head): packed half2 CUDA-core math, like the
  // row-wise kernel.
  c.cuda_flops = 0.5 * instances * valid * (4.0 * d + 6.0);
  // Streams the attended K/V cache rows plus the tiny q and output.
  c.gmem_read_bytes = instances * (d * kElem + 2.0 * valid * d * kElem) +
                      valid * sizeof(std::int32_t);
  c.gmem_write_bytes = instances * d * kElem;
  const auto occ = gpusim::occupancy(dev, 0, /*num_warps=*/4);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = (dims.instances() + 3) / 4;
  c.overlap = 0.85;  // pure streaming
  return c;
}

}  // namespace stof::mha
