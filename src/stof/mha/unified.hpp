// UnifiedMha — the public entry point of STOF's unified MHA module.
//
// Construction analyzes the mask once (builds the sparse formats, runs the
// Eq. 1 / Eq. 2 selection against the target device) and the resulting plan
// is reused across runs:
//
//   stof::mha::UnifiedMha mha(dims, mask, device);
//   gpusim::Stream stream(device);
//   TensorH out = mha.run(q, k, v, stream);       // compute + record cost
//   double us  = mha.simulate(stream);            // cost-only (big sweeps)
//
// `plan()` exposes which kernel was chosen and with which parameters —
// benches and the ablation study read it directly.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "stof/gpusim/timeline.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/selector.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/sparse/rowwise_mask.hpp"

namespace stof::mha {

/// Options controlling planning (ablation hooks included).
struct MhaOptions {
  double tau = 12.0;                 ///< Eq. 1 penalty coefficient
  std::optional<KernelKind> force_kernel;  ///< ablation: bypass Eq. 1
  std::optional<BlockwiseParams> force_params;  ///< ablation: bypass Eq. 2
  /// Analysis-model wall-clock budget is reported via plan().analysis_us.
};

/// The committed execution plan for one (dims, mask, device) triple.
struct MhaPlan {
  KernelChoice choice;
  double analysis_us = 0;  ///< host time spent planning (Fig. 14 overhead)
};

/// Unified sparse multi-head attention with analytical kernel selection.
class UnifiedMha {
 public:
  UnifiedMha(MhaDims dims, masks::Mask mask, gpusim::DeviceSpec device,
             MhaOptions options = {});

  [[nodiscard]] const MhaPlan& plan() const { return plan_; }
  [[nodiscard]] const MhaDims& dims() const { return dims_; }

  /// Execute functionally and record the kernel launch on `stream`.
  TensorH run(const TensorH& q, const TensorH& k, const TensorH& v,
              gpusim::Stream& stream) const;

  /// Record the launch cost without computing (for large sweeps); returns
  /// the simulated time in microseconds.
  double simulate(gpusim::Stream& stream) const;

 private:
  const sparse::BsrMask& bsr_at(int block_m, int block_n);

  MhaDims dims_;
  masks::Mask mask_;
  gpusim::DeviceSpec device_;
  MhaPlan plan_;
  std::map<std::pair<int, int>, std::unique_ptr<sparse::BsrMask>> bsr_cache_;
  std::unique_ptr<sparse::RowwiseMask> rowwise_;  ///< set when row-wise plan
  const sparse::BsrMask* blockwise_bsr_ = nullptr;  ///< set when block-wise
};

}  // namespace stof::mha
