// FP32 K/V panel cache for the packed attention kernels.
//
// The block-wise kernel visits every valid (Q-block row, K/V block) pair,
// so without a cache each K/V tile is converted half->float once per
// Q-block row that loads it — a rows()-fold redundancy (the CPU analogue
// of the redundant wmma format conversions Fused3S eliminates on tensor
// cores).  KvPanelCache converts each K/V *instance* at most once per
// kernel call, in parallel across instances:
//
//   * K is optionally stored transposed (d x seq) so the block-wise QK^T
//     saxpy micro-kernel streams a row of keys unit-stride per Q element
//     (the row-wise kernel keeps K row-major, since it dots whole K rows);
//   * V is always row-major (seq x d): the PV product consumes whole V
//     rows per key column, unit-stride in both kernels.
//
// Two ownership modes:
//
//   * Owning (registry == nullptr): panels live in this object and are
//     reconverted on every construction — the PR 2 per-call behaviour.
//   * External (registry != nullptr): panels are fetched from a
//     core::PanelCacheRegistry keyed on the K/V tensors' storage identity
//     and version, so repeated calls over unmodified tensors (bench reps,
//     decode replays, tuner candidate evaluations) reuse one conversion.
//     The cache pins the registry buffers for its own lifetime.
//
// Conversion uses the exact half->float table, so cached panels carry the
// same values the scalar path reads element-wise — caching cannot perturb
// the bit-identity contract.  `exec.mha.panels_converted` counts panels
// actually converted by this construction (registry hits contribute 0).
//
// INT8 tier (precision == kInt8): panels are quantized instead of
// converted — symmetric int8 codes with one scale per (seq x d) instance
// panel, the layout otherwise unchanged.  Codes are a pure function of the
// half source (quantize-once through the registry), so INT8 attention is
// deterministic across ISAs and call schedules; it is not bit-identical
// to FP32, which is why call sites opt in via BlockwiseParams.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/kernels.hpp"
#include "stof/core/panel_cache_registry.hpp"
#include "stof/core/tensor.hpp"

namespace stof::mha {

class KvPanelCache {
 public:
  /// Make the `kv_instances` float panels of `k` and `v` available (each
  /// instance is a contiguous (seq x d) half panel).  `transpose_k`
  /// selects the (d x seq) K layout used by the block-wise QK^T
  /// micro-kernel.  With a `registry`, panels are fetched from (and kept
  /// in) the cross-call cache instead of converted locally.
  KvPanelCache(const TensorH& k, const TensorH& v, std::int64_t kv_instances,
               std::int64_t seq, std::int64_t head_size, bool transpose_k,
               core::PanelCacheRegistry* registry = nullptr,
               core::PanelPrecision precision =
                   core::PanelPrecision::kFloat32);

  /// Storage tier this cache was built at.  Float accessors require
  /// kFloat32; int8 accessors require kInt8.
  [[nodiscard]] core::PanelPrecision precision() const { return precision_; }

  /// K panel of instance `kv` in row-major (seq x d) layout.
  /// Precondition: constructed with transpose_k == false.
  [[nodiscard]] const float* k_panel(std::int64_t kv) const;
  /// Transposed K panel of instance `kv`: d rows of `seq` contiguous
  /// key columns.  Precondition: constructed with transpose_k == true.
  [[nodiscard]] const float* kt_panel(std::int64_t kv) const;
  /// V panel of instance `kv`: seq x d, row-major.
  [[nodiscard]] const float* v_panel(std::int64_t kv) const {
    STOF_EXPECTS(precision_ == core::PanelPrecision::kFloat32,
                 "cache holds int8 panels");
    return v_data_ + kv * seq_ * d_;
  }

  /// INT8 transposed K panel of instance `kv` (layout as kt_panel) and its
  /// per-instance scale.  Precondition: kInt8 precision, transpose_k.
  [[nodiscard]] const std::int8_t* kt_panel_i8(std::int64_t kv) const;
  /// INT8 V panel of instance `kv` (seq x d, row-major) and its scale.
  [[nodiscard]] const std::int8_t* v_panel_i8(std::int64_t kv) const;
  [[nodiscard]] float k_scale(std::int64_t kv) const;
  [[nodiscard]] float v_scale(std::int64_t kv) const;

  [[nodiscard]] std::int64_t seq() const { return seq_; }
  [[nodiscard]] std::int64_t head_size() const { return d_; }

 private:
  std::int64_t seq_ = 0;
  std::int64_t d_ = 0;
  bool transposed_k_ = false;
  core::PanelPrecision precision_ = core::PanelPrecision::kFloat32;
  std::vector<float> k_f32_;  ///< owning mode only
  std::vector<float> v_f32_;  ///< owning mode only
  core::PanelRef k_ref_;      ///< registry mode: pinned shared buffers
  core::PanelRef v_ref_;
  const float* k_data_ = nullptr;
  const float* v_data_ = nullptr;
  // INT8 tier state (kInt8 precision only).
  std::vector<std::int8_t> k_i8_;  ///< owning mode only
  std::vector<std::int8_t> v_i8_;
  std::vector<float> k_scales_own_;
  std::vector<float> v_scales_own_;
  core::Int8PanelRef k8_ref_;  ///< registry mode pins
  core::Int8PanelRef v8_ref_;
  const std::int8_t* k8_data_ = nullptr;
  const std::int8_t* v8_data_ = nullptr;
  const float* k_scales_ = nullptr;
  const float* v_scales_ = nullptr;
};

}  // namespace stof::mha
