// Per-call FP32 K/V panel cache for the packed attention kernels.
//
// The block-wise kernel visits every valid (Q-block row, K/V block) pair,
// so without a cache each K/V tile is converted half->float once per
// Q-block row that loads it — a rows()-fold redundancy (the CPU analogue
// of the redundant wmma format conversions Fused3S eliminates on tensor
// cores).  KvPanelCache converts each K/V *instance* exactly once per
// kernel call, in parallel across instances:
//
//   * K is optionally stored transposed (d x seq) so the block-wise QK^T
//     saxpy micro-kernel streams a row of keys unit-stride per Q element
//     (the row-wise kernel keeps K row-major, since it dots whole K rows);
//   * V is always row-major (seq x d): the PV product consumes whole V
//     rows per key column, unit-stride in both kernels.
//
// Conversion uses the exact half->float table, so cached panels carry the
// same values the scalar path reads element-wise — caching cannot perturb
// the bit-identity contract.  Construction records
// `exec.mha.panels_converted` (2 panels per K/V instance per call).
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/tensor.hpp"

namespace stof::mha {

class KvPanelCache {
 public:
  /// Convert all `kv_instances` panels of `k` and `v` (each instance is a
  /// contiguous (seq x d) half panel).  `transpose_k` selects the (d x seq)
  /// K layout used by the block-wise QK^T micro-kernel.
  KvPanelCache(const TensorH& k, const TensorH& v, std::int64_t kv_instances,
               std::int64_t seq, std::int64_t head_size, bool transpose_k);

  /// K panel of instance `kv` in row-major (seq x d) layout.
  /// Precondition: constructed with transpose_k == false.
  [[nodiscard]] const float* k_panel(std::int64_t kv) const;
  /// Transposed K panel of instance `kv`: d rows of `seq` contiguous
  /// key columns.  Precondition: constructed with transpose_k == true.
  [[nodiscard]] const float* kt_panel(std::int64_t kv) const;
  /// V panel of instance `kv`: seq x d, row-major.
  [[nodiscard]] const float* v_panel(std::int64_t kv) const {
    return v_f32_.data() + kv * seq_ * d_;
  }

  [[nodiscard]] std::int64_t seq() const { return seq_; }
  [[nodiscard]] std::int64_t head_size() const { return d_; }

 private:
  std::int64_t seq_ = 0;
  std::int64_t d_ = 0;
  bool transposed_k_ = false;
  std::vector<float> k_f32_;
  std::vector<float> v_f32_;
};

}  // namespace stof::mha
