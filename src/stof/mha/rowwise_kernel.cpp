#include "stof/mha/rowwise_kernel.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "stof/core/packed.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/mha/panel_cache.hpp"
#include "stof/parallel/parallel_for.hpp"

namespace stof::mha {

TensorH rowwise_attention(const MhaDims& dims, const TensorH& q,
                          const TensorH& k, const TensorH& v,
                          const sparse::RowwiseMask& mask) {
  STOF_EXPECTS(mask.seq_len() == dims.seq_len, "mask must match seq_len");
  TensorH out = make_output(dims, q, k, v);
  const std::int64_t n = dims.seq_len;
  const std::int64_t d = dims.head_size;
  const float scale = dims.scale();

  // Packed path: fetch each K/V instance's float panel from the global
  // cross-call cache (converted at most once per mutation of the tensor;
  // K/V rows are gathered by every query row that attends to them, so the
  // panels amortize across the whole instance and across repeated calls).
  // Both panels stay row-major — each gathered column dots one whole K row
  // and consumes one whole V row.  The streaming-softmax arithmetic below
  // is identical in both paths, so the packed results are bit-identical to
  // the scalar per-element `at()` reference.
  const bool use_packed = packed_execution_enabled();
  std::optional<KvPanelCache> panels;
  if (use_packed) {
    panels.emplace(k, v, dims.kv_instances(), n, d, /*transpose_k=*/false,
                   &core::global_panel_cache());
  }

  parallel_for_scratch(0, dims.instances() * n, [&](std::int64_t row,
                                                    ScratchArena& arena) {
    const std::int64_t bh = row / n;
    const std::int64_t kv = dims.kv_instance_of(bh);
    const std::int64_t i = row % n;
    const std::int64_t lo = mask.row_ptr()[static_cast<std::size_t>(i)];
    const std::int64_t hi = mask.row_ptr()[static_cast<std::size_t>(i) + 1];

    // Streaming softmax over the gathered columns: the warp keeps the
    // running max m, running denominator l, and the output accumulator,
    // rescaling on every new maximum exactly like the CUDA kernel.
    float m = -std::numeric_limits<float>::infinity();
    float l = 0.0f;
    auto acc = arena.alloc_zeroed(d);

    const float* kf = nullptr;
    const float* vf = nullptr;
    std::span<float> q_row;
    if (use_packed) {
      kf = panels->k_panel(kv);
      vf = panels->v_panel(kv);
      q_row = arena.alloc(d);
      packed::half_to_float(
          q.data().subspan(static_cast<std::size_t>((bh * n + i) * d),
                           q_row.size()),
          q_row);
    }

    for (std::int64_t p = lo; p < hi; ++p) {
      const std::int64_t j = mask.col_idx()[static_cast<std::size_t>(p)];
      float dot = 0;
      if (use_packed) {
        const float* k_row = kf + j * d;
        for (std::int64_t e = 0; e < d; ++e) dot += q_row[e] * k_row[e];
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          dot += float(q.at(bh, i, e)) * float(k.at(kv, j, e));
        }
      }
      const float s = dot * scale;
      const float m_new = std::max(m, s);
      const float correction = (l == 0.0f) ? 0.0f : std::exp(m - m_new);
      const float w = std::exp(s - m_new);
      l = l * correction + w;
      if (use_packed) {
        const float* v_row = vf + j * d;
        for (std::int64_t e = 0; e < d; ++e) {
          acc[static_cast<std::size_t>(e)] =
              acc[static_cast<std::size_t>(e)] * correction + w * v_row[e];
        }
      } else {
        for (std::int64_t e = 0; e < d; ++e) {
          acc[static_cast<std::size_t>(e)] =
              acc[static_cast<std::size_t>(e)] * correction +
              w * float(v.at(kv, j, e));
        }
      }
      m = m_new;
    }

    if (l == 0.0f) {
      for (std::int64_t e = 0; e < d; ++e) out.at(bh, i, e) = half(0.0f);
      return;  // fully masked row
    }
    const float inv = 1.0f / l;
    for (std::int64_t e = 0; e < d; ++e) {
      out.at(bh, i, e) = half(acc[static_cast<std::size_t>(e)] * inv);
    }
  });
  return out;
}

gpusim::KernelCost rowwise_cost(const MhaDims& dims,
                                const sparse::RowwiseMask& mask,
                                const RowwiseParams& p,
                                const gpusim::DeviceSpec& dev) {
  dims.validate();
  STOF_EXPECTS(p.warps_per_block >= 1 &&
               p.warps_per_block <= dev.max_warps_per_sm);
  const double instances = static_cast<double>(dims.instances());
  const double d = static_cast<double>(dims.head_size);
  const double valid = static_cast<double>(mask.valid_count());
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  // Per valid element: d MACs for QK^T, d MACs for PV, ~6 flops of
  // streaming-softmax bookkeeping — all on CUDA cores, issued as packed
  // half2 math (two FP16 lanes per FP32 ALU slot, hence the 0.5 factor).
  c.cuda_flops = 0.5 * instances * valid * (4.0 * d + 6.0);
  // Q and the output are touched once.  K and V are gathered per valid
  // element, but neighbouring rows share segments, so DRAM traffic is
  // capped at a few L2 passes over the K/V footprint.
  const double kv_share =
      static_cast<double>(dims.kv_head_count()) /
      static_cast<double>(dims.heads);
  const double kv_gather = instances * valid * d * kElem * 2.0 * kv_share;
  const double kv_footprint = static_cast<double>(dims.kv_instances()) * 2.0 *
                              static_cast<double>(dims.seq_len) * d * kElem;
  c.gmem_read_bytes =
      instances * static_cast<double>(dims.seq_len) * d * kElem +  // Q
      std::min(kv_gather, 4.0 * kv_footprint) +
      static_cast<double>(mask.storage_bytes());
  c.gmem_write_bytes = instances * static_cast<double>(dims.seq_len) * d * kElem;
  c.smem_bytes = 0;  // warp-shuffle only: no shared memory at all

  const auto occ = gpusim::occupancy(dev, 0, p.warps_per_block);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks =
      (dims.total_rows() + p.warps_per_block - 1) / p.warps_per_block;
  c.overlap = 0.8;
  return c;
}

}  // namespace stof::mha
