#include "stof/mha/unified.hpp"

#include <chrono>
#include <utility>

namespace stof::mha {

UnifiedMha::UnifiedMha(MhaDims dims, masks::Mask mask,
                       gpusim::DeviceSpec device, MhaOptions options)
    : dims_(dims), mask_(std::move(mask)), device_(std::move(device)) {
  dims_.validate();
  STOF_EXPECTS(mask_.seq_len() == dims_.seq_len, "mask must match seq_len");

  const auto t0 = std::chrono::steady_clock::now();

  const sparse::BsrMask& mask16 = bsr_at(16, 16);
  auto fetch = [this](int bm, int bn) -> const sparse::BsrMask& {
    return bsr_at(bm, bn);
  };

  if (options.force_kernel.has_value()) {
    plan_.choice.kind = *options.force_kernel;
    plan_.choice.threshold = eq1_threshold(mask16, options.tau);
    if (plan_.choice.kind == KernelKind::kBlockwise) {
      plan_.choice.blockwise =
          options.force_params.value_or(BlockwiseParams{});
    }
  } else {
    plan_.choice =
        select_kernel(dims_, mask_, mask16, device_, fetch, options.tau);
    if (options.force_params.has_value() &&
        plan_.choice.kind == KernelKind::kBlockwise) {
      plan_.choice.blockwise = *options.force_params;
    }
  }

  if (plan_.choice.kind == KernelKind::kRowwise) {
    rowwise_ = std::make_unique<sparse::RowwiseMask>(
        sparse::RowwiseMask::build(mask_));
  } else {
    blockwise_bsr_ = &bsr_at(plan_.choice.blockwise.block_m,
                             plan_.choice.blockwise.block_n);
  }

  plan_.analysis_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
}

const sparse::BsrMask& UnifiedMha::bsr_at(int block_m, int block_n) {
  const auto key = std::make_pair(block_m, block_n);
  auto it = bsr_cache_.find(key);
  if (it == bsr_cache_.end()) {
    it = bsr_cache_
             .emplace(key, std::make_unique<sparse::BsrMask>(
                               sparse::BsrMask::build(mask_, block_m, block_n)))
             .first;
  }
  return *it->second;
}

TensorH UnifiedMha::run(const TensorH& q, const TensorH& k, const TensorH& v,
                        gpusim::Stream& stream) const {
  if (plan_.choice.kind == KernelKind::kRowwise) {
    stream.launch("stof.mha.rowwise",
                  rowwise_cost(dims_, *rowwise_, plan_.choice.rowwise,
                               stream.device()));
    return rowwise_attention(dims_, q, k, v, *rowwise_);
  }
  stream.launch("stof.mha.blockwise",
                blockwise_cost(dims_, *blockwise_bsr_, plan_.choice.blockwise,
                               stream.device()));
  return blockwise_attention(dims_, q, k, v, *blockwise_bsr_,
                             plan_.choice.blockwise);
}

double UnifiedMha::simulate(gpusim::Stream& stream) const {
  if (plan_.choice.kind == KernelKind::kRowwise) {
    return stream.launch("stof.mha.rowwise",
                         rowwise_cost(dims_, *rowwise_, plan_.choice.rowwise,
                                      stream.device()));
  }
  return stream.launch(
      "stof.mha.blockwise",
      blockwise_cost(dims_, *blockwise_bsr_, plan_.choice.blockwise,
                     stream.device()));
}

}  // namespace stof::mha
