// Analytical kernel selection for the unified MHA module (paper Eq. 1/2).
//
// Stage 1 (Eq. 1): classify the mask at a hard-coded (16, 16) granularity.
// When the valid-block ratio falls below a sequence-length-dependent
// threshold the inputs are small and concentrated, so the row-wise kernel's
// locality and zero-synchronization win; otherwise the block-wise kernel's
// tensor cores win.  The paper writes the penalty as tau / log(nb)^2 with
// an "empirically set" tau of 1.2; our mask-width conventions calibrate to
// a cubed-log2 penalty with tau = 12 (see selector.cpp), reproducing the
// paper's switch: row-wise for concentrated masks at seq <= 256, block-wise
// from 512 up.
//
// Stage 2 (Eq. 2): pick (BLOCK_M, BLOCK_N, num_warps) for the block-wise
// kernel.  eq2_score() implements the paper's closed form; as written it is
// monotone toward the smallest blocks whenever occupancy saturates, so the
// default selection minimizes the full analytical cost model instead (the
// same occupancy/SMEM trade-off, plus the tile-granularity effects the
// closed form abstracts away).  Both paths are exposed and tested.
#pragma once

#include <functional>
#include <vector>

#include "stof/gpusim/device.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/mha/rowwise_kernel.hpp"
#include "stof/sparse/bsr_mask.hpp"

namespace stof::mha {

enum class KernelKind { kRowwise, kBlockwise };

/// Eq. 1: valid-block ratio at (16,16) granularity minus the sparsity
/// penalty.  Negative => row-wise kernel.
double eq1_threshold(const sparse::BsrMask& mask16, double tau = 12.0);

/// Eq. 2 closed-form score of one parameter setting (exposed for tests and
/// the ablation bench; see header comment for why selection does not
/// maximize it directly).
double eq2_score(const gpusim::DeviceSpec& dev, const BlockwiseParams& params,
                 const MhaDims& dims);

/// Candidate (BLOCK_M, BLOCK_N, num_warps) settings: multiples of 16,
/// powers of two, as required by the paper.
std::vector<BlockwiseParams> blockwise_param_space();

/// Result of the two-stage analytical selection.
struct KernelChoice {
  KernelKind kind = KernelKind::kBlockwise;
  double threshold = 0;  ///< Eq. 1 value that drove the decision
  RowwiseParams rowwise;
  BlockwiseParams blockwise;
  double predicted_us = 0;  ///< analytical-model time of the chosen setting
};

/// Run both stages. `mask16` must be the (16,16) BSR of the mask; the
/// callback builds (or fetches from a cache) the BSR at a requested block
/// shape so the caller controls reuse across selections.
KernelChoice select_kernel(
    const MhaDims& dims, const masks::Mask& mask,
    const sparse::BsrMask& mask16, const gpusim::DeviceSpec& dev,
    const std::function<const sparse::BsrMask&(int, int)>& bsr_at,
    double tau = 12.0);

}  // namespace stof::mha
