// Variable-length batch attention (extension).
//
// Real inference batches mix sequences of different lengths; padding them
// to the batch maximum wastes quadratic attention work on rows and columns
// that contribute nothing (the problem ByteTransformer [65] is built
// around).  STOF's sparse machinery absorbs variable lengths naturally:
// each batch element's effective mask is the base pattern intersected with
// its valid square, and the block-sparse kernel skips the padded blocks
// like any other empty block.
#pragma once

#include <vector>

#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/mha/blockwise_kernel.hpp"

namespace stof::mha {

/// Per-element valid lengths of a padded batch.  A length of zero is a
/// fully padded element (every output row zero) — serving schedulers pack
/// ragged admission batches where an element can be empty.
///
/// `q_begins` (optional, empty = all zero) restricts each element to the
/// query rows in [q_begins[b], lengths[b]): the element still attends over
/// keys [0, lengths[b]) under its effective mask, but only the window's
/// rows are computed and written — the chunked-prefill primitive.  Every Q
/// block-row's streaming-softmax chain is independent, so the window's
/// output bytes equal the full call's bytes for those rows; rows outside
/// the window are zero.
struct VarlenBatch {
  std::int64_t seq_len = 0;             ///< padded length
  std::vector<std::int64_t> lengths;    ///< valid tokens per batch element
  std::vector<std::int64_t> q_begins;   ///< first query row per element

  [[nodiscard]] std::int64_t batch() const {
    return static_cast<std::int64_t>(lengths.size());
  }
  [[nodiscard]] std::int64_t total_valid_tokens() const {
    std::int64_t n = 0;
    for (const auto l : lengths) n += l;
    return n;
  }
  [[nodiscard]] std::int64_t q_begin(std::int64_t b) const {
    return q_begins.empty() ? 0 : q_begins[static_cast<std::size_t>(b)];
  }
  /// Fraction of padded (wasted) tokens under dense padding.
  [[nodiscard]] double padding_ratio() const {
    return 1.0 - static_cast<double>(total_valid_tokens()) /
                     static_cast<double>(batch() * seq_len);
  }
  void validate() const {
    STOF_EXPECTS(seq_len > 0 && !lengths.empty());
    STOF_EXPECTS(q_begins.empty() || q_begins.size() == lengths.size(),
                 "q_begins must be empty or match lengths");
    for (std::size_t b = 0; b < lengths.size(); ++b) {
      STOF_EXPECTS(lengths[b] >= 0 && lengths[b] <= seq_len,
                   "lengths must be in [0, seq_len]");
      if (!q_begins.empty()) {
        STOF_EXPECTS(q_begins[b] >= 0 && q_begins[b] <= lengths[b],
                     "q_begin must be in [0, length]");
      }
    }
  }
};

/// The base pattern restricted to one element's valid square:
/// mask(i, j) and i < len and j < len.  len == 0 yields the empty mask.
masks::Mask effective_mask(const masks::Mask& base, std::int64_t len);

/// Variable-length attention: Q/K/V are padded (batch*heads, seq, d);
/// padded query rows produce zero output; padded keys are never attended.
/// Functionally equals per-element attention under each effective mask.
TensorH varlen_attention(const MhaDims& dims, const TensorH& q,
                         const TensorH& k, const TensorH& v,
                         const masks::Mask& base_mask,
                         const VarlenBatch& batch,
                         const BlockwiseParams& params = {16, 16});

/// Simulated cost: one fused kernel whose work set is the union of the
/// per-element valid blocks (lengths deduplicated — equal lengths share a
/// BSR analysis).
gpusim::KernelCost varlen_cost(const MhaDims& dims,
                               const masks::Mask& base_mask,
                               const VarlenBatch& batch,
                               const BlockwiseParams& params,
                               const gpusim::DeviceSpec& dev);

}  // namespace stof::mha
