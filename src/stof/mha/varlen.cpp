#include "stof/mha/varlen.hpp"

#include <cstring>
#include <map>
#include <optional>

#include "stof/core/packed.hpp"
#include "stof/mha/panel_cache.hpp"
#include "stof/sparse/bsr_mask.hpp"

namespace stof::mha {

masks::Mask effective_mask(const masks::Mask& base, std::int64_t len) {
  STOF_EXPECTS(len >= 0 && len <= base.seq_len());
  masks::Mask m(base.seq_len());
  for (std::int64_t i = 0; i < len; ++i) {
    for (std::int64_t j = 0; j < len; ++j) {
      if (base.at(i, j)) m.set(i, j);
    }
  }
  return m;
}

TensorH varlen_attention(const MhaDims& dims, const TensorH& q,
                         const TensorH& k, const TensorH& v,
                         const masks::Mask& base_mask,
                         const VarlenBatch& batch,
                         const BlockwiseParams& params) {
  dims.validate();
  batch.validate();
  STOF_EXPECTS(batch.batch() == dims.batch,
               "batch lengths must match dims.batch");
  STOF_EXPECTS(batch.seq_len == dims.seq_len);
  STOF_EXPECTS(base_mask.seq_len() == dims.seq_len);
  TensorH out = make_output(dims, q, k, v);

  // Equal lengths share one BSR analysis.
  std::map<std::int64_t, sparse::BsrMask> bsr_by_len;
  for (const auto len : batch.lengths) {
    if (!bsr_by_len.contains(len)) {
      bsr_by_len.emplace(len, sparse::BsrMask::build(
                                  effective_mask(base_mask, len),
                                  params.block_m, params.block_n));
    }
  }

  // Packed mode: convert the whole batch's K/V panels once (through the
  // cross-call registry, keyed on the parent tensors) and hand them to
  // every per-element blockwise call below.  Without this, each element's
  // fresh kb/vb copies would defeat the storage-identity cache and the
  // batch would reconvert per element on every call.  Shared panels index
  // kv instances of the *parent* layout, so element b's instances start at
  // b * heads — only valid when every query head has its own K/V instance.
  std::optional<KvPanelCache> batch_panels;
  if (packed_execution_enabled() &&
      dims.kv_head_count() == dims.heads) {
    batch_panels.emplace(k, v, dims.kv_instances(), dims.seq_len,
                         dims.head_size, /*transpose_k=*/true,
                         &core::global_panel_cache(), params.kv_precision);
  }

  // One single-element attention per batch entry against its own BSR.  The
  // per-element and parent tensors share the (instance, seq, elem) layout,
  // so each head's slab moves with one contiguous copy.  Elements with a
  // query window run only the block rows covering [q_begin, len); the
  // windowed rows' bytes equal the full call's (independent per-row
  // softmax chains), which is what keeps chunked prefill bit-identical.
  const MhaDims per_element{1, dims.heads, dims.seq_len, dims.head_size};
  const std::size_t inst =
      static_cast<std::size_t>(dims.seq_len * dims.head_size);
  for (std::int64_t b = 0; b < dims.batch; ++b) {
    TensorH qb(per_element.qkv_shape()), kb(per_element.qkv_shape()),
        vb(per_element.qkv_shape());
    for (std::int64_t h = 0; h < dims.heads; ++h) {
      const auto src = static_cast<std::size_t>(b * dims.heads + h) * inst;
      const auto dst = static_cast<std::size_t>(h) * inst;
      std::memcpy(&qb.data()[dst], &q.data()[src], inst * sizeof(half));
      std::memcpy(&kb.data()[dst], &k.data()[src], inst * sizeof(half));
      std::memcpy(&vb.data()[dst], &v.data()[src], inst * sizeof(half));
    }
    const std::int64_t len = batch.lengths[static_cast<std::size_t>(b)];
    const auto& bsr = bsr_by_len.at(len);
    std::int64_t qb_lo = 0;
    std::int64_t qb_hi = -1;
    if (!batch.q_begins.empty()) {
      qb_lo = batch.q_begin(b) / params.block_m;
      qb_hi = (len + params.block_m - 1) / params.block_m;
    }
    const TensorH ob = blockwise_attention(
        per_element, qb, kb, vb, bsr, params, /*score_mod=*/nullptr,
        batch_panels ? &*batch_panels : nullptr, b * dims.heads, qb_lo, qb_hi);
    for (std::int64_t h = 0; h < dims.heads; ++h) {
      const auto src = static_cast<std::size_t>(h) * inst;
      const auto dst = static_cast<std::size_t>(b * dims.heads + h) * inst;
      std::memcpy(&out.data()[dst], &ob.data()[src], inst * sizeof(half));
    }
  }
  return out;
}

gpusim::KernelCost varlen_cost(const MhaDims& dims,
                               const masks::Mask& base_mask,
                               const VarlenBatch& batch,
                               const BlockwiseParams& params,
                               const gpusim::DeviceSpec& dev) {
  dims.validate();
  batch.validate();
  STOF_EXPECTS(batch.batch() == dims.batch);
  STOF_EXPECTS(batch.seq_len == dims.seq_len);

  // Accumulate per-element work using a single-element cost each, dedup by
  // (length, query window); launch overhead is paid once (one fused varlen
  // kernel).  Windowed elements charge only their block rows — a chunk's
  // cost scales with the chunk, not the whole prompt.
  std::map<std::pair<std::int64_t, std::int64_t>, gpusim::KernelCost>
      cost_by_len;
  const MhaDims per_element{1, dims.heads, dims.seq_len, dims.head_size};
  gpusim::KernelCost total;
  total.launches = 0;
  std::int64_t grid = 0;
  double occupancy = 1.0;
  int blocks_per_sm = 1;
  for (std::int64_t b = 0; b < batch.batch(); ++b) {
    const std::int64_t len = batch.lengths[static_cast<std::size_t>(b)];
    const std::int64_t q_begin = batch.q_begin(b);
    auto it = cost_by_len.find({len, q_begin});
    if (it == cost_by_len.end()) {
      const auto bsr = sparse::BsrMask::build(effective_mask(base_mask, len),
                                              params.block_m, params.block_n);
      std::int64_t qb_lo = 0;
      std::int64_t qb_hi = -1;
      if (!batch.q_begins.empty()) {
        qb_lo = q_begin / params.block_m;
        qb_hi = (len + params.block_m - 1) / params.block_m;
      }
      it = cost_by_len
               .emplace(std::pair{len, q_begin},
                        blockwise_cost(per_element, bsr, params, dev, qb_lo,
                                       qb_hi))
               .first;
    }
    const auto& c = it->second;
    total.tc_flops += c.tc_flops;
    total.cuda_flops += c.cuda_flops;
    total.gmem_read_bytes += c.gmem_read_bytes;
    total.gmem_write_bytes += c.gmem_write_bytes;
    total.smem_bytes += c.smem_bytes;
    grid += c.grid_blocks;
    occupancy = c.occupancy;
    blocks_per_sm = c.blocks_per_sm;
  }
  total.launches = 1;
  total.grid_blocks = grid;
  total.occupancy = occupancy;
  total.blocks_per_sm = blocks_per_sm;
  total.bank_conflict_factor = params.padding > 0 ? 1.0 : 2.5;
  total.overlap = params.async_copy ? 0.85 : 0.5;
  return total;
}

}  // namespace stof::mha
