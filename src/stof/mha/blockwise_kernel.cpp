#include "stof/mha/blockwise_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "stof/core/kernels.hpp"
#include "stof/core/packed.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/mha/panel_cache.hpp"
#include "stof/parallel/parallel_for.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::mha {

void BlockwiseParams::validate() const {
  const auto ok_block = [](int b) {
    return b >= 16 && (b & (b - 1)) == 0;  // power of two, multiple of 16
  };
  STOF_EXPECTS(ok_block(block_m) && ok_block(block_n),
               "BLOCK_M/BLOCK_N must be powers of two >= 16");
  STOF_EXPECTS(num_warps >= 1 && num_warps <= 32);
  STOF_EXPECTS(padding >= 0);
}

std::int64_t blockwise_req_smem_bytes(const BlockwiseParams& p,
                                      std::int64_t head_size) {
  // Paper Eq. 2 first line, FP16 elements -> bytes. The (2*BM + BN) term
  // covers the Q tile, the output accumulator tile, and the shared K/V
  // buffer; BM*(BN + padding) is the score tile.
  const std::int64_t w = head_size;
  const std::int64_t elems =
      (2 * static_cast<std::int64_t>(p.block_m) + p.block_n) *
          (w + p.padding) +
      static_cast<std::int64_t>(p.block_m) * (p.block_n + p.padding);
  return elems * 2;
}

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// Per-task state shared by the packed and scalar task bodies, allocated
/// from the worker chunk's scratch arena (zero steady-state heap traffic).
struct TaskState {
  std::span<float> m;    ///< running row maxima
  std::span<float> l;    ///< running softmax denominators
  std::span<float> acc;  ///< output accumulator, rows x d
  std::span<float> s;    ///< score / weight tile, rows x block_n
};

TaskState make_state(ScratchArena& arena, std::int64_t rows, std::int64_t d,
                     std::int64_t bn) {
  return TaskState{arena.alloc_filled(rows, kNegInf), arena.alloc_zeroed(rows),
                   arena.alloc_zeroed(rows * d), arena.alloc(rows * bn)};
}

}  // namespace

TensorH blockwise_attention(const MhaDims& dims, const TensorH& q,
                            const TensorH& k, const TensorH& v,
                            const sparse::BsrMask& mask,
                            const BlockwiseParams& params,
                            const ScoreMod& score_mod,
                            const KvPanelCache* shared_panels,
                            std::int64_t shared_kv_offset,
                            std::int64_t q_block_begin,
                            std::int64_t q_block_end) {
  params.validate();
  STOF_EXPECTS(mask.seq_len() == dims.seq_len, "mask must match seq_len");
  STOF_EXPECTS(mask.block_m() == params.block_m &&
                   mask.block_n() == params.block_n,
               "BSR block sizes must match kernel parameters");
  TensorH out = make_output(dims, q, k, v);

  const std::int64_t n = dims.seq_len;
  const std::int64_t d = dims.head_size;
  const std::int64_t bm = params.block_m;
  const std::int64_t bn = params.block_n;
  const float scale = dims.scale();
  if (q_block_end < 0) q_block_end = mask.rows();
  STOF_EXPECTS(q_block_begin >= 0 && q_block_begin <= q_block_end &&
                   q_block_end <= mask.rows(),
               "query block window must lie within the mask");
  const std::int64_t q_blocks = q_block_end - q_block_begin;
  if (q_blocks == 0) return out;
  const bool windowed = q_block_begin != 0 || q_block_end != mask.rows();

  // Block skip/load accounting is a property of the BSR mask (restricted to
  // the query window), so it is recorded once per call (not per task) and
  // is identical whichever execution path runs below.
  if (telemetry::enabled()) {
    const std::int64_t instances = dims.instances();
    std::int64_t valid = mask.valid_count();
    std::int64_t full = mask.full_count();
    std::int64_t part = mask.part_count();
    if (windowed) {
      const auto& ptr = mask.load_row_ptr();
      const auto& idx = mask.load_col_idx();
      valid = ptr[static_cast<std::size_t>(q_block_end)] -
              ptr[static_cast<std::size_t>(q_block_begin)];
      full = part = 0;
      for (std::int64_t bi = q_block_begin; bi < q_block_end; ++bi) {
        for (std::int64_t it = ptr[static_cast<std::size_t>(bi)];
             it < ptr[static_cast<std::size_t>(bi) + 1]; ++it) {
          const auto kind =
              mask.block_kind(bi, idx[static_cast<std::size_t>(it)]);
          (kind == sparse::BlockKind::kPart ? part : full) += 1;
        }
      }
    }
    const std::int64_t total = q_blocks * mask.cols();
    telemetry::count("sim.mha.blockwise_calls");
    telemetry::count("sim.mha.blocks_loaded", valid * instances);
    telemetry::count("sim.mha.blocks_skipped", (total - valid) * instances);
    telemetry::count("sim.mha.blocks_full", full * instances);
    telemetry::count("sim.mha.blocks_part", part * instances);
    telemetry::count(packed_execution_enabled()
                         ? "exec.mha.blockwise.packed_calls"
                         : "exec.mha.blockwise.scalar_calls");
  }
  telemetry::ScopedTimer timer("wall.mha.blockwise_us");

  const bool use_packed = packed_execution_enabled();
  // Panel-conversion cache: every K/V instance is converted half->float at
  // most once per *mutation* — instead of once per (Q-block row, valid
  // block) visit, or even once per call: the global registry keeps panels
  // across calls keyed on the K/V tensors' storage identity and version.
  // K is transposed (d x seq) so the QK^T saxpy streams key columns
  // unit-stride; V stays row-major so PV streams V rows unit-stride.  A
  // caller that already holds panels covering these instances (the varlen
  // wrapper) passes them in; `kv_off` maps this problem's kv instances
  // into the shared cache's instance space.
  const KvPanelCache* panel_cache = shared_panels;
  std::int64_t kv_off = shared_kv_offset;
  std::optional<KvPanelCache> panels;
  if (use_packed) {
    if (panel_cache == nullptr) {
      panels.emplace(k, v, dims.kv_instances(), n, d, /*transpose_k=*/true,
                     &core::global_panel_cache(), params.kv_precision);
      panel_cache = &*panels;
      kv_off = 0;
    } else {
      STOF_EXPECTS(panel_cache->seq() == n && panel_cache->head_size() == d,
                   "shared panels must match the problem geometry");
      STOF_EXPECTS(panel_cache->precision() == params.kv_precision,
                   "shared panels must match the requested precision");
      STOF_EXPECTS(kv_off >= 0, "kv offset must be non-negative");
    }
  }
  const bool int8_kv =
      use_packed && params.kv_precision == core::PanelPrecision::kInt8;

  const auto& load_ptr = mask.load_row_ptr();
  const auto& load_idx = mask.load_col_idx();

  parallel_for_scratch(0, dims.instances() * q_blocks, [&](std::int64_t task,
                                                           ScratchArena&
                                                               arena) {
    const std::int64_t bh = task / q_blocks;
    const std::int64_t kv = dims.kv_instance_of(bh);
    const std::int64_t bi = q_block_begin + task % q_blocks;
    const std::int64_t row_lo = bi * bm;
    const std::int64_t row_hi = std::min(n, row_lo + bm);
    const std::int64_t rows = row_hi - row_lo;
    TaskState st = make_state(arena, rows, d, bn);

    if (use_packed) {
      // ---- Packed fast path: micro-kernels over cached FP32 panels. ----
      const core::KernelTable& ktab = core::kernels();
      const float* kt = int8_kv ? nullptr : panel_cache->kt_panel(kv_off + kv);
      const float* vf = int8_kv ? nullptr : panel_cache->v_panel(kv_off + kv);
      auto q_tile = arena.alloc(rows * d);
      packed::half_to_float(
          q.data().subspan(static_cast<std::size_t>((bh * n + row_lo) * d),
                           q_tile.size()),
          q_tile);
      auto pv = arena.alloc(rows * d);
      auto corr = arena.alloc(rows);
      // INT8 tier state: quantized Q rows (one scale per row), the block's
      // K/V codes, and a per-block weight-tile quantization buffer.  The
      // int8 code buffers live in the float arena via the always-legal
      // signed-char aliasing of its storage.
      const std::int8_t* k8t = nullptr;
      const std::int8_t* v8 = nullptr;
      float k_sc = 0.0f;
      float v_sc = 0.0f;
      std::int8_t* q8 = nullptr;
      std::int8_t* w8 = nullptr;
      std::span<float> q_scales, w_scales;
      if (int8_kv) {
        k8t = panel_cache->kt_panel_i8(kv_off + kv);
        v8 = panel_cache->v_panel_i8(kv_off + kv);
        k_sc = panel_cache->k_scale(kv_off + kv);
        v_sc = panel_cache->v_scale(kv_off + kv);
        q8 = reinterpret_cast<std::int8_t*>(
            arena.alloc((rows * d + 3) / 4).data());
        q_scales = arena.alloc(rows);
        packed::quantize_floats(q_tile.data(), rows * d, d, q8,
                                q_scales.data());
        w8 = reinterpret_cast<std::int8_t*>(
            arena.alloc((rows * bn + 3) / 4).data());
        w_scales = arena.alloc(rows);
      }
      std::int64_t full_fast_blocks = 0;

      for (std::int64_t it = load_ptr[static_cast<std::size_t>(bi)];
           it < load_ptr[static_cast<std::size_t>(bi) + 1]; ++it) {
        const std::int64_t bj = load_idx[static_cast<std::size_t>(it)];
        const std::int64_t col_lo = bj * bn;
        const std::int64_t col_hi = std::min(n, col_lo + bn);
        const std::int64_t cols = col_hi - col_lo;
        const sparse::BlockKind kind = mask.block_kind(bi, bj);
        const std::vector<std::uint8_t>* bitmap =
            kind == sparse::BlockKind::kPart ? &mask.part_bitmap(bi, bj)
                                             : nullptr;

        // S = (Q_i K_j^T): zero the score window, then accumulate with the
        // register-tiled saxpy micro-kernel over the transposed K panel —
        // the inner loop runs unit-stride over this block's key columns.
        // A dot that starts at 0.0f and adds its d terms ascending rounds
        // exactly like the scalar `dot += q*k` loop.
        for (std::int64_t r = 0; r < rows; ++r) {
          std::fill_n(st.s.data() + r * bn, cols, 0.0f);
        }
        if (int8_kv) {
          core::note_kernel_dispatch("sgemm_i8_accumulate_ld");
          ktab.sgemm_i8_accumulate_ld(q8, d, k8t + col_lo, n, st.s.data(), bn,
                                      rows, d, cols, q_scales.data(), k_sc);
        } else {
          packed::sgemm_accumulate_ld(q_tile.data(), d, kt + col_lo, n,
                                      st.s.data(), bn, rows, d, cols);
        }
        const bool full_fast = bitmap == nullptr && !score_mod;
        if (full_fast) {
          // Full-block fast path: plain unit-stride scaling, no per-element
          // bitmap or score-mod branches, and no -inf handling below (a
          // full block's scores are all finite).
          ++full_fast_blocks;
          for (std::int64_t r = 0; r < rows; ++r) {
            ktab.scale_inplace(st.s.data() + r * bn, scale, cols);
          }
        } else if (!score_mod) {
          // Part block without a score-mod (the common sparse case): the
          // bitmap apply is a branch-free select, vectorizable.
          const std::uint8_t* bits = bitmap->data();
          for (std::int64_t r = 0; r < rows; ++r) {
            float* s_row = st.s.data() + r * bn;
            const std::uint8_t* b_row = bits + r * bn;
            for (std::int64_t c = 0; c < cols; ++c) {
              s_row[c] = b_row[c] ? s_row[c] * scale : kNegInf;
            }
          }
        } else {
          for (std::int64_t r = 0; r < rows; ++r) {
            float* s_row = st.s.data() + r * bn;
            for (std::int64_t c = 0; c < cols; ++c) {
              float sv = score_mod(bh, row_lo + r, col_lo + c,
                                   s_row[c] * scale);
              if (bitmap != nullptr &&
                  !(*bitmap)[static_cast<std::size_t>(r * bn + c)]) {
                sv = kNegInf;
              }
              s_row[c] = sv;
            }
          }
        }

        // Online softmax: update per-row state and turn scores into
        // weights in place.  Rows are independent, so splitting the weight
        // pass from the PV tile GEMM below reorders nothing within any
        // output element's accumulation chain.
        for (std::int64_t r = 0; r < rows; ++r) {
          float* s_row = st.s.data() + r * bn;
          // max is exact, so the vectorized reduction matches the scalar
          // running max bit-for-bit.
          const float row_max = ktab.reduce_max(s_row, cols);
          if (row_max == kNegInf) {
            corr[static_cast<std::size_t>(r)] = -1.0f;  // fully masked row
            continue;
          }
          const float m_old = st.m[static_cast<std::size_t>(r)];
          const float m_new = std::max(m_old, row_max);
          const float correction =
              (st.l[static_cast<std::size_t>(r)] == 0.0f)
                  ? 0.0f
                  : std::exp(m_old - m_new);
          float block_sum = 0;
          if (full_fast) {
            for (std::int64_t c = 0; c < cols; ++c) {
              const float w = std::exp(s_row[c] - m_new);
              s_row[c] = w;
              block_sum += w;
            }
          } else {
            for (std::int64_t c = 0; c < cols; ++c) {
              const float sv = s_row[c];
              const float w = sv == kNegInf ? 0.0f : std::exp(sv - m_new);
              s_row[c] = w;
              block_sum += w;
            }
          }
          st.l[static_cast<std::size_t>(r)] =
              st.l[static_cast<std::size_t>(r)] * correction + block_sum;
          corr[static_cast<std::size_t>(r)] = correction;
          st.m[static_cast<std::size_t>(r)] = m_new;
        }

        // PV tile GEMM: weights x the block's V rows, saxpy over the head
        // dimension (unit-stride V rows), key index ascending per output.
        // Fully masked rows still hold raw -inf scores; their products are
        // computed and discarded at the merge below.
        std::fill_n(pv.data(), rows * d, 0.0f);
        if (int8_kv) {
          // Quantize the weight tile per row (valid cols only — the tail of
          // each bn-row is stale scratch).  Fully masked rows still hold
          // raw -inf scores; their PV contribution is discarded at the
          // merge below, so emit zero codes instead of quantizing -inf.
          for (std::int64_t r = 0; r < rows; ++r) {
            if (corr[static_cast<std::size_t>(r)] < 0.0f) {
              w_scales[static_cast<std::size_t>(r)] = 0.0f;
              std::memset(w8 + r * bn, 0, static_cast<std::size_t>(cols));
              continue;
            }
            const float* s_row = st.s.data() + r * bn;
            const auto qp = core::quant_params(ktab.abs_max(s_row, cols));
            w_scales[static_cast<std::size_t>(r)] = qp.scale;
            ktab.quantize_i8(s_row, w8 + r * bn, cols, qp.inv_scale);
          }
          core::note_kernel_dispatch("sgemm_i8_accumulate_ld");
          ktab.sgemm_i8_accumulate_ld(w8, bn, v8 + col_lo * d, d, pv.data(),
                                      d, rows, cols, d, w_scales.data(), v_sc);
        } else {
          packed::sgemm_accumulate_ld(st.s.data(), bn, vf + col_lo * d, d,
                                      pv.data(), d, rows, cols, d);
        }
        for (std::int64_t r = 0; r < rows; ++r) {
          const float c_r = corr[static_cast<std::size_t>(r)];
          if (c_r < 0.0f) continue;
          // acc = acc*corr + 1.0*pv — alpha == 1 makes the product exact,
          // so this is the scalar `acc*corr + pv` merge bit-for-bit.
          ktab.axpby(st.acc.data() + r * d, pv.data() + r * d, c_r, 1.0f, d);
        }
      }
      if (full_fast_blocks > 0) {
        telemetry::count("exec.mha.blockwise.full_fast_blocks",
                         full_fast_blocks);
      }

      // Epilogue: normalize and store (one rounding per output element).
      for (std::int64_t r = 0; r < rows; ++r) {
        const float denom = st.l[static_cast<std::size_t>(r)];
        const float inv = denom == 0.0f ? 0.0f : 1.0f / denom;
        ktab.scale_inplace(st.acc.data() + r * d, inv, d);
      }
      packed::float_to_half(
          st.acc,
          out.data().subspan(static_cast<std::size_t>((bh * n + row_lo) * d),
                             st.acc.size()));
      return;
    }

    // ---- Scalar reference path: per-element conversions via at(). ----
    for (std::int64_t it = load_ptr[static_cast<std::size_t>(bi)];
         it < load_ptr[static_cast<std::size_t>(bi) + 1]; ++it) {
      const std::int64_t bj = load_idx[static_cast<std::size_t>(it)];
      const std::int64_t col_lo = bj * bn;
      const std::int64_t col_hi = std::min(n, col_lo + bn);
      const std::int64_t cols = col_hi - col_lo;
      const sparse::BlockKind kind = mask.block_kind(bi, bj);
      const std::vector<std::uint8_t>* bitmap =
          kind == sparse::BlockKind::kPart ? &mask.part_bitmap(bi, bj)
                                           : nullptr;

      // S = (Q_i K_j^T) * scale — the first wmma tile GEMM.
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t c = 0; c < cols; ++c) {
          float dot = 0;
          for (std::int64_t e = 0; e < d; ++e) {
            dot += float(q.at(bh, row_lo + r, e)) *
                   float(k.at(kv, col_lo + c, e));
          }
          float sv = dot * scale;
          if (score_mod) {
            sv = score_mod(bh, row_lo + r, col_lo + c, sv);
          }
          // Part blocks load their broadcast bitmap; full blocks skip it.
          if (bitmap != nullptr &&
              !(*bitmap)[static_cast<std::size_t>(r * bn + c)]) {
            sv = kNegInf;
          }
          st.s[static_cast<std::size_t>(r * bn + c)] = sv;
        }
      }

      // Online softmax update + PV accumulation (second tile GEMM).
      for (std::int64_t r = 0; r < rows; ++r) {
        float row_max = kNegInf;
        for (std::int64_t c = 0; c < cols; ++c) {
          row_max =
              std::max(row_max, st.s[static_cast<std::size_t>(r * bn + c)]);
        }
        if (row_max == kNegInf) continue;
        const float m_old = st.m[static_cast<std::size_t>(r)];
        const float m_new = std::max(m_old, row_max);
        const float correction =
            (st.l[static_cast<std::size_t>(r)] == 0.0f)
                ? 0.0f
                : std::exp(m_old - m_new);
        float block_sum = 0;
        for (std::int64_t c = 0; c < cols; ++c) {
          const float sv = st.s[static_cast<std::size_t>(r * bn + c)];
          const float w = sv == kNegInf ? 0.0f : std::exp(sv - m_new);
          st.s[static_cast<std::size_t>(r * bn + c)] = w;
          block_sum += w;
        }
        st.l[static_cast<std::size_t>(r)] =
            st.l[static_cast<std::size_t>(r)] * correction + block_sum;
        for (std::int64_t e = 0; e < d; ++e) {
          float pv = 0;
          for (std::int64_t c = 0; c < cols; ++c) {
            pv += st.s[static_cast<std::size_t>(r * bn + c)] *
                  float(v.at(kv, col_lo + c, e));
          }
          st.acc[static_cast<std::size_t>(r * d + e)] =
              st.acc[static_cast<std::size_t>(r * d + e)] * correction + pv;
        }
        st.m[static_cast<std::size_t>(r)] = m_new;
      }
    }

    // Epilogue: normalize and store. Fully masked rows emit zeros.
    for (std::int64_t r = 0; r < rows; ++r) {
      const float denom = st.l[static_cast<std::size_t>(r)];
      const float inv = denom == 0.0f ? 0.0f : 1.0f / denom;
      for (std::int64_t e = 0; e < d; ++e) {
        out.at(bh, row_lo + r, e) =
            half(st.acc[static_cast<std::size_t>(r * d + e)] * inv);
      }
    }
  });
  return out;
}

gpusim::KernelCost blockwise_cost(const MhaDims& dims,
                                  const sparse::BsrMask& mask,
                                  const BlockwiseParams& p,
                                  const gpusim::DeviceSpec& dev,
                                  std::int64_t q_block_begin,
                                  std::int64_t q_block_end) {
  p.validate();
  dims.validate();
  if (q_block_end < 0) q_block_end = mask.rows();
  STOF_EXPECTS(q_block_begin >= 0 && q_block_begin <= q_block_end &&
                   q_block_end <= mask.rows(),
               "query block window must lie within the mask");
  const bool windowed = q_block_begin != 0 || q_block_end != mask.rows();
  const double instances = static_cast<double>(dims.instances());
  const double d = static_cast<double>(dims.head_size);
  const double bm = p.block_m;
  const double bn = p.block_n;
  std::int64_t valid_blocks = mask.valid_count();
  std::int64_t part_blocks = mask.part_count();
  // A windowed launch runs only the window's block rows: count its valid
  // and part blocks from the load lists.  Its Q read / output write shrink
  // to the window's token rows; K/V, bitmap, and metadata traffic follow
  // the windowed block population.
  if (windowed) {
    const auto& ptr = mask.load_row_ptr();
    const auto& idx = mask.load_col_idx();
    valid_blocks = ptr[static_cast<std::size_t>(q_block_end)] -
                   ptr[static_cast<std::size_t>(q_block_begin)];
    part_blocks = 0;
    for (std::int64_t bi = q_block_begin; bi < q_block_end; ++bi) {
      for (std::int64_t it = ptr[static_cast<std::size_t>(bi)];
           it < ptr[static_cast<std::size_t>(bi) + 1]; ++it) {
        if (mask.block_kind(bi, idx[static_cast<std::size_t>(it)]) ==
            sparse::BlockKind::kPart) {
          ++part_blocks;
        }
      }
    }
  }
  const double window_tokens =
      windowed ? static_cast<double>(
                     std::min(dims.seq_len, q_block_end * p.block_m) -
                     q_block_begin * p.block_m)
               : static_cast<double>(dims.seq_len);
  const double valid = static_cast<double>(valid_blocks);
  // Only part blocks pay the bitmap apply; full blocks take the mask-free
  // fast path (BsrMask classifies a block kFull iff every in-range element
  // is valid, so `part_count` is exactly the bitmap-loading population).
  const double part =
      p.treat_full_as_part ? valid : static_cast<double>(part_blocks);
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  // Two tile GEMMs per valid block on tensor cores: QK^T and PV.
  c.tc_flops = instances * valid * (2.0 * bm * bn * d) * 2.0;
  // Softmax bookkeeping on CUDA cores; part blocks add the mask apply.
  c.cuda_flops = instances * (valid * bm * bn * 6.0 + part * bm * bn);

  // Loads: Q once; K and V tiles once per valid block in the Q-block's
  // row; part bitmaps are deduplicated in memory, so repeated bitmaps hit
  // L2 and DRAM sees each unique bitmap once per instance.
  const double kv_share = static_cast<double>(dims.kv_head_count()) /
                          static_cast<double>(dims.heads);
  const double kv_tiles = instances * valid * bn * d * kElem * 2.0;
  const double kv_dram = kv_tiles * kv_share;  // groups share K/V via L2
  const double unique_bitmap_bytes =
      (p.treat_full_as_part
           ? valid
           : std::min(static_cast<double>(mask.unique_part_masks()), part)) *
      bm * bn;
  const double metadata_bytes =
      static_cast<double>(mask.storage_bytes());
  c.gmem_read_bytes = instances * window_tokens * d * kElem +
                      kv_dram + instances * unique_bitmap_bytes +
                      metadata_bytes;
  c.gmem_write_bytes = instances * window_tokens * d * kElem;

  // SMEM traffic: every loaded tile is written to and read from shared
  // memory; scores make one extra round trip for the softmax pass.
  c.smem_bytes = 2.0 * kv_tiles +
                 2.0 * instances * valid * bm * bn * kElem;
  c.bank_conflict_factor = p.padding > 0 ? 1.0 : 2.5;

  const auto occ =
      gpusim::occupancy(dev, blockwise_req_smem_bytes(p, dims.head_size),
                        p.num_warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = dims.instances() * (q_block_end - q_block_begin);
  c.overlap = p.async_copy ? 0.85 : 0.5;
  return c;
}

}  // namespace stof::mha
