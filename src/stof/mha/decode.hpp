// Single-token decode attention over a KV cache (extension).
//
// Autoregressive generation issues one query row per step against the
// cached keys/values of the context — the degenerate case of the row-wise
// kernel (one warp per (batch, head) instance, no softmax streaming needed
// beyond a single pass).  The paper's conclusion points at "other DNN
// scenarios"; this is the decode-side one, and it reuses the row-wise
// sparse machinery: the step's attendable context positions come from the
// last row of the (ctx+1)-token mask.
#pragma once

#include <vector>

#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"

namespace stof::mha {

/// Dimensions of one decode step.
struct DecodeDims {
  std::int64_t batch = 1;
  std::int64_t heads = 12;
  std::int64_t context_len = 0;  ///< cached tokens the new token may see
  std::int64_t head_size = 64;

  [[nodiscard]] std::int64_t instances() const { return batch * heads; }
  [[nodiscard]] float scale() const {
    return 1.0f / std::sqrt(static_cast<float>(head_size));
  }
  void validate() const {
    STOF_EXPECTS(batch > 0 && heads > 0 && context_len > 0 && head_size > 0);
  }
};

/// The context positions a new token attends to: the valid columns of the
/// query row `row` of `mask`, restricted to [0, context_len).
std::vector<std::int32_t> decode_columns(const masks::Mask& mask,
                                         std::int64_t row,
                                         std::int64_t context_len);

/// One decode step: q is (batch*heads, 1, head_size); k_cache/v_cache are
/// (batch*heads, context_len, head_size).  Returns (batch*heads, 1,
/// head_size).  `cols` lists the attendable cache positions (shared across
/// batch and heads); an empty list yields zeros.
TensorH decode_attention(const DecodeDims& dims, const TensorH& q,
                         const TensorH& k_cache, const TensorH& v_cache,
                         const std::vector<std::int32_t>& cols);

/// Simulated cost of one decode-step kernel launch.
gpusim::KernelCost decode_cost(const DecodeDims& dims,
                               std::int64_t valid_cols,
                               const gpusim::DeviceSpec& dev);

}  // namespace stof::mha
