// Single-token decode attention over a KV cache (extension).
//
// Autoregressive generation issues one query row per step against the
// cached keys/values of the context — the degenerate case of the row-wise
// kernel (one warp per (batch, head) instance, no softmax streaming needed
// beyond a single pass).  The paper's conclusion points at "other DNN
// scenarios"; this is the decode-side one, and it reuses the row-wise
// sparse machinery: the step's attendable context positions come from the
// last row of the (ctx+1)-token mask.
#pragma once

#include <span>
#include <vector>

#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"

namespace stof::mha {

/// Dimensions of one decode step.
struct DecodeDims {
  std::int64_t batch = 1;
  std::int64_t heads = 12;
  std::int64_t context_len = 0;  ///< cached tokens the new token may see
  std::int64_t head_size = 64;

  [[nodiscard]] std::int64_t instances() const { return batch * heads; }
  [[nodiscard]] float scale() const {
    return 1.0f / std::sqrt(static_cast<float>(head_size));
  }
  void validate() const {
    STOF_EXPECTS(batch > 0 && heads > 0 && context_len > 0 && head_size > 0);
  }
};

/// The context positions a new token attends to: the valid columns of the
/// query row `row` of `mask`, restricted to [0, context_len).
std::vector<std::int32_t> decode_columns(const masks::Mask& mask,
                                         std::int64_t row,
                                         std::int64_t context_len);

/// One decode step: q is (batch*heads, 1, head_size); k_cache/v_cache are
/// (batch*heads, context_len, head_size).  Returns (batch*heads, 1,
/// head_size).  `cols` lists the attendable cache positions (shared across
/// batch and heads); an empty list yields zeros.
TensorH decode_attention(const DecodeDims& dims, const TensorH& q,
                         const TensorH& k_cache, const TensorH& v_cache,
                         const std::vector<std::int32_t>& cols);

/// Simulated cost of one decode-step kernel launch.
gpusim::KernelCost decode_cost(const DecodeDims& dims,
                               std::int64_t valid_cols,
                               const gpusim::DeviceSpec& dev);

// ---- Batched ragged decode over a paged KV-cache (serving extension) ------

/// One sequence's view of a paged KV-cache for a batched decode step.
///
/// Block i holds positions [i*block_tokens, (i+1)*block_tokens); each block
/// is (block_tokens, heads, head_size) row-major half, so a serving KV pool
/// can hand out non-contiguous fixed-size pages without gathering.
struct PagedSeq {
  std::int64_t context_len = 0;   ///< cached tokens this query may see
  std::int64_t block_tokens = 0;  ///< positions per KV block (power of two)
  std::span<const half* const> k_blocks;
  std::span<const half* const> v_blocks;
  /// Attendable positions, ascending, all in [0, context_len).
  std::span<const std::int32_t> cols;
  /// Optional pre-converted FP32 views of the same blocks (the KV pool's
  /// float-panel sidecar).  When present (both or neither), the packed
  /// path reads these instead of converting half loads element-wise —
  /// the conversion is exact, so outputs are unchanged bit-for-bit.
  /// Each float block mirrors its half block's layout and must cover at
  /// least the first context_len rows.
  std::span<const float* const> kf_blocks;
  std::span<const float* const> vf_blocks;
  /// Optional INT8-quantized views of the same blocks (the KV pool's INT8
  /// sidecar tier).  Each int8 block mirrors its half block's layout; the
  /// matching scales span holds one symmetric scale per token row (a
  /// heads*head_size quantization group), so codes depend only on that
  /// row's values and decode stays deterministic under incremental page
  /// fill.  When present (all four or none), the packed path runs the
  /// whole step in INT8 — scores and PV in exact int32 dot products with a
  /// float epilogue — which is deterministic across ISAs but *not*
  /// bit-identical to FP32; the serving engine gates it behind an explicit
  /// kv-precision policy.  Takes precedence over the float sidecar.
  std::span<const std::int8_t* const> k8_blocks;
  std::span<const std::int8_t* const> v8_blocks;
  std::span<const float* const> k8_scales;  ///< per block: block_tokens scales
  std::span<const float* const> v8_scales;  ///< per block: block_tokens scales

  void validate(std::int64_t heads, std::int64_t head_size) const;
};

/// Batched ragged decode: q is (seqs.size()*heads, 1, head_size), sequence
/// s owning query instances [s*heads, (s+1)*heads); returns the same shape.
/// Every (sequence, head) instance is independent, so results do not depend
/// on how sequences are batched together.
///
/// The context is streamed block-by-block with the block-wise kernel's
/// streaming-softmax update order (block max, correction, ascending-column
/// weight sum, then the PV accumulate).  Masked columns inside a visited
/// block contribute exact zeros there, so a chain of single-token paged
/// decode steps is bit-identical to one full-sequence blockwise pass over
/// the same mask when block_tokens == BLOCK_N — the invariant the serving
/// engine's preemption/recompute path relies on.
TensorH decode_attention_paged(std::int64_t heads, std::int64_t head_size,
                               std::span<const PagedSeq> seqs,
                               const TensorH& q);

/// Simulated cost of one batched paged-decode kernel launch over sequences
/// with the given attended-column counts (one warp per (seq, head)).
gpusim::KernelCost decode_batched_cost(std::int64_t heads,
                                       std::int64_t head_size,
                                       std::span<const std::int64_t> valid_cols,
                                       const gpusim::DeviceSpec& dev);

/// Simulated cost of one speculative *verification* launch: sequence s
/// contributes `seq_rows[s]` consecutive query rows (the true token plus
/// its drafts), with `valid_cols` holding the per-row attended-column
/// counts flattened in the same order (sum(seq_rows) == valid_cols.size()).
/// Math and q/output traffic are charged per row, exactly as
/// decode_batched_cost; KV-page DRAM traffic is charged once per sequence
/// at the row maximum — the verify rows attend nested prefixes of the same
/// context, so rows past the first are L2/SMEM hits, which is the
/// bandwidth saving that makes one k-row verification launch cheaper than
/// k sequential decode launches.
gpusim::KernelCost decode_verify_cost(std::int64_t heads,
                                      std::int64_t head_size,
                                      std::span<const std::int64_t> valid_cols,
                                      std::span<const std::int64_t> seq_rows,
                                      const gpusim::DeviceSpec& dev);

}  // namespace stof::mha
