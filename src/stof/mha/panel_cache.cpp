#include "stof/mha/panel_cache.hpp"

#include "stof/core/packed.hpp"
#include "stof/parallel/parallel_for.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::mha {
namespace {

/// Row-major conversion of destination elements [lo, hi); source and
/// destination offsets coincide, so partial ranges are exact.
void convert_rows(const TensorH& src, std::int64_t lo, std::int64_t hi,
                  float* dst) {
  packed::half_to_float(
      src.data().subspan(static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi - lo)),
      {dst + lo, static_cast<std::size_t>(hi - lo)});
}

/// Full convert-and-transpose of every instance panel: (seq x d) half in,
/// kv_instances contiguous (d x seq) float panels out.  Tiled so both the
/// strided reads and the contiguous writes stay cache-resident.
void convert_transposed(const TensorH& k, std::int64_t kv_instances,
                        std::int64_t seq, std::int64_t d, float* out) {
  const float* table = packed::h2f_table();
  const std::int64_t panel = seq * d;
  parallel_for(0, kv_instances, [&](std::int64_t kv) {
    const half* src = k.data().data() + kv * panel;
    float* dst = out + kv * panel;
    constexpr std::int64_t kT = 32;
    for (std::int64_t j0 = 0; j0 < seq; j0 += kT) {
      const std::int64_t j1 = std::min(seq, j0 + kT);
      for (std::int64_t e0 = 0; e0 < d; e0 += kT) {
        const std::int64_t e1 = std::min(d, e0 + kT);
        for (std::int64_t j = j0; j < j1; ++j) {
          for (std::int64_t e = e0; e < e1; ++e) {
            dst[e * seq + j] = table[src[j * d + e].bits()];
          }
        }
      }
    }
  });
}

/// Parallel row-major conversion of all instance panels.
void convert_row_major(const TensorH& t, std::int64_t kv_instances,
                       std::int64_t panel, float* out) {
  parallel_for(0, kv_instances, [&](std::int64_t kv) {
    convert_rows(t, kv * panel, (kv + 1) * panel, out);
  });
}

}  // namespace

KvPanelCache::KvPanelCache(const TensorH& k, const TensorH& v,
                           std::int64_t kv_instances, std::int64_t seq,
                           std::int64_t head_size, bool transpose_k,
                           core::PanelCacheRegistry* registry,
                           core::PanelPrecision precision)
    : seq_(seq),
      d_(head_size),
      transposed_k_(transpose_k),
      precision_(precision) {
  const std::int64_t panel = seq_ * d_;
  const std::int64_t total = kv_instances * panel;
  STOF_EXPECTS(static_cast<std::int64_t>(k.data().size()) == total &&
                   k.data().size() == v.data().size(),
               "K/V storage must be kv_instances contiguous (seq x d) panels");

  std::int64_t converted_panels = 0;
  if (precision_ == core::PanelPrecision::kInt8) {
    // INT8 tier: one symmetric scale per instance panel, codes in the same
    // layout the float tier would use (K optionally transposed).  The
    // transposed K codes quantize a transposed float staging buffer so the
    // scale still covers exactly one instance's values.
    const auto k_quant = [&](std::int8_t* codes, float* scales) {
      if (transpose_k) {
        std::vector<float> staged(static_cast<std::size_t>(total));
        convert_transposed(k, kv_instances, seq_, d_, staged.data());
        packed::quantize_floats(staged.data(), total, panel, codes, scales);
      } else {
        packed::quantize_halfs(k.data(), panel, codes, scales);
      }
    };
    const auto v_quant = [&](std::int8_t* codes, float* scales) {
      packed::quantize_halfs(v.data(), panel, codes, scales);
    };
    if (registry != nullptr) {
      const std::uint64_t k_layout =
          transpose_k ? core::kPanelTransposed |
                            (static_cast<std::uint64_t>(seq_) << 8) |
                            (static_cast<std::uint64_t>(d_) << 36)
                      : core::kPanelRowMajor;
      const auto wrap = [total](const auto& quant) {
        return [total, &quant](std::int64_t lo, std::int64_t hi,
                               std::int8_t* codes, float* scales) {
          STOF_CHECK(lo == 0 && hi == total,
                     "whole-tensor panels convert in full");
          quant(codes, scales);
        };
      };
      k8_ref_ = registry->get_or_convert_int8(
          {k.storage_id(), k_layout | core::kPanelInt8}, k.version(), total,
          total, panel, wrap(k_quant));
      v8_ref_ = registry->get_or_convert_int8(
          {v.storage_id(), core::kPanelRowMajor | core::kPanelInt8},
          v.version(), total, total, panel, wrap(v_quant));
      k8_data_ = k8_ref_.data();
      v8_data_ = v8_ref_.data();
      k_scales_ = k8_ref_.scale_data();
      v_scales_ = v8_ref_.scale_data();
      if (k8_ref_.converted_elems > 0) converted_panels += kv_instances;
      if (v8_ref_.converted_elems > 0) converted_panels += kv_instances;
    } else {
      k_i8_.resize(static_cast<std::size_t>(total));
      v_i8_.resize(static_cast<std::size_t>(total));
      k_scales_own_.resize(static_cast<std::size_t>(kv_instances));
      v_scales_own_.resize(static_cast<std::size_t>(kv_instances));
      k_quant(k_i8_.data(), k_scales_own_.data());
      v_quant(v_i8_.data(), v_scales_own_.data());
      k8_data_ = k_i8_.data();
      v8_data_ = v_i8_.data();
      k_scales_ = k_scales_own_.data();
      v_scales_ = v_scales_own_.data();
      converted_panels = 2 * kv_instances;
    }
    if (converted_panels > 0) {
      telemetry::count("exec.mha.panels_converted", converted_panels);
    }
    return;
  }
  if (registry != nullptr) {
    // Cross-call mode: panels are keyed on each tensor's storage identity
    // (plus layout variant) and tagged with its mutation stamp, so an
    // unmodified tensor converts once across any number of kernel calls
    // while any write forces a fresh conversion.  These whole-tensor
    // panels never extend incrementally — a version bump reconverts all
    // of them — so the converter always receives the full [0, total).
    const auto k_convert = [&](std::int64_t lo, std::int64_t hi, float* dst) {
      STOF_CHECK(lo == 0 && hi == total,
                 "whole-tensor panels convert in full");
      if (transpose_k) {
        convert_transposed(k, kv_instances, seq_, d_, dst);
      } else {
        convert_row_major(k, kv_instances, panel, dst);
      }
    };
    const auto v_convert = [&](std::int64_t lo, std::int64_t hi, float* dst) {
      STOF_CHECK(lo == 0 && hi == total,
                 "whole-tensor panels convert in full");
      convert_row_major(v, kv_instances, panel, dst);
    };
    // A transposed panel's layout depends on the (seq, d) factorisation,
    // so the variant encodes it; row-major layout is factorisation-free.
    const std::uint64_t k_variant =
        transpose_k ? core::kPanelTransposed |
                          (static_cast<std::uint64_t>(seq_) << 8) |
                          (static_cast<std::uint64_t>(d_) << 36)
                    : core::kPanelRowMajor;
    k_ref_ = registry->get_or_convert({k.storage_id(), k_variant}, k.version(),
                                      total, total, k_convert);
    v_ref_ = registry->get_or_convert({v.storage_id(), core::kPanelRowMajor},
                                      v.version(), total, total, v_convert);
    k_data_ = k_ref_.data();
    v_data_ = v_ref_.data();
    if (k_ref_.converted_elems > 0) converted_panels += kv_instances;
    if (v_ref_.converted_elems > 0) converted_panels += kv_instances;
  } else {
    // Owning mode: per-call conversion (every construction pays in full).
    k_f32_.resize(static_cast<std::size_t>(total));
    v_f32_.resize(static_cast<std::size_t>(total));
    if (transpose_k) {
      convert_transposed(k, kv_instances, seq_, d_, k_f32_.data());
    } else {
      convert_row_major(k, kv_instances, panel, k_f32_.data());
    }
    convert_row_major(v, kv_instances, panel, v_f32_.data());
    k_data_ = k_f32_.data();
    v_data_ = v_f32_.data();
    converted_panels = 2 * kv_instances;
  }
  // One K and one V panel per instance when conversion actually ran;
  // registry hits reuse earlier conversions and count nothing.
  if (converted_panels > 0) {
    telemetry::count("exec.mha.panels_converted", converted_panels);
  }
}

const float* KvPanelCache::k_panel(std::int64_t kv) const {
  STOF_EXPECTS(!transposed_k_, "cache holds transposed K panels");
  STOF_EXPECTS(precision_ == core::PanelPrecision::kFloat32,
               "cache holds int8 panels");
  return k_data_ + kv * seq_ * d_;
}

const float* KvPanelCache::kt_panel(std::int64_t kv) const {
  STOF_EXPECTS(transposed_k_, "cache holds row-major K panels");
  STOF_EXPECTS(precision_ == core::PanelPrecision::kFloat32,
               "cache holds int8 panels");
  return k_data_ + kv * seq_ * d_;
}

const std::int8_t* KvPanelCache::kt_panel_i8(std::int64_t kv) const {
  STOF_EXPECTS(transposed_k_, "cache holds row-major K panels");
  STOF_EXPECTS(precision_ == core::PanelPrecision::kInt8,
               "cache holds float panels");
  return k8_data_ + kv * seq_ * d_;
}

const std::int8_t* KvPanelCache::v_panel_i8(std::int64_t kv) const {
  STOF_EXPECTS(precision_ == core::PanelPrecision::kInt8,
               "cache holds float panels");
  return v8_data_ + kv * seq_ * d_;
}

float KvPanelCache::k_scale(std::int64_t kv) const {
  STOF_EXPECTS(precision_ == core::PanelPrecision::kInt8,
               "cache holds float panels");
  return k_scales_[kv];
}

float KvPanelCache::v_scale(std::int64_t kv) const {
  STOF_EXPECTS(precision_ == core::PanelPrecision::kInt8,
               "cache holds float panels");
  return v_scales_[kv];
}

}  // namespace stof::mha
