#include "stof/mha/panel_cache.hpp"

#include "stof/core/packed.hpp"
#include "stof/parallel/parallel_for.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::mha {

KvPanelCache::KvPanelCache(const TensorH& k, const TensorH& v,
                           std::int64_t kv_instances, std::int64_t seq,
                           std::int64_t head_size, bool transpose_k)
    : seq_(seq), d_(head_size), transposed_k_(transpose_k) {
  const std::int64_t panel = seq_ * d_;
  STOF_EXPECTS(static_cast<std::int64_t>(k.data().size()) ==
                       kv_instances * panel &&
                   k.data().size() == v.data().size(),
               "K/V storage must be kv_instances contiguous (seq x d) panels");
  k_f32_.resize(static_cast<std::size_t>(kv_instances * panel));
  v_f32_.resize(static_cast<std::size_t>(kv_instances * panel));

  const float* table = packed::h2f_table();
  parallel_for(0, kv_instances, [&](std::int64_t kv) {
    const std::size_t base = static_cast<std::size_t>(kv * panel);
    packed::half_to_float(v.data().subspan(base, static_cast<std::size_t>(panel)),
                          {v_f32_.data() + base,
                           static_cast<std::size_t>(panel)});
    const half* src = k.data().data() + base;
    float* dst = k_f32_.data() + base;
    if (!transposed_k_) {
      packed::half_to_float({src, static_cast<std::size_t>(panel)},
                            {dst, static_cast<std::size_t>(panel)});
      return;
    }
    // Convert-and-transpose in (kT x kT) tiles so both the strided reads
    // and the contiguous writes stay cache-resident.
    constexpr std::int64_t kT = 32;
    for (std::int64_t j0 = 0; j0 < seq_; j0 += kT) {
      const std::int64_t j1 = std::min(seq_, j0 + kT);
      for (std::int64_t e0 = 0; e0 < d_; e0 += kT) {
        const std::int64_t e1 = std::min(d_, e0 + kT);
        for (std::int64_t j = j0; j < j1; ++j) {
          for (std::int64_t e = e0; e < e1; ++e) {
            dst[e * seq_ + j] = table[src[j * d_ + e].bits()];
          }
        }
      }
    }
  });
  // One K and one V panel per instance, converted exactly once per call.
  telemetry::count("exec.mha.panels_converted", 2 * kv_instances);
}

const float* KvPanelCache::k_panel(std::int64_t kv) const {
  STOF_EXPECTS(!transposed_k_, "cache holds transposed K panels");
  return k_f32_.data() + kv * seq_ * d_;
}

const float* KvPanelCache::kt_panel(std::int64_t kv) const {
  STOF_EXPECTS(transposed_k_, "cache holds row-major K panels");
  return k_f32_.data() + kv * seq_ * d_;
}

}  // namespace stof::mha
