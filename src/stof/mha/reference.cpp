#include "stof/mha/reference.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "stof/parallel/parallel_for.hpp"

namespace stof::mha {

TensorH reference_attention(const MhaDims& dims, const TensorH& q,
                            const TensorH& k, const TensorH& v,
                            const masks::Mask& mask) {
  STOF_EXPECTS(mask.seq_len() == dims.seq_len, "mask must match seq_len");
  TensorH out = make_output(dims, q, k, v);
  const std::int64_t n = dims.seq_len;
  const std::int64_t d = dims.head_size;
  const float scale = dims.scale();

  parallel_for(0, dims.instances() * n, [&](std::int64_t row) {
    const std::int64_t bh = row / n;
    const std::int64_t kv = dims.kv_instance_of(bh);
    const std::int64_t i = row % n;

    std::vector<float> scores(static_cast<std::size_t>(n));
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < n; ++j) {
      if (!mask.at(i, j)) continue;
      float dot = 0;
      for (std::int64_t e = 0; e < d; ++e) {
        dot += float(q.at(bh, i, e)) * float(k.at(kv, j, e));
      }
      scores[static_cast<std::size_t>(j)] = dot * scale;
      max_v = std::max(max_v, dot * scale);
    }

    if (max_v == -std::numeric_limits<float>::infinity()) {
      for (std::int64_t e = 0; e < d; ++e) out.at(bh, i, e) = half(0.0f);
      return;  // fully masked row
    }

    float sum = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      if (!mask.at(i, j)) {
        scores[static_cast<std::size_t>(j)] = 0.0f;
        continue;
      }
      const float e = std::exp(scores[static_cast<std::size_t>(j)] - max_v);
      scores[static_cast<std::size_t>(j)] = e;
      sum += e;
    }
    const float inv = 1.0f / sum;

    for (std::int64_t e = 0; e < d; ++e) {
      float acc = 0;
      for (std::int64_t j = 0; j < n; ++j) {
        acc += scores[static_cast<std::size_t>(j)] * float(v.at(kv, j, e));
      }
      out.at(bh, i, e) = half(acc * inv);
    }
  });
  return out;
}

}  // namespace stof::mha
