// Common types for multi-head attention kernels.
//
// All MHA kernels in STOF operate on Q/K/V tensors of shape
// (batch*heads, seq_len, head_size) in FP16, sharing one attention mask
// across batch and heads (the paper's setting), and produce an output of
// the same shape.  Scores are scaled by 1/sqrt(head_size).
#pragma once

#include <cmath>
#include <cstdint>

#include "stof/core/check.hpp"
#include "stof/core/tensor.hpp"

namespace stof::mha {

/// Problem dimensions of one MHA computation.
///
/// `kv_heads` enables grouped-query attention: 0 (default) means standard
/// MHA (every query head has its own K/V head); kv_heads = 1 is multi-query
/// attention; any divisor of `heads` shares each K/V head across a group of
/// heads / kv_heads query heads.
struct MhaDims {
  std::int64_t batch = 1;
  std::int64_t heads = 12;      ///< BERT-Base default (paper §5.1)
  std::int64_t seq_len = 0;
  std::int64_t head_size = 64;  ///< BERT-Base default
  std::int64_t kv_heads = 0;    ///< 0 = heads (MHA); 1 = MQA; else GQA

  /// Number of independent (batch, head) attention instances.
  [[nodiscard]] std::int64_t instances() const { return batch * heads; }
  /// Effective K/V head count.
  [[nodiscard]] std::int64_t kv_head_count() const {
    return kv_heads == 0 ? heads : kv_heads;
  }
  /// Number of (batch, kv head) K/V instances.
  [[nodiscard]] std::int64_t kv_instances() const {
    return batch * kv_head_count();
  }
  /// K/V instance serving query instance `bh`.
  [[nodiscard]] std::int64_t kv_instance_of(std::int64_t bh) const {
    const std::int64_t group = heads / kv_head_count();
    return (bh / heads) * kv_head_count() + (bh % heads) / group;
  }
  /// Total query rows across all instances.
  [[nodiscard]] std::int64_t total_rows() const {
    return instances() * seq_len;
  }
  /// Softmax scale 1/sqrt(d).
  [[nodiscard]] float scale() const {
    return 1.0f / std::sqrt(static_cast<float>(head_size));
  }
  /// Expected Q (and output) tensor shape.
  [[nodiscard]] Shape qkv_shape() const {
    return Shape{instances(), seq_len, head_size};
  }
  /// Expected K/V tensor shape.
  [[nodiscard]] Shape kv_shape() const {
    return Shape{kv_instances(), seq_len, head_size};
  }

  void validate() const {
    STOF_EXPECTS(batch > 0 && heads > 0 && seq_len > 0 && head_size > 0);
    STOF_EXPECTS(kv_heads >= 0 && kv_heads <= heads);
    STOF_EXPECTS(heads % kv_head_count() == 0,
                 "heads must divide into kv_heads groups");
  }
};

/// Validate that q, k, v conform to `dims` and allocate the output.
inline TensorH make_output(const MhaDims& dims, const TensorH& q,
                           const TensorH& k, const TensorH& v) {
  dims.validate();
  STOF_EXPECTS(q.shape() == dims.qkv_shape(), "Q shape mismatch");
  STOF_EXPECTS(k.shape() == dims.kv_shape(), "K shape mismatch");
  STOF_EXPECTS(v.shape() == dims.kv_shape(), "V shape mismatch");
  return TensorH(dims.qkv_shape());
}

}  // namespace stof::mha
