#include "stof/serve/model_runtime.hpp"

#include <cmath>
#include <utility>

#include "stof/core/checksum.hpp"
#include "stof/core/rng.hpp"
#include "stof/fusion/templates.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/ops/elementwise.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/ops/normalize.hpp"
#include "stof/telemetry/telemetry.hpp"
#include "stof/tuner/search_engine.hpp"

namespace stof::serve {

namespace {

/// Weight stream tags — part of the (seed, layer, tag) hash, so every
/// parameter tensor draws from an independent deterministic stream.
enum class WeightTag : int {
  kOutProj,
  kOutBias,
  kCrossProj,
  kFfnUp,
  kFfnUpBias,
  kFfnDown,
  kFfnDownBias,
  kGamma1,
  kBeta1,
  kGamma2,
  kBeta2,
  kGamma3,
  kBeta3,
};

std::uint64_t weight_stream(std::uint64_t seed, std::int64_t layer,
                            WeightTag tag) {
  std::uint64_t h = fnv1a64(&layer, sizeof(layer), seed ^ kFnv1aOffset);
  const int t = static_cast<int>(tag);
  return fnv1a64(&t, sizeof(t), h);
}

/// Seeded uniform(-scale, scale) fill (plus `center`, for LayerNorm
/// gammas).  Element order is fixed, so the bits never depend on batch or
/// scheduling — the same determinism contract as serve::fill_token.
TensorH seeded_tensor(Shape shape, std::uint64_t seed, float scale,
                      float center = 0.0f) {
  TensorH t(shape);
  Rng rng(seed);
  for (half& v : t.data()) v = half(center + rng.uniform(-scale, scale));
  return t;
}

/// The search budget paid per cold shape bucket.  Trimmed from the
/// offline-tuning defaults: model load tunes a handful of buckets, and the
/// two-stage search converges on these layer graphs well inside this
/// budget (the plan is still deterministic — fixed seed, cached evals).
tuner::TuningOptions load_time_options() {
  tuner::TuningOptions o;
  o.samples_per_candidate = 2;
  o.stage1_max_evals = 32;
  o.stage2_iterations = 2;
  o.stage2_budget = 8;
  return o;
}

}  // namespace

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kNone:
      return "none";
    case ModelKind::kBertEncoder:
      return "bert_encoder";
    case ModelKind::kGptDecoder:
      return "gpt_decoder";
    case ModelKind::kT5CrossDecoder:
      return "t5_cross_decoder";
  }
  return "?";
}

void ModelSpec::validate() const {
  if (!enabled()) return;
  STOF_EXPECTS(layers >= 1, "a model needs at least one layer");
  STOF_EXPECTS(ffn_mult >= 1, "FFN must be at least hidden-wide");
}

ModelRuntime::ModelRuntime(const ModelSpec& spec, std::int64_t heads,
                           std::int64_t head_size,
                           const gpusim::DeviceSpec& device,
                           bool with_weights)
    : spec_(spec),
      heads_(heads),
      head_size_(head_size),
      hidden_(heads * head_size),
      ffn_(spec.ffn_mult * heads * head_size),
      device_(device),
      device_fp_(models::device_fingerprint(device)) {
  spec_.validate();
  STOF_EXPECTS(spec_.enabled(), "ModelRuntime needs an enabled ModelSpec");
  STOF_EXPECTS(heads_ > 0 && head_size_ > 0);
  if (!spec_.tune_db_dir.empty()) db_.emplace(spec_.tune_db_dir);
  if (!with_weights) return;

  // Fan-in scaled weights keep activations O(1) through arbitrarily many
  // layers (LayerNorm re-centers between them); the packed GEMM's B panels
  // convert once here so the first step pays no conversion.
  const bool bias = spec_.kind != ModelKind::kT5CrossDecoder;
  const float s_h = 1.0f / std::sqrt(static_cast<float>(hidden_));
  const float s_f = 1.0f / std::sqrt(static_cast<float>(ffn_));
  const std::uint64_t seed = spec_.weight_seed;
  weights_.reserve(static_cast<std::size_t>(spec_.layers));
  for (std::int64_t l = 0; l < spec_.layers; ++l) {
    LayerWeights w;
    w.wo = seeded_tensor(Shape{hidden_, hidden_},
                         weight_stream(seed, l, WeightTag::kOutProj), s_h);
    w.wf1 = seeded_tensor(Shape{hidden_, ffn_},
                          weight_stream(seed, l, WeightTag::kFfnUp), s_h);
    w.wf2 = seeded_tensor(Shape{ffn_, hidden_},
                          weight_stream(seed, l, WeightTag::kFfnDown), s_f);
    if (bias) {
      w.bo = seeded_tensor(Shape{hidden_},
                           weight_stream(seed, l, WeightTag::kOutBias), 0.1f);
      w.bf1 = seeded_tensor(Shape{ffn_},
                            weight_stream(seed, l, WeightTag::kFfnUpBias),
                            0.1f);
      w.bf2 = seeded_tensor(Shape{hidden_},
                            weight_stream(seed, l, WeightTag::kFfnDownBias),
                            0.1f);
    }
    if (spec_.kind == ModelKind::kT5CrossDecoder) {
      w.wc = seeded_tensor(Shape{hidden_, hidden_},
                           weight_stream(seed, l, WeightTag::kCrossProj),
                           s_h);
    }
    w.g1 = seeded_tensor(Shape{hidden_},
                         weight_stream(seed, l, WeightTag::kGamma1), 0.1f,
                         1.0f);
    w.b1 = seeded_tensor(Shape{hidden_},
                         weight_stream(seed, l, WeightTag::kBeta1), 0.05f);
    w.g2 = seeded_tensor(Shape{hidden_},
                         weight_stream(seed, l, WeightTag::kGamma2), 0.1f,
                         1.0f);
    w.b2 = seeded_tensor(Shape{hidden_},
                         weight_stream(seed, l, WeightTag::kBeta2), 0.05f);
    if (spec_.kind == ModelKind::kT5CrossDecoder) {
      w.g3 = seeded_tensor(Shape{hidden_},
                           weight_stream(seed, l, WeightTag::kGamma3), 0.1f,
                           1.0f);
      w.b3 = seeded_tensor(Shape{hidden_},
                           weight_stream(seed, l, WeightTag::kBeta3), 0.05f);
    }
    ops::warm_weight_panel(w.wo);
    ops::warm_weight_panel(w.wf1);
    ops::warm_weight_panel(w.wf2);
    if (spec_.kind == ModelKind::kT5CrossDecoder) {
      ops::warm_weight_panel(w.wc);
    }
    weights_.push_back(std::move(w));
  }
}

graph::Graph ModelRuntime::build_graph(std::int64_t rows) const {
  graph::LayerConfig lc;
  lc.batch = 1;
  lc.seq_len = rows;
  lc.hidden = hidden_;
  lc.heads = heads_;
  lc.ffn_dim = ffn_;
  const int layers = static_cast<int>(spec_.layers);
  switch (spec_.kind) {
    case ModelKind::kBertEncoder:
      return graph::build_encoder_graph(lc, layers);
    case ModelKind::kGptDecoder:
      return graph::build_decoder_graph(lc, layers);
    case ModelKind::kT5CrossDecoder:
      lc.activation = graph::OpKind::kRelu;
      lc.use_bias = false;
      return graph::build_cross_decoder_graph(lc, layers);
    case ModelKind::kNone:
      break;
  }
  STOF_CHECK(false, "build_graph needs an enabled model kind");
  return graph::Graph{};  // unreachable
}

void ModelRuntime::prewarm(std::int64_t rows) {
  if (!spec_.fused) return;
  (void)plan_for(rows);
}

const models::ExecutionPlan& ModelRuntime::plan_for(std::int64_t rows) {
  const std::int64_t bucket = models::shape_bucket(rows);
  auto it = plans_.find(bucket);
  if (it != plans_.end()) return it->second;

  const graph::Graph bg = build_graph(bucket);
  const models::TuneKey key{models::graph_fingerprint(bg), bucket,
                            device_fp_};
  const auto n_ops = static_cast<std::int64_t>(bg.size());
  if (db_) {
    telemetry::ScopedTimer timer("wall.tunedb.load_us");
    if (auto plan = db_->load(key, n_ops)) {
      return plans_.emplace(bucket, std::move(*plan)).first->second;
    }
  }

  // Cold: run the two-stage search at the bucket shape.  The mask only
  // prices the MHA segments (invariant across schemes), so serving's
  // always-causal triangle stands in for every request pattern.
  telemetry::ScopedTimer timer("wall.tunedb.tune_us");
  const models::Executor exec(
      bg, mha::MhaDims{1, heads_, bucket, head_size_},
      masks::MaskSpec{.kind = masks::PatternKind::kCausal, .seq_len = bucket},
      device_);
  models::ExecutionPlan plan =
      tuner::SearchEngine(exec, load_time_options()).tune().best_plan;
  telemetry::count("serve.model.tunes");
  if (db_) db_->store(key, plan);
  return plans_.emplace(bucket, std::move(plan)).first->second;
}

double ModelRuntime::charge_step(gpusim::Stream& stream, std::int64_t rows) {
  STOF_EXPECTS(rows > 0);
  telemetry::count("serve.model.steps");
  telemetry::count("serve.model.rows", rows);
  const graph::Graph g = build_graph(rows);
  double us = 0;

  if (!spec_.fused) {
    // Launch-per-op eager baseline: every non-MHA operator is its own
    // kernel and pays the framework dispatch latency on top of the launch.
    const fusion::TemplateParams defaults;
    for (const auto& node : g.nodes()) {
      if (node.kind == graph::OpKind::kInput || graph::is_mha_op(node.kind)) {
        continue;
      }
      gpusim::KernelCost cost =
          fusion::single_op_cost(node, defaults, device_);
      cost.dispatch_us = device_.dispatch_overhead_us;
      us += stream.launch("serve.model.op", cost);
      telemetry::count("serve.model.op_launches");
    }
    return us;
  }

  // Fused: replay the tuned plan's segments at this step's actual row
  // count.  The scheme was tuned at the bucket shape, whose graph has the
  // same operator sequence, so segment boundaries and template kinds map
  // one-to-one; only the per-row work scales.  MHA segments are skipped —
  // the engine's real attention kernels already charged them.
  const models::ExecutionPlan& plan = plan_for(rows);
  const auto segments = plan.scheme.segments();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const fusion::Segment& seg = segments[i];
    const fusion::TemplateKind kind = fusion::classify_segment(g, seg);
    if (kind == fusion::TemplateKind::kUnifiedMha) continue;
    if (seg.size() == 1 &&
        g.node(seg.begin).kind == graph::OpKind::kInput) {
      continue;
    }
    const fusion::TemplateParams params = plan.segment_params.empty()
                                              ? fusion::TemplateParams{}
                                              : plan.segment_params[i];
    gpusim::KernelCost cost =
        fusion::segment_cost(g, seg, kind, params, device_);
    if (cost.occupancy <= 0 && cost.launches > 0) {
      // A block shape tuned at the bucket can (rarely) be infeasible at
      // another row count; fall back to template defaults, never crash.
      cost = fusion::segment_cost(g, seg, kind, fusion::TemplateParams{},
                                  device_);
    }
    us += stream.launch("serve.model." + fusion::to_string(kind), cost);
    telemetry::count("serve.model.segment_launches", cost.launches);
  }
  return us;
}

void ModelRuntime::transform_rows(TensorH& x) const {
  STOF_CHECK(!weights_.empty(),
             "transform_rows needs a with_weights runtime");
  STOF_EXPECTS(x.shape().rank() == 2 && x.shape()[1] == hidden_);
  const std::int64_t n = x.shape()[0];
  TensorH t1(Shape{n, hidden_}), t2(Shape{n, hidden_});
  TensorH f(Shape{n, ffn_});

  for (const LayerWeights& w : weights_) {
    switch (spec_.kind) {
      case ModelKind::kBertEncoder: {
        // Post-LN: x = LN2(LN1(x + proj(x)) + ffn(LN1(...))).
        ops::matmul2d(x, w.wo, t1);
        ops::bias_add(t1, w.bo, t1);
        ops::residual_add(x, t1, t1);
        ops::layernorm(t1, w.g1, w.b1, t2);
        ops::matmul2d(t2, w.wf1, f);
        ops::bias_add(f, w.bf1, f);
        ops::gelu_op(f, f);
        ops::matmul2d(f, w.wf2, t1);
        ops::bias_add(t1, w.bf2, t1);
        ops::residual_add(t2, t1, t1);
        ops::layernorm(t1, w.g2, w.b2, x);
        break;
      }
      case ModelKind::kGptDecoder: {
        // Pre-LN: x += proj(LN1(x)); x += ffn(LN2(x)).
        ops::layernorm(x, w.g1, w.b1, t1);
        ops::matmul2d(t1, w.wo, t2);
        ops::bias_add(t2, w.bo, t2);
        ops::residual_add(x, t2, x);
        ops::layernorm(x, w.g2, w.b2, t1);
        ops::matmul2d(t1, w.wf1, f);
        ops::bias_add(f, w.bf1, f);
        ops::gelu_op(f, f);
        ops::matmul2d(f, w.wf2, t2);
        ops::bias_add(t2, w.bf2, t2);
        ops::residual_add(x, t2, x);
        break;
      }
      case ModelKind::kT5CrossDecoder: {
        // Pre-LN self + cross + FFN blocks, bias-free, ReLU.
        ops::layernorm(x, w.g1, w.b1, t1);
        ops::matmul2d(t1, w.wo, t2);
        ops::residual_add(x, t2, x);
        ops::layernorm(x, w.g2, w.b2, t1);
        ops::matmul2d(t1, w.wc, t2);
        ops::residual_add(x, t2, x);
        ops::layernorm(x, w.g3, w.b3, t1);
        ops::matmul2d(t1, w.wf1, f);
        ops::relu(f, f);
        ops::matmul2d(f, w.wf2, t2);
        ops::residual_add(x, t2, x);
        break;
      }
      case ModelKind::kNone:
        STOF_CHECK(false, "unreachable");
    }
  }
}

}  // namespace stof::serve
