// Per-model execution runtime for the serving engine.
//
// A ModelSpec turns the engine from an attention demo into an end-to-end
// layer server: every step's activation rows (varlen prefill tokens +
// batched decode rows) run through a full transformer-layer stack — QKV
// projection, attention, out-projection, LayerNorm, FFN GEMM + activation —
// built by graph::builders for the configured model family.  The runtime
// covers the two dimensions the digest/timeline split requires:
//
//  * Timeline (charge_step): the step's non-MHA layer work is charged onto
//    the gpusim stream.  Fused mode executes the tuned ExecutionPlan's
//    segments through the compilation templates (one launch per fused
//    segment, fusion::segment_cost); unfused mode launches every operator
//    detached with the device's eager dispatch overhead
//    (fusion::single_op_cost) — the launch-per-op baseline the
//    serve_e2e_layer bench gates against.  MHA segments are skipped in
//    both modes: the engine's real serve.prefill / serve.decode attention
//    launches already charged them, identically, so the fused-vs-unfused
//    delta isolates the fusion dimension.
//  * Digest (transform_rows): a deterministic per-row layer head applied
//    to attention-output rows before they fold into session digests.  Per
//    layer it runs the post-attention pipeline (out-proj GEMM, bias,
//    residual, LayerNorm, FFN up/down GEMMs, activation) with seeded
//    weights on the library's bit-identical packed kernels; layer l > 0
//    reuses layer l-1's output as its attention output.  Every op is
//    per-row pure (the packed GEMM's accumulation order is row
//    independent), so digests stay byte-identical across batch
//    compositions, scheduling modes, preemption/recompute, chunked
//    prefill, and fused-vs-unfused timelines.
//
// Tuning happens once at "model load": plan_for() resolves each shape
// bucket (next power of two of the row count — decode and prefill shapes
// land in different buckets) through the persistent TuneDb and falls back
// to the two-stage search on a miss, persisting the result.  Telemetry:
// serve.model.* counters, tunedb.* counters, and the wall.tunedb.{tune,
// load}_us timers the warm-vs-cold bench gate reads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stof/core/tensor.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/gpusim/timeline.hpp"
#include "stof/graph/builders.hpp"
#include "stof/models/executor.hpp"
#include "stof/models/tune_db.hpp"

namespace stof::serve {

/// Model families the serving engine can execute end to end.
enum class ModelKind {
  kNone,           ///< legacy attention-only serving
  kBertEncoder,    ///< post-LN encoder layers, GELU FFN
  kGptDecoder,     ///< pre-LN decoder layers, GELU FFN
  kT5CrossDecoder  ///< pre-LN self+cross+FFN blocks, bias-free, ReLU FFN
};

[[nodiscard]] std::string to_string(ModelKind kind);

/// What the engine serves: a stack of `layers` transformer layers over the
/// engine's (model_heads x head_size) hidden width.
struct ModelSpec {
  ModelKind kind = ModelKind::kNone;
  std::int64_t layers = 2;
  /// FFN width as a multiple of the hidden width (4 in BERT/GPT-2).
  std::int64_t ffn_mult = 4;
  /// true: tuned fused-segment execution; false: launch-per-op eager
  /// execution (the baseline timeline — digests are identical either way).
  bool fused = true;
  /// Persistent tuning-DB directory; empty tunes in memory only.
  std::string tune_db_dir;
  /// Seed of the layer head's weight streams.
  std::uint64_t weight_seed = 0x57eadfa571ull;

  [[nodiscard]] bool enabled() const { return kind != ModelKind::kNone; }
  /// Row-parallel projections per layer — the all-reduce count a
  /// tensor-parallel cluster pays at layer boundaries (self out-proj +
  /// FFN down-proj, plus the cross-attention out-proj for T5).
  [[nodiscard]] std::int64_t collectives_per_layer() const {
    return kind == ModelKind::kT5CrossDecoder ? 3 : 2;
  }
  void validate() const;
};

class ModelRuntime {
 public:
  /// `heads`/`head_size` are the LOCAL widths (a tensor-parallel shard
  /// builds its runtime at shard width and charges the shard's slice of
  /// every GEMM).  `with_weights` materializes the numeric layer head;
  /// cost-only runtimes (sharded engines) skip it.
  ModelRuntime(const ModelSpec& spec, std::int64_t heads,
               std::int64_t head_size, const gpusim::DeviceSpec& device,
               bool with_weights);

  [[nodiscard]] const ModelSpec& spec() const { return spec_; }
  [[nodiscard]] std::int64_t hidden() const { return hidden_; }

  /// Tune (or warm-load) the shape bucket covering `rows` now, at "model
  /// load", instead of on first use.  No-op in unfused mode.
  void prewarm(std::int64_t rows);

  /// The tuned plan for `rows`' shape bucket: cached, else TuneDb, else
  /// the two-stage search (persisted on the way out).
  const models::ExecutionPlan& plan_for(std::int64_t rows);

  /// Charge one step's non-MHA layer work for `rows` activation rows onto
  /// `stream`; returns the simulated time added.
  double charge_step(gpusim::Stream& stream, std::int64_t rows);

  /// Apply the deterministic layer head to a batch of attention-output
  /// rows ((n, hidden), in place).  Requires with_weights.
  void transform_rows(TensorH& rows) const;

 private:
  [[nodiscard]] graph::Graph build_graph(std::int64_t rows) const;

  struct LayerWeights {
    TensorH wo, bo;          // attention out-projection
    TensorH wc;              // cross-attention projection (T5 only)
    TensorH wf1, bf1;        // FFN up
    TensorH wf2, bf2;        // FFN down
    TensorH g1, b1, g2, b2, g3, b3;  // LayerNorm affine params
  };

  ModelSpec spec_;
  std::int64_t heads_ = 0;
  std::int64_t head_size_ = 0;
  std::int64_t hidden_ = 0;
  std::int64_t ffn_ = 0;
  gpusim::DeviceSpec device_;
  std::uint64_t device_fp_ = 0;
  std::optional<models::TuneDb> db_;
  std::map<std::int64_t, models::ExecutionPlan> plans_;  ///< bucket -> plan
  std::vector<LayerWeights> weights_;
};

}  // namespace stof::serve
