#include "stof/serve/scheduler.hpp"

#include <algorithm>

#include "stof/telemetry/telemetry.hpp"

namespace stof::serve {

StepPlan Scheduler::plan_step(SessionTable& table, KvPool& pool,
                              std::int64_t step) {
  return config_.mode == SchedulerMode::kContinuous
             ? plan_continuous(table, pool, step)
             : plan_serial(table, pool);
}

SessionId Scheduler::pick_victim(const SessionTable& table,
                                 const std::vector<SessionId>& candidates) {
  STOF_EXPECTS(!candidates.empty(), "no preemption candidate");
  SessionId best = candidates.front();
  for (const auto id : candidates) {
    const auto& s = table.at(id);
    const auto& b = table.at(best);
    if (s.last_touch_step < b.last_touch_step ||
        (s.last_touch_step == b.last_touch_step && id > best)) {
      best = id;
    }
  }
  return best;
}

StepPlan Scheduler::plan_continuous(SessionTable& table, KvPool& pool,
                                    std::int64_t step) {
  (void)step;
  StepPlan plan;

  // Decode set: every active session, least-recently-decoded first so the
  // batch cap (when it binds) round-robins instead of starving high ids.
  std::vector<SessionId> decoding = table.ids_in_phase(SessionPhase::kDecoding);
  std::stable_sort(decoding.begin(), decoding.end(),
                   [&](SessionId a, SessionId b) {
                     return table.at(a).last_touch_step <
                            table.at(b).last_touch_step;
                   });
  std::vector<SessionId> selected(
      decoding.begin(),
      decoding.begin() +
          std::min<std::size_t>(decoding.size(),
                                static_cast<std::size_t>(
                                    config_.max_decode_batch)));

  // KV pressure: every selected decoder whose tail block is full needs one
  // fresh block this step.  Preempt LRU-idle sessions until the pool can
  // back them all; a victim re-queues at the *front* (it keeps its FIFO
  // seniority) and re-prefills its full context on re-admission.
  const auto blocks_needed = [&] {
    std::int64_t n = 0;
    for (const auto id : selected) {
      if (pool.append_needs_block(id)) ++n;
    }
    return n;
  };
  while (pool.free_blocks() < blocks_needed() && !decoding.empty()) {
    const SessionId victim = pick_victim(table, decoding);
    Session& s = table.at(victim);
    telemetry::count("serve.kv.evictions");
    telemetry::count("serve.kv.evicted_blocks", pool.blocks(victim));
    pool.release(victim);
    s.phase = SessionPhase::kQueued;
    s.cached_tokens = 0;
    ++s.preemptions;
    waiting_.push_front(victim);
    plan.evicted.push_back(victim);
    std::erase(decoding, victim);
    std::erase(selected, victim);
  }
  std::sort(selected.begin(), selected.end());

  // Admission: strict FIFO from the wait queue, bounded by the per-step
  // prefill count/token budgets and by whole-context KV reservations on
  // top of the blocks the decode set will consume.  Head-of-line blocking
  // is intentional — skipping ahead would reorder first-token latencies.
  std::int64_t reserved = blocks_needed();
  std::int64_t admitted_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<std::int64_t>(plan.prefills.size()) <
             config_.max_prefills_per_step) {
    const SessionId id = waiting_.front();
    const Session& s = table.at(id);
    const std::int64_t need = pool.blocks_for(s.total_len());
    if (admitted_tokens + s.total_len() > config_.prefill_token_budget) break;
    if (need > pool.free_blocks() - reserved) break;
    waiting_.pop_front();
    plan.prefills.push_back(id);
    reserved += need;
    admitted_tokens += s.total_len();
  }
  plan.decodes = std::move(selected);
  return plan;
}

StepPlan Scheduler::plan_serial(SessionTable& table, KvPool& pool) {
  StepPlan plan;
  const auto decoding = table.ids_in_phase(SessionPhase::kDecoding);
  STOF_CHECK(decoding.size() <= 1, "serial mode runs one session at a time");
  if (!decoding.empty()) {
    // Serial never preempts: the pool is validated to hold one full
    // context, and only one session ever holds blocks.
    plan.decodes = decoding;
    return plan;
  }
  if (!waiting_.empty()) {
    const SessionId id = waiting_.front();
    STOF_CHECK(pool.blocks_for(table.at(id).total_len()) <=
                   pool.free_blocks(),
               "pool too small for a single context");
    waiting_.pop_front();
    plan.prefills.push_back(id);
  }
  return plan;
}

}  // namespace stof::serve
