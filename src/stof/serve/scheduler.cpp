#include "stof/serve/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "stof/telemetry/telemetry.hpp"

namespace stof::serve {

StepPlan Scheduler::plan_step(SessionTable& table, KvPool& pool,
                              std::int64_t step) {
  if (config_.mode == SchedulerMode::kSerial) {
    return plan_serial(table, pool);
  }
  return config_.chunk_tokens > 0 ? plan_chunked(table, pool, step)
                                  : plan_continuous(table, pool, step);
}

SessionId Scheduler::pick_victim(const SessionTable& table,
                                 const std::vector<SessionId>& candidates) {
  STOF_EXPECTS(!candidates.empty(), "no preemption candidate");
  SessionId best = candidates.front();
  for (const auto id : candidates) {
    const auto& s = table.at(id);
    const auto& b = table.at(best);
    if (s.request.priority != b.request.priority) {
      if (s.request.priority < b.request.priority) best = id;
      continue;
    }
    if (s.last_touch_step < b.last_touch_step ||
        (s.last_touch_step == b.last_touch_step && id > best)) {
      best = id;
    }
  }
  return best;
}

void Scheduler::evict(SessionTable& table, KvPool& pool, StepPlan& plan,
                      SessionId victim) {
  Session& s = table.at(victim);
  telemetry::count("serve.kv.evictions");
  // Cost model: only private (refcount == 1) pages actually return to the
  // free list — shared prefix pages stay resident for their other owners,
  // so crediting blocks() would over-value evicting a prefix-sharing
  // session.
  telemetry::count("serve.kv.evicted_blocks", pool.private_blocks(victim));
  telemetry::count("serve.sched.preemptions_by_priority.p" +
                   std::to_string(s.request.priority));
  pool.release(victim);
  s.phase = SessionPhase::kQueued;
  s.cached_tokens = 0;
  s.adopted_tokens = 0;
  ++s.preemptions;
  waiting_.push_front(victim);
  plan.evicted.push_back(victim);
  std::erase(chunking_, victim);
  // A victim may already hold a chunk grant in this step's plan (priority
  // preemption runs after ongoing chunks were assigned); withdraw it.
  std::erase_if(plan.chunks,
                [&](const PrefillChunk& c) { return c.id == victim; });
}

std::int64_t Scheduler::adopt_cap(const Session& s) const {
  // A re-admitted session's digest already covers [0, prompt_digested):
  // adopting past that mark would skip folding positions the digest still
  // owes, so the cap is the digested count; a fresh session may adopt its
  // whole template (the tree supplies the digest chain value instead).
  return s.prompt_digested_tokens > 0 ? s.prompt_digested_tokens
                                      : s.request.template_len;
}

PrefixMatch Scheduler::admission_match(const KvPool& pool,
                                       const Session& s) const {
  if (!config_.prefix_sharing || s.request.template_len <= 0) return {};
  return pool.match_prefix(s.request, adopt_cap(s));
}

void Scheduler::admit_with_prefix(Session& s, KvPool& pool) const {
  if (!config_.prefix_sharing || s.request.template_len <= 0) return;
  const PrefixMatch m =
      pool.adopt_prefix(s.request.id, s.request, adopt_cap(s));
  if (m.tokens == 0) return;
  s.cached_tokens = m.tokens;
  s.adopted_tokens = m.tokens;
  if (s.prompt_digested_tokens == 0) {
    // Fresh session: outputs for the adopted positions are the template's
    // (byte-identical across owners), so start the digest from the chain
    // value the publisher stored with the pages.
    s.digest = m.digest_after;
    s.prompt_digested_tokens = m.tokens;
  }
}

std::vector<SessionId> Scheduler::admission_order(
    const SessionTable& table) const {
  std::vector<SessionId> order(waiting_.begin(), waiting_.end());
  std::stable_sort(
      order.begin(), order.end(), [&](SessionId a, SessionId b) {
        const auto& ra = table.at(a).request;
        const auto& rb = table.at(b).request;
        if (ra.priority != rb.priority) return ra.priority > rb.priority;
        constexpr double kNone = std::numeric_limits<double>::infinity();
        const double da = ra.deadline_us > 0 ? ra.deadline_us : kNone;
        const double db = rb.deadline_us > 0 ? rb.deadline_us : kNone;
        return da < db;  // stable sort keeps queue order inside ties
      });
  return order;
}

StepPlan Scheduler::plan_continuous(SessionTable& table, KvPool& pool,
                                    std::int64_t step) {
  (void)step;
  StepPlan plan;

  // Decode set: every active session, least-recently-decoded first so the
  // batch cap (when it binds) round-robins instead of starving high ids.
  std::vector<SessionId> decoding = table.ids_in_phase(SessionPhase::kDecoding);
  std::stable_sort(decoding.begin(), decoding.end(),
                   [&](SessionId a, SessionId b) {
                     return table.at(a).last_touch_step <
                            table.at(b).last_touch_step;
                   });
  std::vector<SessionId> selected(
      decoding.begin(),
      decoding.begin() +
          std::min<std::size_t>(decoding.size(),
                                static_cast<std::size_t>(
                                    config_.max_decode_batch)));

  // KV pressure: reserve every allocation the selected decoders' appends
  // will make this step (decode_appends slots each — fresh tail pages plus
  // a possible CoW copy of a shared partial tail).  Tree-only pages count
  // as obtainable (acquire reclaims them LRU-first), so the comparison is
  // against allocatable, not free.  Preempt lowest-priority-idlest
  // sessions until the pool can back them all; a victim re-queues at the
  // *front* (it keeps its FIFO seniority) and re-prefills its full context
  // on re-admission.
  const auto blocks_needed = [&] {
    std::int64_t n = 0;
    for (const auto id : selected) {
      n += pool.append_reserve_blocks(id, config_.decode_appends);
    }
    return n;
  };
  while (pool.allocatable_blocks() < blocks_needed() && !decoding.empty()) {
    const SessionId victim = pick_victim(table, decoding);
    evict(table, pool, plan, victim);
    std::erase(decoding, victim);
    std::erase(selected, victim);
  }
  std::sort(selected.begin(), selected.end());

  // Admission: strict FIFO from the wait queue, bounded by the per-step
  // prefill count/token budgets and by whole-context KV reservations on
  // top of the blocks the decode set will consume.  Head-of-line blocking
  // is intentional — skipping ahead would reorder first-token latencies.
  // A prefix match discounts both the reservation (the matched full pages
  // are already resident) and the token budget (only the suffix is
  // prefilled); matched pages that were tree-only stop being reclaimable
  // once adopted, so the availability estimate subtracts the whole match —
  // conservative, never over-admitting.
  std::int64_t reserved = blocks_needed();
  std::int64_t admitted_tokens = 0;
  while (!waiting_.empty() &&
         static_cast<std::int64_t>(plan.prefills.size()) <
             config_.max_prefills_per_step) {
    const SessionId id = waiting_.front();
    Session& s = table.at(id);
    const PrefixMatch m = admission_match(pool, s);
    const std::int64_t need = pool.blocks_for(s.total_len()) - m.full_pages;
    const std::int64_t prefill_tokens = s.total_len() - m.tokens;
    const std::int64_t avail =
        pool.free_blocks() +
        std::max<std::int64_t>(0, pool.reclaimable_blocks() - m.pages());
    if (admitted_tokens + prefill_tokens > config_.prefill_token_budget) break;
    if (need > avail - reserved) break;
    waiting_.pop_front();
    admit_with_prefix(s, pool);
    plan.prefills.push_back(id);
    reserved += need;
    admitted_tokens += prefill_tokens;
  }
  plan.decodes = std::move(selected);
  return plan;
}

StepPlan Scheduler::plan_chunked(SessionTable& table, KvPool& pool,
                                 std::int64_t step) {
  (void)step;
  StepPlan plan;

  // Sessions whose prefix completed moved to kDecoding; evicted ones went
  // back to kQueued.  Either way they leave the chunking line.
  std::erase_if(chunking_, [&](SessionId id) {
    return table.at(id).phase != SessionPhase::kPrefilling;
  });

  // Decode set: same policy as the whole-prefill planner.
  std::vector<SessionId> decoding = table.ids_in_phase(SessionPhase::kDecoding);
  std::stable_sort(decoding.begin(), decoding.end(),
                   [&](SessionId a, SessionId b) {
                     return table.at(a).last_touch_step <
                            table.at(b).last_touch_step;
                   });
  std::vector<SessionId> selected(
      decoding.begin(),
      decoding.begin() +
          std::min<std::size_t>(decoding.size(),
                                static_cast<std::size_t>(
                                    config_.max_decode_batch)));

  // Anyone holding KV blocks — decoders and mid-prefill sessions alike —
  // is a preemption candidate.
  const auto residents = [&] {
    std::vector<SessionId> r;
    for (const auto& [id, s] : table) {
      if ((s.phase == SessionPhase::kDecoding ||
           s.phase == SessionPhase::kPrefilling) &&
          pool.blocks(id) > 0) {
        r.push_back(id);
      }
    }
    return r;
  };
  const auto decode_blocks_needed = [&] {
    std::int64_t n = 0;
    for (const auto id : selected) {
      n += pool.append_reserve_blocks(id, config_.decode_appends);
    }
    return n;
  };

  std::int64_t budget = config_.chunk_tokens;
  std::int64_t reserved_chunks = 0;
  const std::int64_t block_tokens = pool.config().block_tokens;

  // Evicting a victim whose chunk was already granted this step withdraws
  // the chunk (evict() erases it from the plan); the withdrawn tokens go
  // back into the step budget and the withdrawn blocks back into the
  // reservation count, so later grants can use the headroom the victim
  // gave up.  Must read pool.usable_blocks(victim) before evict() releases
  // them (usable, matching what the grant charged: a shared partial tail
  // never counted as a block the chunk could reuse).
  const auto evict_refunded = [&](SessionId victim) {
    for (const auto& c : plan.chunks) {
      if (c.id == victim) {
        budget += c.tokens();
        reserved_chunks -= pool.blocks_for(c.end) - pool.usable_blocks(victim);
        break;
      }
    }
    evict(table, pool, plan, victim);
  };

  // KV pressure from the decode batch (against allocatable: tree-only
  // pages are reclaimed by allocation before anyone is preempted).
  while (pool.allocatable_blocks() < decode_blocks_needed()) {
    const auto cands = residents();
    if (cands.empty()) break;
    const SessionId victim = pick_victim(table, cands);
    evict_refunded(victim);
    std::erase(decoding, victim);
    std::erase(selected, victim);
  }

  // Grant one chunk of up to `budget` tokens, shrunk to the KV blocks
  // available this step; a starved chunk may preempt strictly-lower-
  // priority residents to free one.  Returns true if any tokens were
  // granted.
  const auto assign_chunk = [&](SessionId id) {
    Session& s = table.at(id);
    // A grant for an earlier (higher-priority) session may have preempted
    // this one — mid-prefill residents are victims — sending it back to
    // the wait queue with its KV released.  Granting anyway would hand
    // blocks to a kQueued session that is also in plan.evicted, leaking
    // KV outside residents()/preemption.  Skip anything not mid-prefill.
    if (s.phase != SessionPhase::kPrefilling) return false;
    const std::int64_t have = s.cached_tokens;
    const std::int64_t want = std::min(s.total_len() - have, budget);
    if (want <= 0) return false;
    const auto granted_now = [&] {
      const std::int64_t avail =
          pool.allocatable_blocks() - decode_blocks_needed() -
          reserved_chunks;
      // usable, not blocks: a shared partial tail is CoW'd by the first
      // append, so it does not save an allocation.
      const std::int64_t cap =
          (pool.usable_blocks(id) + avail) * block_tokens - have;
      return std::min(want, cap);
    };
    std::int64_t granted = granted_now();
    while (granted <= 0) {
      std::vector<SessionId> cands;
      for (const auto cand : residents()) {
        if (cand != id &&
            table.at(cand).request.priority < s.request.priority) {
          cands.push_back(cand);
        }
      }
      if (cands.empty()) break;
      const SessionId victim = pick_victim(table, cands);
      evict_refunded(victim);
      std::erase(decoding, victim);
      std::erase(selected, victim);
      granted = granted_now();
    }
    if (granted <= 0) return false;
    plan.chunks.push_back(PrefillChunk{id, have, have + granted});
    budget -= granted;
    reserved_chunks +=
        pool.blocks_for(have + granted) - pool.usable_blocks(id);
    return true;
  };

  // Ongoing prefills continue first, in admission order.
  for (const auto id : std::vector<SessionId>(chunking_.begin(),
                                              chunking_.end())) {
    if (budget <= 0) break;
    assign_chunk(id);
  }

  // Fairness top-up: each tenant with queued work earns quantum * weight
  // tokens per planning step, capped so an idle tenant cannot bank
  // unbounded credit.
  const bool fair = config_.fairness_quantum_tokens > 0;
  if (fair && !waiting_.empty()) {
    const std::int64_t pool_tokens = pool.total_blocks() * block_tokens;
    std::map<std::int32_t, bool> active;
    for (const auto id : waiting_) active[table.at(id).request.tenant] = true;
    for (const auto& [tenant, _] : active) {
      const std::int64_t w = tenant_weight(tenant);
      const std::int64_t cap =
          std::max(4 * config_.fairness_quantum_tokens * w, pool_tokens);
      deficit_[tenant] = std::min(
          deficit_[tenant] + config_.fairness_quantum_tokens * w, cap);
    }
  }

  // Admission: priority-then-deadline-then-FIFO order, bounded by the
  // in-flight prefill cap.  A tenant whose deficit cannot cover the
  // session's target length waits (others may pass — its credit grows
  // every step, so the wait is bounded); if the ordered head cannot get
  // its first chunk's KV, nobody overtakes it on KV grounds.
  const auto order = admission_order(table);
  for (const auto id : order) {
    if (budget <= 0) break;
    if (static_cast<std::int64_t>(chunking_.size()) >=
        config_.max_prefills_per_step) {
      break;
    }
    Session& s = table.at(id);
    if (fair && !s.deficit_charged &&
        deficit_[s.request.tenant] < s.request.target_len()) {
      telemetry::count("serve.sched.deficit_deferrals");
      continue;
    }
    const PrefixMatch m = admission_match(pool, s);
    const auto chunk_avail = [&] {
      // Adopting the match turns its tree-only pages non-reclaimable, so
      // subtract the whole match from the headroom estimate (conservative).
      return pool.allocatable_blocks() - m.pages() - decode_blocks_needed() -
             reserved_chunks;
    };
    const std::int64_t first_need =
        pool.blocks_for(std::min(m.tokens + budget, s.total_len())) -
        m.full_pages;
    // A blocked high-priority arrival may preempt strictly-lower-priority
    // residents for its first chunk's blocks.
    while (first_need > chunk_avail()) {
      std::vector<SessionId> cands;
      for (const auto cand : residents()) {
        if (table.at(cand).request.priority < s.request.priority) {
          cands.push_back(cand);
        }
      }
      if (cands.empty()) break;
      const SessionId victim = pick_victim(table, cands);
      evict_refunded(victim);
      std::erase(decoding, victim);
      std::erase(selected, victim);
    }
    if (first_need > chunk_avail()) break;
    std::erase(waiting_, id);
    s.phase = SessionPhase::kPrefilling;
    chunking_.push_back(id);
    admit_with_prefix(s, pool);
    if (fair && !s.deficit_charged) {
      deficit_[s.request.tenant] -= s.request.target_len();
      s.deficit_charged = true;
    }
    assign_chunk(id);
  }

  // Work conservation: the engine must never idle while work is queued.
  if (plan.prefills.empty() && plan.chunks.empty() && plan.decodes.empty() &&
      selected.empty()) {
    if (!chunking_.empty()) {
      // Every free block is held by other residents; force-evict
      // (ignoring priority) until the line's head can take one token.
      const SessionId head = chunking_.front();
      while (!assign_chunk(head)) {
        std::vector<SessionId> cands;
        for (const auto cand : residents()) {
          if (cand != head) cands.push_back(cand);
        }
        if (cands.empty()) break;
        evict_refunded(pick_victim(table, cands));
      }
    } else if (!waiting_.empty()) {
      // Everyone was deficit-gated: force-admit the ordered head anyway
      // (the charge still applies, so its tenant repays over time).
      for (const auto id : order) {
        if (table.at(id).phase != SessionPhase::kQueued) continue;
        Session& s = table.at(id);
        std::erase(waiting_, id);
        s.phase = SessionPhase::kPrefilling;
        chunking_.push_back(id);
        admit_with_prefix(s, pool);
        if (fair) {
          telemetry::count("serve.sched.forced_admissions");
          if (!s.deficit_charged) {
            deficit_[s.request.tenant] -= s.request.target_len();
            s.deficit_charged = true;
          }
        }
        assign_chunk(id);
        break;
      }
    }
  }

  if (fair) {
    for (const auto& [tenant, tokens] : deficit_) {
      telemetry::gauge("serve.sched.tenant_deficit.t" + std::to_string(tenant),
                       static_cast<double>(tokens));
    }
  }

  std::sort(selected.begin(), selected.end());
  plan.decodes = std::move(selected);
  return plan;
}

StepPlan Scheduler::plan_serial(SessionTable& table, KvPool& pool) {
  StepPlan plan;
  const auto decoding = table.ids_in_phase(SessionPhase::kDecoding);
  STOF_CHECK(decoding.size() <= 1, "serial mode runs one session at a time");
  if (!decoding.empty()) {
    // Serial never preempts: the pool is validated to hold one full
    // context, and only one session ever holds blocks.
    plan.decodes = decoding;
    return plan;
  }
  if (!waiting_.empty()) {
    const SessionId id = waiting_.front();
    Session& s = table.at(id);
    const PrefixMatch m = admission_match(pool, s);
    const std::int64_t avail =
        pool.free_blocks() +
        std::max<std::int64_t>(0, pool.reclaimable_blocks() - m.pages());
    STOF_CHECK(pool.blocks_for(s.total_len()) - m.full_pages <= avail,
               "pool too small for a single context");
    waiting_.pop_front();
    admit_with_prefix(s, pool);
    plan.prefills.push_back(id);
  }
  return plan;
}

}  // namespace stof::serve
