// Paged KV-cache pool (vLLM-style) for the serving engine.
//
// The pool owns one bounded half-precision arena per side (K and V),
// carved into fixed-size blocks of `block_tokens` positions; each block is
// (block_tokens, heads, head_size) row-major, the layout mha::PagedSeq
// consumes directly.  Sessions grow token by token: append_token() hands
// back writable K/V slots for the next position, allocating a fresh block
// from the free list when the session's last block fills, and fails
// cleanly (std::nullopt) when the pool is exhausted — the scheduler then
// decides whom to preempt.  Blocks are recycled via release(); the free
// list is kept sorted so allocation order is a pure function of the
// request sequence, never of pointer values.
//
// Prefix sharing (radix tree + copy-on-write): blocks carry reference
// counts, and a PrefixIndex radix tree maps templated-prompt token-ID
// chains (page-granularity nodes, keyed per mask kind) to resident pages.
// On admission the scheduler matches a request's template prefix against
// the tree and adopt_prefix() maps the shared page run into the session's
// block list at refcount+1 — the session then prefills only its unshared
// suffix, starting its output digest from the chain value the tree stored
// alongside the pages.  The first mutating append to a shared page (a
// partial tail page, or the donor's own decode append after publishing)
// copies the page's valid rows into a private block first (CoW), so a
// shared page's bytes are immutable for as long as anything references
// it.  release()/truncate() are refcount-aware: a block is recycled (and
// its generation bumped, invalidating float/INT8 panels) only when the
// last owner drops it — shared pages therefore keep one PanelCacheRegistry
// key across owners, and a prefix hit is also a panel-cache hit.  Pages
// held only by the tree are reclaimed LRU-subtree-first when the free
// list runs dry, so the prefix cache never displaces live sessions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/core/checksum.hpp"
#include "stof/core/half.hpp"
#include "stof/core/panel_cache_registry.hpp"
#include "stof/serve/request.hpp"

namespace stof::serve {

struct KvPoolConfig {
  std::int64_t num_blocks = 0;    ///< pool capacity in blocks
  std::int64_t block_tokens = 0;  ///< positions per block (power of two)
  std::int64_t heads = 0;
  std::int64_t head_size = 0;

  void validate() const {
    STOF_EXPECTS(num_blocks > 0 && heads > 0 && head_size > 0);
    STOF_EXPECTS(block_tokens >= 1 &&
                     (block_tokens & (block_tokens - 1)) == 0,
                 "block_tokens must be a power of two");
  }
  /// Halfs per block per side.
  [[nodiscard]] std::int64_t block_elems() const {
    return block_tokens * heads * head_size;
  }
};

/// Writable K/V destination for one appended token: `heads * head_size`
/// halfs each, laid out (head, dim).
struct TokenSlot {
  half* k = nullptr;
  half* v = nullptr;
};

/// Result of matching (or adopting) a request's template prefix against
/// the pool's radix tree.
struct PrefixMatch {
  std::int64_t tokens = 0;      ///< matched template positions
  std::int64_t full_pages = 0;  ///< matched pages holding block_tokens rows
  bool partial = false;         ///< a partial (frozen) tail page matched too
  /// FNV-1a output-digest chain value after folding positions [0, tokens)
  /// — the digest a fresh session starts from when it adopts this prefix.
  std::uint64_t digest_after = kFnv1aOffset;

  [[nodiscard]] std::int64_t pages() const {
    return full_pages + (partial ? 1 : 0);
  }
};

/// Radix tree over templated-prompt token-ID chains at KV-page
/// granularity.  Each node freezes one pool block: `valid_tokens` rows of
/// template content (== block_tokens for interior nodes; partial nodes are
/// always leaves), the page's token-key hash, and the output-digest chain
/// value after the node's last position.  Roots branch on the request's
/// mask kind — prompt *outputs* (hence digests) depend on the attention
/// pattern, so chains never cross mask kinds.  The tree stores block ids
/// only; the owning KvPool maintains the per-block refcounts (one ref per
/// live node, plus one per session mapping the block).
class PrefixIndex {
 public:
  struct Node {
    std::int32_t block = -1;
    std::int64_t valid_tokens = 0;
    std::uint64_t page_key = 0;
    std::uint64_t digest_after = kFnv1aOffset;
    std::int64_t last_use = 0;   ///< LRU stamp (monotonic match clock)
    std::int32_t parent = -1;    ///< -1 for root children
    int mask_kind = 0;           ///< root key (redundant for non-roots)
    std::vector<std::int32_t> children;  ///< node ids, insertion order
  };

  /// Token-key hash of positions [begin, end) of `r`'s stream: the chain
  /// the tree matches on.  Pure function of (token seeds, positions).
  static std::uint64_t page_key(const Request& r, std::int64_t begin,
                                std::int64_t end);

  /// Deepest chain of `r`'s template prefix present in the tree, capped at
  /// `cap_tokens` positions.  Returns the matched node ids root-first.
  [[nodiscard]] std::vector<std::int32_t> walk(const Request& r,
                                               std::int64_t cap_tokens) const;

  [[nodiscard]] const Node& node(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const { return live_nodes_; }

 private:
  friend class KvPool;

  Node& node_mut(std::int32_t id) {
    return nodes_[static_cast<std::size_t>(id)];
  }
  /// Insert a node under `parent` (-1 = root level for `mask_kind`).
  std::int32_t insert(std::int32_t parent, int mask_kind, Node node);
  /// Remove the subtree rooted at `id`, invoking `on_drop(block)` for each
  /// removed node's block (the pool decrements refcounts there).
  template <typename Fn>
  void remove_subtree(std::int32_t id, Fn&& on_drop);
  /// Stamp `id` and its ancestors with `now` (ancestors never go older
  /// than their descendants, so subtree eviction order stays coherent).
  void touch_chain(std::int32_t id, std::int64_t now);

  std::vector<Node> nodes_;          ///< slot arena; freed slots recycled
  std::vector<std::int32_t> free_slots_;
  std::map<int, std::vector<std::int32_t>> roots_;  ///< mask kind -> children
  std::size_t live_nodes_ = 0;
};

/// Bounded paged KV-cache with per-session block lists.
///
/// Float-panel sidecar: ensure_float_panels() materialises FP32 views of a
/// session's KV pages through the cross-call PanelCacheRegistry, converting
/// only pages (or page suffixes) appended since the last call — per-step
/// conversion work is O(new tokens), not O(prefix).  Fully converted leading
/// pages are pinned (PanelRef) and skipped on later calls.  release()
/// invalidates the registry entries and bumps each page's generation, so a
/// recycled page can never serve another session's stale floats; a preempted
/// session that recomputes its prefix therefore stays bit-identical.
class KvPool {
 public:
  explicit KvPool(const KvPoolConfig& config,
                  core::PanelCacheRegistry* registry = nullptr);
  ~KvPool();

  KvPool(const KvPool&) = delete;
  KvPool& operator=(const KvPool&) = delete;

  [[nodiscard]] const KvPoolConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t total_blocks() const {
    return config_.num_blocks;
  }
  [[nodiscard]] std::int64_t free_blocks() const {
    return static_cast<std::int64_t>(free_.size());
  }
  [[nodiscard]] std::int64_t used_blocks() const {
    return total_blocks() - free_blocks();
  }
  [[nodiscard]] std::int64_t peak_used_blocks() const { return peak_used_; }

  /// Blocks held only by the prefix tree (refcount == 1, no session):
  /// these are reclaimed LRU-first when allocation finds the free list
  /// empty, so they count as allocatable headroom for the scheduler.
  [[nodiscard]] std::int64_t reclaimable_blocks() const;
  /// Free-list blocks plus tree-reclaimable ones — what the scheduler may
  /// treat as obtainable without preempting a session.
  [[nodiscard]] std::int64_t allocatable_blocks() const {
    return free_blocks() + reclaimable_blocks();
  }
  /// Blocks the tree currently references (shared or not).
  [[nodiscard]] std::int64_t prefix_blocks() const {
    return static_cast<std::int64_t>(prefix_.size());
  }

  /// Blocks needed to hold `tokens` positions.
  [[nodiscard]] std::int64_t blocks_for(std::int64_t tokens) const {
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
  }

  /// Tokens currently cached for `id` (0 if the session holds nothing).
  [[nodiscard]] std::int64_t tokens(SessionId id) const;
  /// Blocks currently held by `id`.
  [[nodiscard]] std::int64_t blocks(SessionId id) const;

  /// Whether appending one token to `id` needs a fresh block.
  [[nodiscard]] bool append_needs_block(SessionId id) const {
    return tokens(id) % config_.block_tokens == 0;
  }

  /// Blocks `id` holds whose refcount is 1 — the pages release() would
  /// actually return to the free list.  The scheduler's preemption cost
  /// model must use this, not blocks(): evicting a prefix-sharing session
  /// frees only its private pages.
  [[nodiscard]] std::int64_t private_blocks(SessionId id) const;

  /// Blocks of `id` that survive appends as-is: all of them, minus one if
  /// the tail page is shared *and* partial (the first append must CoW it
  /// into a fresh block, consuming an allocation the tail page no longer
  /// saves).
  [[nodiscard]] std::int64_t usable_blocks(SessionId id) const;

  /// Allocations appending `n` more tokens to `id` will consume (fresh
  /// tail pages plus a possible CoW copy of a shared partial tail) — the
  /// number the scheduler must see in free/allocatable blocks before
  /// planning those appends.
  [[nodiscard]] std::int64_t append_reserve_blocks(SessionId id,
                                                   std::int64_t n) const {
    return blocks_for(tokens(id) + n) - usable_blocks(id);
  }

  /// Reserve the next position's K/V slot for `id`, allocating a block if
  /// the session's tail block is full.  A shared tail page is first copied
  /// into a private block (copy-on-write) — shared pages are immutable.
  /// Returns std::nullopt when the pool has no free or tree-reclaimable
  /// block to give (session state unchanged).
  std::optional<TokenSlot> append_token(SessionId id);

  // ---- Prefix sharing ------------------------------------------------

  /// Deepest resident chain matching `r`'s template prefix (capped at
  /// `cap_tokens`), without mutating anything.  tokens == 0 when the tree
  /// has nothing (or sharing does not apply to `r`).
  [[nodiscard]] PrefixMatch match_prefix(const Request& r,
                                         std::int64_t cap_tokens) const;

  /// Map the matched chain into `id`'s (empty) block list at refcount+1
  /// and set its cached token count to the match length.  The session
  /// prefills only [match.tokens, ...) afterwards, starting its digest
  /// from match.digest_after.  Counts serve.prefix.{hits,shared_pages,
  /// bytes_saved}.
  PrefixMatch adopt_prefix(SessionId id, const Request& r,
                           std::int64_t cap_tokens);

  /// Insert `id`'s freshly prefilled template pages into the tree (pages
  /// not already present, in chain order), bumping each published block's
  /// refcount.  `page_digests[q]` / `page_digest_ok[q]` carry the digest
  /// chain value after template page q's last position (captured by the
  /// engine's prompt folding); publishing stops at the first page without
  /// a captured digest, or where the resident chain ends on a partial
  /// node (partial nodes are frozen leaves and never extended).
  void publish_prefix(SessionId id, const Request& r,
                      std::span<const std::uint64_t> page_digests,
                      std::span<const std::uint8_t> page_digest_ok);

  /// Drop `id`'s cached tokens beyond `new_tokens` — the speculative
  /// decoder's exact rollback of rejected draft slots.  Trailing blocks
  /// are unmapped (refcount-aware); a surviving tail page that lost rows
  /// has its generation bumped and panels invalidated, so the registry can
  /// never extend a sidecar over rows whose bytes changed.
  void truncate(SessionId id, std::int64_t new_tokens);

  /// Exhaustive internal audit: refcounts equal (sessions mapping the
  /// block) + (tree nodes referencing it), the free list is exactly the
  /// refcount-0 blocks with no duplicates, and session/tree token counts
  /// are consistent.  Fuzz tests call this after every step.
  [[nodiscard]] bool check_conservation() const;

  [[nodiscard]] const PrefixIndex& prefix_index() const { return prefix_; }

  /// Base pointers of the session's blocks, oldest first — the views a
  /// mha::PagedSeq wants.  Valid until the next release() for this id.
  [[nodiscard]] std::span<const half* const> k_blocks(SessionId id) const;
  [[nodiscard]] std::span<const half* const> v_blocks(SessionId id) const;

  /// Bring the session's float-panel sidecar up to date with its half
  /// pages: converts only rows not already covered by the registry (new
  /// pages, or the growing suffix of the tail page).  After this call,
  /// k_float_blocks()/v_float_blocks() cover every cached token of `id`.
  /// No-op for sessions that hold nothing.
  void ensure_float_panels(SessionId id);

  /// Per-block FP32 views matching k_blocks()/v_blocks(), valid until the
  /// next ensure_float_panels() or release() for this id.  Empty until
  /// ensure_float_panels() has run for the session.
  [[nodiscard]] std::span<const float* const> k_float_blocks(
      SessionId id) const;
  [[nodiscard]] std::span<const float* const> v_float_blocks(
      SessionId id) const;

  /// INT8 twin of ensure_float_panels: per-block code panels with one
  /// symmetric scale per token row (scale group = heads * head_size), so a
  /// row's codes depend only on that row's values and the quantize-once
  /// extension of a filling tail page is exact.  Converts 1 byte per new
  /// element instead of the float sidecar's 2 — the INT8 tier's traffic
  /// saving.  A session uses either sidecar, per EngineConfig::kv_precision.
  void ensure_int8_panels(SessionId id);

  /// Per-block INT8 views matching k_blocks()/v_blocks(): codes plus one
  /// scale per token row of each block.  Valid until the next
  /// ensure_int8_panels() or release(); empty until the first ensure.
  [[nodiscard]] std::span<const std::int8_t* const> k_int8_blocks(
      SessionId id) const;
  [[nodiscard]] std::span<const std::int8_t* const> v_int8_blocks(
      SessionId id) const;
  [[nodiscard]] std::span<const float* const> k_int8_scales(
      SessionId id) const;
  [[nodiscard]] std::span<const float* const> v_int8_scales(
      SessionId id) const;

  /// Return every block held by `id` to the free list (preemption or
  /// completion) and invalidate its float panels.  No-op for sessions that
  /// hold nothing.
  void release(SessionId id);

 private:
  struct SessionBlocks {
    std::vector<std::int32_t> block_ids;
    std::vector<const half*> k_ptrs;
    std::vector<const half*> v_ptrs;
    std::int64_t tokens = 0;
    // Float-panel sidecar state (filled by ensure_float_panels).
    std::vector<const float*> kf_ptrs;
    std::vector<const float*> vf_ptrs;
    std::vector<core::PanelRef> kf_refs;  ///< pins keeping buffers alive
    std::vector<core::PanelRef> vf_refs;
    /// Leading blocks whose panels are full and pinned — skipped on the
    /// next ensure (their half content can no longer change while held).
    std::int64_t converted_blocks = 0;
    // INT8 sidecar state (filled by ensure_int8_panels).
    std::vector<const std::int8_t*> k8_ptrs;
    std::vector<const std::int8_t*> v8_ptrs;
    std::vector<const float*> k8_scale_ptrs;
    std::vector<const float*> v8_scale_ptrs;
    std::vector<core::Int8PanelRef> k8_refs;
    std::vector<core::Int8PanelRef> v8_refs;
    std::int64_t converted_blocks_i8 = 0;
    /// Force copy-on-write on the next partial-tail append even if the
    /// tail's refcount has dropped back to 1.  Set when the session adopts
    /// (or truncates onto) a shared partial page: the page's registry
    /// entry may cover more rows than this session has written, so an
    /// in-place append could be served stale panel rows.  CoW remaps to a
    /// fresh block (fresh key/generation), which is always safe.
    bool cow_pending = false;
  };

  /// Pop a block from the free list, reclaiming the LRU tree-only subtree
  /// when it is empty.  Returns -1 when nothing is obtainable.
  [[nodiscard]] std::int32_t acquire_block();
  /// Copy the valid rows of `id`'s shared partial tail page into a fresh
  /// private block, remapping the session's tail.  Returns false when no
  /// block is obtainable (session state unchanged).
  bool cow_tail(SessionBlocks& sb);
  /// Evict the least-recently-used tree subtree whose root block is held
  /// only by the tree.  Returns true if at least one block was freed.
  bool reclaim_lru_prefix();
  /// Drop one reference to `block`; on zero, recycle it (free list +
  /// panel invalidation + generation bump).
  void unref_block(std::int32_t block);
  /// Invalidate every sidecar panel entry of `block` and bump its
  /// generation.
  void invalidate_block_panels(std::int32_t block);

  [[nodiscard]] half* k_base(std::int32_t block) {
    return k_arena_.data() +
           static_cast<std::size_t>(block) *
               static_cast<std::size_t>(config_.block_elems());
  }
  [[nodiscard]] half* v_base(std::int32_t block) {
    return v_arena_.data() +
           static_cast<std::size_t>(block) *
               static_cast<std::size_t>(config_.block_elems());
  }

  KvPoolConfig config_;
  core::PanelCacheRegistry* registry_ = nullptr;
  std::vector<half> k_arena_;
  std::vector<half> v_arena_;
  /// Free block ids, sorted descending so pop_back() yields the smallest.
  std::vector<std::int32_t> free_;
  std::map<SessionId, SessionBlocks> by_session_;
  std::int64_t peak_used_ = 0;
  /// Synthetic per-block storage ids for the registry (blocks are carved
  /// out of one arena, so arena identity alone can't key them).
  std::vector<std::uint64_t> k_keys_;
  std::vector<std::uint64_t> v_keys_;
  /// Per-block generation, bumped when a block is recycled (or a surviving
  /// tail page loses rows in truncate); used as the registry version so a
  /// page can never serve stale floats.
  std::vector<std::uint64_t> block_gen_;
  /// Per-block reference count: sessions mapping the block plus (0 or 1
  /// for) the prefix-tree node freezing it.  0 == on the free list.
  std::vector<std::int32_t> block_refs_;
  PrefixIndex prefix_;
  /// Monotonic LRU clock for prefix-tree touches (adopt/publish order,
  /// never wall time, so replay stays deterministic).
  std::int64_t prefix_clock_ = 0;
};

}  // namespace stof::serve
