// Paged KV-cache pool (vLLM-style) for the serving engine.
//
// The pool owns one bounded half-precision arena per side (K and V),
// carved into fixed-size blocks of `block_tokens` positions; each block is
// (block_tokens, heads, head_size) row-major, the layout mha::PagedSeq
// consumes directly.  Sessions grow token by token: append_token() hands
// back writable K/V slots for the next position, allocating a fresh block
// from the free list when the session's last block fills, and fails
// cleanly (std::nullopt) when the pool is exhausted — the scheduler then
// decides whom to preempt.  Blocks are recycled via release(); the free
// list is kept sorted so allocation order is a pure function of the
// request sequence, never of pointer values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/core/half.hpp"
#include "stof/core/panel_cache_registry.hpp"
#include "stof/serve/request.hpp"

namespace stof::serve {

struct KvPoolConfig {
  std::int64_t num_blocks = 0;    ///< pool capacity in blocks
  std::int64_t block_tokens = 0;  ///< positions per block (power of two)
  std::int64_t heads = 0;
  std::int64_t head_size = 0;

  void validate() const {
    STOF_EXPECTS(num_blocks > 0 && heads > 0 && head_size > 0);
    STOF_EXPECTS(block_tokens >= 1 &&
                     (block_tokens & (block_tokens - 1)) == 0,
                 "block_tokens must be a power of two");
  }
  /// Halfs per block per side.
  [[nodiscard]] std::int64_t block_elems() const {
    return block_tokens * heads * head_size;
  }
};

/// Writable K/V destination for one appended token: `heads * head_size`
/// halfs each, laid out (head, dim).
struct TokenSlot {
  half* k = nullptr;
  half* v = nullptr;
};

/// Bounded paged KV-cache with per-session block lists.
///
/// Float-panel sidecar: ensure_float_panels() materialises FP32 views of a
/// session's KV pages through the cross-call PanelCacheRegistry, converting
/// only pages (or page suffixes) appended since the last call — per-step
/// conversion work is O(new tokens), not O(prefix).  Fully converted leading
/// pages are pinned (PanelRef) and skipped on later calls.  release()
/// invalidates the registry entries and bumps each page's generation, so a
/// recycled page can never serve another session's stale floats; a preempted
/// session that recomputes its prefix therefore stays bit-identical.
class KvPool {
 public:
  explicit KvPool(const KvPoolConfig& config,
                  core::PanelCacheRegistry* registry = nullptr);
  ~KvPool();

  KvPool(const KvPool&) = delete;
  KvPool& operator=(const KvPool&) = delete;

  [[nodiscard]] const KvPoolConfig& config() const { return config_; }
  [[nodiscard]] std::int64_t total_blocks() const {
    return config_.num_blocks;
  }
  [[nodiscard]] std::int64_t free_blocks() const {
    return static_cast<std::int64_t>(free_.size());
  }
  [[nodiscard]] std::int64_t used_blocks() const {
    return total_blocks() - free_blocks();
  }
  [[nodiscard]] std::int64_t peak_used_blocks() const { return peak_used_; }

  /// Blocks needed to hold `tokens` positions.
  [[nodiscard]] std::int64_t blocks_for(std::int64_t tokens) const {
    return (tokens + config_.block_tokens - 1) / config_.block_tokens;
  }

  /// Tokens currently cached for `id` (0 if the session holds nothing).
  [[nodiscard]] std::int64_t tokens(SessionId id) const;
  /// Blocks currently held by `id`.
  [[nodiscard]] std::int64_t blocks(SessionId id) const;

  /// Whether appending one token to `id` needs a fresh block.
  [[nodiscard]] bool append_needs_block(SessionId id) const {
    return tokens(id) % config_.block_tokens == 0;
  }

  /// Reserve the next position's K/V slot for `id`, allocating a block if
  /// the session's tail block is full.  Returns std::nullopt when the pool
  /// has no free block to give (session state unchanged).
  std::optional<TokenSlot> append_token(SessionId id);

  /// Base pointers of the session's blocks, oldest first — the views a
  /// mha::PagedSeq wants.  Valid until the next release() for this id.
  [[nodiscard]] std::span<const half* const> k_blocks(SessionId id) const;
  [[nodiscard]] std::span<const half* const> v_blocks(SessionId id) const;

  /// Bring the session's float-panel sidecar up to date with its half
  /// pages: converts only rows not already covered by the registry (new
  /// pages, or the growing suffix of the tail page).  After this call,
  /// k_float_blocks()/v_float_blocks() cover every cached token of `id`.
  /// No-op for sessions that hold nothing.
  void ensure_float_panels(SessionId id);

  /// Per-block FP32 views matching k_blocks()/v_blocks(), valid until the
  /// next ensure_float_panels() or release() for this id.  Empty until
  /// ensure_float_panels() has run for the session.
  [[nodiscard]] std::span<const float* const> k_float_blocks(
      SessionId id) const;
  [[nodiscard]] std::span<const float* const> v_float_blocks(
      SessionId id) const;

  /// INT8 twin of ensure_float_panels: per-block code panels with one
  /// symmetric scale per token row (scale group = heads * head_size), so a
  /// row's codes depend only on that row's values and the quantize-once
  /// extension of a filling tail page is exact.  Converts 1 byte per new
  /// element instead of the float sidecar's 2 — the INT8 tier's traffic
  /// saving.  A session uses either sidecar, per EngineConfig::kv_precision.
  void ensure_int8_panels(SessionId id);

  /// Per-block INT8 views matching k_blocks()/v_blocks(): codes plus one
  /// scale per token row of each block.  Valid until the next
  /// ensure_int8_panels() or release(); empty until the first ensure.
  [[nodiscard]] std::span<const std::int8_t* const> k_int8_blocks(
      SessionId id) const;
  [[nodiscard]] std::span<const std::int8_t* const> v_int8_blocks(
      SessionId id) const;
  [[nodiscard]] std::span<const float* const> k_int8_scales(
      SessionId id) const;
  [[nodiscard]] std::span<const float* const> v_int8_scales(
      SessionId id) const;

  /// Return every block held by `id` to the free list (preemption or
  /// completion) and invalidate its float panels.  No-op for sessions that
  /// hold nothing.
  void release(SessionId id);

 private:
  struct SessionBlocks {
    std::vector<std::int32_t> block_ids;
    std::vector<const half*> k_ptrs;
    std::vector<const half*> v_ptrs;
    std::int64_t tokens = 0;
    // Float-panel sidecar state (filled by ensure_float_panels).
    std::vector<const float*> kf_ptrs;
    std::vector<const float*> vf_ptrs;
    std::vector<core::PanelRef> kf_refs;  ///< pins keeping buffers alive
    std::vector<core::PanelRef> vf_refs;
    /// Leading blocks whose panels are full and pinned — skipped on the
    /// next ensure (their half content can no longer change while held).
    std::int64_t converted_blocks = 0;
    // INT8 sidecar state (filled by ensure_int8_panels).
    std::vector<const std::int8_t*> k8_ptrs;
    std::vector<const std::int8_t*> v8_ptrs;
    std::vector<const float*> k8_scale_ptrs;
    std::vector<const float*> v8_scale_ptrs;
    std::vector<core::Int8PanelRef> k8_refs;
    std::vector<core::Int8PanelRef> v8_refs;
    std::int64_t converted_blocks_i8 = 0;
  };

  [[nodiscard]] half* k_base(std::int32_t block) {
    return k_arena_.data() +
           static_cast<std::size_t>(block) *
               static_cast<std::size_t>(config_.block_elems());
  }
  [[nodiscard]] half* v_base(std::int32_t block) {
    return v_arena_.data() +
           static_cast<std::size_t>(block) *
               static_cast<std::size_t>(config_.block_elems());
  }

  KvPoolConfig config_;
  core::PanelCacheRegistry* registry_ = nullptr;
  std::vector<half> k_arena_;
  std::vector<half> v_arena_;
  /// Free block ids, sorted descending so pop_back() yields the smallest.
  std::vector<std::int32_t> free_;
  std::map<SessionId, SessionBlocks> by_session_;
  std::int64_t peak_used_ = 0;
  /// Synthetic per-block storage ids for the registry (blocks are carved
  /// out of one arena, so arena identity alone can't key them).
  std::vector<std::uint64_t> k_keys_;
  std::vector<std::uint64_t> v_keys_;
  /// Per-block generation, bumped on release; used as the registry version
  /// so a recycled block never matches its previous tenant's panels.
  std::vector<std::uint64_t> block_gen_;
};

}  // namespace stof::serve
