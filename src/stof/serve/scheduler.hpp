// Continuous-batching scheduler.
//
// Each engine step the scheduler turns the current session/pool state into
// a StepPlan: which queued sessions to admit, which prefill work to run
// (whole prompts, or bounded-token chunks interleaved with decodes), which
// active sessions decode one token (all of them, batched into a single
// kernel), and which sessions to preempt when the KV pool cannot back
// every decoder's next token.  The plan is a pure function of (table,
// pool, queue, deficit) state, so a seeded trace replays deterministically.
//
// Two modes share the engine:
//   kContinuous — the real policy: admit up to a prefill budget per step,
//     decode every active session together, evict under KV pressure
//     (released sessions re-queue at the front and re-prefill their full
//     context on re-admission).  With `chunk_tokens == 0` prompts prefill
//     whole in their admission step (head-of-line blocking: a long prompt
//     stalls every decoder — the p99 killer this scheduler's chunked mode
//     exists to fix).  With `chunk_tokens > 0` prompts are split into
//     bounded-token chunks that ride the same step as the decode batch;
//     sessions park in kPrefilling between chunks.
//   kSerial — the baseline the bench compares against: strict FIFO, one
//     session at a time, prefill then token-by-token decode to completion
//     before the next request is admitted.  Same engine, same kernels,
//     same per-session numerics — only the packing differs.
//
// SLO machinery (all off by default, and exactly the legacy policy when
// off):
//   * Priorities: preemption victims are chosen lowest-priority-first
//     (ties: idlest last_touch_step, then youngest id — the legacy LRU
//     order), and admission orders the wait queue priority-first, earliest
//     deadline next, queue position last.  A chunk that cannot get a KV
//     block may preempt a strictly-lower-priority resident.
//   * Fairness: with `fairness_quantum_tokens > 0`, admission runs
//     weighted deficit round-robin over tenants — each planning step tops
//     up every tenant with queued work by quantum * weight tokens, and
//     admitting a session spends its target length from its tenant's
//     deficit (once — re-admission after a preemption neither charges nor
//     gates again).  A tenant that cannot afford its next session waits (others
//     may pass it); if nothing else is runnable the head session is
//     force-admitted so the engine never idles while work is queued
//     (work conservation; the charge still applies and may go negative).
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "stof/serve/kv_pool.hpp"
#include "stof/serve/session.hpp"

namespace stof::serve {

enum class SchedulerMode : std::uint8_t { kContinuous, kSerial };

struct SchedulerConfig {
  SchedulerMode mode = SchedulerMode::kContinuous;
  std::int64_t max_prefills_per_step = 8;  ///< sessions admitted per step
  std::int64_t prefill_token_budget = 1024;  ///< prompt tokens per step
  std::int64_t max_decode_batch = 256;  ///< decode sequences per step
  /// Chunked prefill: > 0 caps the prefill tokens packed into one step's
  /// varlen batch and lets prompts resume across steps.  0 keeps the
  /// legacy whole-prefill policy bit-for-bit.
  std::int64_t chunk_tokens = 0;
  /// Weighted-deficit-round-robin quantum (tokens topped up per tenant per
  /// planning step, scaled by tenant weight).  0 disables fairness.
  std::int64_t fairness_quantum_tokens = 0;
  /// Relative tenant weights for the fairness accountant (default 1).
  std::map<std::int32_t, std::int64_t> tenant_weights;
  /// Prefix sharing: admitted sessions with a templated prompt adopt the
  /// pool's resident prefix pages and prefill only their unshared suffix.
  /// Requests with template_len == 0 are unaffected either way, so the
  /// default changes nothing for legacy traces.
  bool prefix_sharing = true;
  /// KV slots each selected decoder appends per step (1 = plain decoding;
  /// the speculative engine reserves draft_tokens + 1 so a verify round's
  /// appends can never fail mid-batch).
  std::int64_t decode_appends = 1;

  void validate(std::int64_t max_seq_len) const {
    STOF_EXPECTS(max_prefills_per_step >= 1 && max_decode_batch >= 1);
    STOF_EXPECTS(chunk_tokens >= 0 && fairness_quantum_tokens >= 0);
    STOF_EXPECTS(decode_appends >= 1, "decoders append at least one slot");
    if (chunk_tokens == 0) {
      STOF_EXPECTS(prefill_token_budget >= max_seq_len,
                   "prefill budget must admit the longest context");
    }
    for (const auto& [tenant, weight] : tenant_weights) {
      STOF_EXPECTS(tenant >= 0 && weight >= 1,
                   "tenant weights must be >= 1");
    }
  }
};

/// One bounded slice of a session's prefill: ingest positions
/// [begin, end) of its context this step.
struct PrefillChunk {
  SessionId id = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t tokens() const { return end - begin; }
};

/// One step's worth of scheduling decisions, in execution order.
struct StepPlan {
  std::vector<SessionId> evicted;   ///< preempted before this step's work
  std::vector<SessionId> prefills;  ///< whole-prefill admissions, FIFO order
  std::vector<PrefillChunk> chunks;  ///< chunked prefill slices, in order
  std::vector<SessionId> decodes;   ///< decode one token, ascending id

  [[nodiscard]] bool empty() const {
    return evicted.empty() && prefills.empty() && chunks.empty() &&
           decodes.empty();
  }
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& config) : config_(config) {}

  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

  /// Add a freshly submitted session to the back of the wait queue.
  void enqueue(SessionId id) { waiting_.push_back(id); }

  /// True when nothing is waiting (the engine also checks for decoders).
  [[nodiscard]] bool queue_empty() const { return waiting_.empty(); }
  [[nodiscard]] std::size_t queue_depth() const { return waiting_.size(); }

  /// Current fairness deficit of `tenant` in tokens (0 when unknown).
  [[nodiscard]] std::int64_t tenant_deficit(std::int32_t tenant) const {
    const auto it = deficit_.find(tenant);
    return it == deficit_.end() ? 0 : it->second;
  }

  /// Compute this step's plan.  Mutates the wait queue (admissions pop,
  /// evictions push front) and sets evicted sessions back to kQueued with
  /// their KV released; the engine applies the rest of the plan.
  StepPlan plan_step(SessionTable& table, KvPool& pool, std::int64_t step);

 private:
  StepPlan plan_continuous(SessionTable& table, KvPool& pool,
                           std::int64_t step);
  StepPlan plan_chunked(SessionTable& table, KvPool& pool, std::int64_t step);
  StepPlan plan_serial(SessionTable& table, KvPool& pool);

  /// Pick the preemption victim among `candidates`: lowest priority first,
  /// then smallest last_touch_step (idlest), ties broken toward the
  /// largest (youngest) id.  Equal priorities reduce to the legacy
  /// LRU-idle order.
  static SessionId pick_victim(const SessionTable& table,
                               const std::vector<SessionId>& candidates);

  /// Release `victim`'s KV and re-queue it at the front of the wait queue
  /// (it keeps its seniority); records eviction telemetry.  The eviction
  /// cost model counts only the victim's private (refcount == 1) pages —
  /// shared prefix pages survive the release.
  void evict(SessionTable& table, KvPool& pool, StepPlan& plan,
             SessionId victim);

  /// Longest tree prefix `s` may adopt: its whole template for a fresh
  /// session, but never past prompt_digested_tokens for a re-admitted one
  /// (adopting beyond would skip output positions its digest still owes).
  [[nodiscard]] std::int64_t adopt_cap(const Session& s) const;
  /// Dry-run prefix match for admission accounting (empty when sharing is
  /// off or the request is untemplated).
  [[nodiscard]] PrefixMatch admission_match(const KvPool& pool,
                                            const Session& s) const;
  /// Adopt `s`'s prefix at admission time: map the shared pages, set
  /// cached/adopted token counts, and (for fresh sessions) start the
  /// output digest from the tree's chain value.
  void admit_with_prefix(Session& s, KvPool& pool) const;

  /// The wait queue in priority order: priority descending, then earliest
  /// deadline (0 = none = last within its class), then queue position.
  [[nodiscard]] std::vector<SessionId> admission_order(
      const SessionTable& table) const;

  [[nodiscard]] std::int64_t tenant_weight(std::int32_t tenant) const {
    const auto it = config_.tenant_weights.find(tenant);
    return it == config_.tenant_weights.end() ? 1 : it->second;
  }

  SchedulerConfig config_;
  std::deque<SessionId> waiting_;
  /// Sessions mid-chunked-prefill, in admission order; pruned each plan to
  /// those still kPrefilling.
  std::deque<SessionId> chunking_;
  /// Weighted-deficit-round-robin token accounts, by tenant.
  std::map<std::int32_t, std::int64_t> deficit_;
};

}  // namespace stof::serve
