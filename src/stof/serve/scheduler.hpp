// Continuous-batching scheduler.
//
// Each engine step the scheduler turns the current session/pool state into
// a StepPlan: which queued sessions to admit and prefill (packed into one
// ragged varlen batch per mask kind), which active sessions decode one
// token (all of them, batched into a single kernel), and which sessions to
// preempt when the KV pool cannot back every decoder's next token.  The
// plan is a pure function of (table, pool, queue) state, so a seeded trace
// replays deterministically.
//
// Two modes share the engine:
//   kContinuous — the real policy: admit up to a prefill budget per step,
//     decode every active session together, evict LRU-idle sessions under
//     KV pressure (released sessions re-queue at the front and re-prefill
//     their full context on re-admission).
//   kSerial — the baseline the bench compares against: strict FIFO, one
//     session at a time, prefill then token-by-token decode to completion
//     before the next request is admitted.  Same engine, same kernels,
//     same per-session numerics — only the packing differs.
#pragma once

#include <deque>
#include <vector>

#include "stof/serve/kv_pool.hpp"
#include "stof/serve/session.hpp"

namespace stof::serve {

enum class SchedulerMode : std::uint8_t { kContinuous, kSerial };

struct SchedulerConfig {
  SchedulerMode mode = SchedulerMode::kContinuous;
  std::int64_t max_prefills_per_step = 8;  ///< sessions admitted per step
  std::int64_t prefill_token_budget = 1024;  ///< prompt tokens per step
  std::int64_t max_decode_batch = 256;  ///< decode sequences per step

  void validate(std::int64_t max_seq_len) const {
    STOF_EXPECTS(max_prefills_per_step >= 1 && max_decode_batch >= 1);
    STOF_EXPECTS(prefill_token_budget >= max_seq_len,
                 "prefill budget must admit the longest context");
  }
};

/// One step's worth of scheduling decisions, in execution order.
struct StepPlan {
  std::vector<SessionId> evicted;   ///< preempted before this step's work
  std::vector<SessionId> prefills;  ///< admitted this step, FIFO order
  std::vector<SessionId> decodes;   ///< decode one token, ascending id

  [[nodiscard]] bool empty() const {
    return evicted.empty() && prefills.empty() && decodes.empty();
  }
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& config) : config_(config) {}

  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

  /// Add a freshly submitted session to the back of the wait queue.
  void enqueue(SessionId id) { waiting_.push_back(id); }

  /// True when nothing is waiting (the engine also checks for decoders).
  [[nodiscard]] bool queue_empty() const { return waiting_.empty(); }
  [[nodiscard]] std::size_t queue_depth() const { return waiting_.size(); }

  /// Compute this step's plan.  Mutates the wait queue (admissions pop,
  /// evictions push front) and sets evicted sessions back to kQueued with
  /// their KV released; the engine applies the rest of the plan.
  StepPlan plan_step(SessionTable& table, KvPool& pool, std::int64_t step);

 private:
  StepPlan plan_continuous(SessionTable& table, KvPool& pool,
                           std::int64_t step);
  StepPlan plan_serial(SessionTable& table, KvPool& pool);

  /// Pick the LRU-idle preemption victim among `candidates`: smallest
  /// last_touch_step, ties broken toward the largest (youngest) id.
  static SessionId pick_victim(const SessionTable& table,
                               const std::vector<SessionId>& candidates);

  SchedulerConfig config_;
  std::deque<SessionId> waiting_;
};

}  // namespace stof::serve
