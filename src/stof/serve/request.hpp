// Serving request and session lifecycle types (stof::serve).
//
// A Request describes one client of the serving engine: a synthetic prompt
// of `prompt_len` tokens followed by `max_new_tokens` autoregressive decode
// steps, attending under one of the library's sparse patterns intersected
// with the causal triangle.  Token embeddings are a pure function of
// (seed, position) — see engine.hpp — so a preempted session can be
// recomputed bit-identically from its request alone, and the same trace
// replayed under different scheduling modes must produce byte-identical
// per-session outputs.
#pragma once

#include <cstdint>

#include "stof/core/check.hpp"
#include "stof/masks/mask.hpp"

namespace stof::serve {

using SessionId = std::int64_t;

/// One serving request.  Arrival time is in *simulated* microseconds: the
/// engine's clock advances by the simulated GPU time of each step, so an
/// open-loop trace replay is deterministic end to end.
struct Request {
  SessionId id = 0;
  std::int64_t prompt_len = 0;
  std::int64_t max_new_tokens = 0;
  std::uint64_t seed = 0;  ///< token-embedding seed, unique per session
  masks::PatternKind mask_kind = masks::PatternKind::kCausal;
  double arrival_us = 0;

  /// Tenant owning the request.  The fairness accountant (when enabled)
  /// schedules admission as weighted deficit round-robin across tenants,
  /// so one tenant's flood cannot starve another's queue.
  std::int32_t tenant = 0;
  /// Scheduling priority, higher is more urgent.  Preemption evicts the
  /// lowest-priority-idlest resident first, and admission orders the wait
  /// queue priority-first; sessions of equal priority reduce to the
  /// LRU/FIFO behaviour of the priority-free scheduler.
  std::int32_t priority = 0;
  /// Absolute completion deadline in simulated microseconds; 0 = none.
  /// Deadlines order admission within a priority class (earliest first)
  /// and finishing later than the deadline counts a deadline miss — they
  /// are soft SLOs, never correctness gates.
  double deadline_us = 0;

  /// Templated-prompt identity: the first `template_len` prompt positions
  /// draw their token embedding from `template_seed` instead of the
  /// session's own seed, so every request naming the same (template_seed,
  /// template_len, mask_kind) carries a bit-identical prompt prefix — the
  /// shared system-prompt / few-shot-template shape the prefix-sharing KV
  /// cache exploits.  template_len == 0 (the default) is the legacy fully
  /// private prompt.  template_len must leave at least one private suffix
  /// token, so a prefix hit never produces an empty prefill.
  std::uint64_t template_seed = 0;
  std::int64_t template_len = 0;

  /// Final context length once every token has been generated.
  [[nodiscard]] std::int64_t target_len() const {
    return prompt_len + max_new_tokens;
  }

  void validate(std::int64_t max_seq_len) const {
    STOF_EXPECTS(id >= 0, "request id must be non-negative");
    STOF_EXPECTS(prompt_len > 0, "prompt must be non-empty");
    STOF_EXPECTS(max_new_tokens > 0, "must request at least one new token");
    STOF_EXPECTS(target_len() <= max_seq_len,
                 "prompt + generation exceeds engine max_seq_len");
    STOF_EXPECTS(arrival_us >= 0);
    STOF_EXPECTS(tenant >= 0, "tenant id must be non-negative");
    STOF_EXPECTS(priority >= 0, "priority must be non-negative");
    STOF_EXPECTS(deadline_us >= 0);
    STOF_EXPECTS(template_len >= 0 && template_len < prompt_len,
                 "template must leave a private prompt suffix");
  }
};

/// Embedding seed of position `pos` of this request's token stream: the
/// template seed inside the shared prefix, the session seed everywhere
/// else (private prompt suffix and generated tokens).  Token embeddings
/// are fill_token(token_seed(r, pos), pos, channel), so two requests with
/// equal templates produce byte-identical KV for the shared positions —
/// the invariant that makes prefix sharing exact rather than approximate.
[[nodiscard]] inline std::uint64_t token_seed(const Request& r,
                                              std::int64_t pos) {
  return pos < r.template_len ? r.template_seed : r.seed;
}

/// Lifecycle of a session inside the engine.
///
///   kQueued --admit--> kPrefilling --prefix done--> kDecoding --last-->
///      ^                    |                           |      kFinished
///      +------ preempt -----+---------------------------+
///        (KV blocks released; context is re-prefilled on re-admission)
///
/// Whole-prefill scheduling passes through kPrefilling within a single
/// step; chunked prefill parks a session there across steps while its
/// prompt is ingested chunk by chunk.
enum class SessionPhase : std::uint8_t {
  kQueued,
  kPrefilling,
  kDecoding,
  kFinished
};

}  // namespace stof::serve
