// Serving request and session lifecycle types (stof::serve).
//
// A Request describes one client of the serving engine: a synthetic prompt
// of `prompt_len` tokens followed by `max_new_tokens` autoregressive decode
// steps, attending under one of the library's sparse patterns intersected
// with the causal triangle.  Token embeddings are a pure function of
// (seed, position) — see engine.hpp — so a preempted session can be
// recomputed bit-identically from its request alone, and the same trace
// replayed under different scheduling modes must produce byte-identical
// per-session outputs.
#pragma once

#include <cstdint>

#include "stof/core/check.hpp"
#include "stof/masks/mask.hpp"

namespace stof::serve {

using SessionId = std::int64_t;

/// One serving request.  Arrival time is in *simulated* microseconds: the
/// engine's clock advances by the simulated GPU time of each step, so an
/// open-loop trace replay is deterministic end to end.
struct Request {
  SessionId id = 0;
  std::int64_t prompt_len = 0;
  std::int64_t max_new_tokens = 0;
  std::uint64_t seed = 0;  ///< token-embedding seed, unique per session
  masks::PatternKind mask_kind = masks::PatternKind::kCausal;
  double arrival_us = 0;

  /// Final context length once every token has been generated.
  [[nodiscard]] std::int64_t target_len() const {
    return prompt_len + max_new_tokens;
  }

  void validate(std::int64_t max_seq_len) const {
    STOF_EXPECTS(id >= 0, "request id must be non-negative");
    STOF_EXPECTS(prompt_len > 0, "prompt must be non-empty");
    STOF_EXPECTS(max_new_tokens > 0, "must request at least one new token");
    STOF_EXPECTS(target_len() <= max_seq_len,
                 "prompt + generation exceeds engine max_seq_len");
    STOF_EXPECTS(arrival_us >= 0);
  }
};

/// Lifecycle of a session inside the engine.
///
///   kQueued ----admit----> kDecoding ----last token----> kFinished
///      ^                       |
///      +------- preempt -------+   (KV blocks released; context is
///                                   re-prefilled on re-admission)
enum class SessionPhase : std::uint8_t { kQueued, kDecoding, kFinished };

}  // namespace stof::serve
