#include "stof/serve/kv_pool.hpp"

#include "stof/core/packed.hpp"
#include "stof/core/tensor.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::serve {

KvPool::KvPool(const KvPoolConfig& config, core::PanelCacheRegistry* registry)
    : config_(config),
      registry_(registry != nullptr ? registry
                                    : &core::global_panel_cache()) {
  config_.validate();
  const auto elems = static_cast<std::size_t>(config_.num_blocks *
                                              config_.block_elems());
  k_arena_.assign(elems, half{});
  v_arena_.assign(elems, half{});
  free_.reserve(static_cast<std::size_t>(config_.num_blocks));
  // Descending, so allocation hands out block 0, 1, 2, ... in order.
  for (std::int64_t b = config_.num_blocks - 1; b >= 0; --b) {
    free_.push_back(static_cast<std::int32_t>(b));
  }
  // Blocks live inside one arena, so arena identity can't key the panel
  // registry; mint a process-unique synthetic storage id per block+side.
  k_keys_.reserve(static_cast<std::size_t>(config_.num_blocks));
  v_keys_.reserve(static_cast<std::size_t>(config_.num_blocks));
  for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
    k_keys_.push_back(next_storage_id());
    v_keys_.push_back(next_storage_id());
  }
  block_gen_.assign(static_cast<std::size_t>(config_.num_blocks), 0);
}

KvPool::~KvPool() {
  // Lifecycle cleanup, not staleness: drop this pool's entries so a stream
  // of short-lived pools can't grow the registry with dead keys.
  for (const auto key : k_keys_) registry_->drop_storage(key);
  for (const auto key : v_keys_) registry_->drop_storage(key);
}

std::int64_t KvPool::tokens(SessionId id) const {
  const auto it = by_session_.find(id);
  return it == by_session_.end() ? 0 : it->second.tokens;
}

std::int64_t KvPool::blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  return it == by_session_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.block_ids.size());
}

std::optional<TokenSlot> KvPool::append_token(SessionId id) {
  SessionBlocks& sb = by_session_[id];
  const std::int64_t bt = config_.block_tokens;
  if (sb.tokens % bt == 0) {  // tail block full (or no block yet)
    if (free_.empty()) {
      if (sb.block_ids.empty()) by_session_.erase(id);
      return std::nullopt;
    }
    const std::int32_t block = free_.back();
    free_.pop_back();
    sb.block_ids.push_back(block);
    sb.k_ptrs.push_back(k_base(block));
    sb.v_ptrs.push_back(v_base(block));
    peak_used_ = std::max(peak_used_, used_blocks());
  }
  const std::int64_t local = sb.tokens % bt;
  const std::int32_t block = sb.block_ids.back();
  const std::int64_t row = local * config_.heads * config_.head_size;
  ++sb.tokens;
  return TokenSlot{k_base(block) + row, v_base(block) + row};
}

std::span<const half* const> KvPool::k_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k_ptrs;
}

std::span<const half* const> KvPool::v_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v_ptrs;
}

void KvPool::ensure_float_panels(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  SessionBlocks& sb = it->second;
  const std::int64_t bt = config_.block_tokens;
  const std::int64_t block_elems = config_.block_elems();
  const auto nblocks = static_cast<std::int64_t>(sb.block_ids.size());
  sb.kf_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.vf_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.kf_refs.resize(static_cast<std::size_t>(nblocks));
  sb.vf_refs.resize(static_cast<std::size_t>(nblocks));
  std::int64_t sidecar_elems = 0;
  // Leading `converted_blocks` pages are full and pinned — their half rows
  // can no longer change while this session holds them, so only the tail
  // (partially filled or newly allocated pages) is visited.  This is the
  // skip-prefix step that makes per-decode conversion O(new rows).
  for (std::int64_t p = sb.converted_blocks; p < nblocks; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const std::int32_t block = sb.block_ids[pi];
    const auto bi = static_cast<std::size_t>(block);
    const std::int64_t filled = std::min(bt, sb.tokens - p * bt);
    const std::int64_t valid =
        filled * config_.heads * config_.head_size;
    const half* ks = k_base(block);
    const half* vs = v_base(block);
    const auto k_convert = [ks](std::int64_t lo, std::int64_t hi,
                                float* dst) {
      packed::half_to_float({ks + lo, static_cast<std::size_t>(hi - lo)},
                            {dst + lo, static_cast<std::size_t>(hi - lo)});
    };
    const auto v_convert = [vs](std::int64_t lo, std::int64_t hi,
                                float* dst) {
      packed::half_to_float({vs + lo, static_cast<std::size_t>(hi - lo)},
                            {dst + lo, static_cast<std::size_t>(hi - lo)});
    };
    sb.kf_refs[pi] = registry_->get_or_convert(
        {k_keys_[bi], core::kPanelRowMajor}, block_gen_[bi], block_elems,
        valid, k_convert);
    sb.vf_refs[pi] = registry_->get_or_convert(
        {v_keys_[bi], core::kPanelRowMajor}, block_gen_[bi], block_elems,
        valid, v_convert);
    sb.kf_ptrs[pi] = sb.kf_refs[pi].data();
    sb.vf_ptrs[pi] = sb.vf_refs[pi].data();
    sidecar_elems += sb.kf_refs[pi].converted_elems +
                     sb.vf_refs[pi].converted_elems;
  }
  // Decode-sidecar traffic alone (prefill panels excluded): float views
  // write 2 bytes/elem, mirroring exec.panelcache.bytes_converted units.
  if (sidecar_elems > 0) {
    telemetry::count("serve.kv.sidecar_bytes_converted", 2 * sidecar_elems);
  }
  while (sb.converted_blocks < nblocks &&
         (sb.converted_blocks + 1) * bt <= sb.tokens) {
    ++sb.converted_blocks;
  }
}

void KvPool::ensure_int8_panels(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  SessionBlocks& sb = it->second;
  const std::int64_t bt = config_.block_tokens;
  const std::int64_t block_elems = config_.block_elems();
  const std::int64_t row = config_.heads * config_.head_size;
  const auto nblocks = static_cast<std::int64_t>(sb.block_ids.size());
  sb.k8_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.v8_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.k8_scale_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.v8_scale_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.k8_refs.resize(static_cast<std::size_t>(nblocks));
  sb.v8_refs.resize(static_cast<std::size_t>(nblocks));
  std::int64_t sidecar_elems = 0;
  // Same skip-prefix scheme as the float sidecar.  One scale per token row
  // keeps extension exact: a row's codes never depend on later rows, so
  // quantize-once over a filling tail page equals a fresh full quantize.
  for (std::int64_t p = sb.converted_blocks_i8; p < nblocks; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const std::int32_t block = sb.block_ids[pi];
    const auto bi = static_cast<std::size_t>(block);
    const std::int64_t filled = std::min(bt, sb.tokens - p * bt);
    const std::int64_t valid = filled * row;
    const half* ks = k_base(block);
    const half* vs = v_base(block);
    const auto quant = [row](const half* src) {
      return [src, row](std::int64_t lo, std::int64_t hi, std::int8_t* codes,
                        float* scales) {
        packed::quantize_halfs({src + lo, static_cast<std::size_t>(hi - lo)},
                               row, codes + lo, scales + lo / row);
      };
    };
    sb.k8_refs[pi] = registry_->get_or_convert_int8(
        {k_keys_[bi], core::kPanelRowMajor | core::kPanelInt8},
        block_gen_[bi], block_elems, valid, row, quant(ks));
    sb.v8_refs[pi] = registry_->get_or_convert_int8(
        {v_keys_[bi], core::kPanelRowMajor | core::kPanelInt8},
        block_gen_[bi], block_elems, valid, row, quant(vs));
    sb.k8_ptrs[pi] = sb.k8_refs[pi].data();
    sb.v8_ptrs[pi] = sb.v8_refs[pi].data();
    sb.k8_scale_ptrs[pi] = sb.k8_refs[pi].scale_data();
    sb.v8_scale_ptrs[pi] = sb.v8_refs[pi].scale_data();
    sidecar_elems += sb.k8_refs[pi].converted_elems +
                     sb.v8_refs[pi].converted_elems;
  }
  // INT8 codes are 1 byte/elem — half the float sidecar's traffic for the
  // same appended rows, which is the tier's headline saving.
  if (sidecar_elems > 0) {
    telemetry::count("serve.kv.sidecar_bytes_converted", sidecar_elems);
  }
  while (sb.converted_blocks_i8 < nblocks &&
         (sb.converted_blocks_i8 + 1) * bt <= sb.tokens) {
    ++sb.converted_blocks_i8;
  }
}

std::span<const std::int8_t* const> KvPool::k_int8_blocks(
    SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k8_ptrs;
}

std::span<const std::int8_t* const> KvPool::v_int8_blocks(
    SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v8_ptrs;
}

std::span<const float* const> KvPool::k_int8_scales(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k8_scale_ptrs;
}

std::span<const float* const> KvPool::v_int8_scales(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v8_scale_ptrs;
}

std::span<const float* const> KvPool::k_float_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.kf_ptrs;
}

std::span<const float* const> KvPool::v_float_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.vf_ptrs;
}

void KvPool::release(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  for (const auto block : it->second.block_ids) {
    free_.push_back(block);
    const auto bi = static_cast<std::size_t>(block);
    // A recycled page must never serve its previous tenant's floats (or
    // int8 codes): drop the registry entries now and bump the generation
    // so even a racing stale handle could not be re-validated.
    registry_->invalidate({k_keys_[bi], core::kPanelRowMajor});
    registry_->invalidate({v_keys_[bi], core::kPanelRowMajor});
    registry_->invalidate({k_keys_[bi], core::kPanelRowMajor | core::kPanelInt8});
    registry_->invalidate({v_keys_[bi], core::kPanelRowMajor | core::kPanelInt8});
    ++block_gen_[bi];
  }
  by_session_.erase(it);
  // Keep the free list sorted descending: allocation order stays a pure
  // function of the alloc/release sequence.
  std::sort(free_.begin(), free_.end(), std::greater<>());
}

}  // namespace stof::serve
