#include "stof/serve/kv_pool.hpp"

#include <functional>
#include <limits>

#include "stof/core/packed.hpp"
#include "stof/core/tensor.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::serve {

// ---- PrefixIndex ------------------------------------------------------

std::uint64_t PrefixIndex::page_key(const Request& r, std::int64_t begin,
                                    std::int64_t end) {
  // Chain over (seed, position) pairs: the pure inputs of fill_token, so
  // equal keys <=> byte-identical KV rows for the covered positions.
  std::uint64_t h = kFnv1aOffset;
  for (std::int64_t p = begin; p < end; ++p) {
    const std::uint64_t seed = token_seed(r, p);
    h = fnv1a64(&seed, sizeof(seed), h);
    const auto pos = static_cast<std::uint64_t>(p);
    h = fnv1a64(&pos, sizeof(pos), h);
  }
  return h;
}

std::vector<std::int32_t> PrefixIndex::walk(const Request& r,
                                            std::int64_t cap_tokens) const {
  std::vector<std::int32_t> chain;
  if (r.template_len <= 0) return chain;
  const std::int64_t cap = std::min(cap_tokens, r.template_len);
  const auto rit = roots_.find(static_cast<int>(r.mask_kind));
  const std::vector<std::int32_t>* level =
      rit == roots_.end() ? nullptr : &rit->second;
  std::int64_t tokens = 0;
  while (level != nullptr) {
    // Prefer the longest matching child (a full page beats a frozen
    // partial sibling); ties resolve to insertion order — deterministic.
    std::int32_t best = -1;
    std::int64_t best_valid = -1;
    for (const auto cid : *level) {
      const Node& n = nodes_[static_cast<std::size_t>(cid)];
      if (tokens + n.valid_tokens > cap) continue;
      if (n.valid_tokens <= best_valid) continue;
      if (n.page_key != page_key(r, tokens, tokens + n.valid_tokens)) continue;
      best = cid;
      best_valid = n.valid_tokens;
    }
    if (best < 0) break;
    chain.push_back(best);
    tokens += best_valid;
    // Partial nodes are leaves by construction (empty children), so the
    // loop terminates there without needing to know block_tokens.
    level = &nodes_[static_cast<std::size_t>(best)].children;
  }
  return chain;
}

std::int32_t PrefixIndex::insert(std::int32_t parent, int mask_kind,
                                 Node node) {
  node.parent = parent;
  node.mask_kind = mask_kind;
  node.children.clear();
  std::int32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    nodes_[static_cast<std::size_t>(id)] = std::move(node);
  } else {
    id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
  }
  if (parent < 0) {
    roots_[mask_kind].push_back(id);
  } else {
    nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  }
  ++live_nodes_;
  return id;
}

template <typename Fn>
void PrefixIndex::remove_subtree(std::int32_t id, Fn&& on_drop) {
  Node& root = nodes_[static_cast<std::size_t>(id)];
  auto& siblings = root.parent < 0
                       ? roots_[root.mask_kind]
                       : nodes_[static_cast<std::size_t>(root.parent)].children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), id));
  std::vector<std::int32_t> stack{id};
  while (!stack.empty()) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    Node& n = nodes_[static_cast<std::size_t>(cur)];
    for (const auto c : n.children) stack.push_back(c);
    on_drop(n.block);
    n = Node{};  // block = -1 marks the slot free
    free_slots_.push_back(cur);
    --live_nodes_;
  }
}

void PrefixIndex::touch_chain(std::int32_t id, std::int64_t now) {
  for (std::int32_t cur = id; cur >= 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    Node& n = nodes_[static_cast<std::size_t>(cur)];
    n.last_use = std::max(n.last_use, now);
  }
}

// ---- KvPool -----------------------------------------------------------

KvPool::KvPool(const KvPoolConfig& config, core::PanelCacheRegistry* registry)
    : config_(config),
      registry_(registry != nullptr ? registry
                                    : &core::global_panel_cache()) {
  config_.validate();
  const auto elems = static_cast<std::size_t>(config_.num_blocks *
                                              config_.block_elems());
  k_arena_.assign(elems, half{});
  v_arena_.assign(elems, half{});
  free_.reserve(static_cast<std::size_t>(config_.num_blocks));
  // Descending, so allocation hands out block 0, 1, 2, ... in order.
  for (std::int64_t b = config_.num_blocks - 1; b >= 0; --b) {
    free_.push_back(static_cast<std::int32_t>(b));
  }
  // Blocks live inside one arena, so arena identity can't key the panel
  // registry; mint a process-unique synthetic storage id per block+side.
  k_keys_.reserve(static_cast<std::size_t>(config_.num_blocks));
  v_keys_.reserve(static_cast<std::size_t>(config_.num_blocks));
  for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
    k_keys_.push_back(next_storage_id());
    v_keys_.push_back(next_storage_id());
  }
  block_gen_.assign(static_cast<std::size_t>(config_.num_blocks), 0);
  block_refs_.assign(static_cast<std::size_t>(config_.num_blocks), 0);
}

KvPool::~KvPool() {
  // Lifecycle cleanup, not staleness: drop this pool's entries so a stream
  // of short-lived pools can't grow the registry with dead keys.
  for (const auto key : k_keys_) registry_->drop_storage(key);
  for (const auto key : v_keys_) registry_->drop_storage(key);
}

std::int64_t KvPool::tokens(SessionId id) const {
  const auto it = by_session_.find(id);
  return it == by_session_.end() ? 0 : it->second.tokens;
}

std::int64_t KvPool::blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  return it == by_session_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.block_ids.size());
}

std::int64_t KvPool::reclaimable_blocks() const {
  std::int64_t n = 0;
  for (const auto& node : prefix_.nodes_) {
    if (node.block < 0) continue;  // free slot
    if (block_refs_[static_cast<std::size_t>(node.block)] == 1) ++n;
  }
  return n;
}

std::int64_t KvPool::private_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return 0;
  std::int64_t n = 0;
  for (const auto b : it->second.block_ids) {
    if (block_refs_[static_cast<std::size_t>(b)] == 1) ++n;
  }
  return n;
}

std::int64_t KvPool::usable_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return 0;
  const SessionBlocks& sb = it->second;
  auto n = static_cast<std::int64_t>(sb.block_ids.size());
  if (n > 0 && sb.tokens % config_.block_tokens != 0 &&
      (sb.cow_pending ||
       block_refs_[static_cast<std::size_t>(sb.block_ids.back())] > 1)) {
    --n;  // partial shared tail: the next append CoWs it into a new block
  }
  return n;
}

std::int32_t KvPool::acquire_block() {
  while (free_.empty() && reclaim_lru_prefix()) {
  }
  if (free_.empty()) return -1;
  const std::int32_t block = free_.back();
  free_.pop_back();
  auto& refs = block_refs_[static_cast<std::size_t>(block)];
  STOF_CHECK(refs == 0, "free-list block has live references");
  refs = 1;
  return block;
}

bool KvPool::reclaim_lru_prefix() {
  // Evict the least-recently-used subtree whose root block is held only by
  // the tree (no session).  Descendant blocks a session still maps merely
  // lose their tree reference; tree-only descendants are freed with the
  // root.  touch_chain keeps ancestors at least as fresh as descendants,
  // so the LRU pick is normally a leaf.
  std::int32_t victim = -1;
  std::int64_t victim_use = std::numeric_limits<std::int64_t>::max();
  for (std::int32_t id = 0;
       id < static_cast<std::int32_t>(prefix_.nodes_.size()); ++id) {
    const PrefixIndex::Node& n = prefix_.nodes_[static_cast<std::size_t>(id)];
    if (n.block < 0) continue;
    if (block_refs_[static_cast<std::size_t>(n.block)] != 1) continue;
    if (n.last_use < victim_use) {
      victim = id;
      victim_use = n.last_use;
    }
  }
  if (victim < 0) return false;
  std::int64_t dropped = 0;
  prefix_.remove_subtree(victim, [this, &dropped](std::int32_t block) {
    ++dropped;
    unref_block(block);
  });
  telemetry::count("serve.prefix.reclaimed_pages", dropped);
  return true;
}

void KvPool::unref_block(std::int32_t block) {
  auto& refs = block_refs_[static_cast<std::size_t>(block)];
  STOF_CHECK(refs > 0, "unref of a free block");
  if (--refs > 0) return;
  invalidate_block_panels(block);
  // Sorted-descending insertion keeps allocation order a pure function of
  // the alloc/release sequence, never of drop order within a batch.
  const auto pos =
      std::lower_bound(free_.begin(), free_.end(), block, std::greater<>());
  free_.insert(pos, block);
}

void KvPool::invalidate_block_panels(std::int32_t block) {
  const auto bi = static_cast<std::size_t>(block);
  // A recycled (or row-shrunk) page must never serve its previous bytes'
  // floats or int8 codes: drop the registry entries now and bump the
  // generation so even a racing stale handle could not be re-validated.
  registry_->invalidate({k_keys_[bi], core::kPanelRowMajor});
  registry_->invalidate({v_keys_[bi], core::kPanelRowMajor});
  registry_->invalidate({k_keys_[bi], core::kPanelRowMajor | core::kPanelInt8});
  registry_->invalidate({v_keys_[bi], core::kPanelRowMajor | core::kPanelInt8});
  ++block_gen_[bi];
}

bool KvPool::cow_tail(SessionBlocks& sb) {
  const std::int32_t fresh = acquire_block();
  if (fresh < 0) return false;
  const std::int32_t old = sb.block_ids.back();
  const std::int64_t valid_rows = sb.tokens % config_.block_tokens;
  const std::int64_t valid = valid_rows * config_.heads * config_.head_size;
  std::copy_n(k_base(old), static_cast<std::size_t>(valid), k_base(fresh));
  std::copy_n(v_base(old), static_cast<std::size_t>(valid), v_base(fresh));
  unref_block(old);
  sb.block_ids.back() = fresh;
  sb.k_ptrs.back() = k_base(fresh);
  sb.v_ptrs.back() = v_base(fresh);
  sb.cow_pending = false;
  // Sidecar state for the tail page is per-ensure anyway: the tail is
  // partial, so converted_blocks/_i8 never cover it and the next ensure
  // re-resolves the page under the fresh block's key.
  peak_used_ = std::max(peak_used_, used_blocks());
  telemetry::count("serve.prefix.cow_copies", 1);
  return true;
}

std::optional<TokenSlot> KvPool::append_token(SessionId id) {
  SessionBlocks& sb = by_session_[id];
  const std::int64_t bt = config_.block_tokens;
  const std::int64_t local = sb.tokens % bt;
  if (local == 0) {  // tail block full (or no block yet)
    const std::int32_t block = acquire_block();
    if (block < 0) {
      if (sb.block_ids.empty()) by_session_.erase(id);
      return std::nullopt;
    }
    sb.block_ids.push_back(block);
    sb.k_ptrs.push_back(k_base(block));
    sb.v_ptrs.push_back(v_base(block));
    peak_used_ = std::max(peak_used_, used_blocks());
  } else if (sb.cow_pending ||
             block_refs_[static_cast<std::size_t>(sb.block_ids.back())] > 1) {
    // Shared pages are immutable: copy the valid tail rows into a private
    // block before handing out a writable slot.
    if (!cow_tail(sb)) return std::nullopt;
  }
  const std::int32_t block = sb.block_ids.back();
  const std::int64_t row = local * config_.heads * config_.head_size;
  ++sb.tokens;
  return TokenSlot{k_base(block) + row, v_base(block) + row};
}

PrefixMatch KvPool::match_prefix(const Request& r,
                                 std::int64_t cap_tokens) const {
  PrefixMatch m;
  if (r.template_len <= 0 || cap_tokens <= 0) return m;
  const auto chain = prefix_.walk(r, cap_tokens);
  for (const auto nid : chain) {
    const PrefixIndex::Node& n = prefix_.node(nid);
    m.tokens += n.valid_tokens;
    if (n.valid_tokens == config_.block_tokens) {
      ++m.full_pages;
    } else {
      m.partial = true;
    }
    m.digest_after = n.digest_after;
  }
  return m;
}

PrefixMatch KvPool::adopt_prefix(SessionId id, const Request& r,
                                 std::int64_t cap_tokens) {
  PrefixMatch m;
  if (r.template_len <= 0 || cap_tokens <= 0) return m;
  STOF_CHECK(tokens(id) == 0, "adopt_prefix requires an empty session");
  const auto chain = prefix_.walk(r, cap_tokens);
  if (chain.empty()) return m;
  SessionBlocks& sb = by_session_[id];
  for (const auto nid : chain) {
    const PrefixIndex::Node& n = prefix_.node(nid);
    ++block_refs_[static_cast<std::size_t>(n.block)];
    sb.block_ids.push_back(n.block);
    sb.k_ptrs.push_back(k_base(n.block));
    sb.v_ptrs.push_back(v_base(n.block));
    m.tokens += n.valid_tokens;
    if (n.valid_tokens == config_.block_tokens) {
      ++m.full_pages;
    } else {
      m.partial = true;
    }
    m.digest_after = n.digest_after;
  }
  sb.tokens = m.tokens;
  // Adopted partial tails must CoW on first append even if every other
  // owner drops in the meantime — the page's registry entry may already
  // cover rows this session never wrote.
  sb.cow_pending = m.partial;
  prefix_.touch_chain(chain.back(), prefix_clock_++);
  telemetry::count("serve.prefix.hits", 1);
  telemetry::count("serve.prefix.shared_pages", m.pages());
  // Bytes of K+V half rows this session did not have to re-prefill.
  telemetry::count("serve.prefix.bytes_saved",
                   m.tokens * config_.heads * config_.head_size * 2 * 2);
  return m;
}

void KvPool::publish_prefix(SessionId id, const Request& r,
                            std::span<const std::uint64_t> page_digests,
                            std::span<const std::uint8_t> page_digest_ok) {
  if (r.template_len <= 0) return;
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  SessionBlocks& sb = it->second;
  if (sb.tokens < r.template_len) return;  // template not fully resident
  auto chain = prefix_.walk(r, r.template_len);
  std::int64_t covered = 0;
  for (const auto nid : chain) covered += prefix_.node(nid).valid_tokens;
  // A resident partial tail is a frozen leaf; publish fuller sibling pages
  // next to it instead of extending it (but only if we actually have more
  // template rows for that page than the frozen node holds).
  std::int64_t frozen_valid = 0;
  if (!chain.empty()) {
    const PrefixIndex::Node& last = prefix_.node(chain.back());
    if (last.valid_tokens < config_.block_tokens) {
      frozen_valid = last.valid_tokens;
      covered -= last.valid_tokens;
      chain.pop_back();
    }
  }
  std::int32_t parent = chain.empty() ? -1 : chain.back();
  const int mk = static_cast<int>(r.mask_kind);
  const std::int64_t bt = config_.block_tokens;
  std::int64_t published = 0;
  while (covered < r.template_len) {
    STOF_CHECK(covered % bt == 0, "publish must start page-aligned");
    const std::int64_t q = covered / bt;  // page index in sb.block_ids
    const std::int64_t end = std::min(covered + bt, r.template_len);
    if (end - covered <= frozen_valid) break;  // no gain over frozen leaf
    frozen_valid = 0;
    const auto qi = static_cast<std::size_t>(q);
    if (qi >= page_digest_ok.size() || page_digest_ok[qi] == 0) break;
    const std::int32_t block = sb.block_ids[qi];
    PrefixIndex::Node node;
    node.block = block;
    node.valid_tokens = end - covered;
    node.page_key = PrefixIndex::page_key(r, covered, end);
    node.digest_after = page_digests[qi];
    node.last_use = prefix_clock_;
    parent = prefix_.insert(parent, mk, std::move(node));
    ++block_refs_[static_cast<std::size_t>(block)];
    covered = end;
    ++published;
  }
  if (parent >= 0) prefix_.touch_chain(parent, prefix_clock_++);
  if (published > 0) {
    telemetry::count("serve.prefix.published_pages", published);
  }
}

void KvPool::truncate(SessionId id, std::int64_t new_tokens) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) {
    STOF_CHECK(new_tokens == 0, "truncate of an empty session");
    return;
  }
  SessionBlocks& sb = it->second;
  STOF_CHECK(new_tokens >= 0 && new_tokens <= sb.tokens,
             "truncate cannot grow a session");
  if (new_tokens == sb.tokens) return;
  const std::int64_t keep = new_tokens == 0 ? 0 : blocks_for(new_tokens);
  while (static_cast<std::int64_t>(sb.block_ids.size()) > keep) {
    unref_block(sb.block_ids.back());
    sb.block_ids.pop_back();
    sb.k_ptrs.pop_back();
    sb.v_ptrs.pop_back();
  }
  const auto clamp = [keep](auto& v) {
    if (static_cast<std::int64_t>(v.size()) > keep) {
      v.resize(static_cast<std::size_t>(keep));
    }
  };
  clamp(sb.kf_ptrs);
  clamp(sb.vf_ptrs);
  clamp(sb.kf_refs);
  clamp(sb.vf_refs);
  clamp(sb.k8_ptrs);
  clamp(sb.v8_ptrs);
  clamp(sb.k8_scale_ptrs);
  clamp(sb.v8_scale_ptrs);
  clamp(sb.k8_refs);
  clamp(sb.v8_refs);
  const std::int64_t full = new_tokens / config_.block_tokens;
  sb.converted_blocks = std::min(sb.converted_blocks, full);
  sb.converted_blocks_i8 = std::min(sb.converted_blocks_i8, full);
  sb.tokens = new_tokens;
  if (new_tokens % config_.block_tokens != 0) {
    // The surviving tail lost rows; future appends rewrite them with
    // different bytes, so its sidecar entries must not be extendable.
    const std::int32_t tail = sb.block_ids.back();
    if (block_refs_[static_cast<std::size_t>(tail)] == 1) {
      invalidate_block_panels(tail);
    } else {
      // Shared tail: other owners' panels stay valid (we never wrote their
      // rows), and our next append CoWs regardless of refcount drift.
      sb.cow_pending = true;
    }
  }
  if (new_tokens == 0) by_session_.erase(it);
}

bool KvPool::check_conservation() const {
  std::vector<std::int32_t> expect(
      static_cast<std::size_t>(config_.num_blocks), 0);
  for (const auto& [sid, sb] : by_session_) {
    if (sb.tokens <= 0) return false;
    if (static_cast<std::int64_t>(sb.block_ids.size()) !=
        blocks_for(sb.tokens)) {
      return false;
    }
    for (const auto b : sb.block_ids) {
      if (b < 0 || b >= config_.num_blocks) return false;
      ++expect[static_cast<std::size_t>(b)];
    }
  }
  for (const auto& n : prefix_.nodes_) {
    if (n.block < 0) continue;
    if (n.block >= config_.num_blocks) return false;
    ++expect[static_cast<std::size_t>(n.block)];
  }
  for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
    if (expect[static_cast<std::size_t>(b)] !=
        block_refs_[static_cast<std::size_t>(b)]) {
      return false;
    }
  }
  // The free list must be exactly the zero-ref blocks, strictly descending
  // (which also rules out duplicates).
  std::vector<bool> in_free(static_cast<std::size_t>(config_.num_blocks),
                            false);
  std::int32_t prev = std::numeric_limits<std::int32_t>::max();
  for (const auto b : free_) {
    if (b < 0 || b >= config_.num_blocks || b >= prev) return false;
    prev = b;
    in_free[static_cast<std::size_t>(b)] = true;
    if (block_refs_[static_cast<std::size_t>(b)] != 0) return false;
  }
  for (std::int64_t b = 0; b < config_.num_blocks; ++b) {
    if (block_refs_[static_cast<std::size_t>(b)] == 0 &&
        !in_free[static_cast<std::size_t>(b)]) {
      return false;
    }
  }
  return true;
}

std::span<const half* const> KvPool::k_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k_ptrs;
}

std::span<const half* const> KvPool::v_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v_ptrs;
}

void KvPool::ensure_float_panels(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  SessionBlocks& sb = it->second;
  const std::int64_t bt = config_.block_tokens;
  const std::int64_t block_elems = config_.block_elems();
  const auto nblocks = static_cast<std::int64_t>(sb.block_ids.size());
  sb.kf_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.vf_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.kf_refs.resize(static_cast<std::size_t>(nblocks));
  sb.vf_refs.resize(static_cast<std::size_t>(nblocks));
  std::int64_t sidecar_elems = 0;
  // Leading `converted_blocks` pages are full and pinned — their half rows
  // can no longer change while this session holds them, so only the tail
  // (partially filled or newly allocated pages) is visited.  This is the
  // skip-prefix step that makes per-decode conversion O(new rows).
  for (std::int64_t p = sb.converted_blocks; p < nblocks; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const std::int32_t block = sb.block_ids[pi];
    const auto bi = static_cast<std::size_t>(block);
    const std::int64_t filled = std::min(bt, sb.tokens - p * bt);
    const std::int64_t valid =
        filled * config_.heads * config_.head_size;
    const half* ks = k_base(block);
    const half* vs = v_base(block);
    const auto k_convert = [ks](std::int64_t lo, std::int64_t hi,
                                float* dst) {
      packed::half_to_float({ks + lo, static_cast<std::size_t>(hi - lo)},
                            {dst + lo, static_cast<std::size_t>(hi - lo)});
    };
    const auto v_convert = [vs](std::int64_t lo, std::int64_t hi,
                                float* dst) {
      packed::half_to_float({vs + lo, static_cast<std::size_t>(hi - lo)},
                            {dst + lo, static_cast<std::size_t>(hi - lo)});
    };
    sb.kf_refs[pi] = registry_->get_or_convert(
        {k_keys_[bi], core::kPanelRowMajor}, block_gen_[bi], block_elems,
        valid, k_convert);
    sb.vf_refs[pi] = registry_->get_or_convert(
        {v_keys_[bi], core::kPanelRowMajor}, block_gen_[bi], block_elems,
        valid, v_convert);
    sb.kf_ptrs[pi] = sb.kf_refs[pi].data();
    sb.vf_ptrs[pi] = sb.vf_refs[pi].data();
    sidecar_elems += sb.kf_refs[pi].converted_elems +
                     sb.vf_refs[pi].converted_elems;
  }
  // Decode-sidecar traffic alone (prefill panels excluded): float views
  // write 2 bytes/elem, mirroring exec.panelcache.bytes_converted units.
  if (sidecar_elems > 0) {
    telemetry::count("serve.kv.sidecar_bytes_converted", 2 * sidecar_elems);
  }
  while (sb.converted_blocks < nblocks &&
         (sb.converted_blocks + 1) * bt <= sb.tokens) {
    ++sb.converted_blocks;
  }
}

void KvPool::ensure_int8_panels(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  SessionBlocks& sb = it->second;
  const std::int64_t bt = config_.block_tokens;
  const std::int64_t block_elems = config_.block_elems();
  const std::int64_t row = config_.heads * config_.head_size;
  const auto nblocks = static_cast<std::int64_t>(sb.block_ids.size());
  sb.k8_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.v8_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.k8_scale_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.v8_scale_ptrs.resize(static_cast<std::size_t>(nblocks));
  sb.k8_refs.resize(static_cast<std::size_t>(nblocks));
  sb.v8_refs.resize(static_cast<std::size_t>(nblocks));
  std::int64_t sidecar_elems = 0;
  // Same skip-prefix scheme as the float sidecar.  One scale per token row
  // keeps extension exact: a row's codes never depend on later rows, so
  // quantize-once over a filling tail page equals a fresh full quantize.
  for (std::int64_t p = sb.converted_blocks_i8; p < nblocks; ++p) {
    const auto pi = static_cast<std::size_t>(p);
    const std::int32_t block = sb.block_ids[pi];
    const auto bi = static_cast<std::size_t>(block);
    const std::int64_t filled = std::min(bt, sb.tokens - p * bt);
    const std::int64_t valid = filled * row;
    const half* ks = k_base(block);
    const half* vs = v_base(block);
    const auto quant = [row](const half* src) {
      return [src, row](std::int64_t lo, std::int64_t hi, std::int8_t* codes,
                        float* scales) {
        packed::quantize_halfs({src + lo, static_cast<std::size_t>(hi - lo)},
                               row, codes + lo, scales + lo / row);
      };
    };
    sb.k8_refs[pi] = registry_->get_or_convert_int8(
        {k_keys_[bi], core::kPanelRowMajor | core::kPanelInt8},
        block_gen_[bi], block_elems, valid, row, quant(ks));
    sb.v8_refs[pi] = registry_->get_or_convert_int8(
        {v_keys_[bi], core::kPanelRowMajor | core::kPanelInt8},
        block_gen_[bi], block_elems, valid, row, quant(vs));
    sb.k8_ptrs[pi] = sb.k8_refs[pi].data();
    sb.v8_ptrs[pi] = sb.v8_refs[pi].data();
    sb.k8_scale_ptrs[pi] = sb.k8_refs[pi].scale_data();
    sb.v8_scale_ptrs[pi] = sb.v8_refs[pi].scale_data();
    sidecar_elems += sb.k8_refs[pi].converted_elems +
                     sb.v8_refs[pi].converted_elems;
  }
  // INT8 codes are 1 byte/elem — half the float sidecar's traffic for the
  // same appended rows, which is the tier's headline saving.
  if (sidecar_elems > 0) {
    telemetry::count("serve.kv.sidecar_bytes_converted", sidecar_elems);
  }
  while (sb.converted_blocks_i8 < nblocks &&
         (sb.converted_blocks_i8 + 1) * bt <= sb.tokens) {
    ++sb.converted_blocks_i8;
  }
}

std::span<const std::int8_t* const> KvPool::k_int8_blocks(
    SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k8_ptrs;
}

std::span<const std::int8_t* const> KvPool::v_int8_blocks(
    SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v8_ptrs;
}

std::span<const float* const> KvPool::k_int8_scales(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k8_scale_ptrs;
}

std::span<const float* const> KvPool::v_int8_scales(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v8_scale_ptrs;
}

std::span<const float* const> KvPool::k_float_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.kf_ptrs;
}

std::span<const float* const> KvPool::v_float_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.vf_ptrs;
}

void KvPool::release(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  // Refcount-aware: only pages whose last owner this session is are
  // recycled (and only their panels invalidated) — shared prefix pages
  // keep their registry keys across owners.
  for (const auto block : it->second.block_ids) {
    unref_block(block);
  }
  by_session_.erase(it);
}

}  // namespace stof::serve
