#include "stof/serve/kv_pool.hpp"

namespace stof::serve {

KvPool::KvPool(const KvPoolConfig& config) : config_(config) {
  config_.validate();
  const auto elems = static_cast<std::size_t>(config_.num_blocks *
                                              config_.block_elems());
  k_arena_.assign(elems, half{});
  v_arena_.assign(elems, half{});
  free_.reserve(static_cast<std::size_t>(config_.num_blocks));
  // Descending, so allocation hands out block 0, 1, 2, ... in order.
  for (std::int64_t b = config_.num_blocks - 1; b >= 0; --b) {
    free_.push_back(static_cast<std::int32_t>(b));
  }
}

std::int64_t KvPool::tokens(SessionId id) const {
  const auto it = by_session_.find(id);
  return it == by_session_.end() ? 0 : it->second.tokens;
}

std::int64_t KvPool::blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  return it == by_session_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.block_ids.size());
}

std::optional<TokenSlot> KvPool::append_token(SessionId id) {
  SessionBlocks& sb = by_session_[id];
  const std::int64_t bt = config_.block_tokens;
  if (sb.tokens % bt == 0) {  // tail block full (or no block yet)
    if (free_.empty()) {
      if (sb.block_ids.empty()) by_session_.erase(id);
      return std::nullopt;
    }
    const std::int32_t block = free_.back();
    free_.pop_back();
    sb.block_ids.push_back(block);
    sb.k_ptrs.push_back(k_base(block));
    sb.v_ptrs.push_back(v_base(block));
    peak_used_ = std::max(peak_used_, used_blocks());
  }
  const std::int64_t local = sb.tokens % bt;
  const std::int32_t block = sb.block_ids.back();
  const std::int64_t row = local * config_.heads * config_.head_size;
  ++sb.tokens;
  return TokenSlot{k_base(block) + row, v_base(block) + row};
}

std::span<const half* const> KvPool::k_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.k_ptrs;
}

std::span<const half* const> KvPool::v_blocks(SessionId id) const {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return {};
  return it->second.v_ptrs;
}

void KvPool::release(SessionId id) {
  const auto it = by_session_.find(id);
  if (it == by_session_.end()) return;
  for (const auto block : it->second.block_ids) free_.push_back(block);
  by_session_.erase(it);
  // Keep the free list sorted descending: allocation order stays a pure
  // function of the alloc/release sequence.
  std::sort(free_.begin(), free_.end(), std::greater<>());
}

}  // namespace stof::serve
