// Session table: per-request serving state.
//
// A Session tracks how far a request has progressed (tokens cached in the
// KV pool, tokens generated), its output digest, and the scheduling
// metadata the continuous-batching scheduler needs (last-touch step for
// LRU-idle eviction, preemption count, latency timestamps).  The digest is
// an FNV-1a chain over the half-precision output bytes of each position,
// accumulated exactly once per position in position order — so it is
// invariant to scheduling mode and to preemption/recompute, and two runs
// agree iff their per-session outputs are byte-identical.
#pragma once

#include <map>
#include <vector>

#include "stof/core/checksum.hpp"
#include "stof/serve/request.hpp"

namespace stof::serve {

/// Mutable serving state of one request.
struct Session {
  Request request;
  SessionPhase phase = SessionPhase::kQueued;

  std::int64_t cached_tokens = 0;  ///< KV entries currently in the pool
  std::int64_t generated = 0;      ///< decode outputs produced so far
  std::uint64_t digest = kFnv1aOffset;  ///< FNV-1a over output bytes
  /// Prompt positions whose outputs are folded into the digest already.
  /// Chunked prefill advances this as chunks complete (always in position
  /// order); a preempted session keeps it across recompute, so re-prefilled
  /// rows are recomputed bit-identically but never re-folded.
  std::int64_t prompt_digested_tokens = 0;

  /// Tokens mapped from the prefix tree at (re-)admission: the session's
  /// prefill starts here instead of 0.  Reset to 0 on eviction (the KV is
  /// released; the next admission re-matches the tree from scratch).
  std::int64_t adopted_tokens = 0;
  /// Output-digest chain values captured after each template page's last
  /// position, indexed by page (ceil(template_len / block_tokens) entries);
  /// `_ok[q]` marks pages whose value was actually captured this lifetime.
  /// publish_prefix() stores these in the tree so adopters can start their
  /// digest mid-stream.  Kept across preemption — recompute re-captures.
  std::vector<std::uint64_t> template_page_digest{};
  std::vector<std::uint8_t> template_page_digest_ok{};

  std::int64_t preemptions = 0;
  std::int64_t last_touch_step = -1;  ///< last step this session computed
  /// Target length already charged to the tenant's fairness deficit.
  /// Re-admission after preemption does not charge (or gate) again — the
  /// tenant paid once and eviction was the scheduler's choice, not theirs.
  bool deficit_charged = false;

  double first_token_us = -1;  ///< sim time of first decode output
  double finish_us = -1;       ///< sim time the last token completed

  /// Context length the session must hold to decode its next token:
  /// the prompt plus everything generated so far.
  [[nodiscard]] std::int64_t total_len() const {
    return request.prompt_len + generated;
  }
  [[nodiscard]] bool done() const {
    return generated >= request.max_new_tokens;
  }
};

/// Ordered id -> Session map with convenience queries.
class SessionTable {
 public:
  /// Insert a new queued session; ids must be unique.
  Session& submit(const Request& request) {
    STOF_EXPECTS(!sessions_.contains(request.id), "duplicate session id");
    auto [it, inserted] = sessions_.emplace(request.id, Session{request});
    return it->second;
  }

  [[nodiscard]] Session& at(SessionId id) {
    auto it = sessions_.find(id);
    STOF_EXPECTS(it != sessions_.end(), "unknown session id");
    return it->second;
  }
  [[nodiscard]] const Session& at(SessionId id) const {
    auto it = sessions_.find(id);
    STOF_EXPECTS(it != sessions_.end(), "unknown session id");
    return it->second;
  }
  [[nodiscard]] bool contains(SessionId id) const {
    return sessions_.contains(id);
  }
  [[nodiscard]] std::size_t size() const { return sessions_.size(); }

  /// Ids currently in `phase`, ascending.
  [[nodiscard]] std::vector<SessionId> ids_in_phase(SessionPhase phase) const {
    std::vector<SessionId> ids;
    for (const auto& [id, s] : sessions_) {
      if (s.phase == phase) ids.push_back(id);
    }
    return ids;
  }

  [[nodiscard]] auto begin() const { return sessions_.begin(); }
  [[nodiscard]] auto end() const { return sessions_.end(); }

 private:
  std::map<SessionId, Session> sessions_;
};

}  // namespace stof::serve
