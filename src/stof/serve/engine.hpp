// Serving engine: continuous batching over the simulated-GPU substrate.
//
// The engine owns the session table, the paged KV pool, a scheduler, and a
// gpusim::Stream, and advances in discrete steps.  Each step executes the
// scheduler's plan with the library's real kernels:
//   * admitted prefills are packed per mask kind into one ragged
//     mha::varlen_attention batch (one "serve.prefill" launch per kind);
//   * every active session decodes one token through a single batched
//     mha::decode_attention_paged call over the KV pool's pages (one
//     "serve.decode" launch).
// The engine clock is *simulated* time: it advances by the Stream's
// estimate of each step's launches, so throughput and latency numbers are
// deterministic functions of the trace and the device model — the repo's
// standing substitution of simulated GPU time for wall time.
//
// Workload model: the q/k/v embedding of a token is a pure function of
// (session seed, position, channel) — fill_token() below.  That makes
// preemption recovery exact: a victim's KV pages are dropped and its full
// context re-prefilled later from the token function, reproducing the
// same bits.  Each position's attention output is folded into the
// session's FNV-1a digest exactly once, in position order, so two runs
// (e.g. serial vs continuous scheduling) produce equal digests iff every
// per-session output byte matches.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "stof/gpusim/device.hpp"
#include "stof/gpusim/timeline.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/serve/model_runtime.hpp"
#include "stof/serve/scheduler.hpp"

namespace stof::serve {

/// Channel selector for the synthetic token embedding.
enum class TokenChannel : int { kQuery = 0, kKey = 1, kValue = 2 };

/// Deterministic token embedding: fills `dst` (heads * head_size halfs,
/// laid out (head, dim)) as a pure function of (seed, pos, channel).
void fill_token(std::uint64_t seed, std::int64_t pos, TokenChannel channel,
                std::span<half> dst);

struct EngineConfig {
  std::int64_t heads = 4;
  std::int64_t head_size = 64;
  /// Tensor-parallel head shard (stof::cluster).  When `total_heads > 0`
  /// this engine owns the contiguous head range [head_offset,
  /// head_offset + heads) of a `total_heads`-head model: its KV pool,
  /// kernels, and costs all operate on the local heads only, while token
  /// embeddings are sliced out of the full-width token row so shard h of
  /// the cluster computes bit-identical bytes to heads [head_offset, ...)
  /// of a single-device run.  total_heads == 0 (default) is unsharded.
  std::int64_t head_offset = 0;
  std::int64_t total_heads = 0;
  /// Full-model head count: total_heads when sharded, heads otherwise.
  [[nodiscard]] std::int64_t model_heads() const {
    return total_heads > 0 ? total_heads : heads;
  }
  std::int64_t max_seq_len = 256;
  std::int64_t kv_blocks = 96;     ///< KV pool capacity in blocks
  std::int64_t block_tokens = 16;  ///< KV page size, must equal BLOCK_N
  mha::BlockwiseParams prefill_params{16, 16};
  /// Storage tier of the decode path's KV sidecar (packed mode only).
  /// kInt8 reads quantized KV pages (one scale per token row) through the
  /// paged-decode kernel's int8 path: deterministic — digests still match
  /// across scheduling orders — but not bit-identical to FP32, and the
  /// per-step conversion traffic roughly halves.  Prefill always runs
  /// FP32 (its outputs feed the bit-exact digest contract directly).
  core::PanelPrecision kv_precision = core::PanelPrecision::kFloat32;
  /// Draft-and-verify speculative decoding: > 0 proposes that many draft
  /// tokens per decode round through a cheap draft pass (spec_draft_heads
  /// heads over a spec_draft_window sliding KV window — cost model only),
  /// then verifies true-token + draft rows in ONE batched paged-decode
  /// launch.  The longest accepted draft prefix plus the guaranteed true
  /// token commit; rejected KV slots roll back exactly (KvPool::truncate),
  /// so per-session outputs and digests are byte-identical to plain
  /// decoding.  0 disables (the legacy decode path, bit-for-bit).
  std::int64_t spec_draft_tokens = 0;
  std::int64_t spec_draft_heads = 1;
  std::int64_t spec_draft_window = 64;
  /// Simulated draft accuracy: percent of drafted positions whose proposal
  /// matches the true token stream (seeded per-position coin, so replay is
  /// deterministic and acceptance is measurable from telemetry).
  std::int64_t spec_accept_pct = 80;
  /// End-to-end model execution.  When enabled, every step's activation
  /// rows additionally run the full per-layer pipeline (out-proj,
  /// LayerNorm, FFN GEMM + activation around the real attention kernels):
  /// the layer costs are charged per fused segment (or per detached op,
  /// model.fused == false) on the gpusim timeline, and session digests
  /// fold the layer head's transform of each attention-output row instead
  /// of the raw row.  kNone (default) preserves attention-only serving
  /// bit for bit.
  ModelSpec model;
  SchedulerConfig scheduler;
  gpusim::DeviceSpec device = gpusim::a100();

  void validate() const {
    STOF_EXPECTS(heads > 0 && head_size > 0 && max_seq_len > 0);
    STOF_EXPECTS(total_heads >= 0 && head_offset >= 0);
    if (total_heads > 0) {
      STOF_EXPECTS(head_offset + heads <= total_heads,
                   "head shard must fit inside the model's head range");
    } else {
      STOF_EXPECTS(head_offset == 0,
                   "head_offset requires total_heads (a sharded engine)");
    }
    // The paged-decode/blockwise bit-identity contract streams KV pages as
    // kernel key blocks; unequal sizes would reorder the softmax updates.
    STOF_EXPECTS(block_tokens == prefill_params.block_n,
                 "KV page size must equal the prefill kernel's BLOCK_N");
    STOF_EXPECTS(kv_blocks * block_tokens >= max_seq_len,
                 "pool must hold at least one full context");
    STOF_EXPECTS(spec_draft_tokens >= 0);
    if (spec_draft_tokens > 0) {
      STOF_EXPECTS(spec_draft_heads >= 1 && spec_draft_heads <= heads,
                   "draft pass must be no wider than the target model");
      STOF_EXPECTS(spec_draft_window >= 1);
      STOF_EXPECTS(spec_accept_pct >= 0 && spec_accept_pct <= 100);
    }
    model.validate();
    scheduler.validate(max_seq_len);
  }
};

/// Per-step notification for observers (examples, debugging).
struct StepEvent {
  std::int64_t step = 0;
  double start_us = 0;     ///< sim clock when the step began
  double duration_us = 0;  ///< simulated time of the step's launches
  std::vector<SessionId> evicted;
  std::vector<SessionId> prefills;
  std::vector<PrefillChunk> chunks;  ///< chunked-prefill slices this step
  std::vector<SessionId> decodes;
  std::int64_t kv_used_blocks = 0;
};

/// Everything one executed (but not yet finalized) step produced: the
/// plan that ran, the device's simulated kernel time, and the session
/// transitions that must be stamped once the step's *cluster-wide*
/// duration is known.  Engine::step() finalizes immediately with the
/// device time; cluster::Cluster executes every shard first, prices the
/// step's collectives, and finalizes all shards with the common
/// max(device times) + collective time — reusing this one accounting path
/// instead of copy-pasting a fourth per-step time/stats variant.
struct StepOutcome {
  double start_us = 0;  ///< sim clock when the step began
  double us = 0;        ///< this device's simulated kernel time
  std::vector<SessionId> evicted;
  std::vector<SessionId> prefills;
  std::vector<PrefillChunk> chunks;
  std::vector<SessionId> decodes;
  std::vector<SessionId> first_token;  ///< produced their first token
  std::vector<SessionId> finished;     ///< completed this step
  std::int64_t prefill_tokens = 0;  ///< prompt positions ingested
  std::int64_t decode_rows = 0;     ///< decode query rows (incl. drafts)
};

struct EngineStats {
  std::int64_t steps = 0;
  std::int64_t submitted = 0;
  std::int64_t finished = 0;
  std::int64_t preemptions = 0;
  std::int64_t prefill_tokens = 0;
  std::int64_t decode_tokens = 0;
  std::int64_t prefill_chunks = 0;    ///< chunked-prefill slices executed
  std::int64_t deadline_misses = 0;   ///< finished after their deadline
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config);

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Register a request; it joins the scheduler's wait queue.
  SessionId submit(const Request& request);

  /// Execute one scheduler step.  Returns false (and does nothing) when
  /// there is no admissible work — the driver then either stops or
  /// advances the clock to the next arrival and submits it.
  bool step();

  /// First half of step(): run the scheduler's plan through the kernels
  /// and report what happened WITHOUT advancing the clock or stamping
  /// session/engine statistics.  std::nullopt when there is no work.
  /// The caller must pass the outcome to finalize_step() exactly once.
  [[nodiscard]] std::optional<StepOutcome> execute_step();

  /// Second half of step(): advance the clock by `step_us` (the cluster-
  /// wide step duration — for a lone engine just `outcome.us`), stamp
  /// first-token / finish / deadline statistics, and emit step telemetry
  /// and the on_step event.
  void finalize_step(const StepOutcome& outcome, double step_us);

  /// Run steps until no work remains.
  void run_until_drained() {
    while (step()) {
    }
  }

  /// Open-loop clock advance (to the next trace arrival while idle).
  void advance_to(double us) { clock_us_ = std::max(clock_us_, us); }

  [[nodiscard]] double sim_time_us() const { return clock_us_; }
  [[nodiscard]] bool idle() const;

  [[nodiscard]] const Session& session(SessionId id) const {
    return table_.at(id);
  }
  [[nodiscard]] const SessionTable& sessions() const { return table_; }
  [[nodiscard]] const KvPool& pool() const { return pool_; }
  [[nodiscard]] const gpusim::Stream& stream() const { return stream_; }
  /// Mutable stream access for the cluster runtime, which charges
  /// collective time onto each shard's timeline between execute_step()
  /// and finalize_step().
  [[nodiscard]] gpusim::Stream& stream_mut() { return stream_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  /// The model runtime (tuned plans, layer head); nullptr when the config
  /// has no model.
  [[nodiscard]] ModelRuntime* model_runtime() { return model_.get(); }

  /// Invoked after every executed step (not for empty plans).
  std::function<void(const StepEvent&)> on_step;

  /// Invoked for every decoded token's attention output (heads * head_size
  /// halfs, position = the decoded token's index) as it is folded into the
  /// session digest.  Benchmarks use it to measure the INT8 KV tier's
  /// output error against an FP32 reference run of the same trace.
  std::function<void(SessionId, std::int64_t, std::span<const half>)>
      on_decode_output;

  /// Invoked for EVERY attention-output row (prefill and decode alike) at
  /// the exact point it is folded into the session digest, in fold order:
  /// (session, position, heads * head_size halfs).  The cluster runtime
  /// installs this on each shard to gather the per-shard head slices and
  /// re-fold them in fixed shard order, reproducing the single-device
  /// digest bit-for-bit.  Only locally folded rows fire: prefix-adopted
  /// positions are never recomputed, so they fire on no shard.
  std::function<void(SessionId, std::int64_t, std::span<const half>)>
      on_output_row;

 private:
  [[nodiscard]] const masks::Mask& mask_for(masks::PatternKind kind);
  [[nodiscard]] const std::vector<std::int32_t>& cols_for(
      masks::PatternKind kind, std::int64_t row);

  /// Shard-aware token embedding: fills `dst` (heads * head_size halfs,
  /// the LOCAL head range) by generating the full model_heads() row of the
  /// token function and slicing out [head_offset, head_offset + heads).
  /// Unsharded engines take the full row directly; either way shard h's
  /// bytes equal heads [head_offset, ...) of a single-device run.
  void fill_token_local(std::uint64_t seed, std::int64_t pos,
                        TokenChannel channel, std::span<half> dst);
  double run_prefills(const std::vector<SessionId>& ids,
                      StepOutcome& outcome);
  double run_prefill_chunks(const std::vector<PrefillChunk>& chunks,
                            StepOutcome& outcome);
  double run_decodes(const std::vector<SessionId>& ids,
                     StepOutcome& outcome);
  /// Draft-and-verify decode round (spec_draft_tokens > 0): every selected
  /// session appends its true token plus up to k draft slots and all rows
  /// verify in one batched paged-decode launch; the longest accepted
  /// prefix commits, the rest rolls back via KvPool::truncate.
  double run_decodes_spec(const std::vector<SessionId>& ids,
                          StepOutcome& outcome);
  /// Shared post-decode bookkeeping for the plain and speculative paths:
  /// count the committed tokens, stamp last_touch, and record first-token
  /// / completion transitions into `outcome` (times are stamped later by
  /// finalize_step, once the step's full duration is known).
  void commit_decoded(SessionId id, std::int64_t committed,
                      StepOutcome& outcome);
  void fold_digest(Session& s, std::span<const half> bytes);
  /// Fold one attention-output row (position `pos`, local heads wide):
  /// `digest_row` enters the session digest, `raw_row` (the untransformed
  /// attention output) fires the on_output_row shard hook — the cluster
  /// gathers raw shard slices and applies the model head at full width.
  void fold_output_row(Session& s, std::int64_t pos,
                       std::span<const half> digest_row,
                       std::span<const half> raw_row);
  /// True when session digests fold model-head-transformed rows: a model
  /// is configured and this engine sees full-width rows (unsharded).  A
  /// tensor-parallel shard folds raw local rows; the cluster owns the
  /// full-width transform.
  [[nodiscard]] bool model_digest_active() const {
    return model_ != nullptr && config_.total_heads == 0;
  }
  /// Copy of `rows` (n x heads*head_size) with the layer head applied, for
  /// digest folding; returns an empty tensor when model_digest_active()
  /// is false (callers then fold the raw rows).
  [[nodiscard]] TensorH transform_for_digest(std::span<const half> rows,
                                             std::int64_t count);
  /// Record the digest chain value after folding template position `pos`
  /// (page boundaries and the template end) for later publish_prefix().
  void capture_template_digest(Session& s, std::int64_t pos);
  /// Insert the session's freshly prefilled template pages into the pool's
  /// prefix tree (no-op when sharing is off or the prompt is untemplated).
  void maybe_publish_prefix(Session& s);

  EngineConfig config_;
  SessionTable table_;
  KvPool pool_;
  Scheduler scheduler_;
  gpusim::Stream stream_;
  /// Present iff config_.model.enabled(): tuned plans + layer head.
  std::unique_ptr<ModelRuntime> model_;
  double clock_us_ = 0;
  std::int64_t step_count_ = 0;
  EngineStats stats_;
  std::map<masks::PatternKind, masks::Mask> mask_cache_;
  /// Scratch row for fill_token_local (full-width token row).
  std::vector<half> token_stage_;
  /// cols_cache_[kind][row]: attendable context positions for a token
  /// decoded at `row` (empty-but-computed rows flagged separately).
  std::map<masks::PatternKind,
           std::vector<std::optional<std::vector<std::int32_t>>>>
      cols_cache_;
};

}  // namespace stof::serve
