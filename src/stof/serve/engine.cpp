#include "stof/serve/engine.hpp"

#include <algorithm>
#include <cstring>

#include "stof/core/checksum.hpp"
#include "stof/core/packed.hpp"
#include "stof/core/rng.hpp"
#include "stof/mha/decode.hpp"
#include "stof/mha/varlen.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::serve {

void fill_token(std::uint64_t seed, std::int64_t pos, TokenChannel channel,
                std::span<half> dst) {
  // Hash (seed, pos, channel) into an Rng stream: the embedding depends on
  // nothing else, which is what makes preemption recovery bit-exact.
  const int which = static_cast<int>(channel);
  std::uint64_t h = fnv1a64(&pos, sizeof(pos), seed ^ kFnv1aOffset);
  h = fnv1a64(&which, sizeof(which), h);
  Rng rng(h);
  // Draw into a float staging block and convert through the dispatched
  // float->half kernel: the SIMD tables are byte-identical to scalar
  // half::from_float, so this produces the same embedding bits as the
  // per-element `half(v)` construction at panel-conversion speed.
  float stage[512];
  std::size_t i = 0;
  while (i < dst.size()) {
    const std::size_t n = std::min(dst.size() - i, std::size(stage));
    for (std::size_t j = 0; j < n; ++j) stage[j] = rng.uniform(-1.0f, 1.0f);
    packed::float_to_half({stage, n}, dst.subspan(i, n));
    i += n;
  }
}

namespace {

/// Per-position draft coin: deterministic "did the draft model propose the
/// true token at `pos`" — a pure function of (session seed, position), so
/// acceptance patterns replay identically across scheduling modes.
constexpr std::uint64_t kSpecCoinSalt = 0x5bec5bec5bec5becull;
/// Embedding-seed perturbation for rejected draft tokens: guarantees their
/// KV/query bits differ from the true stream without touching it.
constexpr std::uint64_t kSpecDraftSalt = 0xd12a'fced'0badull;

[[nodiscard]] bool spec_coin(const Request& r, std::int64_t pos,
                             std::int64_t accept_pct) {
  const std::uint64_t h = fnv1a64(&pos, sizeof(pos), r.seed ^ kSpecCoinSalt);
  return static_cast<std::int64_t>(h % 100) < accept_pct;
}

/// The scheduler must reserve every KV slot a verify round appends (true
/// token + k drafts), so a round can never fail an append mid-batch.
[[nodiscard]] SchedulerConfig effective_scheduler(const EngineConfig& c) {
  SchedulerConfig s = c.scheduler;
  s.decode_appends = std::max(s.decode_appends, c.spec_draft_tokens + 1);
  return s;
}

}  // namespace

Engine::Engine(const EngineConfig& config)
    : config_(config),
      pool_(KvPoolConfig{config.kv_blocks, config.block_tokens, config.heads,
                         config.head_size}),
      scheduler_(effective_scheduler(config)),
      stream_(config.device) {
  config_.validate();
  if (config_.model.enabled()) {
    // A tensor-parallel shard charges the shard-width slice of every layer
    // GEMM but never folds transformed rows (the cluster owns the
    // full-width model head), so it skips the numeric weights.
    model_ = std::make_unique<ModelRuntime>(
        config_.model, config_.heads, config_.head_size, config_.device,
        /*with_weights=*/config_.total_heads == 0);
    // "Model load": tune (or warm-load from the tuning DB) the canonical
    // decode and prefill shape buckets up front; any other bucket a step
    // hits tunes lazily on first use.
    model_->prewarm(scheduler_.config().max_decode_batch);
    model_->prewarm(scheduler_.config().prefill_token_budget);
  }
  telemetry::gauge("serve.kv.total_blocks",
                   static_cast<double>(config_.kv_blocks));
}

SessionId Engine::submit(const Request& request) {
  request.validate(config_.max_seq_len);
  table_.submit(request);
  scheduler_.enqueue(request.id);
  ++stats_.submitted;
  telemetry::count("serve.requests.submitted");
  return request.id;
}

bool Engine::idle() const {
  return scheduler_.queue_empty() &&
         table_.ids_in_phase(SessionPhase::kPrefilling).empty() &&
         table_.ids_in_phase(SessionPhase::kDecoding).empty();
}

const masks::Mask& Engine::mask_for(masks::PatternKind kind) {
  auto it = mask_cache_.find(kind);
  if (it == mask_cache_.end()) {
    // Serving is autoregressive: every pattern is intersected with the
    // causal triangle at the engine's fixed padded length, so a token's
    // attendable set never depends on batch composition or scheduling.
    const masks::Mask base =
        masks::MaskSpec{.kind = kind, .seq_len = config_.max_seq_len}.build();
    it = mask_cache_
             .emplace(kind, base & masks::causal(config_.max_seq_len))
             .first;
  }
  return it->second;
}

const std::vector<std::int32_t>& Engine::cols_for(masks::PatternKind kind,
                                                  std::int64_t row) {
  auto& rows = cols_cache_[kind];
  if (rows.empty()) {
    rows.resize(static_cast<std::size_t>(config_.max_seq_len));
  }
  auto& entry = rows[static_cast<std::size_t>(row)];
  if (!entry) {
    const masks::Mask& mask = mask_for(kind);
    std::vector<std::int32_t> cols;
    for (std::int64_t j = 0; j <= row; ++j) {
      if (mask.at(row, j)) cols.push_back(static_cast<std::int32_t>(j));
    }
    entry = std::move(cols);
  }
  return *entry;
}

void Engine::fill_token_local(std::uint64_t seed, std::int64_t pos,
                              TokenChannel channel, std::span<half> dst) {
  if (config_.total_heads == 0) {
    fill_token(seed, pos, channel, dst);
    return;
  }
  // Sharded: the token function is defined over the FULL model row (the
  // Rng stream is sequential across channels of all heads), so generate
  // model_heads() * head_size halfs and slice out this shard's head range
  // — shard bytes match heads [head_offset, ...) of a single-device run.
  STOF_EXPECTS(dst.size() ==
               static_cast<std::size_t>(config_.heads * config_.head_size));
  const auto full = static_cast<std::size_t>(config_.model_heads() *
                                             config_.head_size);
  if (token_stage_.size() != full) token_stage_.resize(full);
  fill_token(seed, pos, channel, token_stage_);
  std::memcpy(dst.data(),
              token_stage_.data() +
                  static_cast<std::size_t>(config_.head_offset *
                                           config_.head_size),
              dst.size() * sizeof(half));
}

void Engine::fold_digest(Session& s, std::span<const half> bytes) {
  s.digest = fnv1a64(bytes.data(), bytes.size_bytes(), s.digest);
}

void Engine::fold_output_row(Session& s, std::int64_t pos,
                             std::span<const half> digest_row,
                             std::span<const half> raw_row) {
  fold_digest(s, digest_row);
  if (on_output_row) on_output_row(s.request.id, pos, raw_row);
}

TensorH Engine::transform_for_digest(std::span<const half> rows,
                                     std::int64_t count) {
  if (!model_digest_active() || count == 0) return {};
  TensorH t(Shape{count, config_.heads * config_.head_size});
  std::memcpy(t.data().data(), rows.data(), t.data().size_bytes());
  model_->transform_rows(t);
  return t;
}

void Engine::capture_template_digest(Session& s, std::int64_t pos) {
  const std::int64_t tl = s.request.template_len;
  if (tl <= 0 || pos >= tl) return;
  const std::int64_t bt = config_.block_tokens;
  // Chain values are recorded where a page completes (or the template
  // ends): exactly the points publish_prefix() stores alongside pages, so
  // an adopter can start its digest mid-stream.
  if ((pos + 1) % bt != 0 && pos + 1 != tl) return;
  const auto pages = static_cast<std::size_t>((tl + bt - 1) / bt);
  if (s.template_page_digest.size() != pages) {
    s.template_page_digest.assign(pages, 0);
    s.template_page_digest_ok.assign(pages, 0);
  }
  const auto q = static_cast<std::size_t>(pos / bt);
  s.template_page_digest[q] = s.digest;
  s.template_page_digest_ok[q] = 1;
}

void Engine::maybe_publish_prefix(Session& s) {
  if (!scheduler_.config().prefix_sharing || s.request.template_len <= 0) {
    return;
  }
  pool_.publish_prefix(s.request.id, s.request, s.template_page_digest,
                       s.template_page_digest_ok);
}

double Engine::run_prefills(const std::vector<SessionId>& ids,
                            StepOutcome& outcome) {
  if (ids.empty()) return 0;
  telemetry::count("serve.requests.admitted",
                   static_cast<std::int64_t>(ids.size()));
  // One ragged varlen launch per mask kind, preserving admission order.
  std::vector<std::pair<masks::PatternKind, std::vector<SessionId>>> groups;
  for (const auto id : ids) {
    const auto kind = table_.at(id).request.mask_kind;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == kind; });
    if (it == groups.end()) {
      groups.emplace_back(kind, std::vector<SessionId>{id});
    } else {
      it->second.push_back(id);
    }
  }

  const std::int64_t heads = config_.heads;
  const std::int64_t d = config_.head_size;
  const std::int64_t seq = config_.max_seq_len;
  std::vector<half> tok(static_cast<std::size_t>(heads * d));
  double us = 0;

  for (const auto& [kind, group] : groups) {
    const auto n = static_cast<std::int64_t>(group.size());
    const mha::MhaDims dims{n, heads, seq, d};
    TensorH q(dims.qkv_shape()), k(dims.qkv_shape()), v(dims.qkv_shape());
    std::vector<std::int64_t> lengths;
    lengths.reserve(group.size());
    for (std::int64_t b = 0; b < n; ++b) {
      const Session& s = table_.at(group[static_cast<std::size_t>(b)]);
      const std::int64_t len = s.total_len();
      lengths.push_back(len);
      for (std::int64_t pos = 0; pos < len; ++pos) {
        for (int ch = 0; ch < 3; ++ch) {
          TensorH& dst = ch == 0 ? q : (ch == 1 ? k : v);
          fill_token_local(token_seed(s.request, pos), pos,
                           static_cast<TokenChannel>(ch), tok);
          for (std::int64_t h = 0; h < heads; ++h) {
            std::memcpy(&dst.at(b * heads + h, pos, 0), &tok[static_cast<
                            std::size_t>(h * d)],
                        static_cast<std::size_t>(d) * sizeof(half));
          }
        }
      }
    }
    const masks::Mask& mask = mask_for(kind);
    const mha::VarlenBatch batch{seq, lengths};
    const TensorH out = mha::varlen_attention(dims, q, k, v, mask, batch,
                                              config_.prefill_params);
    us += stream_.launch(
        "serve.prefill",
        mha::varlen_cost(dims, mask, batch, config_.prefill_params,
                         config_.device));

    for (std::int64_t b = 0; b < n; ++b) {
      const SessionId id = group[static_cast<std::size_t>(b)];
      Session& s = table_.at(id);
      const std::int64_t len = s.total_len();
      // Ingest the context into the KV pool (admission reserved blocks).
      for (std::int64_t pos = 0; pos < len; ++pos) {
        auto slot = pool_.append_token(id);
        STOF_CHECK(slot.has_value(), "admission must reserve prefill blocks");
        for (std::int64_t h = 0; h < heads; ++h) {
          std::memcpy(slot->k + h * d, &k.at(b * heads + h, pos, 0),
                      static_cast<std::size_t>(d) * sizeof(half));
          std::memcpy(slot->v + h * d, &v.at(b * heads + h, pos, 0),
                      static_cast<std::size_t>(d) * sizeof(half));
        }
      }
      s.cached_tokens = len;
      // Prompt outputs are digested exactly once, in position order; a
      // resumed session's re-prefill recomputes the same bits but must not
      // re-fold the positions already in the digest.  The undigested rows
      // gather into one contiguous batch so the model head (when active)
      // transforms them in a single pass; the raw attention rows still
      // feed the shard hook.
      const std::int64_t hd = heads * d;
      const std::int64_t fold_begin = s.prompt_digested_tokens;
      const std::int64_t fold_n = s.request.prompt_len - fold_begin;
      if (fold_n > 0) {
        std::vector<half> raw(static_cast<std::size_t>(fold_n * hd));
        for (std::int64_t j = 0; j < fold_n; ++j) {
          const std::int64_t pos = fold_begin + j;
          for (std::int64_t h = 0; h < heads; ++h) {
            std::memcpy(&raw[static_cast<std::size_t>(j * hd + h * d)],
                        out.data()
                            .subspan(static_cast<std::size_t>(
                                         ((b * heads + h) * seq + pos) * d),
                                     static_cast<std::size_t>(d))
                            .data(),
                        static_cast<std::size_t>(d) * sizeof(half));
          }
        }
        const TensorH folded = transform_for_digest(raw, fold_n);
        for (std::int64_t j = 0; j < fold_n; ++j) {
          const std::int64_t pos = fold_begin + j;
          const std::span<const half> raw_row{
              raw.data() + j * hd, static_cast<std::size_t>(hd)};
          const std::span<const half> dig_row =
              folded.data().empty()
                  ? raw_row
                  : folded.data().subspan(static_cast<std::size_t>(j * hd),
                                          static_cast<std::size_t>(hd));
          fold_output_row(s, pos, dig_row, raw_row);
          capture_template_digest(s, pos);
        }
      }
      s.prompt_digested_tokens = s.request.prompt_len;
      maybe_publish_prefix(s);
      s.phase = SessionPhase::kDecoding;
      s.last_touch_step = step_count_;
      stats_.prefill_tokens += len;
      outcome.prefill_tokens += len;
      telemetry::count("serve.prefill.tokens", len);
    }
  }
  return us;
}

double Engine::run_prefill_chunks(const std::vector<PrefillChunk>& chunks,
                                  StepOutcome& outcome) {
  if (chunks.empty()) return 0;
  // One ragged varlen launch per mask kind, preserving plan order.  Each
  // chunk is an element of length `end` with query window [begin, end):
  // the kernel runs only the block rows covering the window, against the
  // same effective mask a one-shot prefill of length `end` would use —
  // every window row's streaming-softmax chain is identical to the
  // one-shot pass, which is what keeps chunked KV pages and digests
  // bit-identical to whole prefills.
  std::vector<std::pair<masks::PatternKind, std::vector<PrefillChunk>>> groups;
  for (const auto& chunk : chunks) {
    const auto kind = table_.at(chunk.id).request.mask_kind;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == kind; });
    if (it == groups.end()) {
      groups.emplace_back(kind, std::vector<PrefillChunk>{chunk});
    } else {
      it->second.push_back(chunk);
    }
  }

  const std::int64_t heads = config_.heads;
  const std::int64_t d = config_.head_size;
  const std::int64_t seq = config_.max_seq_len;
  const std::int64_t bm = config_.prefill_params.block_m;
  std::vector<half> tok(static_cast<std::size_t>(heads * d));
  double us = 0;

  for (const auto& [kind, group] : groups) {
    const auto n = static_cast<std::int64_t>(group.size());
    const mha::MhaDims dims{n, heads, seq, d};
    TensorH q(dims.qkv_shape()), k(dims.qkv_shape()), v(dims.qkv_shape());
    std::vector<std::int64_t> lengths, q_begins;
    lengths.reserve(group.size());
    q_begins.reserve(group.size());
    for (std::int64_t b = 0; b < n; ++b) {
      const auto& chunk = group[static_cast<std::size_t>(b)];
      const Session& s = table_.at(chunk.id);
      lengths.push_back(chunk.end);
      q_begins.push_back(chunk.begin);
      // Keys/values cover the whole context [0, end) — the window's rows
      // attend every earlier position.  Queries only need the rows the
      // kernel reads: the window, extended down to its block boundary.
      const std::int64_t q_lo = (chunk.begin / bm) * bm;
      for (std::int64_t pos = 0; pos < chunk.end; ++pos) {
        for (int ch = 1; ch < 3; ++ch) {
          TensorH& dst = ch == 1 ? k : v;
          fill_token_local(token_seed(s.request, pos), pos,
                           static_cast<TokenChannel>(ch), tok);
          for (std::int64_t h = 0; h < heads; ++h) {
            std::memcpy(&dst.at(b * heads + h, pos, 0),
                        &tok[static_cast<std::size_t>(h * d)],
                        static_cast<std::size_t>(d) * sizeof(half));
          }
        }
        if (pos < q_lo) continue;
        fill_token_local(token_seed(s.request, pos), pos,
                         TokenChannel::kQuery, tok);
        for (std::int64_t h = 0; h < heads; ++h) {
          std::memcpy(&q.at(b * heads + h, pos, 0),
                      &tok[static_cast<std::size_t>(h * d)],
                      static_cast<std::size_t>(d) * sizeof(half));
        }
      }
    }
    const masks::Mask& mask = mask_for(kind);
    const mha::VarlenBatch batch{seq, lengths, q_begins};
    const TensorH out = mha::varlen_attention(dims, q, k, v, mask, batch,
                                              config_.prefill_params);
    us += stream_.launch(
        "serve.prefill",
        mha::varlen_cost(dims, mask, batch, config_.prefill_params,
                         config_.device));

    for (std::int64_t b = 0; b < n; ++b) {
      const auto& chunk = group[static_cast<std::size_t>(b)];
      Session& s = table_.at(chunk.id);
      STOF_CHECK(s.cached_tokens == chunk.begin,
                 "chunk must resume at the session's cached prefix");
      // A session admitted with an adopted shared prefix starts chunking at
      // the adoption boundary, not zero.
      if (chunk.begin == s.adopted_tokens) {
        telemetry::count("serve.requests.admitted");
      }
      // Ingest the chunk's positions into the KV pool (the scheduler sized
      // the chunk to the blocks available this step).
      for (std::int64_t pos = chunk.begin; pos < chunk.end; ++pos) {
        auto slot = pool_.append_token(chunk.id);
        STOF_CHECK(slot.has_value(), "scheduler must size chunks to the pool");
        for (std::int64_t h = 0; h < heads; ++h) {
          std::memcpy(slot->k + h * d, &k.at(b * heads + h, pos, 0),
                      static_cast<std::size_t>(d) * sizeof(half));
          std::memcpy(slot->v + h * d, &v.at(b * heads + h, pos, 0),
                      static_cast<std::size_t>(d) * sizeof(half));
        }
      }
      s.cached_tokens = chunk.end;
      // Fold the chunk's prompt rows exactly once, in position order.  A
      // re-prefilled chunk (preempt mid-prefill, or a preempted decoder
      // rebuilding context past its prompt) recomputes rows already
      // folded; they are skipped, never re-folded.  As in run_prefills,
      // the rows batch up for one model-head pass; per-row purity of the
      // head keeps chunked digests byte-identical to whole prefills.
      const std::int64_t hd = heads * d;
      const std::int64_t fold_end =
          std::min(chunk.end, s.request.prompt_len);
      const std::int64_t fold_begin =
          std::max(chunk.begin, s.prompt_digested_tokens);
      const std::int64_t fold_n = fold_end - fold_begin;
      if (fold_n > 0) {
        std::vector<half> raw(static_cast<std::size_t>(fold_n * hd));
        for (std::int64_t j = 0; j < fold_n; ++j) {
          const std::int64_t pos = fold_begin + j;
          for (std::int64_t h = 0; h < heads; ++h) {
            std::memcpy(&raw[static_cast<std::size_t>(j * hd + h * d)],
                        out.data()
                            .subspan(static_cast<std::size_t>(
                                         ((b * heads + h) * seq + pos) * d),
                                     static_cast<std::size_t>(d))
                            .data(),
                        static_cast<std::size_t>(d) * sizeof(half));
          }
        }
        const TensorH folded = transform_for_digest(raw, fold_n);
        for (std::int64_t j = 0; j < fold_n; ++j) {
          const std::int64_t pos = fold_begin + j;
          const std::span<const half> raw_row{
              raw.data() + j * hd, static_cast<std::size_t>(hd)};
          const std::span<const half> dig_row =
              folded.data().empty()
                  ? raw_row
                  : folded.data().subspan(static_cast<std::size_t>(j * hd),
                                          static_cast<std::size_t>(hd));
          fold_output_row(s, pos, dig_row, raw_row);
          capture_template_digest(s, pos);
        }
      }
      s.prompt_digested_tokens = std::max(s.prompt_digested_tokens, fold_end);
      if (s.cached_tokens == s.total_len()) {
        STOF_CHECK(s.prompt_digested_tokens == s.request.prompt_len,
                   "prefix completion must have digested the whole prompt");
        maybe_publish_prefix(s);
        s.phase = SessionPhase::kDecoding;
      }
      s.last_touch_step = step_count_;
      stats_.prefill_tokens += chunk.tokens();
      outcome.prefill_tokens += chunk.tokens();
      ++stats_.prefill_chunks;
      telemetry::count("serve.prefill.tokens", chunk.tokens());
      telemetry::count("serve.sched.chunks_emitted");
      telemetry::count("serve.sched.chunk_tokens", chunk.tokens());
    }
  }
  return us;
}

void Engine::commit_decoded(SessionId id, std::int64_t committed,
                            StepOutcome& outcome) {
  Session& s = table_.at(id);
  const bool had_none = s.generated == 0;
  s.generated += committed;
  s.last_touch_step = step_count_;
  if (had_none && committed > 0) outcome.first_token.push_back(id);
  if (s.done()) {
    s.phase = SessionPhase::kFinished;
    pool_.release(id);
    outcome.finished.push_back(id);
  }
}

double Engine::run_decodes(const std::vector<SessionId>& ids,
                           StepOutcome& outcome) {
  if (ids.empty()) return 0;
  const std::int64_t heads = config_.heads;
  const std::int64_t d = config_.head_size;
  const auto n = static_cast<std::int64_t>(ids.size());

  TensorH q(Shape{n * heads, 1, d});
  std::vector<mha::PagedSeq> seqs(ids.size());
  std::vector<std::int64_t> valid;
  valid.reserve(ids.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const SessionId id = ids[static_cast<std::size_t>(i)];
    Session& s = table_.at(id);
    const std::int64_t pos = s.total_len();
    auto slot = pool_.append_token(id);
    STOF_CHECK(slot.has_value(), "scheduler must reserve decode blocks");
    fill_token_local(s.request.seed, pos, TokenChannel::kKey,
                     {slot->k, static_cast<std::size_t>(heads * d)});
    fill_token_local(s.request.seed, pos, TokenChannel::kValue,
                     {slot->v, static_cast<std::size_t>(heads * d)});
    s.cached_tokens = pos + 1;
    fill_token_local(s.request.seed, pos, TokenChannel::kQuery,
                     q.data().subspan(static_cast<std::size_t>(i * heads * d),
                                      static_cast<std::size_t>(heads * d)));
    const auto& cols = cols_for(s.request.mask_kind, pos);
    mha::PagedSeq& seq = seqs[static_cast<std::size_t>(i)];
    seq = mha::PagedSeq{pos + 1, config_.block_tokens, pool_.k_blocks(id),
                        pool_.v_blocks(id), cols};
    if (packed_execution_enabled()) {
      if (config_.kv_precision == core::PanelPrecision::kInt8) {
        // INT8 sidecar: quantize only the newly appended rows (quantize-
        // once per page generation) and let the decode kernel run int8
        // dot products against the code pages.
        pool_.ensure_int8_panels(id);
        seq.k8_blocks = pool_.k_int8_blocks(id);
        seq.v8_blocks = pool_.v_int8_blocks(id);
        seq.k8_scales = pool_.k_int8_scales(id);
        seq.v8_scales = pool_.v_int8_scales(id);
      } else {
        // Bring the pool's float-panel sidecar up to date (only the newly
        // appended rows convert — everything older is already cached) and
        // let the decode kernel read FP32 pages directly.
        pool_.ensure_float_panels(id);
        seq.kf_blocks = pool_.k_float_blocks(id);
        seq.vf_blocks = pool_.v_float_blocks(id);
      }
    }
    valid.push_back(static_cast<std::int64_t>(cols.size()));
  }

  const TensorH out = mha::decode_attention_paged(heads, d, seqs, q);
  const double us = stream_.launch(
      "serve.decode",
      mha::decode_batched_cost(heads, d, valid, config_.device));

  // One model-head pass over the whole decode batch (out is n contiguous
  // heads*d rows); the hooks still see the raw attention rows.
  const std::int64_t hd = heads * d;
  const TensorH folded = transform_for_digest(out.data(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    const SessionId id = ids[static_cast<std::size_t>(i)];
    Session& s = table_.at(id);
    const std::int64_t pos = s.total_len();
    const auto out_row =
        out.data().subspan(static_cast<std::size_t>(i * hd),
                           static_cast<std::size_t>(hd));
    const auto dig_row =
        folded.data().empty()
            ? out_row
            : folded.data().subspan(static_cast<std::size_t>(i * hd),
                                    static_cast<std::size_t>(hd));
    if (on_decode_output) on_decode_output(id, pos, out_row);
    fold_output_row(s, pos, dig_row, out_row);
    commit_decoded(id, 1, outcome);
  }
  stats_.decode_tokens += n;
  outcome.decode_rows += n;
  telemetry::count("serve.decode.tokens", n);
  return us;
}

double Engine::run_decodes_spec(const std::vector<SessionId>& ids,
                                StepOutcome& outcome) {
  if (ids.empty()) return 0;
  const std::int64_t heads = config_.heads;
  const std::int64_t d = config_.head_size;
  const std::int64_t k = config_.spec_draft_tokens;

  // One verify round per session: row 0 is the guaranteed true token, rows
  // 1..rows-1 are draft proposals.  The accepted run is the leading stretch
  // of drafts whose per-position coin says the draft matched the true
  // stream; accepted rows carry the true token bits (the draft *was* the
  // true token), rejected rows carry a salted embedding.
  struct Round {
    SessionId id = 0;
    std::int64_t pos = 0;     ///< position of row 0 (the true token)
    std::int64_t rows = 0;    ///< true token + drafts actually proposed
    std::int64_t accept = 0;  ///< leading accepted draft run
  };
  std::vector<Round> rounds;
  rounds.reserve(ids.size());

  // Append every round's KV rows first: PagedSeq spans point into the
  // pool's per-session block-pointer vectors, which must be quiescent by
  // the time the batch descriptor is built.
  for (const SessionId id : ids) {
    Session& s = table_.at(id);
    Round r{id, s.total_len(), 0, 0};
    const std::int64_t budget = s.request.max_new_tokens - s.generated;
    r.rows = std::min(k + 1, budget);
    while (r.accept + 1 < r.rows &&
           spec_coin(s.request, r.pos + r.accept + 1, config_.spec_accept_pct)) {
      ++r.accept;
    }
    for (std::int64_t j = 0; j < r.rows; ++j) {
      const std::uint64_t seed = j <= r.accept
                                     ? s.request.seed
                                     : (s.request.seed ^ kSpecDraftSalt);
      auto slot = pool_.append_token(id);
      STOF_CHECK(slot.has_value(),
                 "scheduler must reserve verify-round decode blocks");
      fill_token_local(seed, r.pos + j, TokenChannel::kKey,
                       {slot->k, static_cast<std::size_t>(heads * d)});
      fill_token_local(seed, r.pos + j, TokenChannel::kValue,
                       {slot->v, static_cast<std::size_t>(heads * d)});
    }
    s.cached_tokens = r.pos + r.rows;
    rounds.push_back(r);
  }

  std::int64_t total_rows = 0;
  for (const auto& r : rounds) total_rows += r.rows;
  TensorH q(Shape{total_rows * heads, 1, d});
  std::vector<mha::PagedSeq> seqs(static_cast<std::size_t>(total_rows));
  std::vector<std::int64_t> valid, seq_rows, draft_valid;
  valid.reserve(static_cast<std::size_t>(total_rows));
  seq_rows.reserve(rounds.size());
  std::int64_t row = 0;
  for (const auto& r : rounds) {
    Session& s = table_.at(r.id);
    if (packed_execution_enabled()) {
      if (config_.kv_precision == core::PanelPrecision::kInt8) {
        pool_.ensure_int8_panels(r.id);
      } else {
        pool_.ensure_float_panels(r.id);
      }
    }
    for (std::int64_t j = 0; j < r.rows; ++j, ++row) {
      const std::int64_t pos = r.pos + j;
      const std::uint64_t seed = j <= r.accept
                                     ? s.request.seed
                                     : (s.request.seed ^ kSpecDraftSalt);
      fill_token_local(seed, pos, TokenChannel::kQuery,
                       q.data().subspan(
                           static_cast<std::size_t>(row * heads * d),
                           static_cast<std::size_t>(heads * d)));
      // Row j attends [0, pos + 1): later (rejected) draft slots live in
      // the same pages but are never in its column list, so an accepted
      // row's output is bit-identical to the sequential decode of pos.
      const auto& cols = cols_for(s.request.mask_kind, pos);
      mha::PagedSeq& seq = seqs[static_cast<std::size_t>(row)];
      seq = mha::PagedSeq{pos + 1, config_.block_tokens, pool_.k_blocks(r.id),
                          pool_.v_blocks(r.id), cols};
      if (packed_execution_enabled()) {
        if (config_.kv_precision == core::PanelPrecision::kInt8) {
          seq.k8_blocks = pool_.k_int8_blocks(r.id);
          seq.v8_blocks = pool_.v_int8_blocks(r.id);
          seq.k8_scales = pool_.k_int8_scales(r.id);
          seq.v8_scales = pool_.v_int8_scales(r.id);
        } else {
          seq.kf_blocks = pool_.k_float_blocks(r.id);
          seq.vf_blocks = pool_.v_float_blocks(r.id);
        }
      }
      valid.push_back(static_cast<std::int64_t>(cols.size()));
      // The draft pass proposes row j's token from a sliding KV window.
      if (j >= 1) {
        draft_valid.push_back(std::min(pos, config_.spec_draft_window));
      }
    }
    seq_rows.push_back(r.rows);
  }

  const TensorH out = mha::decode_attention_paged(heads, d, seqs, q);
  double us = 0;
  if (!draft_valid.empty()) {
    us += stream_.launch(
        "serve.spec.draft",
        mha::decode_batched_cost(config_.spec_draft_heads, d, draft_valid,
                                 config_.device));
  }
  us += stream_.launch(
      "serve.decode",
      mha::decode_verify_cost(heads, d, valid, seq_rows, config_.device));

  // Gather every committed row into one model-head batch (rejected rows
  // roll back and never fold); fold_slot maps a global verify row to its
  // slot in the transformed batch.  Committed rows are bit-identical to
  // plain decode rows, and the head is per-row pure, so speculative
  // digests stay byte-identical to non-speculative runs.
  const std::int64_t hd = heads * d;
  TensorH folded;
  std::vector<std::int64_t> fold_slot;
  if (model_digest_active()) {
    fold_slot.assign(static_cast<std::size_t>(total_rows), -1);
    std::int64_t r0 = 0;
    std::int64_t nfold = 0;
    for (const auto& r : rounds) {
      for (std::int64_t j = 0; j <= r.accept; ++j) {
        fold_slot[static_cast<std::size_t>(r0 + j)] = nfold++;
      }
      r0 += r.rows;
    }
    std::vector<half> raw(static_cast<std::size_t>(nfold * hd));
    for (std::int64_t g = 0; g < total_rows; ++g) {
      const std::int64_t slot = fold_slot[static_cast<std::size_t>(g)];
      if (slot < 0) continue;
      std::memcpy(&raw[static_cast<std::size_t>(slot * hd)],
                  out.data().data() + g * hd,
                  static_cast<std::size_t>(hd) * sizeof(half));
    }
    folded = transform_for_digest(raw, nfold);
  }

  std::int64_t committed = 0, drafted = 0, accepted = 0, rollbacks = 0;
  row = 0;
  for (const auto& r : rounds) {
    Session& s = table_.at(r.id);
    const std::int64_t commit = r.accept + 1;
    for (std::int64_t j = 0; j < commit; ++j) {
      const auto out_row = out.data().subspan(
          static_cast<std::size_t>((row + j) * hd),
          static_cast<std::size_t>(hd));
      const auto dig_row =
          folded.data().empty()
              ? out_row
              : folded.data().subspan(
                    static_cast<std::size_t>(
                        fold_slot[static_cast<std::size_t>(row + j)] * hd),
                    static_cast<std::size_t>(hd));
      if (on_decode_output) on_decode_output(r.id, r.pos + j, out_row);
      fold_output_row(s, r.pos + j, dig_row, out_row);
    }
    row += r.rows;
    if (commit < r.rows) pool_.truncate(r.id, r.pos + commit);
    s.cached_tokens = r.pos + commit;
    commit_decoded(r.id, commit, outcome);
    committed += commit;
    drafted += r.rows - 1;
    accepted += r.accept;
    rollbacks += r.rows - commit;
  }
  stats_.decode_tokens += committed;
  outcome.decode_rows += total_rows;
  telemetry::count("serve.decode.tokens", committed);
  if (drafted > 0) {
    telemetry::count("serve.spec.drafted", drafted);
    telemetry::count("serve.spec.accepted", accepted);
    telemetry::count("serve.spec.rollbacks", rollbacks);
  }
  return us;
}

std::optional<StepOutcome> Engine::execute_step() {
  StepPlan plan = scheduler_.plan_step(table_, pool_, step_count_);
  if (plan.empty()) return std::nullopt;

  StepOutcome outcome;
  outcome.start_us = clock_us_;

  stats_.preemptions += static_cast<std::int64_t>(plan.evicted.size());
  if (!plan.evicted.empty()) {
    telemetry::count("serve.requests.preempted",
                     static_cast<std::int64_t>(plan.evicted.size()));
  }

  // A whole-prefill admission that adopted a shared prefix only computes
  // the unshared suffix: route it through the chunked path as one
  // [cached, total) window, whose kernel rows and digest folds resume
  // exactly where the adoption left off.
  std::vector<SessionId> fresh;
  std::vector<PrefillChunk> windows;
  for (const SessionId id : plan.prefills) {
    const Session& s = table_.at(id);
    if (s.cached_tokens > 0) {
      windows.push_back(PrefillChunk{id, s.cached_tokens, s.total_len()});
    } else {
      fresh.push_back(id);
    }
  }
  windows.insert(windows.end(), plan.chunks.begin(), plan.chunks.end());

  double us = run_prefills(fresh, outcome);
  us += run_prefill_chunks(windows, outcome);
  us += config_.spec_draft_tokens > 0
            ? run_decodes_spec(plan.decodes, outcome)
            : run_decodes(plan.decodes, outcome);
  // Model execution: the step's activation rows (prefill tokens + decode
  // rows, one packed batch in a real server) run the per-layer non-MHA
  // pipeline — charged tuned-fused or launch-per-op onto this stream.
  // The attention kernels above already charged the MHA segments.
  if (model_) {
    const std::int64_t rows = outcome.prefill_tokens + outcome.decode_rows;
    if (rows > 0) us += model_->charge_step(stream_, rows);
  }
  outcome.us = us;
  outcome.evicted = std::move(plan.evicted);
  outcome.prefills = std::move(plan.prefills);
  outcome.chunks = std::move(plan.chunks);
  outcome.decodes = std::move(plan.decodes);
  return outcome;
}

void Engine::finalize_step(const StepOutcome& outcome, double step_us) {
  STOF_EXPECTS(step_us >= outcome.us,
               "a step cannot finish before its own kernels do");
  clock_us_ += step_us;

  for (const auto id : outcome.first_token) {
    table_.at(id).first_token_us = clock_us_;
  }
  for (const auto id : outcome.finished) {
    Session& s = table_.at(id);
    s.finish_us = clock_us_;
    ++stats_.finished;
    if (s.request.deadline_us > 0 && s.finish_us > s.request.deadline_us) {
      ++stats_.deadline_misses;
      telemetry::count("serve.sched.deadline_misses");
    }
  }
  if (!outcome.finished.empty()) {
    telemetry::count("serve.requests.finished",
                     static_cast<std::int64_t>(outcome.finished.size()));
  }

  ++step_count_;
  ++stats_.steps;
  telemetry::count("serve.steps");
  telemetry::observe("serve.batch.decode_size",
                     static_cast<double>(outcome.decodes.size()));
  telemetry::observe("serve.batch.prefill_size",
                     static_cast<double>(outcome.prefills.size()));
  if (!outcome.chunks.empty()) {
    std::int64_t chunk_tokens = 0;
    for (const auto& c : outcome.chunks) chunk_tokens += c.tokens();
    telemetry::observe("serve.batch.chunk_tokens",
                       static_cast<double>(chunk_tokens));
  }
  telemetry::observe("serve.kv.used_blocks",
                     static_cast<double>(pool_.used_blocks()));

  if (on_step) {
    StepEvent ev;
    ev.step = step_count_ - 1;
    ev.start_us = outcome.start_us;
    ev.duration_us = step_us;
    ev.evicted = outcome.evicted;
    ev.prefills = outcome.prefills;
    ev.chunks = outcome.chunks;
    ev.decodes = outcome.decodes;
    ev.kv_used_blocks = pool_.used_blocks();
    on_step(ev);
  }
}

bool Engine::step() {
  std::optional<StepOutcome> outcome = execute_step();
  if (!outcome) return false;
  finalize_step(*outcome, outcome->us);
  return true;
}

}  // namespace stof::serve
