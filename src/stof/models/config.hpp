// Model configurations for the end-to-end evaluation (paper §5.3):
// BERT-Small/Base/Large (encoder-only), GPT (decoder-only), and T5
// (encoder-decoder).  Hyperparameters follow the standard checkpoints.
#pragma once

#include <string>
#include <vector>

#include "stof/graph/builders.hpp"

namespace stof::models {

enum class Architecture { kEncoder, kDecoder, kEncDec };

struct ModelConfig {
  std::string name;
  Architecture arch = Architecture::kEncoder;
  int layers = 12;       ///< encoder layers (or decoder layers for kDecoder)
  int dec_layers = 0;    ///< decoder layers for kEncDec
  std::int64_t hidden = 768;
  std::int64_t heads = 12;
  std::int64_t ffn_dim = 3072;
  graph::OpKind activation = graph::OpKind::kGelu;
  bool use_bias = true;

  [[nodiscard]] std::int64_t head_size() const { return hidden / heads; }

  [[nodiscard]] graph::LayerConfig layer_config(std::int64_t batch,
                                                std::int64_t seq_len) const {
    graph::LayerConfig cfg;
    cfg.batch = batch;
    cfg.seq_len = seq_len;
    cfg.hidden = hidden;
    cfg.heads = heads;
    cfg.ffn_dim = ffn_dim;
    cfg.activation = activation;
    cfg.use_bias = use_bias;
    return cfg;
  }

  /// Build the full forward graph at (batch, seq_len).
  [[nodiscard]] graph::Graph build_graph(std::int64_t batch,
                                         std::int64_t seq_len) const {
    const auto cfg = layer_config(batch, seq_len);
    switch (arch) {
      case Architecture::kEncoder:
        return graph::build_encoder_graph(cfg, layers);
      case Architecture::kDecoder:
        return graph::build_decoder_graph(cfg, layers);
      case Architecture::kEncDec:
        return graph::build_encdec_graph(cfg, layers, dec_layers);
    }
    STOF_CHECK(false, "unreachable");
  }
};

ModelConfig bert_small();
ModelConfig bert_base();
ModelConfig bert_large();
ModelConfig gpt();
ModelConfig t5();

/// The five benchmark models of Fig. 12 / Table 4, in paper order.
const std::vector<ModelConfig>& all_models();

}  // namespace stof::models
