// Execution-plan serialization.
//
// The tuner's output — the fusion scheme (as its hex hash code) plus the
// per-segment template parameters — is small and human-auditable, so plans
// are persisted as a line-oriented text format:
//
//   STOFPLAN v2
//   ops <n> eager <0|1>
//   scheme <hex>
//   seg <i> gemm <bm> <bn> <bk> <warps> <stages> ew <bs> <ipt> norm <bs> <rpb>
//   ...
//   check <16-hex fnv1a64 over every preceding byte>
//
// The trailing `check` line is verified before any content is parsed, so a
// truncated or bit-flipped plan file errors on load instead of silently
// deserializing into a different plan.  Together with masks/serialize.hpp
// and models/tune_db.hpp this closes the tune-offline / deploy-later loop:
// tune once per (model, shape bucket, device), ship the plan.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "stof/models/executor.hpp"

namespace stof::models {

/// Write `plan` to `os` in the STOFPLAN text format.
void save_plan(const ExecutionPlan& plan, std::ostream& os);

/// Parse a plan previously written by save_plan (throws stof::Error on a
/// malformed stream).
ExecutionPlan load_plan(std::istream& is);

/// File-path conveniences.
void save_plan_file(const ExecutionPlan& plan, const std::string& path);
ExecutionPlan load_plan_file(const std::string& path);

}  // namespace stof::models
