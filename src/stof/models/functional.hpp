// Functional end-to-end execution of a model graph.
//
// The cost-model Executor answers "how long does this plan take"; the
// FunctionalExecutor answers "what does this plan compute".  It owns a
// deterministic random weight set for every parameterised node, propagates
// real FP16 tensors through the graph, and executes each segment of an
// ExecutionPlan with the matching fused implementation where one exists
// (unified MHA kernels, fused Bias+LayerNorm, GEMM epilogues, GEMM chains)
// or operator-by-operator otherwise.  Because every fused implementation is
// semantics-preserving, any two plans over the same graph must produce the
// same output up to FP16 rounding — the invariant the integration tests
// assert for every method's plan.
//
// Tensor conventions:
//   * node values are (rows, cols) FP16 tensors in the node's dims;
//   * kQkvProj produces (rows, 3*hidden) packed as [Q | K | V];
//   * inside the MHA sub-graph, scores are (batch*heads*seq, seq) and the
//     kPvGemm output is re-packed to (rows, hidden).
#pragma once

#include <map>
#include <optional>

#include "stof/core/tensor.hpp"
#include "stof/graph/graph.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/models/executor.hpp"
#include "stof/sparse/bsr_cache.hpp"

namespace stof::models {

/// Weights of one parameterised node.
struct NodeWeights {
  TensorH w;      ///< GEMM weight (inner, cols); empty for non-GEMM nodes
  TensorH bias;   ///< kBias vector (cols)
  TensorH gamma;  ///< kLayerNorm scale (cols)
  TensorH beta;   ///< kLayerNorm shift (cols)
};

/// Functional (numerics-producing) executor over one graph + mask.
class FunctionalExecutor {
 public:
  /// Weights are generated deterministically from `seed` per node id.
  FunctionalExecutor(graph::Graph g, mha::MhaDims attn_dims,
                     masks::MaskSpec mask_spec, std::uint64_t seed = 1234);

  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  [[nodiscard]] const masks::Mask& mask() const { return cache_.mask(); }

  /// Execute the graph under `plan`. `input` is (batch*seq_len, hidden).
  /// Returns the final node's value.
  TensorH run(const TensorH& input, const ExecutionPlan& plan);

  /// Convenience: execute fully detached (the numerical reference).
  TensorH run_detached(const TensorH& input);

  /// Weights of node `id` (exposed for white-box tests).
  [[nodiscard]] const NodeWeights& weights(std::int64_t id) const;

 private:
  /// Execute one segment given the values of prior nodes.
  void run_segment(const fusion::Segment& seg,
                   std::vector<TensorH>& values);

  /// Execute a single operator (the detached path).
  void run_op(std::int64_t id, std::vector<TensorH>& values);

  /// Execute a complete MHA sub-graph with the unified sparse kernel.
  TensorH run_fused_mha(const TensorH& qkv);

  /// Split the packed (rows, 3h) QKV tensor into (b*h, seq, d) tensors.
  void split_qkv(const TensorH& qkv, TensorH& q, TensorH& k,
                 TensorH& v) const;

  graph::Graph graph_;
  mha::MhaDims attn_dims_;
  std::int64_t hidden_ = 0;
  sparse::BsrCache cache_;
  std::map<std::int64_t, NodeWeights> weights_;
  /// Mutation stamps of the GEMM weights at load time.  Weights are
  /// warmed into the cross-call panel registry once per model load; a
  /// debug-build check catches anything mutating them afterwards (which
  /// would silently reconvert every call).
  std::map<std::int64_t, std::uint64_t> weight_versions_;

  // Transient per-run state for the detached MHA path.
  std::optional<TensorH> attn_q_, attn_k_, attn_v_;
};

}  // namespace stof::models
