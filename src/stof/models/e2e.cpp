#include "stof/models/e2e.hpp"

namespace stof::models {
namespace {

using baselines::Method;

Executor make_executor(Method mha_method, const ModelConfig& model,
                       std::int64_t batch, std::int64_t seq_len,
                       masks::PatternKind pattern,
                       const gpusim::DeviceSpec& device) {
  return Executor(model.build_graph(batch, seq_len),
                  {batch, model.heads, seq_len, model.head_size()},
                  {.kind = pattern, .seq_len = seq_len}, device, mha_method);
}

E2eResult from_exec(const Executor& exec, const ExecutionPlan& plan) {
  const auto r = exec.simulate(plan);
  E2eResult out;
  out.supported = r.supported;
  out.unsupported_reason = r.unsupported_reason;
  out.time_us = r.time_us;
  out.launches = r.launches;
  return out;
}

}  // namespace

E2eResult simulate_e2e(Method method, const ModelConfig& model,
                       std::int64_t batch, std::int64_t seq_len,
                       masks::PatternKind pattern,
                       const gpusim::DeviceSpec& device,
                       tuner::TuningOptions tuning_options) {
  switch (method) {
    case Method::kPytorchNative:
    case Method::kPytorchCompile:
    case Method::kByteTransformer: {
      // No tuning support (paper Table 4 note).
      const auto exec =
          make_executor(method, model, batch, seq_len, pattern, device);
      return from_exec(exec, baselines::e2e_plan(method, exec.graph()));
    }
    case Method::kMcfuser: {
      const auto exec =
          make_executor(method, model, batch, seq_len, pattern, device);
      if (!exec.mha_supported()) {
        E2eResult out;
        out.supported = false;
        out.unsupported_reason = "MCFuser MHA workspace exceeds device memory";
        return out;
      }
      auto report = tuner::tune_mcfuser(exec, tuning_options);
      auto out = from_exec(exec, report.best_plan);
      out.tuning = std::move(report);
      return out;
    }
    case Method::kBolt: {
      const auto exec =
          make_executor(method, model, batch, seq_len, pattern, device);
      auto report = tuner::tune_bolt(exec, tuning_options);
      auto out = from_exec(exec, report.best_plan);
      out.tuning = std::move(report);
      return out;
    }
    case Method::kStof: {
      const auto exec =
          make_executor(method, model, batch, seq_len, pattern, device);
      auto report = tuner::SearchEngine(exec, tuning_options).tune();
      // The executor's mask analysis + MHA planning is the "analysis
      // model" overhead of Fig. 14.
      report.breakdown.analysis_us += exec.setup_wall_us();
      auto out = from_exec(exec, report.best_plan);
      out.tuning = std::move(report);
      return out;
    }
    case Method::kFlashAttention2:
    case Method::kFlexAttention:
      STOF_CHECK(false, "MHA-only method has no end-to-end configuration");
  }
  STOF_CHECK(false, "unreachable");
}

E2eResult simulate_stof_variant(StofVariant variant, const ModelConfig& model,
                                std::int64_t batch, std::int64_t seq_len,
                                masks::PatternKind pattern,
                                const gpusim::DeviceSpec& device,
                                tuner::TuningOptions tuning_options) {
  const auto exec = make_executor(Method::kStof, model, batch, seq_len,
                                  pattern, device);
  switch (variant) {
    case StofVariant::kFull: {
      auto report = tuner::SearchEngine(exec, tuning_options).tune();
      auto out = from_exec(exec, report.best_plan);
      out.tuning = std::move(report);
      return out;
    }
    case StofVariant::kMhaOnly:
      return from_exec(exec, mha_fused_detached_plan(exec.graph()));
    case StofVariant::kFusionOnly: {
      // Start the search from the fully detached layout; MHA operators can
      // never merge into the unified kernel through single valid moves, so
      // attention runs PyTorch-Native style while downstream fusion tunes.
      ExecutionPlan detached;
      detached.scheme = fusion::FusionScheme::detached(
          static_cast<std::int64_t>(exec.graph().size()));
      auto report = tuner::SearchEngine(exec, tuning_options).tune(detached);
      auto out = from_exec(exec, report.best_plan);
      out.tuning = std::move(report);
      return out;
    }
  }
  STOF_CHECK(false, "unreachable");
}

}  // namespace stof::models
