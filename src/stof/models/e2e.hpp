// One-call end-to-end inference simulation (paper §5.3 / §5.5).
//
// Wraps graph construction, executor setup, per-method planning (including
// running the method's tuner where the paper tunes), and returns the
// simulated inference time.  The Fig. 13 ablation variants of STOF are
// exposed directly:
//   kFull       — unified MHA module + tuned operator fusion,
//   kMhaOnly    — unified MHA module, downstream operators detached,
//   kFusionOnly — MHA operators detached (PyTorch-Native style), tuned
//                 operator fusion downstream.
#pragma once

#include <optional>

#include "stof/baselines/e2e_plans.hpp"
#include "stof/models/config.hpp"
#include "stof/models/executor.hpp"
#include "stof/tuner/search_engine.hpp"

namespace stof::models {

enum class StofVariant { kFull, kMhaOnly, kFusionOnly };

struct E2eResult {
  bool supported = true;
  std::string unsupported_reason;
  double time_us = 0;
  std::size_t launches = 0;
  /// Present when the method ran a tuner (STOF / MCFuser / Bolt).
  std::optional<tuner::TuningReport> tuning;
};

/// Simulate one end-to-end inference of `model` at (batch, seq_len) with a
/// shared attention mask, under `method`'s MHA policy and fusion plan.
E2eResult simulate_e2e(baselines::Method method, const ModelConfig& model,
                       std::int64_t batch, std::int64_t seq_len,
                       masks::PatternKind pattern,
                       const gpusim::DeviceSpec& device,
                       tuner::TuningOptions tuning_options = {});

/// Simulate the STOF ablation variants (Fig. 13).
E2eResult simulate_stof_variant(StofVariant variant, const ModelConfig& model,
                                std::int64_t batch, std::int64_t seq_len,
                                masks::PatternKind pattern,
                                const gpusim::DeviceSpec& device,
                                tuner::TuningOptions tuning_options = {});

/// Detached plan with only the MHA sub-graphs fused (the kMhaOnly layout).
inline ExecutionPlan mha_fused_detached_plan(const graph::Graph& g) {
  return baselines::mha_fused_detached_plan(g);
}

}  // namespace stof::models
