#include "stof/models/config.hpp"

namespace stof::models {

ModelConfig bert_small() {
  ModelConfig c;
  c.name = "BERT-Small";
  c.arch = Architecture::kEncoder;
  c.layers = 4;
  c.hidden = 512;
  c.heads = 8;
  c.ffn_dim = 2048;
  return c;
}

ModelConfig bert_base() {
  ModelConfig c;
  c.name = "BERT-Base";
  c.arch = Architecture::kEncoder;
  c.layers = 12;
  c.hidden = 768;
  c.heads = 12;
  c.ffn_dim = 3072;
  return c;
}

ModelConfig bert_large() {
  ModelConfig c;
  c.name = "BERT-Large";
  c.arch = Architecture::kEncoder;
  c.layers = 24;
  c.hidden = 1024;
  c.heads = 16;
  c.ffn_dim = 4096;
  return c;
}

ModelConfig gpt() {
  ModelConfig c;
  c.name = "GPT";
  c.arch = Architecture::kDecoder;
  c.layers = 12;  // GPT-2 small
  c.hidden = 768;
  c.heads = 12;
  c.ffn_dim = 3072;
  return c;
}

ModelConfig t5() {
  ModelConfig c;
  c.name = "T5";
  c.arch = Architecture::kEncDec;
  c.layers = 12;  // T5-Base
  c.dec_layers = 12;
  c.hidden = 768;
  c.heads = 12;
  c.ffn_dim = 3072;
  c.activation = graph::OpKind::kRelu;
  c.use_bias = false;
  return c;
}

const std::vector<ModelConfig>& all_models() {
  static const std::vector<ModelConfig> models = {
      bert_small(), bert_base(), bert_large(), gpt(), t5()};
  return models;
}

}  // namespace stof::models
