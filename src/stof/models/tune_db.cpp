#include "stof/models/tune_db.hpp"

#include <filesystem>
#include <iomanip>
#include <sstream>

#include "stof/core/checksum.hpp"
#include "stof/models/plan_io.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::models {

namespace {

/// Fold a trivially-copyable value into an FNV-1a chain by its bytes.
template <typename T>
std::uint64_t fold(const T& v, std::uint64_t h) {
  return fnv1a64(&v, sizeof(v), h);
}

}  // namespace

std::int64_t shape_bucket(std::int64_t rows) {
  STOF_EXPECTS(rows >= 1, "shape bucket needs at least one row");
  std::int64_t b = 1;
  while (b < rows) b <<= 1;
  return b;
}

std::uint64_t graph_fingerprint(const graph::Graph& g) {
  std::uint64_t h = kFnv1aOffset;
  const auto n = static_cast<std::int64_t>(g.size());
  h = fold(n, h);
  for (const auto& node : g.nodes()) {
    const int kind = static_cast<int>(node.kind);
    h = fold(kind, h);
    h = fold(node.rows, h);
    h = fold(node.cols, h);
    h = fold(node.inner, h);
    h = fold(node.skip_from, h);
  }
  return h;
}

std::uint64_t device_fingerprint(const gpusim::DeviceSpec& dev) {
  std::uint64_t h = fnv1a64(dev.name.data(), dev.name.size());
  h = fold(dev.sm_count, h);
  h = fold(dev.smem_per_sm, h);
  h = fold(dev.max_warps_per_sm, h);
  h = fold(dev.warp_size, h);
  h = fold(dev.dram_bytes, h);
  h = fold(dev.dram_gbps, h);
  h = fold(dev.l2_bytes, h);
  h = fold(dev.smem_bytes_per_cycle_per_sm, h);
  h = fold(dev.tc_fp16_tflops, h);
  h = fold(dev.cuda_fp32_tflops, h);
  h = fold(dev.clock_ghz, h);
  h = fold(dev.launch_overhead_us, h);
  h = fold(dev.dispatch_overhead_us, h);
  return h;
}

TuneDb::TuneDb(std::string dir) : dir_(std::move(dir)) {
  STOF_EXPECTS(!dir_.empty(), "tuning DB needs a directory");
  std::filesystem::create_directories(dir_);
}

std::string TuneDb::path_for(const TuneKey& key) const {
  std::ostringstream name;
  name << "g" << std::hex << std::setfill('0') << std::setw(16)
       << key.graph_hash << "_d" << std::setw(16) << key.device_fp << "_r"
       << std::dec << key.bucket_rows << ".stofplan";
  return (std::filesystem::path(dir_) / name.str()).string();
}

std::optional<ExecutionPlan> TuneDb::load(const TuneKey& key,
                                          std::int64_t expect_ops) {
  const std::string path = path_for(key);
  if (!std::filesystem::exists(path)) {
    telemetry::count("tunedb.misses");
    return std::nullopt;
  }
  try {
    ExecutionPlan plan = load_plan_file(path);
    STOF_CHECK(plan.scheme.n_ops() == expect_ops,
               "stored plan does not match the graph's op count");
    telemetry::count("tunedb.hits");
    return plan;
  } catch (const Error&) {
    // Truncated, bit-flipped, or otherwise invalid file: report a miss so
    // the caller retunes (and overwrites the bad entry via store()).
    telemetry::count("tunedb.verify_failures");
    telemetry::count("tunedb.misses");
    return std::nullopt;
  }
}

void TuneDb::store(const TuneKey& key, const ExecutionPlan& plan) {
  save_plan_file(plan, path_for(key));
  telemetry::count("tunedb.store_writes");
}

}  // namespace stof::models
