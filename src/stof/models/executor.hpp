// End-to-end executor: runs a model graph under a fusion scheme on the
// simulated device, one kernel launch per fused segment.
//
// Complete MHA segments are dispatched through the configured MHA method
// (STOF's unified module or a baseline policy — this is how the e2e
// comparison isolates the MHA dimension); every other segment is costed by
// its compilation template.  The MHA cost is computed once at construction
// and reused, since it is invariant under downstream-scheme changes —
// exactly the property the two-stage tuner exploits.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "stof/baselines/mha_methods.hpp"
#include "stof/fusion/scheme.hpp"
#include "stof/fusion/templates.hpp"
#include "stof/graph/graph.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/sparse/bsr_cache.hpp"

namespace stof::models {

/// A fusion scheme plus per-segment template parameters.
struct ExecutionPlan {
  fusion::FusionScheme scheme;
  /// One entry per segment of `scheme`; empty means defaults everywhere.
  std::vector<fusion::TemplateParams> segment_params;
  /// Eager (framework-dispatched) execution: every segment pays the
  /// device's dispatch overhead.  Set by the PyTorch-Native plan.
  bool eager = false;
};

/// Result of simulating one plan.
struct ExecResult {
  bool supported = true;
  std::string unsupported_reason;
  double time_us = 0;
  std::size_t launches = 0;
};

class Executor {
 public:
  /// `attn_dims` must describe the MHA instances of `g` (one shared shape;
  /// all layers attend identically, as in the paper's setting).
  Executor(graph::Graph g, mha::MhaDims attn_dims, masks::MaskSpec mask_spec,
           gpusim::DeviceSpec device,
           baselines::Method mha_method = baselines::Method::kStof);

  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  [[nodiscard]] const gpusim::DeviceSpec& device() const { return device_; }
  [[nodiscard]] const mha::MhaDims& attn_dims() const { return attn_dims_; }
  [[nodiscard]] baselines::Method mha_method() const { return mha_method_; }
  [[nodiscard]] sparse::BsrCache& bsr_cache() { return *cache_; }

  /// Simulated time of the fused-MHA kernel(s) of one layer (0 when the
  /// configured method keeps MHA detached or is unsupported).
  [[nodiscard]] double mha_segment_us() const { return mha_time_us_; }
  /// Host wall time spent analyzing the mask and planning the MHA kernel
  /// at construction (the paper's "analysis model" overhead, Fig. 14).
  [[nodiscard]] double setup_wall_us() const { return setup_wall_us_; }
  [[nodiscard]] bool mha_supported() const { return mha_supported_; }

  /// Simulate the whole graph under `plan`; optionally record kernels.
  ExecResult simulate(const ExecutionPlan& plan,
                      gpusim::Stream* stream = nullptr) const;

 private:
  graph::Graph graph_;
  mha::MhaDims attn_dims_;
  masks::PatternKind pattern_;
  gpusim::DeviceSpec device_;
  baselines::Method mha_method_;
  std::unique_ptr<sparse::BsrCache> cache_;
  std::vector<gpusim::KernelRecord> mha_records_;
  double setup_wall_us_ = 0;
  double mha_time_us_ = 0;
  bool mha_supported_ = true;
  std::string mha_unsupported_reason_;
};

}  // namespace stof::models
