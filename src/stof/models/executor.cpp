#include "stof/models/executor.hpp"

#include <chrono>

#include "stof/telemetry/telemetry.hpp"

namespace stof::models {

Executor::Executor(graph::Graph g, mha::MhaDims attn_dims,
                   masks::MaskSpec mask_spec, gpusim::DeviceSpec device,
                   baselines::Method mha_method)
    : graph_(std::move(g)),
      attn_dims_(attn_dims),
      pattern_(mask_spec.kind),
      device_(std::move(device)),
      mha_method_(mha_method) {
  const auto setup_start = std::chrono::steady_clock::now();
  attn_dims_.validate();
  STOF_EXPECTS(mask_spec.seq_len == attn_dims_.seq_len,
               "mask spec must match attention seq_len");
  graph_.validate();
  cache_ = std::make_unique<sparse::BsrCache>(mask_spec.build());

  // Precompute the fused-MHA kernel records once; they are invariant under
  // downstream fusion-scheme changes and are replayed per MHA segment.
  gpusim::Stream scratch(device_);
  const auto r = baselines::simulate_mha(mha_method_, attn_dims_, pattern_,
                                         *cache_, scratch);
  mha_supported_ = r.supported;
  mha_unsupported_reason_ = r.unsupported_reason;
  mha_time_us_ = r.supported ? r.time_us : 0;
  mha_records_ = scratch.records();
  setup_wall_us_ = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - setup_start)
                       .count();
  telemetry::count("sim.exec.executors_built");
  telemetry::duration_us("wall.exec.setup_us", setup_wall_us_);
}

ExecResult Executor::simulate(const ExecutionPlan& plan,
                              gpusim::Stream* stream) const {
  const auto segments = plan.scheme.segments();
  STOF_EXPECTS(plan.scheme.n_ops() == static_cast<std::int64_t>(graph_.size()),
               "plan must cover the graph");
  STOF_EXPECTS(plan.segment_params.empty() ||
                   plan.segment_params.size() == segments.size(),
               "segment_params must match segment count");

  telemetry::count("sim.exec.simulations");
  gpusim::Stream local(device_);
  gpusim::Stream& s = stream != nullptr ? *stream : local;
  const double before_us = s.total_us();
  const std::size_t before_launches = s.launch_count();

  ExecResult result;
  static const fusion::TemplateParams kDefaults;

  for (std::size_t si = 0; si < segments.size(); ++si) {
    const auto& seg = segments[si];
    const auto kind = fusion::classify_segment(graph_, seg);
    if (kind == fusion::TemplateKind::kUnifiedMha) {
      if (!mha_supported_) {
        telemetry::count("sim.exec.unsupported_plans");
        result.supported = false;
        result.unsupported_reason = mha_unsupported_reason_;
        return result;
      }
      for (const auto& rec : mha_records_) s.launch(rec.name, rec.cost);
      continue;
    }
    const auto& params =
        plan.segment_params.empty() ? kDefaults : plan.segment_params[si];
    auto cost = fusion::segment_cost(graph_, seg, kind, params, device_);
    if (plan.eager) cost.dispatch_us = device_.dispatch_overhead_us;
    if (cost.occupancy <= 0 && cost.launches > 0) {
      // The requested tiling cannot launch (SMEM or warp budget exceeded)
      // — the Triton compile would fail, so the plan is rejected.
      telemetry::count("sim.exec.unsupported_plans");
      result.supported = false;
      result.unsupported_reason = "infeasible launch configuration";
      return result;
    }
    s.launch(fusion::to_string(kind), cost);
  }

  result.time_us = s.total_us() - before_us;
  result.launches = s.launch_count() - before_launches;
  return result;
}

}  // namespace stof::models
