#include "stof/models/functional.hpp"

#include <cmath>
#include <limits>

#include <optional>

#include "stof/core/packed.hpp"
#include "stof/core/rng.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/ops/elementwise.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/ops/normalize.hpp"
#include "stof/parallel/parallel_for.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::models {
namespace {

/// y = x (r, k) * w (k, n), FP32 accumulate, on the packed-FP32 engine.
TensorH matmul_2d(const TensorH& x, const TensorH& w) {
  TensorH y(Shape{x.shape()[0], w.shape()[1]});
  ops::matmul2d(x, w, y);
  return y;
}

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

}  // namespace

FunctionalExecutor::FunctionalExecutor(graph::Graph g, mha::MhaDims attn_dims,
                                       masks::MaskSpec mask_spec,
                                       std::uint64_t seed)
    : graph_(std::move(g)),
      attn_dims_(attn_dims),
      cache_(mask_spec.build()) {
  attn_dims_.validate();
  graph_.validate();
  STOF_EXPECTS(mask_spec.seq_len == attn_dims_.seq_len,
               "mask spec must match attention seq_len");
  hidden_ = attn_dims_.heads * attn_dims_.head_size;

  // Deterministic per-node weights: small magnitudes keep activations in a
  // LayerNorm-friendly range.
  for (const auto& node : graph_.nodes()) {
    NodeWeights nw;
    Rng rng(seed ^ (0x9e37u + static_cast<std::uint64_t>(node.id) * 0x85ebca6b));
    switch (node.kind) {
      case graph::OpKind::kQkvProj:
      case graph::OpKind::kOutProj:
      case graph::OpKind::kFfnGemm:
        nw.w = TensorH(Shape{node.inner, node.cols});
        nw.w.fill_random(rng, -0.08f, 0.08f);
        break;
      case graph::OpKind::kBias:
        nw.bias = TensorH(Shape{node.cols});
        nw.bias.fill_random(rng, -0.1f, 0.1f);
        break;
      case graph::OpKind::kLayerNorm:
        nw.gamma = TensorH(Shape{node.cols});
        nw.beta = TensorH(Shape{node.cols});
        nw.gamma.fill_random(rng, 0.9f, 1.1f);
        nw.beta.fill_random(rng, -0.1f, 0.1f);
        break;
      default:
        break;
    }
    weights_.emplace(node.id, std::move(nw));
  }

  // Weight panels convert exactly once per model load: warm them into the
  // cross-call registry now so every layer, call, and tuner evaluation
  // afterwards is a pure cache hit.  Snapshot the mutation stamps so the
  // debug check in run_op can catch post-load writes.
  for (const auto& [id, nw] : weights_) {
    if (nw.w.storage_id() == 0) continue;  // non-GEMM node, no weight
    weight_versions_.emplace(id, nw.w.version());
    if (packed_execution_enabled()) ops::warm_weight_panel(nw.w);
  }
}

const NodeWeights& FunctionalExecutor::weights(std::int64_t id) const {
  return weights_.at(id);
}

void FunctionalExecutor::split_qkv(const TensorH& qkv, TensorH& q, TensorH& k,
                                   TensorH& v) const {
  const std::int64_t seq = attn_dims_.seq_len;
  const std::int64_t heads = attn_dims_.heads;
  const std::int64_t d = attn_dims_.head_size;
  STOF_EXPECTS(qkv.shape() ==
               (Shape{attn_dims_.batch * seq, 3 * hidden_}));
  q = TensorH(attn_dims_.qkv_shape());
  k = TensorH(attn_dims_.qkv_shape());
  v = TensorH(attn_dims_.qkv_shape());
  parallel_for(0, attn_dims_.batch * seq, [&](std::int64_t row) {
    const std::int64_t b = row / seq;
    const std::int64_t s = row % seq;
    for (std::int64_t h = 0; h < heads; ++h) {
      const std::int64_t bh = b * heads + h;
      for (std::int64_t e = 0; e < d; ++e) {
        q.at(bh, s, e) = qkv.at(row, h * d + e);
        k.at(bh, s, e) = qkv.at(row, hidden_ + h * d + e);
        v.at(bh, s, e) = qkv.at(row, 2 * hidden_ + h * d + e);
      }
    }
  });
}

TensorH FunctionalExecutor::run_fused_mha(const TensorH& qkv) {
  TensorH q, k, v;
  split_qkv(qkv, q, k, v);
  // The unified kernel (block-wise at (16,16) is valid for every mask);
  // functionally identical to any other parameterisation.
  const auto& bsr = cache_.at(16, 16);
  const TensorH ctx = mha::blockwise_attention(attn_dims_, q, k, v, bsr,
                                               mha::BlockwiseParams{16, 16});
  // Re-pack (b*h, seq, d) -> (rows, hidden).
  const std::int64_t seq = attn_dims_.seq_len;
  const std::int64_t heads = attn_dims_.heads;
  const std::int64_t d = attn_dims_.head_size;
  TensorH out(Shape{attn_dims_.batch * seq, hidden_});
  parallel_for(0, attn_dims_.batch * seq, [&](std::int64_t row) {
    const std::int64_t b = row / seq;
    const std::int64_t s = row % seq;
    for (std::int64_t h = 0; h < heads; ++h) {
      for (std::int64_t e = 0; e < d; ++e) {
        out.at(row, h * d + e) = ctx.at(b * heads + h, s, e);
      }
    }
  });
  return out;
}

void FunctionalExecutor::run_op(std::int64_t id,
                                std::vector<TensorH>& values) {
  const auto& node = graph_.node(id);
  // Per-op accounting: one deterministic counter plus a wall-clock timer
  // keyed by operator kind.  The name is only built when telemetry is on.
  std::optional<telemetry::ScopedTimer> op_timer;
  if (telemetry::enabled()) {
    telemetry::count("sim.exec.ops_run");
    telemetry::count("sim.exec.op." + graph::to_string(node.kind) + ".calls");
    op_timer.emplace("wall.exec.op." + graph::to_string(node.kind) + "_us");
  }
  const auto& nw = weights_.at(id);
  const auto prev = [&]() -> const TensorH& {
    STOF_EXPECTS(id > 0, "operator needs an input value");
    return values[static_cast<std::size_t>(id) - 1];
  };
  const std::int64_t seq = attn_dims_.seq_len;

  switch (node.kind) {
    case graph::OpKind::kInput:
      STOF_CHECK(values[0].numel() > 0, "input value must be provided");
      return;
    case graph::OpKind::kQkvProj:
    case graph::OpKind::kOutProj:
    case graph::OpKind::kFfnGemm:
#ifndef NDEBUG
      STOF_CHECK(nw.w.version() == weight_versions_.at(id),
                 "model weight mutated after load (stale panel cache)");
#endif
      values[static_cast<std::size_t>(id)] = matmul_2d(prev(), nw.w);
      return;
    case graph::OpKind::kBias: {
      TensorH y(prev().shape());
      ops::bias_add(prev(), nw.bias, y);
      values[static_cast<std::size_t>(id)] = std::move(y);
      return;
    }
    case graph::OpKind::kGelu: {
      TensorH y(prev().shape());
      ops::gelu_op(prev(), y);
      values[static_cast<std::size_t>(id)] = std::move(y);
      return;
    }
    case graph::OpKind::kRelu: {
      TensorH y(prev().shape());
      ops::relu(prev(), y);
      values[static_cast<std::size_t>(id)] = std::move(y);
      return;
    }
    case graph::OpKind::kResidualAdd: {
      const auto& skip = values[static_cast<std::size_t>(node.skip_from)];
      TensorH y(prev().shape());
      ops::residual_add(prev(), skip, y);
      values[static_cast<std::size_t>(id)] = std::move(y);
      return;
    }
    case graph::OpKind::kLayerNorm: {
      TensorH y(prev().shape());
      ops::layernorm(prev(), nw.gamma, nw.beta, y);
      values[static_cast<std::size_t>(id)] = std::move(y);
      return;
    }
    case graph::OpKind::kScoreGemm: {
      // Detached attention path: split QKV, materialize scaled scores.
      TensorH q, k, v;
      split_qkv(prev(), q, k, v);
      attn_q_ = std::move(q);
      attn_k_ = std::move(k);
      attn_v_ = std::move(v);
      const float scale = attn_dims_.scale();
      // Const views: reading through the mutable members would bump their
      // mutation stamps once per element from every worker thread.
      const TensorH& aq = *attn_q_;
      const TensorH& ak = *attn_k_;
      TensorH scores(Shape{attn_dims_.instances() * seq, seq});
      parallel_for(0, attn_dims_.instances() * seq, [&](std::int64_t row) {
        const std::int64_t bh = row / seq;
        const std::int64_t i = row % seq;
        for (std::int64_t j = 0; j < seq; ++j) {
          float dot = 0;
          for (std::int64_t e = 0; e < attn_dims_.head_size; ++e) {
            dot += float(aq.at(bh, i, e)) * float(ak.at(bh, j, e));
          }
          scores.at(row, j) = half(dot * scale);
        }
      });
      values[static_cast<std::size_t>(id)] = std::move(scores);
      return;
    }
    case graph::OpKind::kMaskApply: {
      const auto& mask = cache_.mask();
      TensorH scores = prev();  // copy, then mask in place
      parallel_for(0, scores.shape()[0], [&](std::int64_t row) {
        const std::int64_t i = row % seq;
        for (std::int64_t j = 0; j < seq; ++j) {
          if (!mask.at(i, j)) scores.at(row, j) = half(kNegInf);
        }
      });
      values[static_cast<std::size_t>(id)] = std::move(scores);
      return;
    }
    case graph::OpKind::kSoftmax: {
      const auto& scores = prev();
      TensorH probs(scores.shape());
      parallel_for(0, scores.shape()[0], [&](std::int64_t row) {
        float max_v = kNegInf;
        for (std::int64_t j = 0; j < seq; ++j) {
          max_v = std::max(max_v, float(scores.at(row, j)));
        }
        if (max_v == kNegInf) {  // fully masked row
          for (std::int64_t j = 0; j < seq; ++j) probs.at(row, j) = half(0.0f);
          return;
        }
        float sum = 0;
        std::vector<float> e(static_cast<std::size_t>(seq));
        for (std::int64_t j = 0; j < seq; ++j) {
          const float s = float(scores.at(row, j));
          e[static_cast<std::size_t>(j)] =
              s == kNegInf ? 0.0f : std::exp(s - max_v);
          sum += e[static_cast<std::size_t>(j)];
        }
        for (std::int64_t j = 0; j < seq; ++j) {
          probs.at(row, j) = half(e[static_cast<std::size_t>(j)] / sum);
        }
      });
      values[static_cast<std::size_t>(id)] = std::move(probs);
      return;
    }
    case graph::OpKind::kPvGemm: {
      STOF_CHECK(attn_v_.has_value(), "PvGemm before ScoreGemm");
      const auto& probs = prev();
      const TensorH& av = *attn_v_;  // const view; see kScoreGemm
      const std::int64_t heads = attn_dims_.heads;
      const std::int64_t d = attn_dims_.head_size;
      TensorH out(Shape{attn_dims_.batch * seq, hidden_});
      parallel_for(0, attn_dims_.batch * seq, [&](std::int64_t row) {
        const std::int64_t b = row / seq;
        const std::int64_t s = row % seq;
        for (std::int64_t h = 0; h < heads; ++h) {
          const std::int64_t bh = b * heads + h;
          for (std::int64_t e = 0; e < d; ++e) {
            float acc = 0;
            for (std::int64_t j = 0; j < seq; ++j) {
              acc += float(probs.at(bh * seq + s, j)) * float(av.at(bh, j, e));
            }
            out.at(row, h * d + e) = half(acc);
          }
        }
      });
      values[static_cast<std::size_t>(id)] = std::move(out);
      return;
    }
    case graph::OpKind::kFusedMha:
    case graph::OpKind::kFusedSegment:
      STOF_CHECK(false, "fused nodes never appear in source graphs");
  }
  STOF_CHECK(false, "unreachable");
}

void FunctionalExecutor::run_segment(const fusion::Segment& seg,
                                     std::vector<TensorH>& values) {
  const auto kind = fusion::classify_segment(graph_, seg);
  if (kind == fusion::TemplateKind::kUnifiedMha) {
    const auto& qkv = values[static_cast<std::size_t>(seg.begin) - 1];
    values[static_cast<std::size_t>(seg.end) - 1] = run_fused_mha(qkv);
    return;
  }
  // Every downstream fused template is semantics-preserving (proven
  // per-template in the ops tests), so fused segments evaluate
  // operator-by-operator; only MHA segments switch kernels.
  for (std::int64_t i = seg.begin; i < seg.end; ++i) run_op(i, values);
}

TensorH FunctionalExecutor::run(const TensorH& input,
                                const ExecutionPlan& plan) {
  STOF_EXPECTS(plan.scheme.n_ops() ==
                   static_cast<std::int64_t>(graph_.size()),
               "plan must cover the graph");
  const auto& in_node = graph_.node(0);
  STOF_EXPECTS(input.shape() == (Shape{in_node.rows, in_node.cols}),
               "input must match the graph's input node");

  telemetry::count("sim.exec.forward_calls");
  telemetry::ScopedTimer timer("wall.exec.forward_us");
  std::vector<TensorH> values(graph_.size());
  values[0] = input;
  for (const auto& seg : plan.scheme.segments()) run_segment(seg, values);
  attn_q_.reset();
  attn_k_.reset();
  attn_v_.reset();
  return values.back();
}

TensorH FunctionalExecutor::run_detached(const TensorH& input) {
  ExecutionPlan detached;
  detached.scheme = fusion::FusionScheme::detached(
      static_cast<std::int64_t>(graph_.size()));
  return run(input, detached);
}

}  // namespace stof::models
