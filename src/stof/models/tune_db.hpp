// Persistent on-disk tuning database.
//
// The two-stage search (tuner/search_engine) is a model-load-time cost; a
// deployment re-loading the same model on the same device class should not
// pay it twice.  TuneDb persists tuned ExecutionPlans as one checksummed
// STOFPLAN v2 file per key, where the key is
//
//   (graph fingerprint, shape bucket, device fingerprint)
//
//   * graph fingerprint — FNV-1a over the linearized operator sequence
//     (kind + logical dims + skip edges), so two structurally identical
//     graphs share plans and any structural change misses;
//   * shape bucket — activation row counts quantized to the next power of
//     two, so a decode batch of 24 and one of 31 share a plan while decode
//     (small buckets) and prefill (large buckets) tune separately;
//   * device fingerprint — FNV-1a over every DeviceSpec field, so a plan
//     tuned for an A100 never drives an RTX 4090 timeline.
//
// load() verifies the file's checksum (via plan_io) and its op count
// against the graph before returning; any corruption or mismatch counts a
// `tunedb.verify_failures` and reports a miss, which makes the caller fall
// back to retuning — a corrupt DB costs time, never correctness.
//
// Telemetry: `tunedb.{hits,misses,store_writes,verify_failures}`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "stof/gpusim/device.hpp"
#include "stof/graph/graph.hpp"
#include "stof/models/executor.hpp"

namespace stof::models {

/// Cache key of one tuned plan.
struct TuneKey {
  std::uint64_t graph_hash = 0;
  std::int64_t bucket_rows = 0;
  std::uint64_t device_fp = 0;
};

/// Next power of two >= rows (minimum 1): the shape-bucket quantizer.
[[nodiscard]] std::int64_t shape_bucket(std::int64_t rows);

/// Structural fingerprint of a linearized graph.
[[nodiscard]] std::uint64_t graph_fingerprint(const graph::Graph& g);

/// Fingerprint of every DeviceSpec field that feeds the cost model.
[[nodiscard]] std::uint64_t device_fingerprint(const gpusim::DeviceSpec& dev);

class TuneDb {
 public:
  /// Opens (creating if needed) the database directory.
  explicit TuneDb(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// File path that stores (or would store) `key`'s plan.
  [[nodiscard]] std::string path_for(const TuneKey& key) const;

  /// Look `key` up.  Returns the stored plan iff the file exists, its
  /// checksum verifies, and its op count equals `expect_ops`; nullopt
  /// otherwise (callers retune).  Counts tunedb.hits / tunedb.misses /
  /// tunedb.verify_failures.
  [[nodiscard]] std::optional<ExecutionPlan> load(const TuneKey& key,
                                                  std::int64_t expect_ops);

  /// Persist `plan` under `key` (overwrites).  Counts tunedb.store_writes.
  void store(const TuneKey& key, const ExecutionPlan& plan);

 private:
  std::string dir_;
};

}  // namespace stof::models
