#include "stof/models/plan_io.hpp"

#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>

#include "stof/core/checksum.hpp"

namespace stof::models {

// STOFPLAN v2 is the v1 human-auditable text format plus a trailing
// `check <hex>` line: an FNV-1a checksum over every byte that precedes it,
// so a bit-flipped or truncated plan file errors on load instead of
// silently deserializing into a different plan.
void save_plan(const ExecutionPlan& plan, std::ostream& os) {
  const auto segments = plan.scheme.segments();
  STOF_EXPECTS(plan.segment_params.empty() ||
                   plan.segment_params.size() == segments.size(),
               "segment_params must match segment count");
  std::ostringstream body;
  body << "STOFPLAN v2\n";
  body << "ops " << plan.scheme.n_ops() << " eager " << (plan.eager ? 1 : 0)
       << "\n";
  body << "scheme " << plan.scheme.to_hex() << "\n";
  for (std::size_t i = 0; i < plan.segment_params.size(); ++i) {
    const auto& p = plan.segment_params[i];
    body << "seg " << i << " gemm " << p.gemm.block_m << ' ' << p.gemm.block_n
         << ' ' << p.gemm.block_k << ' ' << p.gemm.num_warps << ' '
         << p.gemm.num_stages << " ew " << p.ew.block_size << ' '
         << p.ew.items_per_thread << " norm " << p.norm.block_size << ' '
         << p.norm.rows_per_block << "\n";
  }
  const std::string text = body.str();
  os << text << "check " << std::hex << std::setfill('0') << std::setw(16)
     << fnv1a64(text.data(), text.size()) << "\n";
  STOF_CHECK(os.good(), "failed to write plan stream");
}

ExecutionPlan load_plan(std::istream& stream) {
  const std::string all(std::istreambuf_iterator<char>(stream),
                        std::istreambuf_iterator<char>{});

  std::istringstream is(all);
  std::string word;
  std::string version;
  is >> word >> version;
  STOF_CHECK(is.good() && word == "STOFPLAN", "not a STOFPLAN stream");
  STOF_CHECK(version == "v2", "unsupported plan version " + version);

  // Locate the trailing check line (must start a line) and verify the
  // checksum over everything before it prior to parsing further.
  std::size_t check_pos = all.rfind("check ");
  while (check_pos != std::string::npos && check_pos != 0 &&
         all[check_pos - 1] != '\n') {
    check_pos = check_pos == 0 ? std::string::npos
                               : all.rfind("check ", check_pos - 1);
  }
  STOF_CHECK(check_pos != std::string::npos && check_pos != 0,
             "plan stream missing checksum line");
  std::uint64_t stored = 0;
  {
    std::istringstream cs(all.substr(check_pos + 6));
    cs >> std::hex >> stored;
    STOF_CHECK(!cs.fail(), "malformed plan checksum line");
  }
  STOF_CHECK(fnv1a64(all.data(), check_pos) == stored,
             "plan checksum mismatch (corrupted stream)");
  // Re-parse only the verified prefix so the check line itself is not
  // consumed as plan content.
  is.str(all.substr(0, check_pos));
  is.clear();
  is >> word >> version;  // skip the already-validated header

  std::int64_t n_ops = 0;
  int eager = 0;
  is >> word;
  STOF_CHECK(word == "ops", "expected 'ops'");
  is >> n_ops >> word >> eager;
  STOF_CHECK(is.good() && word == "eager" && n_ops > 0 &&
                 (eager == 0 || eager == 1),
             "malformed ops/eager line");

  std::string hex;
  is >> word >> hex;
  STOF_CHECK(is.good() && word == "scheme", "expected 'scheme'");

  ExecutionPlan plan;
  plan.scheme = fusion::FusionScheme::from_hex(hex, n_ops);
  plan.eager = eager == 1;

  const auto segments = plan.scheme.segments();
  while (is >> word) {
    STOF_CHECK(word == "seg", "expected 'seg', got '" + word + "'");
    std::size_t index = 0;
    fusion::TemplateParams p;
    std::string g, e, n;
    is >> index >> g >> p.gemm.block_m >> p.gemm.block_n >> p.gemm.block_k >>
        p.gemm.num_warps >> p.gemm.num_stages >> e >> p.ew.block_size >>
        p.ew.items_per_thread >> n >> p.norm.block_size >>
        p.norm.rows_per_block;
    STOF_CHECK(is.good() && g == "gemm" && e == "ew" && n == "norm",
               "malformed seg line");
    STOF_CHECK(index == plan.segment_params.size(),
               "seg lines must be sequential");
    STOF_CHECK(index < segments.size(), "more seg lines than segments");
    plan.segment_params.push_back(p);
  }
  STOF_CHECK(plan.segment_params.empty() ||
                 plan.segment_params.size() == segments.size(),
             "plan must carry params for every segment or none");
  return plan;
}

void save_plan_file(const ExecutionPlan& plan, const std::string& path) {
  std::ofstream os(path);
  STOF_CHECK(os.is_open(), "cannot open " + path + " for writing");
  save_plan(plan, os);
}

ExecutionPlan load_plan_file(const std::string& path) {
  std::ifstream is(path);
  STOF_CHECK(is.is_open(), "cannot open " + path);
  return load_plan(is);
}

}  // namespace stof::models
