#include "stof/models/plan_io.hpp"

#include <fstream>
#include <sstream>

namespace stof::models {

void save_plan(const ExecutionPlan& plan, std::ostream& os) {
  const auto segments = plan.scheme.segments();
  STOF_EXPECTS(plan.segment_params.empty() ||
                   plan.segment_params.size() == segments.size(),
               "segment_params must match segment count");
  os << "STOFPLAN v1\n";
  os << "ops " << plan.scheme.n_ops() << " eager " << (plan.eager ? 1 : 0)
     << "\n";
  os << "scheme " << plan.scheme.to_hex() << "\n";
  for (std::size_t i = 0; i < plan.segment_params.size(); ++i) {
    const auto& p = plan.segment_params[i];
    os << "seg " << i << " gemm " << p.gemm.block_m << ' ' << p.gemm.block_n
       << ' ' << p.gemm.block_k << ' ' << p.gemm.num_warps << ' '
       << p.gemm.num_stages << " ew " << p.ew.block_size << ' '
       << p.ew.items_per_thread << " norm " << p.norm.block_size << ' '
       << p.norm.rows_per_block << "\n";
  }
  STOF_CHECK(os.good(), "failed to write plan stream");
}

ExecutionPlan load_plan(std::istream& is) {
  std::string word;
  std::string version;
  is >> word >> version;
  STOF_CHECK(is.good() && word == "STOFPLAN", "not a STOFPLAN stream");
  STOF_CHECK(version == "v1", "unsupported plan version " + version);

  std::int64_t n_ops = 0;
  int eager = 0;
  is >> word;
  STOF_CHECK(word == "ops", "expected 'ops'");
  is >> n_ops >> word >> eager;
  STOF_CHECK(is.good() && word == "eager" && n_ops > 0 &&
                 (eager == 0 || eager == 1),
             "malformed ops/eager line");

  std::string hex;
  is >> word >> hex;
  STOF_CHECK(is.good() && word == "scheme", "expected 'scheme'");

  ExecutionPlan plan;
  plan.scheme = fusion::FusionScheme::from_hex(hex, n_ops);
  plan.eager = eager == 1;

  const auto segments = plan.scheme.segments();
  while (is >> word) {
    STOF_CHECK(word == "seg", "expected 'seg', got '" + word + "'");
    std::size_t index = 0;
    fusion::TemplateParams p;
    std::string g, e, n;
    is >> index >> g >> p.gemm.block_m >> p.gemm.block_n >> p.gemm.block_k >>
        p.gemm.num_warps >> p.gemm.num_stages >> e >> p.ew.block_size >>
        p.ew.items_per_thread >> n >> p.norm.block_size >>
        p.norm.rows_per_block;
    STOF_CHECK(is.good() && g == "gemm" && e == "ew" && n == "norm",
               "malformed seg line");
    STOF_CHECK(index == plan.segment_params.size(),
               "seg lines must be sequential");
    STOF_CHECK(index < segments.size(), "more seg lines than segments");
    plan.segment_params.push_back(p);
  }
  STOF_CHECK(plan.segment_params.empty() ||
                 plan.segment_params.size() == segments.size(),
             "plan must carry params for every segment or none");
  return plan;
}

void save_plan_file(const ExecutionPlan& plan, const std::string& path) {
  std::ofstream os(path);
  STOF_CHECK(os.is_open(), "cannot open " + path + " for writing");
  save_plan(plan, os);
}

ExecutionPlan load_plan_file(const std::string& path) {
  std::ifstream is(path);
  STOF_CHECK(is.is_open(), "cannot open " + path);
  return load_plan(is);
}

}  // namespace stof::models
