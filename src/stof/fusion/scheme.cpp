#include "stof/fusion/scheme.hpp"

#include <algorithm>

namespace stof::fusion {

FusionScheme FusionScheme::from_segments(const std::vector<Segment>& segments,
                                         std::int64_t n_ops) {
  STOF_EXPECTS(n_ops > 0);
  STOF_EXPECTS(!segments.empty());
  FusionScheme s;
  s.code_.resize(static_cast<std::size_t>(n_ops));
  std::int64_t expected_begin = 0;
  std::uint8_t digit = 0;
  for (const auto& seg : segments) {
    STOF_EXPECTS(seg.begin == expected_begin && seg.end > seg.begin,
                 "segments must tile [0, n) contiguously");
    for (std::int64_t i = seg.begin; i < seg.end; ++i) {
      s.code_[static_cast<std::size_t>(i)] = digit;
    }
    digit ^= 1;  // adjacent segments alternate, marking the boundary
    expected_begin = seg.end;
  }
  STOF_EXPECTS(expected_begin == n_ops, "segments must cover every operator");
  return s;
}

FusionScheme FusionScheme::detached(std::int64_t n_ops) {
  STOF_EXPECTS(n_ops > 0);
  FusionScheme s;
  s.code_.resize(static_cast<std::size_t>(n_ops));
  for (std::int64_t i = 0; i < n_ops; ++i) {
    s.code_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i & 1);
  }
  return s;
}

FusionScheme FusionScheme::from_code(std::vector<std::uint8_t> code) {
  STOF_EXPECTS(!code.empty());
  for (const auto d : code) STOF_EXPECTS(d == 0 || d == 1, "digits are 0/1");
  STOF_EXPECTS(code.front() == 0, "canonical codes start with digit 0");
  FusionScheme s;
  s.code_ = std::move(code);
  return s;
}

FusionScheme FusionScheme::from_hex(const std::string& hex,
                                    std::int64_t n_ops) {
  STOF_EXPECTS(n_ops > 0);
  const std::int64_t nibbles = (n_ops + 3) / 4;
  STOF_EXPECTS(static_cast<std::int64_t>(hex.size()) == nibbles,
               "hex string length must match operator count");
  std::vector<std::uint8_t> code(static_cast<std::size_t>(n_ops));
  for (std::int64_t i = 0; i < n_ops; ++i) {
    const std::int64_t bit = nibbles * 4 - 1 - i;  // MSB-first
    const char c = hex[static_cast<std::size_t>(nibbles - 1 - bit / 4)];
    const int v = c >= '0' && c <= '9'   ? c - '0'
                  : c >= 'a' && c <= 'f' ? c - 'a' + 10
                  : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                         : -1;
    STOF_EXPECTS(v >= 0, "invalid hex digit");
    code[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (bit % 4)) & 1);
  }
  return from_code(std::move(code));
}

std::string FusionScheme::to_hex() const {
  const std::int64_t n = n_ops();
  const std::int64_t nibbles = (n + 3) / 4;
  std::string hex(static_cast<std::size_t>(nibbles), '0');
  for (std::int64_t i = 0; i < n; ++i) {
    if (!code_[static_cast<std::size_t>(i)]) continue;
    const std::int64_t bit = nibbles * 4 - 1 - i;
    const std::size_t pos = static_cast<std::size_t>(nibbles - 1 - bit / 4);
    int v = hex[pos] <= '9' ? hex[pos] - '0' : hex[pos] - 'a' + 10;
    v |= 1 << (bit % 4);
    hex[pos] = static_cast<char>(v < 10 ? '0' + v : 'a' + v - 10);
  }
  return hex;
}

std::vector<Segment> FusionScheme::segments() const {
  std::vector<Segment> segs;
  const std::int64_t n = n_ops();
  std::int64_t begin = 0;
  for (std::int64_t i = 1; i <= n; ++i) {
    if (i == n || code_[static_cast<std::size_t>(i)] !=
                      code_[static_cast<std::size_t>(i - 1)]) {
      segs.push_back({begin, i});
      begin = i;
    }
  }
  return segs;
}

std::int64_t FusionScheme::segment_of(std::int64_t op) const {
  STOF_EXPECTS(op >= 0 && op < n_ops());
  std::int64_t seg = 0;
  for (std::int64_t i = 1; i <= op; ++i) {
    if (code_[static_cast<std::size_t>(i)] !=
        code_[static_cast<std::size_t>(i - 1)]) {
      ++seg;
    }
  }
  return seg;
}

bool FusionScheme::valid_for(const graph::Graph& g) const {
  if (n_ops() != static_cast<std::int64_t>(g.size())) return false;
  const auto segs = segments();
  const auto mha = graph::Graph::mha_pattern();

  for (const auto& seg : segs) {
    std::int64_t ci = 0;
    const graph::Node* ci1 = nullptr;
    const graph::Node* ci2 = nullptr;
    bool has_mha = false;
    bool has_input = false;
    for (std::int64_t i = seg.begin; i < seg.end; ++i) {
      const auto& node = g.node(i);
      if (graph::is_compute_intensive(node.kind)) {
        ++ci;
        (ci1 == nullptr ? ci1 : ci2) = &node;
      }
      has_mha = has_mha || graph::is_mha_op(node.kind);
      has_input = has_input || node.kind == graph::OpKind::kInput;
    }
    if (has_input && seg.size() != 1) return false;  // input stays alone
    if (has_mha) {
      // MHA operators are either fully detached (single-op segments, the
      // PyTorch-Native layout) or one complete sub-graph mapped to the
      // unified kernel — never partially grouped or extended.
      if (seg.size() == 1) continue;
      if (seg.size() != static_cast<std::int64_t>(mha.size())) return false;
      for (std::size_t j = 0; j < mha.size(); ++j) {
        if (g.node(seg.begin + static_cast<std::int64_t>(j)).kind != mha[j]) {
          return false;
        }
      }
    } else if (ci > 2) {
      return false;  // at most two CI operators per segment (paper §4.4)
    } else if (ci == 2) {
      // A CI+CI chain template requires dimension-compatible GEMMs.
      if (ci2->inner != ci1->cols || ci2->rows != ci1->rows) return false;
    }
  }
  return true;
}

}  // namespace stof::fusion
