// Fusion scheme encoding (paper §4.3, Fig. 8).
//
// A fusion scheme is a partition of the linear operator sequence into
// contiguous segments.  Following the paper, the scheme is quantized as a
// binary hash code: every operator carries a 0/1 digit, all operators of
// one segment share the digit, and adjacent segments alternate — so a digit
// flip marks a segment boundary, like the high/low voltage levels of a
// digital circuit.  The code round-trips to a hexadecimal string (the
// compressed form the paper mentions for complex networks) and is the cache
// key of the search engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/graph/graph.hpp"

namespace stof::fusion {

/// Half-open operator index range [begin, end) forming one fused segment.
struct Segment {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t size() const { return end - begin; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// A fusion scheme over a graph of n operators.
class FusionScheme {
 public:
  FusionScheme() = default;

  /// Build from an explicit segmentation; segments must tile [0, n).
  static FusionScheme from_segments(const std::vector<Segment>& segments,
                                    std::int64_t n_ops);

  /// Build the all-detached scheme (every operator its own segment).
  static FusionScheme detached(std::int64_t n_ops);

  /// Decode from a binary digit array (the paper's representation).
  static FusionScheme from_code(std::vector<std::uint8_t> code);

  /// Decode from the hexadecimal compression of the digit array.
  static FusionScheme from_hex(const std::string& hex, std::int64_t n_ops);

  [[nodiscard]] std::int64_t n_ops() const {
    return static_cast<std::int64_t>(code_.size());
  }
  /// The binary digits, one per operator.
  [[nodiscard]] const std::vector<std::uint8_t>& code() const { return code_; }
  /// Hexadecimal compression (MSB-first, zero padded to 4-bit boundary).
  [[nodiscard]] std::string to_hex() const;

  /// Decode the digit runs back into segments.
  [[nodiscard]] std::vector<Segment> segments() const;
  /// Segment index containing operator `op`.
  [[nodiscard]] std::int64_t segment_of(std::int64_t op) const;

  /// Structural validity against a graph (paper's constraints):
  ///  * the input node is never fused,
  ///  * at most two CI operators per segment,
  ///  * MHA operators form exactly one segment per MHA sub-graph
  ///    (they map to the unified MHA kernel, never split or extended).
  [[nodiscard]] bool valid_for(const graph::Graph& g) const;

  friend bool operator==(const FusionScheme&, const FusionScheme&) = default;

 private:
  std::vector<std::uint8_t> code_;
};

}  // namespace stof::fusion
