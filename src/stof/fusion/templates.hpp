// Compilation templates (paper §4.3): every fused segment maps, via its
// operator composition, to one parameterised template whose kernel cost is
// evaluated against the device model.  The template kinds mirror the
// paper's Triton implementations:
//
//   kUnifiedMha   — the MHA sub-graph, handled by the unified MHA module
//                   (costed by the executor, which owns the mask).
//   kGemmChain    — CI + CI (two GEMMs, with interleaved simple MI ops
//                   absorbed into the epilogue/prologue).
//   kGemmEpilogue — one CI plus trailing MI ops (bias / activation /
//                   residual / LayerNorm epilogue).
//   kMiChain      — MI-only run (bias + LayerNorm etc.), one memory pass.
//   kSingleOp     — unfused operator dispatched on its own.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stof/fusion/scheme.hpp"
#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/graph/graph.hpp"
#include "stof/ops/elementwise.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/ops/normalize.hpp"

namespace stof::fusion {

enum class TemplateKind {
  kUnifiedMha,
  kGemmChain,
  kGemmEpilogue,
  kMiChain,
  kSingleOp,
};

[[nodiscard]] std::string to_string(TemplateKind kind);

/// Classify one segment of `g` by its operator composition.
TemplateKind classify_segment(const graph::Graph& g, const Segment& seg);

/// Tunable parameters exposed by a compilation template.  Which fields are
/// live depends on the template kind; dead fields are ignored by the cost
/// function, so one struct keys the tuner's cache uniformly.
struct TemplateParams {
  ops::GemmParams gemm;
  ops::EwParams ew;
  ops::NormParams norm;

  friend bool operator==(const TemplateParams&,
                         const TemplateParams&) = default;

  /// Stable cache key for the tuner.
  [[nodiscard]] std::string key() const;
};

/// The parameter settings the tuner samples for a given template kind.
std::vector<TemplateParams> template_param_space(TemplateKind kind);

/// Cost of one unfused operator executed as its own kernel.
gpusim::KernelCost single_op_cost(const graph::Node& node,
                                  const TemplateParams& params,
                                  const gpusim::DeviceSpec& dev);

/// Cost of executing `seg` as one fused kernel of kind `kind`.
/// Precondition: kind != kUnifiedMha (the executor costs MHA segments via
/// UnifiedMha, which owns the mask).
gpusim::KernelCost segment_cost(const graph::Graph& g, const Segment& seg,
                                TemplateKind kind,
                                const TemplateParams& params,
                                const gpusim::DeviceSpec& dev);

}  // namespace stof::fusion
