#include "stof/fusion/templates.hpp"

#include <sstream>

#include "stof/ops/fused.hpp"

namespace stof::fusion {

std::string to_string(TemplateKind kind) {
  switch (kind) {
    case TemplateKind::kUnifiedMha: return "unified_mha";
    case TemplateKind::kGemmChain: return "gemm_chain";
    case TemplateKind::kGemmEpilogue: return "gemm_epilogue";
    case TemplateKind::kMiChain: return "mi_chain";
    case TemplateKind::kSingleOp: return "single_op";
  }
  return "unknown";
}

TemplateKind classify_segment(const graph::Graph& g, const Segment& seg) {
  STOF_EXPECTS(seg.begin >= 0 && seg.end <= static_cast<std::int64_t>(g.size()) &&
               seg.begin < seg.end);
  // Only a complete [ScoreGemm, MaskApply, Softmax, PvGemm] run maps to the
  // unified MHA kernel; partial groupings (e.g. Bolt's GEMM + softmax
  // epilogue) classify by their generic composition below.
  const auto mha = graph::Graph::mha_pattern();
  if (seg.size() == static_cast<std::int64_t>(mha.size())) {
    bool is_mha = true;
    for (std::size_t j = 0; j < mha.size(); ++j) {
      if (g.node(seg.begin + static_cast<std::int64_t>(j)).kind != mha[j]) {
        is_mha = false;
        break;
      }
    }
    if (is_mha) return TemplateKind::kUnifiedMha;
  }
  if (seg.size() == 1) return TemplateKind::kSingleOp;
  std::int64_t ci = 0;
  for (std::int64_t i = seg.begin; i < seg.end; ++i) {
    ci += graph::is_compute_intensive(g.node(i).kind) ? 1 : 0;
  }
  if (ci >= 2) return TemplateKind::kGemmChain;
  if (ci == 1) return TemplateKind::kGemmEpilogue;
  return TemplateKind::kMiChain;
}

std::string TemplateParams::key() const {
  std::ostringstream os;
  os << gemm.block_m << '.' << gemm.block_n << '.' << gemm.block_k << '.'
     << gemm.num_warps << '.' << gemm.num_stages << '|' << ew.block_size << '.'
     << ew.items_per_thread << '|' << norm.block_size << '.'
     << norm.rows_per_block;
  return os.str();
}

std::vector<TemplateParams> template_param_space(TemplateKind kind) {
  std::vector<TemplateParams> space;
  switch (kind) {
    case TemplateKind::kGemmChain:
    case TemplateKind::kGemmEpilogue: {
      for (const auto& gp : ops::gemm_param_space()) {
        TemplateParams p;
        p.gemm = gp;
        space.push_back(p);
      }
      break;
    }
    case TemplateKind::kMiChain: {
      for (const auto& ep : ops::elementwise_param_space()) {
        TemplateParams p;
        p.ew = ep;
        space.push_back(p);
      }
      for (const auto& np : ops::norm_param_space()) {
        TemplateParams p;
        p.norm = np;
        space.push_back(p);
      }
      break;
    }
    case TemplateKind::kSingleOp: {
      // The live fields depend on the operator; expose a mixed space.
      for (const auto& gp : ops::gemm_param_space()) {
        if (gp.block_k != 32 || gp.num_stages != 3) continue;  // thinned
        TemplateParams p;
        p.gemm = gp;
        space.push_back(p);
      }
      for (const auto& ep : ops::elementwise_param_space()) {
        TemplateParams p;
        p.ew = ep;
        space.push_back(p);
      }
      for (const auto& np : ops::norm_param_space()) {
        TemplateParams p;
        p.norm = np;
        space.push_back(p);
      }
      break;
    }
    case TemplateKind::kUnifiedMha:
      // MHA parameters are owned by the unified MHA module's analytical
      // selector, not the downstream tuner.
      space.push_back(TemplateParams{});
      break;
  }
  STOF_ENSURES(!space.empty());
  return space;
}

namespace {

constexpr double kElem = 2.0;  // FP16 bytes

double node_bytes(const graph::Node& n) {
  return static_cast<double>(n.rows) * static_cast<double>(n.cols) * kElem;
}

// Approximate scalar work of one MI operator, per element.
double mi_flops_per_element(graph::OpKind kind) {
  switch (kind) {
    case graph::OpKind::kBias: return 1.0;
    case graph::OpKind::kResidualAdd: return 1.0;
    case graph::OpKind::kRelu: return 1.0;
    case graph::OpKind::kGelu: return 10.0;
    case graph::OpKind::kMaskApply: return 1.0;
    case graph::OpKind::kSoftmax: return 5.0;
    case graph::OpKind::kLayerNorm: return 8.0;
    default: return 0.0;
  }
}

bool is_row_reduction(graph::OpKind kind) {
  return kind == graph::OpKind::kLayerNorm ||
         kind == graph::OpKind::kSoftmax;
}

}  // namespace

gpusim::KernelCost single_op_cost(const graph::Node& node,
                                  const TemplateParams& params,
                                  const gpusim::DeviceSpec& dev) {
  using graph::OpKind;
  switch (node.kind) {
    case OpKind::kInput: {
      gpusim::KernelCost zero;
      zero.launches = 0;
      return zero;
    }
    case OpKind::kQkvProj:
    case OpKind::kScoreGemm:
    case OpKind::kPvGemm:
    case OpKind::kOutProj:
    case OpKind::kFfnGemm:
      return ops::gemm_cost({1, node.rows, node.cols, node.inner},
                            params.gemm, dev);
    case OpKind::kLayerNorm:
      return ops::layernorm_cost(node.rows, node.cols, params.norm, dev);
    case OpKind::kSoftmax:
      return ops::softmax_cost(node.rows, node.cols, /*with_mask=*/false,
                               params.norm, dev);
    case OpKind::kMaskApply: {
      const double bytes = node_bytes(node);
      // Scores + dense mask in, scores out.
      return ops::elementwise_cost(node.rows * node.cols, 1.0, 2.0 * bytes,
                                   bytes, params.ew, dev);
    }
    case OpKind::kBias:
    case OpKind::kGelu:
    case OpKind::kRelu: {
      const double bytes = node_bytes(node);
      return ops::elementwise_cost(node.rows * node.cols,
                                   mi_flops_per_element(node.kind), bytes,
                                   bytes, params.ew, dev);
    }
    case OpKind::kResidualAdd: {
      const double bytes = node_bytes(node);
      return ops::elementwise_cost(node.rows * node.cols, 1.0, 2.0 * bytes,
                                   bytes, params.ew, dev);
    }
    case OpKind::kFusedMha:
    case OpKind::kFusedSegment:
      STOF_CHECK(false, "fused nodes are costed by the executor");
  }
  STOF_CHECK(false, "unreachable");
}

gpusim::KernelCost segment_cost(const graph::Graph& g, const Segment& seg,
                                TemplateKind kind,
                                const TemplateParams& params,
                                const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(kind != TemplateKind::kUnifiedMha,
               "MHA segments are costed via UnifiedMha");
  if (kind == TemplateKind::kSingleOp) {
    return single_op_cost(g.node(seg.begin), params, dev);
  }

  // Gather segment composition.
  std::vector<const graph::Node*> ci_nodes;
  double mi_flops = 0;
  double extra_reads = 0;  // residual skip operands, dense mask streams
  bool has_reduction = false;
  for (std::int64_t i = seg.begin; i < seg.end; ++i) {
    const auto& n = g.node(i);
    if (graph::is_compute_intensive(n.kind)) {
      ci_nodes.push_back(&n);
      continue;
    }
    mi_flops += mi_flops_per_element(n.kind) * static_cast<double>(n.rows) *
                static_cast<double>(n.cols);
    has_reduction = has_reduction || is_row_reduction(n.kind);
    if (n.kind == graph::OpKind::kResidualAdd ||
        n.kind == graph::OpKind::kMaskApply) {
      extra_reads += node_bytes(n);  // second operand streamed from HBM
    }
  }

  if (kind == TemplateKind::kMiChain) {
    STOF_EXPECTS(ci_nodes.empty());
    const auto& first = g.node(seg.begin);
    const auto& last = g.node(seg.end - 1);
    gpusim::KernelCost c;
    if (has_reduction) {
      c = ops::layernorm_cost(first.rows, std::max(first.cols, last.cols),
                              params.norm, dev);
      c.cuda_flops = mi_flops;
    } else {
      c = ops::elementwise_cost(
          first.rows * first.cols, 1.0, node_bytes(first), node_bytes(last),
          params.ew, dev);
      c.cuda_flops = mi_flops;
    }
    c.gmem_read_bytes += extra_reads;
    return c;
  }

  if (kind == TemplateKind::kGemmEpilogue) {
    STOF_EXPECTS(ci_nodes.size() == 1);
    const auto& gm = *ci_nodes.front();
    gpusim::KernelCost c;
    if (has_reduction) {
      // LayerNorm/Softmax epilogues pin a whole output row per block.
      c = ops::fused_gemm_layernorm_cost({1, gm.rows, gm.cols, gm.inner},
                                         params.gemm, dev);
    } else {
      c = ops::gemm_cost({1, gm.rows, gm.cols, gm.inner}, params.gemm, dev);
    }
    c.cuda_flops += mi_flops;  // bias/activation lanes ride the epilogue
    c.gmem_read_bytes += extra_reads;
    return c;
  }

  STOF_EXPECTS(kind == TemplateKind::kGemmChain && ci_nodes.size() == 2);
  const auto& g1 = *ci_nodes[0];
  const auto& g2 = *ci_nodes[1];
  STOF_EXPECTS(g2.inner == g1.cols && g2.rows == g1.rows,
               "chained GEMMs must be dimension compatible");
  gpusim::KernelCost c = ops::fused_gemm_gemm_cost(
      {1, g1.rows, g1.inner, g1.cols, g2.cols}, params.gemm, dev);
  c.cuda_flops += mi_flops;
  c.gmem_read_bytes += extra_reads;
  if (has_reduction) {
    // A reduction inside the chain serializes the pipeline stages.
    c.overlap = std::min(c.overlap, 0.5);
  }
  return c;
}

}  // namespace stof::fusion
