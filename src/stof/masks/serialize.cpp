#include "stof/masks/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <vector>

#include "stof/core/checksum.hpp"

namespace stof::masks {
namespace {

constexpr char kMagic[4] = {'S', 'T', 'O', 'F'};
// v2 appends a trailing FNV-1a checksum over seq_len + payload so bit flips
// and truncation error on load instead of silently deserializing.
constexpr std::uint32_t kVersion = 2;

std::uint64_t payload_checksum(std::uint64_t n,
                               const std::vector<unsigned char>& packed) {
  std::array<unsigned char, 8> nb;
  for (int i = 0; i < 8; ++i) {
    nb[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((n >> (8 * i)) & 0xff);
  }
  return fnv1a64(packed.data(), packed.size(), fnv1a64(nb.data(), nb.size()));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  std::array<unsigned char, 8> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
  os.write(reinterpret_cast<const char*>(bytes.data()), 8);
}

std::uint64_t read_u64(std::istream& is) {
  std::array<unsigned char, 8> bytes;
  is.read(reinterpret_cast<char*>(bytes.data()), 8);
  STOF_CHECK(is.good(), "truncated mask stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

void save_mask(const Mask& mask, std::ostream& os) {
  os.write(kMagic, 4);
  write_u64(os, kVersion);
  const std::int64_t n = mask.seq_len();
  write_u64(os, static_cast<std::uint64_t>(n));

  // Bit-pack row major, 8 elements per byte, little bit first.
  std::vector<unsigned char> packed(
      static_cast<std::size_t>((n * n + 7) / 8), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (!mask.at(i, j)) continue;
      const std::int64_t bit = i * n + j;
      packed[static_cast<std::size_t>(bit / 8)] |=
          static_cast<unsigned char>(1u << (bit % 8));
    }
  }
  write_u64(os, static_cast<std::uint64_t>(packed.size()));
  os.write(reinterpret_cast<const char*>(packed.data()),
           static_cast<std::streamsize>(packed.size()));
  write_u64(os, payload_checksum(static_cast<std::uint64_t>(n), packed));
  STOF_CHECK(os.good(), "failed to write mask stream");
}

Mask load_mask(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  STOF_CHECK(is.good() && std::memcmp(magic, kMagic, 4) == 0,
             "not a STOF mask stream");
  const std::uint64_t version = read_u64(is);
  STOF_CHECK(version == kVersion, "unsupported mask format version");
  const std::uint64_t n64 = read_u64(is);
  STOF_CHECK(n64 > 0 && n64 <= (1u << 20), "implausible mask size");
  const std::int64_t n = static_cast<std::int64_t>(n64);
  const std::uint64_t payload = read_u64(is);
  const std::uint64_t expected = static_cast<std::uint64_t>((n * n + 7) / 8);
  STOF_CHECK(payload == expected, "mask payload size mismatch");

  std::vector<unsigned char> packed(static_cast<std::size_t>(payload));
  is.read(reinterpret_cast<char*>(packed.data()),
          static_cast<std::streamsize>(packed.size()));
  STOF_CHECK(is.good(), "truncated mask payload");
  const std::uint64_t stored = read_u64(is);
  STOF_CHECK(stored == payload_checksum(n64, packed),
             "mask checksum mismatch (corrupted stream)");

  Mask mask(n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t bit = i * n + j;
      if (packed[static_cast<std::size_t>(bit / 8)] &
          (1u << (bit % 8))) {
        mask.set(i, j);
      }
    }
  }
  return mask;
}

void save_mask_file(const Mask& mask, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  STOF_CHECK(os.is_open(), "cannot open " + path + " for writing");
  save_mask(mask, os);
}

Mask load_mask_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  STOF_CHECK(is.is_open(), "cannot open " + path);
  return load_mask(is);
}

}  // namespace stof::masks
