// Binary serialization of attention masks.
//
// Long-sequence masks are expensive to rebuild (BigBird at 4096 tokens is a
// 16M-element draw); pipelines that tune offline and deploy later persist
// the exact mask instead.  The format is a small versioned header plus the
// bit-packed matrix (8 elements/byte), independent of host endianness for
// the packed payload.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "stof/masks/mask.hpp"

namespace stof::masks {

/// Write `mask` to `os` in the STOF binary mask format (throws on I/O
/// failure).
void save_mask(const Mask& mask, std::ostream& os);

/// Read a mask previously written by save_mask (throws stof::Error on a
/// malformed or truncated stream).
Mask load_mask(std::istream& is);

/// File-path conveniences.
void save_mask_file(const Mask& mask, const std::string& path);
Mask load_mask_file(const std::string& path);

}  // namespace stof::masks
