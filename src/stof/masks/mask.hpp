// Attention mask patterns.
//
// A Mask is a dense seq_len x seq_len boolean matrix: entry (i, j) is true
// when query token i may attend to key token j.  This module generates the
// atomic patterns of the paper's Fig. 1 (global, dilated, sliding window,
// random) and the compound patterns built from them (causal, Longformer =
// global | sliding window, BigBird = global | sliding window | random), and
// computes the distribution statistics reported in Table 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/core/rng.hpp"

namespace stof::masks {

/// Dense boolean attention mask (true = attend / valid element).
class Mask {
 public:
  Mask() = default;
  explicit Mask(std::int64_t seq_len, bool value = false)
      : seq_len_(seq_len),
        bits_(static_cast<std::size_t>(seq_len * seq_len), value ? 1 : 0) {
    STOF_EXPECTS(seq_len > 0);
  }

  [[nodiscard]] std::int64_t seq_len() const { return seq_len_; }

  [[nodiscard]] bool at(std::int64_t i, std::int64_t j) const {
    return bits_[flat(i, j)] != 0;
  }
  void set(std::int64_t i, std::int64_t j, bool v = true) {
    bits_[flat(i, j)] = v ? 1 : 0;
  }

  /// Number of valid (attendable) elements.
  [[nodiscard]] std::int64_t valid_count() const {
    std::int64_t n = 0;
    for (auto b : bits_) n += b;
    return n;
  }

  /// Fraction of *masked-out* elements, as reported in Table 2.
  [[nodiscard]] double sparsity() const {
    return 1.0 - static_cast<double>(valid_count()) /
                     static_cast<double>(seq_len_ * seq_len_);
  }

  /// Elementwise OR — compound patterns are unions of atomic patterns.
  [[nodiscard]] Mask operator|(const Mask& o) const {
    STOF_EXPECTS(seq_len_ == o.seq_len_, "mask size mismatch");
    Mask out(seq_len_);
    for (std::size_t k = 0; k < bits_.size(); ++k)
      out.bits_[k] = bits_[k] | o.bits_[k];
    return out;
  }

  /// Elementwise AND (e.g., restricting a pattern to the causal triangle).
  [[nodiscard]] Mask operator&(const Mask& o) const {
    STOF_EXPECTS(seq_len_ == o.seq_len_, "mask size mismatch");
    Mask out(seq_len_);
    for (std::size_t k = 0; k < bits_.size(); ++k)
      out.bits_[k] = bits_[k] & o.bits_[k];
    return out;
  }

  friend bool operator==(const Mask& a, const Mask& b) {
    return a.seq_len_ == b.seq_len_ && a.bits_ == b.bits_;
  }

 private:
  [[nodiscard]] std::size_t flat(std::int64_t i, std::int64_t j) const {
    STOF_EXPECTS(i >= 0 && i < seq_len_ && j >= 0 && j < seq_len_);
    return static_cast<std::size_t>(i * seq_len_ + j);
  }

  std::int64_t seq_len_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// Pattern families, used by baselines to decide native support
/// (e.g., FlashAttention2 handles Causal and SlidingWindow only).
enum class PatternKind {
  kDense,
  kCausal,
  kSlidingWindow,
  kDilated,
  kGlobal,
  kRandom,
  kLongformer,
  kBigBird,
  kStrided,  ///< Sparse Transformer (Child et al.): causal local + stride
  kCustom,
};

[[nodiscard]] std::string to_string(PatternKind kind);

/// Declarative description of a mask; `build()` materializes it.
///
/// Parameter defaults follow the paper (band width = global width =
/// sqrt(seq_len), dilation rate 1, random filling rate 10%).
struct MaskSpec {
  PatternKind kind = PatternKind::kDense;
  std::int64_t seq_len = 0;
  std::int64_t band_width = 0;    ///< 0 = sqrt(seq_len)
  std::int64_t global_width = 0;  ///< 0 = sqrt(seq_len)
  std::int64_t dilation_rate = 1;
  double filling_rate = 0.10;     ///< random pattern block fill probability
  std::int64_t random_block = 0;  ///< 0 = sqrt(seq_len)
  std::int64_t stride = 0;        ///< strided pattern stride; 0 = sqrt(seq)
  std::uint64_t seed = 42;

  [[nodiscard]] Mask build() const;

  /// True when the pattern is deterministic given its parameters
  /// (Table 2 "Sparsity Type": Structured vs Unstructured).
  [[nodiscard]] bool structured() const {
    return kind != PatternKind::kRandom && kind != PatternKind::kBigBird &&
           kind != PatternKind::kCustom;
  }
};

// ---- Atomic patterns (paper Fig. 1 (a)-(d)) -------------------------------

/// All elements valid (dense attention).
Mask dense(std::int64_t seq_len);

/// Lower-triangular causal mask: j <= i.
Mask causal(std::int64_t seq_len);

/// Banded mask: |i - j| < band_width.
Mask sliding_window(std::int64_t seq_len, std::int64_t band_width);

/// Hole-punched band: |i - j| < band_width * (rate + 1) and
/// (i - j) divisible by (rate + 1).
Mask dilated(std::int64_t seq_len, std::int64_t band_width,
             std::int64_t dilation_rate);

/// Global hub rows and columns: i < width or j < width.
Mask global(std::int64_t seq_len, std::int64_t width);

/// Random block fill: the matrix is tiled with block x block tiles and each
/// tile is made valid with probability filling_rate.
Mask random_blocks(std::int64_t seq_len, std::int64_t block,
                   double filling_rate, std::uint64_t seed);

// ---- Compound patterns (paper Fig. 1 (e)-(f)) -----------------------------

/// Longformer = global | sliding window.
Mask longformer(std::int64_t seq_len, std::int64_t global_width,
                std::int64_t band_width);

/// BigBird = global | sliding window | random blocks.
Mask bigbird(std::int64_t seq_len, std::int64_t global_width,
             std::int64_t band_width, double filling_rate,
             std::int64_t random_block, std::uint64_t seed);

/// Sparse Transformer (Child et al., the paper's ref [11]): causal local
/// attention over the previous `stride` tokens plus a causal strided
/// component attending to every position j with (i - j) % stride == 0.
Mask strided(std::int64_t seq_len, std::int64_t stride);

// ---- Table 2 statistics ----------------------------------------------------

enum class Distribution { kContinuous, kDiscrete, kEmpty };

[[nodiscard]] std::string to_string(Distribution d);

struct MaskStats {
  double sparsity = 0;
  Distribution row_distribution = Distribution::kEmpty;
  Distribution col_distribution = Distribution::kEmpty;
};

/// Row/column contiguity analysis: a distribution is Continuous when the
/// valid elements of every non-empty row (resp. column) form one
/// contiguous run, Discrete otherwise.
MaskStats analyze(const Mask& mask);

}  // namespace stof::masks
