#include "stof/masks/mask.hpp"

#include <cmath>

namespace stof::masks {
namespace {

std::int64_t default_width(std::int64_t seq_len, std::int64_t requested) {
  if (requested > 0) return requested;
  // Paper Table 2: band/global widths default to sqrt(seq_len).
  return static_cast<std::int64_t>(
      std::llround(std::sqrt(static_cast<double>(seq_len))));
}

}  // namespace

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kDense: return "dense";
    case PatternKind::kCausal: return "causal";
    case PatternKind::kSlidingWindow: return "sliding_window";
    case PatternKind::kDilated: return "dilated";
    case PatternKind::kGlobal: return "global";
    case PatternKind::kRandom: return "random";
    case PatternKind::kLongformer: return "longformer";
    case PatternKind::kBigBird: return "bigbird";
    case PatternKind::kStrided: return "strided";
    case PatternKind::kCustom: return "custom";
  }
  return "unknown";
}

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kContinuous: return "Continuous";
    case Distribution::kDiscrete: return "Discrete";
    case Distribution::kEmpty: return "Empty";
  }
  return "unknown";
}

Mask dense(std::int64_t seq_len) { return Mask(seq_len, true); }

Mask causal(std::int64_t seq_len) {
  Mask m(seq_len);
  for (std::int64_t i = 0; i < seq_len; ++i)
    for (std::int64_t j = 0; j <= i; ++j) m.set(i, j);
  return m;
}

Mask sliding_window(std::int64_t seq_len, std::int64_t band_width) {
  STOF_EXPECTS(band_width > 0);
  Mask m(seq_len);
  for (std::int64_t i = 0; i < seq_len; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - band_width + 1);
    const std::int64_t hi = std::min(seq_len - 1, i + band_width - 1);
    for (std::int64_t j = lo; j <= hi; ++j) m.set(i, j);
  }
  return m;
}

Mask dilated(std::int64_t seq_len, std::int64_t band_width,
             std::int64_t dilation_rate) {
  STOF_EXPECTS(band_width > 0);
  STOF_EXPECTS(dilation_rate >= 0);
  Mask m(seq_len);
  const std::int64_t stride = dilation_rate + 1;
  const std::int64_t reach = band_width * stride;
  for (std::int64_t i = 0; i < seq_len; ++i) {
    for (std::int64_t off = -(reach - 1); off < reach; ++off) {
      if (off % stride != 0) continue;  // punched holes
      const std::int64_t j = i + off;
      if (j >= 0 && j < seq_len) m.set(i, j);
    }
  }
  return m;
}

Mask global(std::int64_t seq_len, std::int64_t width) {
  STOF_EXPECTS(width > 0);
  Mask m(seq_len);
  for (std::int64_t i = 0; i < seq_len; ++i)
    for (std::int64_t j = 0; j < seq_len; ++j)
      if (i < width || j < width) m.set(i, j);
  return m;
}

Mask random_blocks(std::int64_t seq_len, std::int64_t block,
                   double filling_rate, std::uint64_t seed) {
  STOF_EXPECTS(block > 0);
  STOF_EXPECTS(filling_rate >= 0 && filling_rate <= 1.0);
  Mask m(seq_len);
  Rng rng(seed);
  const std::int64_t nb = (seq_len + block - 1) / block;
  for (std::int64_t bi = 0; bi < nb; ++bi) {
    for (std::int64_t bj = 0; bj < nb; ++bj) {
      if (!rng.bernoulli(filling_rate)) continue;
      const std::int64_t i_hi = std::min(seq_len, (bi + 1) * block);
      const std::int64_t j_hi = std::min(seq_len, (bj + 1) * block);
      for (std::int64_t i = bi * block; i < i_hi; ++i)
        for (std::int64_t j = bj * block; j < j_hi; ++j) m.set(i, j);
    }
  }
  return m;
}

Mask longformer(std::int64_t seq_len, std::int64_t global_width,
                std::int64_t band_width) {
  return global(seq_len, global_width) | sliding_window(seq_len, band_width);
}

Mask bigbird(std::int64_t seq_len, std::int64_t global_width,
             std::int64_t band_width, double filling_rate,
             std::int64_t random_block, std::uint64_t seed) {
  return longformer(seq_len, global_width, band_width) |
         random_blocks(seq_len, random_block, filling_rate, seed);
}

Mask strided(std::int64_t seq_len, std::int64_t stride) {
  STOF_EXPECTS(stride > 0);
  Mask m(seq_len);
  for (std::int64_t i = 0; i < seq_len; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      if (i - j < stride || (i - j) % stride == 0) m.set(i, j);
    }
  }
  return m;
}

Mask MaskSpec::build() const {
  STOF_EXPECTS(seq_len > 0, "MaskSpec.seq_len not set");
  const std::int64_t band = default_width(seq_len, band_width);
  const std::int64_t glob = default_width(seq_len, global_width);
  const std::int64_t rblk = default_width(seq_len, random_block);
  switch (kind) {
    case PatternKind::kDense: return dense(seq_len);
    case PatternKind::kCausal: return causal(seq_len);
    case PatternKind::kSlidingWindow: return sliding_window(seq_len, band);
    case PatternKind::kDilated: return dilated(seq_len, band, dilation_rate);
    case PatternKind::kGlobal: return global(seq_len, glob);
    case PatternKind::kRandom:
      return random_blocks(seq_len, rblk, filling_rate, seed);
    case PatternKind::kLongformer: return longformer(seq_len, glob, band);
    case PatternKind::kBigBird:
      return bigbird(seq_len, glob, band, filling_rate, rblk, seed);
    case PatternKind::kStrided:
      return strided(seq_len, default_width(seq_len, stride));
    case PatternKind::kCustom:
      STOF_CHECK(false, "custom masks are built directly, not via MaskSpec");
  }
  STOF_CHECK(false, "unreachable");
}

namespace {

// Contiguity of the valid elements along one axis.
Distribution line_distribution(const Mask& m, bool rows) {
  const std::int64_t n = m.seq_len();
  bool any = false;
  for (std::int64_t a = 0; a < n; ++a) {
    std::int64_t first = -1;
    std::int64_t last = -1;
    std::int64_t count = 0;
    for (std::int64_t b = 0; b < n; ++b) {
      const bool v = rows ? m.at(a, b) : m.at(b, a);
      if (!v) continue;
      if (first < 0) first = b;
      last = b;
      ++count;
    }
    if (count == 0) continue;
    any = true;
    if (last - first + 1 != count) return Distribution::kDiscrete;
  }
  return any ? Distribution::kContinuous : Distribution::kEmpty;
}

}  // namespace

MaskStats analyze(const Mask& mask) {
  MaskStats s;
  s.sparsity = mask.sparsity();
  s.row_distribution = line_distribution(mask, /*rows=*/true);
  s.col_distribution = line_distribution(mask, /*rows=*/false);
  return s;
}

}  // namespace stof::masks
