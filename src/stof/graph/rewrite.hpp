// Graph rewriting (paper §4.3): "the captured adjacent nodes are replaced
// with fused nodes to complete the graph rewriting".
//
// Given a source graph and a fusion scheme, produce the rewritten graph in
// which every multi-operator segment collapses into a single fused node —
// kFusedMha for complete MHA sub-graphs, kFusedSegment otherwise — with
// skip edges re-targeted through the old-to-new node mapping.  The
// rewritten graph is what a compiler backend would lower template-by-
// template; in this reproduction it is used for inspection and to check
// launch counts structurally.
#pragma once

#include <vector>

#include "stof/fusion/scheme.hpp"
#include "stof/graph/graph.hpp"

namespace stof::graph {

struct RewriteResult {
  Graph graph;                          ///< the rewritten graph
  std::vector<std::int64_t> node_of_op; ///< source op id -> rewritten node id
};

/// Rewrite `g` under `scheme`. The scheme must tile the graph
/// (scheme.n_ops() == g.size()); it does not need to satisfy STOF's search
/// constraints — any segmentation can be rewritten.
RewriteResult rewrite(const Graph& g, const fusion::FusionScheme& scheme);

}  // namespace stof::graph
