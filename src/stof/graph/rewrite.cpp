#include "stof/graph/rewrite.hpp"

namespace stof::graph {

RewriteResult rewrite(const Graph& g, const fusion::FusionScheme& scheme) {
  STOF_EXPECTS(scheme.n_ops() == static_cast<std::int64_t>(g.size()),
               "scheme must cover the graph");
  RewriteResult out;
  out.node_of_op.assign(g.size(), -1);

  const auto mha = Graph::mha_pattern();
  for (const auto& seg : scheme.segments()) {
    if (seg.size() == 1) {
      // Unfused: copy the node, re-targeting its skip edge.
      Node n = g.node(seg.begin);
      n.id = -1;
      if (n.skip_from >= 0) {
        n.skip_from = out.node_of_op[static_cast<std::size_t>(n.skip_from)];
        STOF_CHECK(n.skip_from >= 0, "skip edge into an unvisited node");
      }
      out.node_of_op[static_cast<std::size_t>(seg.begin)] =
          out.graph.add(std::move(n));
      continue;
    }

    // Fused segment: one replacement node spanning the segment.
    bool is_mha = seg.size() == static_cast<std::int64_t>(mha.size());
    if (is_mha) {
      for (std::size_t j = 0; j < mha.size(); ++j) {
        if (g.node(seg.begin + static_cast<std::int64_t>(j)).kind != mha[j]) {
          is_mha = false;
          break;
        }
      }
    }

    Node fused;
    fused.kind = is_mha ? OpKind::kFusedMha : OpKind::kFusedSegment;
    fused.label = is_mha ? "fused_mha" : "fused";
    std::int64_t skip_from_op = -1;
    for (std::int64_t i = seg.begin; i < seg.end; ++i) {
      const auto& n = g.node(i);
      if (!fused.label.empty() && !is_mha) fused.label += '+';
      if (!is_mha) fused.label += n.label.empty() ? to_string(n.kind) : n.label;
      // The fused node takes the widest member's logical dims.
      if (n.rows * n.cols > fused.rows * fused.cols) {
        fused.rows = n.rows;
        fused.cols = n.cols;
      }
      fused.inner = std::max(fused.inner, n.inner);
      if (n.skip_from >= 0 && n.skip_from < seg.begin) {
        // External residual operand becomes an input of the fused node.
        STOF_CHECK(skip_from_op < 0,
                   "at most one external skip operand per segment");
        skip_from_op = n.skip_from;
      }
    }
    if (skip_from_op >= 0) {
      fused.skip_from =
          out.node_of_op[static_cast<std::size_t>(skip_from_op)];
      STOF_CHECK(fused.skip_from >= 0, "skip edge into an unvisited node");
      // A fused node with an external operand must behave like an Add for
      // validation purposes; keep kFusedSegment but the edge is recorded.
    }
    const std::int64_t id = out.graph.add(std::move(fused));
    for (std::int64_t i = seg.begin; i < seg.end; ++i) {
      out.node_of_op[static_cast<std::size_t>(i)] = id;
    }
  }
  return out;
}

}  // namespace stof::graph
