// Operator-graph nodes.
//
// STOF captures the model's forward pass as a sequence of coarse-grained
// native operators (the torch.fx capture of the paper's Fig. 8).  A
// transformer block linearizes naturally: residual edges are carried as a
// `skip_from` reference on the Add node, so fusion schemes can be encoded
// as arrays over the linear operator order exactly as in §4.3.
#pragma once

#include <cstdint>
#include <string>

namespace stof::graph {

enum class OpKind {
  kInput,         // graph input placeholder
  kQkvProj,       // fused Q/K/V projection GEMM: (rows, h) -> (rows, 3h)
  kScoreGemm,     // Q K^T (start of the MHA sub-graph)
  kMaskApply,     // sparse mask on the score matrix
  kSoftmax,       // row softmax of scores
  kPvGemm,        // P V (end of the MHA sub-graph)
  kOutProj,       // attention output projection GEMM
  kFfnGemm,       // feed-forward GEMM
  kBias,          // bias add
  kGelu,          // GELU activation
  kRelu,          // ReLU activation
  kResidualAdd,   // x + skip
  kLayerNorm,     // layer normalization
  kFusedMha,      // rewrite product: unified MHA kernel
  kFusedSegment,  // rewrite product: fused downstream segment
};

[[nodiscard]] std::string to_string(OpKind kind);

/// True for compute-intensive (CI) operators; everything else is
/// memory-intensive (MI) in the paper's classification.
[[nodiscard]] constexpr bool is_compute_intensive(OpKind kind) {
  switch (kind) {
    case OpKind::kQkvProj:
    case OpKind::kScoreGemm:
    case OpKind::kPvGemm:
    case OpKind::kOutProj:
    case OpKind::kFfnGemm:
      return true;
    default:
      return false;
  }
}

/// True for the four operators forming the MHA sub-graph ([#2-#6] in the
/// paper's numbering) that the unified MHA module fuses.
[[nodiscard]] constexpr bool is_mha_op(OpKind kind) {
  return kind == OpKind::kScoreGemm || kind == OpKind::kMaskApply ||
         kind == OpKind::kSoftmax || kind == OpKind::kPvGemm;
}

/// One operator in the linearized graph.
struct Node {
  std::int64_t id = -1;
  OpKind kind = OpKind::kInput;
  std::string label;

  // Logical tensor dimensions: elementwise/normalization ops use
  // (rows x cols); GEMM-like ops compute (rows x inner) * (inner x cols).
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t inner = 0;  ///< contraction dim; 0 for non-GEMM ops

  /// For kResidualAdd: id of the node whose output is the skip operand
  /// (-1 otherwise).
  std::int64_t skip_from = -1;
};

}  // namespace stof::graph
