// Transformer layer/graph builders (the torch.fx capture stand-in).
//
// Encoder layers follow BERT's post-LayerNorm block, decoder layers GPT-2's
// pre-LayerNorm block, and T5 contributes bias-free blocks with ReLU FFNs
// plus decoder cross-attention.  All builders emit the linear operator
// order the fusion scheme encoding of §4.3 operates on.
#pragma once

#include <cstdint>

#include "stof/graph/graph.hpp"

namespace stof::graph {

/// Dimensions shared by every operator of one transformer layer.
struct LayerConfig {
  std::int64_t batch = 1;
  std::int64_t seq_len = 128;
  std::int64_t hidden = 768;
  std::int64_t heads = 12;
  std::int64_t ffn_dim = 3072;
  OpKind activation = OpKind::kGelu;  ///< kGelu (BERT/GPT) or kRelu (T5)
  bool use_bias = true;               ///< T5 layers are bias-free

  [[nodiscard]] std::int64_t head_size() const { return hidden / heads; }
  [[nodiscard]] std::int64_t rows() const { return batch * seq_len; }
  [[nodiscard]] std::int64_t attn_rows() const {
    return batch * heads * seq_len;
  }

  void validate() const {
    STOF_EXPECTS(batch > 0 && seq_len > 0 && hidden > 0 && heads > 0 &&
                 ffn_dim > 0);
    STOF_EXPECTS(hidden % heads == 0, "hidden must divide into heads");
    STOF_EXPECTS(activation == OpKind::kGelu || activation == OpKind::kRelu);
  }
};

/// Append one BERT-style (post-LN) encoder layer; returns the output id.
std::int64_t append_encoder_layer(Graph& g, const LayerConfig& cfg,
                                  std::int64_t input_id);

/// Append one GPT-style (pre-LN) decoder layer; returns the output id.
std::int64_t append_decoder_layer(Graph& g, const LayerConfig& cfg,
                                  std::int64_t input_id);

/// Append one T5 decoder layer (self-attention + cross-attention + FFN).
std::int64_t append_cross_decoder_layer(Graph& g, const LayerConfig& cfg,
                                        std::int64_t input_id);

/// Build a complete stack of `layers` encoder/decoder layers over one input.
Graph build_encoder_graph(const LayerConfig& cfg, int layers);
Graph build_decoder_graph(const LayerConfig& cfg, int layers);
/// T5-style: `enc_layers` encoders followed by `dec_layers` cross-decoders.
Graph build_encdec_graph(const LayerConfig& cfg, int enc_layers,
                         int dec_layers);
/// Decoder-side-only T5 stack (cross-attention layers over one input) —
/// the shape the serving runtime executes, where the encoder ran offline.
Graph build_cross_decoder_graph(const LayerConfig& cfg, int layers);

}  // namespace stof::graph
