#include "stof/graph/graph.hpp"

namespace stof::graph {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kQkvProj: return "qkv_proj";
    case OpKind::kScoreGemm: return "score_gemm";
    case OpKind::kMaskApply: return "mask_apply";
    case OpKind::kSoftmax: return "softmax";
    case OpKind::kPvGemm: return "pv_gemm";
    case OpKind::kOutProj: return "out_proj";
    case OpKind::kFfnGemm: return "ffn_gemm";
    case OpKind::kBias: return "bias";
    case OpKind::kGelu: return "gelu";
    case OpKind::kRelu: return "relu";
    case OpKind::kResidualAdd: return "residual_add";
    case OpKind::kLayerNorm: return "layernorm";
    case OpKind::kFusedMha: return "fused_mha";
    case OpKind::kFusedSegment: return "fused_segment";
  }
  return "unknown";
}

void Graph::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    STOF_CHECK(n.id == static_cast<std::int64_t>(i), "ids must be sequential");
    STOF_CHECK(n.rows >= 0 && n.cols >= 0 && n.inner >= 0);
    if (n.kind == OpKind::kResidualAdd) {
      STOF_CHECK(n.skip_from >= 0 && n.skip_from < n.id,
                 "residual add needs a backward skip edge");
    }
    if (is_compute_intensive(n.kind)) {
      STOF_CHECK(n.inner > 0, "CI operators need a contraction dimension");
    }
  }
  // Every MHA operator must be part of a complete, ordered MHA run.
  const auto pattern = mha_pattern();
  const auto hits = find_pattern(pattern);
  const std::int64_t covered =
      static_cast<std::int64_t>(hits.size() * pattern.size());
  std::int64_t mha_ops = 0;
  for (const auto& n : nodes_) mha_ops += is_mha_op(n.kind) ? 1 : 0;
  STOF_CHECK(mha_ops == covered,
             "dangling MHA operator outside a complete sub-graph");
}

}  // namespace stof::graph
