// Linearized operator graph with validation and sub-sequence matching.
#pragma once

#include <span>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/graph/node.hpp"

namespace stof::graph {

/// Ordered operator graph (topological by construction).
class Graph {
 public:
  /// Append a node; returns its id.
  std::int64_t add(Node node) {
    node.id = static_cast<std::int64_t>(nodes_.size());
    if (node.skip_from >= 0) {
      STOF_EXPECTS(node.skip_from < node.id,
                   "skip edges must point backwards");
    }
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(std::int64_t id) const {
    STOF_EXPECTS(id >= 0 && id < static_cast<std::int64_t>(nodes_.size()));
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Count of compute-intensive operators.
  [[nodiscard]] std::int64_t ci_count() const {
    std::int64_t n = 0;
    for (const auto& nd : nodes_) n += is_compute_intensive(nd.kind) ? 1 : 0;
    return n;
  }

  /// All start indices where `pattern` appears as a contiguous run.
  [[nodiscard]] std::vector<std::int64_t> find_pattern(
      std::span<const OpKind> pattern) const {
    std::vector<std::int64_t> hits;
    if (pattern.empty() || pattern.size() > nodes_.size()) return hits;
    for (std::size_t i = 0; i + pattern.size() <= nodes_.size(); ++i) {
      bool ok = true;
      for (std::size_t j = 0; j < pattern.size(); ++j) {
        if (nodes_[i + j].kind != pattern[j]) {
          ok = false;
          break;
        }
      }
      if (ok) hits.push_back(static_cast<std::int64_t>(i));
    }
    return hits;
  }

  /// The MHA sub-graph pattern ([ScoreGemm, MaskApply, Softmax, PvGemm]).
  [[nodiscard]] static std::vector<OpKind> mha_pattern() {
    return {OpKind::kScoreGemm, OpKind::kMaskApply, OpKind::kSoftmax,
            OpKind::kPvGemm};
  }

  /// Structural validation: ids sequential, skips backwards, MHA sub-graphs
  /// complete (no dangling MaskApply/Softmax outside an MHA run).
  void validate() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace stof::graph
