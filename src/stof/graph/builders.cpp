#include "stof/graph/builders.hpp"

namespace stof::graph {
namespace {

// Small helpers appending one operator with the layer's dimensions.

std::int64_t add_gemm(Graph& g, OpKind kind, const LayerConfig& cfg,
                      std::int64_t rows, std::int64_t cols,
                      std::int64_t inner, const char* label) {
  (void)cfg;
  Node n;
  n.kind = kind;
  n.label = label;
  n.rows = rows;
  n.cols = cols;
  n.inner = inner;
  return g.add(n);
}

std::int64_t add_ew(Graph& g, OpKind kind, std::int64_t rows,
                    std::int64_t cols, const char* label,
                    std::int64_t skip_from = -1) {
  Node n;
  n.kind = kind;
  n.label = label;
  n.rows = rows;
  n.cols = cols;
  n.skip_from = skip_from;
  return g.add(n);
}

/// Appends the four-operator MHA sub-graph; returns the PvGemm id.
std::int64_t add_mha_subgraph(Graph& g, const LayerConfig& cfg) {
  add_gemm(g, OpKind::kScoreGemm, cfg, cfg.attn_rows(), cfg.seq_len,
           cfg.head_size(), "attn.scores");
  add_ew(g, OpKind::kMaskApply, cfg.attn_rows(), cfg.seq_len, "attn.mask");
  add_ew(g, OpKind::kSoftmax, cfg.attn_rows(), cfg.seq_len, "attn.softmax");
  return add_gemm(g, OpKind::kPvGemm, cfg, cfg.attn_rows(), cfg.head_size(),
                  cfg.seq_len, "attn.context");
}

/// Attention block: QKV projection + MHA + output projection (+bias).
std::int64_t add_attention_block(Graph& g, const LayerConfig& cfg) {
  add_gemm(g, OpKind::kQkvProj, cfg, cfg.rows(), 3 * cfg.hidden, cfg.hidden,
           "attn.qkv_proj");
  if (cfg.use_bias) {
    add_ew(g, OpKind::kBias, cfg.rows(), 3 * cfg.hidden, "attn.qkv_bias");
  }
  add_mha_subgraph(g, cfg);
  std::int64_t out = add_gemm(g, OpKind::kOutProj, cfg, cfg.rows(),
                              cfg.hidden, cfg.hidden, "attn.out_proj");
  if (cfg.use_bias) {
    out = add_ew(g, OpKind::kBias, cfg.rows(), cfg.hidden, "attn.out_bias");
  }
  return out;
}

/// FFN block: up GEMM (+bias) + activation + down GEMM (+bias).
std::int64_t add_ffn_block(Graph& g, const LayerConfig& cfg) {
  add_gemm(g, OpKind::kFfnGemm, cfg, cfg.rows(), cfg.ffn_dim, cfg.hidden,
           "ffn.up");
  if (cfg.use_bias) {
    add_ew(g, OpKind::kBias, cfg.rows(), cfg.ffn_dim, "ffn.up_bias");
  }
  add_ew(g, cfg.activation, cfg.rows(), cfg.ffn_dim, "ffn.act");
  std::int64_t out = add_gemm(g, OpKind::kFfnGemm, cfg, cfg.rows(),
                              cfg.hidden, cfg.ffn_dim, "ffn.down");
  if (cfg.use_bias) {
    out = add_ew(g, OpKind::kBias, cfg.rows(), cfg.hidden, "ffn.down_bias");
  }
  return out;
}

}  // namespace

std::int64_t append_encoder_layer(Graph& g, const LayerConfig& cfg,
                                  std::int64_t input_id) {
  cfg.validate();
  // Post-LN (BERT): attn -> add&norm -> ffn -> add&norm.
  std::int64_t attn_out = add_attention_block(g, cfg);
  (void)attn_out;
  add_ew(g, OpKind::kResidualAdd, cfg.rows(), cfg.hidden, "attn.residual",
         input_id);
  const std::int64_t norm1 =
      add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "attn.norm");
  add_ffn_block(g, cfg);
  add_ew(g, OpKind::kResidualAdd, cfg.rows(), cfg.hidden, "ffn.residual",
         norm1);
  return add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "ffn.norm");
}

std::int64_t append_decoder_layer(Graph& g, const LayerConfig& cfg,
                                  std::int64_t input_id) {
  cfg.validate();
  // Pre-LN (GPT-2): norm -> attn -> add; norm -> ffn -> add.
  add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "attn.norm");
  add_attention_block(g, cfg);
  const std::int64_t add1 = add_ew(g, OpKind::kResidualAdd, cfg.rows(),
                                   cfg.hidden, "attn.residual", input_id);
  add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "ffn.norm");
  add_ffn_block(g, cfg);
  return add_ew(g, OpKind::kResidualAdd, cfg.rows(), cfg.hidden,
                "ffn.residual", add1);
}

std::int64_t append_cross_decoder_layer(Graph& g, const LayerConfig& cfg,
                                        std::int64_t input_id) {
  cfg.validate();
  // T5 decoder: self-attention, cross-attention, FFN — each pre-normed.
  add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "self.norm");
  add_attention_block(g, cfg);
  const std::int64_t add1 = add_ew(g, OpKind::kResidualAdd, cfg.rows(),
                                   cfg.hidden, "self.residual", input_id);
  add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "cross.norm");
  add_attention_block(g, cfg);
  const std::int64_t add2 = add_ew(g, OpKind::kResidualAdd, cfg.rows(),
                                   cfg.hidden, "cross.residual", add1);
  add_ew(g, OpKind::kLayerNorm, cfg.rows(), cfg.hidden, "ffn.norm");
  add_ffn_block(g, cfg);
  return add_ew(g, OpKind::kResidualAdd, cfg.rows(), cfg.hidden,
                "ffn.residual", add2);
}

namespace {

Graph start_graph(const LayerConfig& cfg) {
  Graph g;
  Node in;
  in.kind = OpKind::kInput;
  in.label = "input";
  in.rows = cfg.rows();
  in.cols = cfg.hidden;
  g.add(in);
  return g;
}

}  // namespace

Graph build_encoder_graph(const LayerConfig& cfg, int layers) {
  STOF_EXPECTS(layers > 0);
  Graph g = start_graph(cfg);
  std::int64_t cur = 0;
  for (int i = 0; i < layers; ++i) cur = append_encoder_layer(g, cfg, cur);
  g.validate();
  return g;
}

Graph build_decoder_graph(const LayerConfig& cfg, int layers) {
  STOF_EXPECTS(layers > 0);
  Graph g = start_graph(cfg);
  std::int64_t cur = 0;
  for (int i = 0; i < layers; ++i) cur = append_decoder_layer(g, cfg, cur);
  g.validate();
  return g;
}

Graph build_cross_decoder_graph(const LayerConfig& cfg, int layers) {
  STOF_EXPECTS(layers > 0);
  Graph g = start_graph(cfg);
  std::int64_t cur = 0;
  for (int i = 0; i < layers; ++i) {
    cur = append_cross_decoder_layer(g, cfg, cur);
  }
  g.validate();
  return g;
}

Graph build_encdec_graph(const LayerConfig& cfg, int enc_layers,
                         int dec_layers) {
  STOF_EXPECTS(enc_layers > 0 && dec_layers > 0);
  Graph g = start_graph(cfg);
  std::int64_t cur = 0;
  for (int i = 0; i < enc_layers; ++i) cur = append_encoder_layer(g, cfg, cur);
  for (int i = 0; i < dec_layers; ++i) {
    cur = append_cross_decoder_layer(g, cfg, cur);
  }
  g.validate();
  return g;
}

}  // namespace stof::graph
