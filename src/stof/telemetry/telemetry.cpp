#include "stof/telemetry/telemetry.hpp"

#include <atomic>

namespace stof::telemetry {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> on{false};
  return on;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

ScopedTelemetry::ScopedTelemetry(bool on) : previous_(enabled()) {
  set_enabled(on);
}

ScopedTelemetry::~ScopedTelemetry() { set_enabled(previous_); }

Registry& global_registry() {
  static Registry registry;
  return registry;
}

std::string dump_json(const DumpOptions& opts) {
  return global_registry().dump_json(opts);
}

}  // namespace stof::telemetry
