// Process-wide metrics registry.
//
// Four metric kinds, all named by dotted strings (see docs/OBSERVABILITY.md
// for the naming scheme):
//
//   * counters   — monotonic int64 sums (simulated cycles, bytes, hits);
//   * gauges     — last-written double values (configuration echoes);
//   * histograms — fixed log2-bucket distributions (per-kernel times);
//   * timers     — accumulated wall-clock microseconds + call counts.
//
// Counters, histograms, and timer *counts* are deterministic given a fixed
// seed: they record *what the simulation did*, which is a pure function of
// its inputs, and every mutation is commutative (sums and bucket counts),
// so concurrent recording from stof::parallel workers cannot change the
// final state.  Timer durations are host wall time and are the only
// nondeterministic content; dump_json() can exclude them so snapshots of
// identical runs compare byte-for-byte.
//
// A Registry is an ordinary object — subsystems that must account phases
// regardless of the global toggle (the tuner's Fig. 14 breakdown) own a
// local instance and merge it into the global one when telemetry is
// enabled.  The global instance lives in telemetry.hpp behind the
// near-zero-overhead `enabled()` gate.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace stof::telemetry {

/// Log2 histogram: bucket b counts values v with 2^(b-1) <= v < 2^b
/// (bucket 0 collects v < 1); values beyond 2^62 land in the last bucket.
inline constexpr int kHistogramBuckets = 64;

struct HistogramCell {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  double sum = 0;
};

struct TimerCell {
  double total_us = 0;
  std::uint64_t count = 0;
};

/// Options for dump_json(): wall-clock timers are the only nondeterministic
/// registry content, so deterministic comparisons exclude them.
struct DumpOptions {
  bool include_timers = true;
};

/// Thread-safe metrics store with deterministic (name-sorted) iteration.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- Recording ----------------------------------------------------------
  void add(std::string_view name, std::int64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double value);
  void add_duration_us(std::string_view name, double us,
                       std::uint64_t calls = 1);

  // ---- Reading (0 / empty when the metric was never recorded) -------------
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] HistogramCell histogram(std::string_view name) const;
  [[nodiscard]] TimerCell timer(std::string_view name) const;

  /// Name-sorted copies of each section (snapshot semantics).
  [[nodiscard]] std::map<std::string, std::int64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, HistogramCell> histograms() const;
  [[nodiscard]] std::map<std::string, TimerCell> timers() const;

  /// Total number of registered metric names across all kinds.
  [[nodiscard]] std::size_t entry_count() const;

  // ---- Lifecycle ----------------------------------------------------------
  void reset();

  /// Accumulate every metric of this registry into `dst` (counters and
  /// histograms add, timers add, gauges overwrite).
  void merge_into(Registry& dst) const;

  /// Deterministic JSON snapshot: sections sorted by metric name, fixed
  /// number formatting.  Identical registry content produces identical
  /// bytes.
  [[nodiscard]] std::string dump_json(const DumpOptions& opts = {}) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramCell, std::less<>> histograms_;
  std::map<std::string, TimerCell, std::less<>> timers_;
};

/// Bucket index of `value` in the log2 scheme above (exposed for tests).
[[nodiscard]] int log2_bucket(double value);

}  // namespace stof::telemetry
