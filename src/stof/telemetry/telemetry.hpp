// Telemetry front door: global registry, enable toggle, scoped timers.
//
// Instrumented call sites across gpusim/ops/mha/tuner/models go through the
// free functions here, which are gated on a process-wide flag read with one
// relaxed atomic load — with telemetry disabled (the default) every call
// site is a compare-and-branch and *no registry entries are ever created*.
// Tests and benches opt in with the RAII ScopedTelemetry guard, mirroring
// core's ScopedPackedExecution.
//
// Counter naming scheme (full catalogue in docs/OBSERVABILITY.md):
//   sim.*   deterministic simulated quantities (cycles, bytes, block and
//           cache-hit counts) — identical across packed/scalar modes and
//           across repeated seeded runs;
//   exec.*  execution-path accounting (which implementation ran) —
//           deterministic per run, mode-dependent;
//   wall.*  host wall-clock timers — the only nondeterministic metrics.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "stof/telemetry/registry.hpp"

namespace stof::telemetry {

/// True when instrumented call sites should record into the global
/// registry.  Default: disabled (zero-overhead inference).
[[nodiscard]] bool enabled();

/// Flip the global toggle (tests / benches only).
void set_enabled(bool on);

/// RAII guard restoring the previous toggle state on scope exit.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on);
  ~ScopedTelemetry();
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool previous_;
};

/// The process-wide registry all gated call sites record into.
[[nodiscard]] Registry& global_registry();

// ---- Gated recording helpers (no-ops while disabled) -----------------------

inline void count(std::string_view name, std::int64_t delta = 1) {
  if (enabled()) global_registry().add(name, delta);
}

inline void gauge(std::string_view name, double value) {
  if (enabled()) global_registry().set_gauge(name, value);
}

inline void observe(std::string_view name, double value) {
  if (enabled()) global_registry().observe(name, value);
}

inline void duration_us(std::string_view name, double us) {
  if (enabled()) global_registry().add_duration_us(name, us);
}

/// RAII wall-clock timer.  The gated form binds to the global registry only
/// when telemetry is enabled at construction; the explicit-registry form
/// always records (the tuner's phase breakdown uses it so Fig. 14 numbers
/// exist regardless of the global toggle).  The clock is read before the
/// registry is touched, so the recording cost never pollutes the measured
/// interval.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : ScopedTimer(enabled() ? &global_registry() : nullptr, name) {}
  ScopedTimer(Registry* registry, std::string_view name)
      : registry_(registry),
        name_(name),
        start_(registry == nullptr ? Clock::time_point{} : Clock::now()) {}
  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start_)
            .count();
    registry_->add_duration_us(name_, us);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  Registry* registry_;
  std::string name_;
  Clock::time_point start_;
};

/// JSON snapshot of the global registry (see Registry::dump_json).
[[nodiscard]] std::string dump_json(const DumpOptions& opts = {});

}  // namespace stof::telemetry
