#include "stof/telemetry/registry.hpp"

#include <sstream>

namespace stof::telemetry {

namespace {

/// Shortest round-trip formatting, locale-independent: identical doubles
/// always print identical bytes.
void write_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.imbue(std::locale::classic());
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

int log2_bucket(double value) {
  if (!(value >= 1.0)) return 0;  // NaN and sub-1 values collapse to 0
  int b = 0;
  while (value >= 1.0 && b < kHistogramBuckets - 1) {
    value *= 0.5;
    ++b;
  }
  return b;
}

void Registry::add(std::string_view name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramCell{}).first;
  }
  HistogramCell& cell = it->second;
  ++cell.buckets[log2_bucket(value)];
  ++cell.count;
  cell.sum += value;
}

void Registry::add_duration_us(std::string_view name, double us,
                               std::uint64_t calls) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerCell{}).first;
  }
  it->second.total_us += us;
  it->second.count += calls;
}

std::int64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramCell Registry::histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramCell{} : it->second;
}

TimerCell Registry::timer(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerCell{} : it->second;
}

std::map<std::string, std::int64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, HistogramCell> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

std::map<std::string, TimerCell> Registry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {timers_.begin(), timers_.end()};
}

std::size_t Registry::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         timers_.size();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timers_.clear();
}

void Registry::merge_into(Registry& dst) const {
  // Copy under our lock, apply under dst's lock — never hold both (the
  // global registry may be `dst` while a worker thread records into it).
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramCell, std::less<>> histograms;
  std::map<std::string, TimerCell, std::less<>> timers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters = counters_;
    gauges = gauges_;
    histograms = histograms_;
    timers = timers_;
  }
  for (const auto& [name, v] : counters) dst.add(name, v);
  for (const auto& [name, v] : gauges) dst.set_gauge(name, v);
  for (const auto& [name, cell] : histograms) {
    std::lock_guard<std::mutex> lock(dst.mu_);
    auto it = dst.histograms_.find(name);
    if (it == dst.histograms_.end()) {
      it = dst.histograms_.emplace(name, HistogramCell{}).first;
    }
    for (int b = 0; b < kHistogramBuckets; ++b) {
      it->second.buckets[b] += cell.buckets[b];
    }
    it->second.count += cell.count;
    it->second.sum += cell.sum;
  }
  for (const auto& [name, cell] : timers) {
    dst.add_duration_us(name, cell.total_us, cell.count);
  }
}

std::string Registry::dump_json(const DumpOptions& opts) const {
  // Copy out under the lock, format outside it.
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto histograms = this->histograms();
  const auto timers = this->timers();

  std::ostringstream os;
  os << "{\n  \"schema\": \"stof-telemetry-v1\",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n    " : ",\n    ");
    write_escaped(os, name);
    os << ": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    write_escaped(os, name);
    os << ": ";
    write_double(os, v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, cell] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    write_escaped(os, name);
    os << ": {\"count\": " << cell.count << ", \"sum\": ";
    write_double(os, cell.sum);
    os << ", \"buckets\": {";
    bool first_bucket = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (cell.buckets[b] == 0) continue;
      if (!first_bucket) os << ", ";
      os << '"' << b << "\": " << cell.buckets[b];
      first_bucket = false;
    }
    os << "}}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}";

  if (opts.include_timers) {
    os << ",\n  \"timers\": {";
    first = true;
    for (const auto& [name, cell] : timers) {
      os << (first ? "\n    " : ",\n    ");
      write_escaped(os, name);
      os << ": {\"count\": " << cell.count << ", \"total_us\": ";
      write_double(os, cell.total_us);
      os << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "}";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace stof::telemetry
