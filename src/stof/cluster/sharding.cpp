#include "stof/cluster/sharding.hpp"

#include <algorithm>
#include <cstring>

#include "stof/core/check.hpp"
#include "stof/core/packed.hpp"
#include "stof/ops/gemm.hpp"

namespace stof::cluster {

HeadRange head_range(std::int64_t total, int devices, int device) {
  STOF_EXPECTS(total > 0 && devices >= 1);
  STOF_EXPECTS(device >= 0 && device < devices);
  STOF_EXPECTS(total >= devices, "every shard needs at least one item");
  const std::int64_t base = total / devices;
  const std::int64_t rem = total % devices;
  const std::int64_t extra = device < rem ? 1 : 0;
  const std::int64_t begin =
      device * base + std::min<std::int64_t>(device, rem);
  return HeadRange{begin, base + extra};
}

TensorH column_parallel_matmul(const TensorH& x, const TensorH& w,
                               int devices) {
  STOF_EXPECTS(x.shape().rank() == 2 && w.shape().rank() == 2);
  const std::int64_t r = x.shape()[0];
  const std::int64_t k = x.shape()[1];
  const std::int64_t n = w.shape()[1];
  STOF_EXPECTS(w.shape()[0] == k, "contraction dims must agree");

  TensorH y(Shape{r, n});
  for (int dev = 0; dev < devices; ++dev) {
    const HeadRange cols = head_range(n, devices, dev);
    TensorH wi(Shape{k, cols.count});
    for (std::int64_t kk = 0; kk < k; ++kk) {
      std::memcpy(&wi.at(kk, 0), &w.at(kk, cols.begin),
                  static_cast<std::size_t>(cols.count) * sizeof(half));
    }
    TensorH yi(Shape{r, cols.count});
    ops::matmul2d(x, wi, yi);
    for (std::int64_t i = 0; i < r; ++i) {
      std::memcpy(&y.at(i, cols.begin), &yi.at(i, 0),
                  static_cast<std::size_t>(cols.count) * sizeof(half));
    }
  }
  return y;
}

TensorH row_parallel_matmul(const TensorH& x, const TensorH& w, int devices) {
  STOF_EXPECTS(x.shape().rank() == 2 && w.shape().rank() == 2);
  const std::int64_t r = x.shape()[0];
  const std::int64_t k = x.shape()[1];
  const std::int64_t n = w.shape()[1];
  STOF_EXPECTS(w.shape()[0] == k, "contraction dims must agree");

  // The simulated all-reduce: FP32 accumulator folded in shard order,
  // converted through the dispatched float->half kernel exactly once.
  std::vector<float> acc(static_cast<std::size_t>(r * n), 0.0f);
  for (int dev = 0; dev < devices; ++dev) {
    const HeadRange rows = head_range(k, devices, dev);
    TensorH xi(Shape{r, rows.count});
    for (std::int64_t i = 0; i < r; ++i) {
      std::memcpy(&xi.at(i, 0), &x.at(i, rows.begin),
                  static_cast<std::size_t>(rows.count) * sizeof(half));
    }
    TensorH wi(Shape{rows.count, n});
    std::memcpy(wi.data().data(), &w.at(rows.begin, 0),
                static_cast<std::size_t>(rows.count * n) * sizeof(half));
    TensorH yi(Shape{r, n});
    ops::matmul2d(xi, wi, yi);
    const auto partial = yi.data();
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += static_cast<float>(partial[i]);
    }
  }
  TensorH y(Shape{r, n});
  packed::float_to_half(acc, y.data());
  return y;
}

}  // namespace stof::cluster
