#include "stof/cluster/cluster.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "stof/cluster/sharding.hpp"
#include "stof/core/checksum.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::cluster {

void ClusterConfig::validate() const {
  STOF_EXPECTS(devices >= 1, "a cluster needs at least one device");
  STOF_EXPECTS(model_layers >= 1);
  STOF_EXPECTS(engine.total_heads == 0 && engine.head_offset == 0,
               "the template engine config must be unsharded");
  STOF_EXPECTS(engine.heads >= devices,
               "every device needs at least one attention head");
  link.validate();
  engine.validate();
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  config_.validate();
  const std::int64_t total = config_.engine.heads;
  engines_.reserve(static_cast<std::size_t>(config_.devices));
  pending_rows_.resize(static_cast<std::size_t>(config_.devices));
  for (int dev = 0; dev < config_.devices; ++dev) {
    serve::EngineConfig ec = config_.engine;
    if (config_.devices > 1) {
      const HeadRange hr = head_range(total, config_.devices, dev);
      ec.heads = hr.count;
      ec.head_offset = hr.begin;
      ec.total_heads = total;
      // The draft pass is a cost-model-only narrow decode; keep it inside
      // the shard's head range.
      ec.spec_draft_heads = std::min(ec.spec_draft_heads, hr.count);
    }
    engines_.push_back(std::make_unique<serve::Engine>(ec));
    engines_.back()->on_output_row = [this, dev](serve::SessionId id,
                                                 std::int64_t pos,
                                                 std::span<const half> row) {
      pending_rows_[static_cast<std::size_t>(dev)].push_back(
          OutputRow{id, pos, {row.begin(), row.end()}});
    };
  }
  if (config_.engine.model.enabled()) {
    // Sharded engines run the model cost-only (no weights) and publish RAW
    // shard rows; the cluster owns the full-width layer head so its digests
    // match an unsharded engine's transformed digests byte for byte.
    model_head_ = std::make_unique<serve::ModelRuntime>(
        config_.engine.model, config_.engine.heads, config_.engine.head_size,
        config_.engine.device, /*with_weights=*/true);
  }
  telemetry::gauge("cluster.devices", static_cast<double>(config_.devices));
}

serve::SessionId Cluster::submit(const serve::Request& request) {
  serve::SessionId id = 0;
  for (auto& e : engines_) id = e->submit(request);
  return id;
}

void Cluster::advance_to(double us) {
  for (auto& e : engines_) e->advance_to(us);
}

std::uint64_t Cluster::prefix_chain_key(const serve::Request& r,
                                        std::int64_t tokens) const {
  const std::int64_t bt = config_.engine.block_tokens;
  std::uint64_t h = kFnv1aOffset;
  for (std::int64_t b = 0; b * bt < tokens; ++b) {
    const std::int64_t end = std::min((b + 1) * bt, tokens);
    const std::uint64_t pk = serve::PrefixIndex::page_key(r, b * bt, end);
    h = fnv1a64(&pk, sizeof(pk), h);
  }
  // page_key covers token content only; the folded OUTPUTS also depend on
  // the attention pattern, so the chain value must too.
  const int mk = static_cast<int>(r.mask_kind);
  return fnv1a64(&mk, sizeof(mk), h);
}

void Cluster::drain_output_rows() {
  const auto& ref = pending_rows_[0];
  if (config_.check_lockstep) {
    for (const auto& dev_rows : pending_rows_) {
      STOF_CHECK(dev_rows.size() == ref.size(),
                 "shards must fold the same output rows each step");
    }
  }
  // Assemble the step's full-width rows first: shard d holds heads
  // [head_range(d).begin, ...), so device-order concatenation is the
  // (head, dim) row a single-device engine folds for each position.
  const std::int64_t width = config_.engine.heads * config_.engine.head_size;
  std::vector<half> full(ref.size() * static_cast<std::size_t>(width));
  for (std::size_t j = 0; j < ref.size(); ++j) {
    std::size_t off = j * static_cast<std::size_t>(width);
    for (auto& dev_rows : pending_rows_) {
      const OutputRow& row = dev_rows[j];
      if (config_.check_lockstep) {
        STOF_CHECK(row.id == ref[j].id && row.pos == ref[j].pos,
                   "shard output-row streams diverged");
      }
      std::copy(row.bytes.begin(), row.bytes.end(), full.begin() + off);
      off += row.bytes.size();
    }
    STOF_CHECK(off == (j + 1) * static_cast<std::size_t>(width),
               "shard rows must tile the model width exactly");
  }
  // With a model configured, apply the layer head to the assembled
  // full-width rows before folding.  The head is per-row pure, so one
  // batched call matches an unsharded engine's per-step transforms bit
  // for bit regardless of how that engine batched them.
  if (model_head_ != nullptr && !ref.empty()) {
    TensorH t(Shape{static_cast<std::int64_t>(ref.size()), width});
    std::copy(full.begin(), full.end(), t.data().begin());
    model_head_->transform_rows(t);
    std::copy(t.data().begin(), t.data().end(), full.begin());
  }
  for (std::size_t j = 0; j < ref.size(); ++j) {
    const serve::SessionId id = ref[j].id;
    const std::int64_t pos = ref[j].pos;
    auto it = digests_.find(id);
    if (it == digests_.end()) {
      // First folded row of this session.  A session that adopted a shared
      // prefix starts folding at the adoption boundary (possibly re-set by
      // eviction/re-admission cycles): positions [0, pos) were never
      // computed here, so seed the cluster digest with the chain value
      // recorded when the donor's template rows were folded.  The key is
      // pure template content, so any earlier session with the same
      // template works as the donor — and `pos` is always a published
      // boundary (page multiple or template end) when nonzero.
      std::uint64_t init = kFnv1aOffset;  // matches Session::digest's start
      const serve::Session& s = engines_[0]->session(id);
      if (pos > 0) {
        STOF_CHECK(pos <= s.request.template_len,
                   "a first fold past 0 must sit inside an adopted template");
        const auto cit =
            prefix_chain_.find(prefix_chain_key(s.request, pos));
        STOF_CHECK(cit != prefix_chain_.end(),
                   "adopted prefix must have a recorded cluster chain value");
        init = cit->second;
      }
      it = digests_.emplace(id, init).first;
    }
    it->second = fnv1a64(
        full.data() + j * static_cast<std::size_t>(width),
        static_cast<std::size_t>(width) * sizeof(half), it->second);
    // Record the chain value at template page boundaries — the points a
    // later session can adopt up to.
    const serve::Request& r = engines_[0]->session(id).request;
    if (r.template_len > 0 && pos < r.template_len) {
      const std::int64_t bt = config_.engine.block_tokens;
      if ((pos + 1) % bt == 0 || pos + 1 == r.template_len) {
        prefix_chain_[prefix_chain_key(r, pos + 1)] = it->second;
      }
    }
  }
  for (auto& dev_rows : pending_rows_) dev_rows.clear();
}

bool Cluster::step() {
  std::vector<std::optional<serve::StepOutcome>> outcomes;
  outcomes.reserve(engines_.size());
  for (auto& e : engines_) outcomes.push_back(e->execute_step());

  if (!outcomes[0].has_value()) {
    // Lock-step invariant: either every shard had work or none did.
    for (const auto& o : outcomes) {
      STOF_CHECK(!o.has_value(), "shard schedulers diverged (empty vs not)");
    }
    return false;
  }

  double max_us = 0;
  double min_us = std::numeric_limits<double>::max();
  for (const auto& o : outcomes) {
    STOF_CHECK(o.has_value(), "shard schedulers diverged (empty vs not)");
    if (config_.check_lockstep) {
      STOF_CHECK(o->prefills.size() == outcomes[0]->prefills.size() &&
                     o->chunks.size() == outcomes[0]->chunks.size() &&
                     o->decodes.size() == outcomes[0]->decodes.size() &&
                     o->evicted.size() == outcomes[0]->evicted.size(),
                 "shard schedulers diverged (plan shapes)");
    }
    max_us = std::max(max_us, o->us);
    min_us = std::min(min_us, o->us);
  }

  // Layer-boundary collectives: 2 all-reduces per layer (attention
  // out-proj + FFN down-proj) over the step's activation rows at model
  // width.  Every shard charges the same cost onto its own timeline.
  double collective_us = 0;
  const std::int64_t rows =
      outcomes[0]->prefill_tokens + outcomes[0]->decode_rows;
  if (config_.devices > 1 && rows > 0) {
    const double payload =
        static_cast<double>(rows * config_.engine.model_heads() *
                            config_.engine.head_size) *
        sizeof(half);
    const CollectiveCost cost = collective_cost(
        CollectiveOp::kAllReduce, config_.link, config_.devices, payload);
    // With a real ModelSpec the collective count comes from it (T5 adds a
    // third all-reduce per layer for cross-attention out-proj); otherwise
    // fall back to the analytic model_layers knob.
    const serve::ModelSpec& ms = config_.engine.model;
    const std::int64_t calls =
        ms.enabled() ? ms.collectives_per_layer() * ms.layers
                     : 2 * config_.model_layers;
    for (std::int64_t c = 0; c < calls; ++c) {
      for (auto& e : engines_) {
        charge_collective(e->stream_mut(), cost);
      }
      collective_us += cost.time_us;
    }
  }

  const double step_us = max_us + collective_us;
  collective_us_ += collective_us;
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    engines_[i]->finalize_step(*outcomes[i], step_us);
  }
  drain_output_rows();

  if (telemetry::enabled()) {
    telemetry::count("cluster.steps");
    if (max_us > 0) {
      telemetry::observe("cluster.step.imbalance_pct",
                         (max_us - min_us) / max_us * 100.0);
    }
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      const double clock = engines_[i]->sim_time_us();
      const double busy = engines_[i]->stream().total_us();
      telemetry::gauge("cluster.device" + std::to_string(i) + ".util_pct",
                       clock > 0 ? busy / clock * 100.0 : 0.0);
    }
  }
  return true;
}

}  // namespace stof::cluster
