// Analytic collective cost model for the simulated multi-device cluster.
//
// Collectives are modeled with the classical latency–bandwidth (α–β)
// machinery: a LinkSpec carries the per-hop message latency α and the
// per-link bandwidth β of the interconnect, and each collective is priced
// for both a ring and a binomial-tree schedule:
//
//   ring all-reduce      t = 2(N−1)·α + 2(N−1)/N · B/β     (reduce-scatter
//                        + all-gather; each device puts 2(N−1)/N·B on its
//                        link — the bandwidth-optimal schedule)
//   tree all-reduce      t = 2·ceil(log2 N)·(α + B/β)      (reduce up a
//                        binomial tree, broadcast back down)
//   ring all-gather      t = (N−1)·α + (N−1)/N · B/β        (B = gathered
//                        result size)
//   ring reduce-scatter  t = (N−1)·α + (N−1)/N · B/β
//   tree all-gather /    t = ceil(log2 N)·(α + B/β)
//   reduce-scatter
//
// kAuto picks whichever schedule is faster for the message size: small
// messages are latency-dominated and prefer the O(log N) tree, large ones
// are bandwidth-dominated and prefer the ring — the same crossover real
// collective libraries implement.  All quantities are pure functions of
// (op, link, devices, bytes), so charged timeline costs are deterministic.
//
// charge_collective() pushes the resolved cost onto a device's
// gpusim::Stream as a fixed-time event and counts the cluster.collective.*
// telemetry, which is how per-device timelines see interconnect time.
#pragma once

#include <cstdint>
#include <string>

#include "stof/core/check.hpp"
#include "stof/gpusim/timeline.hpp"

namespace stof::cluster {

/// Interconnect description consumed by the α–β model.  A link is one
/// device's attachment to the fabric (ring neighbor or tree edge).
struct LinkSpec {
  std::string name = "nvlink";
  double latency_us = 0.3;       ///< α: per-hop, per-message latency
  double bandwidth_gbps = 600;   ///< β: per-link bandwidth (GB/s)

  void validate() const {
    STOF_EXPECTS(latency_us >= 0, "link latency must be non-negative");
    STOF_EXPECTS(bandwidth_gbps > 0, "link bandwidth must be positive");
  }
};

/// NVLink/NVSwitch-class intra-node fabric.
LinkSpec nvlink_like();
/// PCIe-gen4-class fallback fabric (high α, thin β).
LinkSpec pcie_like();

enum class CollectiveOp : std::uint8_t {
  kAllReduce,
  kAllGather,
  kReduceScatter
};

enum class CollectiveAlgo : std::uint8_t { kAuto, kRing, kTree };

const char* to_string(CollectiveOp op);
const char* to_string(CollectiveAlgo algo);

/// Resolved cost of one collective over `devices` ranks.
struct CollectiveCost {
  CollectiveOp op = CollectiveOp::kAllReduce;
  CollectiveAlgo algo = CollectiveAlgo::kRing;  ///< resolved, never kAuto
  int devices = 1;
  double payload_bytes = 0;  ///< full message size B (gathered/reduced)
  /// Bytes each device moves across its own link on the schedule's
  /// critical path (the quantity the closed-form tests check).
  double wire_bytes_per_device = 0;
  double time_us = 0;

  /// Wire bytes summed over all devices (telemetry's traffic counter).
  [[nodiscard]] double wire_bytes_total() const {
    return wire_bytes_per_device * devices;
  }
};

/// Price `op` over `devices` ranks moving `payload_bytes`.  With kAuto the
/// faster of ring and tree is chosen; N == 1 is free (no communication).
CollectiveCost collective_cost(CollectiveOp op, const LinkSpec& link,
                               int devices, double payload_bytes,
                               CollectiveAlgo algo = CollectiveAlgo::kAuto);

/// Charge `cost` onto one device's timeline as a fixed-duration event
/// named "cluster.<op>" and count cluster.collective.* telemetry.
/// Returns the charged time in microseconds.
double charge_collective(gpusim::Stream& stream, const CollectiveCost& cost);

}  // namespace stof::cluster
