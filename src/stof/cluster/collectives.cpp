#include "stof/cluster/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "stof/telemetry/telemetry.hpp"

namespace stof::cluster {

LinkSpec nvlink_like() { return LinkSpec{"nvlink", 0.3, 600.0}; }

LinkSpec pcie_like() { return LinkSpec{"pcie", 1.5, 32.0}; }

const char* to_string(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kAllReduce:
      return "allreduce";
    case CollectiveOp::kAllGather:
      return "allgather";
    case CollectiveOp::kReduceScatter:
      return "reducescatter";
  }
  return "unknown";
}

const char* to_string(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kAuto:
      return "auto";
    case CollectiveAlgo::kRing:
      return "ring";
    case CollectiveAlgo::kTree:
      return "tree";
  }
  return "unknown";
}

namespace {

[[nodiscard]] double beta_us_per_byte(const LinkSpec& link) {
  return 1.0 / (link.bandwidth_gbps * 1e3);  // GB/s -> bytes/us
}

[[nodiscard]] int ceil_log2(int n) {
  int steps = 0;
  for (int span = 1; span < n; span *= 2) ++steps;
  return steps;
}

/// (steps, per-device wire bytes) of the ring schedule for `op`.
struct Schedule {
  double steps = 0;       ///< α terms on the critical path
  double wire_bytes = 0;  ///< bytes per device link on the critical path
};

[[nodiscard]] Schedule ring_schedule(CollectiveOp op, int n, double bytes) {
  const double phases = op == CollectiveOp::kAllReduce ? 2.0 : 1.0;
  return Schedule{phases * (n - 1),
                  phases * (static_cast<double>(n - 1) / n) * bytes};
}

[[nodiscard]] Schedule tree_schedule(CollectiveOp op, int n, double bytes) {
  const double phases = op == CollectiveOp::kAllReduce ? 2.0 : 1.0;
  const double hops = static_cast<double>(ceil_log2(n));
  return Schedule{phases * hops, phases * hops * bytes};
}

}  // namespace

CollectiveCost collective_cost(CollectiveOp op, const LinkSpec& link,
                               int devices, double payload_bytes,
                               CollectiveAlgo algo) {
  link.validate();
  STOF_EXPECTS(devices >= 1, "collective needs at least one device");
  STOF_EXPECTS(payload_bytes >= 0);

  CollectiveCost cost;
  cost.op = op;
  cost.devices = devices;
  cost.payload_bytes = payload_bytes;
  if (devices == 1) {
    cost.algo = algo == CollectiveAlgo::kAuto ? CollectiveAlgo::kRing : algo;
    return cost;  // single rank: no wire traffic, no time
  }

  const double beta = beta_us_per_byte(link);
  const auto price = [&](const Schedule& s) {
    return s.steps * link.latency_us + s.wire_bytes * beta;
  };
  const Schedule ring = ring_schedule(op, devices, payload_bytes);
  const Schedule tree = tree_schedule(op, devices, payload_bytes);
  const double ring_us = price(ring);
  const double tree_us = price(tree);

  CollectiveAlgo pick = algo;
  if (pick == CollectiveAlgo::kAuto) {
    // Latency-dominated small messages take the O(log N) tree; bandwidth-
    // dominated large ones take the (N-1)/N-optimal ring.  Ties go to the
    // ring so the choice is deterministic.
    pick = tree_us < ring_us ? CollectiveAlgo::kTree : CollectiveAlgo::kRing;
  }
  const Schedule& sched = pick == CollectiveAlgo::kRing ? ring : tree;
  cost.algo = pick;
  cost.wire_bytes_per_device = sched.wire_bytes;
  cost.time_us = price(sched);
  return cost;
}

double charge_collective(gpusim::Stream& stream, const CollectiveCost& cost) {
  if (cost.devices <= 1) return 0;
  const std::string name = std::string("cluster.") + to_string(cost.op);
  const double us =
      stream.launch_timed(name, cost.time_us, cost.wire_bytes_per_device);
  if (telemetry::enabled()) {
    telemetry::count("cluster.collective.calls");
    telemetry::count("cluster.collective.us", std::llround(us));
    telemetry::count("cluster.collective.wire_bytes",
                     std::llround(cost.wire_bytes_per_device));
    telemetry::count(std::string("cluster.collective.") +
                     to_string(cost.algo) + "_calls");
  }
  return us;
}

}  // namespace stof::cluster
