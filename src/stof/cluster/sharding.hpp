// Tensor-parallel sharding helpers.
//
// The cluster shards two kinds of compute:
//   * attention, head-parallel — each shard owns a contiguous head range
//     (head_range below) and its matching KV-pool slice, so paged decode,
//     prefix sharing, and the panel-cache sidecars shard for free.  The
//     layer-boundary gather concatenates head outputs: no arithmetic
//     crosses shards, so shard bytes are identical to the corresponding
//     head slice of a single-device run.
//   * the FFN path, Megatron-style — the up-projection splits weight
//     COLUMNS (each shard computes a slice of the hidden activation, the
//     gather concatenates: exact) and the down-projection splits weight
//     ROWS (each shard computes a partial sum over its slice of the
//     contraction dimension, the all-reduce adds the partials).  The
//     reduction here is a FIXED-ORDER FP32 fold over shards 0..N-1 with a
//     single final round to half: deterministic for every device count,
//     and bitwise exact whenever the per-shard partials are FP32-exact
//     (integer-valued operands — see cluster_test).
#pragma once

#include <cstdint>

#include "stof/core/tensor.hpp"

namespace stof::cluster {

/// Contiguous balanced range [begin, begin + count) owned by shard
/// `device` of `devices` over `total` items; the first total % devices
/// shards get one extra item and the ranges tile [0, total) exactly.
struct HeadRange {
  std::int64_t begin = 0;
  std::int64_t count = 0;
  [[nodiscard]] std::int64_t end() const { return begin + count; }
};

HeadRange head_range(std::int64_t total, int devices, int device);

/// Column-parallel sharded matmul: shard i computes y_i = x · w[:, cols_i]
/// and the gather concatenates output columns.  Bit-identical to
/// ops::matmul2d(x, w) for every device count.
TensorH column_parallel_matmul(const TensorH& x, const TensorH& w,
                               int devices);

/// Row-parallel sharded matmul: shard i computes the partial
/// y_i = x[:, rows_i] · w[rows_i, :] and the all-reduce folds the partials
/// in fixed shard order with FP32 accumulation, rounding to half once.
TensorH row_parallel_matmul(const TensorH& x, const TensorH& w, int devices);

}  // namespace stof::cluster
