// Tensor-parallel multi-device serving runtime.
//
// A Cluster instantiates one serve::Engine per simulated device behind a
// shared admission front door.  Every request is submitted to every
// engine; engine i is configured as the head shard
// [head_range(i).begin, head_range(i).end) of the model, with its own KV
// pool (holding only its heads' pages), its own gpusim timeline, and its
// own panel-cache sidecars — so paged decode, chunked prefill, prefix
// sharing, and speculative decoding all shard without modification.
//
// Scheduling is lock-step: scheduler plans are pure functions of the
// session table and the pool's BLOCK accounting, and the head count only
// changes bytes-per-block, never block counts — so N engines fed the same
// submissions make identical decisions every step (checked when
// check_lockstep is set).  One cluster step:
//
//   1. execute_step() on every shard (kernels run, clocks do not move);
//   2. price the step's layer-boundary all-reduces with the α–β model and
//      charge them onto every shard's timeline;
//   3. finalize_step() everywhere with the common duration
//      max(shard kernel times) + collective time — so shard clocks, TTFT,
//      and deadline accounting agree across the cluster;
//   4. gather each shard's attention-output rows (the Engine's
//      on_output_row hook) and fold them in fixed shard order into
//      per-session CLUSTER digests, which are byte-comparable to a
//      single-device engine's digests on the same trace.
//
// Collective traffic per step is modeled Megatron-style: 2 all-reduces
// per transformer layer over the step's activation rows
// (rows × model_heads × head_size halfs).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "stof/cluster/collectives.hpp"
#include "stof/serve/engine.hpp"

namespace stof::cluster {

struct ClusterConfig {
  int devices = 1;
  /// Template engine config; `engine.heads` is the FULL model head count,
  /// which the cluster splits into contiguous per-device shards.
  serve::EngineConfig engine;
  LinkSpec link = nvlink_like();
  /// Transformer layers the collective model charges per step (each layer
  /// contributes two all-reduces: attention out-proj + FFN down-proj).
  /// Ignored when `engine.model` is enabled — the ModelSpec then supplies
  /// both the layer count and the per-layer collective count.
  std::int64_t model_layers = 1;
  /// Assert every step that all shards executed identical plans and
  /// produced aligned output-row streams (cheap; on by default).
  bool check_lockstep = true;

  void validate() const;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] int devices() const { return config_.devices; }

  /// Submit a request to every shard's admission queue.
  serve::SessionId submit(const serve::Request& request);

  /// One lock-step cluster step; false when no shard has admissible work.
  bool step();

  void run_until_drained() {
    while (step()) {
    }
  }

  /// Open-loop clock advance on every shard (trace replay while idle).
  void advance_to(double us);

  [[nodiscard]] double sim_time_us() const { return engines_[0]->sim_time_us(); }
  [[nodiscard]] bool idle() const { return engines_[0]->idle(); }

  [[nodiscard]] const serve::Engine& engine(int device) const {
    return *engines_.at(static_cast<std::size_t>(device));
  }
  /// Shard 0's engine stats; lock-step execution keeps every shard's
  /// session/step counters identical, so one shard speaks for all.
  [[nodiscard]] const serve::EngineStats& stats() const {
    return engines_[0]->stats();
  }

  /// Per-session cluster digests: FNV-1a over full-width attention-output
  /// rows in position order (shard rows concatenated head-major), the
  /// same chain a single-device engine folds.
  [[nodiscard]] const std::map<serve::SessionId, std::uint64_t>& digests()
      const {
    return digests_;
  }

  /// Total simulated collective time charged per device so far.
  [[nodiscard]] double collective_us() const { return collective_us_; }

 private:
  struct OutputRow {
    serve::SessionId id = 0;
    std::int64_t pos = 0;
    std::vector<half> bytes;  ///< this shard's heads × head_size halfs
  };

  /// Pure content key of "the first `tokens` positions of this request's
  /// template" (page-key chain + mask kind): indexes the cluster-digest
  /// chain values that seed prefix-adopting sessions.
  [[nodiscard]] std::uint64_t prefix_chain_key(const serve::Request& r,
                                               std::int64_t tokens) const;

  /// Fold the step's gathered shard rows into the cluster digests.
  void drain_output_rows();

  ClusterConfig config_;
  std::vector<std::unique_ptr<serve::Engine>> engines_;
  /// Full-width numeric model head (engine.model enabled only): shards
  /// fold raw local rows, so the cluster applies the layer head to the
  /// assembled full-width row before folding — reproducing an unsharded
  /// engine's transformed digest bit for bit at every device count.
  std::unique_ptr<serve::ModelRuntime> model_head_;
  std::vector<std::vector<OutputRow>> pending_rows_;  ///< per device
  std::map<serve::SessionId, std::uint64_t> digests_;
  /// Digest chain value after folding the first `key`'s tokens of a shared
  /// template — pure functions of template content, so entries are never
  /// invalidated.
  std::map<std::uint64_t, std::uint64_t> prefix_chain_;
  double collective_us_ = 0;
};

}  // namespace stof::cluster
