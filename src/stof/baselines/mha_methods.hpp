// MHA-level baseline methods (paper §5.1.2).
//
// Every comparison method in Fig. 10/11 is re-implemented as a *policy* on
// the shared gpusim substrate, differing from STOF exactly in the
// dimensions the paper credits:
//
//   PyTorch Native   — four detached kernels (score GEMM, mask subtract,
//                      softmax, PV GEMM) with the dense score matrix
//                      round-tripping through global memory.
//   PyTorch Compile  — inductor fuses the mask subtract into the softmax
//                      and dispatches FlashAttention2 when the pattern
//                      allows; MHA-level it behaves like FA2 plus guard
//                      overhead.
//   FlashAttention2  — one fused dense kernel, fixed 128x64 tiling; skips
//                      blocks only for its natively supported patterns
//                      (causal, sliding window); everything else computes
//                      densely with an in-kernel mask subtract.
//   FlexAttention    — block-mask skipping for arbitrary patterns with
//                      full/partial distinction, but at a fixed coarse
//                      (128, 128) granularity, score-mod recomputation on
//                      partial blocks, and no parameter tuning.
//   ByteTransformer  — hand-fused kernel holding the score tile entirely
//                      on-chip; excellent short-sequence performance, no
//                      sparsity support, hard seq_len <= 1024 limit.
//   MCFuser          — loop-fused GEMM chain with an FP32 score workspace
//                      in global memory; no sparsity; the workspace
//                      overflows device memory at large input scales.
//   STOF             — the unified MHA module (row-wise / block-wise).
//
// All methods compute the same function; `run_functional` returns the
// reference result so tests can assert the policy layer never changes
// numerics.  `simulate` records the method's kernels on a Stream and
// reports support status (Fig. 10/11's missing bars).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stof/gpusim/timeline.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/attention.hpp"
#include "stof/sparse/bsr_cache.hpp"

namespace stof::baselines {

enum class Method {
  kPytorchNative,
  kPytorchCompile,
  kFlashAttention2,
  kFlexAttention,
  kByteTransformer,
  kMcfuser,
  kBolt,
  kStof,
};

[[nodiscard]] std::string to_string(Method method);

/// Methods that appear in the MHA-level comparison (Bolt is end-to-end
/// only, per the paper).
[[nodiscard]] const std::vector<Method>& mha_methods();

/// Result of simulating one method on one configuration.
struct MhaSimResult {
  bool supported = true;
  std::string unsupported_reason;
  double time_us = 0;
};

/// Simulate `method` on the configuration, recording kernels on `stream`.
/// `pattern` tells methods with pattern-dependent fast paths (FA2) what the
/// mask is; `cache` provides BSR views of it.
MhaSimResult simulate_mha(Method method, const mha::MhaDims& dims,
                          masks::PatternKind pattern, sparse::BsrCache& cache,
                          gpusim::Stream& stream);

/// Functional execution of `method` (all methods compute the same
/// function; the sparse ones run their actual sparse kernels).
TensorH run_mha_functional(Method method, const mha::MhaDims& dims,
                           masks::PatternKind pattern,
                           sparse::BsrCache& cache, const TensorH& q,
                           const TensorH& k, const TensorH& v);

}  // namespace stof::baselines
