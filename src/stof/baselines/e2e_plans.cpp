#include "stof/baselines/e2e_plans.hpp"

#include "stof/ops/fused.hpp"

namespace stof::baselines {
namespace {

using fusion::FusionScheme;
using fusion::Segment;
using graph::Graph;
using graph::OpKind;

bool starts_mha(const Graph& g, std::int64_t i) {
  const auto pattern = Graph::mha_pattern();
  if (i + static_cast<std::int64_t>(pattern.size()) >
      static_cast<std::int64_t>(g.size())) {
    return false;
  }
  for (std::size_t j = 0; j < pattern.size(); ++j) {
    if (g.node(i + static_cast<std::int64_t>(j)).kind != pattern[j]) {
      return false;
    }
  }
  return true;
}

bool is_mi(const Graph& g, std::int64_t i) {
  const auto& n = g.node(i);
  return !graph::is_compute_intensive(n.kind) && n.kind != OpKind::kInput &&
         !graph::is_mha_op(n.kind);
}

models::ExecutionPlan plan_from(const std::vector<Segment>& segs,
                                const Graph& g) {
  models::ExecutionPlan plan;
  plan.scheme =
      FusionScheme::from_segments(segs, static_cast<std::int64_t>(g.size()));
  return plan;
}

std::vector<Segment> detached_segments(const Graph& g) {
  std::vector<Segment> segs;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(g.size()); ++i) {
    segs.push_back({i, i + 1});
  }
  return segs;
}

// MHA fused + maximal MI runs fused + CI detached (Compile/Byte).
std::vector<Segment> mi_fused_segments(const Graph& g) {
  std::vector<Segment> segs;
  const std::int64_t n = static_cast<std::int64_t>(g.size());
  std::int64_t i = 0;
  while (i < n) {
    if (starts_mha(g, i)) {
      segs.push_back({i, i + 4});
      i += 4;
      continue;
    }
    if (is_mi(g, i)) {
      std::int64_t j = i;
      while (j < n && is_mi(g, j)) ++j;
      segs.push_back({i, j});
      i = j;
      continue;
    }
    segs.push_back({i, i + 1});
    ++i;
  }
  return segs;
}

// MHA fused + dimension-compatible CI chains fused (MCFuser).
std::vector<Segment> ci_chain_segments(const Graph& g) {
  std::vector<Segment> segs;
  const std::int64_t n = static_cast<std::int64_t>(g.size());
  std::int64_t i = 0;
  while (i < n) {
    if (starts_mha(g, i)) {
      segs.push_back({i, i + 4});
      i += 4;
      continue;
    }
    const auto& node = g.node(i);
    if (graph::is_compute_intensive(node.kind)) {
      // Look ahead past interleaved MI ops for a chainable second GEMM.
      std::int64_t j = i + 1;
      while (j < n && is_mi(g, j)) ++j;
      if (j < n && graph::is_compute_intensive(g.node(j).kind) &&
          !graph::is_mha_op(g.node(j).kind) && !starts_mha(g, j) &&
          g.node(j).inner == node.cols && g.node(j).rows == node.rows) {
        segs.push_back({i, j + 1});
        i = j + 1;
        continue;
      }
    }
    segs.push_back({i, i + 1});
    ++i;
  }
  return segs;
}

// GEMM + trailing-MI epilogues (Bolt): the MHA sub-graph degenerates into
// [ScoreGemm, MaskApply, Softmax] + [PvGemm, ...].
std::vector<Segment> epilogue_segments(const Graph& g) {
  std::vector<Segment> segs;
  const std::int64_t n = static_cast<std::int64_t>(g.size());
  std::int64_t i = 0;
  while (i < n) {
    const auto& node = g.node(i);
    if (graph::is_compute_intensive(node.kind)) {
      std::int64_t j = i + 1;
      while (j < n && !graph::is_compute_intensive(g.node(j).kind) &&
             g.node(j).kind != OpKind::kInput) {
        ++j;
      }
      segs.push_back({i, j});
      i = j;
      continue;
    }
    segs.push_back({i, i + 1});
    ++i;
  }
  return segs;
}

}  // namespace

models::ExecutionPlan mha_fused_detached_plan(const Graph& g) {
  std::vector<Segment> segs;
  const auto mha = Graph::mha_pattern();
  const std::int64_t n = static_cast<std::int64_t>(g.size());
  std::int64_t i = 0;
  while (i < n) {
    if (starts_mha(g, i)) {
      segs.push_back({i, i + static_cast<std::int64_t>(mha.size())});
      i += static_cast<std::int64_t>(mha.size());
      continue;
    }
    segs.push_back({i, i + 1});
    ++i;
  }
  return plan_from(segs, g);
}

models::ExecutionPlan e2e_plan(Method method, const Graph& g) {
  switch (method) {
    case Method::kPytorchNative: {
      auto plan = plan_from(detached_segments(g), g);
      plan.eager = true;
      return plan;
    }
    case Method::kPytorchCompile:
    case Method::kByteTransformer:
      return plan_from(mi_fused_segments(g), g);
    case Method::kMcfuser:
      return plan_from(ci_chain_segments(g), g);
    case Method::kBolt:
      return plan_from(epilogue_segments(g), g);
    case Method::kStof:
      return stof_initial_plan(g);
    case Method::kFlashAttention2:
    case Method::kFlexAttention:
      // MHA-only methods (paper §5.1.2): treat downstream like Compile.
      return plan_from(mi_fused_segments(g), g);
  }
  STOF_CHECK(false, "unreachable");
}

models::ExecutionPlan stof_initial_plan(const Graph& g,
                                        const gpusim::DeviceSpec* device) {
  // §4.4 initialization: MHA fused, MI runs fused; CI+CI chains are seeded
  // only when profitable (the §3.2 conclusion).  With a device available
  // the analytical model decides directly; otherwise a row-count threshold
  // stands in.
  const graph::Node* ffn_up = nullptr;
  for (const auto& n : g.nodes()) {
    if (n.kind == OpKind::kFfnGemm) {
      ffn_up = &n;
      break;
    }
  }
  bool fuse_chains = ffn_up != nullptr && ffn_up->rows <= 1024;
  if (ffn_up != nullptr && device != nullptr) {
    const ops::GemmChainDims dims{1, ffn_up->rows, ffn_up->inner,
                                  ffn_up->cols, ffn_up->inner};
    double best_fused = 1e300;
    double best_detached = 1e300;
    for (const auto& p : ops::gemm_param_space()) {
      const auto fused = ops::fused_gemm_gemm_cost(dims, p, *device);
      if (fused.occupancy > 0) {
        best_fused = std::min(best_fused,
                              gpusim::estimate_time_us(fused, *device));
      }
      best_detached =
          std::min(best_detached,
                   ops::sequence_time_us(
                       ops::detached_gemm_gemm_cost(dims, p, *device),
                       *device));
    }
    fuse_chains = best_fused < best_detached;
  }
  auto segs = fuse_chains ? ci_chain_segments(g) : mi_fused_segments(g);
  if (fuse_chains) {
    // ci_chain_segments leaves MI runs detached; merge pure-MI neighbours.
    std::vector<Segment> merged;
    for (const auto& seg : segs) {
      const bool mi_only = [&] {
        for (std::int64_t i = seg.begin; i < seg.end; ++i) {
          if (!is_mi(g, i)) return false;
        }
        return true;
      }();
      if (!merged.empty() && mi_only && merged.back().end == seg.begin) {
        bool prev_mi_only = true;
        for (std::int64_t i = merged.back().begin; i < merged.back().end; ++i) {
          if (!is_mi(g, i)) prev_mi_only = false;
        }
        if (prev_mi_only) {
          merged.back().end = seg.end;
          continue;
        }
      }
      merged.push_back(seg);
    }
    segs = std::move(merged);
  }
  auto plan = plan_from(segs, g);
  STOF_ENSURES(plan.scheme.valid_for(g), "initial scheme must be valid");
  return plan;
}

}  // namespace stof::baselines
