#include "stof/baselines/mha_methods.hpp"

#include "stof/gpusim/occupancy.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/unified.hpp"
#include "stof/ops/elementwise.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/ops/normalize.hpp"

namespace stof::baselines {

std::string to_string(Method method) {
  switch (method) {
    case Method::kPytorchNative: return "PyTorch-Native";
    case Method::kPytorchCompile: return "PyTorch-Compile";
    case Method::kFlashAttention2: return "FlashAttention2";
    case Method::kFlexAttention: return "FlexAttention";
    case Method::kByteTransformer: return "ByteTransformer";
    case Method::kMcfuser: return "MCFuser";
    case Method::kBolt: return "Bolt";
    case Method::kStof: return "STOF";
  }
  return "unknown";
}

const std::vector<Method>& mha_methods() {
  static const std::vector<Method> methods = {
      Method::kPytorchNative,  Method::kPytorchCompile,
      Method::kFlashAttention2, Method::kFlexAttention,
      Method::kByteTransformer, Method::kMcfuser,
      Method::kStof,
  };
  return methods;
}

namespace {

using gpusim::KernelCost;

bool fa2_native_pattern(masks::PatternKind pattern) {
  return pattern == masks::PatternKind::kCausal ||
         pattern == masks::PatternKind::kSlidingWindow ||
         pattern == masks::PatternKind::kDense;
}

// PyTorch Native: four detached eager kernels with dense score round
// trips; each pays framework dispatch on top of the launch.
MhaSimResult simulate_native(const mha::MhaDims& dims, gpusim::Stream& s) {
  const std::int64_t bh = dims.instances();
  const std::int64_t n = dims.seq_len;
  const std::int64_t d = dims.head_size;
  const ops::GemmParams gp;
  const double dispatch = s.device().dispatch_overhead_us;
  const auto eager = [dispatch](gpusim::KernelCost c) {
    c.dispatch_us = dispatch;
    return c;
  };

  s.launch("native.qk_gemm",
           eager(ops::gemm_cost({bh, n, n, d}, gp, s.device())));
  // Mask subtract: read scores + dense mask, write scores.
  const double score_bytes = static_cast<double>(bh) * n * n * 2.0;
  const double mask_bytes = static_cast<double>(n) * n * 2.0;
  s.launch("native.mask_sub",
           eager(ops::elementwise_cost(bh * n * n, 1.0,
                                       score_bytes + mask_bytes, score_bytes,
                                       ops::EwParams{}, s.device())));
  s.launch("native.softmax",
           eager(ops::softmax_cost(bh * n, n, /*with_mask=*/false,
                                   ops::NormParams{}, s.device())));
  s.launch("native.pv_gemm",
           eager(ops::gemm_cost({bh, n, d, n}, gp, s.device())));
  return {true, "", s.total_us()};
}

// FlashAttention2: one fused kernel at fixed (128, 64) tiling; block
// skipping only for natively supported patterns.
MhaSimResult simulate_fa2(const mha::MhaDims& dims,
                          masks::PatternKind pattern, sparse::BsrCache& cache,
                          gpusim::Stream& s) {
  const mha::BlockwiseParams params{128, 64, /*num_warps=*/8};
  const sparse::BsrMask& bsr = cache.at(128, 64);
  KernelCost c;
  if (fa2_native_pattern(pattern)) {
    c = mha::blockwise_cost(dims, bsr, params, s.device());
  } else {
    // Unsupported pattern: dense compute + in-kernel mask subtract.
    const sparse::BsrMask& dense_bsr =
        cache.at(128, 64);  // used only for grid geometry
    c = mha::blockwise_cost(dims, dense_bsr, params, s.device());
    const double all_blocks =
        static_cast<double>(dense_bsr.rows()) * dense_bsr.cols();
    const double valid = static_cast<double>(dense_bsr.valid_count());
    const double scale_up = valid > 0 ? all_blocks / valid : 1.0;
    const double bh = static_cast<double>(dims.instances());
    c.tc_flops *= scale_up;  // no skipping: every block computed
    c.smem_bytes *= scale_up;
    c.gmem_read_bytes *= scale_up;
    // Dense mask streamed and subtracted inside the kernel.
    c.gmem_read_bytes +=
        static_cast<double>(dims.seq_len) * dims.seq_len * 2.0;
    c.cuda_flops += bh * static_cast<double>(dims.seq_len) * dims.seq_len;
  }
  s.launch("fa2.fused_mha", c);
  return {true, "", s.total_us()};
}

// PyTorch Compile: dispatches FA2 plus a small guard/prologue kernel.
MhaSimResult simulate_compile(const mha::MhaDims& dims,
                              masks::PatternKind pattern,
                              sparse::BsrCache& cache, gpusim::Stream& s) {
  KernelCost guard;  // graph-guard + layout prologue: launch-latency only
  guard.gmem_read_bytes = 1024;
  s.launch("compile.guard", guard);
  return simulate_fa2(dims, pattern, cache, s);
}

// FlexAttention: arbitrary-pattern block mask at fixed coarse (128, 128)
// granularity; partial blocks recompute the score_mod per element.
MhaSimResult simulate_flex(const mha::MhaDims& dims, sparse::BsrCache& cache,
                           gpusim::Stream& s) {
  const mha::BlockwiseParams params{128, 128, /*num_warps=*/8};
  const sparse::BsrMask& bsr = cache.at(128, 128);
  KernelCost c = mha::blockwise_cost(dims, bsr, params, s.device());
  // score_mod recomputation on every element of every partial block
  // (instead of STOF's deduplicated broadcast bitmaps).
  const double bh = static_cast<double>(dims.instances());
  c.cuda_flops += bh * static_cast<double>(bsr.part_count()) * 128.0 * 128.0 * 4.0;
  // Triton codegen: shallower pipelining than the hand-tuned kernel.
  c.overlap = 0.75;
  s.launch("flex.fused_mha", c);
  return {true, "", s.total_us()};
}

// ByteTransformer: on-chip score tile, dense, seq_len <= 1024 only.
MhaSimResult simulate_byte(const mha::MhaDims& dims, gpusim::Stream& s) {
  if (dims.seq_len > 1024) {
    return {false, "sequence length > 1024 unsupported", 0};
  }
  const std::int64_t bh = dims.instances();
  const double n = static_cast<double>(dims.seq_len);
  const double d = static_cast<double>(dims.head_size);
  KernelCost c;
  c.tc_flops = 2.0 * bh * n * n * d * 2.0;
  c.cuda_flops = bh * n * n * 6.0;  // mask subtract + softmax on-chip
  c.gmem_read_bytes = bh * 3.0 * n * d * 2.0 + n * n * 2.0;  // QKV + mask
  c.gmem_write_bytes = bh * n * d * 2.0;
  c.smem_bytes = bh * (2.0 * n * d + n * n) * 2.0;
  // Short sequences hold the score tile fully on-chip; longer ones use the
  // grouped-GEMM path over 256-column panels (paper §2.2).
  const std::int64_t tile_rows = std::min<std::int64_t>(dims.seq_len, 64);
  const std::int64_t panel = std::min<std::int64_t>(dims.seq_len, 256);
  const std::int64_t req_smem =
      (tile_rows * panel + 2 * panel * dims.head_size) * 2;
  const auto occ = gpusim::occupancy(s.device(), req_smem, 8);
  if (occ.blocks_per_sm == 0) {
    return {false, "score tile exceeds shared memory", 0};
  }
  c.occupancy = occ.fraction;
  c.blocks_per_sm = occ.blocks_per_sm;
  c.grid_blocks = bh * ((dims.seq_len + tile_rows - 1) / tile_rows);
  c.overlap = 0.8;
  s.launch("byte.fused_mha", c);
  return {true, "", s.total_us()};
}

// MCFuser: loop-fused GEMM chain with FP32 score workspace in HBM.
MhaSimResult simulate_mcfuser(const mha::MhaDims& dims, gpusim::Stream& s) {
  const std::int64_t bh = dims.instances();
  const double n = static_cast<double>(dims.seq_len);
  const double d = static_cast<double>(dims.head_size);
  const double workspace =
      static_cast<double>(bh) * n * n * 4.0 * 3.0;  // triple FP32 buffers
  if (workspace > 0.85 * static_cast<double>(s.device().dram_bytes)) {
    return {false, "score workspace exceeds device memory", 0};
  }
  KernelCost c;
  c.tc_flops = 2.0 * bh * n * n * d * 2.0;
  c.cuda_flops = bh * n * n * 7.0;  // mask subtract + softmax over workspace
  c.gmem_read_bytes =
      bh * 3.0 * n * d * 2.0 + n * n * 2.0 + bh * n * n * 4.0;
  c.gmem_write_bytes = bh * n * d * 2.0 + bh * n * n * 4.0;
  c.smem_bytes = bh * n * n * 4.0;
  // Loop-structure scheduling without hardware details (paper §2.2):
  // bank conflicts unaddressed, modest occupancy, shallow pipeline.
  c.bank_conflict_factor = 2.0;
  c.occupancy = 0.35;
  c.blocks_per_sm = 1;
  c.grid_blocks = bh * ((dims.seq_len + 63) / 64);
  c.overlap = 0.5;
  s.launch("mcfuser.fused_chain", c);
  return {true, "", s.total_us()};
}

MhaSimResult simulate_stof(const mha::MhaDims& dims, sparse::BsrCache& cache,
                           gpusim::Stream& s) {
  mha::UnifiedMha mha(dims, cache.mask(), s.device());
  mha.simulate(s);
  return {true, "", s.total_us()};
}

}  // namespace

MhaSimResult simulate_mha(Method method, const mha::MhaDims& dims,
                          masks::PatternKind pattern, sparse::BsrCache& cache,
                          gpusim::Stream& stream) {
  dims.validate();
  STOF_EXPECTS(cache.mask().seq_len() == dims.seq_len,
               "mask must match seq_len");
  switch (method) {
    case Method::kPytorchNative: return simulate_native(dims, stream);
    case Method::kPytorchCompile:
      return simulate_compile(dims, pattern, cache, stream);
    case Method::kFlashAttention2:
      return simulate_fa2(dims, pattern, cache, stream);
    case Method::kFlexAttention: return simulate_flex(dims, cache, stream);
    case Method::kByteTransformer: return simulate_byte(dims, stream);
    case Method::kMcfuser: return simulate_mcfuser(dims, stream);
    case Method::kBolt:
      return {false, "Bolt has no MHA-specific optimization (paper §5.1.2)",
              0};
    case Method::kStof: return simulate_stof(dims, cache, stream);
  }
  STOF_CHECK(false, "unreachable");
}

TensorH run_mha_functional(Method method, const mha::MhaDims& dims,
                           masks::PatternKind pattern,
                           sparse::BsrCache& cache, const TensorH& q,
                           const TensorH& k, const TensorH& v) {
  (void)pattern;
  switch (method) {
    case Method::kFlexAttention: {
      // FlexAttention's actual compute path is block-sparse at (128, 128).
      const auto& bsr = cache.at(128, 128);
      return mha::blockwise_attention(dims, q, k, v, bsr,
                                      mha::BlockwiseParams{128, 128, 8});
    }
    case Method::kStof: {
      mha::UnifiedMha mha(dims, cache.mask(), gpusim::a100());
      gpusim::Stream scratch{gpusim::a100()};
      return mha.run(q, k, v, scratch);
    }
    default:
      // Dense methods (native/compile/FA2/Byte/MCFuser) compute the exact
      // masked attention; the reference is their functional semantics.
      return mha::reference_attention(dims, q, k, v, cache.mask());
  }
}

}  // namespace stof::baselines
