// End-to-end fusion plans of the comparison methods (paper §5.3).
//
// Each baseline's fusion behaviour is encoded as a deterministic scheme
// over the model graph:
//
//   PyTorch Native   — fully detached: one kernel per operator.
//   PyTorch Compile  — MHA sub-graphs dispatched to FA2; maximal runs of
//                      MI operators fused by the inductor; CI detached.
//   ByteTransformer  — same structure with its hand-fused MHA kernel.
//   MCFuser          — MHA via its loop-fused chain; downstream CI+CI
//                      chains fused when dimension compatible; MI detached
//                      (MCFuser targets compute-intensive chains only).
//   Bolt             — every GEMM fused with its trailing MI epilogue
//                      (CUTLASS epilogue visitors); no CI+CI, no MHA
//                      sub-graph fusion (ScoreGemm absorbs mask+softmax as
//                      an epilogue, PvGemm stands alone).
//   STOF             — starts from the search engine's initial scheme and
//                      is then tuned (see stof::tuner); the plan here is
//                      the untuned initialization.
#pragma once

#include "stof/baselines/mha_methods.hpp"
#include "stof/graph/graph.hpp"
#include "stof/models/executor.hpp"

namespace stof::baselines {

/// The deterministic (untuned) execution plan of `method` over `g`.
models::ExecutionPlan e2e_plan(Method method, const graph::Graph& g);

/// Detached plan with only the MHA sub-graphs fused (the conservative
/// "MHA-only" layout; also the search engine's second start point).
models::ExecutionPlan mha_fused_detached_plan(const graph::Graph& g);

/// STOF's rule-based initial scheme (paper §4.4 initialization): MHA
/// sub-graphs fused, MI runs fused, CI+CI chains seeded only when the
/// analytical model predicts the chain wins on the target device (the
/// §3.2 conclusion that CI+CI fusion pays off only at small scales).
/// Without a device, a row-count threshold stands in for the prediction.
models::ExecutionPlan stof_initial_plan(
    const graph::Graph& g, const gpusim::DeviceSpec* device = nullptr);

}  // namespace stof::baselines
