// Stream timeline: an ordered record of simulated kernel launches.
//
// Operators and fused templates push their KernelCost onto the Stream of
// the executor that ran them; the Stream converts each to simulated time
// against the active DeviceSpec and keeps per-kernel records so benches can
// report both end-to-end time and per-phase breakdowns (Fig. 14).
#pragma once

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::gpusim {

struct KernelRecord {
  std::string name;
  KernelCost cost;
  double time_us = 0;
};

/// Ordered sequence of simulated kernel launches on one device.
class Stream {
 public:
  explicit Stream(DeviceSpec device) : device_(std::move(device)) {}

  const DeviceSpec& device() const { return device_; }

  /// Record a kernel launch; returns its simulated time in microseconds.
  double launch(std::string name, const KernelCost& cost) {
    KernelRecord rec{std::move(name), cost, estimate_time_us(cost, device_)};
    if (telemetry::enabled()) record_telemetry(rec);
    total_us_ += rec.time_us;
    records_.push_back(std::move(rec));
    return records_.back().time_us;
  }

  /// Record a fixed-duration event whose time was computed by an external
  /// model (e.g. the cluster collective α–β model) instead of the kernel
  /// cost estimator.  `wire_bytes` is the event's data movement, kept in
  /// the record's gmem accounting so per-kernel telemetry and Chrome
  /// traces report collective traffic alongside kernel traffic.
  double launch_timed(std::string name, double time_us, double wire_bytes) {
    STOF_EXPECTS(time_us >= 0 && wire_bytes >= 0);
    KernelCost cost;
    cost.gmem_read_bytes = wire_bytes;
    KernelRecord rec{std::move(name), cost, time_us};
    if (telemetry::enabled()) record_telemetry(rec);
    total_us_ += rec.time_us;
    records_.push_back(std::move(rec));
    return records_.back().time_us;
  }

  [[nodiscard]] double total_us() const { return total_us_; }
  [[nodiscard]] std::size_t launch_count() const {
    std::size_t n = 0;
    for (const auto& r : records_) n += static_cast<std::size_t>(r.cost.launches);
    return n;
  }
  [[nodiscard]] const std::vector<KernelRecord>& records() const {
    return records_;
  }

  /// Total simulated time grouped by kernel name.
  [[nodiscard]] std::map<std::string, double> time_by_kernel_us() const {
    std::map<std::string, double> by;
    for (const auto& r : records_) by[r.name] += r.time_us;
    return by;
  }

  void clear() {
    records_.clear();
    total_us_ = 0;
  }

 private:
  /// Per-launch accounting under the sim.gpusim.* namespace.  Every metric
  /// is a sum or a histogram bucket count, so recording from concurrent
  /// tuner simulations stays deterministic; simulated cycles are a pure
  /// function of (cost, device) and identical across packed/scalar modes.
  void record_telemetry(const KernelRecord& rec) const {
    const double gmem =
        rec.cost.gmem_read_bytes + rec.cost.gmem_write_bytes;
    const std::int64_t cycles =
        std::llround(rec.time_us * device_.clock_ghz * 1e3);
    telemetry::count("sim.gpusim.launches", rec.cost.launches);
    telemetry::count("sim.gpusim.cycles", cycles);
    telemetry::count("sim.gpusim.gmem_bytes", std::llround(gmem));
    const std::string prefix = "sim.gpusim.kernel." + rec.name;
    telemetry::count(prefix + ".launches", rec.cost.launches);
    telemetry::count(prefix + ".cycles", cycles);
    telemetry::count(prefix + ".gmem_bytes", std::llround(gmem));
    // Bank-conflict penalty: the extra SMEM bytes the conflict multiplier
    // costs this launch (0 when padding removed conflicts).
    telemetry::count(
        prefix + ".bank_conflict_excess_bytes",
        std::llround(rec.cost.smem_bytes *
                     (rec.cost.bank_conflict_factor - 1.0)));
    // Occupancy as a percent histogram: commutative across threads, unlike
    // a last-write-wins gauge.
    telemetry::observe(prefix + ".occupancy_pct", rec.cost.occupancy * 100.0);
    telemetry::observe("sim.gpusim.kernel_us", rec.time_us);
  }

  DeviceSpec device_;
  std::vector<KernelRecord> records_;
  double total_us_ = 0;
};

}  // namespace stof::gpusim
