#include "stof/gpusim/trace.hpp"

#include <iomanip>
#include <sstream>

#include "stof/telemetry/telemetry.hpp"

namespace stof::gpusim {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_chrome_trace(const Stream& stream, std::ostream& os,
                        const std::string& process_name,
                        bool attach_telemetry) {
  os << "{\"traceEvents\":[";
  // Process metadata record.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":";
  write_escaped(os, process_name + " on " + stream.device().name);
  os << "}}";

  double t = 0;
  for (const auto& rec : stream.records()) {
    os << ",{\"name\":";
    write_escaped(os, rec.name);
    os << ",\"ph\":\"X\",\"pid\":1,\"tid\":1";
    os << ",\"ts\":" << std::setprecision(12) << t;
    os << ",\"dur\":" << rec.time_us;
    os << ",\"args\":{";
    os << "\"tc_gflops\":" << rec.cost.tc_flops / 1e9;
    os << ",\"cuda_gflops\":" << rec.cost.cuda_flops / 1e9;
    os << ",\"gmem_mb\":"
       << (rec.cost.gmem_read_bytes + rec.cost.gmem_write_bytes) / 1e6;
    os << ",\"occupancy\":" << rec.cost.occupancy;
    os << ",\"grid_blocks\":" << rec.cost.grid_blocks;
    os << ",\"launches\":" << rec.cost.launches;
    os << "}}";
    t += rec.time_us;
  }
  os << "]";
  if (attach_telemetry) {
    os << ",\"metadata\":" << telemetry::dump_json();
  }
  os << "}";
}

std::string chrome_trace_json(const Stream& stream,
                              const std::string& process_name,
                              bool attach_telemetry) {
  std::ostringstream os;
  write_chrome_trace(stream, os, process_name, attach_telemetry);
  return os.str();
}

}  // namespace stof::gpusim
