// SM occupancy calculation (paper Eq. 2, middle line).
//
// Occupancy is the fraction of a SM's resident-warp slots a kernel fills.
// STOF's analytical model scores candidate (BLOCK_M, BLOCK_N, num_warps)
// settings by this quantity: an over-sized sub-block exhausts shared memory
// (few blocks per SM) and over-scheduled warps exhaust the warp budget.
#pragma once

#include <algorithm>
#include <cstdint>

#include "stof/core/check.hpp"
#include "stof/gpusim/device.hpp"

namespace stof::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;   ///< concurrently resident thread blocks per SM
  double fraction = 0.0;   ///< resident warps / max warps, in [0, 1]
};

/// Occupancy of a kernel that needs `req_smem_bytes` shared memory and
/// schedules `num_warps` warps per thread block.
///
/// Implements OCC = num_warps * min(SMEM_SIZE/req_SMEM, MAX_WARP/num_warps)
///                  / MAX_WARP            (paper Eq. 2)
/// A block whose SMEM demand exceeds the SM capacity cannot launch at all
/// (occupancy 0) — the selector uses this to reject infeasible settings.
inline Occupancy occupancy(const DeviceSpec& dev, std::int64_t req_smem_bytes,
                           int num_warps) {
  STOF_EXPECTS(num_warps > 0);
  STOF_EXPECTS(req_smem_bytes >= 0);

  Occupancy occ;
  if (req_smem_bytes > dev.smem_per_sm || num_warps > dev.max_warps_per_sm) {
    return occ;  // infeasible launch
  }
  const std::int64_t by_smem =
      req_smem_bytes == 0 ? dev.max_warps_per_sm
                          : dev.smem_per_sm / req_smem_bytes;
  const std::int64_t by_warps = dev.max_warps_per_sm / num_warps;
  occ.blocks_per_sm = static_cast<int>(std::min(by_smem, by_warps));
  occ.fraction = static_cast<double>(num_warps) * occ.blocks_per_sm /
                 dev.max_warps_per_sm;
  occ.fraction = std::min(occ.fraction, 1.0);
  return occ;
}

/// Throughput efficiency as a function of occupancy.
///
/// Real SMs need roughly half their warp slots filled to hide ALU and
/// memory latency; beyond that, extra occupancy does not add throughput.
/// The 0.55 knee is a standard rule of thumb for latency hiding.
inline double occupancy_efficiency(double occ_fraction) {
  constexpr double knee = 0.55;
  if (occ_fraction <= 0) return 0.0;
  return std::min(1.0, occ_fraction / knee);
}

/// Tail-effect utilization of a grid of `blocks` thread blocks.
///
/// A grid smaller than one full wave leaves SMs idle; a grid slightly
/// larger than a whole number of waves pays a mostly-idle final wave.
inline double grid_utilization(const DeviceSpec& dev, std::int64_t blocks,
                               int blocks_per_sm) {
  STOF_EXPECTS(blocks >= 0);
  if (blocks == 0) return 1.0;
  const std::int64_t wave =
      static_cast<std::int64_t>(dev.sm_count) * std::max(1, blocks_per_sm);
  const std::int64_t waves = (blocks + wave - 1) / wave;
  return static_cast<double>(blocks) / static_cast<double>(waves * wave);
}

}  // namespace stof::gpusim
