#include "stof/gpusim/device.hpp"

namespace stof::gpusim {

DeviceSpec rtx4090() {
  DeviceSpec d;
  d.name = "RTX4090";
  d.sm_count = 128;
  d.smem_per_sm = 128 * 1024;  // paper Table 3: 128KB L1/SMEM per SM
  d.max_warps_per_sm = 48;
  d.dram_bytes = 24ll * 1024 * 1024 * 1024;
  d.dram_gbps = 1008.0;
  d.l2_bytes = 72ll * 1024 * 1024;
  d.tc_fp16_tflops = 330.3;   // FP16 with FP32 accumulate
  d.cuda_fp32_tflops = 82.6;
  d.clock_ghz = 2.52;
  d.launch_overhead_us = 2.5;  // consumer parts have lower launch latency
  return d;
}

DeviceSpec a100() {
  DeviceSpec d;
  d.name = "A100";
  d.sm_count = 108;
  d.smem_per_sm = 192 * 1024;  // paper Table 3: 192KB L1/SMEM per SM
  d.max_warps_per_sm = 64;
  d.dram_bytes = 40ll * 1024 * 1024 * 1024;
  d.dram_gbps = 1555.0;
  d.l2_bytes = 40ll * 1024 * 1024;
  d.tc_fp16_tflops = 312.0;
  d.cuda_fp32_tflops = 19.5;
  d.clock_ghz = 1.41;
  d.launch_overhead_us = 3.5;
  return d;
}

}  // namespace stof::gpusim
