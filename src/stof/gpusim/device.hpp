// GPU device model.
//
// STOF's kernels are evaluated against a DeviceSpec instead of live silicon
// (this reproduction runs on a CPU-only host).  The spec carries exactly the
// hardware quantities the paper's analytical model consumes — SM count,
// shared memory per SM, warp limits (Eq. 2) — plus the throughput numbers
// needed to turn a kernel's work accounting into simulated time: DRAM
// bandwidth, tensor-core and CUDA-core FLOP rates, clock, and launch
// latency.  Presets mirror the paper's Table 3 (RTX 4090 and A100 PCIe).
#pragma once

#include <cstdint>
#include <string>

namespace stof::gpusim {

/// Static description of a simulated GPU.
struct DeviceSpec {
  std::string name;

  // Execution resources (used by the paper's Eq. 1 / Eq. 2 analysis).
  int sm_count = 0;                 ///< streaming multiprocessors
  std::int64_t smem_per_sm = 0;     ///< usable shared memory per SM (bytes)
  int max_warps_per_sm = 0;         ///< resident-warp limit per SM
  int warp_size = 32;

  // Memory system.
  std::int64_t dram_bytes = 0;      ///< device memory capacity
  double dram_gbps = 0;             ///< DRAM bandwidth (GB/s)
  std::int64_t l2_bytes = 0;        ///< L2 capacity (tracked for reporting)
  double smem_bytes_per_cycle_per_sm = 128;  ///< 32 banks x 4B

  // Compute throughput.
  double tc_fp16_tflops = 0;        ///< tensor-core FP16 (FP32 accumulate)
  double cuda_fp32_tflops = 0;      ///< scalar CUDA-core FP32
  double clock_ghz = 0;

  // Host-side kernel launch latency (microseconds per launch).
  double launch_overhead_us = 3.0;
  /// Framework (eager-mode) operator dispatch latency per op — paid only
  /// by detached eager execution, not by compiled fused kernels.
  double dispatch_overhead_us = 6.0;

  /// Peak shared-memory bandwidth of the whole chip in bytes/second.
  [[nodiscard]] double smem_bandwidth_bps() const {
    return smem_bytes_per_cycle_per_sm * sm_count * clock_ghz * 1e9;
  }
};

/// NVIDIA RTX 4090 (Ada) — paper Table 3, column GPU1.
DeviceSpec rtx4090();

/// NVIDIA A100 PCIe 40GB (Ampere) — paper Table 3, column GPU2.
DeviceSpec a100();

}  // namespace stof::gpusim
