// Kernel cost accounting and time estimation.
//
// Every simulated kernel reports *what it did* — tensor-core FLOPs, scalar
// FLOPs, global-memory traffic, shared-memory traffic with a bank-conflict
// multiplier, grid shape, occupancy — and this module turns the accounting
// into simulated time on a DeviceSpec.  The model is deliberately
// first-order:
//
//   time = bottleneck + (1 - overlap) * (sum of others) + launch latency
//
// where the bottleneck is the largest of the compute / DRAM / SMEM phase
// times scaled by occupancy efficiency and grid (tail) utilization.
// `overlap = 1` models a perfectly software-pipelined kernel (cp.async
// double buffering); `overlap = 0` a kernel that serializes load and math.
//
// This captures every effect the paper's evaluation turns on: block
// skipping removes FLOPs *and* bytes, fusion removes launches and
// intermediate DRAM round-trips, bank-conflict padding divides the SMEM
// term, and occupancy mediates the BLOCK_M/BLOCK_N/num_warps trade-off.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "stof/core/check.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/gpusim/occupancy.hpp"

namespace stof::gpusim {

/// Work performed by one kernel launch.
struct KernelCost {
  double tc_flops = 0;          ///< FLOPs issued to tensor cores (FP16)
  double cuda_flops = 0;        ///< FLOPs issued to CUDA cores (FP32)
  double gmem_read_bytes = 0;   ///< global-memory bytes read
  double gmem_write_bytes = 0;  ///< global-memory bytes written
  double smem_bytes = 0;        ///< shared-memory bytes moved (base)
  double bank_conflict_factor = 1.0;  ///< >= 1; 1 means conflict-free
  double occupancy = 1.0;       ///< resident-warp fraction, in [0, 1]
  std::int64_t grid_blocks = 1;  ///< thread blocks in the grid
  int blocks_per_sm = 1;        ///< resident blocks per SM at this occupancy
  int launches = 1;             ///< kernel launches this record covers
  double overlap = 0.7;         ///< [0,1] fraction of non-bottleneck hidden
  double dispatch_us = 0;       ///< eager-mode framework dispatch latency

  KernelCost& operator+=(const KernelCost& o) {
    tc_flops += o.tc_flops;
    cuda_flops += o.cuda_flops;
    gmem_read_bytes += o.gmem_read_bytes;
    gmem_write_bytes += o.gmem_write_bytes;
    smem_bytes += o.smem_bytes;
    launches += o.launches;
    // Structural fields keep the first record's values; summation is only
    // used for aggregate reporting, never for time estimation.
    return *this;
  }
};

/// DRAM traffic for an operand of `bytes` that the kernel logically reads
/// `reuse` times (e.g., the B matrix of a GEMM is read once per row block).
///
/// An L2-resident operand is fetched from DRAM once no matter how often it
/// is re-read; a larger operand pays one pass per L2-sized working set,
/// capped at the logical reuse count.
inline double effective_operand_bytes(double bytes, double reuse,
                                      const DeviceSpec& dev) {
  STOF_EXPECTS(bytes >= 0 && reuse >= 1.0);
  if (bytes <= static_cast<double>(dev.l2_bytes)) return bytes;
  const double passes =
      std::min(reuse, std::ceil(bytes / static_cast<double>(dev.l2_bytes)));
  return bytes * passes;
}

/// Simulated execution time of one kernel launch, in microseconds.
inline double estimate_time_us(const KernelCost& c, const DeviceSpec& dev) {
  STOF_EXPECTS(c.occupancy >= 0 && c.occupancy <= 1.0);
  STOF_EXPECTS(c.bank_conflict_factor >= 1.0);

  const double eff = occupancy_efficiency(c.occupancy);
  const double util = grid_utilization(dev, c.grid_blocks, c.blocks_per_sm);
  const double scale = std::max(1e-6, eff * util);

  const double tc_us =
      c.tc_flops <= 0 ? 0 : c.tc_flops / (dev.tc_fp16_tflops * 1e12 * scale) * 1e6;
  const double cuda_us =
      c.cuda_flops <= 0
          ? 0
          : c.cuda_flops / (dev.cuda_fp32_tflops * 1e12 * scale) * 1e6;
  const double compute_us = tc_us + cuda_us;

  const double dram_us = (c.gmem_read_bytes + c.gmem_write_bytes) /
                         (dev.dram_gbps * 1e9) * 1e6;

  const double smem_us = c.smem_bytes * c.bank_conflict_factor /
                         (dev.smem_bandwidth_bps() * std::max(1e-6, util)) *
                         1e6;

  const double total = compute_us + dram_us + smem_us;
  const double bottleneck = std::max({compute_us, dram_us, smem_us});
  const double exec_us = bottleneck + (1.0 - c.overlap) * (total - bottleneck);

  return exec_us + c.launches * dev.launch_overhead_us + c.dispatch_us;
}

}  // namespace stof::gpusim
