// Chrome-trace export of a simulated Stream.
//
// Writes the kernel timeline in the Trace Event Format consumed by
// chrome://tracing and https://ui.perfetto.dev, so a simulated inference
// can be inspected visually: one row of back-to-back kernel slices, with
// the cost-model accounting attached as slice arguments.
#pragma once

#include <ostream>
#include <string>

#include "stof/gpusim/timeline.hpp"

namespace stof::gpusim {

/// Serialize `stream` as a Trace Event Format JSON document.
/// `process_name` labels the trace row (e.g. the method name).
void write_chrome_trace(const Stream& stream, std::ostream& os,
                        const std::string& process_name = "gpusim");

/// Convenience: the trace as a string.
std::string chrome_trace_json(const Stream& stream,
                              const std::string& process_name = "gpusim");

}  // namespace stof::gpusim
