// Chrome-trace export of a simulated Stream.
//
// Writes the kernel timeline in the Trace Event Format consumed by
// chrome://tracing and https://ui.perfetto.dev, so a simulated inference
// can be inspected visually: one row of back-to-back kernel slices, with
// the cost-model accounting attached as slice arguments.
#pragma once

#include <ostream>
#include <string>

#include "stof/gpusim/timeline.hpp"

namespace stof::gpusim {

/// Serialize `stream` as a Trace Event Format JSON document.
/// `process_name` labels the trace row (e.g. the method name).
/// With `attach_telemetry` the current global telemetry registry snapshot
/// is embedded as a top-level `"metadata"` object (the `dump_json` payload),
/// so a trace carries the counters of the run that produced it.  Perfetto
/// and chrome://tracing ignore unknown top-level keys.
void write_chrome_trace(const Stream& stream, std::ostream& os,
                        const std::string& process_name = "gpusim",
                        bool attach_telemetry = false);

/// Convenience: the trace as a string.
std::string chrome_trace_json(const Stream& stream,
                              const std::string& process_name = "gpusim",
                              bool attach_telemetry = false);

}  // namespace stof::gpusim
