#include "stof/ops/fused.hpp"

#include <cmath>

#include "stof/core/check.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/parallel/parallel_for.hpp"

namespace stof::ops {

// ---- Bias + LayerNorm -------------------------------------------------------

void fused_bias_layernorm(const TensorH& x, const TensorH& bias,
                          const TensorH& gamma, const TensorH& beta,
                          TensorH& y, float eps) {
  STOF_EXPECTS(x.shape().rank() == 2);
  const std::int64_t rows = x.shape()[0];
  const std::int64_t n = x.shape()[1];
  STOF_EXPECTS(bias.shape() == (Shape{n}));
  STOF_EXPECTS(gamma.shape() == (Shape{n}) && beta.shape() == (Shape{n}));
  STOF_EXPECTS(y.shape() == x.shape());

  parallel_for(0, rows, [&](std::int64_t i) {
    // Single pass: biased values live in registers, as in the fused kernel.
    float mean = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      mean += float(x.at(i, j)) + float(bias.at(j));
    }
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float d = float(x.at(i, j)) + float(bias.at(j)) - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + eps);
    for (std::int64_t j = 0; j < n; ++j) {
      const float v = float(x.at(i, j)) + float(bias.at(j));
      y.at(i, j) = half((v - mean) * inv_std * float(gamma.at(j)) +
                        float(beta.at(j)));
    }
  });
}

gpusim::KernelCost fused_bias_layernorm_cost(std::int64_t rows,
                                             std::int64_t n,
                                             const NormParams& p,
                                             const gpusim::DeviceSpec& dev) {
  // Same reduction structure as LayerNorm but reads x exactly once and
  // never materializes the biased intermediate.
  gpusim::KernelCost c = layernorm_cost(rows, n, p, dev);
  c.cuda_flops += static_cast<double>(rows * n);  // the adds
  return c;
}

std::vector<gpusim::KernelCost> detached_bias_layernorm_cost(
    std::int64_t rows, std::int64_t n, const EwParams& ew,
    const NormParams& nrm, const gpusim::DeviceSpec& dev) {
  const double bytes = static_cast<double>(rows * n) * 2.0;
  std::vector<gpusim::KernelCost> seq = {
      elementwise_cost(rows * n, 1.0, bytes, bytes, ew, dev),  // bias
      layernorm_cost(rows, n, nrm, dev),                       // layernorm
  };
  // Detached operators run eagerly: each pays framework dispatch.
  for (auto& c : seq) c.dispatch_us = dev.dispatch_overhead_us;
  return seq;
}

// ---- GEMM + LayerNorm --------------------------------------------------------

void fused_gemm_layernorm(const TensorH& a, const TensorH& b,
                          const TensorH& gamma, const TensorH& beta,
                          TensorH& y, float eps) {
  STOF_EXPECTS(a.shape().rank() == 3);
  const std::int64_t batch = a.shape()[0];
  const std::int64_t m = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  STOF_EXPECTS(y.shape() == (Shape{batch, m, n}));

  TensorH tmp(Shape{batch, m, n});
  gemm(a, b, tmp);
  // The epilogue normalizes each output row while it is still on-chip; the
  // functional result is identical to a separate LayerNorm pass.
  TensorH flat_in(Shape{batch * m, n});
  for (std::int64_t i = 0; i < batch * m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      flat_in.at(i, j) = tmp.at(i / m, i % m, j);
    }
  }
  TensorH flat_out(Shape{batch * m, n});
  layernorm(flat_in, gamma, beta, flat_out, eps);
  for (std::int64_t i = 0; i < batch * m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      y.at(i / m, i % m, j) = flat_out.at(i, j);
    }
  }
}

gpusim::KernelCost fused_gemm_layernorm_cost(const GemmDims& dims,
                                             const GemmParams& p,
                                             const gpusim::DeviceSpec& dev) {
  // The LayerNorm epilogue needs the whole output row per block, so the
  // template runs with an effective BLOCK_N of n: B is re-read once per row
  // block, and a (BLOCK_M x n) FP32 row buffer joins the stage buffers in
  // shared memory.  That buffer is what destroys occupancy at large n.
  const double m = static_cast<double>(dims.m);
  const double n = static_cast<double>(dims.n);
  const double k = static_cast<double>(dims.k);
  const double batch = static_cast<double>(dims.batch);
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  c.tc_flops = 2.0 * batch * m * n * k;
  c.cuda_flops = 8.0 * batch * m * n;  // the normalization epilogue

  const double grid_m = std::ceil(m / p.block_m);
  c.gmem_read_bytes =
      gpusim::effective_operand_bytes(batch * m * k * kElem, 1.0, dev) +
      gpusim::effective_operand_bytes(k * n * kElem, batch * grid_m, dev);
  c.gmem_write_bytes = batch * m * n * kElem;
  c.smem_bytes = batch * (m * k + grid_m * k * n) * kElem;

  const std::int64_t stage_smem =
      static_cast<std::int64_t>(p.num_stages) *
      (static_cast<std::int64_t>(p.block_m) + p.block_n) * p.block_k * 2;
  const std::int64_t row_buffer =
      static_cast<std::int64_t>(p.block_m) * dims.n * 4;  // FP32 accumulators
  const auto occ = gpusim::occupancy(dev, stage_smem + row_buffer, p.num_warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = static_cast<std::int64_t>(batch * grid_m);
  c.overlap = std::min(0.9, 0.45 + 0.15 * p.num_stages);
  return c;
}

std::vector<gpusim::KernelCost> detached_gemm_layernorm_cost(
    const GemmDims& dims, const GemmParams& gp, const NormParams& nrm,
    const gpusim::DeviceSpec& dev) {
  std::vector<gpusim::KernelCost> seq = {
      gemm_cost(dims, gp, dev),
      layernorm_cost(dims.batch * dims.m, dims.n, nrm, dev),
  };
  for (auto& c : seq) c.dispatch_us = dev.dispatch_overhead_us;
  return seq;
}

// ---- GEMM + GEMM ---------------------------------------------------------------

void fused_gemm_gemm(const TensorH& a, const TensorH& b1, const TensorH& b2,
                     TensorH& c) {
  STOF_EXPECTS(a.shape().rank() == 3);
  const std::int64_t batch = a.shape()[0];
  const std::int64_t m = a.shape()[1];
  const std::int64_t n1 = b1.shape()[1];
  const std::int64_t n2 = b2.shape()[1];
  STOF_EXPECTS(b2.shape()[0] == n1, "chain inner dimensions must agree");
  STOF_EXPECTS(c.shape() == (Shape{batch, m, n2}));

  // The fused kernel keeps the intermediate row panel on-chip; functionally
  // this is two chained GEMMs with FP16 staging of the intermediate (the
  // on-chip panel is stored in FP16 smem exactly like the detached path's
  // global round-trip, so numerics match bit-for-bit).
  TensorH tmp(Shape{batch, m, n1});
  gemm(a, b1, tmp);
  gemm(tmp, b2, c);
}

gpusim::KernelCost fused_gemm_gemm_cost(const GemmChainDims& dims,
                                        const GemmParams& p,
                                        const gpusim::DeviceSpec& dev) {
  const double m = static_cast<double>(dims.m);
  const double k = static_cast<double>(dims.k);
  const double n1 = static_cast<double>(dims.n1);
  const double n2 = static_cast<double>(dims.n2);
  const double batch = static_cast<double>(dims.batch);
  constexpr double kElem = 2.0;

  gpusim::KernelCost c;
  // Chimera-style schedule: block (i, j2) computes the full intermediate
  // row panel (BLOCK_M x n1) on-chip and contracts it against B2's j2-tile.
  // Splitting over n2 keeps the grid populated at small m, but the panel is
  // recomputed once per column tile — the redundant FLOPs that make CI+CI
  // fusion lose at large batch*seq (paper §3.2).
  const double grid_m = std::ceil(m / p.block_m);
  const double grid_n2 = std::ceil(n2 / p.block_n);
  c.tc_flops = 2.0 * batch * m * (grid_n2 * k * n1 + n1 * n2);
  c.gmem_read_bytes =
      gpusim::effective_operand_bytes(batch * m * k * kElem, grid_n2, dev) +
      gpusim::effective_operand_bytes(k * n1 * kElem,
                                      batch * grid_m * grid_n2, dev) +
      gpusim::effective_operand_bytes(n1 * n2 * kElem, batch * grid_m, dev);
  c.gmem_write_bytes = batch * m * n2 * kElem;
  c.smem_bytes =
      batch * grid_n2 * (m * k + grid_m * k * n1) * kElem +
      batch * grid_m * n1 * n2 * kElem;

  const std::int64_t stage_smem =
      static_cast<std::int64_t>(p.num_stages) *
      (static_cast<std::int64_t>(p.block_m) + p.block_n) * p.block_k * 2;
  const std::int64_t panel =
      static_cast<std::int64_t>(p.block_m) * dims.n1 * 2;  // FP16 row panel
  const auto occ = gpusim::occupancy(dev, stage_smem + panel, p.num_warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = static_cast<std::int64_t>(batch * grid_m * grid_n2);
  c.overlap = std::min(0.9, 0.45 + 0.15 * p.num_stages);
  return c;
}

std::vector<gpusim::KernelCost> detached_gemm_gemm_cost(
    const GemmChainDims& dims, const GemmParams& gp,
    const gpusim::DeviceSpec& dev) {
  std::vector<gpusim::KernelCost> seq = {
      gemm_cost({dims.batch, dims.m, dims.n1, dims.k}, gp, dev),
      gemm_cost({dims.batch, dims.m, dims.n2, dims.n1}, gp, dev),
  };
  for (auto& c : seq) c.dispatch_us = dev.dispatch_overhead_us;
  return seq;
}

double sequence_time_us(const std::vector<gpusim::KernelCost>& seq,
                        const gpusim::DeviceSpec& dev) {
  double total = 0;
  for (const auto& c : seq) total += gpusim::estimate_time_us(c, dev);
  return total;
}

}  // namespace stof::ops
