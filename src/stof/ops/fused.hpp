// Fused operator templates for the three mixes of the paper's Fig. 3:
//
//   * Bias + LayerNorm   (MI + MI)  — one pass over the rows, halving DRAM
//     traffic and saving a launch; essentially always profitable.
//   * GEMM + LayerNorm   (CI + MI)  — the LayerNorm epilogue needs a whole
//     output row resident per thread block, so the template pins
//     BLOCK_N = n.  At small hidden sizes the saved intermediate round-trip
//     dominates (large speedups); at large hidden sizes the row buffer
//     crushes occupancy and the fused kernel loses — exactly the
//     hidden-512-wins / hidden-1024-loses shape of Fig. 3.
//   * GEMM + GEMM        (CI + CI)  — the chain keeps the (BLOCK_M x n1)
//     intermediate on-chip, but every row block re-reads both weight
//     matrices.  With few row blocks (small batch*seq) the launch and
//     round-trip savings win; with many, the weight re-reads swamp them —
//     the paper's small-scale-only benefit for CI+CI fusion.
//
// Each fused op ships a functional implementation (used by tests to prove
// fused == detached numerics) and a cost function (used by benches and the
// tuner).  Detached cost helpers compose the unfused kernel sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/tensor.hpp"
#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/ops/elementwise.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/ops/normalize.hpp"

namespace stof::ops {

// ---- Bias + LayerNorm (MI + MI) -------------------------------------------

/// y = LayerNorm(x + bias) * gamma + beta, computed in one pass.
void fused_bias_layernorm(const TensorH& x, const TensorH& bias,
                          const TensorH& gamma, const TensorH& beta,
                          TensorH& y, float eps = 1e-5f);

gpusim::KernelCost fused_bias_layernorm_cost(std::int64_t rows,
                                             std::int64_t n,
                                             const NormParams& params,
                                             const gpusim::DeviceSpec& dev);

/// Detached sequence: bias kernel + layernorm kernel (two launches).
std::vector<gpusim::KernelCost> detached_bias_layernorm_cost(
    std::int64_t rows, std::int64_t n, const EwParams& ew,
    const NormParams& nrm, const gpusim::DeviceSpec& dev);

// ---- GEMM + LayerNorm (CI + MI) --------------------------------------------

/// y = LayerNorm(a x b) * gamma + beta. a: (batch, m, k); b: (k, n).
void fused_gemm_layernorm(const TensorH& a, const TensorH& b,
                          const TensorH& gamma, const TensorH& beta,
                          TensorH& y, float eps = 1e-5f);

gpusim::KernelCost fused_gemm_layernorm_cost(const GemmDims& dims,
                                             const GemmParams& params,
                                             const gpusim::DeviceSpec& dev);

std::vector<gpusim::KernelCost> detached_gemm_layernorm_cost(
    const GemmDims& dims, const GemmParams& gp, const NormParams& nrm,
    const gpusim::DeviceSpec& dev);

// ---- GEMM + GEMM (CI + CI) ---------------------------------------------------

/// c = (a x b1) x b2. a: (batch, m, k); b1: (k, n1); b2: (n1, n2).
void fused_gemm_gemm(const TensorH& a, const TensorH& b1, const TensorH& b2,
                     TensorH& c);

/// Dims of the chain; `n1` is the intermediate width.
struct GemmChainDims {
  std::int64_t batch = 1;
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n1 = 0;
  std::int64_t n2 = 0;
};

gpusim::KernelCost fused_gemm_gemm_cost(const GemmChainDims& dims,
                                        const GemmParams& params,
                                        const gpusim::DeviceSpec& dev);

std::vector<gpusim::KernelCost> detached_gemm_gemm_cost(
    const GemmChainDims& dims, const GemmParams& gp,
    const gpusim::DeviceSpec& dev);

/// Total simulated time of a kernel sequence, in microseconds.
double sequence_time_us(const std::vector<gpusim::KernelCost>& seq,
                        const gpusim::DeviceSpec& dev);

}  // namespace stof::ops
