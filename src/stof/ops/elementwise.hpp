// Memory-intensive elementwise operators (bias, activations, residual add).
//
// These are the paper's "MI" category: their simulated time is dominated by
// global-memory traffic, so the cost model charges bytes read/written at
// DRAM bandwidth plus a small CUDA-core FLOP term.  The tunable parameters
// (thread-block size, vector width) shift occupancy and are what the
// parameter-sampling stage of the tuner explores for MI segments.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/tensor.hpp"
#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"

namespace stof::ops {

/// Tunable launch parameters shared by elementwise kernels.
struct EwParams {
  int block_size = 256;       ///< threads per block
  int items_per_thread = 4;   ///< grid-stride vectorization factor

  friend bool operator==(const EwParams&, const EwParams&) = default;
};

/// y = x + bias (bias broadcast over rows). x, y: (rows, n); bias: (n).
void bias_add(const TensorH& x, const TensorH& bias, TensorH& y);

/// y = max(x, 0).
void relu(const TensorH& x, TensorH& y);

/// y = GELU(x), tanh approximation.
void gelu_op(const TensorH& x, TensorH& y);

/// y = a + b (residual connection).
void residual_add(const TensorH& a, const TensorH& b, TensorH& y);

/// Cost of one elementwise kernel touching `read_bytes`/`write_bytes` with
/// `flops_per_element` scalar work over `elements`.
gpusim::KernelCost elementwise_cost(std::int64_t elements,
                                    double flops_per_element,
                                    double read_bytes, double write_bytes,
                                    const EwParams& params,
                                    const gpusim::DeviceSpec& dev);

/// Candidate launch parameters for MI kernels.
std::vector<EwParams> elementwise_param_space();

}  // namespace stof::ops
