#include "stof/ops/gemm.hpp"

#include <cmath>

#include "stof/core/check.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/parallel/parallel_for.hpp"

namespace stof::ops {

float gelu(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
}

namespace {

float apply_epilogue(float acc, Epilogue ep, float bias) {
  switch (ep) {
    case Epilogue::kNone: return acc;
    case Epilogue::kBias: return acc + bias;
    case Epilogue::kBiasRelu: return std::max(0.0f, acc + bias);
    case Epilogue::kBiasGelu: return gelu(acc + bias);
  }
  return acc;
}

}  // namespace

void gemm(const TensorH& a, const TensorH& b, TensorH& c, Epilogue epilogue,
          const TensorH* bias) {
  STOF_EXPECTS(a.shape().rank() == 3, "A must be (batch, m, k)");
  const std::int64_t batch = a.shape()[0];
  const std::int64_t m = a.shape()[1];
  const std::int64_t k = a.shape()[2];

  const bool batched_b = b.shape().rank() == 3;
  STOF_EXPECTS(batched_b || b.shape().rank() == 2,
               "B must be (k, n) or (batch, k, n)");
  const std::int64_t n = batched_b ? b.shape()[2] : b.shape()[1];
  STOF_EXPECTS((batched_b ? b.shape()[1] : b.shape()[0]) == k,
               "inner dimensions must agree");
  if (batched_b) STOF_EXPECTS(b.shape()[0] == batch);
  STOF_EXPECTS(c.shape() == (Shape{batch, m, n}), "C shape mismatch");
  if (epilogue != Epilogue::kNone) {
    STOF_EXPECTS(bias != nullptr && bias->shape() == (Shape{n}),
                 "epilogue requires a (n) bias vector");
  }

  parallel_for(0, batch * m, [&](std::int64_t bm) {
    const std::int64_t bi = bm / m;
    const std::int64_t mi = bm % m;
    for (std::int64_t ni = 0; ni < n; ++ni) {
      float acc = 0.0f;  // FP32 accumulate, as on tensor cores
      for (std::int64_t ki = 0; ki < k; ++ki) {
        const float av = float(a.at(bi, mi, ki));
        const float bv = batched_b ? float(b.at(bi, ki, ni))
                                   : float(b.at(ki, ni));
        acc += av * bv;
      }
      const float bv =
          epilogue == Epilogue::kNone ? 0.0f : float(bias->at(ni));
      c.at(bi, mi, ni) = half(apply_epilogue(acc, epilogue, bv));
    }
  });
}

gpusim::KernelCost gemm_cost(const GemmDims& dims, const GemmParams& p,
                             const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(dims.m > 0 && dims.n > 0 && dims.k > 0 && dims.batch > 0);
  const double m = static_cast<double>(dims.m);
  const double n = static_cast<double>(dims.n);
  const double k = static_cast<double>(dims.k);
  const double batch = static_cast<double>(dims.batch);
  constexpr double kElem = 2.0;  // FP16 bytes

  gpusim::KernelCost c;
  c.tc_flops = 2.0 * batch * m * n * k;

  // Each block streams BLOCK_M*K of A and K*BLOCK_N of B through shared
  // memory; DRAM sees each operand once per L2-sized working set.
  const double grid_m = std::ceil(m / p.block_m);
  const double grid_n = std::ceil(n / p.block_n);
  c.gmem_read_bytes =
      gpusim::effective_operand_bytes(batch * m * k * kElem, grid_n, dev) +
      gpusim::effective_operand_bytes(k * n * kElem, batch * grid_m, dev);
  c.gmem_write_bytes = batch * m * n * kElem;
  // Shared-memory traffic stays per-block (no L2 relief).
  c.smem_bytes = batch * (grid_n * m * k + grid_m * k * n) * kElem;

  // Stage buffers for A and B panels determine the SMEM footprint.
  const std::int64_t req_smem =
      static_cast<std::int64_t>(p.num_stages) *
      (static_cast<std::int64_t>(p.block_m) + p.block_n) * p.block_k * 2;
  const auto occ = gpusim::occupancy(dev, req_smem, p.num_warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = static_cast<std::int64_t>(batch * grid_m * grid_n);
  // Deeper pipelines hide more of the memory phase behind the MMA phase.
  c.overlap = std::min(0.95, 0.45 + 0.15 * p.num_stages);
  return c;
}

std::vector<GemmParams> gemm_param_space() {
  std::vector<GemmParams> space;
  for (int bm : {16, 32, 64, 128}) {
    for (int bn : {32, 64, 128}) {
      for (int bk : {16, 32, 64}) {
        for (int warps : {2, 4, 8}) {
          for (int stages : {2, 3, 4}) {
            space.push_back({bm, bn, bk, warps, stages});
          }
        }
      }
    }
  }
  return space;
}

}  // namespace stof::ops
