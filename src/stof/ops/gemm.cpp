#include "stof/ops/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "stof/core/check.hpp"
#include "stof/core/kernels.hpp"
#include "stof/core/packed.hpp"
#include "stof/core/panel_cache_registry.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/parallel/parallel_for.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::ops {

float gelu(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + 0.044715f * x * x * x)));
}

namespace {

float apply_epilogue(float acc, Epilogue ep, float bias) {
  switch (ep) {
    case Epilogue::kNone: return acc;
    case Epilogue::kBias: return acc + bias;
    case Epilogue::kBiasRelu: return std::max(0.0f, acc + bias);
    case Epilogue::kBiasGelu: return gelu(acc + bias);
  }
  return acc;
}

/// Validated raw-pointer view of one GEMM problem (shapes checked by the
/// public entry points; the kernels below index with plain offsets).
struct GemmView {
  const half* a = nullptr;     ///< (batch, m, k) row-major
  const half* b = nullptr;     ///< (k, n) or (batch, k, n) row-major
  half* c = nullptr;           ///< (batch, m, n) row-major
  const half* bias = nullptr;  ///< (n) when the epilogue uses it
  std::int64_t batch = 1;
  std::int64_t m = 0;
  std::int64_t k = 0;
  std::int64_t n = 0;
  bool batched_b = false;
  Epilogue epilogue = Epilogue::kNone;
};

/// Scalar reference: one FP32 accumulator per output element, k ascending.
/// Row pointers hoist the per-element stride arithmetic (and the division
/// that recovers (batch, row) from the flat task index) out of the k-loop.
void run_scalar(const GemmView& v) {
  parallel_for(0, v.batch * v.m, [&](std::int64_t bm) {
    const std::int64_t bi = bm / v.m;
    const std::int64_t mi = bm % v.m;
    assert(bi < v.batch && mi < v.m);
    const half* a_row = v.a + (bi * v.m + mi) * v.k;
    const half* b_base = v.b + (v.batched_b ? bi * v.k * v.n : 0);
    half* c_row = v.c + (bi * v.m + mi) * v.n;
    for (std::int64_t ni = 0; ni < v.n; ++ni) {
      float acc = 0.0f;  // FP32 accumulate, as on tensor cores
      for (std::int64_t ki = 0; ki < v.k; ++ki) {
        acc += float(a_row[ki]) * float(b_base[ki * v.n + ni]);
      }
      const float bv =
          v.epilogue == Epilogue::kNone ? 0.0f : float(v.bias[ni]);
      c_row[ni] = half(apply_epilogue(acc, v.epilogue, bv));
    }
  });
}

/// Packed path: convert the A panel to FP32 (activations change every
/// call), take the B panel pre-converted from the caller, run the
/// cache-blocked accumulation microkernel per row block, apply the
/// epilogue in FP32 and convert the output panel back to half.
/// Accumulation order and final rounding match run_scalar bit for bit.
void run_packed(const GemmView& v, const float* b_pack) {
  std::vector<float> a_pack(static_cast<std::size_t>(v.batch * v.m * v.k));
  packed::half_to_float({v.a, a_pack.size()}, a_pack);
  std::vector<float> bias_pack;
  if (v.epilogue != Epilogue::kNone) {
    bias_pack.resize(static_cast<std::size_t>(v.n));
    packed::half_to_float({v.bias, bias_pack.size()}, bias_pack);
  }

  constexpr std::int64_t kRowBlock = 64;
  const std::int64_t m_blocks = (v.m + kRowBlock - 1) / kRowBlock;
  parallel_for(0, v.batch * m_blocks, [&](std::int64_t task) {
    const std::int64_t bi = task / m_blocks;
    const std::int64_t row_lo = (task % m_blocks) * kRowBlock;
    const std::int64_t rows = std::min(kRowBlock, v.m - row_lo);

    std::vector<float> acc(static_cast<std::size_t>(rows * v.n), 0.0f);
    const float* a_panel = a_pack.data() + (bi * v.m + row_lo) * v.k;
    const float* b_panel = b_pack + (v.batched_b ? bi * v.k * v.n : 0);
    packed::sgemm_accumulate(a_panel, b_panel, acc.data(), rows, v.k, v.n);

    if (v.epilogue != Epilogue::kNone) {
      for (std::int64_t r = 0; r < rows; ++r) {
        float* acc_row = acc.data() + r * v.n;
        for (std::int64_t ni = 0; ni < v.n; ++ni) {
          acc_row[ni] = apply_epilogue(acc_row[ni], v.epilogue,
                                       bias_pack[static_cast<std::size_t>(ni)]);
        }
      }
    }
    packed::float_to_half(acc, {v.c + (bi * v.m + row_lo) * v.n, acc.size()});
  });
}

/// INT8 twin of run_packed: activations quantize per row (scale group =
/// k) straight from the half panel, the weight codes stream from the
/// registry's quantize-once INT8 tier with one scale per (k, n) panel,
/// and the int8 GEMM micro-kernel accumulates in exact int32 before the
/// FP32 scale/epilogue.  Deterministic across ISAs; not bit-identical to
/// the FP32 path.
void run_packed_int8(const GemmView& v, const std::int8_t* b_codes,
                     const float* b_scales) {
  const std::int64_t a_rows = v.batch * v.m;
  std::vector<std::int8_t> a8(static_cast<std::size_t>(a_rows * v.k));
  std::vector<float> a_scales(static_cast<std::size_t>(a_rows));
  packed::quantize_halfs({v.a, a8.size()}, v.k, a8.data(), a_scales.data());
  std::vector<float> bias_pack;
  if (v.epilogue != Epilogue::kNone) {
    bias_pack.resize(static_cast<std::size_t>(v.n));
    packed::half_to_float({v.bias, bias_pack.size()}, bias_pack);
  }

  constexpr std::int64_t kRowBlock = 64;
  const std::int64_t m_blocks = (v.m + kRowBlock - 1) / kRowBlock;
  const core::KernelTable& kt = core::kernels();
  parallel_for(0, v.batch * m_blocks, [&](std::int64_t task) {
    const std::int64_t bi = task / m_blocks;
    const std::int64_t row_lo = (task % m_blocks) * kRowBlock;
    const std::int64_t rows = std::min(kRowBlock, v.m - row_lo);

    std::vector<float> acc(static_cast<std::size_t>(rows * v.n), 0.0f);
    const std::int8_t* a_panel = a8.data() + (bi * v.m + row_lo) * v.k;
    const std::int8_t* b_panel = b_codes + (v.batched_b ? bi * v.k * v.n : 0);
    core::note_kernel_dispatch("sgemm_i8_accumulate_ld");
    kt.sgemm_i8_accumulate_ld(a_panel, v.k, b_panel, v.n, acc.data(), v.n,
                              rows, v.k, v.n,
                              a_scales.data() + bi * v.m + row_lo,
                              b_scales[v.batched_b ? bi : 0]);

    if (v.epilogue != Epilogue::kNone) {
      for (std::int64_t r = 0; r < rows; ++r) {
        float* acc_row = acc.data() + r * v.n;
        for (std::int64_t ni = 0; ni < v.n; ++ni) {
          acc_row[ni] = apply_epilogue(acc_row[ni], v.epilogue,
                                       bias_pack[static_cast<std::size_t>(ni)]);
        }
      }
    }
    packed::float_to_half(acc, {v.c + (bi * v.m + row_lo) * v.n, acc.size()});
  });
}

/// FP32 B panel via the cross-call registry: weight matrices convert once
/// per load and every later call (any layer, any tuner evaluation) is a
/// pure hit; the version tag forces a reconvert if the tensor mutates.
core::PanelRef fetch_b_panel(const TensorH& b) {
  const half* src = b.data().data();
  const std::int64_t total = b.numel();
  return core::global_panel_cache().get_or_convert(
      {b.storage_id(), core::kPanelRowMajor}, b.version(), total, total,
      [src](std::int64_t lo, std::int64_t hi, float* dst) {
        packed::half_to_float({src + lo, static_cast<std::size_t>(hi - lo)},
                              {dst + lo, static_cast<std::size_t>(hi - lo)});
      });
}

/// INT8 B panel: one scale per (k, n) weight panel (per batch instance
/// when B is batched), quantized once per storage version.  The key's
/// kPanelInt8 flag keeps it disjoint from the FP32 panel of the same
/// storage, so a tensor used at both precisions caches both tiers.
core::Int8PanelRef fetch_b_panel_int8(const TensorH& b) {
  const half* src = b.data().data();
  const std::int64_t total = b.numel();
  const std::int64_t panel =
      b.shape().rank() == 3 ? b.shape()[1] * b.shape()[2] : total;
  return core::global_panel_cache().get_or_convert_int8(
      {b.storage_id(), core::kPanelRowMajor | core::kPanelInt8}, b.version(),
      total, total, /*scale_group=*/panel,
      [src, panel](std::int64_t lo, std::int64_t hi, std::int8_t* codes,
                   float* scales) {
        packed::quantize_halfs({src + lo, static_cast<std::size_t>(hi - lo)},
                               panel, codes + lo, scales + lo / panel);
      });
}

GemmView validate(const TensorH& a, const TensorH& b, TensorH& c,
                  Epilogue epilogue, const TensorH* bias) {
  STOF_EXPECTS(a.shape().rank() == 3, "A must be (batch, m, k)");
  GemmView v;
  v.batch = a.shape()[0];
  v.m = a.shape()[1];
  v.k = a.shape()[2];

  v.batched_b = b.shape().rank() == 3;
  STOF_EXPECTS(v.batched_b || b.shape().rank() == 2,
               "B must be (k, n) or (batch, k, n)");
  v.n = v.batched_b ? b.shape()[2] : b.shape()[1];
  STOF_EXPECTS((v.batched_b ? b.shape()[1] : b.shape()[0]) == v.k,
               "inner dimensions must agree");
  if (v.batched_b) STOF_EXPECTS(b.shape()[0] == v.batch);
  STOF_EXPECTS(c.shape() == (Shape{v.batch, v.m, v.n}), "C shape mismatch");
  if (epilogue != Epilogue::kNone) {
    STOF_EXPECTS(bias != nullptr && bias->shape() == (Shape{v.n}),
                 "epilogue requires a (n) bias vector");
    v.bias = bias->data().data();
  }
  v.a = a.data().data();
  v.b = b.data().data();
  v.c = c.data().data();
  v.epilogue = epilogue;
  return v;
}

}  // namespace

namespace {

/// Path-taken + simulated-work accounting of one dispatched GEMM call.
/// MAC counts depend only on the problem shape, so `sim.ops.gemm_macs` is
/// identical whichever implementation runs; the `exec.ops.*` counters say
/// which one did.
void record_gemm_dispatch(const GemmView& v, bool packed,
                          bool int8_weights = false) {
  if (!telemetry::enabled()) return;
  telemetry::count("sim.ops.gemm_calls");
  telemetry::count("sim.ops.gemm_macs", v.batch * v.m * v.n * v.k);
  telemetry::count(packed ? "exec.ops.gemm.packed_calls"
                          : "exec.ops.gemm.scalar_calls");
  if (int8_weights) telemetry::count("exec.ops.gemm.int8_calls");
}

/// Shared packed dispatch: FP32 panel or INT8 tier per the policy.
void run_packed_dispatch(const GemmView& v, const TensorH& b,
                         core::PanelPrecision weight_precision) {
  if (weight_precision == core::PanelPrecision::kInt8) {
    const core::Int8PanelRef b_ref = fetch_b_panel_int8(b);
    run_packed_int8(v, b_ref.data(), b_ref.scale_data());
  } else {
    const core::PanelRef b_ref = fetch_b_panel(b);
    run_packed(v, b_ref.data());
  }
}

}  // namespace

void gemm(const TensorH& a, const TensorH& b, TensorH& c, Epilogue epilogue,
          const TensorH* bias, core::PanelPrecision weight_precision) {
  const GemmView v = validate(a, b, c, epilogue, bias);
  const bool packed = packed_execution_enabled();
  const bool int8_weights =
      packed && weight_precision == core::PanelPrecision::kInt8;
  record_gemm_dispatch(v, packed, int8_weights);
  telemetry::ScopedTimer timer("wall.ops.gemm_us");
  if (packed) {
    run_packed_dispatch(v, b, weight_precision);
  } else {
    run_scalar(v);
  }
}

void gemm_scalar(const TensorH& a, const TensorH& b, TensorH& c,
                 Epilogue epilogue, const TensorH* bias) {
  run_scalar(validate(a, b, c, epilogue, bias));
}

void gemm_packed(const TensorH& a, const TensorH& b, TensorH& c,
                 Epilogue epilogue, const TensorH* bias,
                 core::PanelPrecision weight_precision) {
  const GemmView v = validate(a, b, c, epilogue, bias);
  run_packed_dispatch(v, b, weight_precision);
}

void matmul2d(const TensorH& x, const TensorH& w, TensorH& y) {
  STOF_EXPECTS(x.shape().rank() == 2 && w.shape().rank() == 2);
  GemmView v;
  v.m = x.shape()[0];
  v.k = x.shape()[1];
  v.n = w.shape()[1];
  STOF_EXPECTS(w.shape()[0] == v.k, "matmul inner dimension mismatch");
  STOF_EXPECTS(y.shape() == (Shape{v.m, v.n}), "output shape mismatch");
  v.a = x.data().data();
  v.b = w.data().data();
  v.c = y.data().data();
  const bool packed = packed_execution_enabled();
  record_gemm_dispatch(v, packed);
  telemetry::ScopedTimer timer("wall.ops.gemm_us");
  if (packed) {
    const core::PanelRef b_ref = fetch_b_panel(w);
    run_packed(v, b_ref.data());
  } else {
    run_scalar(v);
  }
}

void warm_weight_panel(const TensorH& w) {
  if (w.storage_id() == 0) return;  // empty tensor, nothing to convert
  fetch_b_panel(w);
}

gpusim::KernelCost gemm_cost(const GemmDims& dims, const GemmParams& p,
                             const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(dims.m > 0 && dims.n > 0 && dims.k > 0 && dims.batch > 0);
  const double m = static_cast<double>(dims.m);
  const double n = static_cast<double>(dims.n);
  const double k = static_cast<double>(dims.k);
  const double batch = static_cast<double>(dims.batch);
  constexpr double kElem = 2.0;  // FP16 bytes

  gpusim::KernelCost c;
  c.tc_flops = 2.0 * batch * m * n * k;

  // Each block streams BLOCK_M*K of A and K*BLOCK_N of B through shared
  // memory; DRAM sees each operand once per L2-sized working set.
  const double grid_m = std::ceil(m / p.block_m);
  const double grid_n = std::ceil(n / p.block_n);
  c.gmem_read_bytes =
      gpusim::effective_operand_bytes(batch * m * k * kElem, grid_n, dev) +
      gpusim::effective_operand_bytes(k * n * kElem, batch * grid_m, dev);
  c.gmem_write_bytes = batch * m * n * kElem;
  // Shared-memory traffic stays per-block (no L2 relief).
  c.smem_bytes = batch * (grid_n * m * k + grid_m * k * n) * kElem;

  // Stage buffers for A and B panels determine the SMEM footprint.
  const std::int64_t req_smem =
      static_cast<std::int64_t>(p.num_stages) *
      (static_cast<std::int64_t>(p.block_m) + p.block_n) * p.block_k * 2;
  const auto occ = gpusim::occupancy(dev, req_smem, p.num_warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = static_cast<std::int64_t>(batch * grid_m * grid_n);
  // Deeper pipelines hide more of the memory phase behind the MMA phase.
  c.overlap = std::min(0.95, 0.45 + 0.15 * p.num_stages);
  return c;
}

std::vector<GemmParams> gemm_param_space() {
  std::vector<GemmParams> space;
  for (int bm : {16, 32, 64, 128}) {
    for (int bn : {32, 64, 128}) {
      for (int bk : {16, 32, 64}) {
        for (int warps : {2, 4, 8}) {
          for (int stages : {2, 3, 4}) {
            space.push_back({bm, bn, bk, warps, stages});
          }
        }
      }
    }
  }
  return space;
}

}  // namespace stof::ops
