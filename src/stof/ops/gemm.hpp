// General matrix multiply on the simulated GPU.
//
// Functional semantics: C[b] = A[b] x B[b] (+ optional bias / activation
// epilogue), FP16 operands with FP32 accumulation — the arithmetic path of
// a wmma HMMA tile.  The cost model accounts a CUTLASS/Triton-style tiled
// kernel: each (BLOCK_M x BLOCK_N) block streams K-panels of A and B
// through shared memory with `num_stages`-deep cp.async pipelining, so
// global traffic is M*N*K * (1/BLOCK_N + 1/BLOCK_M) elements and occupancy
// follows from the shared-memory footprint of the stage buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/kernels.hpp"
#include "stof/core/tensor.hpp"
#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"

namespace stof::ops {

/// Logical GEMM problem: batch x (m x k) * (k x n).
struct GemmDims {
  std::int64_t batch = 1;
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
};

/// Tunable launch parameters of the tiled GEMM template.
struct GemmParams {
  int block_m = 64;
  int block_n = 64;
  int block_k = 32;
  int num_warps = 4;
  int num_stages = 2;

  friend bool operator==(const GemmParams&, const GemmParams&) = default;
};

/// Epilogue fused into the GEMM main loop (free at the register level).
enum class Epilogue { kNone, kBias, kBiasRelu, kBiasGelu };

/// C = A x B with optional epilogue.
/// A: (batch, m, k); B: (k, n) shared across the batch or (batch, k, n);
/// C: (batch, m, n); bias: (n) when the epilogue uses it.
/// Dispatches to the packed-FP32 engine unless scalar execution was
/// selected via stof::set_packed_execution(false).
///
/// `weight_precision` selects the storage tier of the cached B panel:
///   * kFloat32 (default) — bit-identical to gemm_scalar.
///   * kInt8 — the weight panel is quantized once per storage version
///     (symmetric, one scale per (k, n) panel) and the main loop runs
///     int8 dot products with exact int32 accumulation; activations are
///     quantized per row on the fly.  Results are deterministic across
///     ISAs and schedules but carry quantization error, so call sites
///     opt in explicitly.  Scalar execution mode ignores the policy (it
///     is the FP32 reference).
void gemm(const TensorH& a, const TensorH& b, TensorH& c,
          Epilogue epilogue = Epilogue::kNone, const TensorH* bias = nullptr,
          core::PanelPrecision weight_precision =
              core::PanelPrecision::kFloat32);

/// Scalar reference implementation: per-element FP32 accumulation over row
/// pointers.  The packed path must match it bit for bit.
void gemm_scalar(const TensorH& a, const TensorH& b, TensorH& c,
                 Epilogue epilogue = Epilogue::kNone,
                 const TensorH* bias = nullptr);

/// Packed implementation: A/B panels converted to contiguous FP32 buffers
/// once, cache-blocked accumulation, panel conversion on store.  With
/// weight_precision == kInt8 the B panel comes from the registry's INT8
/// tier instead (see gemm()).
void gemm_packed(const TensorH& a, const TensorH& b, TensorH& c,
                 Epilogue epilogue = Epilogue::kNone,
                 const TensorH* bias = nullptr,
                 core::PanelPrecision weight_precision =
                     core::PanelPrecision::kFloat32);

/// y = x (r, k) * w (k, n), FP32 accumulate, no epilogue — the projection
/// matmul of the functional executor.  Same packed/scalar dispatch as
/// gemm().
void matmul2d(const TensorH& x, const TensorH& w, TensorH& y);

/// Pre-convert `w`'s FP32 panel into the cross-call registry (a no-op when
/// already cached at the tensor's current version).  Model loaders call
/// this once so the first forward pass pays no conversion; later mutations
/// are still caught by the version tag.
void warm_weight_panel(const TensorH& w);

/// Simulated cost of one tiled GEMM launch.
gpusim::KernelCost gemm_cost(const GemmDims& dims, const GemmParams& params,
                             const gpusim::DeviceSpec& dev);

/// Candidate launch parameters explored by the tuner for this template.
std::vector<GemmParams> gemm_param_space();

/// GELU activation (tanh approximation), exposed for fused epilogues.
float gelu(float x);

}  // namespace stof::ops
