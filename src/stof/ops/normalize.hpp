// Row-wise normalization operators: LayerNorm and Softmax.
//
// Both are memory-intensive reductions over the hidden dimension.  Softmax
// additionally supports the "mask subtraction" path used by the baselines
// that cannot fuse sparse masks into attention: masked positions are set to
// -inf before the exp, which reproduces the numerics of the paper's
// fallback (subtracting a large constant from the score matrix).
#pragma once

#include <cstdint>
#include <vector>

#include "stof/core/tensor.hpp"
#include "stof/gpusim/cost.hpp"
#include "stof/gpusim/device.hpp"
#include "stof/masks/mask.hpp"

namespace stof::ops {

/// Tunable launch parameters for row-reduction kernels.
struct NormParams {
  int block_size = 256;   ///< threads cooperating on one (or more) rows
  int rows_per_block = 1;

  friend bool operator==(const NormParams&, const NormParams&) = default;
};

/// y = LayerNorm(x) * gamma + beta over the last dimension.
/// x, y: (rows, n); gamma, beta: (n).
void layernorm(const TensorH& x, const TensorH& gamma, const TensorH& beta,
               TensorH& y, float eps = 1e-5f);

/// Row-wise softmax: y[i, :] = softmax(x[i, :]). x, y: (rows, n).
void softmax(const TensorF& x, TensorF& y);

/// Softmax with mask: invalid positions get zero probability; a fully
/// masked row yields zeros (matching the sparse kernels' skip semantics).
/// `scores` rows map to mask rows via row_of(i) so batched score matrices
/// of shape (batch*heads*seq, seq) can share one (seq, seq) mask.
void masked_softmax(const TensorF& scores, const masks::Mask& mask,
                    TensorF& y);

/// Cost of a LayerNorm launch over (rows x n) FP16 elements.
gpusim::KernelCost layernorm_cost(std::int64_t rows, std::int64_t n,
                                  const NormParams& params,
                                  const gpusim::DeviceSpec& dev);

/// Cost of a (masked) softmax launch over (rows x n) scores; when
/// `with_mask` the kernel also streams the dense mask operand.
gpusim::KernelCost softmax_cost(std::int64_t rows, std::int64_t n,
                                bool with_mask, const NormParams& params,
                                const gpusim::DeviceSpec& dev);

/// Candidate launch parameters for row-reduction kernels.
std::vector<NormParams> norm_param_space();

}  // namespace stof::ops
