#include "stof/ops/elementwise.hpp"

#include <algorithm>

#include "stof/core/check.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/ops/gemm.hpp"  // gelu()
#include "stof/parallel/parallel_for.hpp"

namespace stof::ops {

void bias_add(const TensorH& x, const TensorH& bias, TensorH& y) {
  STOF_EXPECTS(x.shape().rank() == 2, "x must be (rows, n)");
  const std::int64_t rows = x.shape()[0];
  const std::int64_t n = x.shape()[1];
  STOF_EXPECTS(bias.shape() == (Shape{n}), "bias must be (n)");
  STOF_EXPECTS(y.shape() == x.shape());
  parallel_for(0, rows, [&](std::int64_t i) {
    for (std::int64_t j = 0; j < n; ++j) {
      y.at(i, j) = half(float(x.at(i, j)) + float(bias.at(j)));
    }
  });
}

void relu(const TensorH& x, TensorH& y) {
  STOF_EXPECTS(y.shape() == x.shape());
  parallel_for(0, x.numel(), [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    y.data()[idx] = half(std::max(0.0f, float(x.data()[idx])));
  });
}

void gelu_op(const TensorH& x, TensorH& y) {
  STOF_EXPECTS(y.shape() == x.shape());
  parallel_for(0, x.numel(), [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    y.data()[idx] = half(gelu(float(x.data()[idx])));
  });
}

void residual_add(const TensorH& a, const TensorH& b, TensorH& y) {
  STOF_EXPECTS(a.shape() == b.shape() && y.shape() == a.shape());
  parallel_for(0, a.numel(), [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    y.data()[idx] = half(float(a.data()[idx]) + float(b.data()[idx]));
  });
}

gpusim::KernelCost elementwise_cost(std::int64_t elements,
                                    double flops_per_element,
                                    double read_bytes, double write_bytes,
                                    const EwParams& p,
                                    const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(elements > 0);
  STOF_EXPECTS(p.block_size >= 32 && p.block_size <= 1024);
  gpusim::KernelCost c;
  c.cuda_flops = static_cast<double>(elements) * flops_per_element;
  c.gmem_read_bytes = read_bytes;
  c.gmem_write_bytes = write_bytes;
  // Elementwise kernels use no shared memory; occupancy is warp limited.
  const int warps = p.block_size / 32;
  const auto occ = gpusim::occupancy(dev, 0, warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  const std::int64_t per_block =
      static_cast<std::int64_t>(p.block_size) * p.items_per_thread;
  c.grid_blocks = (elements + per_block - 1) / per_block;
  c.overlap = 0.85;  // streaming loads pipeline well
  return c;
}

std::vector<EwParams> elementwise_param_space() {
  std::vector<EwParams> space;
  for (int bs : {128, 256, 512, 1024}) {
    for (int ipt : {1, 2, 4, 8}) space.push_back({bs, ipt});
  }
  return space;
}

}  // namespace stof::ops
