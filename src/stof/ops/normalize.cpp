#include "stof/ops/normalize.hpp"

#include <cmath>

#include "stof/core/check.hpp"
#include "stof/gpusim/occupancy.hpp"
#include "stof/parallel/parallel_for.hpp"

namespace stof::ops {

void layernorm(const TensorH& x, const TensorH& gamma, const TensorH& beta,
               TensorH& y, float eps) {
  STOF_EXPECTS(x.shape().rank() == 2, "x must be (rows, n)");
  const std::int64_t rows = x.shape()[0];
  const std::int64_t n = x.shape()[1];
  STOF_EXPECTS(gamma.shape() == (Shape{n}) && beta.shape() == (Shape{n}));
  STOF_EXPECTS(y.shape() == x.shape());

  parallel_for(0, rows, [&](std::int64_t i) {
    float mean = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) mean += float(x.at(i, j));
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float d = float(x.at(i, j)) - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv_std = 1.0f / std::sqrt(var + eps);
    for (std::int64_t j = 0; j < n; ++j) {
      const float norm = (float(x.at(i, j)) - mean) * inv_std;
      y.at(i, j) = half(norm * float(gamma.at(j)) + float(beta.at(j)));
    }
  });
}

void softmax(const TensorF& x, TensorF& y) {
  STOF_EXPECTS(x.shape().rank() == 2, "x must be (rows, n)");
  STOF_EXPECTS(y.shape() == x.shape());
  const std::int64_t rows = x.shape()[0];
  const std::int64_t n = x.shape()[1];
  parallel_for(0, rows, [&](std::int64_t i) {
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < n; ++j) max_v = std::max(max_v, x.at(i, j));
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float e = std::exp(x.at(i, j) - max_v);
      y.at(i, j) = e;
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < n; ++j) y.at(i, j) *= inv;
  });
}

void masked_softmax(const TensorF& scores, const masks::Mask& mask,
                    TensorF& y) {
  STOF_EXPECTS(scores.shape().rank() == 2);
  const std::int64_t rows = scores.shape()[0];
  const std::int64_t n = scores.shape()[1];
  STOF_EXPECTS(n == mask.seq_len(), "score columns must match mask");
  STOF_EXPECTS(rows % mask.seq_len() == 0,
               "batched rows must be a multiple of seq_len");
  STOF_EXPECTS(y.shape() == scores.shape());

  parallel_for(0, rows, [&](std::int64_t i) {
    const std::int64_t mi = i % mask.seq_len();
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < n; ++j) {
      if (mask.at(mi, j)) max_v = std::max(max_v, scores.at(i, j));
    }
    if (max_v == -std::numeric_limits<float>::infinity()) {
      for (std::int64_t j = 0; j < n; ++j) y.at(i, j) = 0.0f;
      return;  // fully masked row: zero probabilities
    }
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float e =
          mask.at(mi, j) ? std::exp(scores.at(i, j) - max_v) : 0.0f;
      y.at(i, j) = e;
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < n; ++j) y.at(i, j) *= inv;
  });
}

namespace {

gpusim::KernelCost row_reduce_cost(std::int64_t rows, std::int64_t n,
                                   double flops_per_element,
                                   double extra_read_bytes,
                                   const NormParams& p,
                                   const gpusim::DeviceSpec& dev) {
  STOF_EXPECTS(rows > 0 && n > 0);
  STOF_EXPECTS(p.block_size >= 32 && p.block_size <= 1024);
  STOF_EXPECTS(p.rows_per_block >= 1);
  const double elements = static_cast<double>(rows * n);
  constexpr double kElem = 2.0;  // FP16

  gpusim::KernelCost c;
  c.cuda_flops = elements * flops_per_element;
  c.gmem_read_bytes = elements * kElem + extra_read_bytes;
  c.gmem_write_bytes = elements * kElem;
  // The row is staged in shared memory for the two reduction passes.
  c.smem_bytes = 2.0 * elements * kElem;
  const int warps = p.block_size / 32;
  const auto occ = gpusim::occupancy(
      dev, static_cast<std::int64_t>(p.rows_per_block) * n * 2, warps);
  c.occupancy = occ.fraction;
  c.blocks_per_sm = std::max(1, occ.blocks_per_sm);
  c.grid_blocks = (rows + p.rows_per_block - 1) / p.rows_per_block;
  c.overlap = 0.6;  // reduction passes partially serialize with loads
  return c;
}

}  // namespace

gpusim::KernelCost layernorm_cost(std::int64_t rows, std::int64_t n,
                                  const NormParams& p,
                                  const gpusim::DeviceSpec& dev) {
  // mean + variance + normalize: ~8 flops per element.
  return row_reduce_cost(rows, n, 8.0, 0.0, p, dev);
}

gpusim::KernelCost softmax_cost(std::int64_t rows, std::int64_t n,
                                bool with_mask, const NormParams& p,
                                const gpusim::DeviceSpec& dev) {
  // max + exp + sum + scale: ~5 flops per element; the mask operand is a
  // dense FP16 matrix the kernel streams alongside the scores.
  const double mask_bytes = with_mask ? static_cast<double>(rows * n) * 2.0 : 0.0;
  return row_reduce_cost(rows, n, 5.0, mask_bytes, p, dev);
}

std::vector<NormParams> norm_param_space() {
  std::vector<NormParams> space;
  for (int bs : {64, 128, 256, 512}) {
    for (int rpb : {1, 2, 4}) space.push_back({bs, rpb});
  }
  return space;
}

}  // namespace stof::ops
