// ThreadPool shutdown and exception-path stress tests.
//
// The serving runtime keeps the global pool alive for the whole process,
// which promotes the pool's failure paths from theoretical to load-bearing:
// a throwing task must surface at the structured join (not terminate the
// process or hang wait_idle), and shutdown must be explicit, idempotent,
// and safe to race with late submitters.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "stof/parallel/thread_pool.hpp"

namespace stof {
namespace {

TEST(ThreadPoolStress, TaskExceptionRethrownAtWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 32);  // healthy tasks all completed
}

TEST(ThreadPoolStress, PoolUsableAfterTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was consumed at the join; the next batch is clean.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolStress, OnlyFirstExceptionIsReported) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("one of many"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());  // later failures were not queued up
}

TEST(ThreadPoolStress, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++ran;
      });
    }
    pool.shutdown();
    EXPECT_EQ(ran.load(), 64);
  }
  EXPECT_EQ(ran.load(), 64);  // destructor after shutdown is a no-op
}

TEST(ThreadPoolStress, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.shutdown();
  EXPECT_NO_THROW(pool.shutdown());
  EXPECT_NO_THROW(pool.shutdown());
}

TEST(ThreadPoolStress, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPoolStress, ConcurrentSubmittersRacingShutdown) {
  // Late submitters must either succeed (task runs before workers join) or
  // fail the stopping check — never enqueue into a dead pool or crash.
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<int> accepted{0}, rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        try {
          pool.submit([] {});
          ++accepted;
        } catch (const Error&) {
          ++rejected;
          break;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.shutdown();
  stop.store(true);
  for (auto& t : submitters) t.join();
  EXPECT_GT(accepted.load(), 0);
}

TEST(ThreadPoolStress, ManyBatchesWithInterleavedFailures) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  int thrown = 0;
  for (int batch = 0; batch < 50; ++batch) {
    const bool poison = batch % 7 == 0;
    for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
    if (poison) pool.submit([] { throw std::runtime_error("poison"); });
    if (poison) {
      EXPECT_THROW(pool.wait_idle(), std::runtime_error) << batch;
      ++thrown;
    } else {
      EXPECT_NO_THROW(pool.wait_idle()) << batch;
    }
  }
  EXPECT_EQ(ran.load(), 50 * 8);
  EXPECT_EQ(thrown, 8);
}

}  // namespace
}  // namespace stof
