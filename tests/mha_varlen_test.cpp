// Tests for variable-length batch attention: functional equivalence with
// per-element truncated-mask references, zero-padding guarantees, and the
// padding-waste cost savings.
#include <gtest/gtest.h>

#include "stof/core/rng.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/varlen.hpp"

namespace stof::mha {
namespace {

struct Inputs {
  TensorH q, k, v;
};

Inputs make_inputs(const MhaDims& dims, std::uint64_t seed) {
  Rng rng(seed);
  Inputs in{TensorH(dims.qkv_shape()), TensorH(dims.qkv_shape()),
            TensorH(dims.qkv_shape())};
  in.q.fill_random(rng);
  in.k.fill_random(rng);
  in.v.fill_random(rng);
  return in;
}

TEST(VarlenBatch, StatsAndValidation) {
  VarlenBatch b{64, {64, 32, 16}};
  b.validate();
  EXPECT_EQ(b.batch(), 3);
  EXPECT_EQ(b.total_valid_tokens(), 112);
  EXPECT_NEAR(b.padding_ratio(), 1.0 - 112.0 / 192.0, 1e-12);

  // Zero-length (fully padded) elements are valid batch members.
  VarlenBatch with_empty{64, {64, 0}};
  with_empty.validate();
  EXPECT_EQ(with_empty.total_valid_tokens(), 64);

  EXPECT_THROW((VarlenBatch{64, {64, -1}}).validate(), Error);
  EXPECT_THROW((VarlenBatch{64, {65}}).validate(), Error);
  EXPECT_THROW((VarlenBatch{64, {}}).validate(), Error);
}

TEST(EffectiveMask, RestrictsToValidSquare) {
  const auto base = masks::dense(16);
  const auto m = effective_mask(base, 5);
  for (std::int64_t i = 0; i < 16; ++i) {
    for (std::int64_t j = 0; j < 16; ++j) {
      EXPECT_EQ(m.at(i, j), i < 5 && j < 5) << i << "," << j;
    }
  }
  EXPECT_EQ(effective_mask(base, 0).valid_count(), 0);
  EXPECT_THROW(effective_mask(base, -1), Error);
  EXPECT_THROW(effective_mask(base, 17), Error);
}

TEST(VarlenAttention, MatchesPerElementReference) {
  const MhaDims dims{3, 2, 48, 16};
  const Inputs in = make_inputs(dims, 7);
  const auto base = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                    .seq_len = 48}
                        .build();
  const VarlenBatch batch{48, {48, 30, 12}};
  const TensorH got =
      varlen_attention(dims, in.q, in.k, in.v, base, batch);

  // Reference: each batch element independently, under its own mask.
  for (std::int64_t b = 0; b < 3; ++b) {
    const MhaDims one{1, 2, 48, 16};
    Inputs sub{TensorH(one.qkv_shape()), TensorH(one.qkv_shape()),
               TensorH(one.qkv_shape())};
    for (std::int64_t h = 0; h < 2; ++h) {
      for (std::int64_t s = 0; s < 48; ++s) {
        for (std::int64_t e = 0; e < 16; ++e) {
          sub.q.at(h, s, e) = in.q.at(b * 2 + h, s, e);
          sub.k.at(h, s, e) = in.k.at(b * 2 + h, s, e);
          sub.v.at(h, s, e) = in.v.at(b * 2 + h, s, e);
        }
      }
    }
    const TensorH ref = reference_attention(
        one, sub.q, sub.k, sub.v,
        effective_mask(base, batch.lengths[static_cast<std::size_t>(b)]));
    for (std::int64_t h = 0; h < 2; ++h) {
      for (std::int64_t s = 0; s < 48; ++s) {
        for (std::int64_t e = 0; e < 16; ++e) {
          EXPECT_NEAR(float(got.at(b * 2 + h, s, e)), float(ref.at(h, s, e)),
                      4e-3)
              << "b=" << b << " s=" << s;
        }
      }
    }
  }
}

TEST(VarlenAttention, PaddedRowsAreZero) {
  const MhaDims dims{2, 2, 32, 8};
  const Inputs in = make_inputs(dims, 9);
  const VarlenBatch batch{32, {32, 10}};
  const TensorH out = varlen_attention(dims, in.q, in.k, in.v,
                                       masks::dense(32), batch);
  // Element 1: rows >= 10 are padding -> zero output.
  for (std::int64_t h = 0; h < 2; ++h) {
    for (std::int64_t s = 10; s < 32; ++s) {
      for (std::int64_t e = 0; e < 8; ++e) {
        EXPECT_EQ(float(out.at(2 + h, s, e)), 0.0f) << s;
      }
    }
  }
}

TEST(VarlenAttention, FullLengthsEqualRegularAttention) {
  const MhaDims dims{2, 2, 32, 8};
  const Inputs in = make_inputs(dims, 11);
  const auto base = masks::MaskSpec{.kind = masks::PatternKind::kLongformer,
                                    .seq_len = 32}
                        .build();
  const VarlenBatch batch{32, {32, 32}};
  const TensorH a = varlen_attention(dims, in.q, in.k, in.v, base, batch);
  const TensorH b = reference_attention(dims, in.q, in.k, in.v, base);
  EXPECT_LT(max_abs_diff(a, b), 4e-3);
}

TEST(VarlenAttention, RejectsMismatchedBatch) {
  const MhaDims dims{2, 2, 32, 8};
  const Inputs in = make_inputs(dims, 13);
  const VarlenBatch wrong{32, {32}};  // one length for batch of two
  EXPECT_THROW(varlen_attention(dims, in.q, in.k, in.v, masks::dense(32),
                                wrong),
               Error);
}

TEST(VarlenCost, ShortSequencesCostLessThanPadded) {
  const MhaDims dims{8, 12, 1024, 64};
  const auto dev = gpusim::a100();
  const auto base = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                    .seq_len = 1024}
                        .build();
  const BlockwiseParams p{64, 64, 4};
  // Heavily padded batch: most sequences are short.
  const VarlenBatch varlen{1024, {1024, 256, 128, 128, 128, 128, 64, 64}};
  const VarlenBatch padded{1024, std::vector<std::int64_t>(8, 1024)};
  const double t_varlen = gpusim::estimate_time_us(
      varlen_cost(dims, base, varlen, p, dev), dev);
  const double t_padded = gpusim::estimate_time_us(
      varlen_cost(dims, base, padded, p, dev), dev);
  EXPECT_LT(t_varlen, 0.5 * t_padded);
}

TEST(VarlenCost, PaddedBatchMatchesRegularKernel) {
  // All-full lengths must cost the same work as the regular block-wise
  // kernel on the same mask (modulo identical structure).
  const MhaDims dims{4, 12, 512, 64};
  const auto dev = gpusim::rtx4090();
  const auto base = masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow,
                                    .seq_len = 512}
                        .build();
  const BlockwiseParams p{64, 64, 4};
  const VarlenBatch full{512, std::vector<std::int64_t>(4, 512)};
  const auto varlen = varlen_cost(dims, base, full, p, dev);
  const auto regular = blockwise_cost(
      dims, sparse::BsrMask::build(base, 64, 64), p, dev);
  EXPECT_NEAR(varlen.tc_flops, regular.tc_flops, 1.0);
  EXPECT_EQ(varlen.grid_blocks, regular.grid_blocks);
}

TEST(VarlenCost, SingleLaunchRegardlessOfBatch) {
  const MhaDims dims{16, 12, 256, 64};
  const VarlenBatch batch{256, std::vector<std::int64_t>(16, 128)};
  const auto c = varlen_cost(dims, masks::dense(256), batch,
                             BlockwiseParams{64, 64, 4}, gpusim::a100());
  EXPECT_EQ(c.launches, 1);
}

}  // namespace
}  // namespace stof::mha
