// Tests for the score-modification hook on the block-wise kernel:
// composing expression-based score changes (relative position bias, ALiBi,
// soft capping) with block-sparse skipping.
#include <gtest/gtest.h>

#include <cmath>

#include "stof/core/rng.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/mha/reference.hpp"
#include "stof/sparse/bsr_mask.hpp"

namespace stof::mha {
namespace {

struct Inputs {
  TensorH q, k, v;
};

Inputs make_inputs(const MhaDims& dims, std::uint64_t seed) {
  Rng rng(seed);
  Inputs in{TensorH(dims.qkv_shape()), TensorH(dims.qkv_shape()),
            TensorH(dims.qkv_shape())};
  in.q.fill_random(rng);
  in.k.fill_random(rng);
  in.v.fill_random(rng);
  return in;
}

// Reference attention with an arbitrary score modification, dense FP32.
TensorH reference_with_mod(const MhaDims& dims, const Inputs& in,
                           const masks::Mask& mask, const ScoreMod& mod) {
  TensorH out(dims.qkv_shape());
  const std::int64_t n = dims.seq_len;
  const std::int64_t d = dims.head_size;
  const float scale = dims.scale();
  for (std::int64_t bh = 0; bh < dims.instances(); ++bh) {
    for (std::int64_t i = 0; i < n; ++i) {
      std::vector<float> w(static_cast<std::size_t>(n), 0.0f);
      float max_v = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) {
        if (!mask.at(i, j)) continue;
        float dot = 0;
        for (std::int64_t e = 0; e < d; ++e) {
          dot += float(in.q.at(bh, i, e)) * float(in.k.at(bh, j, e));
        }
        float s = dot * scale;
        if (mod) s = mod(bh, i, j, s);
        w[static_cast<std::size_t>(j)] = s;
        max_v = std::max(max_v, s);
      }
      float sum = 0;
      for (std::int64_t j = 0; j < n; ++j) {
        if (!mask.at(i, j)) continue;
        w[static_cast<std::size_t>(j)] =
            std::exp(w[static_cast<std::size_t>(j)] - max_v);
        sum += w[static_cast<std::size_t>(j)];
      }
      for (std::int64_t e = 0; e < d; ++e) {
        float acc = 0;
        for (std::int64_t j = 0; j < n; ++j) {
          if (!mask.at(i, j)) continue;
          acc += w[static_cast<std::size_t>(j)] * float(in.v.at(bh, j, e));
        }
        out.at(bh, i, e) = half(sum == 0 ? 0.0f : acc / sum);
      }
    }
  }
  return out;
}

TEST(ScoreMod, NullModMatchesPlainKernel) {
  const MhaDims dims{1, 2, 48, 16};
  const Inputs in = make_inputs(dims, 41);
  const auto mask = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                    .seq_len = 48}
                        .build();
  const auto bsr = sparse::BsrMask::build(mask, 16, 16);
  const TensorH a = blockwise_attention(dims, in.q, in.k, in.v, bsr,
                                        BlockwiseParams{16, 16});
  const TensorH b = blockwise_attention(dims, in.q, in.k, in.v, bsr,
                                        BlockwiseParams{16, 16}, nullptr);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(ScoreMod, AlibiBiasMatchesReference) {
  // ALiBi: score -= slope(head) * |i - j|.
  const MhaDims dims{1, 4, 48, 16};
  const Inputs in = make_inputs(dims, 42);
  const auto mask = masks::causal(48);
  const ScoreMod alibi = [&](std::int64_t bh, std::int64_t i, std::int64_t j,
                             float s) {
    const auto head = bh % dims.heads;
    const float slope = std::exp2(-static_cast<float>(head + 1));
    return s - slope * static_cast<float>(std::llabs(i - j));
  };
  const auto bsr = sparse::BsrMask::build(mask, 16, 16);
  const TensorH got = blockwise_attention(dims, in.q, in.k, in.v, bsr,
                                          BlockwiseParams{16, 16}, alibi);
  const TensorH ref = reference_with_mod(dims, in, mask, alibi);
  EXPECT_LT(max_abs_diff(got, ref), 4e-3);
}

TEST(ScoreMod, SoftCappingMatchesReference) {
  const MhaDims dims{2, 2, 32, 8};
  const Inputs in = make_inputs(dims, 43);
  const auto mask = masks::MaskSpec{.kind = masks::PatternKind::kLongformer,
                                    .seq_len = 32}
                        .build();
  const ScoreMod cap = [](std::int64_t, std::int64_t, std::int64_t, float s) {
    return 5.0f * std::tanh(s / 5.0f);  // Gemma-style soft capping
  };
  const auto bsr = sparse::BsrMask::build(mask, 16, 16);
  const TensorH got = blockwise_attention(dims, in.q, in.k, in.v, bsr,
                                          BlockwiseParams{16, 16}, cap);
  const TensorH ref = reference_with_mod(dims, in, mask, cap);
  EXPECT_LT(max_abs_diff(got, ref), 4e-3);
}

TEST(ScoreMod, ModAppliesOnlyToUnmaskedPositions) {
  // A mod returning +inf everywhere must not resurrect masked positions.
  const MhaDims dims{1, 1, 16, 4};
  const Inputs in = make_inputs(dims, 44);
  masks::Mask m(16);
  m.set(0, 3);  // row 0 attends only to key 3
  const ScoreMod boost = [](std::int64_t, std::int64_t, std::int64_t, float) {
    return 100.0f;
  };
  const auto bsr = sparse::BsrMask::build(m, 16, 16);
  const TensorH out = blockwise_attention(dims, in.q, in.k, in.v, bsr,
                                          BlockwiseParams{16, 16}, boost);
  for (std::int64_t e = 0; e < 4; ++e) {
    EXPECT_NEAR(float(out.at(0, 0, e)), float(in.v.at(0, 3, e)), 4e-3);
  }
  // Fully masked rows remain zero regardless of the mod.
  for (std::int64_t e = 0; e < 4; ++e) {
    EXPECT_EQ(float(out.at(0, 5, e)), 0.0f);
  }
}

}  // namespace
}  // namespace stof::mha
