// Scheduler property/fuzz tests: seeded adversarial arrival traces driven
// through the serving engine in serial, continuous, and chunked-prefill
// modes, with invariants checked after every step.
//
// Trace shape (all seeded, fully deterministic): bursty arrivals (Poisson
// background plus clustered bursts), heavy-tail prompt lengths, mixed mask
// kinds, 2-4 tenants with distinct weights, random priorities, and sparse
// deadlines.  Invariants:
//   * KV accounting — the pool's used blocks always equal the sum of the
//     resident sessions' block counts, and a retired (finished or queued)
//     session holds zero blocks: no page leaks, ever.
//   * Bounded starvation — every trace drains within a generous step
//     bound and every session finishes.
//   * Digest equality — per-session output digests are bit-identical
//     across serial / continuous / chunked scheduling, FP32 and INT8 KV,
//     prefix sharing on and off, and speculative decoding on and off.
//   * Deterministic replay — the same seed reproduces a byte-identical
//     telemetry dump.
//
// Shared-prefix traces overlay hot templates (radix-tree hits, partial-
// page adoption, CoW, refcounted release) on the same adversarial
// arrival shape; pool().check_conservation() audits block refcounts and
// the free list after every step.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "stof/core/rng.hpp"
#include "stof/serve/engine.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::serve {
namespace {

constexpr std::int64_t kMaxSeq = 64;

std::vector<Request> fuzz_trace(std::uint64_t seed, std::int64_t n_requests) {
  Rng rng(seed);
  const masks::PatternKind kinds[] = {
      masks::PatternKind::kCausal, masks::PatternKind::kSlidingWindow,
      masks::PatternKind::kStrided, masks::PatternKind::kBigBird};
  const auto n_tenants =
      2 + static_cast<std::int32_t>(rng.next_u64() % 3);  // 2..4
  std::vector<Request> trace;
  double clock = 0;
  for (std::int64_t i = 0; i < n_requests; ++i) {
    // Bursty arrivals: 1-in-4 requests arrive in a zero-gap burst with the
    // previous one; the rest space out by a few simulated steps.
    if (rng.next_double() > 0.25) clock += 2.0 + 30.0 * rng.next_double();
    Request r;
    r.id = i;
    // Heavy-tail prompts: mostly short, occasionally near the context cap
    // (cubing a uniform draw puts ~88% of mass below a third of the max).
    const double u = rng.next_double();
    r.prompt_len = 1 + static_cast<std::int64_t>(u * u * u * (kMaxSeq - 14));
    r.max_new_tokens = 1 + static_cast<std::int64_t>(rng.next_u64() % 12);
    r.seed = seed * 1000 + static_cast<std::uint64_t>(i);
    r.mask_kind = kinds[rng.next_u64() % 4];
    r.arrival_us = clock;
    r.tenant = static_cast<std::int32_t>(rng.next_u64() %
                                         static_cast<std::uint64_t>(n_tenants));
    r.priority = static_cast<std::int32_t>(rng.next_u64() % 4);
    if (rng.next_double() < 0.3) {
      r.deadline_us = clock + 50.0 + 400.0 * rng.next_double();
    }
    trace.push_back(r);
  }
  return trace;
}

/// fuzz_trace with hot prompt templates overlaid: ~3/4 of the requests
/// share one of three templates (template_len 8..31, so chains cover a
/// partial page and often a full one), the rest stay fully private.
std::vector<Request> prefix_fuzz_trace(std::uint64_t seed,
                                       std::int64_t n_requests) {
  auto trace = fuzz_trace(seed, n_requests);
  Rng rng(seed ^ 0xfeedbeefULL);
  for (auto& r : trace) {
    if (rng.next_double() < 0.25) continue;
    r.template_seed = seed * 77 + 1 + rng.next_u64() % 3;
    r.template_len = 8 + static_cast<std::int64_t>(rng.next_u64() % 24);
    // The template must leave a private suffix, and the grown prompt must
    // still fit the context window (max_new_tokens <= 12 here).
    r.prompt_len = std::max(r.prompt_len, r.template_len + 1);
  }
  return trace;
}

EngineConfig fuzz_config(SchedulerMode mode, std::int64_t chunk_tokens,
                         std::int64_t kv_blocks) {
  EngineConfig cfg;
  cfg.heads = 2;
  cfg.head_size = 16;
  cfg.max_seq_len = kMaxSeq;
  cfg.kv_blocks = kv_blocks;
  cfg.block_tokens = 16;
  cfg.prefill_params = mha::BlockwiseParams{16, 16};
  cfg.scheduler.mode = mode;
  cfg.scheduler.max_prefills_per_step = 4;
  cfg.scheduler.prefill_token_budget = 128;
  cfg.scheduler.max_decode_batch = 16;
  cfg.scheduler.chunk_tokens = chunk_tokens;
  if (chunk_tokens > 0) {
    cfg.scheduler.fairness_quantum_tokens = 24;
    cfg.scheduler.tenant_weights = {{0, 1}, {1, 2}, {2, 1}, {3, 3}};
  }
  return cfg;
}

/// Replay `trace` open-loop, asserting the per-step KV and liveness
/// invariants.  Returns the per-session digests.  `shared` relaxes the
/// used == sum-of-session-blocks identity (shared pages are mapped by
/// several owners and the radix tree holds pages no session maps); the
/// pool's refcount audit is the conservation invariant in both regimes.
std::map<SessionId, std::uint64_t> replay_checked(
    Engine& engine, const std::vector<Request>& trace, bool shared = false) {
  std::vector<SessionId> submitted;
  engine.on_step = [&](const StepEvent& ev) {
    // KV conservation: block refcounts equal their owners (sessions plus
    // tree nodes), the free list is exactly the unreferenced blocks, and
    // retired sessions hold nothing.
    EXPECT_TRUE(engine.pool().check_conservation()) << "KV refcount audit";
    std::int64_t held = 0;
    for (const auto id : submitted) {
      const auto blocks = engine.pool().blocks(id);
      held += blocks;
      const auto phase = engine.session(id).phase;
      if (phase == SessionPhase::kFinished || phase == SessionPhase::kQueued) {
        EXPECT_EQ(blocks, 0) << "retired session " << id << " leaks KV";
      }
    }
    if (!shared) {
      EXPECT_EQ(held, engine.pool().used_blocks()) << "KV pool leak";
    }
    EXPECT_LE(ev.kv_used_blocks, engine.pool().total_blocks());
    // A non-empty plan must do real work: evictions alone make no forward
    // progress and would spin the engine forever.
    EXPECT_TRUE(!ev.prefills.empty() || !ev.chunks.empty() ||
                !ev.decodes.empty())
        << "step " << ev.step << " planned only evictions";
    for (const auto& c : ev.chunks) {
      EXPECT_LT(c.begin, c.end);
      EXPECT_LE(c.end, engine.session(c.id).request.target_len());
    }
  };

  // Bounded starvation: a generous ceiling on total steps — every token
  // costs at least one step slot, but preemption thrash could in principle
  // loop forever; this bound is the liveness assertion.
  std::int64_t total_tokens = 0;
  for (const auto& r : trace) total_tokens += r.target_len();
  const std::int64_t max_steps = 40 * total_tokens + 1000;

  std::size_t next = 0;
  std::int64_t steps = 0;
  while (next < trace.size() || !engine.idle()) {
    while (next < trace.size() &&
           trace[next].arrival_us <= engine.sim_time_us()) {
      submitted.push_back(trace[next].id);
      engine.submit(trace[next++]);
    }
    if (engine.idle()) {
      EXPECT_LT(next, trace.size());
      if (next >= trace.size()) break;
      engine.advance_to(trace[next].arrival_us);
      continue;
    }
    EXPECT_TRUE(engine.step());
    EXPECT_LT(++steps, max_steps) << "starvation: trace failed to drain";
    if (steps >= max_steps) break;
  }

  std::map<SessionId, std::uint64_t> digests;
  for (const auto& r : trace) {
    const Session& s = engine.session(r.id);
    EXPECT_EQ(s.phase, SessionPhase::kFinished) << "session " << r.id;
    EXPECT_EQ(s.generated, r.max_new_tokens) << "session " << r.id;
    digests[r.id] = s.digest;
  }
  return digests;
}

TEST(SchedulerFuzz, DigestsMatchAcrossSerialContinuousChunkedModes) {
  for (const std::uint64_t seed : {11ull, 23ull, 37ull}) {
    const auto trace = fuzz_trace(seed, 24);
    // Serial needs room for one full context; the batched modes run with a
    // tight pool so preemption and chunk-shrinking actually fire.
    Engine serial(fuzz_config(SchedulerMode::kSerial, 0, 8));
    Engine continuous(fuzz_config(SchedulerMode::kContinuous, 0, 8));
    Engine chunked(fuzz_config(SchedulerMode::kContinuous, 24, 8));
    const auto serial_digests = replay_checked(serial, trace);
    const auto continuous_digests = replay_checked(continuous, trace);
    const auto chunked_digests = replay_checked(chunked, trace);
    EXPECT_EQ(serial_digests, continuous_digests) << "seed " << seed;
    EXPECT_EQ(serial_digests, chunked_digests) << "seed " << seed;
  }
}

TEST(SchedulerFuzz, Int8KvDigestsMatchAcrossModes) {
  const auto trace = fuzz_trace(71, 16);
  EngineConfig serial_cfg = fuzz_config(SchedulerMode::kSerial, 0, 8);
  EngineConfig chunked_cfg = fuzz_config(SchedulerMode::kContinuous, 16, 8);
  serial_cfg.kv_precision = core::PanelPrecision::kInt8;
  chunked_cfg.kv_precision = core::PanelPrecision::kInt8;
  Engine serial(serial_cfg);
  Engine chunked(chunked_cfg);
  EXPECT_EQ(replay_checked(serial, trace), replay_checked(chunked, trace));
}

TEST(SchedulerFuzz, TightPoolForcesPreemptionWithoutDivergence) {
  // The smallest legal pool (one max context) under a hostile trace: the
  // run must preempt, and still match serial byte for byte.
  const auto trace = fuzz_trace(101, 20);
  Engine serial(fuzz_config(SchedulerMode::kSerial, 0, 4));
  Engine tight(fuzz_config(SchedulerMode::kContinuous, 16, 4));
  const auto serial_digests = replay_checked(serial, trace);
  const auto tight_digests = replay_checked(tight, trace);
  EXPECT_EQ(serial_digests, tight_digests);
  EXPECT_GT(tight.stats().preemptions, 0) << "pool was not tight enough";
}

TEST(SchedulerFuzz, SharedPrefixDigestsMatchAcrossModesAndSharing) {
  // Sharing-off serial is the ground truth: adopted pages and mid-stream
  // digest seeding must reproduce exactly what a from-scratch prefill of
  // every prompt computes, across both batched modes.
  for (const std::uint64_t seed : {13ull, 29ull}) {
    const auto trace = prefix_fuzz_trace(seed, 24);
    EngineConfig off_cfg = fuzz_config(SchedulerMode::kSerial, 0, 8);
    off_cfg.scheduler.prefix_sharing = false;
    Engine serial_off(off_cfg);
    Engine continuous(fuzz_config(SchedulerMode::kContinuous, 0, 8));
    Engine chunked(fuzz_config(SchedulerMode::kContinuous, 24, 8));
    const auto base = replay_checked(serial_off, trace);

    telemetry::ScopedTelemetry scoped(true);
    telemetry::global_registry().reset();
    EXPECT_EQ(base, replay_checked(continuous, trace, /*shared=*/true))
        << "seed " << seed;
    EXPECT_GT(telemetry::global_registry().counter("serve.prefix.hits"), 0)
        << "trace never exercised adoption, seed " << seed;
    EXPECT_EQ(base, replay_checked(chunked, trace, /*shared=*/true))
        << "seed " << seed;
    telemetry::global_registry().reset();
  }
}

TEST(SchedulerFuzz, SharedPrefixSurvivesTightPoolEviction) {
  // One-max-context pool: admission must reclaim tree-only pages and evict
  // residents (freeing only their private pages) without diverging.
  const auto trace = prefix_fuzz_trace(101, 20);
  EngineConfig off_cfg = fuzz_config(SchedulerMode::kSerial, 0, 4);
  off_cfg.scheduler.prefix_sharing = false;
  Engine serial_off(off_cfg);
  Engine tight(fuzz_config(SchedulerMode::kContinuous, 16, 4));
  const auto base = replay_checked(serial_off, trace);
  EXPECT_EQ(base, replay_checked(tight, trace, /*shared=*/true));
}

TEST(SchedulerFuzz, SharedPrefixInt8KvDigestsMatch) {
  const auto trace = prefix_fuzz_trace(43, 20);
  EngineConfig off_cfg = fuzz_config(SchedulerMode::kSerial, 0, 8);
  off_cfg.scheduler.prefix_sharing = false;
  off_cfg.kv_precision = core::PanelPrecision::kInt8;
  EngineConfig on_cfg = fuzz_config(SchedulerMode::kContinuous, 24, 8);
  on_cfg.kv_precision = core::PanelPrecision::kInt8;
  Engine serial_off(off_cfg);
  Engine chunked_on(on_cfg);
  EXPECT_EQ(replay_checked(serial_off, trace),
            replay_checked(chunked_on, trace, /*shared=*/true));
}

TEST(SchedulerFuzz, SpeculativeDecodeMatchesSequentialDecode) {
  // Draft-and-verify must commit exactly the sequential decode's tokens:
  // rejected rows roll back, accepted rows fold in order.
  const auto trace = fuzz_trace(47, 16);
  Engine plain(fuzz_config(SchedulerMode::kSerial, 0, 8));
  EngineConfig spec_cfg = fuzz_config(SchedulerMode::kContinuous, 0, 8);
  spec_cfg.spec_draft_tokens = 3;
  spec_cfg.spec_accept_pct = 75;
  EngineConfig spec_chunked_cfg = fuzz_config(SchedulerMode::kContinuous, 24, 8);
  spec_chunked_cfg.spec_draft_tokens = 3;
  spec_chunked_cfg.spec_accept_pct = 75;
  Engine spec(spec_cfg);
  Engine spec_chunked(spec_chunked_cfg);
  const auto base = replay_checked(plain, trace);

  telemetry::ScopedTelemetry scoped(true);
  telemetry::global_registry().reset();
  EXPECT_EQ(base, replay_checked(spec, trace));
  const auto drafted =
      telemetry::global_registry().counter("serve.spec.drafted");
  const auto accepted =
      telemetry::global_registry().counter("serve.spec.accepted");
  const auto rollbacks =
      telemetry::global_registry().counter("serve.spec.rollbacks");
  EXPECT_GT(drafted, 0);
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rollbacks, 0) << "acceptance 75% must reject sometimes";
  EXPECT_EQ(base, replay_checked(spec_chunked, trace));
  telemetry::global_registry().reset();
}

TEST(SchedulerFuzz, SpeculativeSharedPrefixInt8Matches) {
  // The full stack at once: INT8 KV sidecars, prefix adoption with CoW,
  // and speculative rollback in one engine vs the plain serial baseline.
  const auto trace = prefix_fuzz_trace(59, 20);
  EngineConfig off_cfg = fuzz_config(SchedulerMode::kSerial, 0, 8);
  off_cfg.scheduler.prefix_sharing = false;
  off_cfg.kv_precision = core::PanelPrecision::kInt8;
  EngineConfig full_cfg = fuzz_config(SchedulerMode::kContinuous, 24, 8);
  full_cfg.kv_precision = core::PanelPrecision::kInt8;
  full_cfg.spec_draft_tokens = 3;
  full_cfg.spec_accept_pct = 80;
  Engine serial_off(off_cfg);
  Engine full(full_cfg);
  EXPECT_EQ(replay_checked(serial_off, trace),
            replay_checked(full, trace, /*shared=*/true));
}

TEST(SchedulerFuzz, SameSeedReplaysByteIdenticalTelemetry) {
  const auto run = [] {
    telemetry::global_registry().reset();
    telemetry::ScopedTelemetry scoped(true);
    Engine engine(fuzz_config(SchedulerMode::kContinuous, 24, 8));
    const auto trace = fuzz_trace(5, 24);
    replay_checked(engine, trace);
    return telemetry::dump_json({.include_timers = false});
  };
  const auto dump_a = run();
  const auto dump_b = run();
  EXPECT_EQ(dump_a, dump_b);
  EXPECT_NE(dump_a.find("serve.sched.chunks_emitted"), std::string::npos);
  EXPECT_NE(dump_a.find("serve.sched.tenant_deficit"), std::string::npos);
  telemetry::global_registry().reset();
}

}  // namespace
}  // namespace stof::serve
