// Satellite negative-path tests for the MHA selector (Eq. 1) and the
// block-wise kernel on degenerate masks: empty (fully masked), single-row,
// and sequences shorter than the block size.  Every kernel output is
// validated against the dense masked reference oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "stof/core/rng.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/rowwise_kernel.hpp"
#include "stof/mha/selector.hpp"
#include "stof/sparse/bsr_cache.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/sparse/rowwise_mask.hpp"

namespace stof::mha {
namespace {

constexpr double kTol = 4e-3;

struct Inputs {
  TensorH q, k, v;
};

Inputs make_inputs(const MhaDims& dims, std::uint64_t seed) {
  Rng rng(seed);
  Inputs in{TensorH(dims.qkv_shape()), TensorH(dims.qkv_shape()),
            TensorH(dims.qkv_shape())};
  in.q.fill_random(rng);
  in.k.fill_random(rng);
  in.v.fill_random(rng);
  return in;
}

void expect_matches_reference(const MhaDims& dims, const TensorH& out,
                              const TensorH& ref) {
  ASSERT_EQ(out.shape(), ref.shape());
  for (std::int64_t bh = 0; bh < dims.instances(); ++bh) {
    for (std::int64_t i = 0; i < dims.seq_len; ++i) {
      for (std::int64_t e = 0; e < dims.head_size; ++e) {
        EXPECT_NEAR(float(out.at(bh, i, e)), float(ref.at(bh, i, e)), kTol)
            << "bh " << bh << " row " << i << " elem " << e;
      }
    }
  }
}

// ---- Empty (fully masked) mask ----------------------------------------------

TEST(MhaEdge, EmptyMaskBlockwiseIsAllZero) {
  const MhaDims dims{1, 2, 32, 16};
  const Inputs in = make_inputs(dims, 3);
  const masks::Mask empty(32);  // no valid positions
  const auto bsr = sparse::BsrMask::build(empty, 16, 16);
  ASSERT_EQ(bsr.valid_count(), 0);

  const TensorH out =
      blockwise_attention(dims, in.q, in.k, in.v, bsr, {16, 16});
  const TensorH ref = reference_attention(dims, in.q, in.k, in.v, empty);
  expect_matches_reference(dims, out, ref);
  for (std::int64_t bh = 0; bh < dims.instances(); ++bh) {
    for (std::int64_t i = 0; i < dims.seq_len; ++i) {
      for (std::int64_t e = 0; e < dims.head_size; ++e) {
        EXPECT_EQ(float(out.at(bh, i, e)), 0.0f);
      }
    }
  }
}

TEST(MhaEdge, EmptyMaskRowwiseMatchesReference) {
  const MhaDims dims{1, 2, 32, 16};
  const Inputs in = make_inputs(dims, 4);
  const masks::Mask empty(32);
  const auto rw = sparse::RowwiseMask::build(empty);
  const TensorH out = rowwise_attention(dims, in.q, in.k, in.v, rw);
  const TensorH ref = reference_attention(dims, in.q, in.k, in.v, empty);
  expect_matches_reference(dims, out, ref);
}

TEST(MhaEdge, EmptyMaskSelectorPicksRowwiseWithoutCrashing) {
  const MhaDims dims{1, 2, 64, 16};
  const masks::Mask empty(64);
  sparse::BsrCache cache(empty);
  const auto& mask16 = cache.at(16, 16);
  // Zero valid-block ratio minus the sparsity penalty: strictly row-wise.
  EXPECT_LT(eq1_threshold(mask16), 0.0);
  const auto choice =
      select_kernel(dims, empty, mask16, gpusim::a100(),
                    [&](int bm, int bn) -> const sparse::BsrMask& {
                      return cache.at(bm, bn);
                    });
  EXPECT_EQ(choice.kind, KernelKind::kRowwise);
}

// ---- Single-row mask --------------------------------------------------------

TEST(MhaEdge, SingleRowMaskMatchesReference) {
  const MhaDims dims{1, 2, 32, 16};
  const Inputs in = make_inputs(dims, 5);
  masks::Mask single(32);
  for (std::int64_t j = 0; j < 8; ++j) single.set(0, j);  // only row 0 attends

  const auto bsr = sparse::BsrMask::build(single, 16, 16);
  const TensorH ref = reference_attention(dims, in.q, in.k, in.v, single);
  const TensorH bw = blockwise_attention(dims, in.q, in.k, in.v, bsr, {16, 16});
  expect_matches_reference(dims, bw, ref);

  const auto rw_mask = sparse::RowwiseMask::build(single);
  const TensorH rw = rowwise_attention(dims, in.q, in.k, in.v, rw_mask);
  expect_matches_reference(dims, rw, ref);

  // Rows 1.. are fully masked: exact zeros, not garbage.
  for (std::int64_t i = 1; i < dims.seq_len; ++i) {
    EXPECT_EQ(float(bw.at(0, i, 0)), 0.0f) << "row " << i;
  }
}

TEST(MhaEdge, SingleRowMaskSelectorPicksRowwise) {
  const MhaDims dims{1, 2, 64, 16};
  masks::Mask single(64);
  for (std::int64_t j = 0; j < 64; ++j) single.set(0, j);
  sparse::BsrCache cache(single);
  const auto& mask16 = cache.at(16, 16);
  EXPECT_LT(eq1_threshold(mask16), 0.0);
  const auto choice =
      select_kernel(dims, single, mask16, gpusim::a100(),
                    [&](int bm, int bn) -> const sparse::BsrMask& {
                      return cache.at(bm, bn);
                    });
  EXPECT_EQ(choice.kind, KernelKind::kRowwise);
  EXPECT_GT(choice.predicted_us, 0.0);
}

// ---- Sequence shorter than the block size -----------------------------------

TEST(MhaEdge, SeqShorterThanBlockMatchesReference) {
  // seq 24 under 32x32 blocks: a single edge block, partially out of range.
  const MhaDims dims{2, 2, 24, 16};
  const Inputs in = make_inputs(dims, 6);
  const auto mask = masks::causal(24);
  const auto bsr = sparse::BsrMask::build(mask, 32, 32);
  ASSERT_EQ(bsr.rows(), 1);
  ASSERT_EQ(bsr.cols(), 1);

  const TensorH out =
      blockwise_attention(dims, in.q, in.k, in.v, bsr, {32, 32});
  const TensorH ref = reference_attention(dims, in.q, in.k, in.v, mask);
  expect_matches_reference(dims, out, ref);
}

TEST(MhaEdge, SeqShorterThanBlockCostIsFiniteAndPositive) {
  const MhaDims dims{1, 2, 24, 16};
  const auto bsr = sparse::BsrMask::build(masks::causal(24), 32, 32);
  const auto cost = blockwise_cost(dims, bsr, {32, 32}, gpusim::a100());
  gpusim::Stream s(gpusim::a100());
  s.launch("edge_blockwise", cost);
  EXPECT_TRUE(std::isfinite(s.total_us()));
  EXPECT_GT(s.total_us(), 0.0);
}

}  // namespace
}  // namespace stof::mha
