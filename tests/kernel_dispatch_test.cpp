// Cross-ISA bit-exactness harness for the runtime-dispatched kernel table.
//
// Every SIMD table must produce outputs byte-identical to the scalar
// reference table — that is the contract that lets the packed engine keep
// its bit-identity guarantee while dispatching to AVX2/AVX-512/NEON at
// runtime.  These tests sweep every ISA available_isas() reports against
// the scalar table: exhaustive half<->float conversion sweeps (including
// NaN payloads, infinities, and denormals), odd-shaped GEMM/dot/axpy
// sweeps, and the INT8 tier (whose int32 arithmetic must agree exactly).
//
// The suite is also registered a second time with STOF_FORCE_SCALAR=1
// (see tests/CMakeLists.txt), which pins best_supported_isa() to scalar
// and exercises the dispatcher's environment override.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "stof/core/half.hpp"
#include "stof/core/kernels.hpp"
#include "stof/core/rng.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::core {
namespace {

bool force_scalar_env() {
  const char* force = std::getenv("STOF_FORCE_SCALAR");
  return force != nullptr && force[0] != '\0' &&
         !(force[0] == '0' && force[1] == '\0');
}

/// The non-scalar ISAs to diff against the reference table.
std::vector<Isa> simd_isas() {
  std::vector<Isa> out;
  for (const Isa isa : available_isas()) {
    if (isa != Isa::kScalar) out.push_back(isa);
  }
  return out;
}

bool bytes_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Deterministic "random" floats in [-4, 4], including exact zeros.
std::vector<float> random_floats(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto& x : out) {
    x = rng.bernoulli(0.05) ? 0.0f : rng.uniform(-4.0f, 4.0f);
  }
  return out;
}

TEST(KernelDispatch, AvailableIsasStartScalarAndActiveMatchesBest) {
  const auto isas = available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  const Isa best = best_supported_isa();
  EXPECT_TRUE(isa_available(best));
  EXPECT_EQ(active_isa(), best);
  if (force_scalar_env()) {
    EXPECT_EQ(best, Isa::kScalar) << "STOF_FORCE_SCALAR must pin scalar";
  }
  EXPECT_EQ(scalar_kernel_table().isa, Isa::kScalar);
  for (const Isa isa : isas) {
    EXPECT_EQ(kernel_table_for(isa).isa, isa);
  }
}

TEST(KernelDispatch, ScopedIsaSwitchesAndRestores) {
  const Isa before = active_isa();
  {
    ScopedKernelIsa forced(Isa::kScalar);
    EXPECT_EQ(active_isa(), Isa::kScalar);
    EXPECT_EQ(kernels().isa, Isa::kScalar);
  }
  EXPECT_EQ(active_isa(), before);
}

TEST(KernelDispatch, NoteKernelDispatchRecordsGaugeAndCounter) {
  telemetry::ScopedTelemetry on(true);
  telemetry::global_registry().reset();
  note_kernel_dispatch("axpy", 3);
  note_kernel_dispatch("axpy");
  EXPECT_EQ(telemetry::global_registry().gauge("exec.dispatch.isa"),
            static_cast<double>(static_cast<int>(active_isa())));
  EXPECT_EQ(telemetry::global_registry().counter("exec.dispatch.axpy.calls"),
            4);
}

TEST(KernelDispatch, HalfToFloatMatchesScalarForEveryBitPattern) {
  std::vector<half> src;
  src.reserve(1 << 16);
  for (std::uint32_t bits = 0; bits < (1u << 16); ++bits) {
    src.push_back(half::from_bits(static_cast<std::uint16_t>(bits)));
  }
  const auto n = static_cast<std::int64_t>(src.size());
  std::vector<float> ref(src.size());
  scalar_kernel_table().half_to_float(src.data(), ref.data(), n);
  for (const Isa isa : simd_isas()) {
    std::vector<float> got(src.size(), -1.0f);
    kernel_table_for(isa).half_to_float(src.data(), got.data(), n);
    // Byte compare: NaN payloads must survive identically too.
    EXPECT_TRUE(bytes_equal(ref, got)) << isa_name(isa);
  }
}

TEST(KernelDispatch, FloatToHalfMatchesScalarOnRandomBitPatternsAndSpecials) {
  Rng rng(0x5eedULL);
  std::vector<float> src;
  for (int i = 0; i < 200000; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng.next_u64());
    float x;
    std::memcpy(&x, &bits, sizeof(x));
    src.push_back(x);  // any bit pattern: NaNs, infs, denormals included
  }
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const float x : {0.0f, -0.0f, inf, -inf, qnan, -qnan, 65504.0f,
                        65520.0f, -65536.0f, 1e-8f, -5.96e-8f, 6.1e-5f}) {
    src.push_back(x);
  }
  const auto n = static_cast<std::int64_t>(src.size());
  std::vector<half> ref(src.size());
  scalar_kernel_table().float_to_half(src.data(), ref.data(), n);
  for (const Isa isa : simd_isas()) {
    std::vector<half> got(src.size());
    kernel_table_for(isa).float_to_half(src.data(), got.data(), n);
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), ref.size() * sizeof(half)))
        << isa_name(isa);
  }
}

TEST(KernelDispatch, SgemmAccumulateMatchesScalarOnOddShapes) {
  const std::int64_t shapes[][3] = {{1, 1, 1},  {1, 7, 3},   {2, 8, 16},
                                    {3, 13, 17}, {5, 64, 33}, {8, 31, 64},
                                    {17, 96, 48}, {64, 64, 64}};
  for (const auto& shape : shapes) {
    const std::int64_t rows = shape[0], k = shape[1], n = shape[2];
    const auto a = random_floats(rows * k, 11 + rows);
    const auto b = random_floats(k * n, 23 + n);
    auto ref = random_floats(rows * n, 37);  // nonzero initial accumulators
    auto got0 = ref;
    scalar_kernel_table().sgemm_accumulate(a.data(), b.data(), ref.data(),
                                           rows, k, n);
    for (const Isa isa : simd_isas()) {
      auto got = got0;
      kernel_table_for(isa).sgemm_accumulate(a.data(), b.data(), got.data(),
                                             rows, k, n);
      EXPECT_TRUE(bytes_equal(ref, got))
          << isa_name(isa) << " " << rows << "x" << k << "x" << n;
    }
  }
}

TEST(KernelDispatch, SgemmAccumulateLdMatchesScalarWithLooseLeadingDims) {
  const std::int64_t rows = 7, depth = 19, cols = 29;
  const std::int64_t lda = depth + 3, ldb = cols + 5, ldc = cols + 2;
  const auto a = random_floats(rows * lda, 101);
  const auto b = random_floats(depth * ldb, 103);
  auto ref = random_floats(rows * ldc, 107);
  const auto init = ref;
  scalar_kernel_table().sgemm_accumulate_ld(a.data(), lda, b.data(), ldb,
                                            ref.data(), ldc, rows, depth,
                                            cols);
  for (const Isa isa : simd_isas()) {
    auto got = init;
    kernel_table_for(isa).sgemm_accumulate_ld(a.data(), lda, b.data(), ldb,
                                              got.data(), ldc, rows, depth,
                                              cols);
    EXPECT_TRUE(bytes_equal(ref, got)) << isa_name(isa);
  }
}

TEST(KernelDispatch, DecodePrimitivesMatchScalar) {
  for (const std::int64_t n : {1, 2, 3, 4, 7, 8, 15, 16, 17, 64, 100, 257}) {
    const auto x = random_floats(n, 1000 + n);
    const auto y0 = random_floats(n, 2000 + n);
    const KernelTable& ref = scalar_kernel_table();

    auto ya = y0;
    ref.axpy(ya.data(), x.data(), 1.7f, n);
    auto yb = y0;
    ref.axpby(yb.data(), x.data(), 0.4f, 1.0f, n);
    auto ys = y0;
    ref.scale_inplace(ys.data(), -2.5f, n);
    const float rmax = ref.reduce_max(x.data(), n);
    const float amax = ref.abs_max(x.data(), n);

    for (const Isa isa : simd_isas()) {
      const KernelTable& kt = kernel_table_for(isa);
      auto g = y0;
      kt.axpy(g.data(), x.data(), 1.7f, n);
      EXPECT_TRUE(bytes_equal(ya, g)) << isa_name(isa) << " axpy n=" << n;
      g = y0;
      kt.axpby(g.data(), x.data(), 0.4f, 1.0f, n);
      EXPECT_TRUE(bytes_equal(yb, g)) << isa_name(isa) << " axpby n=" << n;
      g = y0;
      kt.scale_inplace(g.data(), -2.5f, n);
      EXPECT_TRUE(bytes_equal(ys, g)) << isa_name(isa) << " scale n=" << n;
      EXPECT_EQ(rmax, kt.reduce_max(x.data(), n))
          << isa_name(isa) << " reduce_max n=" << n;
      EXPECT_EQ(amax, kt.abs_max(x.data(), n))
          << isa_name(isa) << " abs_max n=" << n;
    }
  }
}

TEST(KernelDispatch, DotRowsMatchesScalarContiguousAndGathered) {
  const std::int64_t d = 48, stride = 57, count = 23;
  const auto q = random_floats(d, 301);
  const auto base = random_floats(64 * stride, 303);
  // Gather indices stored exactly in floats, shuffled, with repeats.
  std::vector<float> idx;
  Rng rng(404);
  for (std::int64_t i = 0; i < count; ++i) {
    idx.push_back(static_cast<float>(rng.next_below(64)));
  }
  const KernelTable& ref = scalar_kernel_table();
  std::vector<float> out_ref(static_cast<std::size_t>(count));
  const float* index_modes[] = {nullptr, idx.data()};
  for (const float* ip : index_modes) {
    ref.dot_rows(q.data(), base.data(), stride, ip, out_ref.data(), count, d);
    for (const Isa isa : simd_isas()) {
      std::vector<float> got(static_cast<std::size_t>(count), -1.0f);
      kernel_table_for(isa).dot_rows(q.data(), base.data(), stride, ip,
                                     got.data(), count, d);
      EXPECT_TRUE(bytes_equal(out_ref, got))
          << isa_name(isa) << (ip == nullptr ? " contiguous" : " gathered");
    }
  }
}

TEST(KernelDispatch, Int8TierAgreesExactlyAcrossIsas) {
  for (const std::int64_t n : {1, 3, 8, 16, 31, 64, 129}) {
    const auto src = random_floats(n, 7000 + n);
    const KernelTable& ref = scalar_kernel_table();
    const auto qp = quant_params(ref.abs_max(src.data(), n));

    std::vector<std::int8_t> codes_ref(static_cast<std::size_t>(n));
    ref.quantize_i8(src.data(), codes_ref.data(), n, qp.inv_scale);
    std::vector<float> deq_ref(static_cast<std::size_t>(n));
    ref.dequantize_i8(codes_ref.data(), deq_ref.data(), n, qp.scale);
    const auto other = random_floats(n, 9000 + n);
    std::vector<std::int8_t> codes_b(static_cast<std::size_t>(n));
    ref.quantize_i8(other.data(), codes_b.data(), n, qp.inv_scale);
    const std::int32_t dot_ref = ref.dot_i8(codes_ref.data(), codes_b.data(),
                                            n);
    auto y_ref = random_floats(n, 11000 + n);
    const auto y0 = y_ref;
    ref.axpy_i8(y_ref.data(), codes_ref.data(), 0.37f, n);

    for (const Isa isa : simd_isas()) {
      const KernelTable& kt = kernel_table_for(isa);
      std::vector<std::int8_t> codes(static_cast<std::size_t>(n), 99);
      kt.quantize_i8(src.data(), codes.data(), n, qp.inv_scale);
      EXPECT_EQ(codes_ref, codes) << isa_name(isa) << " n=" << n;
      std::vector<float> deq(static_cast<std::size_t>(n), -1.0f);
      kt.dequantize_i8(codes_ref.data(), deq.data(), n, qp.scale);
      EXPECT_TRUE(bytes_equal(deq_ref, deq)) << isa_name(isa) << " n=" << n;
      EXPECT_EQ(dot_ref, kt.dot_i8(codes_ref.data(), codes_b.data(), n))
          << isa_name(isa) << " n=" << n;
      auto y = y0;
      kt.axpy_i8(y.data(), codes_ref.data(), 0.37f, n);
      EXPECT_TRUE(bytes_equal(y_ref, y)) << isa_name(isa) << " n=" << n;
    }
  }
}

TEST(KernelDispatch, Int8GemmIsDeterministicAcrossIsas) {
  const std::int64_t rows = 9, depth = 37, cols = 21;
  const std::int64_t lda = depth, ldb = cols + 3, ldc = cols;
  Rng rng(606);
  std::vector<std::int8_t> a(static_cast<std::size_t>(rows * lda));
  std::vector<std::int8_t> b(static_cast<std::size_t>(depth * ldb));
  for (auto& v : a) {
    v = static_cast<std::int8_t>(
        static_cast<std::int64_t>(rng.next_below(255)) - 127);
  }
  for (auto& v : b) {
    v = static_cast<std::int8_t>(
        static_cast<std::int64_t>(rng.next_below(255)) - 127);
  }
  const auto a_scales = random_floats(rows, 707);
  auto ref = random_floats(rows * ldc, 808);
  const auto init = ref;
  scalar_kernel_table().sgemm_i8_accumulate_ld(a.data(), lda, b.data(), ldb,
                                               ref.data(), ldc, rows, depth,
                                               cols, a_scales.data(), 0.031f);
  for (const Isa isa : simd_isas()) {
    auto got = init;
    kernel_table_for(isa).sgemm_i8_accumulate_ld(
        a.data(), lda, b.data(), ldb, got.data(), ldc, rows, depth, cols,
        a_scales.data(), 0.031f);
    EXPECT_TRUE(bytes_equal(ref, got)) << isa_name(isa);
  }
}

}  // namespace
}  // namespace stof::core
