// Unit tests for the binary16 emulation in stof/core/half.hpp.
#include "stof/core/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace stof {
namespace {

TEST(Half, ZeroRoundTrips) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000);
  EXPECT_EQ(float(half(0.0f)), 0.0f);
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(half(-2.0f).bits(), 0xc000);
  EXPECT_EQ(half(0.5f).bits(), 0x3800);
  EXPECT_EQ(half(65504.0f).bits(), 0x7bff);  // max finite half
}

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(half(static_cast<float>(i))), static_cast<float>(i))
        << "integer " << i;
  }
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_EQ(half(70000.0f).bits(), 0x7c00);
  EXPECT_EQ(half(-70000.0f).bits(), 0xfc00);
  EXPECT_TRUE(std::isinf(float(half(1e10f))));
}

TEST(Half, InfinityAndNanPropagate) {
  EXPECT_TRUE(std::isinf(float(half(std::numeric_limits<float>::infinity()))));
  EXPECT_TRUE(std::isnan(float(half(std::numeric_limits<float>::quiet_NaN()))));
  EXPECT_TRUE(std::isnan(float(std::numeric_limits<half>::quiet_NaN())));
}

TEST(Half, SubnormalsRepresented) {
  const float denorm_min = float(std::numeric_limits<half>::denorm_min());
  EXPECT_GT(denorm_min, 0.0f);
  EXPECT_EQ(half(denorm_min).bits(), 0x0001);
  // Half of the smallest subnormal rounds to zero (round-to-nearest-even).
  EXPECT_EQ(half(denorm_min * 0.49f).bits(), 0x0000);
}

TEST(Half, RoundToNearestEven) {
  // 2049 is exactly between representable 2048 and 2050 -> rounds to 2048.
  EXPECT_EQ(float(half(2049.0f)), 2048.0f);
  // 2051 is between 2050 and 2052 -> rounds to 2052 (even mantissa).
  EXPECT_EQ(float(half(2051.0f)), 2052.0f);
}

TEST(Half, ConversionIsMonotonic) {
  float prev = -65504.0f;
  for (float x = -65504.0f; x <= 65504.0f; x += 117.7f) {
    const float fx = float(half(x));
    EXPECT_GE(fx, prev) << "x=" << x;
    prev = fx;
  }
}

TEST(Half, RelativeErrorWithinEpsilon) {
  // Round-to-nearest guarantees relative error <= 2^-11 for normal values.
  for (float x : {0.001f, 0.1f, 0.3333f, 1.5f, 3.14159f, 1234.5f, 60000.0f}) {
    const float fx = float(half(x));
    EXPECT_LE(std::abs(fx - x) / x, 0x1.0p-11) << "x=" << x;
  }
}

TEST(Half, ArithmeticGoesThroughFloat) {
  half a(1.5f), b(2.25f);
  EXPECT_EQ(float(a + b), 3.75f);
  EXPECT_EQ(float(a * b), 3.375f);
  EXPECT_EQ(float(b - a), 0.75f);
  EXPECT_EQ(float(a / half(0.5f)), 3.0f);
  a += b;
  EXPECT_EQ(float(a), 3.75f);
}

TEST(Half, Comparisons) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_EQ(half(1.0f), half(1.0f));
  EXPECT_EQ(half(0.0f), half(-0.0f));  // IEEE: +0 == -0
  EXPECT_GE(half(5.5f), half(5.5f));
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Every finite half value must convert to float and back unchanged.
  for (std::uint32_t b = 0; b <= 0xffff; ++b) {
    const auto h = half::from_bits(static_cast<std::uint16_t>(b));
    const float f = float(h);
    if (std::isnan(f)) continue;  // NaN payloads may canonicalize
    EXPECT_EQ(half(f).bits(), h.bits()) << "bits=" << b;
  }
}

}  // namespace
}  // namespace stof
