// Tests for the analytical kernel selector (Eq. 1 / Eq. 2), the UnifiedMha
// facade, and the cost-model shapes behind the paper's Fig. 10/11 claims.
#include <gtest/gtest.h>

#include "stof/core/rng.hpp"
#include "stof/gpusim/timeline.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/reference.hpp"
#include "stof/mha/selector.hpp"
#include "stof/mha/unified.hpp"

namespace stof::mha {
namespace {

sparse::BsrMask bsr16(const masks::Mask& m) {
  return sparse::BsrMask::build(m, 16, 16);
}

// ---- Eq. 1 -------------------------------------------------------------------

TEST(Eq1, RowwiseForShortSparseSequences) {
  // Paper §5.2: STOF enables the row-wise kernel at (1, 128) sliding window.
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow,
                                 .seq_len = 128}
                     .build();
  EXPECT_LT(eq1_threshold(bsr16(m)), 0.0);
}

TEST(Eq1, BlockwiseForLongSequences) {
  for (std::int64_t seq : {512, 1024, 2048}) {
    const auto m = masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow,
                                   .seq_len = seq}
                       .build();
    EXPECT_GT(eq1_threshold(bsr16(m)), 0.0) << "seq " << seq;
  }
}

TEST(Eq1, BlockwiseForDenseCompoundMasks) {
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                 .seq_len = 1024}
                     .build();
  EXPECT_GT(eq1_threshold(bsr16(m)), 0.0);
}

TEST(Eq1, ThresholdMonotoneInDensity) {
  // A denser mask must never move the threshold toward row-wise.
  const auto sparse_m = masks::sliding_window(512, 16);
  const auto dense_m = masks::sliding_window(512, 128);
  EXPECT_LT(eq1_threshold(bsr16(sparse_m)), eq1_threshold(bsr16(dense_m)));
}

TEST(Eq1, RequiresSixteenGranularity) {
  const auto b32 = sparse::BsrMask::build(masks::causal(64), 32, 32);
  EXPECT_THROW(eq1_threshold(b32), Error);
}

TEST(Eq1, TinySequencesAlwaysRowwise) {
  EXPECT_LT(eq1_threshold(bsr16(masks::dense(32))), 0.0);
}

// ---- Eq. 2 -------------------------------------------------------------------

TEST(Eq2, OversizedBlocksScoreZero) {
  const auto dev = gpusim::a100();
  const MhaDims dims{8, 12, 1024, 64};
  BlockwiseParams p;
  p.block_m = p.block_n = 1024;  // req_SMEM far beyond 192KB
  EXPECT_EQ(eq2_score(dev, p, dims), 0.0);
}

TEST(Eq2, OverScheduledWarpsLowerScore) {
  // On the RTX 4090 (48 warps/SM), 32 warps per block cap the SM at one
  // resident block (OCC 32/48) while 16 warps fit three (OCC 48/48).
  const auto dev = gpusim::rtx4090();
  const MhaDims dims{8, 12, 1024, 64};
  BlockwiseParams few{64, 64, 16};
  BlockwiseParams many{64, 64, 32};  // over-scheduled
  EXPECT_GT(eq2_score(dev, few, dims), eq2_score(dev, many, dims));
}

TEST(Eq2, ScoreGrowsWithWorkload) {
  const auto dev = gpusim::rtx4090();
  BlockwiseParams p{64, 64, 4};
  const MhaDims small{1, 12, 128, 64};
  const MhaDims large{16, 12, 2048, 64};
  EXPECT_GT(eq2_score(dev, p, large), eq2_score(dev, p, small));
}

TEST(Eq2, ParamSpaceRespectsPaperConstraints) {
  for (const auto& p : blockwise_param_space()) {
    EXPECT_EQ(p.block_m % 16, 0);
    EXPECT_EQ(p.block_n % 16, 0);
    EXPECT_EQ(p.block_m & (p.block_m - 1), 0);  // power of two
    EXPECT_EQ(p.block_n & (p.block_n - 1), 0);
    EXPECT_NO_THROW(p.validate());
  }
}

// ---- UnifiedMha facade ----------------------------------------------------------

TEST(UnifiedMha, PlansRowwiseAtSmallScale) {
  const MhaDims dims{1, 12, 128, 64};
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow,
                                 .seq_len = 128}
                     .build();
  UnifiedMha mha(dims, m, gpusim::a100());
  EXPECT_EQ(mha.plan().choice.kind, KernelKind::kRowwise);
  EXPECT_GT(mha.plan().analysis_us, 0.0);
}

TEST(UnifiedMha, PlansBlockwiseAtLargeScale) {
  const MhaDims dims{16, 12, 2048, 64};
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                 .seq_len = 2048}
                     .build();
  UnifiedMha mha(dims, m, gpusim::a100());
  EXPECT_EQ(mha.plan().choice.kind, KernelKind::kBlockwise);
  EXPECT_GT(mha.plan().choice.blockwise.block_m, 0);
}

TEST(UnifiedMha, RunMatchesReference) {
  const MhaDims dims{1, 2, 64, 16};
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kLongformer,
                                 .seq_len = 64}
                     .build();
  Rng rng(21);
  TensorH q(dims.qkv_shape()), k(dims.qkv_shape()), v(dims.qkv_shape());
  q.fill_random(rng);
  k.fill_random(rng);
  v.fill_random(rng);

  UnifiedMha mha(dims, m, gpusim::rtx4090());
  gpusim::Stream stream(gpusim::rtx4090());
  const TensorH out = mha.run(q, k, v, stream);
  const TensorH ref = reference_attention(dims, q, k, v, m);
  EXPECT_LT(max_abs_diff(out, ref), 4e-3);
  EXPECT_EQ(stream.records().size(), 1u);  // one fused kernel launch
}

TEST(UnifiedMha, ForceKernelOverridesSelection) {
  const MhaDims dims{1, 12, 128, 64};
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow,
                                 .seq_len = 128}
                     .build();
  MhaOptions opt;
  opt.force_kernel = KernelKind::kBlockwise;
  UnifiedMha mha(dims, m, gpusim::a100(), opt);
  EXPECT_EQ(mha.plan().choice.kind, KernelKind::kBlockwise);
}

TEST(UnifiedMha, SimulateMatchesRunCost) {
  const MhaDims dims{2, 12, 256, 64};
  const auto m = masks::MaskSpec{.kind = masks::PatternKind::kBigBird,
                                 .seq_len = 256}
                     .build();
  UnifiedMha mha(dims, m, gpusim::a100());
  gpusim::Stream s1(gpusim::a100()), s2(gpusim::a100());
  const double t = mha.simulate(s1);
  Rng rng(22);
  TensorH q(dims.qkv_shape()), k(dims.qkv_shape()), v(dims.qkv_shape());
  q.fill_random(rng);
  k.fill_random(rng);
  v.fill_random(rng);
  (void)mha.run(q, k, v, s2);
  EXPECT_DOUBLE_EQ(t, s2.total_us());
}

// ---- Cost-model shapes behind Fig. 10/11 ---------------------------------------

TEST(MhaCost, SparserMasksAreFaster) {
  const MhaDims dims{8, 12, 1024, 64};
  const auto dev = gpusim::a100();
  const BlockwiseParams p{64, 64, 4};
  const auto t = [&](const masks::Mask& m) {
    return gpusim::estimate_time_us(
        blockwise_cost(dims, sparse::BsrMask::build(m, 64, 64), p, dev), dev);
  };
  const double sliding = t(masks::sliding_window(1024, 32));
  const double bigbird = t(masks::bigbird(1024, 32, 32, 0.10, 32, 42));
  const double dense = t(masks::dense(1024));
  EXPECT_LT(sliding, bigbird);
  EXPECT_LT(bigbird, dense);
}

TEST(MhaCost, PaddingRemovesBankConflictPenalty) {
  const MhaDims dims{8, 12, 1024, 64};
  const auto dev = gpusim::rtx4090();
  const auto bsr = sparse::BsrMask::build(masks::sliding_window(1024, 32), 64, 64);
  BlockwiseParams padded{64, 64, 4, /*padding=*/16};
  BlockwiseParams unpadded{64, 64, 4, /*padding=*/0};
  const auto c_pad = blockwise_cost(dims, bsr, padded, dev);
  const auto c_raw = blockwise_cost(dims, bsr, unpadded, dev);
  EXPECT_DOUBLE_EQ(c_pad.bank_conflict_factor, 1.0);
  EXPECT_GT(c_raw.bank_conflict_factor, 1.0);
}

TEST(MhaCost, AsyncCopyImprovesOverlap) {
  const MhaDims dims{8, 12, 1024, 64};
  const auto dev = gpusim::a100();
  const auto bsr = sparse::BsrMask::build(masks::sliding_window(1024, 32), 64, 64);
  BlockwiseParams async_on{64, 64, 4, 16, true};
  BlockwiseParams async_off{64, 64, 4, 16, false};
  EXPECT_LT(gpusim::estimate_time_us(blockwise_cost(dims, bsr, async_on, dev), dev),
            gpusim::estimate_time_us(blockwise_cost(dims, bsr, async_off, dev), dev));
}

TEST(MhaCost, RowwiseWinsAtSmallScaleBlockwiseAtLarge) {
  const auto dev = gpusim::a100();
  const auto time_both = [&](const MhaDims& dims, const masks::Mask& m) {
    // Best parameter setting on each side, as the selector would pick.
    const auto rw = sparse::RowwiseMask::build(m);
    double t_row = 1e300;
    for (int warps : {2, 4, 8}) {
      t_row = std::min(t_row, gpusim::estimate_time_us(
                                  rowwise_cost(dims, rw, {warps}, dev), dev));
    }
    double t_blk = 1e300;
    for (const auto& p : blockwise_param_space()) {
      const auto bsr = sparse::BsrMask::build(m, p.block_m, p.block_n);
      t_blk = std::min(t_blk, gpusim::estimate_time_us(
                                  blockwise_cost(dims, bsr, p, dev), dev));
    }
    return std::make_pair(t_row, t_blk);
  };
  // At (1, 128) both kernels are launch-bound and land within model
  // resolution of each other; Eq. 1 makes the choice analytically.  Assert
  // the row-wise kernel is at least competitive (not strictly faster).
  const auto small = time_both(
      {1, 12, 128, 64},
      masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow, .seq_len = 128}
          .build());
  EXPECT_LT(small.first, small.second * 1.10)
      << "row-wise should be competitive at (1,128)";

  const auto large = time_both(
      {16, 12, 2048, 64},
      masks::MaskSpec{.kind = masks::PatternKind::kSlidingWindow,
                      .seq_len = 2048}
          .build());
  EXPECT_GT(large.first, large.second) << "block-wise should win at (16,2048)";
}

}  // namespace
}  // namespace stof::mha
