// Decode-continuation bit-identity: a chain of single-token paged decode
// steps over a growing KV cache must reproduce one full-sequence blockwise
// pass bit-for-bit (same mask, KV page size == BLOCK_N).  This is the
// invariant the serving engine's preemption/recompute path relies on.
#include <gtest/gtest.h>

#include <cstring>

#include "stof/core/packed.hpp"
#include "stof/core/panel_cache_registry.hpp"
#include "stof/core/rng.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/mha/decode.hpp"
#include "stof/serve/kv_pool.hpp"
#include "stof/sparse/bsr_mask.hpp"

namespace stof::mha {
namespace {

constexpr std::int64_t kHeads = 2;
constexpr std::int64_t kHeadSize = 32;
constexpr std::int64_t kTotal = 48;
constexpr std::int64_t kBlockTokens = 16;

struct Fixture {
  TensorH q, k, v;
  masks::Mask mask{kTotal};

  explicit Fixture(std::uint64_t seed, masks::PatternKind kind)
      : q(Shape{kHeads, kTotal, kHeadSize}),
        k(Shape{kHeads, kTotal, kHeadSize}),
        v(Shape{kHeads, kTotal, kHeadSize}) {
    Rng rng(seed);
    q.fill_random(rng);
    k.fill_random(rng);
    v.fill_random(rng);
    mask = masks::MaskSpec{.kind = kind, .seq_len = kTotal}.build() &
           masks::causal(kTotal);
  }
};

/// Runs the decode chain against the full blockwise pass and asserts every
/// output row is byte-identical.  With `registry` set, the chain reads the
/// KV pool's float-panel sidecar (incremental conversion through that
/// registry) — the outputs must not change by a single bit.
void expect_chain_matches_full_pass(const Fixture& f,
                                    core::PanelCacheRegistry* registry =
                                        nullptr) {
  const MhaDims dims{1, kHeads, kTotal, kHeadSize};
  const BlockwiseParams params{16, 16};
  const TensorH full = blockwise_attention(
      dims, f.q, f.k, f.v,
      sparse::BsrMask::build(f.mask, params.block_m, params.block_n), params);

  serve::KvPool pool(
      serve::KvPoolConfig{8, kBlockTokens, kHeads, kHeadSize}, registry);
  for (std::int64_t pos = 0; pos < kTotal; ++pos) {
    // Append position pos's K/V to the paged cache.
    auto slot = pool.append_token(/*id=*/0);
    ASSERT_TRUE(slot.has_value());
    for (std::int64_t h = 0; h < kHeads; ++h) {
      for (std::int64_t e = 0; e < kHeadSize; ++e) {
        slot->k[h * kHeadSize + e] = f.k.at(h, pos, e);
        slot->v[h * kHeadSize + e] = f.v.at(h, pos, e);
      }
    }

    // Single-token decode for this position.
    TensorH q_step(Shape{kHeads, 1, kHeadSize});
    for (std::int64_t h = 0; h < kHeads; ++h) {
      for (std::int64_t e = 0; e < kHeadSize; ++e) {
        q_step.at(h, 0, e) = f.q.at(h, pos, e);
      }
    }
    std::vector<std::int32_t> cols;
    for (std::int64_t j = 0; j <= pos; ++j) {
      if (f.mask.at(pos, j)) cols.push_back(static_cast<std::int32_t>(j));
    }
    PagedSeq seq{pos + 1, kBlockTokens, pool.k_blocks(0), pool.v_blocks(0),
                 cols};
    if (registry != nullptr) {
      pool.ensure_float_panels(0);
      seq.kf_blocks = pool.k_float_blocks(0);
      seq.vf_blocks = pool.v_float_blocks(0);
    }
    const TensorH step =
        decode_attention_paged(kHeads, kHeadSize, {&seq, 1}, q_step);

    // Byte-compare the step output to the full pass's row `pos`.
    for (std::int64_t h = 0; h < kHeads; ++h) {
      ASSERT_EQ(std::memcmp(&step.at(h, 0, 0), &full.at(h, pos, 0),
                            static_cast<std::size_t>(kHeadSize) *
                                sizeof(half)),
                0)
          << "pos=" << pos << " h=" << h;
    }
  }
}

TEST(DecodeSession, ChainBitIdenticalToBlockwisePassCausal) {
  expect_chain_matches_full_pass(Fixture(31, masks::PatternKind::kCausal));
}

TEST(DecodeSession, ChainBitIdenticalToBlockwisePassStrided) {
  expect_chain_matches_full_pass(Fixture(37, masks::PatternKind::kStrided));
}

TEST(DecodeSession, ChainBitIdenticalToBlockwisePassBigBird) {
  expect_chain_matches_full_pass(Fixture(41, masks::PatternKind::kBigBird));
}

TEST(DecodeSession, ChainBitIdenticalUnderScalarExecution) {
  ScopedPackedExecution scalar(false);
  expect_chain_matches_full_pass(Fixture(43, masks::PatternKind::kLongformer));
}

TEST(DecodeSession, SidecarChainBitIdenticalToBlockwisePass) {
  // Same chain, but every step reads the pool's FP32 sidecar panels
  // through a private registry — conversion caching must be invisible.
  core::PanelCacheRegistry registry;
  expect_chain_matches_full_pass(Fixture(31, masks::PatternKind::kCausal),
                                 &registry);
  expect_chain_matches_full_pass(Fixture(41, masks::PatternKind::kBigBird),
                                 &registry);
}

TEST(DecodeSession, PreemptAndRecomputeWithSidecarIsByteIdentical) {
  // Preemption drops a session's pages and later recomputes its whole
  // prefix.  The sidecar must invalidate with the pages: after release +
  // full re-ingest, decode outputs match a never-preempted chain exactly.
  const Fixture f(59, masks::PatternKind::kCausal);
  core::PanelCacheRegistry registry;
  serve::KvPool pool(
      serve::KvPoolConfig{8, kBlockTokens, kHeads, kHeadSize}, &registry);
  const auto ingest_prefix = [&](std::int64_t upto) {
    for (std::int64_t pos = 0; pos < upto; ++pos) {
      auto slot = pool.append_token(/*id=*/0);
      ASSERT_TRUE(slot.has_value());
      for (std::int64_t h = 0; h < kHeads; ++h) {
        for (std::int64_t e = 0; e < kHeadSize; ++e) {
          slot->k[h * kHeadSize + e] = f.k.at(h, pos, e);
          slot->v[h * kHeadSize + e] = f.v.at(h, pos, e);
        }
      }
    }
  };
  const auto decode_last = [&](std::int64_t ctx) {
    TensorH q_step(Shape{kHeads, 1, kHeadSize});
    for (std::int64_t h = 0; h < kHeads; ++h) {
      for (std::int64_t e = 0; e < kHeadSize; ++e) {
        q_step.at(h, 0, e) = f.q.at(h, ctx - 1, e);
      }
    }
    std::vector<std::int32_t> cols;
    for (std::int64_t j = 0; j < ctx; ++j) {
      if (f.mask.at(ctx - 1, j)) cols.push_back(static_cast<std::int32_t>(j));
    }
    pool.ensure_float_panels(0);
    PagedSeq seq{ctx, kBlockTokens, pool.k_blocks(0), pool.v_blocks(0), cols};
    seq.kf_blocks = pool.k_float_blocks(0);
    seq.vf_blocks = pool.v_float_blocks(0);
    return decode_attention_paged(kHeads, kHeadSize, {&seq, 1}, q_step);
  };

  ingest_prefix(kTotal);
  const TensorH before = decode_last(kTotal);

  pool.release(0);  // preemption: pages and panels both dropped
  ingest_prefix(kTotal);
  const TensorH after = decode_last(kTotal);

  ASSERT_EQ(std::memcmp(before.data().data(), after.data().data(),
                        before.size_bytes()),
            0);
}

TEST(DecodeSession, ReusedPagesNeverServeStalePanels) {
  // Session A converts its pages, releases them, and session B gets the
  // same physical blocks with different content.  B's sidecar must reflect
  // B's halfs, never A's cached floats.
  const Fixture a(61, masks::PatternKind::kCausal);
  const Fixture b(67, masks::PatternKind::kCausal);
  core::PanelCacheRegistry registry;
  serve::KvPool pool(
      serve::KvPoolConfig{4, kBlockTokens, kHeads, kHeadSize}, &registry);
  const std::int64_t ctx = 2 * kBlockTokens;
  const auto ingest = [&](serve::SessionId id, const Fixture& f) {
    for (std::int64_t pos = 0; pos < ctx; ++pos) {
      auto slot = pool.append_token(id);
      ASSERT_TRUE(slot.has_value());
      for (std::int64_t h = 0; h < kHeads; ++h) {
        for (std::int64_t e = 0; e < kHeadSize; ++e) {
          slot->k[h * kHeadSize + e] = f.k.at(h, pos, e);
          slot->v[h * kHeadSize + e] = f.v.at(h, pos, e);
        }
      }
    }
  };

  ingest(0, a);
  pool.ensure_float_panels(0);
  const float a_first = pool.k_float_blocks(0)[0][0];
  pool.release(0);

  ingest(1, b);  // reuses the same physical blocks (free list recycles)
  pool.ensure_float_panels(1);
  const auto kf = pool.k_float_blocks(1);
  const auto vf = pool.v_float_blocks(1);
  ASSERT_EQ(kf.size(), 2u);
  // Every sidecar element equals the exact conversion of B's half data.
  const auto kh = pool.k_blocks(1);
  const auto vh = pool.v_blocks(1);
  const std::int64_t elems = kBlockTokens * kHeads * kHeadSize;
  for (std::size_t p = 0; p < kf.size(); ++p) {
    for (std::int64_t i = 0; i < elems; ++i) {
      ASSERT_EQ(kf[p][i], float(kh[p][i])) << "K page " << p << " elem " << i;
      ASSERT_EQ(vf[p][i], float(vh[p][i])) << "V page " << p << " elem " << i;
    }
  }
  // A's and B's first keys differ, so a stale panel would be visible here.
  ASSERT_EQ(kf[0][0], float(b.k.at(0, 0, 0)));
  ASSERT_NE(float(a.k.at(0, 0, 0)), float(b.k.at(0, 0, 0)));
  (void)a_first;
}

TEST(DecodeSession, BatchedPagedDecodeMatchesPerSequenceCalls) {
  // Two sessions decoded in one batch must equal two independent calls —
  // per-(sequence, head) instances share nothing.
  Fixture a(51, masks::PatternKind::kCausal);
  Fixture b(53, masks::PatternKind::kSlidingWindow);
  serve::KvPool pool(
      serve::KvPoolConfig{16, kBlockTokens, kHeads, kHeadSize});
  const std::int64_t ctx_a = 40, ctx_b = 17;
  const auto ingest = [&](serve::SessionId id, const Fixture& f,
                          std::int64_t ctx) {
    for (std::int64_t pos = 0; pos < ctx; ++pos) {
      auto slot = pool.append_token(id);
      ASSERT_TRUE(slot.has_value());
      for (std::int64_t h = 0; h < kHeads; ++h) {
        for (std::int64_t e = 0; e < kHeadSize; ++e) {
          slot->k[h * kHeadSize + e] = f.k.at(h, pos, e);
          slot->v[h * kHeadSize + e] = f.v.at(h, pos, e);
        }
      }
    }
  };
  ingest(0, a, ctx_a);
  ingest(1, b, ctx_b);

  const auto cols_of = [](const Fixture& f, std::int64_t row) {
    std::vector<std::int32_t> cols;
    for (std::int64_t j = 0; j <= row; ++j) {
      if (f.mask.at(row, j)) cols.push_back(static_cast<std::int32_t>(j));
    }
    return cols;
  };
  const auto cols_a = cols_of(a, ctx_a - 1);
  const auto cols_b = cols_of(b, ctx_b - 1);
  const PagedSeq seqs[2] = {
      {ctx_a, kBlockTokens, pool.k_blocks(0), pool.v_blocks(0), cols_a},
      {ctx_b, kBlockTokens, pool.k_blocks(1), pool.v_blocks(1), cols_b}};

  TensorH q_batch(Shape{2 * kHeads, 1, kHeadSize});
  for (std::int64_t h = 0; h < kHeads; ++h) {
    for (std::int64_t e = 0; e < kHeadSize; ++e) {
      q_batch.at(h, 0, e) = a.q.at(h, ctx_a - 1, e);
      q_batch.at(kHeads + h, 0, e) = b.q.at(h, ctx_b - 1, e);
    }
  }
  const TensorH batched =
      decode_attention_paged(kHeads, kHeadSize, seqs, q_batch);

  for (int which = 0; which < 2; ++which) {
    TensorH q_one(Shape{kHeads, 1, kHeadSize});
    for (std::int64_t h = 0; h < kHeads; ++h) {
      for (std::int64_t e = 0; e < kHeadSize; ++e) {
        q_one.at(h, 0, e) = q_batch.at(which * kHeads + h, 0, e);
      }
    }
    const TensorH alone = decode_attention_paged(
        kHeads, kHeadSize, {&seqs[which], 1}, q_one);
    for (std::int64_t h = 0; h < kHeads; ++h) {
      ASSERT_EQ(std::memcmp(&alone.at(h, 0, 0),
                            &batched.at(which * kHeads + h, 0, 0),
                            static_cast<std::size_t>(kHeadSize) *
                                sizeof(half)),
                0)
          << "seq=" << which << " h=" << h;
    }
  }
}

TEST(DecodeSession, PagedSeqValidation) {
  const half* none[1] = {nullptr};
  PagedSeq s{16, 16, {none, 1}, {none, 1}, {}};
  s.validate(2, 32);
  PagedSeq bad_block = s;
  bad_block.block_tokens = 12;  // not a power of two
  EXPECT_THROW(bad_block.validate(2, 32), Error);
  const std::int32_t out_of_ctx[] = {16};
  PagedSeq bad_cols = s;
  bad_cols.cols = out_of_ctx;
  EXPECT_THROW(bad_cols.validate(2, 32), Error);
  PagedSeq short_blocks = s;
  short_blocks.context_len = 17;  // needs two blocks, has one
  EXPECT_THROW(short_blocks.validate(2, 32), Error);
}

TEST(DecodeSession, BatchedCostScalesWithContextAndBatch) {
  const auto dev = gpusim::a100();
  const std::int64_t one_ctx[] = {128};
  const std::int64_t many_ctx[] = {128, 128, 128, 128, 128, 128, 128, 128};
  const auto c1 = decode_batched_cost(4, 64, one_ctx, dev);
  const auto c8 = decode_batched_cost(4, 64, many_ctx, dev);
  EXPECT_EQ(c1.launches, 1);
  EXPECT_EQ(c8.launches, 1);
  EXPECT_NEAR(c8.cuda_flops, 8.0 * c1.cuda_flops, 1e-6);
  // Eight sequences in one launch beat eight single-sequence launches on
  // simulated time: launch overhead is paid once, the grid is 8x larger.
  const double t1 = gpusim::estimate_time_us(c1, dev);
  const double t8 = gpusim::estimate_time_us(c8, dev);
  EXPECT_LT(t8, 8.0 * t1);
}

}  // namespace
}  // namespace stof::mha
