// Tests for model configs, the end-to-end executor, and the per-method
// e2e fusion plans.
#include <gtest/gtest.h>

#include "stof/baselines/e2e_plans.hpp"
#include "stof/models/config.hpp"
#include "stof/models/executor.hpp"

namespace stof::models {
namespace {

using baselines::Method;

mha::MhaDims attn_dims(const ModelConfig& m, std::int64_t bs,
                       std::int64_t seq) {
  return {bs, m.heads, seq, m.head_size()};
}

masks::MaskSpec bigbird_spec(std::int64_t seq) {
  return {.kind = masks::PatternKind::kBigBird, .seq_len = seq};
}

TEST(ModelConfig, PresetsMatchStandardCheckpoints) {
  EXPECT_EQ(bert_small().layers, 4);
  EXPECT_EQ(bert_small().hidden, 512);
  EXPECT_EQ(bert_base().layers, 12);
  EXPECT_EQ(bert_base().hidden, 768);
  EXPECT_EQ(bert_base().head_size(), 64);
  EXPECT_EQ(bert_large().layers, 24);
  EXPECT_EQ(bert_large().heads, 16);
  EXPECT_EQ(gpt().arch, Architecture::kDecoder);
  EXPECT_EQ(t5().arch, Architecture::kEncDec);
  EXPECT_FALSE(t5().use_bias);
  EXPECT_EQ(all_models().size(), 5u);
}

TEST(ModelConfig, GraphsBuildAndValidate) {
  for (const auto& m : all_models()) {
    const auto g = m.build_graph(1, 128);
    EXPECT_GT(g.size(), 10u) << m.name;
    // One MHA per encoder/decoder layer (two per T5 decoder layer).
    const auto mha_count = g.find_pattern(graph::Graph::mha_pattern()).size();
    EXPECT_GE(mha_count, static_cast<std::size_t>(m.layers)) << m.name;
  }
}

TEST(Executor, SimulatesDetachedPlan) {
  const auto m = bert_small();
  Executor exec(m.build_graph(1, 128), attn_dims(m, 1, 128),
                bigbird_spec(128), gpusim::a100(), Method::kStof);
  const auto plan = baselines::e2e_plan(Method::kPytorchNative, exec.graph());
  const auto r = exec.simulate(plan);
  EXPECT_TRUE(r.supported);
  EXPECT_GT(r.time_us, 0);
  // Detached: roughly one launch per non-input operator.
  EXPECT_GE(r.launches, exec.graph().size() - 1);
}

TEST(Executor, FusionReducesLaunchesAndTime) {
  const auto m = bert_small();
  Executor exec(m.build_graph(8, 512), attn_dims(m, 8, 512),
                bigbird_spec(512), gpusim::a100(), Method::kStof);
  const auto native = exec.simulate(
      baselines::e2e_plan(Method::kPytorchNative, exec.graph()));
  const auto stof =
      exec.simulate(baselines::e2e_plan(Method::kStof, exec.graph()));
  EXPECT_LT(stof.launches, native.launches);
  EXPECT_LT(stof.time_us, native.time_us);
}

TEST(Executor, RecordsKernelsOnProvidedStream) {
  const auto m = bert_small();
  Executor exec(m.build_graph(1, 128), attn_dims(m, 1, 128),
                bigbird_spec(128), gpusim::a100(), Method::kStof);
  gpusim::Stream s(gpusim::a100());
  const auto r = exec.simulate(
      baselines::e2e_plan(Method::kStof, exec.graph()), &s);
  EXPECT_NEAR(s.total_us(), r.time_us, 1e-9);
  EXPECT_FALSE(s.records().empty());
}

TEST(Executor, UnsupportedMhaPropagates) {
  const auto m = bert_small();
  // ByteTransformer at seq 2048: unsupported end to end.
  Executor exec(m.build_graph(1, 2048), attn_dims(m, 1, 2048),
                bigbird_spec(2048), gpusim::a100(), Method::kByteTransformer);
  EXPECT_FALSE(exec.mha_supported());
  const auto r = exec.simulate(
      baselines::e2e_plan(Method::kByteTransformer, exec.graph()));
  EXPECT_FALSE(r.supported);
  EXPECT_FALSE(r.unsupported_reason.empty());
}

TEST(Executor, RejectsMismatchedPlan) {
  const auto m = bert_small();
  Executor exec(m.build_graph(1, 128), attn_dims(m, 1, 128),
                bigbird_spec(128), gpusim::a100(), Method::kStof);
  ExecutionPlan bad;
  bad.scheme = fusion::FusionScheme::detached(3);
  EXPECT_THROW(exec.simulate(bad), Error);
}

// ---- Per-method plan structure -------------------------------------------------

TEST(E2ePlans, NativeIsFullyDetached) {
  const auto g = bert_small().build_graph(1, 128);
  const auto plan = baselines::e2e_plan(Method::kPytorchNative, g);
  EXPECT_EQ(plan.scheme.segments().size(), g.size());
}

TEST(E2ePlans, CompileFusesMhaAndMiRuns) {
  const auto g = bert_small().build_graph(1, 128);
  const auto plan = baselines::e2e_plan(Method::kPytorchCompile, g);
  const auto segs = plan.scheme.segments();
  EXPECT_LT(segs.size(), g.size());
  // Every MHA sub-graph is one 4-op segment.
  const auto mha_starts = g.find_pattern(graph::Graph::mha_pattern());
  for (const auto start : mha_starts) {
    bool found = false;
    for (const auto& s : segs) {
      if (s.begin == start) {
        EXPECT_EQ(s.size(), 4);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "MHA at " << start;
  }
}

TEST(E2ePlans, McfuserFusesFfnChains) {
  const auto g = bert_small().build_graph(1, 128);
  const auto plan = baselines::e2e_plan(Method::kMcfuser, g);
  bool has_chain = false;
  for (const auto& s : plan.scheme.segments()) {
    std::int64_t ci = 0;
    bool mha = false;
    for (std::int64_t i = s.begin; i < s.end; ++i) {
      ci += graph::is_compute_intensive(g.node(i).kind) ? 1 : 0;
      mha = mha || graph::is_mha_op(g.node(i).kind);
    }
    if (ci == 2 && !mha) has_chain = true;
  }
  EXPECT_TRUE(has_chain);
}

TEST(E2ePlans, BoltAttachesEpilogues) {
  const auto g = bert_small().build_graph(1, 128);
  const auto plan = baselines::e2e_plan(Method::kBolt, g);
  // Bolt never forms CI+CI chains.
  for (const auto& s : plan.scheme.segments()) {
    std::int64_t ci = 0;
    for (std::int64_t i = s.begin; i < s.end; ++i) {
      ci += graph::is_compute_intensive(g.node(i).kind) ? 1 : 0;
    }
    EXPECT_LE(ci, 1);
  }
  // And at least one GEMM+epilogue segment exists.
  bool has_epilogue = false;
  for (const auto& s : plan.scheme.segments()) {
    if (s.size() > 1 && graph::is_compute_intensive(g.node(s.begin).kind)) {
      has_epilogue = true;
    }
  }
  EXPECT_TRUE(has_epilogue);
}

TEST(E2ePlans, StofInitialPlanIsValid) {
  for (std::int64_t seq : {128, 2048}) {
    const auto g = bert_small().build_graph(1, seq);
    const auto plan = baselines::e2e_plan(Method::kStof, g);
    EXPECT_TRUE(plan.scheme.valid_for(g)) << "seq " << seq;
  }
}

TEST(E2ePlans, StofInitialSeedsChainsOnlyAtSmallScale) {
  const auto count_chains = [](const graph::Graph& g) {
    const auto plan = baselines::stof_initial_plan(g);
    int chains = 0;
    for (const auto& s : plan.scheme.segments()) {
      std::int64_t ci = 0;
      bool mha = false;
      for (std::int64_t i = s.begin; i < s.end; ++i) {
        ci += graph::is_compute_intensive(g.node(i).kind) ? 1 : 0;
        mha = mha || graph::is_mha_op(g.node(i).kind);
      }
      if (ci == 2 && !mha) ++chains;
    }
    return chains;
  };
  EXPECT_GT(count_chains(bert_small().build_graph(1, 128)), 0);
  EXPECT_EQ(count_chains(bert_small().build_graph(16, 2048)), 0);
}

}  // namespace
}  // namespace stof::models
