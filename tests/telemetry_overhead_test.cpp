// Satellite zero-overhead tests: with telemetry disabled (the default),
// instrumented hot paths must not create registry entries and the gate must
// cost no more than an atomic load + branch per call site.  The <2%
// end-to-end packed-timing budget is enforced by the bench_tier1 harness;
// here we pin the mechanisms that make it hold.
#include <gtest/gtest.h>

#include <chrono>

#include "stof/core/packed.hpp"
#include "stof/core/rng.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/sparse/bsr_mask.hpp"
#include "stof/telemetry/telemetry.hpp"

namespace stof::telemetry {
namespace {

TensorH random_tensor(Shape shape, std::uint64_t seed) {
  TensorH t(shape);
  Rng rng(seed);
  t.fill_random(rng);
  return t;
}

TEST(TelemetryOverhead, DisabledWorkloadCreatesNoRegistryEntries) {
  ASSERT_FALSE(enabled());
  global_registry().reset();

  // The instrumented hot paths of bench_tier1 --quick: packed GEMM with
  // bias epilogue and block-wise attention over a BigBird mask.
  const TensorH a = random_tensor(Shape{1, 32, 64}, 1);
  const TensorH b = random_tensor(Shape{64, 64}, 2);
  const TensorH bias = random_tensor(Shape{64}, 3);
  TensorH c(Shape{1, 32, 64});
  ops::gemm(a, b, c, ops::Epilogue::kBias, &bias);

  const mha::MhaDims dims{1, 2, 64, 32};
  const TensorH q = random_tensor(dims.qkv_shape(), 4);
  const TensorH k = random_tensor(dims.kv_shape(), 5);
  const TensorH v = random_tensor(dims.kv_shape(), 6);
  const auto mask =
      masks::MaskSpec{.kind = masks::PatternKind::kBigBird, .seq_len = 64}
          .build();
  const auto bsr = sparse::BsrMask::build(mask, 32, 32);
  (void)mha::blockwise_attention(dims, q, k, v, bsr, {32, 32});

  EXPECT_EQ(global_registry().entry_count(), 0u);
}

TEST(TelemetryOverhead, DisabledGateIsNearFree) {
  ASSERT_FALSE(enabled());
  // 1M gated calls while disabled: one relaxed atomic load and a branch
  // each, no name construction, no locking.  Budget of 250 ns/call is ~100x
  // the expected cost — generous enough for a loaded CI machine while still
  // catching an accidentally ungated implementation (string + map + mutex
  // per call costs microseconds).
  constexpr int kCalls = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) {
    count("overhead.gate.check");
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(global_registry().counter("overhead.gate.check"), 0);
  EXPECT_LT(ns / kCalls, 250.0);
}

TEST(TelemetryOverhead, InstrumentedPassRecordsOnlyWhileEnabled) {
  global_registry().reset();
  const TensorH a = random_tensor(Shape{1, 16, 32}, 1);
  const TensorH b = random_tensor(Shape{32, 32}, 2);
  TensorH c(Shape{1, 16, 32});
  {
    ScopedTelemetry on(true);
    ops::gemm(a, b, c);
  }
  const std::int64_t calls_while_enabled =
      global_registry().counter("sim.ops.gemm_calls");
  EXPECT_EQ(calls_while_enabled, 1);

  ops::gemm(a, b, c);  // disabled again: must not move the counter
  EXPECT_EQ(global_registry().counter("sim.ops.gemm_calls"),
            calls_while_enabled);
  global_registry().reset();
}

}  // namespace
}  // namespace stof::telemetry
