// Tests for the MHA-level baseline policies: functional equivalence with
// the reference, the support matrix (missing bars of Fig. 10/11), and the
// performance-ordering shapes the paper reports.
#include <gtest/gtest.h>

#include "stof/baselines/mha_methods.hpp"
#include "stof/core/rng.hpp"
#include "stof/mha/reference.hpp"

namespace stof::baselines {
namespace {

using masks::MaskSpec;
using masks::PatternKind;

struct Inputs {
  TensorH q, k, v;
};

Inputs make_inputs(const mha::MhaDims& dims, std::uint64_t seed) {
  Rng rng(seed);
  Inputs in{TensorH(dims.qkv_shape()), TensorH(dims.qkv_shape()),
            TensorH(dims.qkv_shape())};
  in.q.fill_random(rng);
  in.k.fill_random(rng);
  in.v.fill_random(rng);
  return in;
}

double simulate_on(Method m, const mha::MhaDims& dims, PatternKind kind,
                   sparse::BsrCache& cache, const gpusim::DeviceSpec& dev,
                   bool* supported = nullptr) {
  gpusim::Stream s(dev);
  const MhaSimResult r = simulate_mha(m, dims, kind, cache, s);
  if (supported != nullptr) *supported = r.supported;
  return r.time_us;
}

TEST(Baselines, MethodNamesUnique) {
  std::set<std::string> names;
  for (const auto m : mha_methods()) names.insert(to_string(m));
  EXPECT_EQ(names.size(), mha_methods().size());
  EXPECT_EQ(to_string(Method::kBolt), "Bolt");
}

TEST(Baselines, BoltHasNoMhaPath) {
  const mha::MhaDims dims{1, 12, 128, 64};
  sparse::BsrCache cache(
      MaskSpec{.kind = PatternKind::kBigBird, .seq_len = 128}.build());
  gpusim::Stream s(gpusim::a100());
  const auto r =
      simulate_mha(Method::kBolt, dims, PatternKind::kBigBird, cache, s);
  EXPECT_FALSE(r.supported);
}

// ---- Functional equivalence: every method computes the same attention ----

class MethodFunctional : public ::testing::TestWithParam<Method> {};

TEST_P(MethodFunctional, MatchesReference) {
  const mha::MhaDims dims{1, 2, 64, 16};
  const auto mask =
      MaskSpec{.kind = PatternKind::kLongformer, .seq_len = 64}.build();
  sparse::BsrCache cache(mask);
  const Inputs in = make_inputs(dims, 31);
  const TensorH ref = mha::reference_attention(dims, in.q, in.k, in.v, mask);
  const TensorH got = run_mha_functional(GetParam(), dims,
                                         PatternKind::kLongformer, cache,
                                         in.q, in.k, in.v);
  EXPECT_LT(max_abs_diff(ref, got), 4e-3) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllMhaMethods, MethodFunctional,
    ::testing::Values(Method::kPytorchNative, Method::kPytorchCompile,
                      Method::kFlashAttention2, Method::kFlexAttention,
                      Method::kByteTransformer, Method::kMcfuser,
                      Method::kStof),
    [](const auto& info) {
      auto s = to_string(info.param);
      s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
      return s;
    });

// ---- Support matrix (the missing bars) ----------------------------------------

TEST(SupportMatrix, ByteTransformerRejectsLongSequences) {
  const mha::MhaDims dims{1, 12, 2048, 64};
  sparse::BsrCache cache(
      MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = 2048}.build());
  bool supported = true;
  simulate_on(Method::kByteTransformer, dims, PatternKind::kSlidingWindow,
              cache, gpusim::a100(), &supported);
  EXPECT_FALSE(supported);

  const mha::MhaDims ok_dims{1, 12, 1024, 64};
  sparse::BsrCache ok_cache(
      MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = 1024}.build());
  simulate_on(Method::kByteTransformer, ok_dims, PatternKind::kSlidingWindow,
              ok_cache, gpusim::a100(), &supported);
  EXPECT_TRUE(supported);
}

TEST(SupportMatrix, McfuserOomAtLargeScale) {
  // (16, 4096) workspace: 16*12*4096^2*12 bytes ~ 38.6 GB > both GPUs.
  const mha::MhaDims dims{16, 12, 4096, 64};
  sparse::BsrCache cache(
      MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = 4096}.build());
  bool supported = true;
  simulate_on(Method::kMcfuser, dims, PatternKind::kSlidingWindow, cache,
              gpusim::rtx4090(), &supported);
  EXPECT_FALSE(supported);
  simulate_on(Method::kMcfuser, dims, PatternKind::kSlidingWindow, cache,
              gpusim::a100(), &supported);
  EXPECT_FALSE(supported);

  // (8, 512) fits comfortably.
  const mha::MhaDims small{8, 12, 512, 64};
  sparse::BsrCache small_cache(
      MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = 512}.build());
  simulate_on(Method::kMcfuser, small, PatternKind::kSlidingWindow,
              small_cache, gpusim::a100(), &supported);
  EXPECT_TRUE(supported);
}

// ---- Performance shapes (Fig. 10/11) -------------------------------------------

class ShapeOnDevice : public ::testing::TestWithParam<gpusim::DeviceSpec> {};

TEST_P(ShapeOnDevice, StofBeatsAllBaselinesAtLargeSparseScale) {
  const auto dev = GetParam();
  const mha::MhaDims dims{16, 12, 2048, 64};
  for (const auto kind :
       {PatternKind::kSlidingWindow, PatternKind::kDilated,
        PatternKind::kLongformer, PatternKind::kBigBird}) {
    sparse::BsrCache cache(MaskSpec{.kind = kind, .seq_len = 2048}.build());
    const double stof =
        simulate_on(Method::kStof, dims, kind, cache, dev);
    for (const auto m : mha_methods()) {
      if (m == Method::kStof) continue;
      bool supported = true;
      const double t = simulate_on(m, dims, kind, cache, dev, &supported);
      if (!supported) continue;
      EXPECT_LT(stof, t) << to_string(m) << " on " << to_string(kind) << " ("
                         << dev.name << ")";
    }
  }
}

TEST_P(ShapeOnDevice, StofSpeedupOverNativeGrowsWithSequence) {
  const auto dev = GetParam();
  const auto speedup = [&](std::int64_t seq) {
    const mha::MhaDims dims{8, 12, seq, 64};
    sparse::BsrCache cache(
        MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = seq}.build());
    const double native = simulate_on(Method::kPytorchNative, dims,
                                      PatternKind::kSlidingWindow, cache, dev);
    const double stof = simulate_on(Method::kStof, dims,
                                    PatternKind::kSlidingWindow, cache, dev);
    return native / stof;
  };
  const double s512 = speedup(512);
  const double s2048 = speedup(2048);
  EXPECT_GT(s2048, s512) << dev.name;
  EXPECT_GT(s2048, 4.0) << dev.name;  // long-sequence skipping pays off
}

TEST_P(ShapeOnDevice, StofBeatsFlexAttentionViaFinerBlocks) {
  // Paper: 1.8x / 1.6x average over FlexAttention.  The coarse (128,128)
  // block mask wastes work on band masks that STOF's tuned blocks skip.
  const auto dev = GetParam();
  const mha::MhaDims dims{16, 12, 4096, 64};
  sparse::BsrCache cache(
      MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = 4096}.build());
  const double flex = simulate_on(Method::kFlexAttention, dims,
                                  PatternKind::kSlidingWindow, cache, dev);
  const double stof = simulate_on(Method::kStof, dims,
                                  PatternKind::kSlidingWindow, cache, dev);
  EXPECT_GT(flex / stof, 1.3) << dev.name;
}

TEST_P(ShapeOnDevice, Fa2FallsBackOnDiscretePatterns) {
  // FA2 handles sliding natively but computes dilated densely.
  const auto dev = GetParam();
  const mha::MhaDims dims{8, 12, 2048, 64};
  sparse::BsrCache sliding(
      MaskSpec{.kind = PatternKind::kSlidingWindow, .seq_len = 2048}.build());
  sparse::BsrCache dilated(
      MaskSpec{.kind = PatternKind::kDilated, .seq_len = 2048}.build());
  const double t_sliding = simulate_on(Method::kFlashAttention2, dims,
                                       PatternKind::kSlidingWindow, sliding,
                                       dev);
  const double t_dilated = simulate_on(Method::kFlashAttention2, dims,
                                       PatternKind::kDilated, dilated, dev);
  // Same sparsity (93.8%), but the dilated mask can't use FA2's skipping.
  EXPECT_GT(t_dilated, t_sliding * 2.0) << dev.name;
}

INSTANTIATE_TEST_SUITE_P(BothGpus, ShapeOnDevice,
                         ::testing::Values(gpusim::rtx4090(), gpusim::a100()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace stof::baselines
