// Unit tests for the thread pool and structured parallel loops.
#include "stof/parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "stof/parallel/thread_pool.hpp"

namespace stof {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ThreadCountRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool def(0);
  EXPECT_GE(def.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { ++hits[i]; }, pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++calls; }, pool);
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](std::int64_t i) { EXPECT_EQ(i, 7); ++calls; }, pool);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  parallel_for(10, 20, [&](std::int64_t i) { ++hits[i]; }, pool);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (int i = 10; i < 20; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          0, 100,
          [](std::int64_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          pool),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  parallel_for(0, 10, [&](std::int64_t) { ++count; }, pool);
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelReduce, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::int64_t n = 10000;
  const std::int64_t sum = parallel_reduce<std::int64_t>(
      0, n, 0, [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; }, pool);
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  std::vector<int> v(997);
  std::iota(v.begin(), v.end(), 0);
  v[500] = 100000;
  const int m = parallel_reduce<int>(
      0, static_cast<std::int64_t>(v.size()), 0,
      [&](std::int64_t i) { return v[static_cast<std::size_t>(i)]; },
      [](int a, int b) { return std::max(a, b); }, pool);
  EXPECT_EQ(m, 100000);
}

TEST(ParallelFor, DeterministicResultRegardlessOfThreads) {
  // The static schedule writes each slot from exactly one index, so results
  // cannot depend on the number of workers.
  std::vector<double> r1(256), r4(256);
  ThreadPool p1(1), p4(4);
  auto body = [](std::vector<double>& out) {
    return [&out](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 1.5 + 1;
    };
  };
  parallel_for(0, 256, body(r1), p1);
  parallel_for(0, 256, body(r4), p4);
  EXPECT_EQ(r1, r4);
}

}  // namespace
}  // namespace stof
