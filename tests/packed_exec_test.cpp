// Bit-identity of the packed-FP32 execution engine against the scalar
// reference kernels: panel conversions are exact, and the packed GEMM /
// block-wise MHA paths reproduce the scalar results bit for bit across
// epilogues, batched/unbatched B, odd (non-multiple-of-block) shapes, and
// masked/score-modified attention.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "stof/core/packed.hpp"
#include "stof/core/rng.hpp"
#include "stof/masks/mask.hpp"
#include "stof/mha/blockwise_kernel.hpp"
#include "stof/ops/gemm.hpp"
#include "stof/sparse/bsr_mask.hpp"

namespace stof {
namespace {

using ops::Epilogue;

/// Bitwise comparison of two half tensors; reports the first mismatch.
::testing::AssertionResult bits_equal(const TensorH& a, const TensorH& b) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  const auto sa = a.data();
  const auto sb = b.data();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].bits() != sb[i].bits()) {
      return ::testing::AssertionFailure()
             << "bit mismatch at flat index " << i << ": 0x" << std::hex
             << sa[i].bits() << " vs 0x" << sb[i].bits();
    }
  }
  return ::testing::AssertionSuccess();
}

TensorH random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0f,
                      float hi = 1.0f) {
  TensorH t(shape);
  Rng rng(seed);
  t.fill_random(rng, lo, hi);
  return t;
}

// ---- Panel conversions -------------------------------------------------------

TEST(PackedConversion, TableMatchesReferenceForAllBitPatterns) {
  const float* table = packed::h2f_table();
  for (std::uint32_t bits = 0; bits < 65536; ++bits) {
    const float expect = half::to_float(static_cast<std::uint16_t>(bits));
    // Bit-level compare: NaN payloads and signed zeros must survive.
    EXPECT_EQ(std::bit_cast<std::uint32_t>(table[bits]),
              std::bit_cast<std::uint32_t>(expect))
        << "half bits 0x" << std::hex << bits;
  }
}

TEST(PackedConversion, PanelsRoundTripThroughHalfRounding) {
  // Values spanning normals, subnormals, overflow-to-inf, and exact halves.
  const std::vector<float> samples = {0.0f,    -0.0f,   1.0f,     -2.5f,
                                      1e-8f,   -3e-5f,  65504.0f, 70000.0f,
                                      0.1f,    -0.3337f, 1.5e-7f, 1234.56f};
  std::vector<half> h(samples.size());
  packed::float_to_half(samples, h);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(h[i].bits(), half(samples[i]).bits()) << samples[i];
  }
  std::vector<float> back(samples.size());
  packed::half_to_float(h, back);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back[i]),
              std::bit_cast<std::uint32_t>(float(h[i])));
  }
}

// ---- GEMM --------------------------------------------------------------------

struct GemmCase {
  std::int64_t batch, m, k, n;
  bool batched_b;
};

class PackedGemm : public ::testing::TestWithParam<GemmCase> {};

TEST_P(PackedGemm, BitIdenticalToScalarAcrossEpilogues) {
  const auto [batch, m, k, n, batched_b] = GetParam();
  const TensorH a = random_tensor(Shape{batch, m, k}, 7);
  const TensorH b = batched_b ? random_tensor(Shape{batch, k, n}, 11)
                              : random_tensor(Shape{k, n}, 11);
  const TensorH bias = random_tensor(Shape{n}, 13);

  for (const Epilogue ep : {Epilogue::kNone, Epilogue::kBias,
                            Epilogue::kBiasRelu, Epilogue::kBiasGelu}) {
    const TensorH* bp = ep == Epilogue::kNone ? nullptr : &bias;
    TensorH c_scalar(Shape{batch, m, n});
    TensorH c_packed(Shape{batch, m, n});
    ops::gemm_scalar(a, b, c_scalar, ep, bp);
    ops::gemm_packed(a, b, c_packed, ep, bp);
    EXPECT_TRUE(bits_equal(c_scalar, c_packed))
        << "epilogue " << static_cast<int>(ep);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedGemm,
    ::testing::Values(
        GemmCase{1, 7, 13, 9, false},     // odd everything, shared B
        GemmCase{2, 33, 65, 31, false},   // one past the block sizes
        GemmCase{3, 17, 300, 5, true},    // odd, k > KB block, batched B
        GemmCase{2, 64, 128, 96, true},   // block-aligned, batched B
        GemmCase{1, 1, 1, 1, false},      // degenerate single element
        GemmCase{1, 70, 257, 260, false}  // n > NB block boundary
        ));

TEST(PackedGemmDispatch, GemmHonoursExecutionModeToggle) {
  const TensorH a = random_tensor(Shape{1, 5, 8}, 3);
  const TensorH b = random_tensor(Shape{8, 6}, 4);
  TensorH c_default(Shape{1, 5, 6});
  TensorH c_scalar(Shape{1, 5, 6});
  TensorH c_forced(Shape{1, 5, 6});

  EXPECT_TRUE(packed_execution_enabled());  // packed is the default
  ops::gemm(a, b, c_default);
  {
    ScopedPackedExecution scalar_mode(false);
    EXPECT_FALSE(packed_execution_enabled());
    ops::gemm(a, b, c_scalar);
  }
  EXPECT_TRUE(packed_execution_enabled());  // guard restored the default
  ops::gemm(a, b, c_forced);
  EXPECT_TRUE(bits_equal(c_default, c_scalar));
  EXPECT_TRUE(bits_equal(c_default, c_forced));
}

TEST(PackedMatmul2d, BitIdenticalToScalar) {
  for (const auto& [r, k, n] :
       std::vector<std::array<std::int64_t, 3>>{{5, 9, 7}, {64, 130, 257}}) {
    const TensorH x = random_tensor(Shape{r, k}, 21);
    const TensorH w = random_tensor(Shape{k, n}, 22);
    TensorH y_scalar(Shape{r, n});
    TensorH y_packed(Shape{r, n});
    {
      ScopedPackedExecution scalar_mode(false);
      ops::matmul2d(x, w, y_scalar);
    }
    ops::matmul2d(x, w, y_packed);
    EXPECT_TRUE(bits_equal(y_scalar, y_packed)) << r << "x" << k << "x" << n;
  }
}

// ---- Block-wise MHA ----------------------------------------------------------

struct MhaCase {
  masks::PatternKind pattern;
  std::int64_t seq_len;
  int block;
  bool with_score_mod;
};

class PackedBlockwiseMha : public ::testing::TestWithParam<MhaCase> {};

TEST_P(PackedBlockwiseMha, BitIdenticalToScalar) {
  const auto [pattern, seq_len, block, with_score_mod] = GetParam();
  const mha::MhaDims dims{2, 3, seq_len, 16};
  const TensorH q = random_tensor(dims.qkv_shape(), 31);
  const TensorH k = random_tensor(dims.kv_shape(), 32);
  const TensorH v = random_tensor(dims.kv_shape(), 33);
  const masks::Mask mask =
      masks::MaskSpec{.kind = pattern, .seq_len = seq_len}.build();
  const auto bsr = sparse::BsrMask::build(mask, block, block);
  const mha::BlockwiseParams params{block, block};
  const mha::ScoreMod mod =
      with_score_mod
          ? mha::ScoreMod([](std::int64_t, std::int64_t i, std::int64_t j,
                             float s) {
              return s - 0.05f * static_cast<float>(i > j ? i - j : j - i);
            })
          : mha::ScoreMod(nullptr);

  TensorH out_scalar;
  {
    ScopedPackedExecution scalar_mode(false);
    out_scalar = mha::blockwise_attention(dims, q, k, v, bsr, params, mod);
  }
  const TensorH out_packed =
      mha::blockwise_attention(dims, q, k, v, bsr, params, mod);
  EXPECT_TRUE(bits_equal(out_scalar, out_packed));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PackedBlockwiseMha,
    ::testing::Values(
        // Odd seq_len exercises edge blocks; sliding window / BigBird mix
        // full and part blocks; dense is all-full.
        MhaCase{masks::PatternKind::kSlidingWindow, 50, 16, false},
        MhaCase{masks::PatternKind::kBigBird, 77, 16, false},
        MhaCase{masks::PatternKind::kDense, 48, 16, false},
        MhaCase{masks::PatternKind::kCausal, 64, 32, false},
        MhaCase{masks::PatternKind::kSlidingWindow, 50, 16, true}));

}  // namespace
}  // namespace stof
